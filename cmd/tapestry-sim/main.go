// Command tapestry-sim stands up a Tapestry overlay on a simulated metric
// space, runs a publish/locate workload with optional churn, and prints
// routing statistics — a one-shot driver for exploring configurations.
//
// It shares the registry-driven experiment engine with benchtables: pass
// -run to reproduce any subset of the paper's tables in parallel instead of
// running the ad-hoc workload.
//
// Examples:
//
//	tapestry-sim -n 512 -space torus -objects 128 -queries 4096 -churn 32
//	tapestry-sim -run 'E5|SurrogateOverhead' -workers 8 -format csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"

	"tapestry"
	"tapestry/internal/expt"
)

func main() {
	n := flag.Int("n", 256, "number of overlay nodes")
	protocol := flag.String("protocol", "tapestry", "overlay protocol: tapestry | chord | pastry | can | directory")
	spaceKind := flag.String("space", "ring", "metric space: ring | torus | cloud | graph | transitstub")
	objects := flag.Int("objects", 64, "objects to publish (one replica each)")
	replicas := flag.Int("replicas", 1, "replicas per object")
	queries := flag.Int("queries", 1024, "random (client, object) queries")
	churn := flag.Int("churn", 0, "membership events after publishing (alternating join/leave)")
	base := flag.Int("base", 16, "identifier radix b")
	r := flag.Int("r", 3, "neighbor-set capacity R")
	roots := flag.Int("roots", 1, "root-set size |R_psi|")
	prr := flag.Bool("prr", false, "use PRR-like surrogate routing")
	cacheCap := flag.Int("cache-cap", 0, "per-node locate-cache capacity (the serving layer; 0 = off)")
	seed := flag.Int64("seed", 1, "RNG seed")
	run := flag.String("run", "", "run registry experiments matching this id/name regexp instead of the ad-hoc workload")
	quick := flag.Bool("quick", false, "with -run: reduced experiment sizes")
	workers := flag.Int("workers", 0, "with -run: experiment cells run in parallel (0 = GOMAXPROCS)")
	format := flag.String("format", "table", "output format: table | json | csv")
	scalePoints := flag.Int("scale-points", 0, "with -run E-scale: metric-space points of the full churn cell; without -run: transit-stub size override (0 = auto)")
	scaleNodes := flag.Int("scale-nodes", 0, "with -run E-scale: initial overlay population (0 = params default)")
	planetNodes := flag.Int("planet-nodes", 0, "with -run E-planet: overlay population of the virtual-time run (0 = params default)")
	planetObjects := flag.Int("planet-objects", 0, "with -run E-planet: published objects (0 = params default)")
	chaosN := flag.Int("chaos-n", 0, "with -run E-chaos: overlay population of the scenario suite (0 = params default)")
	chaosScenario := flag.String("chaos-scenario", "", "with -run E-chaos: comma-separated named scenarios to replay (empty = whole suite)")
	transport := flag.String("transport", "", "message transport backend: direct | loopback | tcp (default: $TAPESTRY_TRANSPORT, then direct)")
	flag.Parse()

	if *transport != "" {
		if _, err := tapestry.ParseTransport(*transport); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		os.Setenv("TAPESTRY_TRANSPORT", *transport)
	}

	if *run != "" {
		runExperiments(*run, *quick, *seed, *workers, *format,
			*scalePoints, *scaleNodes, *planetNodes, *planetObjects,
			*chaosN, *chaosScenario)
		return
	}

	var space tapestry.Space
	switch *spaceKind {
	case "ring":
		space = tapestry.RingSpace(4 * *n)
	case "torus":
		side := int(math.Ceil(math.Sqrt(float64(4 * *n))))
		space = tapestry.TorusSpace(side)
	case "cloud":
		space = tapestry.CloudSpace(4**n, *seed)
	case "graph":
		space = tapestry.RandomGraphSpace(2**n, 3, *seed)
	case "transitstub":
		// Size the substrate to the overlay unless explicitly overridden;
		// above metric.DenseLimit points the space is computed on demand, so
		// tens of thousands of points stay cheap.
		points := 4 * *n
		if *scalePoints > 0 {
			points = *scalePoints
		}
		space = tapestry.ScaledTransitStubSpace(points, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown space %q\n", *spaceKind)
		os.Exit(2)
	}

	proto, ok := map[string]tapestry.Protocol{
		"tapestry": tapestry.Tapestry, "chord": tapestry.Chord,
		"pastry": tapestry.Pastry, "can": tapestry.CAN,
		"directory": tapestry.Directory,
	}[*protocol]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protocol)
		os.Exit(2)
	}

	cfg := tapestry.Defaults()
	cfg.Base = *base
	cfg.R = *r
	cfg.RootSetSize = *roots
	cfg.PRRRouting = *prr
	cfg.LocateCacheCap = *cacheCap
	cfg.Seed = *seed
	nw, err := tapestry.NewProtocol(space, proto, cfg)
	if err != nil {
		fail(err)
	}

	fmt.Printf("growing %d %s nodes on %s (caps: %s) ...\n", *n, proto, space.Name(), nw.Caps())
	nodes, err := nw.Grow(*n)
	if err != nil {
		fail(err)
	}
	fmt.Printf("  %s\n", nw.Stats())

	rng := rand.New(rand.NewSource(*seed))
	names := make([]string, *objects)
	for i := range names {
		names[i] = fmt.Sprintf("object-%04d", i)
		for rep := 0; rep < *replicas; rep++ {
			if _, err := nodes[rng.Intn(len(nodes))].Publish(names[i]); err != nil {
				fail(err)
			}
		}
	}
	fmt.Printf("published %d objects x %d replicas\n", *objects, *replicas)

	declined := 0
	for e := 0; e < *churn; e++ {
		if e%2 == 0 {
			if _, err := nw.Grow(1); err != nil {
				if errors.Is(err, tapestry.ErrUnsupported) {
					declined++
					continue
				}
				fail(err)
			}
		} else {
			all := nw.Nodes()
			victim := all[rng.Intn(len(all))]
			if _, err := victim.Leave(); errors.Is(err, tapestry.ErrUnsupported) {
				declined++
			}
		}
	}
	if *churn > 0 {
		if declined > 0 {
			fmt.Printf("churn: %d of %d events declined (protocol caps: %s)\n", declined, *churn, nw.Caps())
		}
		fmt.Printf("after %d churn events: %s\n", *churn, nw.Stats())
		if v := nw.CheckConsistency(); len(v) != 0 {
			fmt.Printf("CONSISTENCY VIOLATIONS: %d (first: %s)\n", len(v), v[0])
		} else {
			fmt.Println("consistency audit: clean")
		}
	}

	var hops, msgs, dist float64
	found := 0
	all := nw.Nodes()
	for q := 0; q < *queries; q++ {
		c := all[rng.Intn(len(all))]
		res, cost := c.Locate(names[rng.Intn(len(names))])
		if res.Found {
			found++
			hops += float64(res.Hops)
			msgs += float64(cost.Messages)
			dist += cost.Distance
		}
	}
	if found == 0 {
		fail(fmt.Errorf("no queries succeeded"))
	}
	fmt.Printf("queries: %d/%d found | mean hops %.2f | mean msgs %.1f | mean distance %.1f\n",
		found, *queries, hops/float64(found), msgs/float64(found), dist/float64(found))
	fmt.Printf("final: %s\n", nw.Stats())
	fmt.Printf("total network messages: %d\n", nw.TotalMessages())
}

// runExperiments reproduces paper tables through the shared registry engine.
func runExperiments(pattern string, quick bool, seed int64, workers int, format string,
	scalePoints, scaleNodes, planetNodes, planetObjects, chaosN int, chaosScenario string) {
	params := expt.DefaultParams()
	if quick {
		params = expt.QuickParams()
	}
	if scalePoints > 0 {
		params.ScalePoints = scalePoints
	}
	if scaleNodes > 0 {
		params.ScaleNodes = scaleNodes
	}
	if planetNodes > 0 {
		params.PlanetNodes = planetNodes
	}
	if planetObjects > 0 {
		params.PlanetObjects = planetObjects
	}
	if chaosN > 0 {
		params.ChaosN = chaosN
	}
	if chaosScenario != "" {
		params.ChaosScenarios = strings.Split(chaosScenario, ",")
		if err := expt.ValidateScenarios(params.ChaosScenarios); err != nil {
			fail(err)
		}
	}
	params.PlanetBuildWorkers = workers
	r := expt.Runner{Seed: seed, Workers: workers, Params: params}
	if err := r.RunAndEmit(os.Stdout, pattern, format); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tapestry-sim:", err)
	os.Exit(1)
}
