// Command tapestry-node runs one Tapestry overlay node as a standalone
// process: a TCP daemon speaking the wire cluster protocol (internal/wire).
// It starts empty; a harness — normally examples/cluster — provisions its
// routing table and endpoint book with ClusterInstall and then drives
// publish/locate traffic that the daemons forward among themselves.
//
// The daemon prints exactly one line, "LISTEN <host:port>", once the
// listener is up, so a parent process can scrape the bound address (the
// default binds an ephemeral port). When -listen names a fixed port that is
// already taken, the daemon walks forward over a small range of consecutive
// ports before giving up — fleets booted from a base port survive stray
// occupants of individual ports, and the banner reports whichever port won.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"

	"tapestry/internal/procnode"
)

// listenRetry binds addr; for a fixed (non-zero) port it tries up to
// retries+1 consecutive ports starting at the requested one.
func listenRetry(addr string, retries int) (net.Listener, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, err
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("listen address %q: %v", addr, err)
	}
	if port == 0 || retries < 0 {
		retries = 0
	}
	var ln net.Listener
	for p := port; p <= port+retries; p++ {
		if ln, err = net.Listen("tcp", net.JoinHostPort(host, strconv.Itoa(p))); err == nil {
			return ln, nil
		}
	}
	return nil, err
}

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "host:port to listen on (port 0 picks a free port)")
	retries := flag.Int("listen-retries", 16, "extra consecutive ports to try when a fixed -listen port is busy")
	flag.Parse()
	ln, err := listenRetry(*listen, *retries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapestry-node:", err)
		os.Exit(1)
	}
	fmt.Printf("LISTEN %s\n", ln.Addr())
	if err := procnode.New().Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "tapestry-node:", err)
		os.Exit(1)
	}
}
