// Command tapestry-node runs one Tapestry overlay node as a standalone
// process: a TCP daemon speaking the wire cluster protocol (internal/wire).
// It starts empty; a harness — normally examples/cluster — provisions its
// routing table and endpoint book with ClusterInstall and then drives
// publish/locate traffic that the daemons forward among themselves.
//
// The daemon prints exactly one line, "LISTEN <host:port>", once the
// listener is up, so a parent process can scrape the bound address (the
// default binds an ephemeral port).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"tapestry/internal/procnode"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "host:port to listen on (port 0 picks a free port)")
	flag.Parse()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapestry-node:", err)
		os.Exit(1)
	}
	fmt.Printf("LISTEN %s\n", ln.Addr())
	if err := procnode.New().Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "tapestry-node:", err)
		os.Exit(1)
	}
}
