// Command benchtables regenerates every table and figure of the paper's
// evaluation at configurable scale, fanning experiment cells across a worker
// pool. Output is byte-identical for any -workers value: each cell draws its
// RNG streams from a seed derived from (seed, experiment, cell index), and
// rows merge in cell order. This is the reference generator behind
// EXPERIMENTS.md.
//
// Usage:
//
//	benchtables                              # full suite, one worker per core
//	benchtables -quick                       # reduced sizes for a fast smoke run
//	benchtables -run E5                      # one experiment by id
//	benchtables -run 'Table1.*|E6'           # any subset by id/name regexp
//	benchtables -run Stretch.* -workers 8 -format json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tapestry"

	"tapestry/internal/expt"
	"tapestry/internal/microbench"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sizes for a fast run")
	run := flag.String("run", "", "run experiments matching this id/name regexp (e.g. E5, E-scale, Table1.*)")
	only := flag.String("only", "", "deprecated alias for -run")
	seed := flag.Int64("seed", 1, "base RNG seed; per-cell streams are derived from it")
	workers := flag.Int("workers", 0, "experiment cells run in parallel (0 = GOMAXPROCS)")
	format := flag.String("format", "table", "output format: table | json | csv")
	scalePoints := flag.Int("scale-points", 0, "E-scale: metric-space points of the full churn cell (0 = params default)")
	scaleNodes := flag.Int("scale-nodes", 0, "E-scale: initial overlay population (0 = params default)")
	hotspotN := flag.Int("hotspot-n", 0, "E-hotspot: mesh size of the full cell (0 = params default)")
	hotspotQueries := flag.Int("hotspot-queries", 0, "E-hotspot: Zipf queries of the full cell (0 = params default)")
	planetNodes := flag.Int("planet-nodes", 0, "E-planet: overlay population of the virtual-time run (0 = params default)")
	planetObjects := flag.Int("planet-objects", 0, "E-planet: published objects (0 = params default)")
	ninesN := flag.Int("nines-n", 0, "E-nines: overlay population of the availability sweep (0 = params default)")
	ninesQueries := flag.Int("nines-queries", 0, "E-nines: Zipf queries per epoch (0 = params default)")
	chaosN := flag.Int("chaos-n", 0, "E-chaos: overlay population of the scenario suite (0 = params default)")
	chaosScenario := flag.String("chaos-scenario", "", "E-chaos: comma-separated named scenarios to replay (empty = whole suite)")
	protocol := flag.String("protocol", "", "E-faceoff/E-chaos: comma-separated overlay protocols (empty = all registered)")
	benchJSON := flag.Bool("bench-json", false, "run the hot-path micro-benchmark set and emit BENCH_micro.json to stdout")
	benchBaseline := flag.String("bench-baseline", "", "with -bench-json: gate against this baseline BENCH_micro.json, exit 1 on regression")
	benchTolerance := flag.Float64("bench-tolerance", 0.25, "with -bench-baseline: allowed ns/op regression fraction (allocs/op tolerates none)")
	benchTime := flag.Duration("bench-time", 200*time.Millisecond, "with -bench-json: target time per benchmark repetition")
	benchCount := flag.Int("bench-count", 3, "with -bench-json: repetitions per benchmark; the minimum ns/op is reported")
	transport := flag.String("transport", "", "message transport backend: direct | loopback | tcp (default: $TAPESTRY_TRANSPORT, then direct)")
	flag.Parse()

	if *transport != "" {
		if _, err := tapestry.ParseTransport(*transport); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		os.Setenv("TAPESTRY_TRANSPORT", *transport)
	}

	if *benchJSON {
		runMicro(*benchBaseline, *benchTolerance, *benchTime, *benchCount)
		return
	}

	pattern := *run
	if pattern == "" {
		pattern = *only
	}
	params := expt.DefaultParams()
	if *quick {
		params = expt.QuickParams()
	}
	if *scalePoints > 0 {
		params.ScalePoints = *scalePoints
	}
	if *scaleNodes > 0 {
		params.ScaleNodes = *scaleNodes
	}
	if *hotspotN > 0 {
		params.HotspotN = *hotspotN
	}
	if *hotspotQueries > 0 {
		params.HotspotQueries = *hotspotQueries
	}
	if *planetNodes > 0 {
		params.PlanetNodes = *planetNodes
	}
	if *planetObjects > 0 {
		params.PlanetObjects = *planetObjects
	}
	if *ninesN > 0 {
		params.NinesN = *ninesN
	}
	if *ninesQueries > 0 {
		params.NinesQueries = *ninesQueries
	}
	if *chaosN > 0 {
		params.ChaosN = *chaosN
	}
	if *chaosScenario != "" {
		params.ChaosScenarios = strings.Split(*chaosScenario, ",")
		if err := expt.ValidateScenarios(params.ChaosScenarios); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(2)
		}
	}
	// The sampled static build parallelises under the same worker budget as
	// the cell pool; its output is byte-identical for every value.
	params.PlanetBuildWorkers = *workers
	if *protocol != "" {
		selected := strings.Split(*protocol, ",")
		if err := expt.ValidateProtocols(selected); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(2)
		}
		params.FaceoffProtocols = selected
		params.ChaosProtocols = selected
	}

	r := expt.Runner{Seed: *seed, Workers: *workers, Params: params}
	if err := r.RunAndEmit(os.Stdout, pattern, *format); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(2)
	}
}

// runMicro executes the micro-benchmark set, writes BENCH_micro.json to
// stdout, and — when a baseline is given — exits 1 if any benchmark
// regresses past the tolerance gate.
func runMicro(baselinePath string, tolerance float64, benchTime time.Duration, count int) {
	results := microbench.Run(microbench.Benches(), microbench.Options{
		BenchTime: benchTime,
		Count:     count,
		Verbose:   os.Stderr,
	})
	if err := microbench.WriteJSON(os.Stdout, results); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(2)
	}
	if baselinePath == "" {
		return
	}
	f, err := os.Open(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(2)
	}
	baseline, err := microbench.ReadJSON(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(2)
	}
	if violations := microbench.Compare(baseline, results, tolerance); len(violations) > 0 {
		fmt.Fprintln(os.Stderr, "benchtables: benchmark regression gate FAILED:")
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  "+v)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "benchtables: benchmark gate passed vs", baselinePath)
}
