// Command benchtables regenerates every table and figure of the paper's
// evaluation at configurable scale and prints them in paper style. This is
// the reference generator behind EXPERIMENTS.md.
//
// Usage:
//
//	benchtables            # full suite at default (paper-comparable) scale
//	benchtables -quick     # reduced sizes for a fast smoke run
//	benchtables -only E5   # a single experiment by id (E0..E15, A1..A3)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tapestry/internal/expt"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sizes for a fast run")
	only := flag.String("only", "", "run a single experiment id (E0..E15, A1..A3)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	flag.Parse()

	sizes := []int{64, 256, 1024, 4096}
	queries := 2048
	nnN, stretchN, balanceN := 256, 512, 512
	if *quick {
		sizes = []int{64, 256}
		queries = 256
		nnN, stretchN, balanceN = 64, 128, 128
	}
	joinSizes := sizes
	if len(joinSizes) > 3 {
		joinSizes = joinSizes[:3] // dynamic joins at 4096 take minutes; cap
	}

	experiments := []struct {
		id  string
		run func() expt.Table
	}{
		{"E0", func() expt.Table { return expt.MetricExpansion(*seed) }},
		{"E1", func() expt.Table { return expt.Table1Hops(sizes, queries, *seed) }},
		{"E2", func() expt.Table { return expt.Table1Space(sizes, *seed+1) }},
		{"E3", func() expt.Table { return expt.Table1InsertCost(joinSizes, *seed+2) }},
		{"E4", func() expt.Table { return expt.Table1Balance(balanceN, 8*balanceN, *seed+3) }},
		{"E5", func() expt.Table { return expt.StretchVsDistance(stretchN, 256, 4*queries, *seed+4) }},
		{"E6", func() expt.Table { return expt.SurrogateOverhead(sizes, 512, *seed+5) }},
		{"E7", func() expt.Table {
			return expt.NNCorrectness(nnN, []int{4, 8, 16, 32, 64, nnN}, *seed+6)
		}},
		{"E8", func() expt.Table { return expt.Multicast(stretchN, *seed+7) }},
		{"E9", func() expt.Table { return expt.AvailabilityDuringJoin(64, 32, *seed+8) }},
		{"E10", func() expt.Table { return expt.ParallelJoin(32, 5, 8, *seed+9) }},
		{"E11", func() expt.Table { return expt.Deletion(nnN, *seed+10) }},
		{"E12", func() expt.Table { return expt.OptimizePointers(96, 24, *seed+11) }},
		{"E13", func() expt.Table { return expt.StubLocality(*seed + 12) }},
		{"E14", func() expt.Table { return expt.GeneralMetric([]int{64, 128, 256, 512}, *seed+13) }},
		{"E15", func() expt.Table { return expt.MultiRoot(stretchN, []int{1, 2, 4}, 0.15, *seed+14) }},
		{"E16", func() expt.Table { return expt.ContinualOptimization(nnN, *seed+18) }},
		{"A1", func() expt.Table { return expt.AblationSurrogate(stretchN, *seed+15) }},
		{"A2", func() expt.Table { return expt.AblationR(stretchN, []int{2, 3, 4}, *seed+16) }},
		{"A3", func() expt.Table { return expt.AblationBase(stretchN, []int{4, 8, 16, 32}, *seed+17) }},
	}

	ran := 0
	for _, e := range experiments {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		fmt.Printf("[%s]\n%s\n", e.id, e.run())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment id %q\n", *only)
		os.Exit(2)
	}
}
