module tapestry

go 1.22
