package tapestry

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

// TestPublicAPIGolden is the facade's apidiff guard: every signature listed
// in testdata/api.golden must exist, verbatim, in the package's current
// exported surface. Additions are allowed (regenerate the golden with
// `go test -run TestPublicAPIGolden -update .` so they become pinned too);
// removing or changing a pinned symbol fails the test. This is what keeps
// tapestry.New and the rest of the pre-NewProtocol surface stable across
// facade refactors.

var updateGolden = flag.Bool("update", false, "rewrite testdata/api.golden from the current exported surface")

const goldenPath = "testdata/api.golden"

// renderNode prints an AST node and collapses it onto one line.
func renderNode(fset *token.FileSet, node interface{}) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		panic(err)
	}
	s := buf.String()
	s = strings.ReplaceAll(s, "\n", "; ")
	s = strings.Join(strings.Fields(s), " ")
	return s
}

// recvExported reports whether a method receiver's base type is exported.
func recvExported(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// exportedFieldsOnly strips unexported fields from struct types, so the
// golden pins the public shape without freezing private internals.
func exportedFieldsOnly(t ast.Expr) ast.Expr {
	st, ok := t.(*ast.StructType)
	if !ok {
		return t
	}
	kept := &ast.FieldList{}
	for _, f := range st.Fields.List {
		var names []*ast.Ident
		for _, name := range f.Names {
			if name.IsExported() {
				names = append(names, name)
			}
		}
		if len(names) == 0 {
			continue
		}
		kept.List = append(kept.List, &ast.Field{Names: names, Type: f.Type})
	}
	return &ast.StructType{Struct: st.Struct, Fields: kept}
}

// publicSurface parses the package's non-test files and renders every
// exported declaration as one line.
func publicSurface(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					if d.Recv != nil && !recvExported(d.Recv) {
						continue
					}
					cp := *d
					cp.Body = nil
					cp.Doc = nil
					out = append(out, renderNode(fset, &cp))
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if !s.Name.IsExported() {
								continue
							}
							assign := " "
							if s.Assign != token.NoPos {
								assign = " = "
							}
							out = append(out, fmt.Sprintf("type %s%s%s",
								s.Name.Name, assign, renderNode(fset, exportedFieldsOnly(s.Type))))
						case *ast.ValueSpec:
							kw := "var"
							if d.Tok == token.CONST {
								kw = "const"
							}
							for _, name := range s.Names {
								if name.IsExported() {
									out = append(out, fmt.Sprintf("%s %s", kw, name.Name))
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

func TestPublicAPIGolden(t *testing.T) {
	current := publicSurface(t)
	if *updateGolden {
		var b strings.Builder
		b.WriteString("# Exported surface of package tapestry, one declaration per line.\n")
		b.WriteString("# Every line must stay present verbatim; regenerate with\n")
		b.WriteString("#   go test -run TestPublicAPIGolden -update .\n")
		for _, line := range current {
			b.WriteString(line)
			b.WriteByte('\n')
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d symbols)", goldenPath, len(current))
		return
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing %s (run with -update to create it): %v", goldenPath, err)
	}
	have := make(map[string]bool, len(current))
	for _, line := range current {
		have[line] = true
	}
	var missing []string
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !have[line] {
			missing = append(missing, line)
		}
	}
	if len(missing) > 0 {
		t.Errorf("public facade symbols changed or removed (%d):", len(missing))
		for _, m := range missing {
			t.Errorf("  pinned but absent: %s", m)
		}
		t.Error("if the change is intentional, regenerate with -update and call it out in the PR")
	}
}
