// Package tapestry is a Go implementation of Tapestry — the
// location-independent routing infrastructure of Hildrum, Kubiatowicz, Rao
// and Zhao, "Distributed Object Location in a Dynamic Network" (SPAA 2002) —
// together with the substrates and baselines needed to reproduce the paper's
// evaluation.
//
// The facade wraps the unified overlay layer (internal/overlay) behind a
// small API: create a Network over a metric space, Join nodes, Publish and
// Locate objects by name, and churn membership with Leave/Fail. Every
// operation returns exact cost accounting (messages, application-level hops,
// metric distance traveled) from the underlying network simulator.
//
//	space := tapestry.RingSpace(4096)
//	net, _ := tapestry.New(space, tapestry.Defaults())
//	nodes, _ := net.Grow(1024)
//	nodes[0].Publish("my-object")
//	res, cost := nodes[42].Locate("my-object")
//
// New always builds Tapestry itself. NewProtocol returns the same
// Network/Node surface backed by any of the paper's comparison systems —
// Chord, Pastry, CAN or the centralized directory — so library users pick a
// protocol the way they pick a metric space. Operations a protocol has no
// honest implementation of return an error matching ErrUnsupported (check
// with errors.Is); they never panic and never fake success.
package tapestry

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"tapestry/internal/core"
	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/overlay"
)

// Space is a finite metric space; overlay nodes live at its points and every
// message is charged the metric distance between its endpoints.
type Space = metric.Space

// RingSpace returns a 1-D cycle metric on n points (expansion constant 2).
func RingSpace(n int) Space { return metric.NewRing(n) }

// TorusSpace returns an s×s wraparound-L1 lattice (expansion ≲ 4).
func TorusSpace(side int) Space { return metric.NewTorus2D(side) }

// CloudSpace returns n uniform random points on the unit 2-torus.
func CloudSpace(n int, seed int64) Space {
	return metric.NewUniformCloud(n, rand.New(rand.NewSource(seed)))
}

// RandomGraphSpace returns the shortest-path metric of a connected random
// graph — generally NOT growth-restricted (see the Section 7 scheme).
func RandomGraphSpace(n, degree int, seed int64) Space {
	return metric.NewRandomGraph(n, degree, 10, rand.New(rand.NewSource(seed)))
}

// TransitStubSpace returns the Zegura-style Internet model of Section 6.2,
// with stub-region labels that enable the locality optimization.
func TransitStubSpace(seed int64) Space {
	return metric.NewTransitStub(metric.DefaultTransitStub(), rand.New(rand.NewSource(seed)))
}

// ScaledTransitStubSpace returns a transit-stub space with at least the
// given number of points. Above metric.DenseLimit points the space is backed
// by the on-demand shortest-path representation (adjacency lists plus a
// bounded per-source row cache) instead of an n×n matrix, so substrates of
// 50k–100k points fit in hundreds of MB rather than tens of GB.
func ScaledTransitStubSpace(points int, seed int64) Space {
	return metric.NewTransitStub(metric.ScaledTransitStub(points), rand.New(rand.NewSource(seed)))
}

// Protocol selects the overlay system backing a Network.
type Protocol int

const (
	// Tapestry is the paper's own protocol: a DOLR with routing locality,
	// in-network object pointers, soft-state maintenance and the serving
	// layer. The full facade surface is available.
	Tapestry Protocol = iota
	// Chord is the DHT baseline [Stoica et al., SIGCOMM'01]: O(log n) hops
	// and state, no locality. Supports join, leave, fail and maintenance
	// (ring re-formation); no unpublish, multicast or locality queries.
	Chord
	// Pastry is the prefix-routing baseline [Rowstron & Druschel,
	// Middleware'01] built statically with proximity neighbor selection.
	// Static snapshot: publish and locate only.
	Pastry
	// CAN is the coordinate-space baseline [Ratnasamy et al., SIGCOMM'01].
	// Supports dynamic joins (zone splits); leave and fail are honestly
	// declined (the one-zone-per-node model cannot merge zones).
	CAN
	// Directory is the centralized strawman the paper opens with: clients
	// join, leave and fail freely, the single server answers everything.
	Directory
)

// String returns the registry name of the protocol.
func (p Protocol) String() string {
	switch p {
	case Tapestry:
		return "tapestry"
	case Chord:
		return "chord"
	case Pastry:
		return "pastry"
	case CAN:
		return "can"
	case Directory:
		return "directory"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// ErrUnsupported is matched (via errors.Is) by every error returned from an
// operation the backing protocol declines — e.g. Leave on a CAN-backed
// Network, or Multicast on anything but Tapestry.
var ErrUnsupported = overlay.ErrUnsupported

// Transport selects the node-to-node message backend of a Tapestry-backed
// Network (see the README "Wire format & transports" section). Non-Tapestry
// protocols ignore it.
type Transport int

const (
	// TransportAuto consults the TAPESTRY_TRANSPORT environment variable
	// (direct | loopback | tcp) and falls back to TransportDirect.
	TransportAuto Transport = Transport(core.TransportAuto)
	// TransportDirect delivers messages as in-process calls — the default,
	// byte-identical to builds without the transport seam.
	TransportDirect Transport = Transport(core.TransportDirect)
	// TransportLoopback round-trips every message through the wire codec
	// before the peer sees it, with identical simulated-cost accounting.
	TransportLoopback Transport = Transport(core.TransportLoopback)
	// TransportTCP additionally carries every message over a real localhost
	// socket. Incompatible with Config.EventDriven.
	TransportTCP Transport = Transport(core.TransportTCP)
)

// String returns the flag spelling of the transport.
func (t Transport) String() string { return core.TransportKind(t).String() }

// ParseTransport maps a flag/environment spelling ("direct", "loopback",
// "tcp", or ""/"auto") onto a Transport.
func ParseTransport(s string) (Transport, error) {
	k, err := core.ParseTransport(s)
	return Transport(k), err
}

// Cost is the expense ledger of one operation: messages, application-level
// hops, and total metric distance.
type Cost struct {
	Messages int
	Hops     int
	Distance float64
}

func costOf(c *netsim.Cost) Cost {
	m, h, d := c.Snapshot()
	return Cost{Messages: m, Hops: h, Distance: d}
}

// Config shapes a Tapestry network. The zero value is not valid; start from
// Defaults().
type Config struct {
	// Base and Digits shape the identifier space (radix and length).
	Base, Digits int
	// R is the neighbor-set capacity (primary + backups); >= 2.
	R int
	// K is the nearest-neighbor list width; 0 = auto (O(log n)).
	K int
	// RootSetSize is the number of salted roots per object (fault tolerance).
	RootSetSize int
	// Roots is the availability-tier spelling of RootSetSize: when > 0 it
	// overrides RootSetSize as the per-object salted root count r. The two
	// names coexist so existing configurations keep working.
	Roots int
	// Replicas is the object replication factor k: each Publish places the
	// object on the publishing node plus the k-1 closest live peers, selected
	// by the nearest-neighbor engine with locality-aware region spread.
	// 0 or 1 places a single copy (today's behavior, bit-identical).
	Replicas int
	// PRRRouting selects the distributed PRR-like surrogate variant instead
	// of Tapestry-native next-filled-digit routing.
	PRRRouting bool
	// PointerTTL is the soft-state object-pointer lifetime in maintenance
	// epochs.
	PointerTTL int
	// LocateCacheCap bounds the per-node LRU of cached location mappings
	// populated on the return path of successful locates — the hot-object
	// serving layer. 0 (the default) disables it; behavior is then
	// bit-identical to builds without the cache.
	LocateCacheCap int
	// LocateCacheTTL is the cached-mapping lifetime in maintenance epochs;
	// 0 follows PointerTTL.
	LocateCacheTTL int
	// Seed drives all randomized choices (IDs, root selection).
	Seed int64
	// StaticBuild selects the oracle static construction for the initial
	// bulk Grow on an empty Tapestry overlay (exact R-closest tables from
	// global knowledge, built across BuildWorkers shards) instead of
	// sequential dynamic insertion. Later Grow/AddNode calls still insert
	// dynamically.
	StaticBuild bool
	// BuildWorkers shards the static bulk construction (0 = one worker per
	// CPU). The built overlay is byte-identical for every value.
	BuildWorkers int
	// Transport selects the message backend of a Tapestry-backed network:
	// in-process direct calls (the default), a wire-codec loopback, or real
	// TCP sockets. TCP is incompatible with EventDriven. Call Network.Close
	// when done with a TCP-backed network.
	Transport Transport
	// EventDriven selects the discrete-event virtual-time execution backend:
	// operations scheduled with Network.Schedule run under a deterministic
	// event loop in which every message takes its metric distance in virtual
	// time. Operations invoked outside Schedule/RunEvents keep direct-call
	// semantics. See the README "Execution model" section.
	EventDriven bool
	// LinkLossRate and LinkDupRate inject seeded link faults from creation:
	// each message is independently dropped (the sender learns only by
	// timeout) or delivered twice with these probabilities. Both zero (the
	// default) keeps the network's behavior bit-identical to builds without
	// fault injection; rates must lie in [0,1] with their sum at most 1.
	// The draw stream derives from Seed, so runs replay exactly. See also
	// Network.SetLinkFaults for mid-run reconfiguration.
	LinkLossRate float64
	LinkDupRate  float64
}

// Defaults returns the deployed-Tapestry configuration: hexadecimal digits,
// R=3 (primary + two backups), single root, TTL 3 epochs.
func Defaults() Config {
	return Config{Base: 16, Digits: 8, R: 3, RootSetSize: 1, PointerTTL: 3, Seed: 1}
}

func (c Config) toCore() core.Config {
	cc := core.DefaultConfig()
	cc.Spec = ids.Spec{Base: c.Base, Digits: c.Digits}
	cc.R = c.R
	cc.K = c.K
	cc.RootSetSize = c.RootSetSize
	if c.Roots > 0 {
		cc.RootSetSize = c.Roots
	}
	cc.Replicas = c.Replicas
	if c.PRRRouting {
		cc.Surrogate = core.SchemePRRLike
	}
	cc.PointerTTL = int64(c.PointerTTL)
	cc.LocateCacheCap = c.LocateCacheCap
	cc.LocateCacheTTL = int64(c.LocateCacheTTL)
	cc.Seed = c.Seed
	cc.BuildWorkers = c.BuildWorkers
	cc.Transport = core.TransportKind(c.Transport)
	return cc
}

// toOverlay maps the public configuration onto the overlay builder's.
func (c Config) toOverlay(p Protocol) overlay.Config {
	oc := overlay.Config{
		Spec:   ids.Spec{Base: c.Base, Digits: c.Digits},
		Seed:   c.Seed,
		Static: c.StaticBuild,
	}
	if p == Tapestry {
		cc := c.toCore()
		oc.Core = &cc
	}
	return oc
}

// Network is one overlay instance over a simulated metric space, backed by
// the protocol it was created with.
type Network struct {
	kind  Protocol
	proto overlay.Protocol
	mesh  *core.Mesh // non-nil only for Tapestry (extended surface)
	sim   *netsim.Network
	seed  int64 // fault-injection draw stream (see SetLinkFaults)

	mu   sync.Mutex
	rng  *rand.Rand
	free []int // shuffled free-address stack (see freeAddr)
}

// New creates an empty Tapestry overlay over the space.
func New(space Space, cfg Config) (*Network, error) {
	return NewProtocol(space, Tapestry, cfg)
}

// NewProtocol creates an empty overlay over the space, backed by any of the
// five location systems. The returned Network exposes the same surface for
// every protocol; operations outside the protocol's capabilities return an
// error matching ErrUnsupported (methods without an error return document
// their degraded behavior).
func NewProtocol(space Space, p Protocol, cfg Config) (*Network, error) {
	b, err := overlay.Lookup(p.String())
	if err != nil {
		return nil, err
	}
	sim := netsim.New(space)
	if cfg.EventDriven {
		sim.AttachEngine(netsim.NewEngine(cfg.Seed))
	}
	if cfg.LinkLossRate != 0 || cfg.LinkDupRate != 0 {
		if err := validFaultRates(cfg.LinkLossRate, cfg.LinkDupRate); err != nil {
			return nil, err
		}
		sim.SetLinkFaults(cfg.LinkLossRate, cfg.LinkDupRate, cfg.Seed)
	}
	proto, err := b.New(sim, cfg.toOverlay(p))
	if err != nil {
		return nil, err
	}
	nw := &Network{
		kind:  p,
		proto: proto,
		sim:   sim,
		seed:  cfg.Seed,
		rng:   rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
	}
	nw.mesh, _ = overlay.CoreMesh(proto)
	return nw, nil
}

// Protocol reports which overlay system backs this network.
func (nw *Network) Protocol() Protocol { return nw.kind }

// Close releases resources held by the message transport — the TCP backend's
// listener and connection pool; the in-process backends hold none, so Close
// is then a cheap no-op. The Network must not be used afterwards.
func (nw *Network) Close() error {
	if nw.mesh != nil {
		return nw.mesh.Close()
	}
	return nil
}

// Caps renders the backing protocol's capability set as a comma-separated
// list (e.g. "join,leave,fail,unpublish,maintain,locality,cache,replication";
// a protocol with no dynamic capabilities reports "static"). Programs should
// prefer attempting an operation and checking errors.Is(err, ErrUnsupported).
func (nw *Network) Caps() string { return nw.proto.Caps().String() }

// Node is one overlay participant.
type Node struct {
	nw    *Network
	h     overlay.Handle
	inner *core.Node // non-nil only on Tapestry-backed networks
}

func (nw *Network) wrap(h overlay.Handle) *Node {
	n := &Node{nw: nw, h: h}
	n.inner, _ = overlay.CoreNode(h)
	return n
}

// ID returns the node's identifier rendered as a digit string (or the
// backing protocol's identifier rendering).
func (n *Node) ID() string { return n.h.Label() }

// Addr returns the node's location (point index in the metric space).
func (n *Node) Addr() int { return int(n.h.Addr()) }

// Size returns the current number of overlay members.
func (nw *Network) Size() int { return len(nw.proto.Handles()) }

// Nodes returns all current members.
func (nw *Network) Nodes() []*Node {
	hs := nw.proto.Handles()
	out := make([]*Node, len(hs))
	for i, h := range hs {
		out[i] = nw.wrap(h)
	}
	return out
}

// TotalMessages returns the network-wide message count since creation.
func (nw *Network) TotalMessages() int64 { return nw.sim.TotalMessages() }

// validFaultRates rejects rates outside [0,1] or summing past 1 (NaN
// included) before they reach the simulator, which treats them as a
// programming error.
func validFaultRates(loss, dup float64) error {
	ok := func(r float64) bool { return r >= 0 && r <= 1 }
	if !ok(loss) || !ok(dup) || !(loss+dup <= 1) {
		return fmt.Errorf("tapestry: invalid link fault rates loss=%v dup=%v (want [0,1], sum <= 1)", loss, dup)
	}
	return nil
}

// SetLinkFaults reconfigures seeded link-fault injection mid-run: each
// subsequent message is independently dropped with probability loss (the
// sender learns only by timeout) or delivered twice with probability dup.
// Zero rates restore fault-free delivery; the injected-fault tallies appear
// in Stats. The draw stream derives from the network's seed, so identically
// seeded runs replay exactly.
func (nw *Network) SetLinkFaults(loss, dup float64) error {
	if err := validFaultRates(loss, dup); err != nil {
		return err
	}
	nw.sim.SetLinkFaults(loss, dup, nw.seed)
	return nil
}

// ClearFaults removes all injected link faults and any partition mask,
// restoring fault-free delivery.
func (nw *Network) ClearFaults() { nw.sim.ClearFaults() }

// ErrNotEventDriven is returned by the virtual-time surface (Schedule,
// RunEvents) on a network built without Config.EventDriven.
var ErrNotEventDriven = errors.New("tapestry: network is not event-driven (set Config.EventDriven)")

// Schedule registers fn to start as an operation at virtual time `at` on the
// event-driven backend. fn runs when RunEvents drains the queue; overlay
// calls it makes (Locate, Publish, Leave, ...) then park at every simulated
// message, so scheduled operations genuinely interleave in virtual time.
func (nw *Network) Schedule(at float64, fn func()) error {
	e := nw.sim.Engine()
	if e == nil {
		return ErrNotEventDriven
	}
	e.At(at, fn)
	return nil
}

// RunEvents drains the scheduled-event queue deterministically, advancing
// the virtual clock; it returns once every scheduled operation has finished.
// It may be called repeatedly as more work is scheduled (the clock keeps
// rising). Do not invoke overlay operations from other goroutines while
// RunEvents is draining.
func (nw *Network) RunEvents() error {
	e := nw.sim.Engine()
	if e == nil {
		return ErrNotEventDriven
	}
	e.Run()
	return nil
}

// VirtualNow returns the event backend's virtual clock (0 on direct-call
// networks, where no virtual time ever passes).
func (nw *Network) VirtualNow() float64 {
	if e := nw.sim.Engine(); e != nil {
		return e.Now()
	}
	return 0
}

// RegionOf returns the locality region (stub domain) of a point in the
// metric space, or -1 when the space has no region structure (only
// transit-stub spaces label regions; transit routers are -1 too).
func (nw *Network) RegionOf(addr int) int {
	if r := metric.Regions(nw.sim.Space()); len(r) > 0 {
		return r[addr]
	}
	return -1
}

// AddNode inserts a node at the given point: the first call bootstraps the
// overlay, later calls run the protocol's dynamic insertion through a
// random gateway. It returns the node and the insertion cost. Protocols
// without dynamic insertion (Pastry) decline with ErrUnsupported — use one
// bulk Grow call instead.
func (nw *Network) AddNode(addr int) (*Node, Cost, error) {
	h, cost, err := nw.proto.Join(netsim.Addr(addr))
	if err != nil {
		return nil, costOf(cost), err
	}
	return nw.wrap(h), costOf(cost), nil
}

// Grow adds count nodes at distinct random free points and returns them. On
// an empty overlay the whole batch is built in one pass (the only way to
// populate protocols without dynamic insertion); later calls insert
// dynamically one by one.
func (nw *Network) Grow(count int) ([]*Node, error) {
	if nw.Size() == 0 {
		addrs, err := nw.freeAddrs(count)
		if err != nil {
			return nil, err
		}
		hs, _, err := nw.proto.Build(addrs)
		if err != nil {
			return nil, err
		}
		out := make([]*Node, len(hs))
		for i, h := range hs {
			out[i] = nw.wrap(h)
		}
		return out, nil
	}
	out := make([]*Node, 0, count)
	for i := 0; i < count; i++ {
		addr, err := nw.freeAddr()
		if err != nil {
			return out, err
		}
		n, _, err := nw.AddNode(addr)
		if err != nil {
			return out, err
		}
		out = append(out, n)
	}
	return out, nil
}

// isFreeLocked reports whether a point hosts no member (the directory's
// server also occupies its point). Callers hold nw.mu.
func (nw *Network) isFreeLocked(a int) bool {
	return !nw.sim.Alive(netsim.Addr(a))
}

// freeAddr allocates one random free point. The allocator is a shuffled
// stack of candidate addresses: each call pops until it hits a still-free
// point, and the stack is rebuilt (reshuffled over the currently free set)
// only when exhausted — so a full overlay construction costs O(size) total
// instead of the O(size) per call a linear probe pays on a dense space
// (quadratic growth; see BenchmarkFreeAddr).
func (nw *Network) freeAddr() (int, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.freeAddrLocked()
}

func (nw *Network) freeAddrLocked() (int, error) {
	for pass := 0; pass < 2; pass++ {
		for len(nw.free) > 0 {
			a := nw.free[len(nw.free)-1]
			nw.free = nw.free[:len(nw.free)-1]
			if nw.isFreeLocked(a) {
				return a, nil
			}
		}
		// Rebuild over the points currently free — departures (Leave/Fail)
		// may have freed addresses already consumed from the last stack.
		for a := 0; a < nw.sim.Size(); a++ {
			if nw.isFreeLocked(a) {
				nw.free = append(nw.free, a)
			}
		}
		nw.rng.Shuffle(len(nw.free), func(i, j int) {
			nw.free[i], nw.free[j] = nw.free[j], nw.free[i]
		})
	}
	return 0, errors.New("tapestry: metric space is full")
}

// freeAddrs allocates count distinct free points for a bulk build. The
// pending picks are not yet attached to the network, so a mid-batch stack
// rebuild must not hand them out again.
func (nw *Network) freeAddrs(count int) ([]netsim.Addr, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	pending := make(map[int]bool, count)
	out := make([]netsim.Addr, 0, count)
	for len(out) < count {
		a, err := nw.freeAddrLocked()
		if err != nil {
			return nil, err
		}
		if pending[a] {
			// The stack was rebuilt mid-batch and re-listed a pending pick;
			// if every remaining free point is pending, the space is full.
			if len(pending) >= nw.spaceFreeLocked() {
				return nil, errors.New("tapestry: metric space is full")
			}
			continue
		}
		pending[a] = true
		out = append(out, netsim.Addr(a))
	}
	return out, nil
}

// spaceFreeLocked counts currently free points. Callers hold nw.mu.
func (nw *Network) spaceFreeLocked() int {
	free := 0
	for a := 0; a < nw.sim.Size(); a++ {
		if nw.isFreeLocked(a) {
			free++
		}
	}
	return free
}

// Publish announces that this node stores a replica of the named object.
func (n *Node) Publish(name string) (Cost, error) {
	c, err := n.nw.proto.Publish(n.h, name)
	return costOf(c), err
}

// PublishLocal additionally publishes a stub-local branch (Section 6.3); on
// metrics without region structure it behaves like Publish. Protocols
// without locality structure (everything but Tapestry) decline with
// ErrUnsupported.
func (n *Node) PublishLocal(name string) (Cost, error) {
	if n.inner == nil {
		return Cost{}, fmt.Errorf("tapestry: %s: %w", n.nw.kind, ErrUnsupported)
	}
	var c netsim.Cost
	err := n.inner.PublishLocal(n.nw.guid(name), &c)
	return costOf(&c), err
}

// Unpublish withdraws this node's replica of the named object. The
// signature predates protocol selection and carries no error, so failures
// are reported through the Cost: a capability refusal (Chord, Pastry, CAN —
// the soft state simply persists) returns a zero Cost, and a genuine
// failure (e.g. a withdrawal RPC from an already-failed directory client)
// returns the cost of the failed attempt with the registration left in
// place.
func (n *Node) Unpublish(name string) Cost {
	c, _ := n.nw.proto.Unpublish(n.h, name)
	return costOf(c)
}

// UnpublishChecked is Unpublish with the error surfaced: a capability
// refusal matches ErrUnsupported, and genuine failures (e.g. a withdrawal
// RPC from an already-failed directory client) report what went wrong
// instead of masquerading as success.
func (n *Node) UnpublishChecked(name string) (Cost, error) {
	c, err := n.nw.proto.Unpublish(n.h, name)
	return costOf(c), err
}

// Result reports an object location.
type Result struct {
	Found      bool
	ServerID   string // the replica's node identifier
	ServerAddr int    // the replica's location
	Hops       int
	FromCache  bool // answered from a cached location mapping (serving layer)
}

func resultOf(r overlay.Result) Result {
	return Result{Found: r.Found, ServerID: r.ServerID, ServerAddr: int(r.Server),
		Hops: r.Hops, FromCache: r.FromCache}
}

// Locate routes a query for the named object toward its root, stopping at
// the first object pointer and proceeding to the closest replica (or the
// backing protocol's equivalent lookup).
func (n *Node) Locate(name string) (Result, Cost) {
	res, c := n.nw.proto.Locate(n.h, name)
	return resultOf(res), costOf(c)
}

// LocateLocal is the two-phase Section 6.3 query: stub-restricted first,
// wide-area on a miss. The bool reports whether the query stayed local. On
// protocols without locality structure it behaves exactly like Locate (and
// never reports local).
func (n *Node) LocateLocal(name string) (Result, Cost, bool) {
	if n.inner == nil {
		res, cost := n.Locate(name)
		return res, cost, false
	}
	var c netsim.Cost
	res, local := n.inner.LocateLocal(n.nw.guid(name), &c)
	return Result{Found: res.Found, ServerID: res.Server.String(),
		ServerAddr: int(res.ServerAddr), Hops: res.Hops,
		FromCache: res.FromCache}, costOf(&c), local
}

// Multicast contacts every overlay node whose identifier shares the first
// prefixLen digits of this node's ID (acknowledged multicast, Section 4.1),
// invoking fn with each reached node's ID. It returns the number of nodes
// reached; the call returns only after every acknowledgment is in. Only
// Tapestry structures its membership by prefix; every other protocol
// declines with ErrUnsupported.
func (n *Node) Multicast(prefixLen int, fn func(nodeID string)) (int, Cost, error) {
	if n.inner == nil {
		return 0, Cost{}, fmt.Errorf("tapestry: %s: %w", n.nw.kind, ErrUnsupported)
	}
	var c netsim.Cost
	var wrapped func(*core.Node)
	if fn != nil {
		var mu sync.Mutex
		wrapped = func(x *core.Node) {
			mu.Lock()
			defer mu.Unlock()
			fn(x.ID().String())
		}
	}
	reached, err := n.inner.AcknowledgedMulticast(n.inner.ID().Prefix(prefixLen), wrapped, &c)
	return len(reached), costOf(&c), err
}

// Leave removes the node gracefully (two-phase voluntary delete, Section
// 5.1): neighbors repair their tables and objects remain available.
// Protocols without graceful departure (Pastry, CAN) decline with
// ErrUnsupported.
func (n *Node) Leave() (Cost, error) {
	c, err := n.nw.proto.Leave(n.h)
	return costOf(c), err
}

// Fail kills the node without notice (Section 5.2). The overlay discovers
// the corpse lazily; objects rooted there stay unavailable until the next
// maintenance epoch republishes them. Protocols that cannot survive
// involuntary failure (Pastry, CAN) decline: the node stays alive and the
// call is a no-op.
func (nw *Network) Fail(n *Node) {
	_ = nw.proto.Fail(n.h) // capability refusal: documented no-op here
}

// RunMaintenance advances one soft-state epoch: expired pointers vanish,
// every served object is republished (Tapestry), or the ring re-forms among
// survivors (Chord). Protocols without maintenance return a zero Cost.
func (nw *Network) RunMaintenance() Cost {
	c, err := nw.proto.Maintain()
	_ = err // capability refusal: documented no-op for this signature
	return costOf(c)
}

// SweepFailures makes every node probe its neighbors and repair dead links
// (the heartbeat pass of Section 6.5). The probes are coalesced mesh-wide:
// each distinct neighbor is probed once per sweep and the verdict shared
// among its holders. Returns the number of links removed; zero on protocols
// without link repair.
func (nw *Network) SweepFailures() int {
	if nw.mesh == nil {
		return 0
	}
	return nw.mesh.SweepDeadAll(nil)
}

// guid hashes an object name into the identifier namespace (Tapestry only).
func (nw *Network) guid(name string) ids.ID { return nw.mesh.Spec().Hash(name) }

// CheckConsistency audits Property 1 (no false holes) and root uniqueness
// over sample keys, returning human-readable violations (empty = healthy).
// Only Tapestry defines these invariants; other protocols report nothing.
func (nw *Network) CheckConsistency() []string {
	if nw.mesh == nil {
		return nil
	}
	out := nw.mesh.AuditProperty1()
	nw.mu.Lock()
	keys := []ids.ID{
		nw.mesh.Spec().Random(nw.rng),
		nw.mesh.Spec().Random(nw.rng),
		nw.mesh.Spec().Random(nw.rng),
	}
	nw.mu.Unlock()
	return append(out, nw.mesh.AuditUniqueRoots(keys)...)
}

// Stats summarises the overlay.
type Stats struct {
	Nodes          int
	TotalMessages  int64
	MeanTableLinks float64
	TotalPointers  int

	// Serving-layer counters; all zero when the locate cache is disabled.
	CachedMappings  int   // location mappings currently cached across the overlay
	LocateCacheHits int64 // queries answered from a cached mapping
	LocateCacheMiss int64 // queries that went all the way to a pointer (or failed)

	// Availability-tier knobs in effect; zero on protocols without the
	// replication capability.
	Roots    int // salted roots per object
	Replicas int // replica servers per publish

	// Fault-injection counters; all zero unless link faults or a partition
	// were configured (Config.LinkLossRate/LinkDupRate, SetLinkFaults).
	LinkLost       int64 // messages dropped by injected link loss
	LinkDuplicated int64 // messages delivered twice by injected duplication
	LinkBlocked    int64 // messages refused by a partition mask
}

// Stats returns a snapshot of overlay-wide statistics.
func (nw *Network) Stats() Stats {
	os := nw.proto.Stats()
	ns := nw.sim.Stats()
	return Stats{
		Nodes:           os.Nodes,
		TotalMessages:   os.TotalMessages,
		MeanTableLinks:  os.MeanTableEntries,
		TotalPointers:   os.TotalPointers,
		CachedMappings:  os.CachedMappings,
		LocateCacheHits: os.CacheHits,
		LocateCacheMiss: os.CacheMisses,
		Roots:           os.Roots,
		Replicas:        os.Replicas,
		LinkLost:        ns.Lost,
		LinkDuplicated:  ns.Duplicated,
		LinkBlocked:     ns.Blocked,
	}
}

// String renders the stats compactly; serving-layer counters appear only
// once the cache has seen traffic, and the availability knobs only when they
// differ from the single-root, single-copy default — so default output is
// unchanged.
func (s Stats) String() string {
	out := fmt.Sprintf("nodes=%d messages=%d links/node=%.1f pointers=%d",
		s.Nodes, s.TotalMessages, s.MeanTableLinks, s.TotalPointers)
	if s.LocateCacheHits+s.LocateCacheMiss > 0 {
		out += fmt.Sprintf(" cached=%d hit%%=%.1f", s.CachedMappings,
			100*float64(s.LocateCacheHits)/float64(s.LocateCacheHits+s.LocateCacheMiss))
	}
	if s.Roots > 1 || s.Replicas > 1 {
		out += fmt.Sprintf(" roots=%d replicas=%d", s.Roots, s.Replicas)
	}
	if s.LinkLost+s.LinkDuplicated+s.LinkBlocked > 0 {
		out += fmt.Sprintf(" lost=%d dup=%d blocked=%d",
			s.LinkLost, s.LinkDuplicated, s.LinkBlocked)
	}
	return out
}
