// Package tapestry is a Go implementation of Tapestry — the
// location-independent routing infrastructure of Hildrum, Kubiatowicz, Rao
// and Zhao, "Distributed Object Location in a Dynamic Network" (SPAA 2002) —
// together with the substrates and baselines needed to reproduce the paper's
// evaluation.
//
// The facade wraps the core overlay (internal/core) behind a small API:
// create a Network over a metric space, Join nodes, Publish and Locate
// objects by name, and churn membership with Leave/Fail. Every operation
// returns exact cost accounting (messages, application-level hops, metric
// distance traveled) from the underlying network simulator.
//
//	space := tapestry.RingSpace(4096)
//	net, _ := tapestry.New(space, tapestry.Defaults())
//	nodes, _ := net.Grow(1024)
//	nodes[0].Publish("my-object")
//	res, cost := nodes[42].Locate("my-object")
package tapestry

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"tapestry/internal/core"
	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
)

// Space is a finite metric space; overlay nodes live at its points and every
// message is charged the metric distance between its endpoints.
type Space = metric.Space

// RingSpace returns a 1-D cycle metric on n points (expansion constant 2).
func RingSpace(n int) Space { return metric.NewRing(n) }

// TorusSpace returns an s×s wraparound-L1 lattice (expansion ≲ 4).
func TorusSpace(side int) Space { return metric.NewTorus2D(side) }

// CloudSpace returns n uniform random points on the unit 2-torus.
func CloudSpace(n int, seed int64) Space {
	return metric.NewUniformCloud(n, rand.New(rand.NewSource(seed)))
}

// RandomGraphSpace returns the shortest-path metric of a connected random
// graph — generally NOT growth-restricted (see the Section 7 scheme).
func RandomGraphSpace(n, degree int, seed int64) Space {
	return metric.NewRandomGraph(n, degree, 10, rand.New(rand.NewSource(seed)))
}

// TransitStubSpace returns the Zegura-style Internet model of Section 6.2,
// with stub-region labels that enable the locality optimization.
func TransitStubSpace(seed int64) Space {
	return metric.NewTransitStub(metric.DefaultTransitStub(), rand.New(rand.NewSource(seed)))
}

// ScaledTransitStubSpace returns a transit-stub space with at least the
// given number of points. Above metric.DenseLimit points the space is backed
// by the on-demand shortest-path representation (adjacency lists plus a
// bounded per-source row cache) instead of an n×n matrix, so substrates of
// 50k–100k points fit in hundreds of MB rather than tens of GB.
func ScaledTransitStubSpace(points int, seed int64) Space {
	return metric.NewTransitStub(metric.ScaledTransitStub(points), rand.New(rand.NewSource(seed)))
}

// Cost is the expense ledger of one operation: messages, application-level
// hops, and total metric distance.
type Cost struct {
	Messages int
	Hops     int
	Distance float64
}

func costOf(c *netsim.Cost) Cost {
	m, h, d := c.Snapshot()
	return Cost{Messages: m, Hops: h, Distance: d}
}

// Config shapes a Tapestry network. The zero value is not valid; start from
// Defaults().
type Config struct {
	// Base and Digits shape the identifier space (radix and length).
	Base, Digits int
	// R is the neighbor-set capacity (primary + backups); >= 2.
	R int
	// K is the nearest-neighbor list width; 0 = auto (O(log n)).
	K int
	// RootSetSize is the number of salted roots per object (fault tolerance).
	RootSetSize int
	// PRRRouting selects the distributed PRR-like surrogate variant instead
	// of Tapestry-native next-filled-digit routing.
	PRRRouting bool
	// PointerTTL is the soft-state object-pointer lifetime in maintenance
	// epochs.
	PointerTTL int
	// LocateCacheCap bounds the per-node LRU of cached location mappings
	// populated on the return path of successful locates — the hot-object
	// serving layer. 0 (the default) disables it; behavior is then
	// bit-identical to builds without the cache.
	LocateCacheCap int
	// LocateCacheTTL is the cached-mapping lifetime in maintenance epochs;
	// 0 follows PointerTTL.
	LocateCacheTTL int
	// Seed drives all randomized choices (IDs, root selection).
	Seed int64
}

// Defaults returns the deployed-Tapestry configuration: hexadecimal digits,
// R=3 (primary + two backups), single root, TTL 3 epochs.
func Defaults() Config {
	return Config{Base: 16, Digits: 8, R: 3, RootSetSize: 1, PointerTTL: 3, Seed: 1}
}

func (c Config) toCore() core.Config {
	cc := core.DefaultConfig()
	cc.Spec = ids.Spec{Base: c.Base, Digits: c.Digits}
	cc.R = c.R
	cc.K = c.K
	cc.RootSetSize = c.RootSetSize
	if c.PRRRouting {
		cc.Surrogate = core.SchemePRRLike
	}
	cc.PointerTTL = int64(c.PointerTTL)
	cc.LocateCacheCap = c.LocateCacheCap
	cc.LocateCacheTTL = int64(c.LocateCacheTTL)
	cc.Seed = c.Seed
	return cc
}

// Network is one Tapestry overlay over a simulated metric space.
type Network struct {
	mesh *core.Mesh
	sim  *netsim.Network

	mu  sync.Mutex
	rng *rand.Rand
}

// New creates an empty overlay over the space.
func New(space Space, cfg Config) (*Network, error) {
	sim := netsim.New(space)
	mesh, err := core.NewMesh(sim, cfg.toCore())
	if err != nil {
		return nil, err
	}
	return &Network{mesh: mesh, sim: sim, rng: rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))}, nil
}

// Node is one overlay participant.
type Node struct {
	nw    *Network
	inner *core.Node
}

// ID returns the node's identifier rendered as a digit string.
func (n *Node) ID() string { return n.inner.ID().String() }

// Addr returns the node's location (point index in the metric space).
func (n *Node) Addr() int { return int(n.inner.Addr()) }

// Size returns the current number of overlay members.
func (nw *Network) Size() int { return nw.mesh.Size() }

// Nodes returns all current members.
func (nw *Network) Nodes() []*Node {
	inner := nw.mesh.Nodes()
	out := make([]*Node, len(inner))
	for i, n := range inner {
		out[i] = &Node{nw: nw, inner: n}
	}
	return out
}

// TotalMessages returns the network-wide message count since creation.
func (nw *Network) TotalMessages() int64 { return nw.sim.TotalMessages() }

// RegionOf returns the locality region (stub domain) of a point in the
// metric space, or -1 when the space has no region structure (only
// transit-stub spaces label regions; transit routers are -1 too).
func (nw *Network) RegionOf(addr int) int {
	if r := metric.Regions(nw.sim.Space()); len(r) > 0 {
		return r[addr]
	}
	return -1
}

// AddNode inserts a node at the given point: the first call bootstraps the
// overlay, later calls run the full dynamic insertion protocol through a
// random gateway. It returns the node and the insertion cost.
func (nw *Network) AddNode(addr int) (*Node, Cost, error) {
	nw.mu.Lock()
	id := nw.mesh.Spec().Random(nw.rng)
	for nw.mesh.NodeByID(id) != nil {
		id = nw.mesh.Spec().Random(nw.rng)
	}
	var gateway *core.Node
	if nodes := nw.mesh.Nodes(); len(nodes) > 0 {
		gateway = nodes[nw.rng.Intn(len(nodes))]
	}
	nw.mu.Unlock()

	if gateway == nil {
		n, err := nw.mesh.Bootstrap(id, netsim.Addr(addr))
		if err != nil {
			return nil, Cost{}, err
		}
		return &Node{nw: nw, inner: n}, Cost{}, nil
	}
	n, cost, err := nw.mesh.Join(gateway, id, netsim.Addr(addr))
	if err != nil {
		return nil, costOf(cost), err
	}
	return &Node{nw: nw, inner: n}, costOf(cost), nil
}

// Grow adds count nodes at distinct random free points and returns them.
func (nw *Network) Grow(count int) ([]*Node, error) {
	out := make([]*Node, 0, count)
	for i := 0; i < count; i++ {
		addr, err := nw.freeAddr()
		if err != nil {
			return out, err
		}
		n, _, err := nw.AddNode(addr)
		if err != nil {
			return out, err
		}
		out = append(out, n)
	}
	return out, nil
}

func (nw *Network) freeAddr() (int, error) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	size := nw.sim.Size()
	start := nw.rng.Intn(size)
	for i := 0; i < size; i++ {
		a := (start + i) % size
		if nw.mesh.NodeAt(netsim.Addr(a)) == nil && !nw.sim.Alive(netsim.Addr(a)) {
			return a, nil
		}
	}
	return 0, errors.New("tapestry: metric space is full")
}

// guid hashes an object name into the identifier namespace.
func (nw *Network) guid(name string) ids.ID { return nw.mesh.Spec().Hash(name) }

// Publish announces that this node stores a replica of the named object.
func (n *Node) Publish(name string) (Cost, error) {
	var c netsim.Cost
	err := n.inner.Publish(n.nw.guid(name), &c)
	return costOf(&c), err
}

// PublishLocal additionally publishes a stub-local branch (Section 6.3); on
// metrics without region structure it behaves like Publish.
func (n *Node) PublishLocal(name string) (Cost, error) {
	var c netsim.Cost
	err := n.inner.PublishLocal(n.nw.guid(name), &c)
	return costOf(&c), err
}

// Unpublish withdraws this node's replica of the named object.
func (n *Node) Unpublish(name string) Cost {
	var c netsim.Cost
	n.inner.Unpublish(n.nw.guid(name), &c)
	return costOf(&c)
}

// Result reports an object location.
type Result struct {
	Found      bool
	ServerID   string // the replica's node identifier
	ServerAddr int    // the replica's location
	Hops       int
	FromCache  bool // answered from a cached location mapping (serving layer)
}

// Locate routes a query for the named object toward its root, stopping at
// the first object pointer and proceeding to the closest replica.
func (n *Node) Locate(name string) (Result, Cost) {
	var c netsim.Cost
	res := n.inner.Locate(n.nw.guid(name), &c)
	return Result{Found: res.Found, ServerID: res.Server.String(),
		ServerAddr: int(res.ServerAddr), Hops: res.Hops, FromCache: res.FromCache}, costOf(&c)
}

// LocateLocal is the two-phase Section 6.3 query: stub-restricted first,
// wide-area on a miss. The bool reports whether the query stayed local.
func (n *Node) LocateLocal(name string) (Result, Cost, bool) {
	var c netsim.Cost
	res, local := n.inner.LocateLocal(n.nw.guid(name), &c)
	return Result{Found: res.Found, ServerID: res.Server.String(),
		ServerAddr: int(res.ServerAddr), Hops: res.Hops}, costOf(&c), local
}

// Multicast contacts every overlay node whose identifier shares the first
// prefixLen digits of this node's ID (acknowledged multicast, Section 4.1),
// invoking fn with each reached node's ID. It returns the number of nodes
// reached; the call returns only after every acknowledgment is in.
func (n *Node) Multicast(prefixLen int, fn func(nodeID string)) (int, Cost, error) {
	var c netsim.Cost
	var wrapped func(*core.Node)
	if fn != nil {
		var mu sync.Mutex
		wrapped = func(x *core.Node) {
			mu.Lock()
			defer mu.Unlock()
			fn(x.ID().String())
		}
	}
	reached, err := n.inner.AcknowledgedMulticast(n.inner.ID().Prefix(prefixLen), wrapped, &c)
	return len(reached), costOf(&c), err
}

// Leave removes the node gracefully (two-phase voluntary delete, Section
// 5.1): neighbors repair their tables and objects remain available.
func (n *Node) Leave() (Cost, error) {
	var c netsim.Cost
	err := n.inner.Leave(&c)
	return costOf(&c), err
}

// Fail kills the node without notice (Section 5.2). The overlay discovers
// the corpse lazily; objects rooted there stay unavailable until the next
// maintenance epoch republishes them.
func (nw *Network) Fail(n *Node) { nw.mesh.Fail(n.inner) }

// RunMaintenance advances one soft-state epoch: expired pointers vanish and
// every served object is republished.
func (nw *Network) RunMaintenance() Cost {
	var c netsim.Cost
	nw.mesh.RunMaintenanceEpoch(&c)
	return costOf(&c)
}

// SweepFailures makes every node probe its neighbors and repair dead links
// (the heartbeat pass of Section 6.5). Returns the number of links removed.
func (nw *Network) SweepFailures() int {
	removed := 0
	for _, n := range nw.mesh.Nodes() {
		removed += n.SweepDead(nil)
	}
	return removed
}

// CheckConsistency audits Property 1 (no false holes) and root uniqueness
// over sample keys, returning human-readable violations (empty = healthy).
func (nw *Network) CheckConsistency() []string {
	out := nw.mesh.AuditProperty1()
	nw.mu.Lock()
	keys := []ids.ID{
		nw.mesh.Spec().Random(nw.rng),
		nw.mesh.Spec().Random(nw.rng),
		nw.mesh.Spec().Random(nw.rng),
	}
	nw.mu.Unlock()
	return append(out, nw.mesh.AuditUniqueRoots(keys)...)
}

// Stats summarises the overlay.
type Stats struct {
	Nodes          int
	TotalMessages  int64
	MeanTableLinks float64
	TotalPointers  int

	// Serving-layer counters; all zero when the locate cache is disabled.
	CachedMappings  int   // location mappings currently cached across the overlay
	LocateCacheHits int64 // queries answered from a cached mapping
	LocateCacheMiss int64 // queries that went all the way to a pointer (or failed)
}

// Stats returns a snapshot of overlay-wide statistics.
func (nw *Network) Stats() Stats {
	nodes := nw.mesh.Nodes()
	s := Stats{Nodes: len(nodes), TotalMessages: nw.sim.TotalMessages()}
	links := 0
	for _, n := range nodes {
		links += n.Table().NeighborCount()
		s.TotalPointers += n.PointerCount()
		s.CachedMappings += n.CacheSize()
	}
	if len(nodes) > 0 {
		s.MeanTableLinks = float64(links) / float64(len(nodes))
	}
	s.LocateCacheHits, s.LocateCacheMiss = nw.mesh.LocateCacheStats()
	return s
}

// String renders the stats compactly; serving-layer counters appear only
// once the cache has seen traffic, so cache-off output is unchanged.
func (s Stats) String() string {
	out := fmt.Sprintf("nodes=%d messages=%d links/node=%.1f pointers=%d",
		s.Nodes, s.TotalMessages, s.MeanTableLinks, s.TotalPointers)
	if s.LocateCacheHits+s.LocateCacheMiss > 0 {
		out += fmt.Sprintf(" cached=%d hit%%=%.1f", s.CachedMappings,
			100*float64(s.LocateCacheHits)/float64(s.LocateCacheHits+s.LocateCacheMiss))
	}
	return out
}
