package tapestry

import (
	"runtime"
	"testing"
	"time"
)

// TestCloseIdempotent pins that Close can be called more than once — callers
// commonly pair a deferred Close with an explicit one on the error path —
// and that a default (direct-transport) network closes without error.
func TestCloseIdempotent(t *testing.T) {
	nw, _ := newNet(t, 8)
	if err := nw.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := nw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCloseTCPTeardown pins that closing a TCP-backed network tears down its
// listener and connection-pool goroutines: the goroutine count settles back
// to (at most) its pre-network level. The count is polled with a retry loop —
// connection readers exit asynchronously after the sockets close.
func TestCloseTCPTeardown(t *testing.T) {
	before := runtime.NumGoroutine()

	cfg := Defaults()
	cfg.Transport = TransportTCP
	nw, err := New(RingSpace(64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := nw.Grow(16)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-node traffic forces connections (and their reader goroutines)
	// into existence before the teardown being tested.
	if _, err := nodes[0].Publish("close-teardown"); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if res, _ := nodes[len(nodes)-1].Locate("close-teardown"); !res.Found {
		t.Fatal("object not found over TCP transport")
	}
	if during := runtime.NumGoroutine(); during <= before {
		t.Fatalf("TCP transport spawned no goroutines (%d before, %d during): test is vacuous", before, during)
	}

	if err := nw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := nw.Close(); err != nil {
		t.Fatalf("second Close after TCP teardown: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudges finalizer-held stacks; cheap in a test
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: %d before, %d after", before, after)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
