package tapestry

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// paper-vs-measured). Each BenchmarkTable*/Benchmark<Claim> emits its table
// via b.Log on the first iteration — run with:
//
//	go test -bench=. -benchmem -v
//
// cmd/benchtables prints the same tables at paper scale.

import (
	"fmt"
	"testing"

	"tapestry/internal/expt"
)

// logOnce prints the experiment table on the first iteration only.
func logOnce(b *testing.B, i int, tab expt.Table) {
	b.Helper()
	if i == 0 {
		b.Log("\n" + tab.String())
	}
}

// --- E0: metric substrate validation -----------------------------------

func BenchmarkMetricExpansion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.MetricExpansion(1))
	}
}

// --- E1-E4: Table 1 columns --------------------------------------------

func BenchmarkTable1Hops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.Table1Hops([]int{64, 256, 1024}, 512, 1))
	}
}

func BenchmarkTable1Space(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.Table1Space([]int{64, 256, 1024}, 2))
	}
}

func BenchmarkTable1InsertCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.Table1InsertCost([]int{64, 256}, 3))
	}
}

func BenchmarkTable1Balance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.Table1Balance(256, 2048, 4))
	}
}

// --- E5-E6: stretch and surrogate overhead ------------------------------

func BenchmarkStretchVsDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.StretchVsDistance(256, 128, 2048, 5))
	}
}

func BenchmarkSurrogateOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.SurrogateOverhead([]int{64, 256, 1024}, 256, 6))
	}
}

// --- E7-E12: dynamic-membership machinery -------------------------------

func BenchmarkNNCorrectness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.NNCorrectness(96, []int{4, 8, 16, 32, 96}, 7))
	}
}

func BenchmarkMulticast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.Multicast(256, 8))
	}
}

func BenchmarkAvailabilityDuringJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.AvailabilityDuringJoin(48, 24, 9))
	}
}

func BenchmarkParallelJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.ParallelJoin(24, 4, 8, 10))
	}
}

func BenchmarkDeletion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.Deletion(96, 11))
	}
}

func BenchmarkOptimizePointers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.OptimizePointers(64, 16, 12))
	}
}

// --- E13-E15: locality, general metrics, fault tolerance ----------------

func BenchmarkStubLocality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.StubLocality(13))
	}
}

func BenchmarkGeneralMetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.GeneralMetric([]int{64, 128, 256}, 14))
	}
}

func BenchmarkMultiRoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.MultiRoot(128, []int{1, 2, 4}, 0.15, 15))
	}
}

func BenchmarkContinualOptimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.ContinualOptimization(64, 20))
	}
}

// --- Ablations -----------------------------------------------------------

func BenchmarkAblationSurrogate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.AblationSurrogate(128, 16))
	}
}

func BenchmarkAblationR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.AblationR(128, []int{2, 3, 4}, 17))
	}
}

func BenchmarkAblationBase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.AblationBase(128, []int{4, 8, 16, 32}, 18))
	}
}

// --- Micro-benchmarks: per-operation costs -------------------------------

func benchNetwork(b *testing.B, n int) (*Network, []*Node) {
	b.Helper()
	nw, err := New(RingSpace(n*4), Defaults())
	if err != nil {
		b.Fatal(err)
	}
	nodes, err := nw.Grow(n)
	if err != nil {
		b.Fatal(err)
	}
	return nw, nodes
}

func BenchmarkOpLocate(b *testing.B) {
	_, nodes := benchNetwork(b, 256)
	nodes[0].Publish("bench-object")
	b.ResetTimer()
	hops := 0
	for i := 0; i < b.N; i++ {
		res, _ := nodes[i%len(nodes)].Locate("bench-object")
		if !res.Found {
			b.Fatal("lost object")
		}
		hops += res.Hops
	}
	b.ReportMetric(float64(hops)/float64(b.N), "hops/op")
}

func BenchmarkOpPublish(b *testing.B) {
	_, nodes := benchNetwork(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nodes[i%len(nodes)].Publish(fmt.Sprintf("obj-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpJoinLeave(b *testing.B) {
	nw, _ := benchNetwork(b, 128)
	b.ResetTimer()
	msgs := 0
	for i := 0; i < b.N; i++ {
		addrI, err := nw.freeAddr()
		if err != nil {
			b.Fatal(err)
		}
		n, cost, err := nw.AddNode(addrI)
		if err != nil {
			b.Fatal(err)
		}
		msgs += cost.Messages
		if _, err := n.Leave(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "joinmsgs/op")
}

func BenchmarkOpMaintenanceEpoch(b *testing.B) {
	nw, nodes := benchNetwork(b, 128)
	for i := 0; i < 32; i++ {
		nodes[i].Publish(fmt.Sprintf("m-%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.RunMaintenance()
	}
}
