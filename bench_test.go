package tapestry

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// paper-vs-measured). Each BenchmarkTable*/Benchmark<Claim> emits its table
// via b.Log on the first iteration — run with:
//
//	go test -bench=. -benchmem -v
//
// cmd/benchtables prints the same tables at paper scale.

import (
	"fmt"
	"math/rand"
	"testing"

	"tapestry/internal/expt"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
)

// logOnce prints the experiment table on the first iteration only.
func logOnce(b *testing.B, i int, tab expt.Table) {
	b.Helper()
	if i == 0 {
		b.Log("\n" + tab.String())
	}
}

// --- E0: metric substrate validation -----------------------------------

func BenchmarkMetricExpansion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.MetricExpansion(1))
	}
}

// --- E1-E4: Table 1 columns --------------------------------------------

func BenchmarkTable1Hops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.Table1Hops([]int{64, 256, 1024}, 512, 1))
	}
}

func BenchmarkTable1Space(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.Table1Space([]int{64, 256, 1024}, 2))
	}
}

func BenchmarkTable1InsertCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.Table1InsertCost([]int{64, 256}, 3))
	}
}

func BenchmarkTable1Balance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.Table1Balance(256, 2048, 4))
	}
}

// --- E5-E6: stretch and surrogate overhead ------------------------------

func BenchmarkStretchVsDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.StretchVsDistance(256, 128, 2048, 5))
	}
}

func BenchmarkSurrogateOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.SurrogateOverhead([]int{64, 256, 1024}, 256, 6))
	}
}

// --- E7-E12: dynamic-membership machinery -------------------------------

func BenchmarkNNCorrectness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.NNCorrectness(96, []int{4, 8, 16, 32, 96}, 7))
	}
}

func BenchmarkMulticast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.Multicast(256, 8))
	}
}

func BenchmarkAvailabilityDuringJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.AvailabilityDuringJoin(48, 24, 9))
	}
}

func BenchmarkParallelJoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.ParallelJoin(24, 4, 8, 10))
	}
}

func BenchmarkDeletion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.Deletion(96, 11))
	}
}

func BenchmarkOptimizePointers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.OptimizePointers(64, 16, 12))
	}
}

// --- E13-E15: locality, general metrics, fault tolerance ----------------

func BenchmarkStubLocality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.StubLocality(13))
	}
}

func BenchmarkGeneralMetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.GeneralMetric([]int{64, 128, 256}, 14))
	}
}

func BenchmarkMultiRoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.MultiRoot(128, []int{1, 2, 4}, 0.15, 15))
	}
}

func BenchmarkContinualOptimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.ContinualOptimization(64, 20))
	}
}

// --- E-repair: repair quality under failures ---------------------------

func BenchmarkRepairQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.RepairQuality(96, 20, 128, 23))
	}
}

// --- E-hotspot: Zipf storm vs the serving layer --------------------------

func BenchmarkHotspot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.Hotspot(128, 64, 2048, 24))
	}
}

// --- E-faceoff: every protocol, one workload -----------------------------

func BenchmarkFaceoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.Faceoff(64, 16, 2, 128, nil, 25))
	}
}

// --- Ablations -----------------------------------------------------------

func BenchmarkAblationSurrogate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.AblationSurrogate(128, 16))
	}
}

func BenchmarkAblationR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.AblationR(128, []int{2, 3, 4}, 17))
	}
}

func BenchmarkAblationBase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		logOnce(b, i, expt.AblationBase(128, []int{4, 8, 16, 32}, 18))
	}
}

// --- Micro-benchmarks: per-operation costs -------------------------------

func benchNetwork(b *testing.B, n int) (*Network, []*Node) {
	b.Helper()
	nw, err := New(RingSpace(n*4), Defaults())
	if err != nil {
		b.Fatal(err)
	}
	nodes, err := nw.Grow(n)
	if err != nil {
		b.Fatal(err)
	}
	return nw, nodes
}

// BenchmarkFreeAddr pins the Grow-step address allocator: the shuffled-stack
// design amortizes to O(1) per allocation — measured ~80-90ns/0 allocs,
// independent of space size AND occupancy. The linear probe it replaced
// walked the space from a random start under nw.mu, paying a locked mesh
// map lookup per probed address: ~60ns at 75% occupancy but ~360-400ns at
// 99% and Θ(size) as the space fills, which made dense overlay
// construction quadratic.
func BenchmarkFreeAddr(b *testing.B) {
	for _, size := range []int{4096, 32768} {
		size := size
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			nw, err := New(RingSpace(size), Defaults())
			if err != nil {
				b.Fatal(err)
			}
			// Occupy three quarters of the space so every pick works at the
			// density where the old probe degraded worst.
			taken, err := nw.freeAddrs(size * 3 / 4)
			if err != nil {
				b.Fatal(err)
			}
			for _, a := range taken {
				nw.sim.Attach(a)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := nw.freeAddr()
				if err != nil {
					b.Fatal(err)
				}
				// Attach-then-detach keeps occupancy steady at 75%, the
				// density where the old probe degraded worst, while letting
				// the stack exercise its rebuild path.
				nw.sim.Attach(netsim.Addr(a))
				nw.sim.Detach(netsim.Addr(a))
			}
		})
	}
}

func BenchmarkOpLocate(b *testing.B) {
	_, nodes := benchNetwork(b, 256)
	nodes[0].Publish("bench-object")
	b.ReportAllocs()
	b.ResetTimer()
	hops := 0
	for i := 0; i < b.N; i++ {
		res, _ := nodes[i%len(nodes)].Locate("bench-object")
		if !res.Found {
			b.Fatal("lost object")
		}
		hops += res.Hops
	}
	b.ReportMetric(float64(hops)/float64(b.N), "hops/op")
}

// BenchmarkOpLocateCached is BenchmarkOpLocate with the serving layer on
// and warm: repeat queries are answered from the per-node locate cache.
func BenchmarkOpLocateCached(b *testing.B) {
	cfg := Defaults()
	cfg.LocateCacheCap = 128
	nw, err := New(RingSpace(256*4), cfg)
	if err != nil {
		b.Fatal(err)
	}
	nodes, err := nw.Grow(256)
	if err != nil {
		b.Fatal(err)
	}
	nodes[0].Publish("bench-object")
	for _, n := range nodes {
		if res, _ := n.Locate("bench-object"); !res.Found {
			b.Fatal("warmup failed")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := nodes[i%len(nodes)].Locate("bench-object")
		if !res.Found {
			b.Fatal("lost object")
		}
	}
}

func BenchmarkOpPublish(b *testing.B) {
	_, nodes := benchNetwork(b, 256)
	// Object names are precomputed so the timed loop measures Publish, not
	// fmt.Sprintf.
	names := make([]string, b.N)
	for i := range names {
		names[i] = fmt.Sprintf("obj-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nodes[i%len(nodes)].Publish(names[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpJoinLeave(b *testing.B) {
	nw, _ := benchNetwork(b, 128)
	b.ReportAllocs()
	b.ResetTimer()
	msgs := 0
	for i := 0; i < b.N; i++ {
		addrI, err := nw.freeAddr()
		if err != nil {
			b.Fatal(err)
		}
		n, cost, err := nw.AddNode(addrI)
		if err != nil {
			b.Fatal(err)
		}
		msgs += cost.Messages
		if _, err := n.Leave(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "joinmsgs/op")
}

func BenchmarkOpMaintenanceEpoch(b *testing.B) {
	nw, nodes := benchNetwork(b, 128)
	for i := 0; i < 32; i++ {
		nodes[i].Publish(fmt.Sprintf("m-%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	msgs := 0
	for i := 0; i < b.N; i++ {
		c := nw.RunMaintenance()
		msgs += c.Messages
	}
	b.ReportMetric(float64(msgs)/float64(b.N), "msgs/epoch")
}

// --- Substrate micro-benchmarks: the lock-free/on-demand hot paths --------

// BenchmarkNetSend measures the netsim hot path (cost accounting + liveness
// check) under full parallelism — the path every simulated message takes.
func BenchmarkNetSend(b *testing.B) {
	n := netsim.New(metric.NewRing(4096))
	for a := 0; a < 4096; a++ {
		n.Attach(netsim.Addr(a))
	}
	var cost netsim.Cost
	b.RunParallel(func(pb *testing.PB) {
		a := netsim.Addr(0)
		for pb.Next() {
			_ = n.Send(a, (a+17)%4096, &cost, true)
			a = (a + 1) % 4096
		}
	})
}

// BenchmarkCostAdd measures contention on one shared Cost ledger.
func BenchmarkCostAdd(b *testing.B) {
	var cost netsim.Cost
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			cost.Add(1.5, true)
		}
	})
}

// BenchmarkNetAlive measures the liveness bitset read path.
func BenchmarkNetAlive(b *testing.B) {
	n := netsim.New(metric.NewRing(4096))
	for a := 0; a < 4096; a += 2 {
		n.Attach(netsim.Addr(a))
	}
	b.RunParallel(func(pb *testing.PB) {
		a := netsim.Addr(0)
		for pb.Next() {
			_ = n.Alive(a)
			a = (a + 1) % 4096
		}
	})
}

// BenchmarkSpaceDistance measures Space.Distance across representations:
// lattice (ring), point cloud, graph metric as a materialised matrix, and
// the same graph size as an on-demand space (cache-hot after one pass).
func BenchmarkSpaceDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	spaces := map[string]metric.Space{
		"ring":         metric.NewRing(4096),
		"cloud":        metric.NewUniformCloud(4096, rng),
		"graph-dense":  metric.NewRandomGraph(1024, 3, 10, rng),
		"graph-lazy":   metric.NewRandomGraph(4096, 3, 10, rng),
		"transit-stub": metric.NewTransitStub(metric.ScaledTransitStub(4096), rng),
	}
	for _, name := range []string{"ring", "cloud", "graph-dense", "graph-lazy", "transit-stub"} {
		s := spaces[name]
		b.Run(name, func(b *testing.B) {
			n := s.Size()
			// Touch a bounded source set first so the lazy representations
			// measure steady-state (cached-row) reads, not Dijkstra.
			for i := 0; i < 64; i++ {
				_ = s.Distance(i, n-1-i)
			}
			b.ResetTimer()
			j := 0
			for i := 0; i < b.N; i++ {
				_ = s.Distance(i&63, j)
				j++
				if j == n {
					j = 0
				}
			}
		})
	}
}

// BenchmarkLiveCount measures the O(1) maintained live count (formerly an
// O(n) scan under a read lock).
func BenchmarkLiveCount(b *testing.B) {
	n := netsim.New(metric.NewRing(4096))
	for a := 0; a < 4096; a += 2 {
		n.Attach(netsim.Addr(a))
	}
	for i := 0; i < b.N; i++ {
		_ = n.LiveCount()
	}
}
