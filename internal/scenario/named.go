package scenario

import (
	"fmt"
	"sort"
)

// Spec sizes the named scenarios: the same timeline shapes replay at smoke
// or full scale by swapping the spec, exactly like expt.Params.
type Spec struct {
	// Queries is the size of each measurement storm (per phase).
	Queries int
	// Stampede is the join-burst size of the flash-stampede scenario.
	Stampede int
}

// DefaultSpec matches the E-chaos full-scale defaults.
func DefaultSpec() Spec { return Spec{Queries: 512, Stampede: 24} }

// named maps each suite scenario to its constructor. Timelines follow one
// grammar: a baseline phase measures the healthy overlay, an adversarial
// phase applies the correlated failure mid-measurement, and a recovery phase
// measures re-convergence after repair.
var named = map[string]func(Spec) Scenario{
	// blackout: a whole transit-stub region crashes at once (correlated,
	// unlike Poisson churn), then comes back and republishes.
	"blackout": func(sp Spec) Scenario {
		return New("blackout").
			At(0, Phase{Name: "baseline"}, Queries{Count: sp.Queries}).
			At(10, Phase{Name: "blackout"}, RegionBlackout{Pick: 0}, Maintain{}, Queries{Count: sp.Queries}).
			At(20, Phase{Name: "restored"}, RegionRestore{Pick: 0}, Maintain{}, Queries{Count: sp.Queries}).
			MustBuild()
	},
	// healing-partition: a region-aligned cut isolates ~35% of the members,
	// queries run on both sides of the cut, then the cut heals and a
	// maintenance pass repairs soft state.
	"healing-partition": func(sp Spec) Scenario {
		return New("healing-partition").
			At(0, Phase{Name: "baseline"}, Queries{Count: sp.Queries}).
			At(10, Phase{Name: "partitioned"}, Partition{Frac: 0.35}, Maintain{}, Queries{Count: sp.Queries}).
			At(20, Phase{Name: "healed"}, Heal{}, Maintain{}, Queries{Count: sp.Queries}).
			MustBuild()
	},
	// flash-stampede: one object abruptly draws 80% of a doubled query
	// load while a wave of new nodes joins — the §4.4 concurrent-insertion
	// machinery under a hot-object storm.
	"flash-stampede": func(sp Spec) Scenario {
		return New("flash-stampede").
			At(0, Phase{Name: "baseline"}, Queries{Count: sp.Queries}).
			At(10, Phase{Name: "flash"}, JoinStampede{Count: sp.Stampede}, FlashCrowd{Count: 2 * sp.Queries, Hot: 0.8}).
			At(20, Phase{Name: "settled"}, Maintain{}, Queries{Count: sp.Queries}).
			MustBuild()
	},
	// lossy-links: seeded message loss and duplication ramp up under
	// continuous measurement, then the links recover.
	"lossy-links": func(sp Spec) Scenario {
		phases := New("phases").
			At(0, Phase{Name: "clean"}, Queries{Count: sp.Queries}).
			At(10, Phase{Name: "degrading"}).
			At(11, Queries{Count: sp.Queries}).
			At(16, Queries{Count: sp.Queries}).
			At(21, Queries{Count: sp.Queries}).
			At(30, Phase{Name: "recovered"}, LinkFaults{}, Maintain{}, Queries{Count: sp.Queries}).
			MustBuild()
		ramp, err := Ramp("ramp", 10, 5, 3, LinkFaults{}, LinkFaults{Loss: 0.2, Dup: 0.05})
		if err != nil {
			panic(err)
		}
		return Overlay("lossy-links", phases, ramp)
	},
}

// Names lists the named suite in sorted order.
func Names() []string {
	out := make([]string, 0, len(named))
	for n := range named {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Named builds a suite scenario at the given scale.
func Named(name string, sp Spec) (Scenario, error) {
	f, ok := named[name]
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	return f(sp), nil
}
