package scenario

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"
)

// FuzzScenarioTimeline feeds arbitrary byte strings through the builder and
// combinators: whatever the input, Build either rejects it or yields a
// validated, time-ordered timeline, and the combinators preserve both — no
// panics anywhere. This is the CI smoke target for the DSL.
func FuzzScenarioTimeline(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 10, 2, 20, 3, 30, 4, 40, 5, 50, 6, 60, 7, 70, 8, 80, 9, 90, 10, 100})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := New("fuzz")
		for len(data) >= 9 {
			kind := data[0]
			bits := binary.LittleEndian.Uint64(data[1:9])
			// Map the raw word onto a time; deliberately allow NaN, Inf
			// and negatives so validation is exercised, not avoided.
			at := math.Float64frombits(bits)
			if kind%4 == 0 {
				at = float64(bits % 1000) // mostly sane times
			}
			rate := float64(bits%256) / 200 // 0..1.275: sometimes invalid
			count := int(int8(data[1]))     // sometimes negative
			var ev Event
			switch kind % 12 {
			case 0:
				ev = Phase{Name: string(rune('a' + kind%26))}
			case 1:
				ev = RegionBlackout{Pick: count}
			case 2:
				ev = RegionRestore{Pick: count}
			case 3:
				ev = Partition{Frac: rate}
			case 4:
				ev = Heal{}
			case 5:
				ev = LinkFaults{Loss: rate, Dup: rate / 2}
			case 6:
				ev = FlashCrowd{Count: count, Hot: rate}
			case 7:
				ev = JoinStampede{Count: count}
			case 8:
				ev = Churn{JoinMean: rate * 4, LeaveMean: rate, CrashMean: at}
			case 9:
				ev = Queries{Count: count}
			case 10:
				ev = Maintain{}
			case 11:
				var phase Phase // zero value: invalid, must be rejected
				ev = phase
			}
			b.At(at, ev)
			data = data[9:]
		}
		s, err := b.Build()
		if err != nil {
			return
		}
		check := func(s Scenario) {
			t.Helper()
			if !sort.SliceIsSorted(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At }) {
				t.Fatalf("scenario %q out of time order", s.Name)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("built scenario fails validation: %v", err)
			}
			if end := s.End(); len(s.Events) > 0 && end != s.Events[len(s.Events)-1].At {
				t.Fatalf("End() = %v disagrees with last event", end)
			}
		}
		check(s)
		check(Seq("seq", s, s))
		check(Overlay("overlay", s, s))
		check(Repeat("repeat", 3, s))
	})
}
