// Package scenario is the adversarial scenario engine: a deterministic,
// composable DSL for correlated-failure timelines (regional blackouts,
// healing partitions, flash crowds, join stampedes, lossy links) plus a
// Driver that replays any scenario against any overlay.Protocol — caps-gated
// like E-faceoff, in both direct and event-driven (virtual-time) modes.
//
// Churn elsewhere in the repository is i.i.d. Poisson, the kindest possible
// failure model; the paper's dynamic-correctness claims (§4.4, Thm 6) are
// about surviving *adversarial* membership change. A Scenario is a seeded,
// replayable timeline of typed events; combinators (Seq, Overlay, Repeat,
// Ramp) compose timelines so suites are data, not code.
package scenario

import (
	"fmt"
	"math"
	"sort"
)

// Event is one typed scenario action. The concrete types below are the whole
// vocabulary; each carries only workload-shaped parameters (counts, rates,
// fractions) — bindings to concrete nodes, regions and objects happen inside
// the Driver from its seed, so one scenario replays against any overlay.
type Event interface {
	// validate reports a problem with the event's parameters, if any.
	validate() error
	// String renders the event for traces and docs.
	String() string
}

// Phase marks a named measurement window: the Driver reports one PhaseReport
// per Phase event, covering everything until the next Phase (or the end).
type Phase struct{ Name string }

// RegionBlackout crashes every live member of one transit-stub region — the
// Pick-th region of a seeded shuffle of the space's region labels, so
// distinct picks black out distinct regions. On spaces without region
// structure the Driver falls back to a seeded slice of the membership.
type RegionBlackout struct{ Pick int }

// RegionRestore rejoins the members crashed by the matching RegionBlackout
// (same Pick) at their original addresses and republishes the objects they
// originally served.
type RegionRestore struct{ Pick int }

// Partition splits the network into two reachability groups; messages across
// the cut fail with netsim.ErrUnreachable until a Heal. Frac in (0, 1) is the
// target minority share of the membership; the cut is region-aligned when the
// space has region structure.
type Partition struct{ Frac float64 }

// Heal removes the active partition.
type Heal struct{}

// LinkFaults sets seeded per-message loss and duplication rates at the
// netsim Send seam (Loss+Dup <= 1). Zero rates turn link faults off.
type LinkFaults struct{ Loss, Dup float64 }

// FlashCrowd is a query storm where fraction Hot of Count queries hammer one
// seeded hot object and the rest follow the background Zipf mix.
type FlashCrowd struct {
	Count int
	Hot   float64
}

// JoinStampede is a correlated arrival wave: Count back-to-back joins from
// the Driver's reserve address pool.
type JoinStampede struct{ Count int }

// Churn is one epoch of the classic i.i.d. model — Poisson joins, leaves and
// crashes — embedded so benign background churn can overlay the adversarial
// events.
type Churn struct{ JoinMean, LeaveMean, CrashMean float64 }

// Queries is a plain background measurement storm of Count Zipf queries.
type Queries struct{ Count int }

// Maintain runs one protocol maintenance pass (declined without
// CapMaintain).
type Maintain struct{}

func (e Phase) String() string   { return fmt.Sprintf("phase(%s)", e.Name) }
func (e Phase) validate() error {
	if e.Name == "" {
		return fmt.Errorf("scenario: phase with empty name")
	}
	return nil
}

func (e RegionBlackout) String() string { return fmt.Sprintf("blackout(region %d)", e.Pick) }
func (e RegionBlackout) validate() error {
	if e.Pick < 0 {
		return fmt.Errorf("scenario: blackout pick %d negative", e.Pick)
	}
	return nil
}

func (e RegionRestore) String() string { return fmt.Sprintf("restore(region %d)", e.Pick) }
func (e RegionRestore) validate() error {
	if e.Pick < 0 {
		return fmt.Errorf("scenario: restore pick %d negative", e.Pick)
	}
	return nil
}

func (e Partition) String() string { return fmt.Sprintf("partition(%.0f%%)", e.Frac*100) }
func (e Partition) validate() error {
	if !(e.Frac > 0 && e.Frac < 1) { // NaN fails too
		return fmt.Errorf("scenario: partition fraction %v outside (0,1)", e.Frac)
	}
	return nil
}

func (e Heal) String() string  { return "heal" }
func (e Heal) validate() error { return nil }

func (e LinkFaults) String() string {
	return fmt.Sprintf("linkfaults(loss=%.2f dup=%.2f)", e.Loss, e.Dup)
}
func (e LinkFaults) validate() error {
	sane := e.Loss >= 0 && e.Dup >= 0 && e.Loss+e.Dup <= 1 // NaN fails
	if !sane {
		return fmt.Errorf("scenario: link-fault rates loss=%v dup=%v invalid", e.Loss, e.Dup)
	}
	return nil
}

func (e FlashCrowd) String() string { return fmt.Sprintf("flashcrowd(%d, hot=%.2f)", e.Count, e.Hot) }
func (e FlashCrowd) validate() error {
	if e.Count < 0 {
		return fmt.Errorf("scenario: flash-crowd count %d negative", e.Count)
	}
	if !(e.Hot >= 0 && e.Hot <= 1) {
		return fmt.Errorf("scenario: flash-crowd hot fraction %v outside [0,1]", e.Hot)
	}
	return nil
}

func (e JoinStampede) String() string { return fmt.Sprintf("stampede(%d)", e.Count) }
func (e JoinStampede) validate() error {
	if e.Count < 0 {
		return fmt.Errorf("scenario: stampede count %d negative", e.Count)
	}
	return nil
}

func (e Churn) String() string {
	return fmt.Sprintf("churn(join=%.1f leave=%.1f crash=%.1f)", e.JoinMean, e.LeaveMean, e.CrashMean)
}
func (e Churn) validate() error {
	for _, m := range []float64{e.JoinMean, e.LeaveMean, e.CrashMean} {
		if !(m >= 0) || math.IsInf(m, 0) {
			return fmt.Errorf("scenario: churn mean %v invalid", m)
		}
	}
	return nil
}

func (e Queries) String() string { return fmt.Sprintf("queries(%d)", e.Count) }
func (e Queries) validate() error {
	if e.Count < 0 {
		return fmt.Errorf("scenario: query count %d negative", e.Count)
	}
	return nil
}

func (e Maintain) String() string  { return "maintain" }
func (e Maintain) validate() error { return nil }

// TimedEvent anchors an event at a point of the scenario's virtual timeline.
type TimedEvent struct {
	At float64
	Ev Event
}

// Scenario is a validated, time-ordered event timeline. Build one with the
// Builder or the combinators; the zero value is an empty scenario.
type Scenario struct {
	Name   string
	Events []TimedEvent // non-decreasing At; ties keep insertion order
}

// End returns the time of the last event (0 for an empty scenario).
func (s Scenario) End() float64 {
	if len(s.Events) == 0 {
		return 0
	}
	return s.Events[len(s.Events)-1].At
}

// Validate re-checks the timeline invariants: every event parameter valid,
// times finite, non-negative and non-decreasing. Builder output always
// passes; hand-assembled scenarios can be checked before a Run.
func (s Scenario) Validate() error {
	prev := 0.0
	for i, te := range s.Events {
		if math.IsNaN(te.At) || math.IsInf(te.At, 0) || te.At < 0 {
			return fmt.Errorf("scenario %q: event %d at invalid time %v", s.Name, i, te.At)
		}
		if te.At < prev {
			return fmt.Errorf("scenario %q: event %d at %v precedes %v", s.Name, i, te.At, prev)
		}
		prev = te.At
		if te.Ev == nil {
			return fmt.Errorf("scenario %q: event %d is nil", s.Name, i)
		}
		if err := te.Ev.validate(); err != nil {
			return fmt.Errorf("scenario %q: event %d (%v): %w", s.Name, i, te.Ev, err)
		}
	}
	return nil
}

// MaxTime bounds event times accepted by the Builder. The cap keeps
// combinator arithmetic safe: Seq and Repeat shift timelines past each
// other's end, and with unbounded (but finite) times those sums overflow to
// +Inf — a timeline that would pass Build yet fail Validate after Seq.
// Validate itself only requires finiteness, so sequencing a handful of
// maximal scenarios stays valid.
const MaxTime = 1e12

// Builder accumulates a timeline. Events added out of time order are sorted
// stably at Build, so same-time events keep their insertion order — Phase
// markers added before actions at the same instant stay first.
type Builder struct {
	name   string
	events []TimedEvent
	err    error
}

// New starts a scenario under the given name.
func New(name string) *Builder { return &Builder{name: name} }

// At schedules the events at time t, in argument order.
func (b *Builder) At(t float64, evs ...Event) *Builder {
	if b.err != nil {
		return b
	}
	if math.IsNaN(t) || t < 0 || t > MaxTime {
		b.err = fmt.Errorf("scenario %q: invalid event time %v (want 0..%v)", b.name, t, MaxTime)
		return b
	}
	for _, ev := range evs {
		if ev == nil {
			b.err = fmt.Errorf("scenario %q: nil event at %v", b.name, t)
			return b
		}
		if err := ev.validate(); err != nil {
			b.err = err
			return b
		}
		b.events = append(b.events, TimedEvent{At: t, Ev: ev})
	}
	return b
}

// Build finalizes the timeline: validation errors accumulated by At surface
// here, and events sort stably by time.
func (b *Builder) Build() (Scenario, error) {
	if b.err != nil {
		return Scenario{}, b.err
	}
	evs := append([]TimedEvent(nil), b.events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return Scenario{Name: b.name, Events: evs}, nil
}

// MustBuild is Build for statically known-good timelines (the named suite).
func (b *Builder) MustBuild() Scenario {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// Seq concatenates scenarios end to start: each part's timeline is shifted
// past everything before it (plus a one-unit gap so a part ending and the
// next beginning never collide).
func Seq(name string, parts ...Scenario) Scenario {
	out := Scenario{Name: name}
	offset := 0.0
	for i, p := range parts {
		if i > 0 {
			offset += 1
		}
		for _, te := range p.Events {
			out.Events = append(out.Events, TimedEvent{At: te.At + offset, Ev: te.Ev})
		}
		offset += p.End()
	}
	return out
}

// Overlay merges scenarios on a shared clock: events keep their absolute
// times, and same-time events order part-major (all of parts[0]'s, then
// parts[1]'s, ...), which the stable sort preserves.
func Overlay(name string, parts ...Scenario) Scenario {
	out := Scenario{Name: name}
	for _, p := range parts {
		out.Events = append(out.Events, p.Events...)
	}
	sort.SliceStable(out.Events, func(i, j int) bool { return out.Events[i].At < out.Events[j].At })
	return out
}

// Repeat sequences n copies of the part (n < 1 yields an empty scenario).
func Repeat(name string, n int, part Scenario) Scenario {
	parts := make([]Scenario, 0, n)
	for i := 0; i < n; i++ {
		parts = append(parts, part)
	}
	return Seq(name, parts...)
}

// Ramp emits `steps` LinkFaults events at times start, start+dt, ... with
// rates interpolated linearly from `from` to `to` — a gradually degrading
// (or recovering) network. steps < 2 emits a single event at `to`'s rates.
// Invalid interpolants surface from Build like any other bad event.
func Ramp(name string, start, dt float64, steps int, from, to LinkFaults) (Scenario, error) {
	b := New(name)
	if steps < 2 {
		return b.At(start, to).Build()
	}
	for k := 0; k < steps; k++ {
		f := float64(k) / float64(steps-1)
		b.At(start+float64(k)*dt, LinkFaults{
			Loss: from.Loss + f*(to.Loss-from.Loss),
			Dup:  from.Dup + f*(to.Dup-from.Dup),
		})
	}
	return b.Build()
}
