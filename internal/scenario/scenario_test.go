package scenario

import (
	"math"
	"sort"
	"testing"
)

func timeOrdered(t *testing.T, s Scenario) {
	t.Helper()
	if !sort.SliceIsSorted(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At }) {
		t.Fatalf("scenario %q events out of time order", s.Name)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("scenario %q invalid: %v", s.Name, err)
	}
}

func TestBuilderSortsStably(t *testing.T) {
	s, err := New("x").
		At(5, Queries{Count: 1}).
		At(0, Phase{Name: "a"}, Maintain{}).
		At(5, Heal{}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	timeOrdered(t, s)
	if len(s.Events) != 4 {
		t.Fatalf("got %d events", len(s.Events))
	}
	// Same-time events keep insertion order: Queries (added first) before Heal.
	if _, ok := s.Events[2].Ev.(Queries); !ok {
		t.Fatalf("event 2 = %v, want queries first at t=5", s.Events[2].Ev)
	}
	if _, ok := s.Events[3].Ev.(Heal); !ok {
		t.Fatalf("event 3 = %v, want heal second at t=5", s.Events[3].Ev)
	}
	if s.End() != 5 {
		t.Fatalf("End = %v", s.End())
	}
}

func TestBuilderRejectsBadEvents(t *testing.T) {
	cases := []struct {
		name string
		b    *Builder
	}{
		{"negative time", New("x").At(-1, Maintain{})},
		{"NaN time", New("x").At(math.NaN(), Maintain{})},
		{"inf time", New("x").At(math.Inf(1), Maintain{})},
		{"nil event", New("x").At(0, nil)},
		{"empty phase", New("x").At(0, Phase{})},
		{"bad partition", New("x").At(0, Partition{Frac: 0})},
		{"partition over 1", New("x").At(0, Partition{Frac: 1.5})},
		{"NaN partition", New("x").At(0, Partition{Frac: math.NaN()})},
		{"loss+dup over 1", New("x").At(0, LinkFaults{Loss: 0.7, Dup: 0.7})},
		{"negative loss", New("x").At(0, LinkFaults{Loss: -0.1})},
		{"NaN dup", New("x").At(0, LinkFaults{Dup: math.NaN()})},
		{"negative queries", New("x").At(0, Queries{Count: -1})},
		{"negative stampede", New("x").At(0, JoinStampede{Count: -1})},
		{"hot fraction", New("x").At(0, FlashCrowd{Count: 1, Hot: 2})},
		{"NaN churn", New("x").At(0, Churn{JoinMean: math.NaN()})},
		{"negative churn", New("x").At(0, Churn{CrashMean: -1})},
		{"negative pick", New("x").At(0, RegionBlackout{Pick: -1})},
	}
	for _, c := range cases {
		if _, err := c.b.Build(); err == nil {
			t.Errorf("%s: Build succeeded", c.name)
		}
	}
}

func TestSeqOffsetsParts(t *testing.T) {
	a := New("a").At(0, Phase{Name: "p1"}).At(4, Maintain{}).MustBuild()
	b := New("b").At(0, Phase{Name: "p2"}).At(2, Heal{}).MustBuild()
	s := Seq("ab", a, b)
	timeOrdered(t, s)
	if len(s.Events) != 4 {
		t.Fatalf("got %d events", len(s.Events))
	}
	// Part b starts one unit after part a ends (at 4): phase p2 at 5, heal at 7.
	if s.Events[2].At != 5 || s.Events[3].At != 7 {
		t.Fatalf("part b at %v and %v, want 5 and 7", s.Events[2].At, s.Events[3].At)
	}
}

func TestOverlayMergesPartMajor(t *testing.T) {
	a := New("a").At(3, Maintain{}).MustBuild()
	b := New("b").At(3, Heal{}).At(1, Phase{Name: "p"}).MustBuild()
	s := Overlay("ab", a, b)
	timeOrdered(t, s)
	if len(s.Events) != 3 {
		t.Fatalf("got %d events", len(s.Events))
	}
	// At t=3 part a's Maintain precedes part b's Heal.
	if _, ok := s.Events[1].Ev.(Maintain); !ok {
		t.Fatalf("event 1 = %v, want maintain", s.Events[1].Ev)
	}
}

func TestRepeat(t *testing.T) {
	part := New("p").At(0, Maintain{}).At(3, Heal{}).MustBuild()
	s := Repeat("r", 3, part)
	timeOrdered(t, s)
	if len(s.Events) != 6 {
		t.Fatalf("got %d events", len(s.Events))
	}
	if s.End() != 3+4+4 {
		t.Fatalf("End = %v, want 11", s.End())
	}
	if len(Repeat("r", 0, part).Events) != 0 {
		t.Fatal("Repeat(0) not empty")
	}
}

func TestRampInterpolates(t *testing.T) {
	s, err := Ramp("r", 10, 5, 3, LinkFaults{}, LinkFaults{Loss: 0.2, Dup: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	timeOrdered(t, s)
	if len(s.Events) != 3 {
		t.Fatalf("got %d events", len(s.Events))
	}
	mid := s.Events[1].Ev.(LinkFaults)
	if math.Abs(mid.Loss-0.1) > 1e-12 || math.Abs(mid.Dup-0.05) > 1e-12 {
		t.Fatalf("midpoint = %+v, want loss 0.1 dup 0.05", mid)
	}
	if s.Events[1].At != 15 || s.Events[2].At != 20 {
		t.Fatalf("step times %v, %v", s.Events[1].At, s.Events[2].At)
	}
	// A ramp to invalid rates fails like any other bad event.
	if _, err := Ramp("bad", 0, 1, 2, LinkFaults{}, LinkFaults{Loss: 1.5}); err == nil {
		t.Fatal("invalid ramp built")
	}
	// steps < 2 degenerates to the target rates.
	one, err := Ramp("one", 7, 1, 1, LinkFaults{}, LinkFaults{Loss: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Events) != 1 || one.Events[0].At != 7 || one.Events[0].Ev.(LinkFaults).Loss != 0.3 {
		t.Fatalf("degenerate ramp = %+v", one.Events)
	}
}

func TestNamedSuite(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("suite has %d scenarios: %v", len(names), names)
	}
	for _, n := range names {
		s, err := Named(n, DefaultSpec())
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		timeOrdered(t, s)
		phases := 0
		for _, te := range s.Events {
			if _, ok := te.Ev.(Phase); ok {
				phases++
			}
		}
		if phases < 3 {
			t.Errorf("%s: only %d phases", n, phases)
		}
		if _, ok := s.Events[0].Ev.(Phase); !ok {
			t.Errorf("%s: first event %v is not a phase marker", n, s.Events[0].Ev)
		}
	}
	if _, err := Named("no-such", DefaultSpec()); err == nil {
		t.Fatal("unknown scenario built")
	}
}
