package scenario

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/overlay"
	"tapestry/internal/stats"
	"tapestry/internal/workload"
)

// Mode selects the Driver's execution backend.
type Mode int

const (
	// Direct replays the timeline serially in time order with synchronous
	// RPCs — no virtual clock, every event completes before the next starts.
	Direct Mode = iota
	// EventDriven replays under the network's attached virtual-time engine:
	// query storms spread over a window as individual interleaving
	// operations (the E-nines regime) while membership, fault and
	// maintenance events run serialized on one control operation — adapters
	// hold their membership lock across parks, so two overlapping
	// membership ops would deadlock the one-at-a-time scheduler. The
	// control op joins on each storm before advancing: virtual latency can
	// stretch a storm far past its scheduled window (a partition parks
	// every blocked send until timeout), and a Heal firing by wall position
	// while the partitioned phase's queries were still in flight would
	// dissolve the condition mid-measurement.
	EventDriven
)

// Config parameterizes a Driver.
type Config struct {
	// Seed drives every binding the driver makes (region picks, partition
	// cuts, query mixes, churn); identical seeds replay exactly.
	Seed int64
	Mode Mode
	// Placement names the published objects and their origin servers as
	// indices into the Build membership, exactly as the caller published
	// them. Restores republish from it.
	Placement workload.Placement
	// Reserve is the address pool joins (stampedes, churn, restores beyond
	// the original address) draw from; an exhausted pool fails the join.
	Reserve []netsim.Addr
	// Zipf is the background query skew exponent (0 = 1.2).
	Zipf float64
	// MinPopulation floors Churn-event departures (0 = max(2, initial/4)).
	MinPopulation int
	// QuerySpread is the virtual-time window a storm's queries spread over
	// in EventDriven mode (0 = 5 units). Ignored in Direct mode.
	QuerySpread float64
}

// PhaseReport is the Driver's measurement for one Phase window.
type PhaseReport struct {
	Phase string
	Live  int // members at phase close

	Joins    int // successful joins (stampede, churn, restores)
	Leaves   int // graceful departures
	Crashes  int // blackout + churn crashes
	Restores int // members revived by RegionRestore

	Declined int // operations refused by the protocol's capability set
	Failed   int // operations that errored (joins under partition, pool exhaustion)

	Queries     int
	Found       int
	MeanHops    float64 // over found queries
	MeanStretch float64 // cost distance / direct distance, over found queries

	MaintainMsgs int64 // messages charged to Maintain passes

	// Fault accounting deltas (netsim.Stats) over the phase window.
	Blocked, Lost, Duplicated int64
}

// Driver replays scenarios against one overlay.Protocol instance. Like the
// E-faceoff harness it is caps-gated: events a protocol cannot honor are
// counted as declined, never panicking — adversarial scenarios make
// operations fail, and failing is data here.
//
// A Driver is single-use per Run and not safe for concurrent Runs.
type Driver struct {
	proto   overlay.Protocol
	net     *netsim.Network
	space   metric.Space
	cfg     Config
	reserve []netsim.Addr

	members []overlay.Handle
	origin  map[netsim.Addr][]int // build addr -> object indices it originally serves

	regionOrder []int                     // seeded shuffle of the space's region labels
	blackouts   map[int][]netsim.Addr     // blackout pick -> crashed addresses
	minPop      int

	reports  []PhaseReport
	cur      PhaseReport
	open     bool
	prevNet  netsim.Stats
	hopsSum  float64
	strSum   float64
	strN     int
}

// NewDriver wraps a built, published protocol instance. members must be the
// Build handles (index i at the placement's server index i); the driver
// tracks membership from there.
func NewDriver(p overlay.Protocol, members []overlay.Handle, cfg Config) (*Driver, error) {
	if len(members) == 0 {
		return nil, errors.New("scenario: driver needs at least one member")
	}
	if cfg.Zipf == 0 {
		cfg.Zipf = 1.2
	}
	if cfg.QuerySpread == 0 {
		cfg.QuerySpread = 5
	}
	d := &Driver{
		proto:     p,
		net:       p.Net(),
		space:     p.Net().Space(),
		cfg:       cfg,
		reserve:   append([]netsim.Addr(nil), cfg.Reserve...),
		members:   append([]overlay.Handle(nil), members...),
		origin:    map[netsim.Addr][]int{},
		blackouts: map[int][]netsim.Addr{},
		minPop:    cfg.MinPopulation,
	}
	if d.minPop == 0 {
		d.minPop = len(members) / 4
		if d.minPop < 2 {
			d.minPop = 2
		}
	}
	for obj, servers := range cfg.Placement.Servers {
		if len(servers) == 0 {
			continue
		}
		a := members[servers[0]].Addr()
		d.origin[a] = append(d.origin[a], obj)
	}
	d.regionOrder = append([]int(nil), metric.RegionLabels(d.space)...)
	rng := d.streamRNG("regions", 0)
	rng.Shuffle(len(d.regionOrder), func(i, j int) {
		d.regionOrder[i], d.regionOrder[j] = d.regionOrder[j], d.regionOrder[i]
	})
	return d, nil
}

func (d *Driver) streamRNG(label string, idx int) *rand.Rand {
	return rand.New(rand.NewSource(stats.StreamSeed(d.cfg.Seed, label, idx)))
}

// Run replays the scenario and returns one report per phase. Events before
// the first Phase marker accumulate under an implicit "setup" phase.
func (d *Driver) Run(s Scenario) ([]PhaseReport, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	d.reports, d.open = nil, false
	d.prevNet = d.net.Stats()
	switch d.cfg.Mode {
	case Direct:
		for i, te := range s.Events {
			d.exec(te.Ev, i)
		}
	case EventDriven:
		e := d.net.Engine()
		if e == nil {
			return nil, errors.New("scenario: EventDriven mode needs an engine attached to the network")
		}
		d.schedule(e, s)
		e.Run()
	default:
		return nil, fmt.Errorf("scenario: unknown mode %d", d.cfg.Mode)
	}
	d.closePhase()
	return d.reports, nil
}

// schedule lays the scenario onto the engine as one control operation that
// walks the timeline in order: event times are lower bounds (the op sleeps
// to them when ahead, proceeds immediately when virtual time has already
// passed them), so phases are causal eras, not wall windows (see
// EventDriven).
func (d *Driver) schedule(e *netsim.Engine, s Scenario) {
	e.At(0, func() {
		for i, te := range s.Events {
			if dt := te.At - e.Now(); dt > 0 {
				e.Sleep(dt)
			}
			switch ev := te.Ev.(type) {
			case Queries:
				d.storm(e, d.stormMix(ev.Count, 0, i), i)
			case FlashCrowd:
				d.storm(e, d.stormMix(ev.Count, ev.Hot, i), i)
			default:
				d.exec(te.Ev, i)
			}
		}
	})
}

// storm spawns each query as its own op, offset into the QuerySpread window
// by the storm's labeled stream, then joins on all of them: queries
// interleave freely with one another (and with the engine's inbound
// queues), but the timeline never advances past a storm still in flight.
func (d *Driver) storm(e *netsim.Engine, mix workload.QueryMix, idx int) {
	trng := d.streamRNG("times", idx)
	handles := make([]*netsim.OpHandle, 0, len(mix.Objects))
	for q := range mix.Objects {
		c, o := mix.Clients[q], mix.Objects[q]
		off := 0.001 + trng.Float64()*d.cfg.QuerySpread
		handles = append(handles, e.Spawn(func() {
			e.Sleep(off)
			d.oneQuery(c, o)
		}))
	}
	for _, h := range handles {
		h.Wait()
	}
}

// stormMix draws a storm's (client draw, object) pairs from the event's
// labeled stream — identical in both modes. hot > 0 selects the flash-crowd
// mix with a seeded hot object.
func (d *Driver) stormMix(count int, hot float64, idx int) workload.QueryMix {
	rng := d.streamRNG("mix", idx)
	objects := len(d.cfg.Placement.Names)
	if count <= 0 || objects == 0 {
		return workload.QueryMix{}
	}
	if hot > 0 {
		hotObj := rng.Intn(objects)
		return workload.FlashCrowdQueries(count, 1<<30, objects, hotObj, hot, d.cfg.Zipf, rng)
	}
	return workload.ZipfQueries(count, 1<<30, objects, d.cfg.Zipf, rng)
}

// exec runs one non-storm event (or, in Direct mode, a storm inline).
func (d *Driver) exec(ev Event, idx int) {
	switch ev := ev.(type) {
	case Phase:
		d.closePhase()
		d.cur = PhaseReport{Phase: ev.Name}
		d.open = true
	case RegionBlackout:
		d.blackout(ev.Pick, idx)
	case RegionRestore:
		d.restore(ev.Pick)
	case Partition:
		d.net.SetPartition(d.partitionGroups(ev.Frac, idx))
	case Heal:
		d.net.HealPartition()
	case LinkFaults:
		d.net.SetLinkFaults(ev.Loss, ev.Dup, stats.StreamSeed(d.cfg.Seed, "linkfaults", idx))
	case Queries:
		d.runStorm(d.stormMix(ev.Count, 0, idx))
	case FlashCrowd:
		d.runStorm(d.stormMix(ev.Count, ev.Hot, idx))
	case JoinStampede:
		for i := 0; i < ev.Count; i++ {
			d.join(d.takeReserve())
		}
	case Churn:
		d.churn(ev, idx)
	case Maintain:
		cost, err := d.proto.Maintain()
		if d.classify(err) {
			d.ensurePhase()
			d.cur.MaintainMsgs += int64(cost.Messages())
		}
	default:
		panic(fmt.Sprintf("scenario: unhandled event %T", ev))
	}
}

// ensurePhase opens the implicit setup phase for events before any marker.
func (d *Driver) ensurePhase() {
	if !d.open {
		d.cur = PhaseReport{Phase: "setup"}
		d.open = true
	}
}

// classify folds an operation error into the caps-gating counters and
// reports whether the operation succeeded.
func (d *Driver) classify(err error) bool {
	if err == nil {
		return true
	}
	d.ensurePhase()
	if errors.Is(err, overlay.ErrUnsupported) {
		d.cur.Declined++
	} else {
		d.cur.Failed++
	}
	return false
}

// closePhase finalizes the open accumulator into the report list.
func (d *Driver) closePhase() {
	if !d.open {
		return
	}
	d.cur.Live = len(d.members)
	if d.cur.Found > 0 {
		d.cur.MeanHops = d.hopsSum / float64(d.cur.Found)
	}
	if d.strN > 0 {
		d.cur.MeanStretch = d.strSum / float64(d.strN)
	}
	now := d.net.Stats()
	d.cur.Blocked = now.Blocked - d.prevNet.Blocked
	d.cur.Lost = now.Lost - d.prevNet.Lost
	d.cur.Duplicated = now.Duplicated - d.prevNet.Duplicated
	d.prevNet = now
	d.reports = append(d.reports, d.cur)
	d.cur = PhaseReport{}
	d.hopsSum, d.strSum, d.strN = 0, 0, 0
	d.open = false
}

// takeReserve pops the next join address, or -1 when the pool is exhausted.
func (d *Driver) takeReserve() netsim.Addr {
	if len(d.reserve) == 0 {
		return -1
	}
	a := d.reserve[0]
	d.reserve = d.reserve[1:]
	return a
}

// join inserts a member at the address (a < 0 = exhausted pool, a failure).
func (d *Driver) join(a netsim.Addr) {
	d.ensurePhase()
	if a < 0 {
		d.cur.Failed++
		return
	}
	h, _, err := d.proto.Join(a)
	if d.classify(err) {
		d.members = append(d.members, h)
		d.cur.Joins++
	}
}

// removeMember drops the handle from the live list (linear: memberships are
// hundreds, not millions, and removal order is part of the determinism
// contract).
func (d *Driver) removeMember(h overlay.Handle) {
	for i, m := range d.members {
		if m.Addr() == h.Addr() {
			d.members = append(d.members[:i], d.members[i+1:]...)
			return
		}
	}
}

// blackout crashes every live member of the picked region. Spaces without
// region structure lose a seeded eighth of the membership instead, so the
// event stays meaningful on ring and cloud spaces.
func (d *Driver) blackout(pick, idx int) {
	d.ensurePhase()
	var victims []overlay.Handle
	if len(d.regionOrder) > 0 {
		regions := metric.Regions(d.space)
		// Take the most-populated region, scanning the shuffled order from
		// pick (ties: earliest in scan order). Sparse deployments leave
		// many stub domains empty or with one straggler, and blacking out
		// a near-empty region would test nothing.
		byLabel := map[int][]overlay.Handle{}
		for _, h := range d.members {
			l := regions[int(h.Addr())]
			byLabel[l] = append(byLabel[l], h)
		}
		for off := 0; off < len(d.regionOrder); off++ {
			label := d.regionOrder[(pick+off)%len(d.regionOrder)]
			if len(byLabel[label]) > len(victims) {
				victims = byLabel[label]
			}
		}
	} else {
		rng := d.streamRNG("blackout", idx)
		n := (len(d.members) + 7) / 8
		perm := rng.Perm(len(d.members))[:n]
		// Sort the picks so victims die in membership order (deterministic
		// and independent of the permutation's tail).
		sortInts(perm)
		for _, i := range perm {
			victims = append(victims, d.members[i])
		}
	}
	for _, h := range victims {
		if d.classify(d.proto.Fail(h)) {
			d.removeMember(h)
			d.cur.Crashes++
			d.blackouts[pick] = append(d.blackouts[pick], h.Addr())
		}
	}
}

// restore rejoins the members crashed by the matching blackout at their
// original addresses and republishes the objects they originally served.
func (d *Driver) restore(pick int) {
	d.ensurePhase()
	addrs := d.blackouts[pick]
	d.blackouts[pick] = nil
	for _, a := range addrs {
		h, _, err := d.proto.Join(a)
		if !d.classify(err) {
			continue
		}
		d.members = append(d.members, h)
		d.cur.Restores++
		for _, obj := range d.origin[a] {
			if _, err := d.proto.Publish(h, d.cfg.Placement.Names[obj]); err != nil {
				d.classify(err)
			}
		}
	}
}

// churn runs one epoch of Poisson background churn.
func (d *Driver) churn(ev Churn, idx int) {
	d.ensurePhase()
	pop := len(d.members)
	minPop := d.minPop
	if pop < minPop {
		minPop = pop
	}
	rng := d.streamRNG("churn", idx)
	plan := workload.PoissonChurn(1, pop, minPop, ev.JoinMean, ev.LeaveMean, ev.CrashMean, rng)
	for _, op := range plan[0] {
		switch {
		case op.Join:
			d.join(d.takeReserve())
		case len(d.members) <= minPop:
			// Execution-time floor: the plan assumed joins that may have
			// failed (exhausted pool, partition), so re-check before killing.
		default:
			h := d.members[op.Victim%len(d.members)]
			if op.Crash {
				if d.classify(d.proto.Fail(h)) {
					d.removeMember(h)
					d.cur.Crashes++
				}
			} else {
				if _, err := d.proto.Leave(h); d.classify(err) {
					d.removeMember(h)
					d.cur.Leaves++
				}
			}
		}
	}
}

// runStorm executes a storm inline (Direct mode).
func (d *Driver) runStorm(mix workload.QueryMix) {
	for q := range mix.Objects {
		d.oneQuery(mix.Clients[q], mix.Objects[q])
	}
}

// oneQuery resolves the client draw against the current membership and
// issues one locate. Unfound queries are the availability signal, not
// errors.
func (d *Driver) oneQuery(clientDraw, obj int) {
	d.ensurePhase()
	if len(d.members) == 0 {
		d.cur.Queries++
		return
	}
	h := d.members[clientDraw%len(d.members)]
	res, cost := d.proto.Locate(h, d.cfg.Placement.Names[obj])
	d.cur.Queries++
	if !res.Found {
		return
	}
	d.cur.Found++
	d.hopsSum += float64(res.Hops)
	if direct := d.space.Distance(int(h.Addr()), int(res.Server)); direct > 0 {
		d.strSum += cost.Distance() / direct
		d.strN++
	}
}

// partitionGroups builds the netsim mask for a cut with ~frac of the
// membership on the minority side. With region structure the cut is
// region-aligned (whole stub domains fall on one side — the correlated
// geometry a real backbone cut produces, and what region-diversified
// replication is supposed to survive); otherwise addresses split
// individually.
func (d *Driver) partitionGroups(frac float64, idx int) []int {
	group := make([]int, d.net.Size())
	rng := d.streamRNG("partition", idx)
	want := int(math.Ceil(frac * float64(len(d.members))))
	if len(d.regionOrder) > 0 {
		regions := metric.Regions(d.space)
		perRegion := map[int]int{}
		for _, h := range d.members {
			perRegion[regions[int(h.Addr())]]++
		}
		order := append([]int(nil), d.regionOrder...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		minority := map[int]bool{}
		got := 0
		for _, l := range order {
			if got >= want {
				break
			}
			minority[l] = true
			got += perRegion[l]
		}
		for p := range group {
			if r := regions[p]; r >= 0 && minority[r] {
				group[p] = 1
			}
		}
		return group
	}
	memberSide := map[netsim.Addr]bool{}
	perm := rng.Perm(len(d.members))
	for _, i := range perm[:min(want, len(d.members))] {
		memberSide[d.members[i].Addr()] = true
	}
	for p := range group {
		if memberSide[netsim.Addr(p)] {
			group[p] = 1
		}
	}
	return group
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
