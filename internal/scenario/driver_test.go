package scenario

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/overlay"
	"tapestry/internal/workload"
)

var testSpec = ids.Spec{Base: 16, Digits: 8}

// env is one built-and-published protocol instance ready to drive.
type env struct {
	proto   overlay.Protocol
	handles []overlay.Handle
	place   workload.Placement
	reserve []netsim.Addr
}

// buildEnv constructs the named protocol over the space with n members, a
// reserve join pool, and `objects` published single-replica objects.
func buildEnv(t *testing.T, name string, space metric.Space, n, reserveN, objects int, seed int64) env {
	t.Helper()
	b, err := overlay.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, n)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	reserve := make([]netsim.Addr, reserveN)
	for i := range reserve {
		reserve[i] = netsim.Addr(perm[n+i])
	}
	p, err := b.New(netsim.New(space), overlay.Config{Spec: testSpec, Seed: seed, Static: true})
	if err != nil {
		t.Fatal(err)
	}
	handles, _, err := p.Build(addrs)
	if err != nil {
		t.Fatal(err)
	}
	place := workload.UniformPlacement(objects, 1, n, rng)
	for i := range place.Names {
		if _, err := p.Publish(handles[place.Servers[i][0]], place.Names[i]); err != nil {
			t.Fatalf("publish %s: %v", place.Names[i], err)
		}
	}
	return env{proto: p, handles: handles, place: place, reserve: reserve}
}

func run(t *testing.T, e env, name string, cfg Config) []PhaseReport {
	t.Helper()
	cfg.Placement = e.place
	cfg.Reserve = e.reserve
	d, err := NewDriver(e.proto, e.handles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Named(name, Spec{Queries: 96, Stampede: 8})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := d.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return reports
}

func phase(t *testing.T, reports []PhaseReport, name string) PhaseReport {
	t.Helper()
	for _, r := range reports {
		if r.Phase == name {
			return r
		}
	}
	t.Fatalf("no phase %q in %+v", name, reports)
	return PhaseReport{}
}

func TestBlackoutScenarioDirect(t *testing.T) {
	space := metric.NewTransitStub(metric.DefaultTransitStub(), rand.New(rand.NewSource(2)))
	e := buildEnv(t, "tapestry", space, 96, 32, 24, 11)
	reports := run(t, e, "blackout", Config{Seed: 5})
	if len(reports) != 3 {
		t.Fatalf("got %d phases: %+v", len(reports), reports)
	}
	base := phase(t, reports, "baseline")
	if base.Queries == 0 || base.Found != base.Queries {
		t.Fatalf("healthy baseline missed queries: %+v", base)
	}
	black := phase(t, reports, "blackout")
	if black.Crashes == 0 {
		t.Fatalf("blackout crashed nobody: %+v", black)
	}
	rest := phase(t, reports, "restored")
	if rest.Restores != black.Crashes {
		t.Fatalf("restored %d of %d crashed", rest.Restores, black.Crashes)
	}
	if rest.Live != base.Live {
		t.Fatalf("membership %d after restore, want %d", rest.Live, base.Live)
	}
	if rest.Found < black.Found {
		t.Fatalf("availability did not recover: blackout %d/%d, restored %d/%d",
			black.Found, black.Queries, rest.Found, rest.Queries)
	}
}

func TestHealingPartitionScenarioDirect(t *testing.T) {
	space := metric.NewTransitStub(metric.DefaultTransitStub(), rand.New(rand.NewSource(2)))
	e := buildEnv(t, "tapestry", space, 96, 16, 24, 11)
	reports := run(t, e, "healing-partition", Config{Seed: 5})
	part := phase(t, reports, "partitioned")
	if part.Blocked == 0 {
		t.Fatalf("partition blocked no messages: %+v", part)
	}
	if part.Found == part.Queries {
		t.Fatalf("partition cost nothing: %+v", part)
	}
	healed := phase(t, reports, "healed")
	if healed.Blocked != 0 {
		t.Fatalf("messages still blocked after heal: %+v", healed)
	}
	if healed.Found <= part.Found {
		t.Fatalf("healing did not recover availability: partitioned %d/%d, healed %d/%d",
			part.Found, part.Queries, healed.Found, healed.Queries)
	}
}

func TestLossyLinksScenarioDirect(t *testing.T) {
	e := buildEnv(t, "tapestry", metric.NewRing(512), 96, 16, 24, 11)
	reports := run(t, e, "lossy-links", Config{Seed: 5})
	deg := phase(t, reports, "degrading")
	if deg.Lost == 0 || deg.Duplicated == 0 {
		t.Fatalf("ramp injected nothing: %+v", deg)
	}
	rec := phase(t, reports, "recovered")
	if rec.Lost != 0 || rec.Duplicated != 0 {
		t.Fatalf("faults survived recovery: %+v", rec)
	}
	// Full recovery is NOT expected, and that is a finding this engine
	// exists to surface: a single lost message makes routeToKey evict the
	// live peer (noteDead -> table.Remove), and when it was the only
	// (beta,j) node the resulting hole is an illegitimate surrogate-routing
	// inconsistency that republish alone cannot heal. Assert the hit rate
	// improves once links are clean, and that most queries resolve.
	if rec.Queries == 0 ||
		rec.Found*deg.Queries <= deg.Found*rec.Queries {
		t.Fatalf("recovered hit rate not above degraded: %+v vs %+v", rec, deg)
	}
	if rec.Found*10 < rec.Queries*7 {
		t.Fatalf("recovered availability below 70%%: %+v", rec)
	}
}

func TestFlashStampedeScenarioDirect(t *testing.T) {
	e := buildEnv(t, "tapestry", metric.NewRing(512), 64, 32, 24, 11)
	reports := run(t, e, "flash-stampede", Config{Seed: 5})
	flash := phase(t, reports, "flash")
	if flash.Joins == 0 {
		t.Fatalf("stampede joined nobody: %+v", flash)
	}
	if flash.Queries < 96 {
		t.Fatalf("flash crowd undersized: %+v", flash)
	}
	settled := phase(t, reports, "settled")
	if settled.Live != 64+flash.Joins {
		t.Fatalf("membership %d, want %d", settled.Live, 64+flash.Joins)
	}
}

// TestDriverDeterministicTwin pins the replay contract: identical seeds on
// identically built overlays produce identical reports, field for field.
func TestDriverDeterministicTwin(t *testing.T) {
	for _, name := range Names() {
		mk := func() []PhaseReport {
			space := metric.NewTransitStub(metric.DefaultTransitStub(), rand.New(rand.NewSource(2)))
			e := buildEnv(t, "tapestry", space, 64, 32, 16, 7)
			return run(t, e, name, Config{Seed: 13})
		}
		a, b := mk(), mk()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: twin runs diverged:\n%+v\nvs\n%+v", name, a, b)
		}
	}
}

// TestCapsGatedDecline replays the crash-heavy scenario against pastry
// (capability set: static) — every membership event must be declined, never
// panic, and queries must still resolve.
func TestCapsGatedDecline(t *testing.T) {
	space := metric.NewTransitStub(metric.DefaultTransitStub(), rand.New(rand.NewSource(2)))
	e := buildEnv(t, "pastry", space, 64, 16, 16, 7)
	reports := run(t, e, "blackout", Config{Seed: 13})
	for _, r := range reports {
		if r.Crashes != 0 || r.Joins != 0 || r.Restores != 0 {
			t.Fatalf("static pastry mutated membership: %+v", r)
		}
		if r.Queries > 0 && r.Found != r.Queries {
			t.Fatalf("static pastry lost availability with no failures: %+v", r)
		}
	}
	black := phase(t, reports, "blackout")
	if black.Declined == 0 {
		t.Fatalf("blackout not declined: %+v", black)
	}
}

// TestEventDrivenMode replays scenarios under the virtual-time engine:
// membership and fault events serialize on the control op while query storms
// interleave as individual ops, and the outcome is deterministic.
func TestEventDrivenMode(t *testing.T) {
	for _, name := range []string{"healing-partition", "blackout"} {
		mk := func() []PhaseReport {
			space := metric.NewTransitStub(metric.DefaultTransitStub(), rand.New(rand.NewSource(2)))
			e := buildEnv(t, "tapestry", space, 64, 32, 16, 7)
			eng := netsim.NewEngine(99)
			e.proto.Net().AttachEngine(eng)
			return run(t, e, name, Config{Seed: 13, Mode: EventDriven})
		}
		reports := mk()
		if len(reports) != 3 {
			t.Fatalf("%s: got %d phases: %+v", name, len(reports), reports)
		}
		total := 0
		for _, r := range reports {
			total += r.Queries
		}
		if total == 0 {
			t.Fatalf("%s: no queries ran under the engine", name)
		}
		if name == "healing-partition" {
			if p := phase(t, reports, "partitioned"); p.Blocked == 0 {
				t.Fatalf("partition blocked nothing under the engine: %+v", p)
			}
		}
		if !reflect.DeepEqual(reports, mk()) {
			t.Fatalf("%s: event-driven twin runs diverged", name)
		}
	}
}

func TestEventDrivenNeedsEngine(t *testing.T) {
	e := buildEnv(t, "tapestry", metric.NewRing(256), 32, 8, 8, 7)
	d, err := NewDriver(e.proto, e.handles, Config{Seed: 1, Mode: EventDriven, Placement: e.place})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(Named2(t, "blackout")); err == nil {
		t.Fatal("EventDriven ran without an engine")
	}
}

// Named2 fetches a named scenario, failing the test on error.
func Named2(t *testing.T, name string) Scenario {
	t.Helper()
	s, err := Named(name, Spec{Queries: 8, Stampede: 2})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDriverStormRace is the -race storm: the driver replays a crash-and-
// fault-heavy timeline while external goroutines hammer concurrent locates
// against the same mesh — the §4.4 regime of queries racing genuine
// membership change, plus fault reconfiguration racing Send. Run with
// -race in CI.
func TestDriverStormRace(t *testing.T) {
	space := metric.NewTransitStub(metric.DefaultTransitStub(), rand.New(rand.NewSource(2)))
	e := buildEnv(t, "tapestry", space, 96, 48, 24, 11)

	storm := Overlay("storm",
		Named2(t, "blackout"),
		New("noise").
			At(1, LinkFaults{Loss: 0.02, Dup: 0.02}).
			At(5, Partition{Frac: 0.3}).
			At(15, Heal{}).
			At(18, Churn{JoinMean: 4, LeaveMean: 2, CrashMean: 2}).
			MustBuild(),
	)
	s, err := Named("flash-stampede", Spec{Queries: 64, Stampede: 16})
	if err != nil {
		t.Fatal(err)
	}
	storm = Seq("storm2", storm, s)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := e.handles[rng.Intn(len(e.handles))]
				e.proto.Locate(h, e.place.Names[rng.Intn(len(e.place.Names))])
			}
		}(g)
	}

	d, err := NewDriver(e.proto, e.handles, Config{Seed: 3, Placement: e.place, Reserve: e.reserve})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := d.Run(storm)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) < 5 {
		t.Fatalf("storm produced %d phases", len(reports))
	}
	e.proto.Net().ClearFaults()
}
