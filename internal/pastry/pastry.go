// Package pastry implements a Pastry-like baseline [27]: prefix routing
// with proximity neighbor selection (each table slot holds the closest
// qualifying node), a leaf set of numerically adjacent nodes for the last
// hop, and objects stored as references at the numerically closest node to
// their key.
//
// The contrast with Tapestry isolates the value of in-network object
// pointers: Pastry's per-hop choices are proximity-aware, but a query must
// travel all the way to the key's numeric owner even when a replica sits
// next door — "while its overlay construction leverages network proximity
// metrics, it does not provide the same stretch as the PRR scheme in object
// location" (Section 1.1).
package pastry

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
)

// Node is one Pastry participant.
type Node struct {
	mesh *Mesh
	id   ids.ID
	addr netsim.Addr

	mu    sync.Mutex
	table [][]ref // [level][digit] single proximity-chosen entry (zero ref = hole)
	leaf  []ref   // numerically closest nodes, both directions
	store map[string][]netsim.Addr
}

type ref struct {
	id   ids.ID
	addr netsim.Addr
	ok   bool
}

// Mesh is a Pastry overlay instance.
type Mesh struct {
	spec     ids.Spec
	leafSize int
	net      *netsim.Network

	mu     sync.RWMutex
	byAddr map[netsim.Addr]*Node
	sorted []*Node // by ID, for leaf-set construction
}

// NewMesh creates an empty Pastry overlay. leafSize is the total leaf-set
// size (Pastry's |L|, typically 16; scaled down for small simulations).
func NewMesh(net *netsim.Network, spec ids.Spec, leafSize int) (*Mesh, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if leafSize < 2 {
		return nil, errors.New("pastry: leaf size must be >= 2")
	}
	return &Mesh{spec: spec, leafSize: leafSize, net: net, byAddr: map[netsim.Addr]*Node{}}, nil
}

// Build constructs the overlay statically from global knowledge with
// proximity neighbor selection, the standard simulation methodology for
// Pastry hop/stretch studies.
func (m *Mesh) Build(parts []Part) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.byAddr) != 0 {
		return errors.New("pastry: already built")
	}
	for _, p := range parts {
		if _, dup := m.byAddr[p.Addr]; dup {
			return fmt.Errorf("pastry: duplicate address %d", p.Addr)
		}
		n := &Node{
			mesh: m, id: p.ID, addr: p.Addr,
			table: newTable(m.spec),
			store: map[string][]netsim.Addr{},
		}
		m.byAddr[p.Addr] = n
		m.sorted = append(m.sorted, n)
		m.net.Attach(p.Addr)
	}
	sort.Slice(m.sorted, func(i, j int) bool { return m.sorted[i].id.Less(m.sorted[j].id) })

	for _, n := range m.sorted {
		for _, peer := range m.sorted {
			if peer == n {
				continue
			}
			cpl := ids.CommonPrefixLen(n.id, peer.id)
			d := m.net.Distance(n.addr, peer.addr)
			for l := 0; l <= cpl && l < m.spec.Digits; l++ {
				dg := peer.id.Digit(l)
				slot := &n.table[l][dg]
				if !slot.ok || m.net.Distance(n.addr, slot.addr) > d {
					*slot = ref{peer.id, peer.addr, true}
				}
			}
		}
	}
	// Leaf sets: leafSize/2 numeric neighbors on each side.
	half := m.leafSize / 2
	nn := len(m.sorted)
	for i, n := range m.sorted {
		for o := 1; o <= half && o < nn; o++ {
			up := m.sorted[(i+o)%nn]
			dn := m.sorted[(i-o+nn)%nn]
			n.leaf = append(n.leaf, ref{up.id, up.addr, true}, ref{dn.id, dn.addr, true})
		}
	}
	return nil
}

// Part names one participant.
type Part struct {
	ID   ids.ID
	Addr netsim.Addr
}

func newTable(spec ids.Spec) [][]ref {
	t := make([][]ref, spec.Digits)
	for l := range t {
		t[l] = make([]ref, spec.Base)
	}
	return t
}

// Nodes returns all participants sorted by ID.
func (m *Mesh) Nodes() []*Node {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]*Node(nil), m.sorted...)
}

// absDiffBase computes |a-b| digit-wise in the given radix (both IDs have
// equal length, so school-book subtraction with borrow suffices; no
// big-integer dependency).
func absDiffBase(a, b ids.ID, radix int) []int {
	if b.Less(a) {
		a, b = b, a
	}
	n := a.Len()
	out := make([]int, n)
	borrow := 0
	for i := n - 1; i >= 0; i-- {
		d := int(b.Digit(i)) - int(a.Digit(i)) - borrow
		if d < 0 {
			d += radix
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = d
	}
	return out
}

func lessVec(a, b []int) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// closerToKey reports whether a is strictly numerically closer to key than
// b, with ties broken toward the smaller ID — a total preference, so routing
// from any start converges on the same owner.
func (m *Mesh) closerToKey(a, b, key ids.ID) bool {
	da := absDiffBase(a, key, m.spec.Base)
	db := absDiffBase(b, key, m.spec.Base)
	if c := lessVec(da, db); c != 0 {
		return c < 0
	}
	return a.Less(b)
}

// NumericOwner returns the node whose ID is numerically closest to the key,
// the storage home of the key.
func (m *Mesh) NumericOwner(key ids.ID) *Node {
	m.mu.RLock()
	defer m.mu.RUnlock()
	best := m.sorted[0]
	i := sort.Search(len(m.sorted), func(i int) bool { return !m.sorted[i].id.Less(key) })
	for _, cand := range []int{i - 1, i} {
		if cand >= 0 && cand < len(m.sorted) {
			if m.closerToKey(m.sorted[cand].id, best.id, key) {
				best = m.sorted[cand]
			}
		}
	}
	return best
}

// Route walks from n toward the key's numeric owner: prefix table first,
// leaf set for the numeric endgame. Returns the final node and hop count.
func (n *Node) Route(key ids.ID, cost *netsim.Cost) (*Node, int, error) {
	cur := n
	hops := 0
	maxHops := n.mesh.spec.Digits + n.mesh.leafSize + 4
	for hops <= maxHops {
		next := cur.nextHop(key)
		if next == nil {
			return cur, hops, nil
		}
		if err := n.mesh.net.RPC(cur.addr, next.addr, cost); err != nil {
			return nil, hops, err
		}
		cur = next
		hops++
	}
	return nil, hops, errors.New("pastry: routing did not converge")
}

// nextHop picks the next node strictly closer to the key in ID space, or
// nil when cur is the numeric owner among everything it knows.
func (cur *Node) nextHop(key ids.ID) *Node {
	cur.mu.Lock()
	defer cur.mu.Unlock()
	m := cur.mesh
	myCPL := ids.CommonPrefixLen(cur.id, key)
	// Candidates: the prefix-table jump (one more matching digit — the
	// locality-aware long hop) and the leaf set (numeric endgame). The hop
	// must be strictly numerically closer to the key than the current node,
	// which both terminates the walk and makes the owner unique regardless
	// of the starting point.
	best := cur
	if myCPL < m.spec.Digits {
		if slot := cur.table[myCPL][key.Digit(myCPL)]; slot.ok && m.closerToKey(slot.id, best.id, key) {
			if peer := m.nodeAt(slot.addr); peer != nil {
				best = peer
			}
		}
	}
	for _, lf := range cur.leaf {
		if m.closerToKey(lf.id, best.id, key) {
			if peer := m.nodeAt(lf.addr); peer != nil {
				best = peer
			}
		}
	}
	if best != cur {
		return best
	}
	return nil
}

func (m *Mesh) nodeAt(a netsim.Addr) *Node {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.byAddr[a]
}

// Publish stores a replica reference at the key's numeric owner.
func (n *Node) Publish(key ids.ID, cost *netsim.Cost) error {
	owner, _, err := n.Route(key, cost)
	if err != nil {
		return err
	}
	owner.mu.Lock()
	owner.store[key.String()] = append(owner.store[key.String()], n.addr)
	owner.mu.Unlock()
	return nil
}

// LocateResult mirrors the Tapestry result shape.
type LocateResult struct {
	Found  bool
	Server netsim.Addr
	Hops   int
}

// Locate routes to the numeric owner, then to the replica closest to the
// owner.
func (n *Node) Locate(key ids.ID, cost *netsim.Cost) LocateResult {
	owner, hops, err := n.Route(key, cost)
	if err != nil {
		return LocateResult{}
	}
	owner.mu.Lock()
	reps := append([]netsim.Addr(nil), owner.store[key.String()]...)
	owner.mu.Unlock()
	if len(reps) == 0 {
		return LocateResult{}
	}
	best := reps[0]
	for _, rp := range reps[1:] {
		if n.mesh.net.Distance(owner.addr, rp) < n.mesh.net.Distance(owner.addr, best) {
			best = rp
		}
	}
	if err := n.mesh.net.Send(owner.addr, best, cost, true); err != nil {
		return LocateResult{}
	}
	return LocateResult{Found: true, Server: best, Hops: hops + 1}
}

// TableSize counts filled routing entries plus leaf-set entries.
func (n *Node) TableSize() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := len(n.leaf)
	for l := range n.table {
		for d := range n.table[l] {
			if n.table[l][d].ok {
				c++
			}
		}
	}
	return c
}

// ID returns the node identifier.
func (n *Node) ID() ids.ID { return n.id }

// Addr returns the node's network address.
func (n *Node) Addr() netsim.Addr { return n.addr }

// RandomParts draws distinct random IDs over the addresses.
func RandomParts(spec ids.Spec, addrs []netsim.Addr, rng *rand.Rand) []Part {
	seen := map[string]bool{}
	parts := make([]Part, 0, len(addrs))
	for _, a := range addrs {
		for {
			id := spec.Random(rng)
			if !seen[id.String()] {
				seen[id.String()] = true
				parts = append(parts, Part{id, a})
				break
			}
		}
	}
	return parts
}
