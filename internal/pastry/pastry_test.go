package pastry

import (
	"math/rand"
	"testing"

	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
)

var spec = ids.Spec{Base: 16, Digits: 6}

func buildMesh(t testing.TB, n int, seed int64) (*Mesh, []*Node) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	space := metric.NewRing(n * 4)
	net := netsim.New(space)
	m, err := NewMesh(net, spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, n)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	if err := m.Build(RandomParts(spec, addrs, rng)); err != nil {
		t.Fatal(err)
	}
	return m, m.Nodes()
}

func TestNewMeshValidation(t *testing.T) {
	net := netsim.New(metric.NewRing(8))
	if _, err := NewMesh(net, ids.Spec{Base: 1, Digits: 3}, 8); err == nil {
		t.Error("bad spec accepted")
	}
	if _, err := NewMesh(net, spec, 1); err == nil {
		t.Error("tiny leaf set accepted")
	}
}

func TestBuildRejectsDuplicates(t *testing.T) {
	net := netsim.New(metric.NewRing(8))
	m, _ := NewMesh(net, spec, 4)
	parts := []Part{{spec.Hash("a"), 0}, {spec.Hash("b"), 0}}
	if err := m.Build(parts); err == nil {
		t.Error("duplicate address accepted")
	}
}

func TestAbsDiffBase(t *testing.T) {
	a, _ := spec.Parse("000100")
	b, _ := spec.Parse("0000FF")
	d := absDiffBase(a, b, 16)
	want := []int{0, 0, 0, 0, 0, 1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("absDiff = %v, want %v", d, want)
		}
	}
	// Symmetric.
	d2 := absDiffBase(b, a, 16)
	for i := range want {
		if d2[i] != want[i] {
			t.Fatalf("absDiff not symmetric: %v", d2)
		}
	}
}

func TestRouteConvergesToUniqueOwner(t *testing.T) {
	m, nodes := buildMesh(t, 48, 1)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		key := spec.Random(rng)
		want := m.NumericOwner(key)
		for _, start := range []*Node{nodes[0], nodes[17], nodes[47]} {
			got, hops, err := start.Route(key, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("key %v: owner %v from %v, want %v", key, got.id, start.id, want.id)
			}
			if hops > spec.Digits+8 {
				t.Errorf("route took %d hops", hops)
			}
		}
	}
}

func TestPublishLocate(t *testing.T) {
	_, nodes := buildMesh(t, 32, 3)
	key := spec.Hash("pastry-object")
	if err := nodes[5].Publish(key, nil); err != nil {
		t.Fatal(err)
	}
	for _, c := range nodes {
		res := c.Locate(key, nil)
		if !res.Found {
			t.Fatalf("locate failed from %v", c.id)
		}
		if res.Server != nodes[5].Addr() {
			t.Fatalf("wrong server")
		}
	}
	if res := nodes[0].Locate(spec.Hash("ghost"), nil); res.Found {
		t.Error("found unpublished object")
	}
}

func TestNoLocalityForNearbyReplica(t *testing.T) {
	// The structural contrast with Tapestry: a replica adjacent to the
	// client still forces a round trip to the numeric owner. Distance
	// traveled is (usually) much larger than the client-replica distance.
	m, nodes := buildMesh(t, 64, 4)
	net := m.net
	// Find a (client, server) pair that are metric neighbors.
	var client, server *Node
	bestD := 1e18
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				if d := net.Distance(a.Addr(), b.Addr()); d < bestD {
					bestD = d
					client, server = a, b
				}
			}
		}
	}
	key := spec.Hash("nearby")
	if err := server.Publish(key, nil); err != nil {
		t.Fatal(err)
	}
	var cost netsim.Cost
	res := client.Locate(key, &cost)
	if !res.Found {
		t.Fatal("locate failed")
	}
	owner := m.NumericOwner(key)
	if owner == client || owner == server {
		t.Skip("owner happens to be an endpoint; locality accidental")
	}
	if cost.Distance() < bestD {
		t.Errorf("query traveled %g < direct distance %g — impossible", cost.Distance(), bestD)
	}
}

func TestTableSizeLogarithmic(t *testing.T) {
	_, nodes := buildMesh(t, 64, 5)
	for _, n := range nodes {
		s := n.TableSize()
		// log16(64) ≈ 1.5 populated levels ⇒ tens of entries, plus 8 leaves.
		if s < 8 || s > 200 {
			t.Fatalf("table size %d out of plausible range", s)
		}
	}
}

func TestBuildTwiceFails(t *testing.T) {
	m, _ := buildMesh(t, 8, 6)
	if err := m.Build(nil); err == nil {
		t.Error("second build accepted")
	}
}
