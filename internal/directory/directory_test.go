package directory

import (
	"testing"

	"tapestry/internal/metric"
	"tapestry/internal/netsim"
)

func TestPublishLocate(t *testing.T) {
	net := netsim.New(metric.NewRing(64))
	d := New(net, 0)
	for a := netsim.Addr(1); a <= 8; a++ {
		net.Attach(a)
	}
	if err := d.Publish("obj", 4, nil); err != nil {
		t.Fatal(err)
	}
	res := d.Locate(8, "obj", nil)
	if !res.Found || res.Server != 4 || res.Hops != 2 {
		t.Fatalf("locate: %+v", res)
	}
	if res := d.Locate(8, "ghost", nil); res.Found {
		t.Error("found unpublished")
	}
	if d.Load() != 3 {
		t.Errorf("load = %d, want 3", d.Load())
	}
}

func TestClosestReplicaToClient(t *testing.T) {
	net := netsim.New(metric.NewRing(64))
	d := New(net, 0)
	for _, a := range []netsim.Addr{10, 50, 20} {
		net.Attach(a)
	}
	d.Publish("obj", 10, nil)
	d.Publish("obj", 50, nil)
	res := d.Locate(20, "obj", nil)
	if res.Server != 10 {
		t.Errorf("directory should pick the replica closest to the client, got %d", res.Server)
	}
}

func TestLatencyIndependentOfObjectDistance(t *testing.T) {
	// The paper's critique: client at 32, replica at 33 (adjacent), server
	// at 0. The query still pays ~2x the client-server distance.
	net := netsim.New(metric.NewRing(64))
	d := New(net, 0)
	net.Attach(32)
	net.Attach(33)
	d.Publish("near", 33, nil)
	var cost netsim.Cost
	res := d.Locate(32, "near", &cost)
	if !res.Found {
		t.Fatal("locate failed")
	}
	direct := net.Distance(32, 33)
	if cost.Distance() < 10*direct {
		t.Errorf("central directory paid %g, direct is %g — expected an order of magnitude worse", cost.Distance(), direct)
	}
}

func TestSinglePointOfFailure(t *testing.T) {
	net := netsim.New(metric.NewRing(16))
	d := New(net, 0)
	net.Attach(1)
	d.Publish("x", 1, nil)
	d.Fail()
	if res := d.Locate(1, "x", nil); res.Found {
		t.Error("directory served after failure")
	}
	if err := d.Publish("y", 1, nil); err == nil {
		t.Error("publish succeeded after failure")
	}
}
