// Package directory implements the strawman the paper opens with: a
// centralized directory of object locations. Simple and hop-optimal in
// count, but "the average routing latency of this technique is proportional
// to the average diameter of the network — independent of the actual
// distance to the object", it concentrates all load on one server, and it is
// a single point of failure.
package directory

import (
	"sync"

	"tapestry/internal/netsim"
)

// Directory is the central server plus its client population.
type Directory struct {
	server netsim.Addr
	net    *netsim.Network

	mu    sync.Mutex
	table map[string][]netsim.Addr
	load  int // requests served, for the load-balance comparison
	dead  bool
}

// New places the directory server at the given address.
func New(net *netsim.Network, server netsim.Addr) *Directory {
	net.Attach(server)
	return &Directory{server: server, net: net, table: map[string][]netsim.Addr{}}
}

// Publish registers a replica (one round trip to the server).
func (d *Directory) Publish(key string, replica netsim.Addr, cost *netsim.Cost) error {
	if err := d.net.RPC(replica, d.server, cost); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.load++
	d.table[key] = append(d.table[key], replica)
	return nil
}

// LocateResult mirrors the overlay baselines.
type LocateResult struct {
	Found  bool
	Server netsim.Addr
	Hops   int
}

// Locate asks the central server, which forwards the query to the replica
// closest to the CLIENT (the directory knows everything, so it can make the
// globally best choice — yet the client still paid a round trip to a
// potentially distant server first).
func (d *Directory) Locate(client netsim.Addr, key string, cost *netsim.Cost) LocateResult {
	if err := d.net.Send(client, d.server, cost, true); err != nil {
		return LocateResult{}
	}
	d.mu.Lock()
	d.load++
	reps := append([]netsim.Addr(nil), d.table[key]...)
	d.mu.Unlock()
	if len(reps) == 0 {
		return LocateResult{Hops: 1}
	}
	best := reps[0]
	for _, r := range reps[1:] {
		if d.net.Distance(client, r) < d.net.Distance(client, best) {
			best = r
		}
	}
	if err := d.net.Send(d.server, best, cost, true); err != nil {
		return LocateResult{}
	}
	return LocateResult{Found: true, Server: best, Hops: 2}
}

// Withdraw removes one replica registration (one round trip to the server).
func (d *Directory) Withdraw(key string, replica netsim.Addr, cost *netsim.Cost) error {
	if err := d.net.RPC(replica, d.server, cost); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.load++
	kept := d.table[key][:0]
	for _, r := range d.table[key] {
		if r != replica {
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		delete(d.table, key)
	} else {
		d.table[key] = kept
	}
	return nil
}

// Deregister removes every replica registration of a gracefully departing
// client (one round trip to the server).
func (d *Directory) Deregister(client netsim.Addr, cost *netsim.Cost) error {
	if err := d.net.RPC(client, d.server, cost); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.load++
	for k, reps := range d.table {
		kept := reps[:0]
		for _, r := range reps {
			if r != client {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			delete(d.table, k)
		} else {
			d.table[k] = kept
		}
	}
	return nil
}

// Load returns the total requests the single server has absorbed.
func (d *Directory) Load() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.load
}

// Fail kills the central server; every subsequent operation fails — the
// single-point-of-failure property, made executable.
func (d *Directory) Fail() {
	d.mu.Lock()
	d.dead = true
	d.mu.Unlock()
	d.net.Detach(d.server)
}

// Server returns the address of the central directory server.
func (d *Directory) Server() netsim.Addr { return d.server }
