package expt

import "testing"

// TestPlanetTwinReplayAndWorkerInvariance pins the E-planet determinism
// contract end to end: the whole virtual-time run — sampled build, engine
// event order, churn, maintenance, queries — is byte-identical when replayed
// under the same seed, and independent of the sampled build's worker count.
func TestPlanetTwinReplayAndWorkerInvariance(t *testing.T) {
	const nodes, objects, epochs, queries = 600, 4000, 2, 128
	run := func(workers int) string {
		return planetDef(nodes, objects, epochs, queries, workers).Run(7, 1).String()
	}
	a, b := run(1), run(1)
	if a != b {
		t.Fatalf("E-planet twin runs diverged:\n%s\nvs\n%s", a, b)
	}
	if c := run(8); c != a {
		t.Fatalf("E-planet differs across build workers:\n%s\nvs\n%s", c, a)
	}
}

// TestPlanetAcceptance sanity-checks one reduced run: every epoch row exists,
// availability stays high (the overlay repairs through churn), and the
// virtual clock snapshots land on the epoch boundaries.
func TestPlanetAcceptance(t *testing.T) {
	tbl := Planet(600, 4000, 2, 128, 9)
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows, want 2:\n%s", len(tbl.Rows), tbl.String())
	}
	for i, row := range tbl.Rows {
		if row[9] == "0/128 (0.00%)" {
			t.Errorf("epoch %d: zero availability:\n%s", i+1, tbl.String())
		}
		if row[8] == "0" {
			t.Errorf("epoch %d: zero maintenance messages:\n%s", i+1, tbl.String())
		}
		wantClock := []string{"100", "200"}[i]
		if row[14] != wantClock {
			t.Errorf("epoch %d: clock %s, want %s", i+1, row[14], wantClock)
		}
	}
}
