package expt

import (
	"fmt"
	"math/rand"

	"tapestry/internal/can"
	"tapestry/internal/chord"
	"tapestry/internal/core"
	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/pastry"
	"tapestry/internal/stats"
)

// exptSpec keeps identifiers short enough that modest simulations exercise
// several routing levels while staying collision-free.
var exptSpec = ids.Spec{Base: 16, Digits: 8}

// subSeed derives a labeled RNG stream within a cell — one stream for
// network construction, another for the workload, and so on. Cells that
// build several systems for side-by-side comparison MUST build them all
// from the same sub-seed so node index i lands on the same address in each.
func subSeed(cellSeed int64, label string) int64 {
	return stats.StreamSeed(cellSeed, label, 0)
}

// subRNG returns a generator over the labeled stream of subSeed.
func subRNG(cellSeed int64, label string) *rand.Rand {
	return rand.New(rand.NewSource(subSeed(cellSeed, label)))
}

// pickAddrs chooses n distinct host addresses uniformly from the space.
func pickAddrs(space metric.Space, n int, rng *rand.Rand) []netsim.Addr {
	if n > space.Size() {
		panic(fmt.Sprintf("expt: %d nodes do not fit in %d points", n, space.Size()))
	}
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, n)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	return addrs
}

// ringSpace hosts n nodes on a 4n-point ring (sparse occupancy keeps
// distances non-degenerate).
func ringSpace(n int) metric.Space { return metric.NewRing(4 * n) }

// tapEnv is a built Tapestry overlay plus bookkeeping.
type tapEnv struct {
	mesh      *core.Mesh
	nodes     []*core.Node
	joinCosts []int
	net       *netsim.Network
}

// buildTapestry grows a Tapestry mesh. dynamic=true uses the paper's join
// protocol (and records per-join message costs); false uses the static
// oracle construction (fast path for large read-only meshes).
func buildTapestry(space metric.Space, n int, cfg core.Config, seed int64, dynamic bool) tapEnv {
	rng := rand.New(rand.NewSource(seed))
	net := netsim.New(space)
	addrs := pickAddrs(space, n, rng)
	if dynamic {
		m, err := core.NewMesh(net, cfg)
		if err != nil {
			panic(err)
		}
		nodes, costs, err := m.GrowSequential(addrs, rng)
		if err != nil {
			panic(err)
		}
		return tapEnv{mesh: m, nodes: nodes, joinCosts: costs, net: net}
	}
	parts := core.StaticParticipants(cfg.Spec, addrs, rng)
	m, err := core.BuildStatic(net, cfg, parts)
	if err != nil {
		panic(err)
	}
	// Keep nodes aligned with the address order so node index i refers to
	// the same location in every system built from the same seed.
	nodes := make([]*core.Node, len(addrs))
	for i, a := range addrs {
		nodes[i] = m.NodeAt(a)
	}
	return tapEnv{mesh: m, nodes: nodes, net: net}
}

func defaultTapConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Spec = exptSpec
	return cfg
}

type chordEnv struct {
	ring      *chord.Ring
	nodes     []*chord.Node
	joinCosts []int
	net       *netsim.Network
}

func buildChord(space metric.Space, n int, seed int64) chordEnv {
	rng := rand.New(rand.NewSource(seed))
	net := netsim.New(space)
	r := chord.NewRing(net, seed)
	nodes, costs, err := r.Grow(pickAddrs(space, n, rng), rng)
	if err != nil {
		panic(err)
	}
	r.Stabilize(nil)
	return chordEnv{ring: r, nodes: nodes, joinCosts: costs, net: net}
}

type pastryEnv struct {
	mesh  *pastry.Mesh
	nodes []*pastry.Node
	net   *netsim.Network
}

func buildPastry(space metric.Space, n int, seed int64) pastryEnv {
	rng := rand.New(rand.NewSource(seed))
	net := netsim.New(space)
	leaf := 8
	m, err := pastry.NewMesh(net, exptSpec, leaf)
	if err != nil {
		panic(err)
	}
	if err := m.Build(pastry.RandomParts(exptSpec, pickAddrs(space, n, rng), rng)); err != nil {
		panic(err)
	}
	return pastryEnv{mesh: m, nodes: m.Nodes(), net: net}
}

type canEnv struct {
	mesh      *can.Mesh
	nodes     []*can.Node
	joinCosts []int
	net       *netsim.Network
}

func buildCAN(space metric.Space, n, dims int, seed int64) canEnv {
	rng := rand.New(rand.NewSource(seed))
	net := netsim.New(space)
	m, err := can.NewMesh(net, dims)
	if err != nil {
		panic(err)
	}
	nodes, costs, err := m.Grow(pickAddrs(space, n, rng), rng)
	if err != nil {
		panic(err)
	}
	return canEnv{mesh: m, nodes: nodes, joinCosts: costs, net: net}
}
