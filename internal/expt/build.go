package expt

import (
	"fmt"
	"math/rand"

	"tapestry/internal/core"
	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/overlay"
	"tapestry/internal/stats"
)

// exptSpec keeps identifiers short enough that modest simulations exercise
// several routing levels while staying collision-free.
var exptSpec = ids.Spec{Base: 16, Digits: 8}

// subSeed derives a labeled RNG stream within a cell — one stream for
// network construction, another for the workload, and so on. Cells that
// build several systems for side-by-side comparison MUST build them all
// from the same sub-seed so node index i lands on the same address in each.
func subSeed(cellSeed int64, label string) int64 {
	return stats.StreamSeed(cellSeed, label, 0)
}

// subRNG returns a generator over the labeled stream of subSeed.
func subRNG(cellSeed int64, label string) *rand.Rand {
	return rand.New(rand.NewSource(subSeed(cellSeed, label)))
}

// pickAddrs chooses n distinct host addresses uniformly from the space.
func pickAddrs(space metric.Space, n int, rng *rand.Rand) []netsim.Addr {
	if n > space.Size() {
		panic(fmt.Sprintf("expt: %d nodes do not fit in %d points", n, space.Size()))
	}
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, n)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	return addrs
}

// ringSpace hosts n nodes on a 4n-point ring (sparse occupancy keeps
// distances non-degenerate).
func ringSpace(n int) metric.Space { return metric.NewRing(4 * n) }

// tapEnv is a built Tapestry overlay plus bookkeeping, for the experiments
// that exercise Tapestry-specific machinery (audits, repair schemes, the
// serving-layer cache twins). Cross-protocol experiments use overlayEnv,
// whose joinMsgs carry the per-join costs E3 measures.
type tapEnv struct {
	mesh  *core.Mesh
	nodes []*core.Node
	net   *netsim.Network
}

// buildTapestry grows a Tapestry mesh. dynamic=true uses the paper's join
// protocol; false uses the static oracle construction (fast path for large
// read-only meshes).
func buildTapestry(space metric.Space, n int, cfg core.Config, seed int64, dynamic bool) tapEnv {
	rng := rand.New(rand.NewSource(seed))
	net := netsim.New(space)
	addrs := pickAddrs(space, n, rng)
	if dynamic {
		m, err := core.NewMesh(net, cfg)
		if err != nil {
			panic(err)
		}
		nodes, _, err := m.GrowSequential(addrs, rng)
		if err != nil {
			panic(err)
		}
		return tapEnv{mesh: m, nodes: nodes, net: net}
	}
	parts := core.StaticParticipants(cfg.Spec, addrs, rng)
	m, err := core.BuildStatic(net, cfg, parts)
	if err != nil {
		panic(err)
	}
	// Keep nodes aligned with the address order so node index i refers to
	// the same location in every system built from the same seed.
	nodes := make([]*core.Node, len(addrs))
	for i, a := range addrs {
		nodes[i] = m.NodeAt(a)
	}
	return tapEnv{mesh: m, nodes: nodes, net: net}
}

func defaultTapConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Spec = exptSpec
	return cfg
}

// overlayEnv is one protocol instance built through the unified
// overlay.Builder registry, with handles in address order: node index i sits
// at the same address in every overlayEnv built over the same addrs, which
// is what makes cross-protocol cells comparable.
type overlayEnv struct {
	proto    overlay.Protocol
	nodes    []overlay.Handle
	joinMsgs []int // per-member construction messages (zeros for static builds)
}

// buildOverlay constructs the named protocol over a fresh network on the
// space and populates it at the given addresses. Every protocol of a cell
// must be built over the same addrs with the same seed — the registry-keyed
// replacement for the bespoke per-protocol builder shims this file used to
// hold.
func buildOverlay(name string, space metric.Space, addrs []netsim.Addr, cfg overlay.Config) overlayEnv {
	b, err := overlay.Lookup(name)
	if err != nil {
		panic(err)
	}
	if cfg.Spec.Base == 0 {
		cfg.Spec = exptSpec
	}
	p, err := b.New(netsim.New(space), cfg)
	if err != nil {
		panic(fmt.Sprintf("expt: build %s: %v", name, err))
	}
	handles, msgs, err := p.Build(addrs)
	if err != nil {
		panic(fmt.Sprintf("expt: build %s: %v", name, err))
	}
	return overlayEnv{proto: p, nodes: handles, joinMsgs: msgs}
}

// publish announces node i as a replica holder of the key, panicking on the
// impossible (experiment placements only publish from live members).
func (e overlayEnv) publish(i int, key string) {
	if _, err := e.proto.Publish(e.nodes[i], key); err != nil {
		panic(fmt.Sprintf("expt: %s publish %q: %v", e.proto.Name(), key, err))
	}
}

// locate queries the key from node i, returning the result and its cost.
func (e overlayEnv) locate(i int, key string) (overlay.Result, *netsim.Cost) {
	return e.proto.Locate(e.nodes[i], key)
}
