package expt

import (
	"fmt"
	"math"

	"tapestry/internal/netsim"
	"tapestry/internal/overlay"
	"tapestry/internal/stats"
	"tapestry/internal/workload"
)

// E-nines: the availability tier under fire. The replication knobs —
// Observation 2's salted root set r and the k-replica placement — exist to
// buy nines of query success when servers crash, so this experiment measures
// exactly that: a crash-only Poisson churn schedule (victims explicitly MAY
// be replica servers — losing servers is the event replication defends
// against) interleaved with Zipf query storms on the discrete-event virtual
// clock, swept over r ∈ {1,2,4} × k ∈ {1,3} against the Chord and directory
// baselines through the overlay registry.
//
// Per configuration it reports availability as "nines" (-log10 of the
// failure rate; a run with zero failures is floored at the resolution the
// query count can certify, log10(total)) plus the virtual-time latency tail
// (Cost.VirtualSpan percentiles), so the r×k sweep shows both what the
// replication buys and what the extra probes cost.
//
// Determinism: one cell, strictly serial inside; every configuration replays
// the identical scenario from the same labeled sub-seeds and the engine
// resumes one operation at a time, so output is byte-identical for any
// -workers value (pinned by CI).

const (
	ninesEpochLen = 100.0  // virtual-time units per epoch
	ninesService  = 0.0005 // per-message receiver service time (inbound queue)
)

// ninesConfig is one column of the sweep: a registered overlay protocol
// plus, for Tapestry, the availability knobs.
type ninesConfig struct {
	label    string
	protocol string
	roots    int // salted roots r (Tapestry only)
	replicas int // replica servers k (Tapestry only)
}

func ninesConfigs() []ninesConfig {
	var out []ninesConfig
	for _, k := range []int{1, 3} {
		for _, r := range []int{1, 2, 4} {
			out = append(out, ninesConfig{
				label:    fmt.Sprintf("tapestry r=%d k=%d", r, k),
				protocol: "tapestry", roots: r, replicas: k,
			})
		}
	}
	out = append(out,
		ninesConfig{label: "chord", protocol: "chord"},
		ninesConfig{label: "directory", protocol: "directory"},
	)
	return out
}

// ninesRow is one configuration's aggregate, returned for the acceptance
// test that pins nines(r=4,k=3) > nines(r=1,k=1).
type ninesRow struct {
	config           string
	roots, replicas  int
	crashes, skipped int // churn ops applied / declined by the caps mask
	ok, total        int // located / issued queries
	nines            float64
	p50, p95, p99    float64 // virtual-time locate latency
}

// ninesOf converts a success count into nines of availability. A flawless
// run is reported at the resolution the sample size can certify —
// log10(total) — rather than infinity.
func ninesOf(ok, total int) float64 {
	if total == 0 {
		return 0
	}
	if ok == total {
		return math.Log10(float64(total))
	}
	return -math.Log10(1 - float64(ok)/float64(total))
}

// runNinesCell drives every configuration through the shared crash + query
// scenario and appends one row per configuration.
func runNinesCell(seed int64, t *Table, n, objects, epochs, queries int) []ninesRow {
	space := ringSpace(n)
	addrs := pickAddrs(space, n, subRNG(seed, "addrs"))
	place := workload.UniformPlacement(objects, 1, n, subRNG(seed, "place"))
	bseed := subSeed(seed, "build")
	crashMean := float64(n) / 24

	var rows []ninesRow
	for _, cfgN := range ninesConfigs() {
		ocfg := overlay.Config{Seed: bseed, Static: true}
		if cfgN.protocol == "tapestry" {
			cc := defaultTapConfig()
			cc.Seed = bseed
			cc.RootSetSize = cfgN.roots
			cc.Replicas = cfgN.replicas
			// Pointers outlive the run: refresh is load, and the decay this
			// experiment studies is crash loss, not TTL expiry.
			cc.PointerTTL = int64(epochs) + 2
			ocfg.Core = &cc
		}
		env := buildOverlay(cfgN.protocol, space, addrs, ocfg)
		caps := env.proto.Caps()
		for i := range place.Names {
			env.publish(place.Servers[i][0], place.Names[i])
		}

		// Setup ran in direct-call mode (zero virtual time by design); the
		// engine attaches now and everything below is one virtual-time run.
		e := netsim.NewEngine(subSeed(seed, "engine"))
		e.SetServiceTime(ninesService)
		env.proto.Net().AttachEngine(e)

		// Accumulators are written only from engine ops, which run one at a
		// time, so plain fields suffice.
		row := ninesRow{config: cfgN.label, roots: cfgN.roots, replicas: cfgN.replicas}
		var vlat []float64

		departed := make([]bool, n)
		// pickVictim maps a schedule draw onto the base population. Unlike
		// E-faceoff there is NO server exemption: replica loss is the point.
		pickVictim := func(v int) (int, bool) {
			idx := v % n
			for k := 0; k < n; k++ {
				j := (idx + k) % n
				if !departed[j] {
					return j, true
				}
			}
			return 0, false
		}

		// The entire run is scheduled up front; every random decision is
		// drawn here, so the event heap is a pure function of the seed and
		// identical for every configuration.
		crng := subRNG(seed, "churn")
		sched := workload.PoissonChurn(epochs, n, n/2, 0, 0, crashMean, crng)
		wrng := subRNG(seed, "workload")
		for ep := range sched {
			t0 := float64(ep) * ninesEpochLen
			// Crashes land in the first 30% of the epoch; queries fill the
			// back 45%, with one caps-gated maintenance pass between them —
			// repair gets a chance, but late queries still race republish.
			for _, op := range sched[ep] {
				vDraw := op.Victim
				at := t0 + 1 + crng.Float64()*(ninesEpochLen*0.3)
				e.At(at, func() {
					j, ok := pickVictim(vDraw)
					if !ok {
						return
					}
					if !caps.Has(overlay.CapFail) {
						row.skipped++
						return
					}
					if err := env.proto.Fail(env.nodes[j]); err != nil {
						panic(fmt.Sprintf("nines: %s fail: %v", cfgN.label, err))
					}
					departed[j] = true
					row.crashes++
				})
			}
			if caps.Has(overlay.CapMaintain) {
				e.At(t0+ninesEpochLen*0.45, func() {
					if _, err := env.proto.Maintain(); err != nil {
						panic(fmt.Sprintf("nines: %s maintain: %v", cfgN.label, err))
					}
				})
			}
			mix := workload.ZipfQueries(queries, 1<<30, objects, 1.2, wrng)
			for q := 0; q < queries; q++ {
				cDraw := mix.Clients[q]
				key := place.Names[mix.Objects[q]]
				at := t0 + ninesEpochLen*0.5 + wrng.Float64()*(ninesEpochLen*0.45)
				e.At(at, func() {
					members := env.proto.Handles()
					res, cost := env.proto.Locate(members[cDraw%len(members)], key)
					row.total++
					if res.Found {
						row.ok++
						vlat = append(vlat, cost.VirtualLatency())
					}
				})
			}
		}
		e.Run()

		row.nines = ninesOf(row.ok, row.total)
		row.p50, row.p95, row.p99 = quantiles3(vlat)
		rows = append(rows, row)
		t.AddRow(n, row.config, row.roots, row.replicas, row.crashes, row.skipped,
			fmt.Sprintf("%d/%d", row.ok, row.total), row.nines, row.p50, row.p95, row.p99)
	}
	return rows
}

// quantiles3 returns the 50th/95th/99th percentiles of the sample.
func quantiles3(xs []float64) (p50, p95, p99 float64) {
	var s stats.Summary
	for _, x := range xs {
		s.Add(x)
	}
	if s.N() == 0 {
		return 0, 0, 0
	}
	return s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99)
}

// ninesDef (E-nines) sweeps the availability knobs under identical crash
// churn. One cell: the configurations must share one derived seed (identical
// scenario), so the configuration loop is serial inside it.
func ninesDef(n, objects, epochs, queries int) Def {
	d := Def{
		Name: "Nines",
		Table: Table{
			Title: "E-nines: availability (nines of query success) under crash churn, r x k sweep vs baselines",
			Note: "crash-only Poisson churn with replica servers eligible as victims; zipf s=1.2 query storms " +
				"on the virtual clock; nines = -log10(failure rate), capped at log10(queries) when flawless",
			Header: []string{"n", "config", "roots", "replicas", "crashes", "skipped",
				"located", "nines", "vlat p50", "vlat p95", "vlat p99"},
		},
	}
	d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("n=%d", n), Run: func(seed int64, t *Table) {
		runNinesCell(seed, t, n, objects, epochs, queries)
	}})
	return d
}

// Nines (E-nines) — serial wrapper over ninesDef.
func Nines(n, objects, epochs, queries int, seed int64) Table {
	return ninesDef(n, objects, epochs, queries).Run(seed, 1)
}
