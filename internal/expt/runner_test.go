package expt

import (
	"fmt"
	"strings"
	"testing"
)

// smallParams keeps engine tests fast while still exercising several cells
// per experiment.
func smallParams() Params {
	return Params{
		Sizes:     []int{32, 64},
		JoinSizes: []int{32, 64},
		Queries:   64,
		NNSize:    32,
		StretchN:  48,
		BalanceN:  48,

		ScalePoints:  600,
		ScaleNodes:   32,
		ScaleEpochs:  2,
		ScaleQueries: 32,

		RepairN:       48,
		RepairKills:   8,
		RepairQueries: 32,

		HotspotN:       48,
		HotspotObjects: 16,
		HotspotQueries: 128,

		FaceoffN:       48,
		FaceoffObjects: 12,
		FaceoffEpochs:  2,
		FaceoffQueries: 64,

		PlanetNodes:   200,
		PlanetObjects: 400,
		PlanetEpochs:  2,
		PlanetQueries: 32,

		NinesN:       48,
		NinesObjects: 12,
		NinesEpochs:  2,
		NinesQueries: 64,

		ChaosN:        48,
		ChaosObjects:  12,
		ChaosQueries:  64,
		ChaosStampede: 6,
		// One scenario keeps the suite's slowest experiment fast here; the
		// chaos tests cover the full named set.
		ChaosScenarios: []string{"blackout"},
	}
}

// TestRunnerDeterministicAcrossWorkers is the engine's core contract: the
// same seed yields a byte-identical table whether cells run serially or fan
// out across 8 workers.
func TestRunnerDeterministicAcrossWorkers(t *testing.T) {
	p := smallParams()
	for _, e := range Experiments() {
		if e.ID == "E10" {
			// E10 performs genuinely simultaneous joins; its printed
			// values (sizes and violation counts, all zero when Theorem 6
			// holds) are stable, but the mesh it leaves behind is not, so
			// it is exercised by TestRunnerRace instead.
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			def := e.Make(p)
			serial := def.Run(42, 1).String()
			parallel := def.Run(42, 8).String()
			if serial != parallel {
				t.Errorf("%s: workers=1 and workers=8 disagree\n--- serial ---\n%s--- parallel ---\n%s",
					e.ID, serial, parallel)
			}
		})
	}
}

// TestRunnerRace drives concurrent cells over the shared registry so the
// -race build can catch cross-cell sharing. It includes the experiments
// excluded from the determinism check.
func TestRunnerRace(t *testing.T) {
	if testing.Short() {
		t.Skip("race sweep is slow")
	}
	p := smallParams()
	r := Runner{Seed: 7, Workers: 8, Params: p}
	results, err := r.RunMatching("E0|E6|E7|E9|E10|E-scale|A3")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("got %d results", len(results))
	}
	for _, res := range results {
		if len(res.Table.Rows) == 0 {
			t.Errorf("%s produced no rows", res.ID)
		}
	}
}

// TestCellSeedsDistinct asserts the satellite fix: no two (experiment, cell)
// pairs may share an RNG stream — the failure mode of the old seed+7/seed*3
// arithmetic.
func TestCellSeedsDistinct(t *testing.T) {
	p := QuickParams()
	for _, base := range []int64{0, 1, 3, 7, 21} { // seeds where old offsets aliased
		seen := map[int64]string{}
		for _, e := range Experiments() {
			def := e.Make(p)
			for i := range def.Cells {
				s := def.cellSeed(base, i)
				where := e.ID + "/" + def.Cells[i].Label
				if prev, ok := seen[s]; ok {
					t.Fatalf("seed %d: cell stream collision between %s and %s", base, where, prev)
				}
				seen[s] = where
			}
		}
	}
}

// TestSerialWrappersMatchEngine pins the compatibility contract: the
// exported per-experiment functions must return exactly what the engine
// produces for the same definition.
func TestSerialWrappersMatchEngine(t *testing.T) {
	if got, want := SurrogateOverhead([]int{32}, 32, 9).String(),
		surrogateOverheadDef([]int{32}, 32).Run(9, 4).String(); got != want {
		t.Errorf("SurrogateOverhead wrapper diverged from engine:\n%s\nvs\n%s", got, want)
	}
	if got, want := MetricExpansion(3).String(),
		metricExpansionDef().Run(3, 4).String(); got != want {
		t.Errorf("MetricExpansion wrapper diverged from engine:\n%s\nvs\n%s", got, want)
	}
}

// TestStreamOrderAndPooling checks that the shared pool emits results in
// presentation order with content identical to per-experiment runs.
func TestStreamOrderAndPooling(t *testing.T) {
	p := smallParams()
	r := Runner{Seed: 11, Workers: 8, Params: p}
	var streamed []Result
	err := r.Stream("E0|E2|E6|A3", func(res Result) error {
		streamed = append(streamed, res)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"E0", "E2", "E6", "A3"}
	if len(streamed) != len(wantIDs) {
		t.Fatalf("streamed %d results, want %d", len(streamed), len(wantIDs))
	}
	for i, res := range streamed {
		if res.ID != wantIDs[i] {
			t.Fatalf("result %d is %s, want %s (presentation order)", i, res.ID, wantIDs[i])
		}
	}
	// Pooled output must equal an isolated serial run of the same def.
	for _, res := range streamed {
		for _, e := range Experiments() {
			if e.ID != res.ID {
				continue
			}
			if want := e.Make(p).Run(11, 1).String(); res.Table.String() != want {
				t.Errorf("%s: pooled table diverged from serial run\n%s\nvs\n%s", res.ID, res.Table, want)
			}
		}
	}
}

// TestRunPanicAttribution pins the unified failure path: a panicking cell
// surfaces the same experiment/cell-labelled message at any worker count.
func TestRunPanicAttribution(t *testing.T) {
	def := Def{
		Name:  "Boom",
		Table: Table{Title: "boom", Header: []string{"x"}},
		Cells: []Cell{
			{Label: "ok", Run: func(seed int64, t *Table) { t.AddRow(1) }},
			{Label: "bad", Run: func(int64, *Table) { panic("kapow") }},
		},
	}
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: expected panic", workers)
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, "Boom") || !strings.Contains(msg, "bad") || !strings.Contains(msg, "kapow") {
					t.Errorf("workers=%d: panic lacks attribution: %q", workers, msg)
				}
			}()
			def.Run(3, workers)
		}()
	}
}

// TestRunAndEmitRejectsFormatUpFront pins the cheap-failure path: a typo'd
// format errors out immediately — even with an invalid pattern, the format
// check comes first, proving no experiment selection (let alone execution)
// happened before it.
func TestRunAndEmitRejectsFormatUpFront(t *testing.T) {
	r := Runner{Seed: 1, Workers: 1, Params: QuickParams()}
	err := r.RunAndEmit(&strings.Builder{}, "(", "jsn")
	if err == nil || !strings.Contains(err.Error(), "jsn") {
		t.Fatalf("want unknown-format error before pattern handling, got %v", err)
	}
	// Valid format + good pattern still works end to end.
	var b strings.Builder
	if err := r.RunAndEmit(&b, "E0", FormatJSON); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "\"id\": \"E0\"") {
		t.Errorf("json output missing result: %s", b.String())
	}
}

func TestMatch(t *testing.T) {
	all, err := Match("")
	if err != nil || len(all) != len(registry) {
		t.Fatalf("empty pattern: %d experiments, err=%v", len(all), err)
	}
	one, err := Match("e5")
	if err != nil || len(one) != 1 || one[0].ID != "E5" {
		t.Fatalf("case-insensitive id match failed: %v err=%v", one, err)
	}
	byName, err := Match("Table1.*")
	if err != nil || len(byName) != 4 {
		t.Fatalf("name regexp matched %d, want 4 (err=%v)", len(byName), err)
	}
	// E1 must not swallow E10..E16: the pattern is anchored.
	e1, err := Match("E1")
	if err != nil || len(e1) != 1 {
		t.Fatalf("anchored match failed: %v err=%v", e1, err)
	}
	if _, err := Match("NoSuchExperiment"); err == nil {
		t.Fatal("expected error for unmatched pattern")
	}
	if _, err := Match("("); err == nil {
		t.Fatal("expected error for invalid regexp")
	}
}

func TestRegistryNamesUniqueAndStable(t *testing.T) {
	ids := map[string]bool{}
	names := map[string]bool{}
	for _, e := range Experiments() {
		if ids[e.ID] || names[e.Name] {
			t.Fatalf("duplicate registry entry %s/%s", e.ID, e.Name)
		}
		ids[e.ID] = true
		names[e.Name] = true
		def := e.Make(QuickParams())
		if def.Name != e.Name {
			t.Errorf("%s: def name %q != registry name %q (seed streams would drift)", e.ID, def.Name, e.Name)
		}
		if len(def.Cells) == 0 {
			t.Errorf("%s has no cells", e.ID)
		}
		if len(def.Table.Rows) != 0 {
			t.Errorf("%s skeleton already has rows", e.ID)
		}
		if !strings.Contains(def.Table.Title, "") && def.Table.Title == "" {
			t.Errorf("%s has no title", e.ID)
		}
	}
}
