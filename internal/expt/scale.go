package expt

import (
	"fmt"
	"runtime"
	"sync"

	"tapestry/internal/core"
	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/stats"
	"tapestry/internal/workload"
)

// scaleChurnDef (E-scale) is the substrate-scale churn scenario: a
// transit-stub network of tens of thousands of points — representable only
// because graph metrics above metric.DenseLimit are computed on demand
// instead of materialising an n×n matrix — hosting an overlay that is grown
// statically, then driven through epochs of Poisson join/leave/crash churn
// with a Zipf query mix measured after each epoch. Per epoch it reports the
// live population, the churn applied, and availability / mean hops / mean
// stretch over the query mix.
//
// Two cells (quarter scale and full scale) so the runner's shared pool has
// something to overlap; each cell is fully deterministic: churn and repair
// run serially, and the query phase — though it fans out across an internal
// worker pool, exercising the lock-free netsim hot path — only ever reads
// mesh state (the mesh is swept and republished first), with per-query
// results merged in query order. Output is therefore byte-identical for any
// -workers value.
func scaleChurnDef(points, nodes, epochs, queries int) Def {
	d := Def{
		Name: "ScaleChurn",
		Table: Table{
			Title: "E-scale: churn at substrate scale (transit-stub, on-demand metric)",
			Note:  "per-epoch availability/hops/stretch under Poisson join/leave/crash churn",
			Header: []string{"points", "epoch", "live", "joins", "leaves", "crashes",
				"objects", "avail", "mean hops", "mean stretch"},
		},
	}
	type cellParams struct{ points, nodes, queries int }
	cells := []cellParams{
		{points / 4, nodes / 4, queries / 2},
		{points, nodes, queries},
	}
	for _, cp := range cells {
		cp := cp
		d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("points=%d", cp.points), Run: func(seed int64, t *Table) {
			runScaleCell(seed, t, cp.points, cp.nodes, epochs, cp.queries)
		}})
	}
	return d
}

// ScaleChurn (E-scale) — serial wrapper over scaleChurnDef.
func ScaleChurn(points, nodes, epochs, queries int, seed int64) Table {
	return scaleChurnDef(points, nodes, epochs, queries).Run(seed, 1)
}

func runScaleCell(seed int64, t *Table, points, baseNodes, epochs, queries int) {
	rng := subRNG(seed, "topology")
	space := metric.NewTransitStub(metric.ScaledTransitStub(points), rng)
	labels := metric.Regions(space)

	// Overlay hosts live on stub points only; the shuffled order doubles as
	// the join queue for churn arrivals.
	var hosts []netsim.Addr
	for a := 0; a < space.Size(); a++ {
		if labels[a] >= 0 {
			hosts = append(hosts, netsim.Addr(a))
		}
	}
	if baseNodes > len(hosts)/2 {
		baseNodes = len(hosts) / 2
	}
	if baseNodes < 8 {
		baseNodes = 8
	}
	rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })

	// Size the on-demand row cache to the overlay working set: every live
	// node is a message source, churn adds more over time.
	if gs, ok := space.(*metric.GraphSpace); ok {
		gs.SetRowCacheCap(baseNodes + baseNodes/2 + 64)
	}

	net := netsim.New(space)
	cfg := defaultTapConfig()
	// One maintenance pass per epoch must fully retire pointers to departed
	// servers (see the determinism note on scaleChurnDef).
	cfg.PointerTTL = 1
	brng := subRNG(seed, "build")
	parts := core.StaticParticipants(cfg.Spec, hosts[:baseNodes], brng)
	m, err := core.BuildStatic(net, cfg, parts)
	if err != nil {
		panic(err)
	}
	nextHost := baseNodes

	// Publish the base object population from random servers. Objects whose
	// server later leaves or crashes are simply lost (one replica each), so
	// availability genuinely decays with churn until joins replenish the mix.
	wrng := subRNG(seed, "workload")
	var objects []ids.ID
	publishFrom := func(n *core.Node, tag string) {
		guid := cfg.Spec.Hash(fmt.Sprintf("scale-%s", tag))
		if err := n.Publish(guid, nil); err != nil {
			panic(err)
		}
		objects = append(objects, guid)
	}
	live := m.Nodes()
	for i := 0; i < baseNodes/2; i++ {
		publishFrom(live[wrng.Intn(len(live))], fmt.Sprintf("base-%d", i))
	}

	crng := subRNG(seed, "churn")
	joinMean := float64(baseNodes) / 48
	sched := workload.PoissonChurn(epochs, baseNodes, baseNodes/2,
		joinMean, joinMean/3, joinMean/3, crng)

	joinSeq := 0
	for epoch := 0; epoch < epochs; epoch++ {
		joins, leaves, crashes := 0, 0, 0
		for _, op := range sched[epoch] {
			switch {
			case op.Join:
				if nextHost >= len(hosts) {
					continue
				}
				nodes := m.Nodes()
				gw := nodes[crng.Intn(len(nodes))]
				id := cfg.Spec.Random(crng)
				for m.NodeByID(id) != nil {
					id = cfg.Spec.Random(crng)
				}
				n, _, err := m.Join(gw, id, hosts[nextHost])
				if err != nil {
					panic(err)
				}
				nextHost++
				joins++
				joinSeq++
				publishFrom(n, fmt.Sprintf("join-%d", joinSeq))
			default:
				nodes := m.Nodes()
				if len(nodes) <= baseNodes/2 {
					continue // execution-time population floor
				}
				victim := nodes[op.Victim%len(nodes)]
				if op.Crash {
					m.Fail(victim)
					crashes++
				} else {
					if err := victim.Leave(nil); err != nil {
						panic(err)
					}
					leaves++
				}
			}
		}

		// Deterministic stabilisation: drop dead links, then expire every
		// stale pointer (TTL 1 retires anything not re-deposited this epoch)
		// and republish from the live servers. After this the query phase
		// cannot observe (or repair) stale state, which is what makes its
		// internal concurrency output-deterministic.
		for _, n := range m.Nodes() {
			n.SweepDead(nil)
		}
		m.RunMaintenanceEpoch(nil)

		nodes := m.Nodes()
		mix := workload.ZipfQueries(queries, len(nodes), len(objects), 1.2, wrng)
		type qres struct {
			found   bool
			hops    int
			stretch float64
		}
		results := make([]qres, queries)
		workers := runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for q := w; q < queries; q += workers {
					client := nodes[mix.Clients[q]]
					var cost netsim.Cost
					res := client.Locate(objects[mix.Objects[q]], &cost)
					if !res.Found {
						continue
					}
					r := qres{found: true, hops: res.Hops}
					if direct := space.Distance(int(client.Addr()), int(res.ServerAddr)); direct > 0 {
						r.stretch = cost.Distance() / direct
					}
					results[q] = r
				}
			}(w)
		}
		wg.Wait()

		var avail stats.Ratio
		var hops, stretch stats.Summary
		for _, r := range results {
			avail.Observe(r.found)
			if !r.found {
				continue
			}
			hops.AddInt(r.hops)
			if r.stretch > 0 {
				stretch.Add(r.stretch)
			}
		}
		t.AddRow(space.Size(), epoch+1, len(nodes), joins, leaves, crashes,
			len(objects), avail.String(), hops.Mean(), stretch.Mean())
	}
}
