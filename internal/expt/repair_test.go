package expt

import (
	"testing"

	"tapestry/internal/core"
)

// TestRepairQualityAcceptance pins the E-repair bar: with the §4.2 engine,
// at least 95% of refilled holes must hold the oracle-closest candidate,
// every refillable hole must actually be refilled, and post-churn stretch
// must be no worse than the legacy scan's.
func TestRepairQualityAcceptance(t *testing.T) {
	p := QuickParams()
	var scanStretch, nearestStretch float64
	for _, seed := range []int64{3, 4, 5} {
		scan := runRepairScheme(core.RepairScan, p.RepairN, p.RepairKills, p.RepairQueries, seed)
		nearest := runRepairScheme(core.RepairNearest, p.RepairN, p.RepairKills, p.RepairQueries, seed)

		if nearest.Refilled == 0 {
			t.Fatalf("seed %d: no holes were refilled; the scenario is not exercising repair", seed)
		}
		if frac := nearest.MatchFrac(); frac < 0.95 {
			t.Fatalf("seed %d: nearest repair matched oracle on %.1f%% of refilled holes, want >= 95%%",
				seed, 100*frac)
		}
		if nearest.Refilled < nearest.Refillable {
			t.Fatalf("seed %d: nearest repair left %d of %d refillable holes empty",
				seed, nearest.Refillable-nearest.Refilled, nearest.Refillable)
		}
		scanStretch += scan.Stretch.Mean()
		nearestStretch += nearest.Stretch.Mean()
	}
	// Stretch is seed-noisy (different repairs shift individual query paths
	// both ways); "no worse than the legacy path" is a claim about the mean.
	if nearestStretch > scanStretch*1.01 {
		t.Fatalf("post-churn stretch regressed: nearest %.3f vs scan %.3f (3-seed sums)",
			nearestStretch, scanStretch)
	}
}
