package expt

import (
	"fmt"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/stats"
)

// continualOptimizationDef (E16) reproduces Section 6.4: after network-
// distance drift degrades the tables (simulated by demoting every primary),
// the refresh mechanisms restore locality — measured as query stretch before
// degradation, after, and after each tuning pass. A single cell: the stages
// are a causal chain over one mesh.
func continualOptimizationDef(n int) Def {
	d := Def{
		Name: "ContinualOptimization",
		Table: Table{
			Title:  "Continual optimization (§6.4): recovering locality after route drift",
			Header: []string{"stage", "P2 violations", "mean stretch", "locate success"},
		},
	}
	d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("n=%d", n), Run: func(seed int64, t *Table) {
		cfg := defaultTapConfig()
		env := buildTapestry(ringSpace(n), n, cfg, subSeed(seed, "build"), true)
		m := env.mesh

		guids := make([]ids.ID, 12)
		serverOf := make([]int, 12)
		for i := range guids {
			guids[i] = exptSpec.Hash(fmt.Sprintf("tune-%d", i))
			serverOf[i] = (i * 7) % len(env.nodes)
			if err := env.nodes[serverOf[i]].Publish(guids[i], nil); err != nil {
				panic(err)
			}
		}
		measure := func(stage string) {
			var str stats.Summary
			var ok stats.Ratio
			for i, g := range guids {
				srv := env.nodes[serverOf[i]]
				for q := 0; q < 8; q++ {
					client := env.nodes[(serverOf[i]+q*11+3)%len(env.nodes)]
					if client == srv {
						continue
					}
					var cost netsim.Cost
					res := client.Locate(g, &cost)
					ok.Observe(res.Found)
					if res.Found {
						if direct := env.net.Distance(client.Addr(), srv.Addr()); direct > 0 {
							str.Add(cost.Distance() / direct)
						}
					}
				}
			}
			t.AddRow(stage, len(m.AuditProperty2()), str.Mean(), ok.String())
		}

		measure("baseline")
		// Drift: demote every primary by inflating its recorded distance.
		for _, node := range env.nodes {
			node.DegradePrimariesForTest()
		}
		measure("after route drift")
		m.TuneEpoch(nil)
		measure("after TuneEpoch (reorder+gossip)")
		// The §4.2 engine refresh: re-run the nearest-neighbor search from
		// each node's current contacts, no multicast required.
		for _, node := range env.nodes {
			_ = node.RefineTable(nil)
		}
		for _, node := range env.nodes {
			node.OptimizeObjectPtrs(nil)
		}
		measure("after engine refine (§4.2 search)")
		for _, node := range env.nodes {
			_ = node.ReacquireTable(nil)
		}
		measure("after full reacquire")
	}})
	return d
}

// ContinualOptimization (E16) — serial wrapper over continualOptimizationDef.
func ContinualOptimization(n int, seed int64) Table {
	return continualOptimizationDef(n).Run(seed, 1)
}
