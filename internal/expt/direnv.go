package expt

import (
	"tapestry/internal/directory"
	"tapestry/internal/netsim"
)

// dirEnv wraps the centralized-directory baseline with the same client
// address layout as the Tapestry environment it is compared against.
type dirEnv struct {
	d     *directory.Directory
	addrs []netsim.Addr // addrs[i] is client i's location (aligned with tapEnv.nodes)
	net   *netsim.Network
}

// newDirEnvFor attaches the directory server at a free address of the
// tapestry environment's space and registers the same clients.
func newDirEnvFor(tap tapEnv) dirEnv {
	net := netsim.New(tap.net.Space())
	used := map[netsim.Addr]bool{}
	addrs := make([]netsim.Addr, len(tap.nodes))
	for i, n := range tap.nodes {
		addrs[i] = n.Addr()
		used[n.Addr()] = true
		net.Attach(n.Addr())
	}
	server := netsim.Addr(0)
	for a := 0; a < net.Size(); a++ {
		if !used[netsim.Addr(a)] {
			server = netsim.Addr(a)
			break
		}
	}
	return dirEnv{d: directory.New(net, server), addrs: addrs, net: net}
}

func (e dirEnv) publish(key string, replica netsim.Addr, cost *netsim.Cost) error {
	return e.d.Publish(key, replica, cost)
}

func (e dirEnv) locate(client netsim.Addr, key string, cost *netsim.Cost) directory.LocateResult {
	return e.d.Locate(client, key, cost)
}
