package expt

import (
	"fmt"

	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/overlay"
	"tapestry/internal/scenario"
	"tapestry/internal/workload"
)

// E-chaos: the adversarial scenario suite. Where E-faceoff applies
// independent Poisson churn and E-nines applies crash-only churn, this
// experiment replays the named scenario.Scenario timelines — correlated
// region blackouts, region-aligned partitions that heal, seeded link loss
// and duplication ramps, flash crowds with join stampedes — through the
// scenario.Driver against every selected overlay protocol, on the virtual
// clock. Each cell is one named scenario; every configuration inside it
// replays the identical seeded timeline, so the rows are a controlled
// comparison of how each protocol (and each Tapestry replication setting)
// degrades and recovers, phase by phase.
//
// Determinism: cells are serial inside; the driver draws every binding from
// labeled streams of the cell seed, so output is byte-identical for any
// -workers value (pinned by CI).

// chaosService matches the E-nines per-message receiver service time so the
// virtual-time regimes are comparable across the two experiments.
const chaosService = 0.0005

// chaosConfig is one column of the comparison: a registered overlay
// protocol plus, for Tapestry, the availability knobs. The r=1,k=1 /
// r=4,k=3 pair brackets the replication tier: the acceptance test pins that
// the replicated configuration buys strictly more availability under the
// healing-partition scenario.
type chaosConfig struct {
	label    string
	protocol string
	roots    int // salted roots r (Tapestry only)
	replicas int // replica servers k (Tapestry only)
}

// chaosConfigs resolves the protocol selection: nil/empty means every
// registered protocol (with both Tapestry replication settings), a
// non-empty list keeps only the named protocols.
func chaosConfigs(selected []string) []chaosConfig {
	all := []chaosConfig{
		{"tapestry r=1 k=1", "tapestry", 1, 1},
		{"tapestry r=4 k=3", "tapestry", 4, 3},
	}
	for _, b := range overlay.Builders() {
		if b.Name == "tapestry" {
			continue
		}
		all = append(all, chaosConfig{label: b.Name, protocol: b.Name})
	}
	if len(selected) == 0 {
		return all
	}
	want := make(map[string]bool, len(selected))
	for _, s := range selected {
		want[s] = true
	}
	var out []chaosConfig
	for _, c := range all {
		if want[c.protocol] {
			out = append(out, c)
		}
	}
	return out
}

// ValidateScenarios rejects unknown scenario names up front — a typo'd
// -chaos-scenario flag must not cost a suite run before panicking mid-cell.
func ValidateScenarios(names []string) error {
	for _, n := range names {
		if _, err := scenario.Named(n, scenario.DefaultSpec()); err != nil {
			return err
		}
	}
	return nil
}

// chaosRow is one (configuration, phase) aggregate, returned for the
// acceptance test.
type chaosRow struct {
	config, phase  string
	queries, found int
}

// runChaosCell replays one named scenario through every selected
// configuration and appends one row per (configuration, phase).
func runChaosCell(seed int64, t *Table, name string, n, objects, queries, stampede int, protocols []string) []chaosRow {
	// The join stampede plus a little headroom is the whole reserve demand:
	// restores rejoin at their original addresses, and the named suite has
	// no background Churn events.
	reserveN := stampede + 8
	// A transit-stub topology gives the scenarios their correlated geometry:
	// RegionBlackout kills a stub domain, Partition cuts region-aligned.
	space := metric.NewTransitStub(
		metric.ScaledTransitStub(4*(n+reserveN)), subRNG(seed, "topology"))
	all := pickAddrs(space, n+reserveN, subRNG(seed, "addrs"))
	base, reserve := all[:n], all[n:]
	place := workload.UniformPlacement(objects, 1, n, subRNG(seed, "place"))
	bseed := subSeed(seed, "build")
	spec := scenario.Spec{Queries: queries, Stampede: stampede}

	var rows []chaosRow
	for _, cc := range chaosConfigs(protocols) {
		ocfg := overlay.Config{Seed: bseed, Static: true}
		if cc.protocol == "tapestry" {
			tc := defaultTapConfig()
			tc.Seed = bseed
			tc.RootSetSize = cc.roots
			tc.Replicas = cc.replicas
			// Pointers must survive the few scenario Maintain passes:
			// the decay under study is fault loss, not TTL expiry.
			tc.PointerTTL = 4
			ocfg.Core = &tc
		}
		env := buildOverlay(cc.protocol, space, base, ocfg)
		for i := range place.Names {
			env.publish(place.Servers[i][0], place.Names[i])
		}

		// Setup ran in direct-call mode; the engine attaches now and the
		// whole scenario replays as one virtual-time run.
		e := netsim.NewEngine(subSeed(seed, "engine"))
		e.SetServiceTime(chaosService)
		env.proto.Net().AttachEngine(e)

		s, err := scenario.Named(name, spec)
		if err != nil {
			panic(fmt.Sprintf("chaos: %v", err))
		}
		drv, err := scenario.NewDriver(env.proto, env.nodes, scenario.Config{
			Seed:      subSeed(seed, "drive"),
			Mode:      scenario.EventDriven,
			Placement: place,
			Reserve:   reserve,
		})
		if err != nil {
			panic(fmt.Sprintf("chaos: %s: %v", cc.label, err))
		}
		reports, err := drv.Run(s)
		if err != nil {
			panic(fmt.Sprintf("chaos: %s replay %s: %v", cc.label, name, err))
		}
		// The named scenarios end with faults cleared, but guarantee it:
		// a leftover mask must not leak into a later experiment sharing the
		// process (they don't share networks, but cheap insurance is cheap).
		env.proto.Net().ClearFaults()

		for _, r := range reports {
			t.AddRow(n, name, cc.label, r.Phase, r.Live,
				r.Joins+r.Restores, r.Leaves+r.Crashes, r.Declined, r.Failed,
				fmt.Sprintf("%d/%d", r.Found, r.Queries),
				r.MeanHops, r.MeanStretch, r.MaintainMsgs,
				r.Blocked, r.Lost, r.Duplicated)
			rows = append(rows, chaosRow{
				config: cc.label, phase: r.Phase,
				queries: r.Queries, found: r.Found,
			})
		}
	}
	return rows
}

// chaosDef (E-chaos) replays the named scenario suite across the overlay
// registry. One cell per scenario: the configurations of a cell must share
// one derived seed (identical timeline), so the configuration loop is
// serial inside it.
func chaosDef(n, objects, queries, stampede int, scenarios, protocols []string) Def {
	if len(scenarios) == 0 {
		scenarios = scenario.Names()
	}
	d := Def{
		Name: "Chaos",
		Table: Table{
			Title: "E-chaos: named adversarial scenarios (blackout, partition, lossy links, flash crowd) across overlay protocols",
			Note: "each cell replays one seeded scenario.Driver timeline identically per configuration; " +
				"caps-gated (declined = operations the protocol refuses honestly, failed = errored under fire); " +
				"located = found/issued per phase; blocked/lost/dup = netsim fault verdicts in the phase window",
			Header: []string{"n", "scenario", "config", "phase", "live", "joins", "down",
				"declined", "failed", "located", "hops", "stretch", "maint msgs",
				"blocked", "lost", "dup"},
		},
	}
	for _, name := range scenarios {
		name := name
		d.Cells = append(d.Cells, Cell{Label: name, Run: func(seed int64, t *Table) {
			runChaosCell(seed, t, name, n, objects, queries, stampede, protocols)
		}})
	}
	return d
}

// Chaos (E-chaos) — serial wrapper over chaosDef.
func Chaos(n, objects, queries, stampede int, scenarios, protocols []string, seed int64) Table {
	return chaosDef(n, objects, queries, stampede, scenarios, protocols).Run(seed, 1)
}
