package expt

import (
	"fmt"
	"math/rand"
	"sort"

	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/overlay"
	"tapestry/internal/stats"
	"tapestry/internal/workload"
)

// E-faceoff: every protocol, one workload. The paper's argument is
// comparative, so this is the experiment the unified overlay interface
// exists for: all registered protocols are driven through an IDENTICALLY
// SEEDED scenario — same addresses, same object placement, same Poisson
// churn schedule, same per-epoch Zipf query storms — and each applies
// exactly the slice of it its capability set supports (declined operations
// are counted, never faked). Per protocol it reports the churn applied,
// availability, mean hops, mean stretch (distance traveled over the direct
// client→replica distance) and the query-phase load concentration across
// members (max/mean and p99 of messages delivered per node).
//
// Expected shape: Tapestry rides out full churn with soft-state republish
// and keeps both stretch and load low; Chord survives churn structurally but
// loses references stored at crashed owners (no republish) and pays
// locality-blind stretch; CAN joins only; Pastry is a static snapshot;
// the directory is hop-optimal with catastrophic load concentration.
//
// Determinism: each cell is strictly serial and every per-protocol stream is
// re-derived from the same labeled sub-seeds, so output is byte-identical
// for any -workers value (pinned by CI).

// ValidateProtocols rejects unknown protocol names up front — a typo'd
// -protocol flag must not cost a full suite run before panicking mid-cell.
func ValidateProtocols(names []string) error {
	for _, n := range names {
		if _, err := overlay.Lookup(n); err != nil {
			return err
		}
	}
	return nil
}

// faceoffProtocols resolves the protocol selection: nil/empty means every
// registered protocol, in registry order.
func faceoffProtocols(selected []string) []string {
	if len(selected) == 0 {
		out := make([]string, 0, len(overlay.Builders()))
		for _, b := range overlay.Builders() {
			out = append(out, b.Name)
		}
		return out
	}
	return selected
}

// runFaceoffCell drives every selected protocol through the shared scenario
// and appends one row per protocol.
func runFaceoffCell(seed int64, t *Table, n, objects, epochs, queries int, protocols []string) {
	joinMean := float64(n) / 20
	reserveCount := epochs*int(joinMean)*3 + 16
	space := metric.NewRing(4 * (n + reserveCount))
	arng := rand.New(rand.NewSource(subSeed(seed, "addrs")))
	all := pickAddrs(space, n+reserveCount, arng)
	base, reserve := all[:n], all[n:]

	place := workload.UniformPlacement(objects, 1, n, subRNG(seed, "place"))
	isServer := make(map[int]bool, objects)
	for i := range place.Servers {
		isServer[place.Servers[i][0]] = true
	}
	sched := workload.PoissonChurn(epochs, n, n/2, joinMean, joinMean/3, joinMean/3,
		subRNG(seed, "churn"))
	bseed := subSeed(seed, "build")

	for _, name := range protocols {
		env := buildOverlay(name, space, base, overlay.Config{Seed: bseed, Static: true})
		caps := env.proto.Caps()
		net := env.proto.Net()
		net.EnableLoadTracking()
		for i := range place.Names {
			env.publish(place.Servers[i][0], place.Names[i])
		}

		departed := make([]bool, n)
		// pickVictim maps the schedule's victim draw onto the base
		// population, skipping replica servers (their departure would measure
		// replica loss, not routing health) and already-departed members —
		// the same mapping for every protocol, so leave-capable protocols
		// remove identical victims.
		pickVictim := func(v int) (int, bool) {
			idx := v % n
			for k := 0; k < n; k++ {
				j := (idx + k) % n
				if !departed[j] && !isServer[j] {
					return j, true
				}
			}
			return 0, false
		}

		joins, leaves, crashes, declined := 0, 0, 0, 0
		nextReserve := 0
		var avail stats.Ratio
		var hops, stretch stats.Summary
		load := map[netsim.Addr]int64{}

		for epoch := 0; epoch < epochs; epoch++ {
			for _, op := range sched[epoch] {
				switch {
				case op.Join:
					if !caps.Has(overlay.CapJoin) {
						declined++
						continue
					}
					if nextReserve >= len(reserve) {
						continue
					}
					if _, _, err := env.proto.Join(reserve[nextReserve]); err != nil {
						panic(fmt.Sprintf("faceoff: %s join: %v", name, err))
					}
					nextReserve++
					joins++
				case op.Crash:
					if !caps.Has(overlay.CapFail) {
						declined++
						continue
					}
					j, ok := pickVictim(op.Victim)
					if !ok {
						continue
					}
					if err := env.proto.Fail(env.nodes[j]); err != nil {
						panic(fmt.Sprintf("faceoff: %s fail: %v", name, err))
					}
					departed[j] = true
					crashes++
				default:
					if !caps.Has(overlay.CapLeave) {
						declined++
						continue
					}
					j, ok := pickVictim(op.Victim)
					if !ok {
						continue
					}
					if _, err := env.proto.Leave(env.nodes[j]); err != nil {
						panic(fmt.Sprintf("faceoff: %s leave: %v", name, err))
					}
					departed[j] = true
					leaves++
				}
			}
			if caps.Has(overlay.CapMaintain) {
				if _, err := env.proto.Maintain(); err != nil {
					panic(fmt.Sprintf("faceoff: %s maintain: %v", name, err))
				}
			}

			// The Zipf storm. The stream is re-derived from (seed, epoch) for
			// every protocol, so each sees the same draws; clients come from
			// the adapter's own live-member list (insertion order, so
			// deterministic), and load is measured as the query phase's delta
			// in per-node deliveries.
			members := env.proto.Handles()
			qrng := rand.New(rand.NewSource(stats.StreamSeed(seed, "queries", epoch)))
			mix := workload.ZipfQueries(queries, len(members), objects, 1.2, qrng)
			tracked := make([]netsim.Addr, 0, len(members)+1)
			for _, h := range members {
				tracked = append(tracked, h.Addr())
			}
			if server, ok := overlay.DirectoryServer(env.proto); ok {
				tracked = append(tracked, server)
			}
			before := make(map[netsim.Addr]int64, len(tracked))
			for _, a := range tracked {
				before[a] = net.LoadAt(a)
			}
			for q := range mix.Clients {
				client := members[mix.Clients[q]]
				oi := mix.Objects[q]
				res, cost := env.proto.Locate(client, place.Names[oi])
				avail.Observe(res.Found)
				if !res.Found {
					continue
				}
				hops.AddInt(res.Hops)
				server := base[place.Servers[oi][0]]
				if direct := space.Distance(int(client.Addr()), int(server)); direct > 0 {
					stretch.Add(cost.Distance() / direct)
				}
			}
			for _, a := range tracked {
				load[a] += net.LoadAt(a) - before[a]
			}
		}

		// Summaries iterate addresses in sorted order: float accumulation
		// order is part of the byte-identical-output contract.
		addrs := make([]int, 0, len(load))
		for a := range load {
			addrs = append(addrs, int(a))
		}
		sort.Ints(addrs)
		var loadS stats.Summary
		for _, a := range addrs {
			loadS.AddInt(int(load[netsim.Addr(a)]))
		}
		maxMean := 0.0
		if loadS.N() > 0 && loadS.Mean() > 0 {
			maxMean = loadS.Max() / loadS.Mean()
		}
		t.AddRow(n, name, caps.String(), joins, leaves, crashes, declined,
			avail.String(), hops.Mean(), stretch.Mean(), maxMean, loadS.Quantile(0.99))
	}
}

// faceoffDef (E-faceoff) runs the cross-protocol scenario at half and full
// scale. One cell per scale: the protocols of a cell must share one derived
// seed (identical scenario), so the protocol loop is serial inside the cell.
func faceoffDef(n, objects, epochs, queries int, protocols []string) Def {
	d := Def{
		Name: "Faceoff",
		Table: Table{
			Title: "E-faceoff: identically-seeded churn + Zipf storm across all overlay protocols",
			Note: "caps-gated: each protocol applies the slice of the shared churn schedule it supports " +
				"(declined = operations refused honestly); zipf s=1.2, load = query-phase msgs delivered per member",
			Header: []string{"n", "protocol", "caps", "joins", "leaves", "crashes", "declined",
				"avail", "mean hops", "mean stretch", "load max/mean", "load p99"},
		},
	}
	selected := faceoffProtocols(protocols)
	type cellParams struct{ n, objects, queries int }
	cells := []cellParams{
		{n / 2, objects / 2, queries / 2},
		{n, objects, queries},
	}
	for _, cp := range cells {
		cp := cp
		d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("n=%d", cp.n), Run: func(seed int64, t *Table) {
			runFaceoffCell(seed, t, cp.n, cp.objects, epochs, cp.queries, selected)
		}})
	}
	return d
}

// Faceoff (E-faceoff) — serial wrapper over faceoffDef. protocols nil means
// every registered protocol.
func Faceoff(n, objects, epochs, queries int, protocols []string, seed int64) Table {
	return faceoffDef(n, objects, epochs, queries, protocols).Run(seed, 1)
}
