package expt

import "testing"

// TestNinesReplicationBuysNines pins the PR's headline acceptance claim: under
// an identically seeded crash schedule, the full availability tier (r=4
// salted roots, k=3 replicas) yields strictly more nines of query success
// than the unreplicated baseline (r=1, k=1).
func TestNinesReplicationBuysNines(t *testing.T) {
	const n, objects, epochs, queries = 96, 32, 2, 256
	var tbl Table
	rows := runNinesCell(13, &tbl, n, objects, epochs, queries)

	byConfig := map[string]ninesRow{}
	for _, r := range rows {
		byConfig[r.config] = r
	}
	lo, ok := byConfig["tapestry r=1 k=1"]
	if !ok {
		t.Fatalf("baseline config missing from rows: %v", rows)
	}
	hi, ok := byConfig["tapestry r=4 k=3"]
	if !ok {
		t.Fatalf("replicated config missing from rows: %v", rows)
	}
	if lo.crashes == 0 {
		t.Fatalf("no crashes applied — the scenario exercises nothing")
	}
	if hi.crashes != lo.crashes {
		t.Fatalf("configs saw different churn: %d vs %d crashes (shared-scenario contract broken)",
			hi.crashes, lo.crashes)
	}
	if lo.total != epochs*queries || hi.total != epochs*queries {
		t.Fatalf("query counts %d/%d, want %d", lo.total, hi.total, epochs*queries)
	}
	if hi.nines <= lo.nines {
		t.Fatalf("r=4,k=3 yields %.3f nines vs %.3f at r=1,k=1 — replication bought nothing:\n%s",
			hi.nines, lo.nines, tbl.String())
	}
}

// TestNinesTwinReplay pins E-nines determinism: two same-seed runs are
// byte-identical (the workers knob never reaches inside the single cell, so
// this plus the runner's cell-order merge is the -workers invariance).
func TestNinesTwinReplay(t *testing.T) {
	run := func() string { return ninesDef(96, 32, 2, 128).Run(11, 1).String() }
	if a, b := run(), run(); a != b {
		t.Fatalf("E-nines twin runs diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestNinesOf pins the nines arithmetic, including the flawless-run
// resolution cap.
func TestNinesOf(t *testing.T) {
	if got := ninesOf(900, 1000); got < 0.99 || got > 1.01 {
		t.Errorf("ninesOf(900,1000) = %v, want ~1", got)
	}
	if got := ninesOf(1000, 1000); got != 3 {
		t.Errorf("ninesOf(1000,1000) = %v, want 3 (log10 cap)", got)
	}
	if got := ninesOf(0, 0); got != 0 {
		t.Errorf("ninesOf(0,0) = %v, want 0", got)
	}
}
