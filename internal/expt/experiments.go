package expt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"tapestry/internal/core"
	"tapestry/internal/genmetric"
	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/overlay"
	"tapestry/internal/stats"
	"tapestry/internal/workload"
)

// Every experiment below is expressed as a Def — a table skeleton plus
// independent cells — so the Runner can fan cells across workers. The
// exported functions (StretchVsDistance, Multicast, ...) are kept as serial
// wrappers over the same definitions: callers that want one table get
// exactly what the parallel engine produces for that experiment.

// stretchVsDistanceDef (E5) measures routing stretch — distance traveled
// over the distance to the nearest replica — bucketed by client-replica
// distance decile. This is the Table 1 "Stretch" column and the Section 2.2
// claim: Tapestry keeps stretch small especially for NEARBY objects (the
// query path intersects the publish path early), while Chord/Pastry pay the
// full trip to a random root regardless. A single cell: the decile buckets
// aggregate over all queries, so the table cannot be split.
func stretchVsDistanceDef(n, objects, queries int) Def {
	d := Def{
		Name: "StretchVsDistance",
		Table: Table{
			Title:  "Stretch vs. object distance (Table 1 Stretch column; Fig. 3 scenario)",
			Note:   "per-decile mean stretch; Tapestry should dominate at small distances",
			Header: []string{"distance decile", "tapestry", "chord", "pastry", "directory"},
		},
	}
	systems := []string{"tapestry", "chord", "pastry", "directory"}
	d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("n=%d", n), Run: func(seed int64, t *Table) {
		rng := subRNG(seed, "workload")
		bseed := subSeed(seed, "build")
		space := ringSpace(n)
		diameter := float64(space.Size()) / 2
		addrs := pickAddrs(space, n, rand.New(rand.NewSource(bseed)))

		place := workload.UniformPlacement(objects, 1, n, rng)
		mix := workload.UniformQueries(queries, n, objects, rng)

		// buckets[b][sys] is the per-decile stretch summary of one system.
		buckets := make([]map[string]*stats.Summary, 10)
		for b := range buckets {
			buckets[b] = make(map[string]*stats.Summary, len(systems))
			for _, sys := range systems {
				buckets[b][sys] = &stats.Summary{}
			}
		}
		for _, sys := range systems {
			env := buildOverlay(sys, space, addrs, overlay.Config{Seed: bseed, Static: true})
			for i := range place.Names {
				env.publish(place.Servers[i][0], place.Names[i])
			}
			for i := range mix.Clients {
				ci, oi := mix.Clients[i], mix.Objects[i]
				si := place.Servers[oi][0]
				if ci == si {
					continue
				}
				direct := space.Distance(int(addrs[ci]), int(addrs[si]))
				if direct == 0 {
					continue
				}
				b := int(direct / diameter * 10)
				if b > 9 {
					b = 9
				}
				if res, cost := env.locate(ci, place.Names[oi]); res.Found {
					buckets[b][sys].Add(cost.Distance() / direct)
				}
			}
		}
		for b := range buckets {
			if buckets[b]["tapestry"].N() == 0 {
				continue
			}
			t.AddRow(fmt.Sprintf("%d-%d%%", b*10, (b+1)*10), buckets[b]["tapestry"].Mean(),
				buckets[b]["chord"].Mean(), buckets[b]["pastry"].Mean(), buckets[b]["directory"].Mean())
		}
	}})
	return d
}

// StretchVsDistance (E5) — serial wrapper over stretchVsDistanceDef.
func StretchVsDistance(n, objects, queries int, seed int64) Table {
	return stretchVsDistanceDef(n, objects, queries).Run(seed, 1)
}

// surrogateOverheadDef (E6) measures the extra hops surrogate routing takes
// beyond resolving the digits that any node shares with the key — the
// Section 2.3 claim that the overhead "is independent of n and in
// expectation is less than 2". One cell per network size.
func surrogateOverheadDef(sizes []int, keys int) Def {
	d := Def{
		Name: "SurrogateOverhead",
		Table: Table{
			Title:  "Surrogate-routing overhead (§2.3: expected extra hops < 2, independent of n)",
			Header: []string{"n", "mean hops", "mean maxCPL(key)", "extra hops", "p99 extra"},
		},
	}
	for _, n := range sizes {
		n := n
		d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("n=%d", n), Run: func(seed int64, t *Table) {
			env := buildTapestry(ringSpace(n), n, defaultTapConfig(), subSeed(seed, "build"), false)
			rng := subRNG(seed, "keys")
			var extra, hopsS, cplS stats.Summary
			for k := 0; k < keys; k++ {
				key := exptSpec.Random(rng)
				start := env.nodes[rng.Intn(len(env.nodes))]
				_, hops, err := start.SurrogateFor(key, nil)
				if err != nil {
					panic(err)
				}
				// The digit-resolution floor: the best prefix match any node
				// has with this key — hops below that are "real", the rest
				// are surrogate detours.
				best := 0
				for _, node := range env.nodes {
					if c := ids.CommonPrefixLen(node.ID(), key); c > best {
						best = c
					}
				}
				hopsS.AddInt(hops)
				cplS.AddInt(best)
				e := float64(hops - best)
				if e < 0 {
					e = 0
				}
				extra.Add(e)
			}
			t.AddRow(n, hopsS.Mean(), cplS.Mean(), extra.Mean(), extra.Quantile(0.99))
		}})
	}
	return d
}

// SurrogateOverhead (E6) — serial wrapper over surrogateOverheadDef.
func SurrogateOverhead(sizes []int, keys int, seed int64) Table {
	return surrogateOverheadDef(sizes, keys).Run(seed, 1)
}

// nnCorrectnessDef (E7) sweeps the nearest-neighbor list width k (Section 3,
// Lemmas 1-2): for each k, grow a mesh dynamically and report the rate of
// Property 2 violations (slots not holding the R closest nodes) and any
// Property 1 violations. Theorem 3 predicts violations vanish as k reaches
// O(log n). One cell per k — the dynamic grow dominates, so the sweep
// parallelizes almost perfectly.
func nnCorrectnessDef(n int, ks []int) Def {
	d := Def{
		Name: "NNCorrectness",
		Table: Table{
			Title:  "Nearest-neighbor construction vs list width k (§3, Thm 3: exact w.h.p. at k=O(log n))",
			Header: []string{"k", "P2 violations", "links", "violation rate", "P1 violations"},
		},
	}
	for _, k := range ks {
		k := k
		d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("k=%d", k), Run: func(seed int64, t *Table) {
			cfg := defaultTapConfig()
			cfg.K = k
			env := buildTapestry(ringSpace(n), n, cfg, subSeed(seed, "build"), true)
			v2 := env.mesh.AuditProperty2()
			links := 0
			for _, node := range env.nodes {
				links += node.Table().NeighborCount()
			}
			v1 := env.mesh.AuditProperty1()
			rate := 0.0
			if links > 0 {
				rate = float64(len(v2)) / float64(links)
			}
			t.AddRow(k, len(v2), links, rate, len(v1))
		}})
	}
	return d
}

// NNCorrectness (E7) — serial wrapper over nnCorrectnessDef.
func NNCorrectness(n int, ks []int, seed int64) Table {
	return nnCorrectnessDef(n, ks).Run(seed, 1)
}

// multicastDef (E8) measures acknowledged multicast (§4.1, Thm 5): for each
// prefix length, the nodes reached, messages spent, and the messages-per-
// node ratio (Theorem 5's O(k) message bound). A single cell: the prefix
// sweep reuses one mesh, which costs more to build than all the trials.
func multicastDef(n int) Def {
	d := Def{
		Name: "Multicast",
		Table: Table{
			Title:  "Acknowledged multicast (§4.1, Thm 5: reaches all α-nodes in O(k) messages)",
			Header: []string{"prefix len", "trials", "mean reached", "mean msgs", "msgs/reached"},
		},
	}
	d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("n=%d", n), Run: func(seed int64, t *Table) {
		env := buildTapestry(ringSpace(n), n, defaultTapConfig(), subSeed(seed, "build"), false)
		rng := subRNG(seed, "trials")
		for plen := 0; plen <= 3; plen++ {
			var reached, msgs stats.Summary
			trials := 8
			for trial := 0; trial < trials; trial++ {
				start := env.nodes[rng.Intn(len(env.nodes))]
				var cost netsim.Cost
				got, err := start.AcknowledgedMulticast(start.ID().Prefix(plen), nil, &cost)
				if err != nil {
					panic(err)
				}
				reached.AddInt(len(got))
				msgs.AddInt(cost.Messages())
			}
			ratio := msgs.Mean() / math.Max(reached.Mean(), 1)
			t.AddRow(plen, trials, reached.Mean(), msgs.Mean(), ratio)
		}
	}})
	return d
}

// Multicast (E8) — serial wrapper over multicastDef.
func Multicast(n int, seed int64) Table {
	return multicastDef(n).Run(seed, 1)
}

// availabilityDuringJoinDef (E9) interleaves queries with node insertions
// (§4.3, Figure 10): every query must succeed at every point of the growth.
// Queries run between individual joins (a deterministic schedule, so the
// engine's byte-identical-output contract holds); availability under joins
// that are literally in flight is E10's territory.
func availabilityDuringJoinDef(n, joins int64) Def {
	d := Def{
		Name: "AvailabilityDuringJoin",
		Table: Table{
			Title:  "Availability during insertion (§4.3: objects remain available)",
			Header: []string{"n(base)", "joins", "queries", "failures", "success"},
		},
	}
	d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("n=%d joins=%d", n, joins), Run: func(seed int64, t *Table) {
		cfg := defaultTapConfig()
		rng := subRNG(seed, "grow")
		space := metric.NewRing(int(4 * (n + joins)))
		net := netsim.New(space)
		m, err := core.NewMesh(net, cfg)
		if err != nil {
			panic(err)
		}
		addrs := pickAddrs(space, int(n+joins), rng)
		base, _, err := m.GrowSequential(addrs[:n], rng)
		if err != nil {
			panic(err)
		}
		guids := make([]ids.ID, 8)
		for i := range guids {
			guids[i] = exptSpec.Hash(fmt.Sprintf("avail-%d", i))
			if err := base[i].Publish(guids[i], nil); err != nil {
				panic(err)
			}
		}
		var ratio stats.Ratio
		qrng := subRNG(seed, "queries")
		probe := func() {
			for q := 0; q < 4; q++ {
				c := base[qrng.Intn(len(base))]
				g := guids[qrng.Intn(len(guids))]
				ratio.Observe(c.Locate(g, nil).Found)
			}
		}
		for i := n; i < n+joins; i++ {
			if _, _, err := m.GrowSequential(addrs[i:i+1], rng); err != nil {
				panic(err)
			}
			probe()
		}
		t.AddRow(n, joins, ratio.Total, ratio.Total-ratio.Success, ratio.String())
	}})
	return d
}

// AvailabilityDuringJoin (E9) — serial wrapper over availabilityDuringJoinDef.
func AvailabilityDuringJoin(n, joins, seed int64) Table {
	return availabilityDuringJoinDef(n, joins).Run(seed, 1)
}

// parallelJoinDef (E10) inserts batches of nodes concurrently (§4.4, Thm 6)
// and audits Property 1 after each wave, while a query loop exercises the
// §4.3 claim on joins that are literally in flight: published objects must
// stay locatable throughout. Only the failure count is reported (expected
// 0), since the number of queries that fit inside a wave is scheduling-
// dependent. A single cell: waves are a causal chain over one mesh (the
// experiment's own concurrency is internal).
func parallelJoinDef(base, waves, batch int) Def {
	d := Def{
		Name: "ParallelJoin",
		Table: Table{
			Title:  "Simultaneous insertion (§4.4, Thm 6: no fillable holes after concurrent joins)",
			Header: []string{"wave", "n after", "P1 violations", "root divergences", "in-flight locate failures"},
		},
	}
	d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("base=%d", base), Run: func(seed int64, t *Table) {
		cfg := defaultTapConfig()
		rng := subRNG(seed, "join")
		total := base + waves*batch
		space := metric.NewRing(4 * total)
		net := netsim.New(space)
		m, err := core.NewMesh(net, cfg)
		if err != nil {
			panic(err)
		}
		addrs := pickAddrs(space, total, rng)
		nodes, _, err := m.GrowSequential(addrs[:base], rng)
		if err != nil {
			panic(err)
		}
		guids := make([]ids.ID, 6)
		for i := range guids {
			guids[i] = exptSpec.Hash(fmt.Sprintf("pj-%d", i))
			if err := nodes[i%len(nodes)].Publish(guids[i], nil); err != nil {
				panic(err)
			}
		}
		next := base
		for wave := 0; wave < waves; wave++ {
			var wg sync.WaitGroup
			errs := make([]error, batch)
			for i := 0; i < batch; i++ {
				gw := nodes[rng.Intn(len(nodes))]
				id := exptSpec.Random(rng)
				for m.NodeByID(id) != nil {
					id = exptSpec.Random(rng)
				}
				addr := addrs[next]
				next++
				wg.Add(1)
				go func(i int, gw *core.Node, id ids.ID, addr netsim.Addr) {
					defer wg.Done()
					_, _, errs[i] = m.Join(gw, id, addr)
				}(i, gw, id, addr)
			}
			// Availability during in-flight joins (§4.3): hammer Locate from
			// pre-wave nodes until every join of the wave has completed.
			stop := make(chan struct{})
			var qwg sync.WaitGroup
			qwg.Add(1)
			fails := 0
			go func() {
				defer qwg.Done()
				qrng := rand.New(rand.NewSource(stats.StreamSeed(seed, "inflight", wave)))
				for {
					select {
					case <-stop:
						return
					default:
					}
					c := nodes[qrng.Intn(len(nodes))]
					if !c.Locate(guids[qrng.Intn(len(guids))], nil).Found {
						fails++
					}
				}
			}()
			wg.Wait()
			close(stop)
			qwg.Wait()
			for _, err := range errs {
				if err != nil {
					panic(err)
				}
			}
			nodes = m.Nodes()
			v1 := m.AuditProperty1()
			keys := []ids.ID{exptSpec.Random(rng), exptSpec.Random(rng), exptSpec.Random(rng)}
			vr := m.AuditUniqueRoots(keys)
			t.AddRow(wave+1, m.Size(), len(v1), len(vr), fails)
		}
	}})
	return d
}

// ParallelJoin (E10) — serial wrapper over parallelJoinDef.
func ParallelJoin(base, waves, batch int, seed int64) Table {
	return parallelJoinDef(base, waves, batch).Run(seed, 1)
}

// deletionDef (E11) exercises Section 5: voluntary departures must preserve
// availability throughout; involuntary failures lose objects rooted at the
// corpse until a republish epoch restores them.
func deletionDef(n int) Def {
	d := Def{
		Name: "Deletion",
		Table: Table{
			Title:  "Node deletion (§5): availability across voluntary and involuntary departure",
			Header: []string{"phase", "live nodes", "locate success", "P1 violations"},
		},
	}
	d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("n=%d", n), Run: func(seed int64, t *Table) {
		cfg := defaultTapConfig()
		env := buildTapestry(ringSpace(n), n, cfg, subSeed(seed, "build"), true)
		m := env.mesh
		rng := subRNG(seed, "workload")
		guids := make([]ids.ID, 12)
		servers := map[string]bool{}
		for i := range guids {
			guids[i] = exptSpec.Hash(fmt.Sprintf("del-%d", i))
			s := env.nodes[rng.Intn(len(env.nodes))]
			if err := s.Publish(guids[i], nil); err != nil {
				panic(err)
			}
			servers[s.ID().String()] = true
		}
		measure := func(phase string) {
			var r stats.Ratio
			for _, g := range guids {
				for probe := 0; probe < 4; probe++ {
					nodes := m.Nodes()
					c := nodes[rng.Intn(len(nodes))]
					r.Observe(c.Locate(g, nil).Found)
				}
			}
			t.AddRow(phase, m.Size(), r.String(), len(m.AuditProperty1()))
		}
		measure("baseline")
		// Voluntary: a quarter of non-servers leave gracefully.
		left := 0
		for _, node := range m.Nodes() {
			if left >= n/4 {
				break
			}
			if servers[node.ID().String()] {
				continue
			}
			if err := node.Leave(nil); err == nil {
				left++
			}
		}
		measure(fmt.Sprintf("after %d voluntary leaves", left))
		// Involuntary: kill an eighth of non-servers without notice.
		killed := 0
		for _, node := range m.Nodes() {
			if killed >= n/8 {
				break
			}
			if servers[node.ID().String()] {
				continue
			}
			m.Fail(node)
			killed++
		}
		for _, node := range m.Nodes() {
			node.SweepDead(nil)
		}
		measure(fmt.Sprintf("after %d failures + sweep (pre-republish)", killed))
		m.RunMaintenanceEpoch(nil)
		measure("after republish epoch")
	}})
	return d
}

// Deletion (E11) — serial wrapper over deletionDef.
func Deletion(n int, seed int64) Table {
	return deletionDef(n).Run(seed, 1)
}

// optimizePointersDef (E12) perturbs the mesh with joins, runs the Section
// 4.2 pointer redistribution, and audits Property 4 before/after.
func optimizePointersDef(n, extraJoins int) Def {
	d := Def{
		Name: "OptimizePointers",
		Table: Table{
			Title:  "Object-pointer redistribution (§4.2, Property 4 audit)",
			Header: []string{"stage", "P4 violations", "locate success"},
		},
	}
	d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("n=%d", n), Run: func(seed int64, t *Table) {
		env := buildTapestry(ringSpace(n+extraJoins), n, defaultTapConfig(), subSeed(seed, "build"), true)
		m := env.mesh
		rng := subRNG(seed, "workload")
		guids := make([]ids.ID, 10)
		for i := range guids {
			guids[i] = exptSpec.Hash(fmt.Sprintf("opt-%d", i))
			if err := env.nodes[rng.Intn(len(env.nodes))].Publish(guids[i], nil); err != nil {
				panic(err)
			}
		}
		success := func() string {
			var r stats.Ratio
			for _, g := range guids {
				nodes := m.Nodes()
				for probe := 0; probe < 4; probe++ {
					r.Observe(nodes[rng.Intn(len(nodes))].Locate(g, nil).Found)
				}
			}
			return r.String()
		}
		t.AddRow("baseline", len(m.AuditProperty4()), success())
		// Perturb with joins.
		used := map[netsim.Addr]bool{}
		for _, node := range m.Nodes() {
			used[node.Addr()] = true
		}
		joined := 0
		for a := 0; a < m.Net().Size() && joined < extraJoins; a++ {
			if used[netsim.Addr(a)] {
				continue
			}
			id := exptSpec.Random(rng)
			for m.NodeByID(id) != nil {
				id = exptSpec.Random(rng)
			}
			gw := m.Nodes()[rng.Intn(m.Size())]
			if _, _, err := m.Join(gw, id, netsim.Addr(a)); err != nil {
				panic(err)
			}
			used[netsim.Addr(a)] = true
			joined++
		}
		t.AddRow(fmt.Sprintf("after %d joins", joined), len(m.AuditProperty4()), success())
		for _, node := range m.Nodes() {
			node.OptimizeObjectPtrs(nil)
		}
		t.AddRow("after OptimizeObjectPtrs", len(m.AuditProperty4()), success())
	}})
	return d
}

// OptimizePointers (E12) — serial wrapper over optimizePointersDef.
func OptimizePointers(n, extraJoins int, seed int64) Table {
	return optimizePointersDef(n, extraJoins).Run(seed, 1)
}

// stubLocalityDef (E13) reproduces the Section 6.3 experiment: on a transit-
// stub topology, local publication keeps intra-stub queries inside the stub
// and slashes their latency.
func stubLocalityDef() Def {
	d := Def{
		Name: "StubLocality",
		Table: Table{
			Title:  "Transit-stub locality optimization (§6.3: intra-stub queries never leave the stub)",
			Header: []string{"variant", "intra-stub queries", "stayed local", "mean latency", "mean stretch"},
		},
	}
	d.Cells = append(d.Cells, Cell{Label: "transit-stub", Run: func(seed int64, t *Table) {
		rng := subRNG(seed, "topology")
		p := metric.DefaultTransitStub()
		ts := metric.NewTransitStub(p, rng)
		net := netsim.New(ts)
		cfg := defaultTapConfig()
		m, err := core.NewMesh(net, cfg)
		if err != nil {
			panic(err)
		}
		labels := metric.Regions(ts)
		var addrs []netsim.Addr
		for a := 0; a < ts.Size(); a++ {
			if labels[a] >= 0 {
				addrs = append(addrs, netsim.Addr(a))
			}
		}
		nodes, _, err := m.GrowSequential(addrs, rng)
		if err != nil {
			panic(err)
		}
		byRegion := map[int][]*core.Node{}
		for _, n := range nodes {
			byRegion[labels[n.Addr()]] = append(byRegion[labels[n.Addr()]], n)
		}
		var regions []int
		for r, ms := range byRegion {
			if len(ms) >= 4 {
				regions = append(regions, r)
			}
		}
		sort.Ints(regions)

		run := func(local bool) (stayed, total int, lat, str stats.Summary) {
			for oi, r := range regions {
				members := byRegion[r]
				server := members[0]
				guid := exptSpec.Hash(fmt.Sprintf("stub-%v-%d-%d", local, seed, oi))
				if local {
					if err := server.PublishLocal(guid, nil); err != nil {
						panic(err)
					}
				} else {
					if err := server.Publish(guid, nil); err != nil {
						panic(err)
					}
				}
				for _, client := range members[1:] {
					var cost netsim.Cost
					var found bool
					var stayedLocal bool
					if local {
						res, loc := client.LocateLocal(guid, &cost)
						found, stayedLocal = res.Found, loc
					} else {
						res := client.Locate(guid, &cost)
						found = res.Found
						// A plain query "stayed local" only if it never paid a
						// wide-area link; detect via total distance below the
						// stub-internal bound.
						stayedLocal = cost.Distance() < p.StubUpWeight
					}
					if !found {
						panic("stub object not found")
					}
					total++
					if stayedLocal {
						stayed++
					}
					lat.Add(cost.Distance())
					direct := ts.Distance(int(client.Addr()), int(server.Addr()))
					if direct > 0 {
						str.Add(cost.Distance() / direct)
					}
				}
			}
			return
		}
		s1, t1, lat1, str1 := run(false)
		t.AddRow("plain publish/locate", t1, fmt.Sprintf("%d (%.0f%%)", s1, 100*float64(s1)/float64(t1)), lat1.Mean(), str1.Mean())
		s2, t2, lat2, str2 := run(true)
		t.AddRow("local-branch (§6.3)", t2, fmt.Sprintf("%d (%.0f%%)", s2, 100*float64(s2)/float64(t2)), lat2.Mean(), str2.Mean())
	}})
	return d
}

// StubLocality (E13) — serial wrapper over stubLocalityDef.
func StubLocality(seed int64) Table {
	return stubLocalityDef().Run(seed, 1)
}

// generalMetricDef (E14) evaluates the Section 7 scheme (PRR v.0 row of
// Table 1) on a non-growth-restricted random-graph metric: measured stretch
// percentiles against the log³n budget, and per-node space against log²n.
// One cell per size.
func generalMetricDef(sizes []int) Def {
	d := Def{
		Name: "GeneralMetric",
		Table: Table{
			Title:  "General-metric scheme (§7, Thm 7: polylog stretch, O(log² n) space/node)",
			Header: []string{"n", "stretch p50", "stretch p90", "stretch max", "log3(n)", "space/node", "log2^2(n)"},
		},
	}
	for _, n := range sizes {
		n := n
		d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("n=%d", n), Run: func(seed int64, t *Table) {
			rng := subRNG(seed, "workload")
			space := metric.NewRandomGraph(n, 3, 10, rng)
			cfg := genmetric.DefaultConfig()
			cfg.Seed = subSeed(seed, "build")
			d := genmetric.Build(space, cfg)
			var stretch stats.Summary
			for o := 0; o < 16; o++ {
				obj := fmt.Sprintf("gm-%d", o)
				server := rng.Intn(n)
				d.Publish(obj, server)
				for q := 0; q < 16; q++ {
					x := rng.Intn(n)
					if x == server {
						continue
					}
					res := d.Lookup(obj, x)
					if !res.Found {
						panic("genmetric lookup failed")
					}
					stretch.Add(res.Dist / space.Distance(x, server))
				}
			}
			var sp stats.Summary
			for _, s := range d.SpacePerNode() {
				sp.AddInt(s)
			}
			l := math.Log2(float64(n))
			t.AddRow(n, stretch.Median(), stretch.Quantile(0.9), stretch.Max(), l*l*l, sp.Mean(), l*l)
		}})
	}
	return d
}

// GeneralMetric (E14) — serial wrapper over generalMetricDef.
func GeneralMetric(sizes []int, seed int64) Table {
	return generalMetricDef(sizes).Run(seed, 1)
}

// multiRootDef (E15) measures Observation 1: with |R_ψ| salted roots,
// queries tolerate node failures by retrying other roots. We kill a fraction
// of nodes WITHOUT repair and compare success rates across root-set sizes.
// One cell per root-set size.
func multiRootDef(n int, rootSets []int, failFrac float64) Def {
	d := Def{
		Name: "MultiRoot",
		Table: Table{
			Title:  "Fault tolerance via multiple roots (Obs. 1): success under failures, no repair",
			Header: []string{"|R_psi|", "killed", "queries", "success"},
		},
	}
	for _, rs := range rootSets {
		rs := rs
		d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("roots=%d", rs), Run: func(seed int64, t *Table) {
			cfg := defaultTapConfig()
			cfg.RootSetSize = rs
			env := buildTapestry(ringSpace(n), n, cfg, subSeed(seed, "build"), true)
			m := env.mesh
			rng := subRNG(seed, "workload")
			guids := make([]ids.ID, 10)
			servers := map[string]bool{}
			for i := range guids {
				guids[i] = exptSpec.Hash(fmt.Sprintf("mr-%d-%d", rs, i))
				s := env.nodes[rng.Intn(len(env.nodes))]
				if err := s.Publish(guids[i], nil); err != nil {
					panic(err)
				}
				servers[s.ID().String()] = true
			}
			killed := 0
			want := int(failFrac * float64(n))
			for _, node := range m.Nodes() {
				if killed >= want {
					break
				}
				if servers[node.ID().String()] {
					continue
				}
				m.Fail(node)
				killed++
			}
			var r stats.Ratio
			for _, g := range guids {
				nodes := m.Nodes()
				for probe := 0; probe < 8; probe++ {
					c := nodes[rng.Intn(len(nodes))]
					r.Observe(c.Locate(g, nil).Found)
				}
			}
			t.AddRow(rs, killed, r.Total, r.String())
		}})
	}
	return d
}

// MultiRoot (E15) — serial wrapper over multiRootDef.
func MultiRoot(n int, rootSets []int, failFrac float64, seed int64) Table {
	return multiRootDef(n, rootSets, failFrac).Run(seed, 1)
}

// ablationSurrogateDef (A1) compares the two localized routing variants of
// §2.3. One cell per variant.
func ablationSurrogateDef(n int) Def {
	d := Def{
		Name: "AblationSurrogate",
		Table: Table{
			Title:  "Ablation: surrogate-routing variant (§2.3)",
			Header: []string{"variant", "mean lookup hops", "root-balance max/mean"},
		},
	}
	for _, sch := range []core.Scheme{core.SchemeNative, core.SchemePRRLike} {
		sch := sch
		d.Cells = append(d.Cells, Cell{Label: sch.String(), Run: func(seed int64, t *Table) {
			cfg := defaultTapConfig()
			cfg.Surrogate = sch
			env := buildTapestry(ringSpace(n), n, cfg, subSeed(seed, "build"), false)
			rng := subRNG(seed, "keys")
			var hops stats.Summary
			rootLoad := map[string]int{}
			for k := 0; k < 256; k++ {
				key := exptSpec.Random(rng)
				start := env.nodes[rng.Intn(len(env.nodes))]
				root, h, err := start.SurrogateFor(key, nil)
				if err != nil {
					panic(err)
				}
				hops.AddInt(h)
				rootLoad[root.ID().String()]++
			}
			bins := make([]int, 0, len(env.nodes))
			for _, node := range env.nodes {
				bins = append(bins, rootLoad[node.ID().String()])
			}
			t.AddRow(sch.String(), hops.Mean(), stats.LoadBalance(bins))
		}})
	}
	return d
}

// AblationSurrogate (A1) — serial wrapper over ablationSurrogateDef.
func AblationSurrogate(n int, seed int64) Table {
	return ablationSurrogateDef(n).Run(seed, 1)
}

// ablationRDef (A2) sweeps the neighbor-set capacity R (fault tolerance vs
// space). One cell per R.
func ablationRDef(n int, rs []int) Def {
	d := Def{
		Name: "AblationR",
		Table: Table{
			Title:  "Ablation: neighbor-set capacity R (space vs fault tolerance)",
			Header: []string{"R", "entries/node", "success after 10% failures (no repair)"},
		},
	}
	for _, r := range rs {
		r := r
		d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("R=%d", r), Run: func(seed int64, t *Table) {
			cfg := defaultTapConfig()
			cfg.R = r
			env := buildTapestry(ringSpace(n), n, cfg, subSeed(seed, "build"), false)
			m := env.mesh
			var sp stats.Summary
			for _, node := range env.nodes {
				sp.AddInt(node.Table().NeighborCount())
			}
			rng := subRNG(seed, "workload")
			guid := exptSpec.Hash(fmt.Sprintf("abr-%d", r))
			server := env.nodes[rng.Intn(len(env.nodes))]
			if err := server.Publish(guid, nil); err != nil {
				panic(err)
			}
			killed := 0
			for _, node := range m.Nodes() {
				if killed >= n/10 {
					break
				}
				if node.ID().Equal(server.ID()) {
					continue
				}
				m.Fail(node)
				killed++
			}
			var ratio stats.Ratio
			nodes := m.Nodes()
			for probe := 0; probe < 64; probe++ {
				ratio.Observe(nodes[rng.Intn(len(nodes))].Locate(guid, nil).Found)
			}
			t.AddRow(r, sp.Mean(), ratio.String())
		}})
	}
	return d
}

// AblationR (A2) — serial wrapper over ablationRDef.
func AblationR(n int, rs []int, seed int64) Table {
	return ablationRDef(n, rs).Run(seed, 1)
}

// ablationBaseDef (A3) sweeps the digit radix b: wider tables vs shorter
// paths. One cell per base.
func ablationBaseDef(n int, bases []int) Def {
	d := Def{
		Name: "AblationBase",
		Table: Table{
			Title:  "Ablation: digit base b (table width vs path length)",
			Header: []string{"b", "mean lookup hops", "entries/node"},
		},
	}
	for _, b := range bases {
		b := b
		d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("b=%d", b), Run: func(seed int64, t *Table) {
			cfg := defaultTapConfig()
			cfg.Spec = ids.Spec{Base: b, Digits: digitsFor(b)}
			env := buildTapestry(ringSpace(n), n, cfg, subSeed(seed, "build"), false)
			rng := subRNG(seed, "workload")
			guid := cfg.Spec.Hash("ab-base")
			if err := env.nodes[0].Publish(guid, nil); err != nil {
				panic(err)
			}
			var hops stats.Summary
			for q := 0; q < 256; q++ {
				res := env.nodes[rng.Intn(len(env.nodes))].Locate(guid, nil)
				if res.Found {
					hops.AddInt(res.Hops)
				}
			}
			var sp stats.Summary
			for _, node := range env.nodes {
				sp.AddInt(node.Table().NeighborCount())
			}
			t.AddRow(b, hops.Mean(), sp.Mean())
		}})
	}
	return d
}

// AblationBase (A3) — serial wrapper over ablationBaseDef.
func AblationBase(n int, bases []int, seed int64) Table {
	return ablationBaseDef(n, bases).Run(seed, 1)
}

// digitsFor keeps the namespace around 2^32 regardless of base.
func digitsFor(base int) int {
	d := int(math.Ceil(32 / math.Log2(float64(base))))
	if d < 2 {
		d = 2
	}
	return d
}

// metricExpansionDef (E0) reports the measured expansion constants of the
// spaces used across experiments, validating the b > c² precondition of
// Section 3 and showing where general metrics break it. One cell per space.
func metricExpansionDef() Def {
	d := Def{
		Name: "MetricExpansion",
		Table: Table{
			Title:  "Metric-space expansion constants (Eq. 1; Section 3 needs b > c²)",
			Header: []string{"space", "median c", "p90 c", "max c", "b=16 ok?"},
		},
	}
	spaces := []struct {
		label string
		make  func(rng *rand.Rand) metric.Space
	}{
		{"ring", func(*rand.Rand) metric.Space { return metric.NewRing(1024) }},
		{"torus", func(*rand.Rand) metric.Space { return metric.NewTorus2D(32) }},
		{"cloud", func(rng *rand.Rand) metric.Space { return metric.NewUniformCloud(512, rng) }},
		{"graph", func(rng *rand.Rand) metric.Space { return metric.NewRandomGraph(256, 3, 10, rng) }},
		{"transit-stub", func(rng *rand.Rand) metric.Space {
			return metric.NewTransitStub(metric.DefaultTransitStub(), rng)
		}},
	}
	for _, sp := range spaces {
		sp := sp
		d.Cells = append(d.Cells, Cell{Label: sp.label, Run: func(seed int64, t *Table) {
			s := sp.make(subRNG(seed, "space"))
			e := metric.EstimateExpansion(s, 24, 6)
			ok := "yes"
			if e.Median*e.Median >= 16 {
				ok = "no (b must grow)"
			}
			t.AddRow(s.Name(), e.Median, e.P90, e.Max, ok)
		}})
	}
	return d
}

// MetricExpansion (E0) — serial wrapper over metricExpansionDef.
func MetricExpansion(seed int64) Table {
	return metricExpansionDef().Run(seed, 1)
}
