package expt

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"tapestry/internal/core"
	"tapestry/internal/genmetric"
	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/stats"
	"tapestry/internal/workload"
)

// StretchVsDistance (E5) measures routing stretch — distance traveled over
// the distance to the nearest replica — bucketed by client-replica distance
// decile. This is the Table 1 "Stretch" column and the Section 2.2 claim:
// Tapestry keeps stretch small especially for NEARBY objects (the query path
// intersects the publish path early), while Chord/Pastry pay the full trip
// to a random root regardless.
func StretchVsDistance(n, objects, queries int, seed int64) Table {
	t := Table{
		Title:  "Stretch vs. object distance (Table 1 Stretch column; Fig. 3 scenario)",
		Note:   "per-decile mean stretch; Tapestry should dominate at small distances",
		Header: []string{"distance decile", "tapestry", "chord", "pastry", "directory"},
	}
	rng := rand.New(rand.NewSource(seed))
	space := ringSpace(n)
	diameter := float64(space.Size()) / 2

	tap := buildTapestry(space, n, defaultTapConfig(), seed, false)
	ch := buildChord(space, n, seed)
	pa := buildPastry(space, n, seed)
	dir := newDirEnvFor(tap)

	place := workload.UniformPlacement(objects, 1, n, rng)
	guids := publishTapestry(tap, place)
	chKeys := make([]uint64, objects)
	paKeys := pastryKeys(place.Names)
	for i := range place.Names {
		chKeys[i] = chordHashOf(place.Names[i], seed)
		_ = ch.nodes[place.Servers[i][0]].Publish(chKeys[i], nil)
		_ = pa.nodes[place.Servers[i][0]].Publish(paKeys[i], nil)
		_ = dir.publish(place.Names[i], dir.addrs[place.Servers[i][0]], nil)
	}

	type bucket struct{ tap, ch, pa, dir stats.Summary }
	buckets := make([]bucket, 10)
	mix := workload.UniformQueries(queries, n, objects, rng)
	for i := range mix.Clients {
		ci, oi := mix.Clients[i], mix.Objects[i]
		si := place.Servers[oi][0]
		if ci == si {
			continue
		}
		direct := tap.net.Distance(tap.nodes[ci].Addr(), tap.nodes[si].Addr())
		if direct == 0 {
			continue
		}
		b := int(direct / diameter * 10)
		if b > 9 {
			b = 9
		}
		var c1 netsim.Cost
		if res := tap.nodes[ci].Locate(guids[oi], &c1); res.Found {
			buckets[b].tap.Add(c1.Distance() / direct)
		}
		var c2 netsim.Cost
		if res := ch.nodes[ci].Locate(chKeys[oi], &c2); res.Found {
			buckets[b].ch.Add(c2.Distance() / direct)
		}
		var c3 netsim.Cost
		if res := pa.nodes[ci].Locate(paKeys[oi], &c3); res.Found {
			buckets[b].pa.Add(c3.Distance() / direct)
		}
		var c4 netsim.Cost
		if res := dir.locate(dir.addrs[ci], place.Names[oi], &c4); res.Found {
			buckets[b].dir.Add(c4.Distance() / direct)
		}
	}
	for b := range buckets {
		if buckets[b].tap.N() == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("%d-%d%%", b*10, (b+1)*10),
			buckets[b].tap.Mean(), buckets[b].ch.Mean(), buckets[b].pa.Mean(), buckets[b].dir.Mean())
	}
	return t
}

// SurrogateOverhead (E6) measures the extra hops surrogate routing takes
// beyond resolving the digits that any node shares with the key — the
// Section 2.3 claim that the overhead "is independent of n and in
// expectation is less than 2".
func SurrogateOverhead(sizes []int, keys int, seed int64) Table {
	t := Table{
		Title:  "Surrogate-routing overhead (§2.3: expected extra hops < 2, independent of n)",
		Header: []string{"n", "mean hops", "mean maxCPL(key)", "extra hops", "p99 extra"},
	}
	for _, n := range sizes {
		env := buildTapestry(ringSpace(n), n, defaultTapConfig(), seed, false)
		rng := rand.New(rand.NewSource(seed + 7))
		var extra, hopsS, cplS stats.Summary
		for k := 0; k < keys; k++ {
			key := exptSpec.Random(rng)
			start := env.nodes[rng.Intn(len(env.nodes))]
			_, hops, err := start.SurrogateFor(key, nil)
			if err != nil {
				panic(err)
			}
			// The digit-resolution floor: the best prefix match any node has
			// with this key — hops below that are "real", the rest are
			// surrogate detours.
			best := 0
			for _, node := range env.nodes {
				if c := ids.CommonPrefixLen(node.ID(), key); c > best {
					best = c
				}
			}
			hopsS.AddInt(hops)
			cplS.AddInt(best)
			e := float64(hops - best)
			if e < 0 {
				e = 0
			}
			extra.Add(e)
		}
		t.AddRow(n, hopsS.Mean(), cplS.Mean(), extra.Mean(), extra.Quantile(0.99))
	}
	return t
}

// NNCorrectness (E7) sweeps the nearest-neighbor list width k (Section 3,
// Lemmas 1-2): for each k, grow a mesh dynamically and report the rate of
// Property 2 violations (slots not holding the R closest nodes) and any
// Property 1 violations. Theorem 3 predicts violations vanish as k reaches
// O(log n).
func NNCorrectness(n int, ks []int, seed int64) Table {
	t := Table{
		Title:  "Nearest-neighbor construction vs list width k (§3, Thm 3: exact w.h.p. at k=O(log n))",
		Header: []string{"k", "P2 violations", "links", "violation rate", "P1 violations"},
	}
	for _, k := range ks {
		cfg := defaultTapConfig()
		cfg.K = k
		env := buildTapestry(ringSpace(n), n, cfg, seed, true)
		v2 := env.mesh.AuditProperty2()
		links := 0
		for _, node := range env.nodes {
			links += node.Table().NeighborCount()
		}
		v1 := env.mesh.AuditProperty1()
		rate := 0.0
		if links > 0 {
			rate = float64(len(v2)) / float64(links)
		}
		t.AddRow(k, len(v2), links, rate, len(v1))
	}
	return t
}

// Multicast (E8) measures acknowledged multicast (§4.1, Thm 5): for each
// prefix length, the nodes reached, messages spent, and the messages-per-
// node ratio (Theorem 5's O(k) message bound).
func Multicast(n int, seed int64) Table {
	t := Table{
		Title:  "Acknowledged multicast (§4.1, Thm 5: reaches all α-nodes in O(k) messages)",
		Header: []string{"prefix len", "trials", "mean reached", "mean msgs", "msgs/reached"},
	}
	env := buildTapestry(ringSpace(n), n, defaultTapConfig(), seed, false)
	rng := rand.New(rand.NewSource(seed + 13))
	for plen := 0; plen <= 3; plen++ {
		var reached, msgs stats.Summary
		trials := 8
		for trial := 0; trial < trials; trial++ {
			start := env.nodes[rng.Intn(len(env.nodes))]
			var cost netsim.Cost
			got, err := start.AcknowledgedMulticast(start.ID().Prefix(plen), nil, &cost)
			if err != nil {
				panic(err)
			}
			reached.AddInt(len(got))
			msgs.AddInt(cost.Messages())
		}
		ratio := msgs.Mean() / math.Max(reached.Mean(), 1)
		t.AddRow(plen, trials, reached.Mean(), msgs.Mean(), ratio)
	}
	return t
}

// AvailabilityDuringJoin (E9) runs continuous queries while nodes join
// (§4.3, Figure 10): every query must succeed.
func AvailabilityDuringJoin(n, joins, seed int64) Table {
	t := Table{
		Title:  "Availability during insertion (§4.3: objects remain available)",
		Header: []string{"n(base)", "joins", "queries", "failures", "success"},
	}
	cfg := defaultTapConfig()
	rng := rand.New(rand.NewSource(seed))
	space := metric.NewRing(int(4 * (n + joins)))
	net := netsim.New(space)
	m, err := core.NewMesh(net, cfg)
	if err != nil {
		panic(err)
	}
	addrs := pickAddrs(space, int(n+joins), rng)
	base, _, err := m.GrowSequential(addrs[:n], rng)
	if err != nil {
		panic(err)
	}
	guids := make([]ids.ID, 8)
	for i := range guids {
		guids[i] = exptSpec.Hash(fmt.Sprintf("avail-%d", i))
		if err := base[i].Publish(guids[i], nil); err != nil {
			panic(err)
		}
	}
	var ratio stats.Ratio
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		qrng := rand.New(rand.NewSource(seed * 3))
		for {
			select {
			case <-stop:
				return
			default:
			}
			c := base[qrng.Intn(len(base))]
			g := guids[qrng.Intn(len(guids))]
			res := c.Locate(g, nil)
			mu.Lock()
			ratio.Observe(res.Found)
			mu.Unlock()
		}
	}()
	if _, _, err := m.GrowSequential(addrs[n:], rng); err != nil {
		panic(err)
	}
	close(stop)
	wg.Wait()
	t.AddRow(n, joins, ratio.Total, ratio.Total-ratio.Success, ratio.String())
	return t
}

// ParallelJoin (E10) inserts batches of nodes concurrently (§4.4, Thm 6) and
// audits Property 1 after each wave.
func ParallelJoin(base, waves, batch int, seed int64) Table {
	t := Table{
		Title:  "Simultaneous insertion (§4.4, Thm 6: no fillable holes after concurrent joins)",
		Header: []string{"wave", "n after", "P1 violations", "root divergences"},
	}
	cfg := defaultTapConfig()
	rng := rand.New(rand.NewSource(seed))
	total := base + waves*batch
	space := metric.NewRing(4 * total)
	net := netsim.New(space)
	m, err := core.NewMesh(net, cfg)
	if err != nil {
		panic(err)
	}
	addrs := pickAddrs(space, total, rng)
	nodes, _, err := m.GrowSequential(addrs[:base], rng)
	if err != nil {
		panic(err)
	}
	next := base
	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		errs := make([]error, batch)
		for i := 0; i < batch; i++ {
			gw := nodes[rng.Intn(len(nodes))]
			id := exptSpec.Random(rng)
			for m.NodeByID(id) != nil {
				id = exptSpec.Random(rng)
			}
			addr := addrs[next]
			next++
			wg.Add(1)
			go func(i int, gw *core.Node, id ids.ID, addr netsim.Addr) {
				defer wg.Done()
				_, _, errs[i] = m.Join(gw, id, addr)
			}(i, gw, id, addr)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				panic(err)
			}
		}
		nodes = m.Nodes()
		v1 := m.AuditProperty1()
		keys := []ids.ID{exptSpec.Random(rng), exptSpec.Random(rng), exptSpec.Random(rng)}
		vr := m.AuditUniqueRoots(keys)
		t.AddRow(wave+1, m.Size(), len(v1), len(vr))
	}
	return t
}

// Deletion (E11) exercises Section 5: voluntary departures must preserve
// availability throughout; involuntary failures lose objects rooted at the
// corpse until a republish epoch restores them.
func Deletion(n int, seed int64) Table {
	t := Table{
		Title:  "Node deletion (§5): availability across voluntary and involuntary departure",
		Header: []string{"phase", "live nodes", "locate success", "P1 violations"},
	}
	cfg := defaultTapConfig()
	env := buildTapestry(ringSpace(n), n, cfg, seed, true)
	m := env.mesh
	rng := rand.New(rand.NewSource(seed + 5))
	guids := make([]ids.ID, 12)
	servers := map[string]bool{}
	for i := range guids {
		guids[i] = exptSpec.Hash(fmt.Sprintf("del-%d", i))
		s := env.nodes[rng.Intn(len(env.nodes))]
		if err := s.Publish(guids[i], nil); err != nil {
			panic(err)
		}
		servers[s.ID().String()] = true
	}
	measure := func(phase string) {
		var r stats.Ratio
		for _, g := range guids {
			for probe := 0; probe < 4; probe++ {
				nodes := m.Nodes()
				c := nodes[rng.Intn(len(nodes))]
				r.Observe(c.Locate(g, nil).Found)
			}
		}
		t.AddRow(phase, m.Size(), r.String(), len(m.AuditProperty1()))
	}
	measure("baseline")
	// Voluntary: a quarter of non-servers leave gracefully.
	left := 0
	for _, node := range m.Nodes() {
		if left >= n/4 {
			break
		}
		if servers[node.ID().String()] {
			continue
		}
		if err := node.Leave(nil); err == nil {
			left++
		}
	}
	measure(fmt.Sprintf("after %d voluntary leaves", left))
	// Involuntary: kill an eighth of non-servers without notice.
	killed := 0
	for _, node := range m.Nodes() {
		if killed >= n/8 {
			break
		}
		if servers[node.ID().String()] {
			continue
		}
		m.Fail(node)
		killed++
	}
	for _, node := range m.Nodes() {
		node.SweepDead(nil)
	}
	measure(fmt.Sprintf("after %d failures + sweep (pre-republish)", killed))
	m.RunMaintenanceEpoch(nil)
	measure("after republish epoch")
	return t
}

// OptimizePointers (E12) perturbs the mesh with joins, runs the Section 4.2
// pointer redistribution, and audits Property 4 before/after.
func OptimizePointers(n, extraJoins int, seed int64) Table {
	t := Table{
		Title:  "Object-pointer redistribution (§4.2, Property 4 audit)",
		Header: []string{"stage", "P4 violations", "locate success"},
	}
	env := buildTapestry(ringSpace(n+extraJoins), n, defaultTapConfig(), seed, true)
	m := env.mesh
	rng := rand.New(rand.NewSource(seed + 21))
	guids := make([]ids.ID, 10)
	for i := range guids {
		guids[i] = exptSpec.Hash(fmt.Sprintf("opt-%d", i))
		if err := env.nodes[rng.Intn(len(env.nodes))].Publish(guids[i], nil); err != nil {
			panic(err)
		}
	}
	success := func() string {
		var r stats.Ratio
		for _, g := range guids {
			nodes := m.Nodes()
			for probe := 0; probe < 4; probe++ {
				r.Observe(nodes[rng.Intn(len(nodes))].Locate(g, nil).Found)
			}
		}
		return r.String()
	}
	t.AddRow("baseline", len(m.AuditProperty4()), success())
	// Perturb with joins.
	used := map[netsim.Addr]bool{}
	for _, node := range m.Nodes() {
		used[node.Addr()] = true
	}
	joined := 0
	for a := 0; a < m.Net().Size() && joined < extraJoins; a++ {
		if used[netsim.Addr(a)] {
			continue
		}
		id := exptSpec.Random(rng)
		for m.NodeByID(id) != nil {
			id = exptSpec.Random(rng)
		}
		gw := m.Nodes()[rng.Intn(m.Size())]
		if _, _, err := m.Join(gw, id, netsim.Addr(a)); err != nil {
			panic(err)
		}
		used[netsim.Addr(a)] = true
		joined++
	}
	t.AddRow(fmt.Sprintf("after %d joins", joined), len(m.AuditProperty4()), success())
	for _, node := range m.Nodes() {
		node.OptimizeObjectPtrs(nil)
	}
	t.AddRow("after OptimizeObjectPtrs", len(m.AuditProperty4()), success())
	return t
}

// StubLocality (E13) reproduces the Section 6.3 experiment: on a transit-
// stub topology, local publication keeps intra-stub queries inside the stub
// and slashes their latency.
func StubLocality(seed int64) Table {
	t := Table{
		Title:  "Transit-stub locality optimization (§6.3: intra-stub queries never leave the stub)",
		Header: []string{"variant", "intra-stub queries", "stayed local", "mean latency", "mean stretch"},
	}
	rng := rand.New(rand.NewSource(seed))
	p := metric.DefaultTransitStub()
	ts := metric.NewTransitStub(p, rng)
	net := netsim.New(ts)
	cfg := defaultTapConfig()
	m, err := core.NewMesh(net, cfg)
	if err != nil {
		panic(err)
	}
	var addrs []netsim.Addr
	for a := 0; a < ts.Size(); a++ {
		if ts.Region[a] >= 0 {
			addrs = append(addrs, netsim.Addr(a))
		}
	}
	nodes, _, err := m.GrowSequential(addrs, rng)
	if err != nil {
		panic(err)
	}
	byRegion := map[int][]*core.Node{}
	for _, n := range nodes {
		byRegion[ts.Region[n.Addr()]] = append(byRegion[ts.Region[n.Addr()]], n)
	}
	var regions []int
	for r, ms := range byRegion {
		if len(ms) >= 4 {
			regions = append(regions, r)
		}
	}
	sort.Ints(regions)

	run := func(local bool) (stayed, total int, lat, str stats.Summary) {
		for oi, r := range regions {
			members := byRegion[r]
			server := members[0]
			guid := exptSpec.Hash(fmt.Sprintf("stub-%v-%d-%d", local, seed, oi))
			if local {
				if err := server.PublishLocal(guid, nil); err != nil {
					panic(err)
				}
			} else {
				if err := server.Publish(guid, nil); err != nil {
					panic(err)
				}
			}
			for _, client := range members[1:] {
				var cost netsim.Cost
				var found bool
				var stayedLocal bool
				if local {
					res, loc := client.LocateLocal(guid, &cost)
					found, stayedLocal = res.Found, loc
				} else {
					res := client.Locate(guid, &cost)
					found = res.Found
					// A plain query "stayed local" only if it never paid a
					// wide-area link; detect via total distance below the
					// stub-internal bound.
					stayedLocal = cost.Distance() < p.StubUpWeight
				}
				if !found {
					panic("stub object not found")
				}
				total++
				if stayedLocal {
					stayed++
				}
				lat.Add(cost.Distance())
				direct := ts.Distance(int(client.Addr()), int(server.Addr()))
				if direct > 0 {
					str.Add(cost.Distance() / direct)
				}
			}
		}
		return
	}
	s1, t1, lat1, str1 := run(false)
	t.AddRow("plain publish/locate", t1, fmt.Sprintf("%d (%.0f%%)", s1, 100*float64(s1)/float64(t1)), lat1.Mean(), str1.Mean())
	s2, t2, lat2, str2 := run(true)
	t.AddRow("local-branch (§6.3)", t2, fmt.Sprintf("%d (%.0f%%)", s2, 100*float64(s2)/float64(t2)), lat2.Mean(), str2.Mean())
	return t
}

// GeneralMetric (E14) evaluates the Section 7 scheme (PRR v.0 row of
// Table 1) on a non-growth-restricted random-graph metric: measured stretch
// percentiles against the log³n budget, and per-node space against log²n.
func GeneralMetric(sizes []int, seed int64) Table {
	t := Table{
		Title:  "General-metric scheme (§7, Thm 7: polylog stretch, O(log² n) space/node)",
		Header: []string{"n", "stretch p50", "stretch p90", "stretch max", "log3(n)", "space/node", "log2^2(n)"},
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(seed))
		space := metric.NewRandomGraph(n, 3, 10, rng)
		cfg := genmetric.DefaultConfig()
		cfg.Seed = seed
		d := genmetric.Build(space, cfg)
		var stretch stats.Summary
		for o := 0; o < 16; o++ {
			obj := fmt.Sprintf("gm-%d", o)
			server := rng.Intn(n)
			d.Publish(obj, server)
			for q := 0; q < 16; q++ {
				x := rng.Intn(n)
				if x == server {
					continue
				}
				res := d.Lookup(obj, x)
				if !res.Found {
					panic("genmetric lookup failed")
				}
				stretch.Add(res.Dist / space.Distance(x, server))
			}
		}
		var sp stats.Summary
		for _, s := range d.SpacePerNode() {
			sp.AddInt(s)
		}
		l := math.Log2(float64(n))
		t.AddRow(n, stretch.Median(), stretch.Quantile(0.9), stretch.Max(), l*l*l, sp.Mean(), l*l)
	}
	return t
}

// MultiRoot (E15) measures Observation 1: with |R_ψ| salted roots, queries
// tolerate node failures by retrying other roots. We kill a fraction of
// nodes WITHOUT repair and compare success rates across root-set sizes.
func MultiRoot(n int, rootSets []int, failFrac float64, seed int64) Table {
	t := Table{
		Title:  "Fault tolerance via multiple roots (Obs. 1): success under failures, no repair",
		Header: []string{"|R_psi|", "killed", "queries", "success"},
	}
	for _, rs := range rootSets {
		cfg := defaultTapConfig()
		cfg.RootSetSize = rs
		env := buildTapestry(ringSpace(n), n, cfg, seed, true)
		m := env.mesh
		rng := rand.New(rand.NewSource(seed + 31))
		guids := make([]ids.ID, 10)
		servers := map[string]bool{}
		for i := range guids {
			guids[i] = exptSpec.Hash(fmt.Sprintf("mr-%d-%d", rs, i))
			s := env.nodes[rng.Intn(len(env.nodes))]
			if err := s.Publish(guids[i], nil); err != nil {
				panic(err)
			}
			servers[s.ID().String()] = true
		}
		killed := 0
		want := int(failFrac * float64(n))
		for _, node := range m.Nodes() {
			if killed >= want {
				break
			}
			if servers[node.ID().String()] {
				continue
			}
			m.Fail(node)
			killed++
		}
		var r stats.Ratio
		for _, g := range guids {
			nodes := m.Nodes()
			for probe := 0; probe < 8; probe++ {
				c := nodes[rng.Intn(len(nodes))]
				r.Observe(c.Locate(g, nil).Found)
			}
		}
		t.AddRow(rs, killed, r.Total, r.String())
	}
	return t
}

// AblationSurrogate compares the two localized routing variants of §2.3.
func AblationSurrogate(n int, seed int64) Table {
	t := Table{
		Title:  "Ablation: surrogate-routing variant (§2.3)",
		Header: []string{"variant", "mean lookup hops", "root-balance max/mean"},
	}
	for _, sch := range []core.Scheme{core.SchemeNative, core.SchemePRRLike} {
		cfg := defaultTapConfig()
		cfg.Surrogate = sch
		env := buildTapestry(ringSpace(n), n, cfg, seed, false)
		rng := rand.New(rand.NewSource(seed + 41))
		var hops stats.Summary
		rootLoad := map[string]int{}
		for k := 0; k < 256; k++ {
			key := exptSpec.Random(rng)
			start := env.nodes[rng.Intn(len(env.nodes))]
			root, h, err := start.SurrogateFor(key, nil)
			if err != nil {
				panic(err)
			}
			hops.AddInt(h)
			rootLoad[root.ID().String()]++
		}
		bins := make([]int, 0, len(env.nodes))
		for _, node := range env.nodes {
			bins = append(bins, rootLoad[node.ID().String()])
		}
		t.AddRow(sch.String(), hops.Mean(), stats.LoadBalance(bins))
	}
	return t
}

// AblationR sweeps the neighbor-set capacity R (fault tolerance vs space).
func AblationR(n int, rs []int, seed int64) Table {
	t := Table{
		Title:  "Ablation: neighbor-set capacity R (space vs fault tolerance)",
		Header: []string{"R", "entries/node", "success after 10% failures (no repair)"},
	}
	for _, r := range rs {
		cfg := defaultTapConfig()
		cfg.R = r
		env := buildTapestry(ringSpace(n), n, cfg, seed, false)
		m := env.mesh
		var sp stats.Summary
		for _, node := range env.nodes {
			sp.AddInt(node.Table().NeighborCount())
		}
		rng := rand.New(rand.NewSource(seed + 51))
		guid := exptSpec.Hash(fmt.Sprintf("abr-%d", r))
		server := env.nodes[rng.Intn(len(env.nodes))]
		if err := server.Publish(guid, nil); err != nil {
			panic(err)
		}
		killed := 0
		for _, node := range m.Nodes() {
			if killed >= n/10 {
				break
			}
			if node.ID().Equal(server.ID()) {
				continue
			}
			m.Fail(node)
			killed++
		}
		var ratio stats.Ratio
		nodes := m.Nodes()
		for probe := 0; probe < 64; probe++ {
			ratio.Observe(nodes[rng.Intn(len(nodes))].Locate(guid, nil).Found)
		}
		t.AddRow(r, sp.Mean(), ratio.String())
	}
	return t
}

// AblationBase sweeps the digit radix b: wider tables vs shorter paths.
func AblationBase(n int, bases []int, seed int64) Table {
	t := Table{
		Title:  "Ablation: digit base b (table width vs path length)",
		Header: []string{"b", "mean lookup hops", "entries/node"},
	}
	for _, b := range bases {
		cfg := defaultTapConfig()
		cfg.Spec = ids.Spec{Base: b, Digits: digitsFor(b)}
		env := buildTapestry(ringSpace(n), n, cfg, seed, false)
		rng := rand.New(rand.NewSource(seed + 61))
		guid := cfg.Spec.Hash("ab-base")
		if err := env.nodes[0].Publish(guid, nil); err != nil {
			panic(err)
		}
		var hops stats.Summary
		for q := 0; q < 256; q++ {
			res := env.nodes[rng.Intn(len(env.nodes))].Locate(guid, nil)
			if res.Found {
				hops.AddInt(res.Hops)
			}
		}
		var sp stats.Summary
		for _, node := range env.nodes {
			sp.AddInt(node.Table().NeighborCount())
		}
		t.AddRow(b, hops.Mean(), sp.Mean())
	}
	return t
}

// digitsFor keeps the namespace around 2^32 regardless of base.
func digitsFor(base int) int {
	d := int(math.Ceil(32 / math.Log2(float64(base))))
	if d < 2 {
		d = 2
	}
	return d
}

// MetricExpansion (E0) reports the measured expansion constants of the
// spaces used across experiments, validating the b > c² precondition of
// Section 3 and showing where general metrics break it.
func MetricExpansion(seed int64) Table {
	t := Table{
		Title:  "Metric-space expansion constants (Eq. 1; Section 3 needs b > c²)",
		Header: []string{"space", "median c", "p90 c", "max c", "b=16 ok?"},
	}
	rng := rand.New(rand.NewSource(seed))
	spaces := []metric.Space{
		metric.NewRing(1024),
		metric.NewTorus2D(32),
		metric.NewUniformCloud(512, rng),
		metric.NewRandomGraph(256, 3, 10, rng),
		metric.NewTransitStub(metric.DefaultTransitStub(), rng),
	}
	for _, s := range spaces {
		e := metric.EstimateExpansion(s, 24, 6)
		ok := "yes"
		if e.Median*e.Median >= 16 {
			ok = "no (b must grow)"
		}
		t.AddRow(s.Name(), e.Median, e.P90, e.Max, ok)
	}
	return t
}
