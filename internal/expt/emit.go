package expt

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// Formats accepted by Emit.
const (
	FormatTable = "table" // aligned-column text, one block per experiment
	FormatJSON  = "json"  // one JSON array of {id, name, table} objects
	FormatCSV   = "csv"   // RFC 4180 rows; experiment id prepended per row
)

// Emit renders results in the given format. FormatCSV flattens every table
// into one stream with "experiment" and "title" columns so the output stays
// machine-joinable across experiments; FormatJSON emits a single indented
// array; FormatTable matches the historical benchtables output.
func Emit(w io.Writer, format string, results []Result) error {
	switch format {
	case FormatTable, "":
		for _, r := range results {
			if _, err := fmt.Fprintf(w, "[%s]\n%s\n", r.ID, r.Table); err != nil {
				return err
			}
		}
		return nil
	case FormatJSON:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	case FormatCSV:
		// Tables have different column counts, but a CSV stream must keep a
		// single field count per file (csv.Reader and pandas reject ragged
		// records), so every record is padded to the widest table.
		width := 2
		for _, r := range results {
			if w := 2 + len(r.Table.Header); w > width {
				width = w
			}
			for _, row := range r.Table.Rows {
				if w := 2 + len(row); w > width {
					width = w
				}
			}
		}
		pad := func(rec []string) []string {
			for len(rec) < width {
				rec = append(rec, "")
			}
			return rec
		}
		cw := csv.NewWriter(w)
		for _, r := range results {
			header := append([]string{"experiment", "title"}, r.Table.Header...)
			if err := cw.Write(pad(header)); err != nil {
				return err
			}
			for _, row := range r.Table.Rows {
				if err := cw.Write(pad(append([]string{r.ID, r.Table.Title}, row...))); err != nil {
					return err
				}
			}
		}
		cw.Flush()
		return cw.Error()
	default:
		return fmt.Errorf("expt: unknown format %q (want table, json or csv)", format)
	}
}
