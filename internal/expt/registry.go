package expt

import (
	"fmt"
	"regexp"
	"sort"
)

// Params carries the scale knobs shared by every registered experiment, so
// one flag set (-quick, custom sizes) tunes the whole suite coherently.
type Params struct {
	Sizes     []int // network sizes for the Table 1 sweeps
	JoinSizes []int // sizes for dynamic-join experiments (capped: joins are slow)
	Queries   int   // lookup count per table cell
	NNSize    int   // network size for nearest-neighbor / churn experiments
	StretchN  int   // network size for stretch and ablation experiments
	BalanceN  int   // network size for the load-balance experiment

	// E-scale (substrate-scale churn) knobs: metric-space points of the full
	// cell (the quarter-scale cell uses ScalePoints/4), initial overlay
	// population, churn epochs, and Zipf queries per epoch.
	ScalePoints  int
	ScaleNodes   int
	ScaleEpochs  int
	ScaleQueries int

	// E-repair (repair-quality) knobs: mesh size, nodes killed before the
	// sweep, and post-churn queries.
	RepairN       int
	RepairKills   int
	RepairQueries int

	// E-hotspot (serving-layer) knobs: mesh size of the full cell (the half
	// cell uses HotspotN/2), published objects, and Zipf queries.
	HotspotN       int
	HotspotObjects int
	HotspotQueries int

	// E-faceoff (cross-protocol churn + Zipf storm) knobs: base population
	// of the full cell (the half cell uses FaceoffN/2), published objects,
	// churn epochs, Zipf queries per epoch, and the protocol selection
	// (nil = every registered overlay protocol).
	FaceoffN         int
	FaceoffObjects   int
	FaceoffEpochs    int
	FaceoffQueries   int
	FaceoffProtocols []string

	// E-planet (virtual-time run at planetary scale) knobs: overlay
	// population, published objects, virtual-time epochs, Zipf queries per
	// epoch, and the worker count of the sampled static build (0 = one per
	// CPU; the mesh is byte-identical for every value).
	PlanetNodes        int
	PlanetObjects      int
	PlanetEpochs       int
	PlanetQueries      int
	PlanetBuildWorkers int

	// E-nines (availability under crash churn) knobs: overlay population,
	// published objects, churn epochs, and Zipf queries per epoch. Queries
	// bound the nines resolution: a flawless configuration reports
	// log10(epochs*queries) nines.
	NinesN       int
	NinesObjects int
	NinesEpochs  int
	NinesQueries int

	// E-chaos (named adversarial scenarios) knobs: overlay population,
	// published objects, queries per measurement phase, join-stampede size,
	// the scenario selection (nil = the whole named suite) and the protocol
	// selection (nil = every registered overlay protocol).
	ChaosN         int
	ChaosObjects   int
	ChaosQueries   int
	ChaosStampede  int
	ChaosScenarios []string
	ChaosProtocols []string
}

// DefaultParams reproduces the paper-comparable scale.
func DefaultParams() Params {
	sizes := []int{64, 256, 1024, 4096}
	return Params{
		Sizes:     sizes,
		JoinSizes: sizes[:3], // dynamic joins at 4096 take minutes; cap
		Queries:   2048,
		NNSize:    256,
		StretchN:  512,
		BalanceN:  512,

		ScalePoints:  50000,
		ScaleNodes:   1024,
		ScaleEpochs:  6,
		ScaleQueries: 1024,

		RepairN:       256,
		RepairKills:   48,
		RepairQueries: 512,

		HotspotN:       512,
		HotspotObjects: 256,
		HotspotQueries: 8192,

		FaceoffN:       256,
		FaceoffObjects: 64,
		FaceoffEpochs:  4,
		FaceoffQueries: 2048,

		PlanetNodes:   100000,
		PlanetObjects: 1000000,
		PlanetEpochs:  4,
		PlanetQueries: 2048,

		NinesN:       256,
		NinesObjects: 64,
		NinesEpochs:  4,
		NinesQueries: 1024,

		ChaosN:        128,
		ChaosObjects:  64,
		ChaosQueries:  512,
		ChaosStampede: 24,
	}
}

// QuickParams is the reduced scale for smoke runs (-quick).
func QuickParams() Params {
	sizes := []int{64, 256}
	return Params{
		Sizes:     sizes,
		JoinSizes: sizes,
		Queries:   256,
		NNSize:    64,
		StretchN:  128,
		BalanceN:  128,

		ScalePoints:  2600, // above metric.DenseLimit: the on-demand path stays exercised
		ScaleNodes:   96,
		ScaleEpochs:  3,
		ScaleQueries: 128,

		RepairN:       96,
		RepairKills:   20,
		RepairQueries: 128,

		HotspotN:       128,
		HotspotObjects: 64,
		HotspotQueries: 2048,

		FaceoffN:       96,
		FaceoffObjects: 32,
		FaceoffEpochs:  2,
		FaceoffQueries: 512,

		PlanetNodes:   2000,
		PlanetObjects: 20000,
		PlanetEpochs:  2,
		PlanetQueries: 256,

		NinesN:       96,
		NinesObjects: 32,
		NinesEpochs:  2,
		NinesQueries: 256,

		ChaosN:        64,
		ChaosObjects:  32,
		ChaosQueries:  192,
		ChaosStampede: 12,
	}
}

// Experiment is one registered evaluation: a stable ID (the E/A numbering
// used throughout EXPERIMENTS.md), a name (keyed into per-cell seed
// derivation, so renaming an experiment deliberately reshuffles its
// streams), and a definition builder binding Params to concrete cells.
type Experiment struct {
	ID   string // "E0".."E16", "A1".."A3"
	Name string
	Make func(p Params) Def
}

// registry holds every experiment in presentation order.
var registry = []Experiment{
	{"E0", "MetricExpansion", func(p Params) Def { return metricExpansionDef() }},
	{"E1", "Table1Hops", func(p Params) Def { return table1HopsDef(p.Sizes, p.Queries) }},
	{"E2", "Table1Space", func(p Params) Def { return table1SpaceDef(p.Sizes) }},
	{"E3", "Table1InsertCost", func(p Params) Def { return table1InsertCostDef(p.JoinSizes) }},
	{"E4", "Table1Balance", func(p Params) Def { return table1BalanceDef(p.BalanceN, 8*p.BalanceN) }},
	{"E5", "StretchVsDistance", func(p Params) Def { return stretchVsDistanceDef(p.StretchN, 256, 4*p.Queries) }},
	{"E6", "SurrogateOverhead", func(p Params) Def { return surrogateOverheadDef(p.Sizes, 512) }},
	{"E7", "NNCorrectness", func(p Params) Def {
		return nnCorrectnessDef(p.NNSize, []int{4, 8, 16, 32, 64, p.NNSize})
	}},
	{"E8", "Multicast", func(p Params) Def { return multicastDef(p.StretchN) }},
	{"E9", "AvailabilityDuringJoin", func(p Params) Def { return availabilityDuringJoinDef(64, 32) }},
	{"E10", "ParallelJoin", func(p Params) Def { return parallelJoinDef(32, 5, 8) }},
	{"E11", "Deletion", func(p Params) Def { return deletionDef(p.NNSize) }},
	{"E12", "OptimizePointers", func(p Params) Def { return optimizePointersDef(96, 24) }},
	{"E13", "StubLocality", func(p Params) Def { return stubLocalityDef() }},
	{"E14", "GeneralMetric", func(p Params) Def { return generalMetricDef([]int{64, 128, 256, 512}) }},
	{"E15", "MultiRoot", func(p Params) Def { return multiRootDef(p.StretchN, []int{1, 2, 4}, 0.15) }},
	{"E16", "ContinualOptimization", func(p Params) Def { return continualOptimizationDef(p.NNSize) }},
	{"E-scale", "ScaleChurn", func(p Params) Def {
		return scaleChurnDef(p.ScalePoints, p.ScaleNodes, p.ScaleEpochs, p.ScaleQueries)
	}},
	{"E-repair", "RepairQuality", func(p Params) Def {
		return repairQualityDef(p.RepairN, p.RepairKills, p.RepairQueries)
	}},
	{"E-hotspot", "HotObjects", func(p Params) Def {
		return hotspotDef(p.HotspotN, p.HotspotObjects, p.HotspotQueries)
	}},
	{"E-faceoff", "Faceoff", func(p Params) Def {
		return faceoffDef(p.FaceoffN, p.FaceoffObjects, p.FaceoffEpochs,
			p.FaceoffQueries, p.FaceoffProtocols)
	}},
	{"E-planet", "Planet", func(p Params) Def {
		return planetDef(p.PlanetNodes, p.PlanetObjects, p.PlanetEpochs,
			p.PlanetQueries, p.PlanetBuildWorkers)
	}},
	{"E-nines", "Nines", func(p Params) Def {
		return ninesDef(p.NinesN, p.NinesObjects, p.NinesEpochs, p.NinesQueries)
	}},
	{"E-chaos", "Chaos", func(p Params) Def {
		return chaosDef(p.ChaosN, p.ChaosObjects, p.ChaosQueries, p.ChaosStampede,
			p.ChaosScenarios, p.ChaosProtocols)
	}},
	{"A1", "AblationSurrogate", func(p Params) Def { return ablationSurrogateDef(p.StretchN) }},
	{"A2", "AblationR", func(p Params) Def { return ablationRDef(p.StretchN, []int{2, 3, 4}) }},
	{"A3", "AblationBase", func(p Params) Def { return ablationBaseDef(p.StretchN, []int{4, 8, 16, 32}) }},
}

// Experiments returns every registered experiment in presentation order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Match selects experiments whose ID or Name matches the anchored,
// case-insensitive pattern. An empty pattern selects everything.
func Match(pattern string) ([]Experiment, error) {
	if pattern == "" {
		return Experiments(), nil
	}
	re, err := regexp.Compile("(?i)^(" + pattern + ")$")
	if err != nil {
		return nil, fmt.Errorf("expt: bad -run pattern %q: %w", pattern, err)
	}
	var out []Experiment
	for _, e := range registry {
		if re.MatchString(e.ID) || re.MatchString(e.Name) {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		var names []string
		for _, e := range registry {
			names = append(names, e.ID)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("expt: pattern %q matches no experiment (have %v)", pattern, names)
	}
	return out, nil
}
