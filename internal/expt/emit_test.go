package expt

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func emitResults() []Result {
	tab := Table{Title: "T", Note: "n", Header: []string{"a", "b"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("x, with comma", 0.1)
	return []Result{{ID: "E99", Name: "Fake", Table: tab}}
}

func TestEmitJSONRoundTrips(t *testing.T) {
	var b strings.Builder
	if err := Emit(&b, FormatJSON, emitResults()); err != nil {
		t.Fatal(err)
	}
	var back []Result
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, b.String())
	}
	if len(back) != 1 || back[0].ID != "E99" || back[0].Table.Title != "T" {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if len(back[0].Table.Rows) != 2 || back[0].Table.Rows[0][1] != "2.5" {
		t.Fatalf("rows mangled: %+v", back[0].Table.Rows)
	}
}

func TestEmitCSVQuotesAndPrefixes(t *testing.T) {
	var b strings.Builder
	if err := Emit(&b, FormatCSV, emitResults()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v\n%s", err, b.String())
	}
	if len(recs) != 3 { // header + 2 rows
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0][0] != "experiment" || recs[1][0] != "E99" {
		t.Errorf("missing experiment column: %v", recs[0])
	}
	if recs[2][2] != "x, with comma" {
		t.Errorf("comma cell mangled: %q", recs[2][2])
	}
}

func TestEmitCSVUniformWidthAcrossTables(t *testing.T) {
	wide := Table{Title: "W", Header: []string{"a", "b", "c", "d"}}
	wide.AddRow(1, 2, 3, 4)
	narrow := Table{Title: "N", Header: []string{"x"}}
	narrow.AddRow(9)
	var b strings.Builder
	if err := Emit(&b, FormatCSV, []Result{{ID: "E1", Table: wide}, {ID: "E2", Table: narrow}}); err != nil {
		t.Fatal(err)
	}
	// A single strict reader must accept the whole stream: every record the
	// same width, padded with empty fields.
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("multi-table CSV is ragged: %v\n%s", err, b.String())
	}
	for i, r := range recs {
		if len(r) != 6 { // experiment + title + 4 widest columns
			t.Errorf("record %d has %d fields, want 6: %v", i, len(r), r)
		}
	}
	if recs[3][0] != "E2" || recs[3][2] != "9" || recs[3][3] != "" {
		t.Errorf("narrow row not padded: %v", recs[3])
	}
}

func TestEmitTableMatchesString(t *testing.T) {
	rs := emitResults()
	var b strings.Builder
	if err := Emit(&b, FormatTable, rs); err != nil {
		t.Fatal(err)
	}
	want := "[E99]\n" + rs[0].Table.String() + "\n"
	if b.String() != want {
		t.Errorf("table emit diverged:\n%q\nwant\n%q", b.String(), want)
	}
}

func TestEmitUnknownFormat(t *testing.T) {
	if err := Emit(&strings.Builder{}, "yaml", nil); err == nil {
		t.Fatal("expected error for unknown format")
	}
}
