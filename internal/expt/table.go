// Package expt contains the experiment harness behind every table and
// figure reproduction: one exported function per experiment, each returning
// a printable Table. Benchmarks (bench_test.go), the benchtables CLI and
// EXPERIMENTS.md all consume these, so paper-facing numbers have exactly one
// implementation.
package expt

import (
	"fmt"
	"strings"
)

// Table is a titled grid of stringified results.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of values, stringifying each.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.3f", x)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
