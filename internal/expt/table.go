// Package expt is the experiment engine behind every table and figure
// reproduction of Hildrum–Kubiatowicz–Rao–Zhao (SPAA 2002).
//
// Each experiment is a registered Def: a table skeleton plus independent
// cells (typically one per swept parameter value). A Def runs through the
// worker-pool Runner, which derives each cell's RNG stream from
// (run seed, experiment name, cell index) via stats.StreamSeed and merges
// rows in cell order — so output is byte-identical for any worker count.
// The registry (Experiments, Match) lets CLIs select experiment subsets by
// ID or name regexp; emit.go renders results as text, JSON or CSV.
//
// The exported one-call-per-experiment functions (Table1Hops, Multicast, …)
// remain as serial wrappers over the same definitions, so benchmarks
// (bench_test.go), the CLIs and EXPERIMENTS.md all share exactly one
// implementation of every paper-facing number.
package expt

import (
	"fmt"
	"strings"
)

// Table is a titled grid of stringified results.
type Table struct {
	Title  string     `json:"title"`
	Note   string     `json:"note,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// AddRow appends a row of values, stringifying each.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.3f", x)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
