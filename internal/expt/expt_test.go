package expt

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a table cell as float.
func cell(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("table %q has no cell (%d,%d):\n%s", tab.Title, row, col, tab)
	}
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, tab.Rows[row][col])
	}
	return v
}

func TestTableFormatting(t *testing.T) {
	tab := Table{Title: "T", Note: "n", Header: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", 0.1239)
	s := tab.String()
	for _, want := range []string{"== T ==", "a", "bb", "2.5", "0.124", "x"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestTable1HopsShape(t *testing.T) {
	tab := Table1Hops([]int{32, 128}, 128, 1)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Hops grow slowly for Tapestry (log n): less than double across 4x n.
	tap32, tap128 := cell(t, tab, 0, 2), cell(t, tab, 1, 2)
	if tap128 > 2.5*tap32+1 {
		t.Errorf("tapestry hops grew too fast: %g -> %g\n%s", tap32, tap128, tab)
	}
	// CAN grows faster than Tapestry between the sizes (√n vs log n) — by
	// n=128 CAN should need more hops than Tapestry.
	if cell(t, tab, 1, 5) < cell(t, tab, 1, 2) {
		t.Errorf("expected CAN to need more hops than Tapestry at n=128\n%s", tab)
	}
}

func TestTable1SpaceShape(t *testing.T) {
	tab := Table1Space([]int{32, 128}, 2)
	// Tapestry per-node state is far below n (it is Θ(log n)).
	if got := cell(t, tab, 1, 1); got > 128 {
		t.Errorf("tapestry space %g at n=128 is not logarithmic\n%s", got, tab)
	}
	// CAN space is dimension-bound: tiny and roughly constant.
	can32, can128 := cell(t, tab, 0, 5), cell(t, tab, 1, 5)
	if can128 > 3*can32 {
		t.Errorf("CAN space should be ~constant: %g -> %g", can32, can128)
	}
}

func TestTable1InsertCostShape(t *testing.T) {
	tab := Table1InsertCost([]int{32, 128}, 3)
	for row := 0; row < 2; row++ {
		n := cell(t, tab, row, 0)
		tap := cell(t, tab, row, 1)
		if tap <= 0 || tap > 40*n {
			t.Errorf("tapestry insert cost %g at n=%g out of plausible polylog range\n%s", tap, n, tab)
		}
	}
	// Sub-linear growth: 4x nodes should not cost 4x messages.
	if cell(t, tab, 1, 1) > 3*cell(t, tab, 0, 1) {
		t.Errorf("tapestry insert cost scaling looks linear:\n%s", tab)
	}
}

func TestTable1BalanceShape(t *testing.T) {
	tab := Table1Balance(64, 256, 4)
	if len(tab.Rows) != 3 {
		t.Fatal("expected 3 rows")
	}
	if skew := cell(t, tab, 0, 2); skew > 30 {
		t.Errorf("pointer skew %g too high\n%s", skew, tab)
	}
	if tab.Rows[2][3] != "no (single point)" {
		t.Error("directory verdict missing")
	}
}

func TestStretchVsDistanceShape(t *testing.T) {
	tab := StretchVsDistance(96, 48, 512, 5)
	if len(tab.Rows) < 5 {
		t.Fatalf("too few populated deciles:\n%s", tab)
	}
	// In the nearest decile, Tapestry stretch must beat Chord's (the paper's
	// headline locality claim).
	tapNear := cell(t, tab, 0, 1)
	chordNear := cell(t, tab, 0, 2)
	if tapNear >= chordNear {
		t.Errorf("tapestry near-stretch %g not better than chord %g\n%s", tapNear, chordNear, tab)
	}
}

func TestSurrogateOverheadShape(t *testing.T) {
	tab := SurrogateOverhead([]int{32, 128}, 128, 6)
	for row := range tab.Rows {
		if extra := cell(t, tab, row, 3); extra > 3 {
			t.Errorf("mean surrogate overhead %g exceeds the <2 expectation\n%s", extra, tab)
		}
	}
}

func TestNNCorrectnessShape(t *testing.T) {
	tab := NNCorrectness(48, []int{2, 48}, 7)
	// Full k must be exact; tiny k is allowed violations but the table must
	// show improvement.
	small := cell(t, tab, 0, 1)
	full := cell(t, tab, 1, 1)
	if full != 0 {
		t.Errorf("full-k construction has %g P2 violations\n%s", full, tab)
	}
	if full > small {
		t.Errorf("violations should not increase with k\n%s", tab)
	}
	if p1 := cell(t, tab, 0, 4); p1 != 0 {
		t.Errorf("P1 violations even at small k: %g (watch-list/multicast must prevent these)\n%s", p1, tab)
	}
}

func TestMulticastShape(t *testing.T) {
	tab := Multicast(64, 8)
	// Messages per reached node stays O(1) — bound the ratio.
	for row := range tab.Rows {
		if ratio := cell(t, tab, row, 4); ratio > 8 {
			t.Errorf("multicast ratio %g too high\n%s", ratio, tab)
		}
	}
}

func TestAvailabilityDuringJoinShape(t *testing.T) {
	tab := AvailabilityDuringJoin(24, 12, 9)
	if fails := cell(t, tab, 0, 3); fails != 0 {
		t.Errorf("availability failures during join: %g\n%s", fails, tab)
	}
}

func TestParallelJoinShape(t *testing.T) {
	tab := ParallelJoin(12, 3, 6, 10)
	for row := range tab.Rows {
		if v := cell(t, tab, row, 2); v != 0 {
			t.Errorf("P1 violations after parallel join wave %d: %g\n%s", row+1, v, tab)
		}
		if v := cell(t, tab, row, 3); v != 0 {
			t.Errorf("root divergences after wave %d: %g\n%s", row+1, v, tab)
		}
		if v := cell(t, tab, row, 4); v != 0 {
			t.Errorf("locate failures during in-flight joins of wave %d: %g (§4.3 availability)\n%s", row+1, v, tab)
		}
	}
}

func TestDeletionShape(t *testing.T) {
	tab := Deletion(48, 11)
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 phases:\n%s", tab)
	}
	// Baseline, voluntary and post-republish phases must be 100%.
	for _, row := range []int{0, 1, 3} {
		if !strings.Contains(tab.Rows[row][2], "100.00%") {
			t.Errorf("phase %q success %q, want 100%%\n%s", tab.Rows[row][0], tab.Rows[row][2], tab)
		}
	}
}

func TestOptimizePointersShape(t *testing.T) {
	tab := OptimizePointers(32, 8, 12)
	last := tab.Rows[len(tab.Rows)-1]
	if last[1] != "0" {
		t.Errorf("P4 violations after optimization: %s\n%s", last[1], tab)
	}
	for _, row := range tab.Rows {
		if !strings.Contains(row[2], "100.00%") {
			t.Errorf("locate success dropped in stage %q: %s", row[0], row[2])
		}
	}
}

func TestStubLocalityShape(t *testing.T) {
	tab := StubLocality(13)
	if len(tab.Rows) != 2 {
		t.Fatal("expected 2 variants")
	}
	// The §6.3 variant keeps 100% of intra-stub queries local and its mean
	// latency must beat the plain variant by a wide margin.
	if !strings.Contains(tab.Rows[1][2], "(100%)") {
		t.Errorf("local-branch variant leaked queries: %s\n%s", tab.Rows[1][2], tab)
	}
	plain, local := cell(t, tab, 0, 3), cell(t, tab, 1, 3)
	if local >= plain {
		t.Errorf("local variant latency %g not better than plain %g\n%s", local, plain, tab)
	}
}

func TestGeneralMetricShape(t *testing.T) {
	tab := GeneralMetric([]int{64, 128}, 14)
	for row := range tab.Rows {
		if got, budget := cell(t, tab, row, 3), cell(t, tab, row, 4); got > 3*budget {
			t.Errorf("max stretch %g above 3·log³n=%g\n%s", got, budget, tab)
		}
	}
}

func TestMultiRootShape(t *testing.T) {
	tab := MultiRoot(64, []int{1, 4}, 0.15, 15)
	parse := func(row int) float64 {
		s := tab.Rows[row][3]
		open := strings.Index(s, "(")
		v, err := strconv.ParseFloat(strings.TrimSuffix(s[open+1:], "%)"), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	if parse(1) < parse(0) {
		t.Errorf("more roots should not reduce availability:\n%s", tab)
	}
	if parse(1) < 95 {
		t.Errorf("4 roots under 15%% failures should stay near-perfect:\n%s", tab)
	}
}

func TestAblationsRun(t *testing.T) {
	if tab := AblationSurrogate(48, 16); len(tab.Rows) != 2 {
		t.Errorf("surrogate ablation rows: %d", len(tab.Rows))
	}
	if tab := AblationR(48, []int{2, 4}, 17); len(tab.Rows) != 2 {
		t.Errorf("R ablation rows: %d", len(tab.Rows))
	}
	tab := AblationBase(48, []int{4, 16}, 18)
	if len(tab.Rows) != 2 {
		t.Fatalf("base ablation rows: %d", len(tab.Rows))
	}
	// Larger base ⇒ fewer hops, more state.
	if cell(t, tab, 1, 1) > cell(t, tab, 0, 1)+1 {
		t.Errorf("base-16 should not need more hops than base-4:\n%s", tab)
	}
}

func TestContinualOptimizationShape(t *testing.T) {
	tab := ContinualOptimization(48, 20)
	if len(tab.Rows) != 5 {
		t.Fatalf("expected 5 stages:\n%s", tab)
	}
	baseline := cell(t, tab, 0, 2)
	drifted := cell(t, tab, 1, 2)
	tuned := cell(t, tab, 2, 2)
	refined := cell(t, tab, 3, 2)
	reacq := cell(t, tab, 4, 2)
	if drifted <= baseline {
		t.Errorf("drift did not worsen stretch (%g -> %g)\n%s", baseline, drifted, tab)
	}
	if tuned > drifted {
		t.Errorf("tuning made stretch worse (%g -> %g)\n%s", drifted, tuned, tab)
	}
	if refined > tuned+1e-9 {
		t.Errorf("engine refine made stretch worse (%g -> %g)\n%s", tuned, refined, tab)
	}
	if reacq > baseline*1.5+0.5 {
		t.Errorf("full reacquire should approach baseline: %g vs %g\n%s", reacq, baseline, tab)
	}
	for _, row := range tab.Rows {
		if !strings.Contains(row[3], "100.00%") {
			t.Errorf("availability dipped in stage %q: %s", row[0], row[3])
		}
	}
}

func TestMetricExpansionShape(t *testing.T) {
	tab := MetricExpansion(19)
	if len(tab.Rows) != 5 {
		t.Fatalf("expected 5 spaces:\n%s", tab)
	}
	// Lattices must pass the b=16 check.
	for row := 0; row < 2; row++ {
		if tab.Rows[row][4] != "yes" {
			t.Errorf("space %s should satisfy b > c²:\n%s", tab.Rows[row][0], tab)
		}
	}
}
