package expt

import "testing"

// TestHotspotAcceptance pins the serving-layer claims of E-hotspot: under a
// Zipf(s=1.2) query storm, the locate-path cache strictly improves mean hops
// and per-node load concentration, costs at most 10% stretch, never serves a
// failed query path abnormally (zero exhaustions), and actually gets used
// (non-trivial hit rate).
func TestHotspotAcceptance(t *testing.T) {
	p := QuickParams()
	for _, seed := range []int64{3, 17} {
		runs := runHotspotCell(seed, p.HotspotN, p.HotspotObjects, p.HotspotQueries)
		if len(runs) != 3 {
			t.Fatalf("seed %d: %d runs, want 3", seed, len(runs))
		}
		off, on, dir := runs[0], runs[1], runs[2]

		for _, r := range runs {
			if r.Found.Value() < 1 {
				t.Errorf("seed %d %s: availability %s, want 100%%", seed, r.System, r.Found.String())
			}
		}
		if off.Exhausted != 0 || on.Exhausted != 0 {
			t.Errorf("seed %d: exhausted queries off=%d on=%d, want 0 (routing loop or hop-budget bug)",
				seed, off.Exhausted, on.Exhausted)
		}
		if on.Hops.Mean() >= off.Hops.Mean() {
			t.Errorf("seed %d: cached mean hops %.3f not strictly better than uncached %.3f",
				seed, on.Hops.Mean(), off.Hops.Mean())
		}
		if on.LoadMaxMean() >= off.LoadMaxMean() {
			t.Errorf("seed %d: cached load max/mean %.3f not strictly better than uncached %.3f",
				seed, on.LoadMaxMean(), off.LoadMaxMean())
		}
		if on.Stretch.Mean() > 1.1*off.Stretch.Mean() {
			t.Errorf("seed %d: cached stretch %.3f exceeds 1.1x uncached %.3f",
				seed, on.Stretch.Mean(), off.Stretch.Mean())
		}
		if on.HitRate <= 0.25 {
			t.Errorf("seed %d: cache hit rate %.3f suspiciously low for a Zipf storm", seed, on.HitRate)
		}
		// The strawman stays a strawman: the central directory concentrates
		// load far beyond either overlay configuration.
		if dir.LoadMaxMean() <= off.LoadMaxMean() {
			t.Errorf("seed %d: directory load max/mean %.3f not worse than tapestry %.3f",
				seed, dir.LoadMaxMean(), off.LoadMaxMean())
		}
	}
}

// TestHotspotCacheOffTwinIsByteIdenticalToDefault guards the determinism
// contract: a mesh built with LocateCacheCap=0 must behave bit-identically
// to one that never heard of the serving layer — the E-hotspot cache-off row
// doubles as that oracle, byte-compared here against a fresh run.
func TestHotspotCacheOffTwinIsByteIdenticalToDefault(t *testing.T) {
	a := Hotspot(96, 48, 512, 11).String()
	b := Hotspot(96, 48, 512, 11).String()
	if a != b {
		t.Fatalf("E-hotspot not deterministic:\n%s\nvs\n%s", a, b)
	}
}
