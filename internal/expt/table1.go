package expt

import (
	"fmt"
	"math"
	"math/rand"

	"tapestry/internal/ids"
	"tapestry/internal/overlay"
	"tapestry/internal/stats"
	"tapestry/internal/workload"
)

// The Table 1 sweeps are protocol-parameterized: every system is built
// through the overlay.Builder registry over the SAME addresses with the SAME
// seed, so node index i refers to one location across all of them, and the
// shared workload (placement + query mix) is applied verbatim to each.

// table1Systems is the Table 1 comparison set in presentation order.
var table1Systems = []string{"tapestry", "chord", "pastry", "can", "directory"}

// table1HopsDef (E1) regenerates the "Hops" column of Table 1 empirically:
// median and mean application-level hops per successful object location, per
// system, across network sizes. Expected shape: Tapestry, Chord and Pastry
// grow as O(log n); CAN (r=2) grows as O(n^{1/2}); the central directory is
// constant (2). One cell per network size.
func table1HopsDef(sizes []int, queries int) Def {
	d := Def{
		Name: "Table1Hops",
		Table: Table{
			Title:  "Table 1 / Hops column — application-level hops per lookup",
			Note:   "expect Θ(log n) for Tapestry/Chord/Pastry, Θ(√n) for CAN (r=2), 2 for central directory",
			Header: []string{"n", "tapestry p50", "tapestry mean", "chord mean", "pastry mean", "can mean", "directory", "log2(n)"},
		},
	}
	for _, n := range sizes {
		n := n
		d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("n=%d", n), Run: func(seed int64, t *Table) {
			rng := subRNG(seed, "workload")
			bseed := subSeed(seed, "build")
			space := ringSpace(n)
			addrs := pickAddrs(space, n, rand.New(rand.NewSource(bseed)))
			place := workload.UniformPlacement(64, 1, n, rng)
			mix := workload.UniformQueries(queries, n, len(place.Names), rng)

			hops := make(map[string]*stats.Summary, len(table1Systems))
			for _, sys := range table1Systems {
				env := buildOverlay(sys, space, addrs, overlay.Config{Seed: bseed, Static: true})
				for i := range place.Names {
					env.publish(place.Servers[i][0], place.Names[i])
				}
				s := &stats.Summary{}
				for i := range mix.Clients {
					if res, _ := env.locate(mix.Clients[i], place.Names[mix.Objects[i]]); res.Found {
						s.AddInt(res.Hops)
					}
				}
				hops[sys] = s
			}
			t.AddRow(n, hops["tapestry"].Median(), hops["tapestry"].Mean(),
				hops["chord"].Mean(), hops["pastry"].Mean(), hops["can"].Mean(),
				hops["directory"].Mean(), math.Log2(float64(n)))
		}})
	}
	return d
}

// Table1Hops (E1) — serial wrapper over table1HopsDef.
func Table1Hops(sizes []int, queries int, seed int64) Table {
	return table1HopsDef(sizes, queries).Run(seed, 1)
}

// publishTapestry publishes every object of the placement on all its
// servers and returns the GUIDs.
func publishTapestry(env tapEnv, place workload.Placement) []ids.ID {
	guids := make([]ids.ID, len(place.Names))
	for i, name := range place.Names {
		guids[i] = exptSpec.Hash(name)
		for _, s := range place.Servers[i] {
			if err := env.nodes[s].Publish(guids[i], nil); err != nil {
				panic(err)
			}
		}
	}
	return guids
}

// table1SpaceDef (E2) regenerates the "Space" column: per-node routing-table
// entries via the uniform TableSize accessor. Expected shape:
// Tapestry/Pastry/Chord hold Θ(log n) entries; CAN holds Θ(r). One cell per
// network size.
func table1SpaceDef(sizes []int) Def {
	d := Def{
		Name: "Table1Space",
		Table: Table{
			Title:  "Table 1 / Space column — routing entries per node",
			Note:   "Tapestry counts per-level neighbor links (R per slot); expect Θ(log n) except CAN's Θ(r)",
			Header: []string{"n", "tapestry mean", "tapestry max", "chord mean", "pastry mean", "can mean", "log2(n)"},
		},
	}
	for _, n := range sizes {
		n := n
		d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("n=%d", n), Run: func(seed int64, t *Table) {
			bseed := subSeed(seed, "build")
			space := ringSpace(n)
			addrs := pickAddrs(space, n, rand.New(rand.NewSource(bseed)))
			size := make(map[string]*stats.Summary, 4)
			for _, sys := range []string{"tapestry", "chord", "pastry", "can"} {
				env := buildOverlay(sys, space, addrs, overlay.Config{Seed: bseed, Static: true})
				s := &stats.Summary{}
				for _, h := range env.nodes {
					s.AddInt(env.proto.TableSize(h))
				}
				size[sys] = s
			}
			t.AddRow(n, size["tapestry"].Mean(), size["tapestry"].Max(), size["chord"].Mean(),
				size["pastry"].Mean(), size["can"].Mean(), math.Log2(float64(n)))
		}})
	}
	return d
}

// Table1Space (E2) — serial wrapper over table1SpaceDef.
func Table1Space(sizes []int, seed int64) Table {
	return table1SpaceDef(sizes).Run(seed, 1)
}

// table1InsertCostDef (E3) regenerates the "Insert Cost" column: messages
// per node insertion, measured over the second half of a growth run (so the
// network is at representative size). Expected shape: Θ(log² n) for Tapestry
// and Chord; CAN's O(r·n^{1/r}) routing plus O(1) zone work. One cell per
// network size — by far the slowest sweep, so this is where the worker pool
// pays off most.
func table1InsertCostDef(sizes []int) Def {
	d := Def{
		Name: "Table1InsertCost",
		Table: Table{
			Title:  "Table 1 / Insert Cost column — messages per node insertion",
			Note:   "mean over the last n/2 joins; expect Θ(log² n) for Tapestry and Chord",
			Header: []string{"n", "tapestry", "chord", "can", "log2^2(n)"},
		},
	}
	for _, n := range sizes {
		n := n
		d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("n=%d", n), Run: func(seed int64, t *Table) {
			bseed := subSeed(seed, "build")
			space := ringSpace(n)
			addrs := pickAddrs(space, n, rand.New(rand.NewSource(bseed)))
			mean := func(costs []int) float64 {
				var s stats.Summary
				for _, c := range costs[len(costs)/2:] {
					s.AddInt(c)
				}
				return s.Mean()
			}
			cost := make(map[string]float64, 3)
			for _, sys := range []string{"tapestry", "chord", "can"} {
				env := buildOverlay(sys, space, addrs, overlay.Config{Seed: bseed}) // dynamic joins
				cost[sys] = mean(env.joinMsgs)
			}
			l := math.Log2(float64(n))
			t.AddRow(n, cost["tapestry"], cost["chord"], cost["can"], l*l)
		}})
	}
	return d
}

// Table1InsertCost (E3) — serial wrapper over table1InsertCostDef.
func Table1InsertCost(sizes []int, seed int64) Table {
	return table1InsertCostDef(sizes).Run(seed, 1)
}

// table1BalanceDef (E4) regenerates the "Balanced?" column: the skew of
// directory load. For Tapestry we report the max/mean ratio of object
// pointers and of root assignments across nodes; for the central directory
// the answer is structurally "no" (one node absorbs everything).
func table1BalanceDef(n, objects int) Def {
	d := Def{
		Name: "Table1Balance",
		Table: Table{
			Title:  "Table 1 / Balanced? column — directory-load skew (max/mean)",
			Note:   "1.0 is perfect balance; the central directory concentrates 100% of load on one node",
			Header: []string{"system", "metric", "max/mean", "verdict"},
		},
	}
	d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("n=%d", n), Run: func(seed int64, t *Table) {
		rng := subRNG(seed, "workload")
		tap := buildTapestry(ringSpace(n), n, defaultTapConfig(), subSeed(seed, "build"), false)
		place := workload.UniformPlacement(objects, 1, n, rng)
		publishTapestry(tap, place)
		ptrs := make([]int, len(tap.nodes))
		roots := make([]int, len(tap.nodes))
		for i, node := range tap.nodes {
			ptrs[i] = node.PointerCount()
			roots[i] = node.RootCount()
		}
		ptrSkew := stats.LoadBalance(ptrs)
		rootSkew := stats.LoadBalance(roots)
		t.AddRow("tapestry", fmt.Sprintf("object pointers (%d objects, n=%d)", objects, n), ptrSkew, verdict(ptrSkew))
		t.AddRow("tapestry", "root assignments", rootSkew, verdict(rootSkew))
		// Central directory: all load on one server by construction.
		t.AddRow("central directory", "directory entries", float64(n), "no (single point)")
	}})
	return d
}

// Table1Balance (E4) — serial wrapper over table1BalanceDef.
func Table1Balance(n, objects int, seed int64) Table {
	return table1BalanceDef(n, objects).Run(seed, 1)
}

func verdict(skew float64) string {
	if skew < 20 {
		return "yes"
	}
	return "no"
}
