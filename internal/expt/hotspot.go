package expt

import (
	"fmt"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/overlay"
	"tapestry/internal/stats"
	"tapestry/internal/workload"
)

// E-hotspot: the hot-object serving layer under a Zipf query storm.
//
// The paper's Observation 1 says queries for nearby objects are satisfied
// near the client — but for a *popular* object, every query whose path does
// not intersect the publish path early still funnels into the root and its
// last-hop neighbors, recreating in miniature the load concentration the
// centralized-directory strawman is criticized for. This experiment drives
// identically-seeded twin meshes (locate-path cache off vs on) plus the
// directory baseline through the same Zipf(s=1.2) query mix and reports,
// per system: availability, mean hops, mean stretch (distance traveled over
// the distance to the nearest replica), per-node query-load concentration
// (max/mean and p99 of messages delivered per node during the query phase),
// the cache hit rate, and the count of abnormally-terminated queries
// (LocateResult.Exhausted — asserted zero by the acceptance test).
//
// Determinism: each cell is serial and builds every system from the same
// derived sub-seeds, so output is byte-identical for any -workers value and
// the cache-off twin is bit-identical to a build without the serving layer.

// hotspotCacheCap is the per-node LRU capacity of the cache-on twin.
const hotspotCacheCap = 128

// hotspotRun aggregates one system's pass over the query mix.
type hotspotRun struct {
	System    string
	Found     stats.Ratio
	Hops      stats.Summary
	Stretch   stats.Summary
	Load      stats.Summary // messages delivered per overlay node (query phase only)
	HitRate   float64       // cache hits / locates; -1 when not applicable
	Exhausted int
}

// LoadMaxMean is the load-concentration ratio: the busiest node's query-phase
// message load over the mean node's.
func (r hotspotRun) LoadMaxMean() float64 {
	if r.Load.N() == 0 || r.Load.Mean() == 0 {
		return 0
	}
	return r.Load.Max() / r.Load.Mean()
}

// runHotspotCell builds the three systems and drives the shared workload,
// returning runs in presentation order: tapestry cache-off, cache-on,
// directory.
func runHotspotCell(seed int64, n, objects, queries int) []hotspotRun {
	bseed := subSeed(seed, "build")
	space := ringSpace(n)

	cfgOff := defaultTapConfig()
	cfgOn := defaultTapConfig()
	cfgOn.LocateCacheCap = hotspotCacheCap

	tapOff := buildTapestry(space, n, cfgOff, bseed, false)
	tapOn := buildTapestry(space, n, cfgOn, bseed, false)
	// The directory baseline lives at the same client addresses, built
	// through the overlay registry (its server takes the first free point).
	tapAddrs := make([]netsim.Addr, len(tapOff.nodes))
	for i, node := range tapOff.nodes {
		tapAddrs[i] = node.Addr()
	}
	dir := buildOverlay("directory", space, tapAddrs, overlay.Config{Seed: bseed})

	// Shared placement: `objects` objects with two replicas each, published
	// identically in every system.
	prng := subRNG(seed, "place")
	place := workload.UniformPlacement(objects, 2, n, prng)
	guids := make([]ids.ID, objects)
	for i, name := range place.Names {
		guids[i] = exptSpec.Hash(name)
		for _, s := range place.Servers[i] {
			if err := tapOff.nodes[s].Publish(guids[i], nil); err != nil {
				panic(err)
			}
			if err := tapOn.nodes[s].Publish(guids[i], nil); err != nil {
				panic(err)
			}
			dir.publish(s, name)
		}
	}

	mix := workload.ZipfQueries(queries, n, objects, 1.2, subRNG(seed, "queries"))

	// nearestReplica[oi][ci] is too big to precompute; resolve per query.
	nearest := func(ci, oi int) float64 {
		best := -1.0
		for _, s := range place.Servers[oi] {
			d := tapOff.net.Distance(tapOff.nodes[ci].Addr(), tapOff.nodes[s].Addr())
			if best < 0 || d < best {
				best = d
			}
		}
		return best
	}

	runTap := func(label string, env tapEnv) hotspotRun {
		r := hotspotRun{System: label, HitRate: -1}
		env.net.EnableLoadTracking()
		// Load concentration is measured on the LOCATION layer: the final
		// serve RPC delivered to the replica that answered is content traffic
		// every system pays identically (a fetch must reach a replica), so it
		// is subtracted — otherwise the hot object's replicas dominate `max`
		// in every system and mask what routing concentrates.
		served := map[netsim.Addr]int64{}
		for q := range mix.Clients {
			ci, oi := mix.Clients[q], mix.Objects[q]
			var cost netsim.Cost
			res := env.nodes[ci].Locate(guids[oi], &cost)
			r.Found.Observe(res.Found)
			if res.Exhausted {
				r.Exhausted++
			}
			if !res.Found {
				continue
			}
			served[res.ServerAddr]++
			r.Hops.AddInt(res.Hops)
			if direct := nearest(ci, oi); direct > 0 {
				r.Stretch.Add(cost.Distance() / direct)
			}
		}
		for _, node := range env.mesh.Nodes() {
			r.Load.AddInt(int(env.net.LoadAt(node.Addr()) - served[node.Addr()]))
		}
		if hits, misses := env.mesh.LocateCacheStats(); hits+misses > 0 {
			r.HitRate = float64(hits) / float64(hits+misses)
		}
		return r
	}

	runs := []hotspotRun{
		runTap("tapestry", tapOff),
		runTap("tapestry+cache", tapOn),
	}

	// Directory baseline: every query pays a round trip to the one server.
	dr := hotspotRun{System: "directory", HitRate: -1}
	dir.proto.Net().EnableLoadTracking()
	dirServed := map[netsim.Addr]int64{}
	for q := range mix.Clients {
		ci, oi := mix.Clients[q], mix.Objects[q]
		res, cost := dir.locate(ci, place.Names[oi])
		dr.Found.Observe(res.Found)
		if !res.Found {
			continue
		}
		dirServed[res.Server]++
		dr.Hops.AddInt(res.Hops)
		if direct := nearest(ci, oi); direct > 0 {
			dr.Stretch.Add(cost.Distance() / direct)
		}
	}
	for _, a := range tapAddrs {
		dr.Load.AddInt(int(dir.proto.Net().LoadAt(a) - dirServed[a]))
	}
	// The directory server is not a client address; fold its load in
	// explicitly — it is the hotspot the baseline exists to exhibit.
	if server, ok := overlay.DirectoryServer(dir.proto); ok {
		dr.Load.AddInt(int(dir.proto.Net().LoadAt(server)))
	}
	runs = append(runs, dr)
	return runs
}

// hotspotDef (E-hotspot) runs the Zipf hotspot scenario at half and full
// scale. One cell per scale: the three systems of a cell must share one
// derived seed (identical twins), and the load statistics aggregate over a
// whole query phase.
func hotspotDef(n, objects, queries int) Def {
	d := Def{
		Name: "HotObjects",
		Table: Table{
			Title: "E-hotspot: Zipf query storm vs the serving layer (locate-path cache)",
			Note: fmt.Sprintf("zipf s=1.2, 2 replicas/object, cache cap %d; load = location-layer msgs/node (content serve hops excluded)",
				hotspotCacheCap),
			Header: []string{"n", "system", "found", "mean hops", "mean stretch",
				"load max/mean", "load p99", "cache hit %", "exhausted"},
		},
	}
	type cellParams struct{ n, objects, queries int }
	cells := []cellParams{
		{n / 2, objects / 2, queries / 2},
		{n, objects, queries},
	}
	for _, cp := range cells {
		cp := cp
		d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("n=%d", cp.n), Run: func(seed int64, t *Table) {
			for _, r := range runHotspotCell(seed, cp.n, cp.objects, cp.queries) {
				hit := "-"
				if r.HitRate >= 0 {
					hit = trimFloat(100 * r.HitRate)
				}
				t.AddRow(cp.n, r.System, r.Found.String(), r.Hops.Mean(), r.Stretch.Mean(),
					r.LoadMaxMean(), r.Load.Quantile(0.99), hit, r.Exhausted)
			}
		}})
	}
	return d
}

// Hotspot (E-hotspot) — serial wrapper over hotspotDef.
func Hotspot(n, objects, queries int, seed int64) Table {
	return hotspotDef(n, objects, queries).Run(seed, 1)
}
