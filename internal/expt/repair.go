package expt

import (
	"fmt"

	"tapestry/internal/core"
	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/stats"
)

// E-repair: repair quality under failures. The paper's dynamic-network
// guarantees (§4.2/Theorem 3, §5.2) assume neighbor tables are rebuilt from
// the *closest* qualifying nodes. This experiment kills a slice of the mesh,
// lets every survivor sweep-and-repair, and checks each refilled slot
// against an oracle scan of the whole live population: did repair install
// the true closest candidate? The legacy informant-scan heuristic (the
// pre-engine repair path, kept as core.RepairScan) runs on an identically
// seeded twin mesh as the baseline row.

// repairStats aggregates one scheme's run.
type repairStats struct {
	Scheme     core.RepairScheme
	Holes      int // slots emptied by the failures
	Refillable int // of those, slots some live candidate exists for
	Refilled   int // refillable slots that hold at least one entry again
	Matched    int // refilled slots whose primary is oracle-closest
	P1         int // Property 1 violations after the sweep
	RepairMsgs int // messages spent by the sweeps (probe + repair traffic)
	LocateOK   stats.Ratio
	Stretch    stats.Summary
}

// MatchFrac is the fraction of refilled holes that got the oracle-closest
// candidate as primary.
func (r repairStats) MatchFrac() float64 {
	if r.Refilled == 0 {
		return 1
	}
	return float64(r.Matched) / float64(r.Refilled)
}

// oracleSlotClosest returns the distance of the closest live qualifying node
// for slot (level, digit) of x, and whether any exists.
func oracleSlotClosest(m *core.Mesh, x *core.Node, level int, digit ids.Digit) (float64, bool) {
	best, found := 0.0, false
	for _, peer := range m.Nodes() {
		if peer.ID().Equal(x.ID()) {
			continue
		}
		if ids.CommonPrefixLen(x.ID(), peer.ID()) < level || peer.ID().Digit(level) != digit {
			continue
		}
		d := m.Net().Distance(x.Addr(), peer.Addr())
		if !found || d < best {
			best, found = d, true
		}
	}
	return best, found
}

// runRepairScheme builds a mesh (identically for every scheme given the same
// seed), kills non-server nodes, sweeps every survivor, and measures repair
// quality against the oracle plus post-churn availability and stretch.
func runRepairScheme(scheme core.RepairScheme, n, kills, queries int, seed int64) repairStats {
	cfg := defaultTapConfig()
	cfg.Repair = scheme
	env := buildTapestry(ringSpace(n), n, cfg, subSeed(seed, "build"), true)
	m := env.mesh
	rng := subRNG(seed, "workload")

	// Publish objects from rng-chosen servers (kept alive: their departure
	// would measure replica loss, not repair quality).
	objects := 16
	guids := make([]ids.ID, objects)
	serverIdx := make([]int, objects)
	servers := map[string]bool{}
	for i := range guids {
		guids[i] = exptSpec.Hash(fmt.Sprintf("repair-%d", i))
		serverIdx[i] = rng.Intn(len(env.nodes))
		if err := env.nodes[serverIdx[i]].Publish(guids[i], nil); err != nil {
			panic(err)
		}
		servers[env.nodes[serverIdx[i]].ID().String()] = true
	}

	// Victims: kills distinct non-servers, drawn by the shared rng stream so
	// every scheme kills the same nodes. The kill count is capped at the
	// eligible population — rejection sampling over zero eligibles would
	// never terminate.
	eligible := len(env.nodes) - len(servers)
	if kills > eligible {
		kills = eligible
	}
	victims := map[string]bool{}
	var victimNodes []*core.Node
	for len(victimNodes) < kills {
		cand := env.nodes[rng.Intn(len(env.nodes))]
		key := cand.ID().String()
		if servers[key] || victims[key] {
			continue
		}
		victims[key] = true
		victimNodes = append(victimNodes, cand)
	}

	// Predict the holes: slots of survivors whose every entry is a victim
	// become empty the moment the corpses are swept out.
	type holeRef struct {
		node  *core.Node
		level int
		digit ids.Digit
	}
	var holes []holeRef
	for _, x := range m.Nodes() {
		if victims[x.ID().String()] {
			continue
		}
		t := x.Table()
		for l := 0; l < t.Levels(); l++ {
			for d := 0; d < t.Base(); d++ {
				set := t.Set(l, ids.Digit(d))
				if len(set) == 0 {
					continue
				}
				all := true
				for _, e := range set {
					if !victims[e.ID.String()] {
						all = false
						break
					}
				}
				if all {
					holes = append(holes, holeRef{x, l, ids.Digit(d)})
				}
			}
		}
	}

	for _, v := range victimNodes {
		m.Fail(v)
	}
	var repairCost netsim.Cost
	for _, x := range m.Nodes() {
		x.SweepDead(&repairCost)
	}

	st := repairStats{Scheme: scheme, Holes: len(holes), RepairMsgs: repairCost.Messages()}
	for _, h := range holes {
		best, ok := oracleSlotClosest(m, h.node, h.level, h.digit)
		if !ok {
			continue // a legitimate hole now: no qualifying node survives
		}
		st.Refillable++
		set := h.node.Table().Set(h.level, h.digit)
		if len(set) == 0 {
			continue
		}
		st.Refilled++
		if set[0].Distance <= best+1e-9 {
			st.Matched++
		}
	}
	st.P1 = len(m.AuditProperty1())

	// Republish (the soft-state epoch) so objects rooted at corpses recover,
	// then measure availability and stretch from random vantage points.
	m.RunMaintenanceEpoch(nil)
	nodes := m.Nodes() // membership is static for the whole query phase
	for q := 0; q < queries; q++ {
		oi := rng.Intn(objects)
		client := nodes[rng.Intn(len(nodes))]
		server := env.nodes[serverIdx[oi]]
		if client.ID().Equal(server.ID()) {
			continue
		}
		var c netsim.Cost
		res := client.Locate(guids[oi], &c)
		st.LocateOK.Observe(res.Found)
		if res.Found {
			if direct := env.net.Distance(client.Addr(), server.Addr()); direct > 0 {
				st.Stretch.Add(c.Distance() / direct)
			}
		}
	}
	return st
}

// repairQualityDef (E-repair) runs the failure/repair scenario once per
// repair scheme — identical twin meshes, workloads and kill lists — and
// reports repair quality against the oracle scan, repair traffic, and
// post-churn availability and stretch. One cell: the two schemes must share
// one derived seed to stay comparable, and the oracle scan aggregates over
// the whole mesh.
func repairQualityDef(n, kills, queries int) Def {
	d := Def{
		Name: "RepairQuality",
		Table: Table{
			Title:  "Repair quality after failures (E-repair; §4.2 engine vs legacy scan)",
			Note:   "match = refilled hole whose primary is the oracle-closest live candidate",
			Header: []string{"repair", "holes", "refillable", "refilled", "matched", "match %", "P1 viol", "repair msgs", "locate success", "mean stretch"},
		},
	}
	d.Cells = append(d.Cells, Cell{Label: fmt.Sprintf("n=%d kills=%d", n, kills), Run: func(seed int64, t *Table) {
		for _, scheme := range []core.RepairScheme{core.RepairScan, core.RepairNearest} {
			st := runRepairScheme(scheme, n, kills, queries, seed)
			matchPct := "-" // nothing refilled: a 100% would be vacuous
			if st.Refilled > 0 {
				matchPct = trimFloat(100 * st.MatchFrac())
			}
			t.AddRow(st.Scheme.String(), st.Holes, st.Refillable, st.Refilled, st.Matched,
				matchPct, st.P1, st.RepairMsgs, st.LocateOK.String(), st.Stretch.Mean())
		}
	}})
	return d
}

// RepairQuality (E-repair) — serial wrapper over repairQualityDef.
func RepairQuality(n, kills, queries int, seed int64) Table {
	return repairQualityDef(n, kills, queries).Run(seed, 1)
}
