package expt

import (
	"fmt"

	"tapestry/internal/core"
	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/stats"
	"tapestry/internal/workload"
)

// planetSpec narrows the default 8-digit IDs to 7: at 10^5 nodes the
// populated prefix levels stop well short of either bound, and the slimmer
// tables keep the full mesh comfortably in memory.
var planetSpec = ids.Spec{Base: 16, Digits: 7}

const (
	planetSample   = 8      // candidates drawn per slot by the sampled builder
	planetEpochLen = 100.0  // virtual-time units per epoch
	planetService  = 0.0005 // per-message receiver service time (inbound queue)
	planetMaintDiv = 64     // nodes/planetMaintDiv maintenance ops per epoch
)

// planetDef (E-planet) is the planetary-scale scenario the discrete-event
// engine exists for: a 100k-node overlay over a uniform point cloud, built
// with the sampled static constructor and loaded with 10^6 objects, then
// driven through epochs in ONE virtual-time run where Poisson churn,
// staggered per-node soft-state maintenance and a Zipf query mix all
// interleave at message granularity on the shared event clock. Every
// operation is a suspendable event handler: a join can observe a gateway
// that crashes mid-handshake, a locate can race a republish, and the whole
// run replays bit-identically from its seed — for any -workers value,
// because the only parallelism (the sampled build) is worker-invariant and
// the engine resumes exactly one operation at a time.
//
// Latency columns are virtual time: each locate's span is stamped by the
// event clock at its first and last message (netsim.Cost.VirtualLatency), so
// the percentiles reflect metric-space distances plus inbound-queue waits,
// not host wall-clock.
func planetDef(nodes, objects, epochs, queries, buildWorkers int) Def {
	d := Def{
		Name: "Planet",
		Table: Table{
			Title: "E-planet: virtual-time run at planetary scale (event-driven engine)",
			Note:  "interleaved Poisson churn, staggered maintenance and Zipf queries on one deterministic event clock",
			Header: []string{"nodes", "epoch", "live", "joins", "jfail", "leaves", "crashes",
				"maint", "maint msgs", "avail", "mean hops", "vlat p50", "vlat p95", "vlat p99", "clock", "events"},
		},
	}
	d.Cells = append(d.Cells, Cell{
		Label: fmt.Sprintf("nodes=%d", nodes),
		Run: func(seed int64, t *Table) {
			runPlanetCell(seed, t, nodes, objects, epochs, queries, buildWorkers)
		},
	})
	return d
}

// Planet (E-planet) — serial wrapper over planetDef.
func Planet(nodes, objects, epochs, queries int, seed int64) Table {
	return planetDef(nodes, objects, epochs, queries, 0).Run(seed, 1)
}

func runPlanetCell(seed int64, t *Table, baseNodes, objects, epochs, queries, buildWorkers int) {
	// Substrate: a uniform cloud sized with headroom for churn arrivals.
	// Distances are O(1), so no n×n matrix and no row cache to tune.
	trng := subRNG(seed, "topology")
	hostsN := baseNodes + baseNodes/4 + 64
	space := metric.NewUniformCloud(hostsN, trng)
	net := netsim.New(space)
	hosts := make([]netsim.Addr, hostsN)
	for i, a := range trng.Perm(hostsN) {
		hosts[i] = netsim.Addr(a)
	}

	cfg := defaultTapConfig()
	cfg.Spec = planetSpec
	cfg.Seed = subSeed(seed, "sample") // drives the sampled builder's draws
	cfg.PointerTTL = int64(epochs) + 2 // pointers outlive the run; refresh is load, not correctness

	brng := subRNG(seed, "build")
	parts := core.StaticParticipants(cfg.Spec, hosts[:baseNodes], brng)
	m, err := core.BuildStaticSampled(net, cfg, parts, planetSample, buildWorkers)
	if err != nil {
		panic(err)
	}

	// Object population, published in direct-call mode before the engine
	// attaches: setup traffic takes zero virtual time by design.
	wrng := subRNG(seed, "workload")
	members := m.Nodes()
	guids := make([]ids.ID, objects)
	for i := range guids {
		guids[i] = cfg.Spec.Hash(fmt.Sprintf("planet-%07d", i))
		if err := members[wrng.Intn(len(members))].Publish(guids[i], nil); err != nil {
			panic(err)
		}
	}

	e := netsim.NewEngine(subSeed(seed, "engine"))
	e.SetServiceTime(planetService)
	net.AttachEngine(e)

	// Per-epoch accumulators, attributed by scheduling epoch and written only
	// from engine ops — which run one at a time, so plain fields suffice.
	// Rows are emitted after Run: an op scheduled late in an epoch may finish
	// (and count) past the boundary snapshot, and must not be lost.
	type epochAcc struct {
		joins, jfail, leaves, crashes, maint int
		maintMsgs                            int // sweep + batched republish traffic
		avail                                stats.Ratio
		hops, vlat                           stats.Summary
		live                                 int     // members at the boundary snapshot
		clock                                float64 // virtual clock at the snapshot
		events                               uint64  // cumulative engine events at the snapshot
	}
	acc := make([]epochAcc, epochs)

	crng := subRNG(seed, "churn")
	joinMean := float64(baseNodes) / 256
	sched := workload.PoissonChurn(epochs, baseNodes, baseNodes/2,
		joinMean, joinMean/3, joinMean/3, crng)

	// The entire run is scheduled up front; every random decision is drawn
	// here, so the event heap's contents are a pure function of the seed.
	// Member-set indices resolve at execution time against the live slice.
	nextHost := baseNodes
	drawnIDs := map[ids.ID]bool{}
	maintPos := 0
	for ep := range sched {
		ep := ep
		t0 := float64(ep) * planetEpochLen
		// Churn lands in the first 80% of the epoch so multi-message ops
		// (joins walk many hops of virtual time) mostly settle before the
		// boundary snapshot; stragglers still count via the accumulators.
		for _, op := range sched[ep] {
			at := t0 + 1 + crng.Float64()*(planetEpochLen*0.8)
			if op.Join {
				if nextHost >= len(hosts) {
					continue
				}
				addr := hosts[nextHost]
				nextHost++
				id := cfg.Spec.Random(crng)
				for drawnIDs[id] || m.NodeByID(id) != nil {
					id = cfg.Spec.Random(crng)
				}
				drawnIDs[id] = true
				gwDraw := crng.Intn(1 << 30)
				e.At(at, func() {
					gw := members[gwDraw%len(members)]
					n, _, err := m.Join(gw, id, addr)
					if err != nil {
						// Delivery-time liveness at work: the gateway (or a
						// contact) died while this join was in flight.
						acc[ep].jfail++
						return
					}
					members = append(members, n)
					acc[ep].joins++
				})
			} else {
				crash := op.Crash
				vDraw := op.Victim
				e.At(at, func() {
					if len(members) <= baseNodes/2 {
						return // population floor
					}
					vi := vDraw % len(members)
					victim := members[vi]
					// Remove before the protocol runs: no later op may pick a
					// node that is already mid-departure.
					members[vi] = members[len(members)-1]
					members = members[:len(members)-1]
					if crash {
						m.Fail(victim)
						acc[ep].crashes++
					} else if victim.Leave(nil) == nil {
						acc[ep].leaves++
					}
				})
			}
		}

		// Staggered soft-state maintenance: 1/planetMaintDiv of the overlay
		// per epoch, one op per node so each sweep+republish interleaves with
		// everything else instead of monopolising the virtual timeline.
		window := baseNodes/planetMaintDiv + 1
		for w := 0; w < window; w++ {
			at := t0 + 5 + float64(w)*(planetEpochLen*0.8)/float64(window)
			e.At(at, func() {
				n := members[maintPos%len(members)]
				maintPos++
				var mc netsim.Cost
				n.SweepDead(&mc)
				n.RepublishAll(&mc) // batched: one message per distinct next hop
				acc[ep].maint++
				acc[ep].maintMsgs += mc.Messages()
			})
		}

		// Zipf query mix, spread across the epoch.
		mix := workload.ZipfQueries(queries, 1<<30, objects, 1.2, wrng)
		for q := 0; q < queries; q++ {
			cDraw := mix.Clients[q]
			guid := guids[mix.Objects[q]]
			at := t0 + 0.5 + wrng.Float64()*(planetEpochLen*0.9)
			e.At(at, func() {
				client := members[cDraw%len(members)]
				var cost netsim.Cost
				res := client.Locate(guid, &cost)
				acc[ep].avail.Observe(res.Found)
				if res.Found {
					acc[ep].hops.AddInt(res.Hops)
					acc[ep].vlat.Add(cost.VirtualLatency())
				}
			})
		}

		// Boundary snapshot (population, clock, cumulative events).
		e.At(t0+planetEpochLen, func() {
			acc[ep].live = len(members)
			acc[ep].clock = e.Now()
			acc[ep].events = e.Stats().Events
		})
	}

	e.Run()

	for ep := range acc {
		a := &acc[ep]
		p50, p95, p99 := 0.0, 0.0, 0.0
		if a.vlat.N() > 0 {
			p50, p95, p99 = a.vlat.Quantile(0.5), a.vlat.Quantile(0.95), a.vlat.Quantile(0.99)
		}
		t.AddRow(baseNodes, ep+1, a.live, a.joins, a.jfail, a.leaves, a.crashes,
			a.maint, a.maintMsgs, a.avail.String(), a.hops.Mean(), p50, p95, p99,
			a.clock, fmt.Sprint(a.events))
	}
}
