package expt

import "testing"

// TestChaosReplicationSurvivesPartition pins the PR's headline acceptance
// claim: under the identically seeded healing-partition scenario, the full
// availability tier (r=4 salted roots, k=3 replicas) locates strictly more
// of the partitioned-phase queries than the unreplicated baseline —
// region-diversified replicas leave copies on the minority side of a
// region-aligned cut, and multi-root probing reaches them.
func TestChaosReplicationSurvivesPartition(t *testing.T) {
	const n, objects, queries, stampede = 64, 32, 192, 12
	var tbl Table
	rows := runChaosCell(7, &tbl, "healing-partition", n, objects, queries, stampede,
		[]string{"tapestry"})

	pick := func(config, phase string) (chaosRow, bool) {
		for _, r := range rows {
			if r.config == config && r.phase == phase {
				return r, true
			}
		}
		return chaosRow{}, false
	}
	lo, ok1 := pick("tapestry r=1 k=1", "partitioned")
	hi, ok2 := pick("tapestry r=4 k=3", "partitioned")
	if !ok1 || !ok2 {
		t.Fatalf("partitioned-phase rows missing: %v", rows)
	}
	if lo.queries != queries || hi.queries != queries {
		t.Fatalf("partitioned-phase query counts %d/%d, want %d (shared-timeline contract broken)",
			lo.queries, hi.queries, queries)
	}
	if lo.found == queries {
		t.Fatalf("baseline lost nothing under the partition — the scenario exercises nothing:\n%s",
			tbl.String())
	}
	if hi.found <= lo.found {
		t.Fatalf("r=4,k=3 located %d/%d under the partition vs %d/%d at r=1,k=1 — replication bought nothing:\n%s",
			hi.found, queries, lo.found, queries, tbl.String())
	}
	// Both configurations must recover once the cut heals and maintenance runs.
	for _, cfg := range []string{"tapestry r=1 k=1", "tapestry r=4 k=3"} {
		base, _ := pick(cfg, "baseline")
		part, _ := pick(cfg, "partitioned")
		heal, ok := pick(cfg, "healed")
		if !ok {
			t.Fatalf("%s: healed phase missing", cfg)
		}
		if base.found != base.queries {
			t.Errorf("%s: baseline %d/%d, want flawless", cfg, base.found, base.queries)
		}
		if heal.found <= part.found {
			t.Errorf("%s: healed phase located %d/%d, no better than partitioned %d/%d",
				cfg, heal.found, heal.queries, part.found, part.queries)
		}
	}
}

// TestChaosTwinReplay pins E-chaos determinism: two same-seed runs of the
// whole suite are byte-identical (the workers knob never reaches inside a
// cell, so this plus the runner's cell-order merge is the -workers
// invariance pinned by CI).
func TestChaosTwinReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite twin replay is the long pole; -short skips it")
	}
	run := func() string {
		return chaosDef(48, 24, 96, 8, nil, nil).Run(17, 1).String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("E-chaos twin runs diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestChaosConfigSelection pins the -protocol filter and scenario
// validation surface used by the CLIs.
func TestChaosConfigSelection(t *testing.T) {
	all := chaosConfigs(nil)
	if len(all) < 6 {
		t.Fatalf("default configs = %d, want every protocol plus both tapestry tiers: %v", len(all), all)
	}
	taps := chaosConfigs([]string{"tapestry"})
	if len(taps) != 2 {
		t.Fatalf("tapestry-only selection = %v, want both replication tiers", taps)
	}
	if got := chaosConfigs([]string{"chord"}); len(got) != 1 || got[0].protocol != "chord" {
		t.Fatalf("chord-only selection = %v", got)
	}
	if err := ValidateScenarios([]string{"blackout", "healing-partition"}); err != nil {
		t.Fatalf("valid scenarios rejected: %v", err)
	}
	if err := ValidateScenarios([]string{"no-such-scenario"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
