package expt

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"tapestry/internal/stats"
)

// Def is a runnable experiment definition: a table skeleton (title, note,
// header) plus independent cells. Cells are the unit of parallelism — each
// one builds its own networks from its own derived seed, so any worker may
// run any cell and the merged table is identical to a serial run.
type Def struct {
	Name  string // seed-derivation key; matches the registry Name
	Table Table  // skeleton: Title, Note, Header (Rows must be empty)
	Cells []Cell
}

// Cell is one independent slice of an experiment (typically one parameter
// value, e.g. one network size of a sweep). Run receives a seed derived from
// (run seed, experiment name, cell index) and appends this cell's rows to t.
type Cell struct {
	Label string // human-readable, for error attribution
	Run   func(seed int64, t *Table)
}

// cellSeed derives the deterministic RNG stream for cell i of d under the
// given run seed. This replaces the old ad-hoc seed+7/seed*3 offsets. The
// derivation depends only on (runSeed, d.Name, i), so pooling cells of many
// experiments together cannot change any experiment's streams.
func (d Def) cellSeed(runSeed int64, i int) int64 {
	return stats.StreamSeed(runSeed, d.Name, i)
}

// runCell executes cell i with panic attribution: experiments report
// impossible states by panicking, and the wrapped message names the
// experiment and cell identically on the serial and parallel paths.
func (d Def) runCell(seed int64, i int) (rows [][]string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("expt: %s cell %q: %v", d.Name, d.Cells[i].Label, r)
		}
	}()
	sub := Table{Header: d.Table.Header}
	d.Cells[i].Run(d.cellSeed(seed, i), &sub)
	return sub.Rows, nil
}

// Run executes every cell of the definition across the given number of
// workers (0 or less means GOMAXPROCS) and merges the rows in cell order.
// Output is byte-identical for any worker count: determinism comes from the
// per-cell seeds, ordering from the merge.
func (d Def) Run(seed int64, workers int) Table {
	results, err := runPool(workers, len(d.Cells), func(i int) ([][]string, error) {
		return d.runCell(seed, i)
	})
	if err != nil {
		panic(err)
	}
	t := d.Table
	for _, r := range results {
		t.Rows = append(t.Rows, r...)
	}
	return t
}

// runPool fans jobs 0..n-1 across a worker pool and returns their results
// in job order, or an error. The first failure aborts promptly: jobs not yet
// started are skipped rather than ground through (a panicking experiment or
// a dead output sink should not cost the rest of the suite's minutes). The
// reported error is the earliest by job order among those that actually ran.
func runPool(workers, n int, job func(i int) ([][]string, error)) ([][][]string, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([][][]string, n)
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = job(i)
			if errs[i] != nil {
				break
			}
		}
	} else {
		var aborted atomic.Bool
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					if aborted.Load() {
						continue // drain the queue without running
					}
					out[i], errs[i] = job(i)
					if errs[i] != nil {
						aborted.Store(true)
					}
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Runner executes registered experiments with a fixed seed and worker
// count — the engine behind cmd/benchtables and cmd/tapestry-sim.
type Runner struct {
	Seed    int64
	Workers int
	Params  Params
}

// Result pairs an experiment's stable ID with its finished table.
type Result struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	Table Table  `json:"table"`
}

// RunMatching builds and runs every experiment matching pattern (see Match)
// and returns the results in presentation order.
func (r Runner) RunMatching(pattern string) ([]Result, error) {
	var out []Result
	err := r.Stream(pattern, func(res Result) error {
		out = append(out, res)
		return nil
	})
	return out, err
}

// RunAndEmit is the one-call CLI backend: it validates the format before
// any experiment runs (a typo'd -format must not cost a full suite run),
// then streams tables as they finish or collects first for the whole-stream
// formats (JSON is one array; CSV pads to the widest table).
func (r Runner) RunAndEmit(w io.Writer, pattern, format string) error {
	switch format {
	case FormatTable, "":
		return r.Stream(pattern, func(res Result) error {
			return Emit(w, FormatTable, []Result{res})
		})
	case FormatJSON, FormatCSV:
		results, err := r.RunMatching(pattern)
		if err != nil {
			return err
		}
		return Emit(w, format, results)
	default:
		return fmt.Errorf("expt: unknown format %q (want table, json or csv)", format)
	}
}

// Stream runs every matching experiment over ONE shared worker pool — so
// cells of single-cell experiments don't serialize the suite — and calls
// emit with each finished Result in presentation order, as soon as the
// experiment and all experiments before it have completed. Determinism is
// untouched by the pooling: cell seeds depend only on (seed, name, index).
func (r Runner) Stream(pattern string, emit func(Result) error) error {
	exps, err := Match(pattern)
	if err != nil {
		return err
	}
	defs := make([]Def, len(exps))
	type ref struct{ exp, cell int }
	var jobs []ref
	for i, e := range exps {
		defs[i] = e.Make(r.Params)
		for c := range defs[i].Cells {
			jobs = append(jobs, ref{i, c})
		}
	}

	rows := make([][][][]string, len(exps))
	for i := range defs {
		rows[i] = make([][][]string, len(defs[i].Cells))
	}
	remaining := make([]int, len(exps))
	for i := range defs {
		remaining[i] = len(defs[i].Cells)
	}

	var mu sync.Mutex
	next := 0 // first experiment not yet emitted
	var emitErr error
	// flushLocked emits every leading experiment whose cells all finished.
	flushLocked := func() {
		for next < len(exps) && remaining[next] == 0 && emitErr == nil {
			t := defs[next].Table
			for _, rr := range rows[next] {
				t.Rows = append(t.Rows, rr...)
			}
			emitErr = emit(Result{ID: exps[next].ID, Name: exps[next].Name, Table: t})
			next++
		}
	}

	_, err = runPool(r.Workers, len(jobs), func(j int) ([][]string, error) {
		ref := jobs[j]
		got, err := defs[ref.exp].runCell(r.Seed, ref.cell)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		rows[ref.exp][ref.cell] = got
		remaining[ref.exp]--
		flushLocked()
		failed := emitErr
		mu.Unlock()
		// A dead sink (e.g. a closed pipe) fails the job so runPool aborts
		// the remaining cells instead of grinding out unprintable results.
		return nil, failed
	})
	if err != nil {
		return err
	}
	return emitErr
}
