package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
	"tapestry/internal/wire"
)

// This file is the node-to-node message seam. Every remote interaction in
// the package goes through Mesh.invoke / Mesh.oneWayMsg with a typed
// internal/wire message, and a pluggable Transport decides how that message
// travels:
//
//   - TransportDirect (default): the historical shared-memory path. Costs are
//     charged via netsim exactly as before and the peer-side work runs as a
//     direct method call; behavior and simulated-cost accounting are
//     byte-identical to the pre-transport code.
//   - TransportLoopback: identical charging, but every request and response
//     round-trips through the wire codec (encode -> decode into a fresh
//     struct) before the peer sees it, so running the full test suite under
//     it proves every RPC survives serialization.
//   - TransportTCP: every message additionally crosses a real socket through
//     a per-mesh loopback listener. Simulated costs are still charged on the
//     caller (the cost model is the simulator's, not the kernel's); peer-side
//     work triggered by a handler is not charged, since a *netsim.Cost cannot
//     cross a socket. Incompatible with the virtual-time event engine, whose
//     clock only advances between simulated sends.
//
// Division of labor: messages whose peer-side effect is a state mutation or a
// data-carrying response (table-band queries, join snapshots, backpointer
// registrations, leave notifications, share offers, replica verification)
// are executed by (*Node).dispatch on the receiving node. Walk-step messages
// (RouteStep, LocateStep, McastStep, CaravanStep, ...) are dispatch no-ops:
// the walk drivers in this package perform each node's step in-process after
// the transport delivers the hop, which keeps the iterative walk structure —
// and its carefully tuned allocation behavior — intact while the messages
// themselves document and (under loopback/TCP) exercise the full wire
// protocol.

// TransportKind selects the message-transport backend of a Mesh.
type TransportKind int

const (
	// TransportAuto defers to the TAPESTRY_TRANSPORT environment variable
	// (direct | loopback | tcp), defaulting to TransportDirect.
	TransportAuto TransportKind = iota
	// TransportDirect is the in-memory direct-dispatch backend.
	TransportDirect
	// TransportLoopback round-trips every message through the wire codec.
	TransportLoopback
	// TransportTCP sends every message through a real localhost socket.
	TransportTCP
)

func (k TransportKind) String() string {
	switch k {
	case TransportAuto:
		return "auto"
	case TransportDirect:
		return "direct"
	case TransportLoopback:
		return "loopback"
	case TransportTCP:
		return "tcp"
	default:
		return fmt.Sprintf("transport(%d)", int(k))
	}
}

// ParseTransport maps a flag/environment string onto a TransportKind.
func ParseTransport(s string) (TransportKind, error) {
	switch s {
	case "", "auto":
		return TransportAuto, nil
	case "direct":
		return TransportDirect, nil
	case "loopback":
		return TransportLoopback, nil
	case "tcp":
		return TransportTCP, nil
	default:
		return TransportAuto, fmt.Errorf("core: unknown transport %q (want direct, loopback or tcp)", s)
	}
}

// transportEnv is the environment override consulted by TransportAuto.
const transportEnv = "TAPESTRY_TRANSPORT"

// resolveTransportKind folds the environment into an Auto kind.
func resolveTransportKind(k TransportKind) (TransportKind, error) {
	if k != TransportAuto {
		return k, nil
	}
	k, err := ParseTransport(os.Getenv(transportEnv))
	if err != nil {
		return TransportAuto, err
	}
	if k == TransportAuto {
		k = TransportDirect
	}
	return k, nil
}

// PeerError is the one typed error every transport backend maps a failed
// delivery onto: the host was unreachable, the overlay node is gone, the
// address hosts a different ID now, or (under TCP) the socket failed. All
// backends agree on when it is returned — a walk's failed-hop handling
// behaves identically everywhere.
type PeerError struct {
	To  route.Entry // the stale entry that was dialed
	Err error       // underlying cause (errDead, netsim.ErrUnreachable, an I/O error)
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("core: peer %v@%d unavailable: %v", e.To.ID, e.To.Addr, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// Transport delivers typed wire messages between overlay nodes. Invoke is a
// request/response exchange (hop marks a routing hop for cost accounting);
// OneWay is fire-and-forget. Both charge the simulated network, resolve the
// live peer, run its dispatch handler, and return the peer for the walk
// drivers' in-process continuation. Errors are always *PeerError.
type Transport interface {
	Kind() TransportKind
	Invoke(from netsim.Addr, to route.Entry, req, resp wire.Msg, cost *netsim.Cost, hop bool) (*Node, error)
	OneWay(from netsim.Addr, to route.Entry, msg wire.Msg, cost *netsim.Cost) (*Node, error)
	Close() error
}

// Shared field-less messages: safe for concurrent use on every backend
// because encoding and decoding them is a no-op.
var (
	msgPing      = &wire.Ping{}
	msgAck       = &wire.Ack{}
	msgReacquire = &wire.ReacquireReq{}
)

// msgFrames is a per-operation bundle of recyclable message structs. Walk
// drivers take one from the mesh pool (getFrames), fill the fields of the
// message they are about to send, and return the bundle when the operation
// completes. A bundle is never handed to a nested operation — anything that
// starts its own walk takes its own bundle — so a frame's contents are stable
// for the duration of one Invoke/OneWay call.
type msgFrames struct {
	route      wire.RouteStep
	match      wire.MatchQueryReq
	matchResp  wire.MatchQueryResp
	share      wire.ShareReq
	shareResp  wire.ShareResp
	locate     wire.LocateStep
	verify     wire.VerifyReq
	verifyResp wire.VerifyResp
	del        wire.DeleteBack
	backAdd    wire.BackAdd
	backRemove wire.BackRemove
	mcast      wire.McastStep
	notify     wire.McastNotify
	joinReq    wire.JoinSnapshotReq
	joinResp   wire.JoinSnapshotResp
	caravan    wire.CaravanStep
	leave      wire.LeaveNotify
	deleted    wire.NodeDeleted
	drop       wire.DropLinks
	local      wire.LocalStep
	fwd        wire.PtrForward
	pub        wire.PublishReq
}

func (m *Mesh) getFrames() *msgFrames {
	if f, ok := m.framePool.Get().(*msgFrames); ok {
		return f
	}
	return &msgFrames{}
}

func (m *Mesh) putFrames(f *msgFrames) { m.framePool.Put(f) }

// invoke sends a request/response pair to the entry's node via the mesh
// transport.
func (m *Mesh) invoke(from netsim.Addr, to route.Entry, req, resp wire.Msg, cost *netsim.Cost, hop bool) (*Node, error) {
	return m.tr.Invoke(from, to, req, resp, cost, hop)
}

// oneWayMsg sends a fire-and-forget message to the entry's node via the mesh
// transport.
func (m *Mesh) oneWayMsg(from netsim.Addr, to route.Entry, msg wire.Msg, cost *netsim.Cost) (*Node, error) {
	return m.tr.OneWay(from, to, msg, cost)
}

// newTransport builds the backend for a resolved (non-Auto) kind.
func newTransport(m *Mesh, k TransportKind) (Transport, error) {
	switch k {
	case TransportDirect:
		return directTransport{m}, nil
	case TransportLoopback:
		return &loopbackTransport{m: m}, nil
	case TransportTCP:
		return newTCPTransport(m)
	default:
		return nil, fmt.Errorf("core: cannot build transport %v", k)
	}
}

// dispatch applies req's peer-side effect at the target node, filling resp
// for request/response messages (resp is nil for one-ways). It runs after the
// transport has charged the exchange and resolved the live target — the same
// point where the pre-transport code performed these mutations inline at the
// call site. cost is the operation's meter on direct/loopback and nil on the
// TCP server side.
func (target *Node) dispatch(req, resp wire.Msg, cost *netsim.Cost) {
	switch q := req.(type) {
	case *wire.Ping, *wire.Ack, *wire.ReacquireReq,
		*wire.RouteStep, *wire.LocateStep, *wire.LocalStep,
		*wire.McastStep, *wire.CaravanStep, *wire.PtrForward, *wire.DeleteBack:
		// Walk steps and probes: the per-node work is performed by the
		// driving walk loop in-process (see the file comment).
	case *wire.MatchQueryReq:
		r := resp.(*wire.MatchQueryResp)
		r.Entries = r.Entries[:0]
		target.mu.Lock()
		if ids.CommonPrefixLen(target.id, q.Origin) >= q.Level {
			r.Entries = append(r.Entries, target.table.Set(q.Level, q.Digit)...)
		}
		target.mu.Unlock()
	case *wire.TableBandReq:
		r := resp.(*wire.TableBandResp)
		r.Entries = r.Entries[:0]
		target.mu.Lock()
		top := target.table.Levels()
		if q.Fold >= 0 && q.Fold < top {
			top = q.Fold
		}
		if q.Floor < top {
			// The whole [floor, top) row band is one contiguous copy under
			// the SoA layout; backpointer maps fold per level.
			r.Entries = append(r.Entries, target.table.RangeView(q.Floor, top)...)
			for l := q.Floor; l < top; l++ {
				r.Entries = target.table.AppendBacks(r.Entries, l)
			}
		}
		target.mu.Unlock()
	case *wire.ShareReq:
		resp.(*wire.ShareResp).Adopted = target.considerEntries(q.Entries, cost)
	case *wire.VerifyReq:
		target.mu.Lock()
		resp.(*wire.VerifyResp).Serves = target.published[q.GUID]
		target.mu.Unlock()
	case *wire.PublishReq:
		target.handlePublishReq(q, cost)
	case *wire.JoinSnapshotReq:
		target.joinSnapshot(q, resp.(*wire.JoinSnapshotResp), cost)
	case *wire.BackAdd:
		target.mu.Lock()
		target.table.AddBack(q.Level, q.From)
		target.mu.Unlock()
	case *wire.BackRemove:
		target.mu.Lock()
		target.table.RemoveBack(q.Level, q.ID)
		target.mu.Unlock()
	case *wire.McastNotify:
		for _, s := range q.Slots {
			target.addNeighborAndNotify(s.Level, q.Me, cost)
		}
	case *wire.LeaveNotify:
		target.onPeerLeaving(q.Leaver, q.Level, q.Replacements, cost)
	case *wire.NodeDeleted:
		target.onPeerDeleted(q.ID, cost)
	case *wire.DropLinks:
		target.mu.Lock()
		target.table.Remove(q.ID)
		target.mu.Unlock()
	default:
		panic(fmt.Sprintf("core: no dispatch handler for %T", req))
	}
}

// directTransport is the historical shared-memory path: charge, resolve,
// direct method dispatch. Zero serialization, zero allocation.
type directTransport struct{ m *Mesh }

func (t directTransport) Kind() TransportKind { return TransportDirect }

func (t directTransport) Invoke(from netsim.Addr, to route.Entry, req, resp wire.Msg, cost *netsim.Cost, hop bool) (*Node, error) {
	target, err := t.m.rpc(from, to, cost, hop)
	if err != nil {
		return nil, err
	}
	target.dispatch(req, resp, cost)
	return target, nil
}

func (t directTransport) OneWay(from netsim.Addr, to route.Entry, msg wire.Msg, cost *netsim.Cost) (*Node, error) {
	target, err := t.m.oneWay(from, to, cost)
	if err != nil {
		return nil, err
	}
	target.dispatch(msg, nil, cost)
	return target, nil
}

func (t directTransport) Close() error { return nil }

// loopbackTransport charges and resolves exactly like direct, but the request
// is encoded and decoded into a fresh struct before the peer dispatches it,
// and the response is encoded by the peer and decoded back into the caller's
// struct. A codec defect anywhere is a loud panic under the test suite rather
// than silent state corruption.
type loopbackTransport struct {
	m    *Mesh
	pool sync.Pool // *loopScratch
}

type loopScratch struct {
	buf []byte
}

func (t *loopbackTransport) Kind() TransportKind { return TransportLoopback }

func (t *loopbackTransport) getScratch() *loopScratch {
	if s, ok := t.pool.Get().(*loopScratch); ok {
		return s
	}
	return &loopScratch{}
}

// roundTrip encodes m and decodes it into a fresh struct of the same type.
func (t *loopbackTransport) roundTrip(s *loopScratch, m wire.Msg) wire.Msg {
	s.buf = wire.AppendFrame(s.buf[:0], m)
	out, n, err := wire.DecodeFrame(s.buf)
	if err != nil || n != len(s.buf) {
		panic(fmt.Sprintf("core: loopback codec round-trip of %T failed: consumed %d/%d bytes, err=%v", m, n, len(s.buf), err))
	}
	return out
}

func (t *loopbackTransport) Invoke(from netsim.Addr, to route.Entry, req, resp wire.Msg, cost *netsim.Cost, hop bool) (*Node, error) {
	target, err := t.m.rpc(from, to, cost, hop)
	if err != nil {
		return nil, err
	}
	s := t.getScratch()
	wireReq := t.roundTrip(s, req)
	wireResp := wire.New(resp.WireType())
	target.dispatch(wireReq, wireResp, cost)
	s.buf = wire.AppendFrame(s.buf[:0], wireResp)
	if _, err := wire.DecodeFrameInto(s.buf, resp); err != nil {
		panic(fmt.Sprintf("core: loopback codec response round-trip of %T failed: %v", wireResp, err))
	}
	t.pool.Put(s)
	return target, nil
}

func (t *loopbackTransport) OneWay(from netsim.Addr, to route.Entry, msg wire.Msg, cost *netsim.Cost) (*Node, error) {
	target, err := t.m.oneWay(from, to, cost)
	if err != nil {
		return nil, err
	}
	s := t.getScratch()
	wireMsg := t.roundTrip(s, msg)
	t.pool.Put(s)
	target.dispatch(wireMsg, nil, cost)
	return target, nil
}

func (t *loopbackTransport) Close() error { return nil }

// tcpTransport routes every message through a real localhost TCP listener
// owned by the mesh. The request header on a pooled connection is
//
//	[u8 kind: 0 invoke / 1 one-way][zigzag to.Addr][u8 idLen][id digits]
//	[u8 expected response type][framed request]
//
// and the reply is [u8 status: 0 ok / 1 peer gone][framed response] (invoke)
// or just the status byte (one-way — an uncharged transport-level ack that
// preserves the package's synchronous delivery semantics).
type tcpTransport struct {
	m      *Mesh
	ln     net.Listener
	conns  chan net.Conn
	closed atomic.Bool
}

func newTCPTransport(m *Mesh) (*tcpTransport, error) {
	if m.net.Engine() != nil {
		return nil, errors.New("core: the TCP transport is incompatible with the virtual-time event engine (real sockets cannot park on simulated time)")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("core: tcp transport listener: %w", err)
	}
	t := &tcpTransport{m: m, ln: ln, conns: make(chan net.Conn, 64)}
	go t.acceptLoop()
	return t, nil
}

func (t *tcpTransport) Kind() TransportKind { return TransportTCP }

func (t *tcpTransport) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go t.serveConn(conn)
	}
}

// serveConn handles one client connection for its lifetime.
func (t *tcpTransport) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var frame, out []byte
	for {
		kind, err := br.ReadByte()
		if err != nil {
			return
		}
		toAddr, err := binary.ReadVarint(br)
		if err != nil {
			return
		}
		toID, err := readWireID(br)
		if err != nil {
			return
		}
		respType, err := br.ReadByte()
		if err != nil {
			return
		}
		frame, err = wire.ReadFrame(br, frame)
		if err != nil {
			return
		}
		req, _, err := wire.DecodeFrame(frame)
		if err != nil {
			return
		}
		target := t.m.NodeAt(netsim.Addr(toAddr))
		ok := target != nil && target.id.Equal(toID)
		if ok && kind == 0 {
			target.mu.Lock()
			ok = target.state != stateDead
			target.mu.Unlock()
		}
		if !ok {
			if err := bw.WriteByte(1); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
			continue
		}
		if kind == 0 {
			resp := wire.New(wire.Type(respType))
			if resp == nil {
				return
			}
			// A *netsim.Cost cannot cross a socket: peer-side work runs
			// uncharged here (see the file comment).
			target.dispatch(req, resp, nil)
			if err := bw.WriteByte(0); err != nil {
				return
			}
			out, err = wire.WriteMsg(bw, out, resp)
			if err != nil {
				return
			}
		} else {
			target.dispatch(req, nil, nil)
			if err := bw.WriteByte(0); err != nil {
				return
			}
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// readWireID reads the codec's ID shape (u8 count + digits) from a stream.
func readWireID(br *bufio.Reader) (ids.ID, error) {
	n, err := br.ReadByte()
	if err != nil {
		return ids.ID{}, err
	}
	if n > 64 {
		return ids.ID{}, fmt.Errorf("core: tcp header id length %d", n)
	}
	buf := make([]ids.Digit, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return ids.ID{}, err
	}
	return ids.FromDigits(buf), nil
}

func (t *tcpTransport) getConn() (net.Conn, error) {
	select {
	case c := <-t.conns:
		return c, nil
	default:
		return net.Dial("tcp", t.ln.Addr().String())
	}
}

func (t *tcpTransport) putConn(c net.Conn) {
	if t.closed.Load() {
		c.Close()
		return
	}
	select {
	case t.conns <- c:
	default:
		c.Close()
	}
}

// exchange performs one header+frame request and reads the status byte,
// returning an open connection positioned before any response frame.
func (t *tcpTransport) exchange(kind byte, to route.Entry, respType wire.Type, req wire.Msg) (net.Conn, byte, error) {
	conn, err := t.getConn()
	if err != nil {
		return nil, 0, err
	}
	var e wire.Enc
	e.U8(kind)
	e.Int(int(to.Addr))
	e.ID(to.ID)
	e.U8(byte(respType))
	buf := wire.AppendFrame(e.Bytes(), req)
	if _, err := conn.Write(buf); err != nil {
		conn.Close()
		return nil, 0, err
	}
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil {
		conn.Close()
		return nil, 0, err
	}
	return conn, status[0], nil
}

func (t *tcpTransport) Invoke(from netsim.Addr, to route.Entry, req, resp wire.Msg, cost *netsim.Cost, hop bool) (*Node, error) {
	if err := t.m.net.Send(from, to.Addr, cost, hop); err != nil {
		return nil, &PeerError{To: to, Err: err}
	}
	conn, status, err := t.exchange(0, to, resp.WireType(), req)
	if err != nil {
		return nil, &PeerError{To: to, Err: err}
	}
	if status != 0 {
		t.putConn(conn)
		return nil, &PeerError{To: to, Err: errDead}
	}
	frame, err := wire.ReadFrame(conn, nil)
	if err != nil {
		conn.Close()
		return nil, &PeerError{To: to, Err: err}
	}
	if _, err := wire.DecodeFrameInto(frame, resp); err != nil {
		conn.Close()
		return nil, &PeerError{To: to, Err: err}
	}
	t.putConn(conn)
	// Response leg, charged exactly where the direct path charges it: only
	// after the peer proved live.
	_ = t.m.net.Send(to.Addr, from, cost, false)
	target := t.m.NodeAt(to.Addr)
	if target == nil || !target.id.Equal(to.ID) {
		return nil, &PeerError{To: to, Err: errDead}
	}
	return target, nil
}

func (t *tcpTransport) OneWay(from netsim.Addr, to route.Entry, msg wire.Msg, cost *netsim.Cost) (*Node, error) {
	if err := t.m.net.Send(from, to.Addr, cost, false); err != nil {
		return nil, &PeerError{To: to, Err: err}
	}
	conn, status, err := t.exchange(1, to, 0, msg)
	if err != nil {
		return nil, &PeerError{To: to, Err: err}
	}
	t.putConn(conn)
	if status != 0 {
		return nil, &PeerError{To: to, Err: errDead}
	}
	target := t.m.NodeAt(to.Addr)
	if target == nil || !target.id.Equal(to.ID) {
		return nil, &PeerError{To: to, Err: errDead}
	}
	return target, nil
}

func (t *tcpTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	err := t.ln.Close()
	for {
		select {
		case c := <-t.conns:
			c.Close()
		default:
			return err
		}
	}
}
