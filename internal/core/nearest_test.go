package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
	"tapestry/internal/wire"
)

// oracleClosest scans every live node and returns the nodes qualifying for
// slot (level, digit) of n's table sorted by (distance, ID) — the ground
// truth the §4.2 search is measured against.
func oracleClosest(m *Mesh, n *Node, level int, digit ids.Digit) []route.Entry {
	var out []route.Entry
	for _, peer := range m.Nodes() {
		if peer.id.Equal(n.id) {
			continue
		}
		if ids.CommonPrefixLen(n.id, peer.id) < level || peer.id.Digit(level) != digit {
			continue
		}
		out = append(out, route.Entry{
			ID:       peer.id,
			Addr:     peer.addr,
			Distance: m.net.Distance(n.addr, peer.addr),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].ID.Less(out[j].ID)
	})
	return out
}

// TestNearestForSlotMatchesOracle: across every populated slot of several
// nodes, the slot search must return a closest candidate at the true oracle
// distance (distance ties are interchangeable) in the overwhelming majority
// of cases — this is the Property 2 quality the repair path inherits.
func TestNearestForSlotMatchesOracle(t *testing.T) {
	m, nodes := buildMesh(t, 64, testConfig(), 31)
	checked, matched := 0, 0
	for _, n := range nodes[:16] {
		for level := 0; level < testSpec.Digits; level++ {
			for d := 0; d < testSpec.Base; d++ {
				digit := ids.Digit(d)
				if digit == n.id.Digit(level) {
					continue // the self slot never needs repair
				}
				want := oracleClosest(m, n, level, digit)
				if len(want) == 0 {
					continue
				}
				got := n.NearestForSlot(level, digit, nil)
				checked++
				if len(got) > 0 && got[0].Distance <= want[0].Distance+1e-9 {
					matched++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no populated slots checked")
	}
	if frac := float64(matched) / float64(checked); frac < 0.95 {
		t.Fatalf("slot search matched oracle on %d/%d slots (%.1f%%), want >= 95%%",
			matched, checked, 100*frac)
	}
}

// TestRepairHoleNearestRefillsWithClosest kills nodes and verifies that the
// engine-based repair refills the resulting holes with the oracle-closest
// live candidate (the E-repair acceptance bar, asserted at unit scale).
func TestRepairHoleNearestRefillsWithClosest(t *testing.T) {
	cfg := testConfig()
	cfg.Repair = RepairNearest
	m, nodes := buildMesh(t, 48, cfg, 32)

	// Kill 8 nodes, then record which slots of which survivors emptied.
	victims := map[string]bool{}
	for i := 2; i < 48 && len(victims) < 8; i += 6 {
		victims[nodes[i].id.String()] = true
		m.Fail(nodes[i])
	}
	type hole struct {
		n     *Node
		level int
		digit ids.Digit
	}
	var holes []hole
	for _, n := range m.Nodes() {
		n.mu.Lock()
		for l := 0; l < n.table.Levels(); l++ {
			for d := 0; d < n.table.Base(); d++ {
				set := n.table.SetView(l, ids.Digit(d))
				if len(set) == 0 {
					continue
				}
				allVictims := true
				for _, e := range set {
					if !victims[e.ID.String()] {
						allVictims = false
						break
					}
				}
				if allVictims {
					holes = append(holes, hole{n, l, ids.Digit(d)})
				}
			}
		}
		n.mu.Unlock()
	}
	for _, n := range m.Nodes() {
		n.SweepDead(nil)
	}

	refilled, matched := 0, 0
	for _, h := range holes {
		want := oracleClosest(m, h.n, h.level, h.digit)
		h.n.mu.Lock()
		set := h.n.table.Set(h.level, h.digit)
		h.n.mu.Unlock()
		if len(want) == 0 {
			continue // legitimate hole now
		}
		if len(set) == 0 {
			t.Errorf("node %v slot (%d,%d): hole not refilled though %d candidates exist",
				h.n.id, h.level, h.digit, len(want))
			continue
		}
		refilled++
		if set[0].Distance <= want[0].Distance+1e-9 {
			matched++
		}
	}
	if refilled == 0 {
		t.Skip("churn produced no refillable holes at this seed")
	}
	if frac := float64(matched) / float64(refilled); frac < 0.95 {
		t.Fatalf("repair matched oracle on %d/%d refilled holes (%.1f%%), want >= 95%%",
			matched, refilled, 100*frac)
	}
}

// TestSweepDeadCountsLinksPerLevel: SweepDead's return value counts dead
// links removed — one per level the corpse occupied — not dead neighbors.
func TestSweepDeadCountsLinksPerLevel(t *testing.T) {
	m, nodes := buildMesh(t, 32, testConfig(), 33)
	// Find a (survivor, victim) pair where the victim occupies several levels
	// of the survivor's table (CPL >= 1 makes it eligible for levels 0..CPL).
	var survivor, victim *Node
	wantLinks := 0
	for _, s := range nodes {
		for _, v := range nodes {
			if v.id.Equal(s.id) {
				continue
			}
			links := 0
			s.mu.Lock()
			for l := 0; l < s.table.Levels(); l++ {
				if s.table.Contains(l, v.id) {
					links++
				}
			}
			s.mu.Unlock()
			if links > wantLinks {
				survivor, victim, wantLinks = s, v, links
			}
		}
	}
	if wantLinks < 2 {
		t.Fatalf("no multi-level neighbor pair in this mesh (best %d links)", wantLinks)
	}
	m.Fail(victim)
	if got := survivor.SweepDead(nil); got != wantLinks {
		t.Fatalf("SweepDead returned %d, want %d (links at %d levels)", got, wantLinks, wantLinks)
	}
}

// meshFingerprint renders every node's complete routing and object state in
// canonical order, for bit-identical comparisons across equally-seeded runs.
func meshFingerprint(m *Mesh) string {
	var b strings.Builder
	for _, n := range m.Nodes() {
		n.mu.Lock()
		fmt.Fprintf(&b, "node %v@%d state=%d\n", n.id, n.addr, n.state)
		for l := 0; l < n.table.Levels(); l++ {
			for d := 0; d < n.table.Base(); d++ {
				for _, e := range n.table.SetView(l, ids.Digit(d)) {
					fmt.Fprintf(&b, "  f %d/%d %v@%d %.9g %v %v\n",
						l, d, e.ID, e.Addr, e.Distance, e.Pinned, e.Leaving)
				}
			}
			for _, e := range n.table.Backs(l) {
				fmt.Fprintf(&b, "  b %d %v@%d\n", l, e.ID, e.Addr)
			}
		}
		for _, g := range sortedGUIDs(n.objects) {
			for _, r := range n.objects[g].recs {
				fmt.Fprintf(&b, "  o %s srv=%v lvl=%d root=%v\n", g, r.server, r.level, r.root)
			}
		}
		n.mu.Unlock()
	}
	return b.String()
}

// TestLeaveDeterministic: two identically-seeded meshes performing the same
// sequence of Leaves must end bit-identical — the departure protocol must
// not depend on map-iteration order (the same class of bug PR 1 purged for
// byte-identical -workers output).
func TestLeaveDeterministic(t *testing.T) {
	build := func() (*Mesh, []*Node) {
		m, nodes := buildMesh(t, 40, testConfig(), 34)
		for i := 0; i < 6; i++ {
			g := testSpec.Hash(fmt.Sprintf("leave-det-%d", i))
			if err := nodes[i].Publish(g, nil); err != nil {
				t.Fatal(err)
			}
		}
		return m, nodes
	}
	leave := func(m *Mesh) string {
		// Leave every 4th node in ID order, skipping the first 6 (servers).
		// The per-leave message counts and distances go into the fingerprint:
		// repair searches are path-dependent, so any order nondeterminism in
		// the departure protocol shows up in the costs even when canonical
		// tie-breaking hides it from the final tables.
		nodes := m.Nodes()
		var victims []*Node
		for i := 6; i < len(nodes); i += 4 {
			victims = append(victims, nodes[i])
		}
		var costs strings.Builder
		for _, v := range victims {
			var c netsim.Cost
			if err := v.Leave(&c); err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&costs, "leave %v: %d msgs %.9g dist\n", v.id, c.Messages(), c.Distance())
		}
		return costs.String()
	}
	m1, _ := build()
	m2, _ := build()
	if f1, f2 := meshFingerprint(m1), meshFingerprint(m2); f1 != f2 {
		t.Fatal("identically-seeded meshes diverged before any Leave (build nondeterminism)")
	}
	c1 := leave(m1)
	c2 := leave(m2)
	f1, f2 := meshFingerprint(m1)+c1, meshFingerprint(m2)+c2
	if f1 != f2 {
		i := 0
		for i < len(f1) && i < len(f2) && f1[i] == f2[i] {
			i++
		}
		lo := i - 200
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("meshes diverged after identical Leaves; first difference at byte %d:\n...%s\nvs\n...%s",
			i, f1[lo:min(i+200, len(f1))], f2[lo:min(i+200, len(f2))])
	}
}

// TestNearestRepairConcurrentChurn interleaves Join, Leave, Fail and
// SweepDead so the §4.2 searches run against mid-insertion and mid-departure
// tables; run under -race this is the engine's concurrency regression test.
// Operations may individually fail (a gateway dies mid-join, a leaver is
// already gone) — the invariant is no data race, no deadlock, no panic, and
// a functioning mesh afterwards.
func TestNearestRepairConcurrentChurn(t *testing.T) {
	cfg := testConfig()
	space := metric.NewRing(1024)
	net := netsim.New(space)
	m, err := NewMesh(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(35))
	perm := rng.Perm(space.Size())
	next := 0
	takeAddr := func() netsim.Addr { a := netsim.Addr(perm[next]); next++; return a }
	if _, err := m.Bootstrap(testSpec.Random(rng), takeAddr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, _, err := m.Join(m.randomLiveNode(rng), m.freshID(rng), takeAddr()); err != nil {
			t.Fatal(err)
		}
	}

	const joiners, churners, ops = 2, 2, 8
	addrs := make(chan netsim.Addr, joiners*ops)
	for i := 0; i < joiners*ops; i++ {
		addrs <- takeAddr()
	}
	var wg sync.WaitGroup
	for w := 0; w < joiners; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				gw := m.randomLiveNode(rng)
				if gw == nil {
					continue
				}
				_, _, _ = m.Join(gw, m.freshID(rng), <-addrs)
			}
		}(int64(100 + w))
	}
	for w := 0; w < churners; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				nodes := m.Nodes()
				if len(nodes) < 8 {
					continue
				}
				victim := nodes[rng.Intn(len(nodes))]
				switch i % 3 {
				case 0:
					_ = victim.Leave(nil)
				case 1:
					m.Fail(victim)
				default:
					victim.SweepDead(nil)
				}
				if sweeper := m.randomLiveNode(rng); sweeper != nil {
					sweeper.SweepDead(nil)
				}
			}
		}(int64(200 + w))
	}
	wg.Wait()

	// The dust settles: a full sweep then a routing sanity check.
	for _, n := range m.Nodes() {
		n.SweepDead(nil)
	}
	if m.Size() == 0 {
		t.Fatal("mesh emptied out")
	}
	key := testSpec.Hash("post-churn-key")
	var rootID ids.ID
	for _, n := range m.Nodes() {
		res, err := n.routeToKey(key, nil, wire.RouteOpRoute, nil)
		if err != nil {
			t.Fatalf("routing from %v failed post-churn: %v", n.id, err)
		}
		if rootID.IsZero() {
			rootID = res.node.id
		} else if !rootID.Equal(res.node.id) {
			t.Fatalf("post-churn root disagreement: %v vs %v", rootID, res.node.id)
		}
	}
}

// BenchmarkNearestForSlot measures one §4.2 slot search on a settled mesh
// (the repair hot path's dominant cost).
func BenchmarkNearestForSlot(b *testing.B) {
	m, nodes := buildMesh(b, 64, testConfig(), 36)
	_ = m
	// The random (node, level, digit) walk is precomputed so the timed loop
	// holds only the search itself.
	rng := rand.New(rand.NewSource(37))
	picks := benchSlotPicks(nodes, rng, 1<<12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := picks[i%len(picks)]
		p.node.NearestForSlot(p.level, p.digit, nil)
	}
}

type slotPick struct {
	node  *Node
	level int
	digit ids.Digit
}

func benchSlotPicks(nodes []*Node, rng *rand.Rand, n int) []slotPick {
	picks := make([]slotPick, n)
	for i := range picks {
		picks[i] = slotPick{
			node:  nodes[rng.Intn(len(nodes))],
			level: rng.Intn(2), // low levels are the populated (expensive) ones
			digit: ids.Digit(rng.Intn(testSpec.Base)),
		}
	}
	return picks
}

// BenchmarkRepairHoleScan measures the legacy informant scan on the same
// slots for comparison (it may mutate tables, so it operates on a clone-free
// best-effort basis: the slot contents converge after the first iteration).
func BenchmarkRepairHoleScan(b *testing.B) {
	cfg := testConfig()
	cfg.Repair = RepairScan
	_, nodes := buildMesh(b, 64, cfg, 36)
	rng := rand.New(rand.NewSource(37))
	picks := benchSlotPicks(nodes, rng, 1<<12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := picks[i%len(picks)]
		p.node.repairHoleScan(p.level, p.digit, ids.ID{}, nil)
	}
}
