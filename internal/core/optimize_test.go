package core

import (
	"testing"

	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
)

// degradeTables worsens every node's tables via DegradePrimariesForTest,
// simulating network-distance drift (§6.4's problem statement: "network
// distance can change over time, potentially thwarting our efforts to
// provide locally optimal routes").
func degradeTables(m *Mesh) int {
	degraded := 0
	for _, n := range m.Nodes() {
		degraded += n.DegradePrimariesForTest()
	}
	return degraded
}

func TestReorderNeighborSetsRestoresPrimaries(t *testing.T) {
	m, _ := buildMesh(t, 32, testConfig(), 61)
	if degradeTables(m) == 0 {
		t.Fatal("nothing degraded; test is vacuous")
	}
	if v := m.AuditProperty2(); len(v) == 0 {
		t.Fatal("degradation should violate Property 2")
	}
	changed := 0
	for _, n := range m.Nodes() {
		changed += n.ReorderNeighborSets(nil)
	}
	if changed == 0 {
		t.Fatal("no primaries restored")
	}
	// Re-measurement pulls distances from the (unchanged) metric, so
	// Property 2 ordering within sets is restored.
	for _, n := range m.Nodes() {
		n.lockedView(func(tb *route.Table) {
			for l := 0; l < tb.Levels(); l++ {
				for d := 0; d < tb.Base(); d++ {
					set := tb.Set(l, ids.Digit(d))
					for i := 1; i < len(set); i++ {
						if set[i-1].Distance > set[i].Distance {
							t.Fatalf("set (%d,%d) on %v unsorted after reorder", l, d, n.id)
						}
					}
				}
			}
		})
	}
}

func TestShareTablesSpreadsLocality(t *testing.T) {
	// Build with a deliberately tiny k so tables start suboptimal, then
	// gossip until convergence; the violation count must fall.
	cfg := testConfig()
	cfg.K = 2
	m, _ := buildMesh(t, 40, cfg, 62)
	before := len(m.AuditProperty2())
	if before == 0 {
		t.Skip("tables already optimal; nothing to improve")
	}
	totalAdopted := 0
	for round := 0; round < 4; round++ {
		for _, n := range m.Nodes() {
			totalAdopted += n.ShareTables(nil)
		}
	}
	after := len(m.AuditProperty2())
	if totalAdopted == 0 {
		t.Fatal("gossip adopted nothing")
	}
	if after >= before {
		t.Fatalf("gossip did not improve tables: %d -> %d violations", before, after)
	}
}

func TestReacquireTableRestoresOptimality(t *testing.T) {
	cfg := testConfig()
	cfg.K = 2 // poor initial construction
	m, _ := buildMesh(t, 32, cfg, 63)
	if len(m.AuditProperty2()) == 0 {
		t.Skip("already optimal")
	}
	// Re-acquire with a generous k.
	m.cfg.K = 32
	for _, n := range m.Nodes() {
		if err := n.ReacquireTable(nil); err != nil {
			t.Fatalf("reacquire on %v: %v", n.id, err)
		}
	}
	if v := m.AuditProperty2(); len(v) != 0 {
		t.Fatalf("%d Property 2 violations after full reacquire:\n%v", len(v), v[:min(3, len(v))])
	}
}

func TestTuneEpochMaintainsProperty4(t *testing.T) {
	m, nodes := buildMesh(t, 32, testConfig(), 64)
	guid := testSpec.Hash("tuned-object")
	if err := nodes[4].Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	degradeTables(m)
	var cost netsim.Cost
	reordered, _ := m.TuneEpoch(&cost)
	if reordered == 0 {
		t.Fatal("tuning found nothing to fix")
	}
	if cost.Messages() == 0 {
		t.Fatal("tuning cost not accounted")
	}
	if v := m.AuditProperty4(); len(v) != 0 {
		t.Fatalf("Property 4 broken after tuning:\n%v", v[:min(3, len(v))])
	}
	for _, c := range m.Nodes() {
		if res := c.Locate(guid, nil); !res.Found {
			t.Fatalf("object lost after tuning (client %v)", c.id)
		}
	}
}

func TestReorderSkipsDeadNeighbors(t *testing.T) {
	m, nodes := buildMesh(t, 24, testConfig(), 65)
	victim := nodes[7]
	m.Fail(victim)
	for _, n := range m.Nodes() {
		n.ReorderNeighborSets(nil) // must not panic or resurrect the corpse
	}
	for _, n := range m.Nodes() {
		n.lockedView(func(tb *route.Table) {
			for l := 0; l < tb.Levels(); l++ {
				for d := 0; d < tb.Base(); d++ {
					for _, e := range tb.Set(l, ids.Digit(d)) {
						if e.ID.Equal(victim.id) && e.Distance == 0 {
							t.Fatal("dead neighbor re-measured at distance 0")
						}
					}
				}
			}
		})
	}
}

func TestReacquireOnLonerIsNoop(t *testing.T) {
	net := netsim.New(metric.NewRing(8))
	m, err := NewMesh(net, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Bootstrap(testSpec.Hash("solo"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.ReacquireTable(nil); err != nil {
		t.Fatalf("loner reacquire should be a no-op, got %v", err)
	}
}
