package core

import (
	"sort"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
)

// This file implements the paper's level-by-level nearest-neighbor search
// (Section 4.2, generalizing Figure 4's GETNEXTLIST) as a reusable engine.
// A search walks the prefix hierarchy toward a target prefix p: at match
// level m it keeps the k closest known nodes sharing at least m digits with
// p, queries the unqueried ones for their routing rows and backpointers at
// levels >= m (every entry there shares at least m digits with the queried
// node, hence candidates for level m and beyond), folds the answers into a
// measured candidate pool, and re-selects — repeating until the k closest
// m-matchers have all been queried. Lemma 1 is the reason one level's k-list
// is derivable from the previous level's: in a growth-restricted metric the
// closest nodes matching one more digit appear in the rows and backpointers
// of the current list w.h.p.
//
// Three consumers share the engine:
//   - repairHoleNearest (routing.go): refill N_{β,j} with the closest
//     qualifying nodes after a failure, so Property 2 survives churn;
//   - acquireNeighborTable (join.go): the Figure 4 descent that builds a new
//     node's table level by level;
//   - RefineTable (optimize.go): the §6.4 periodic refresh, re-running the
//     search from a node's current contacts without a multicast.

// Per-level query budget: how many times a level's k-closest list may be
// re-selected and its unqueried members contacted before the search moves
// on. Two rounds realize Lemma 1 (one to derive the next level's candidates,
// one to chase anything closer those candidates revealed); the slot search
// spends an extra closure round at the final level, where quality decides
// whether a repaired slot matches the oracle-closest node.
const (
	nnLevelRounds   = 2
	nnClosureRounds = 3
)

// nnSearch carries one level-by-level search from a fixed vantage node: the
// measured candidate pool (distances from the vantage), which peers have
// been queried and down to which row floor, and which probes failed.
type nnSearch struct {
	n     *Node
	k     int
	cost  *netsim.Cost
	avoid map[string]bool // IDs never pooled nor returned (e.g. the corpse being replaced)

	// onPeer, when set, runs on every successfully queried peer — join uses
	// it for Figure 4 line 4 (the queried node checks whether the vantage
	// node improves its own table, Theorem 4's update mechanism).
	onPeer func(peer *Node)
	// onDead, when set, runs on every candidate whose probe failed — join
	// and the periodic refresh use it to purge the corpse from the vantage
	// node's own table (noteDead), which the deleted GETNEXTLIST did
	// inline. Repair leaves it nil: noteDead re-enters repair, and a repair
	// recursing on every corpse its own search trips over would cascade.
	onDead func(e route.Entry)

	pool   map[string]route.Entry
	floors map[string]int // lowest row floor this peer has been queried at
	failed map[string]bool
}

func (n *Node) newNNSearch(k int, avoid map[string]bool, cost *netsim.Cost) *nnSearch {
	return &nnSearch{
		n:      n,
		k:      k,
		cost:   cost,
		avoid:  avoid,
		pool:   make(map[string]route.Entry),
		floors: make(map[string]int),
		failed: make(map[string]bool),
	}
}

// add measures a candidate from the vantage node and pools it; the vantage
// node itself, avoided IDs and already-known candidates are ignored.
func (s *nnSearch) add(e route.Entry) {
	if e.ID.IsZero() || e.ID.Equal(s.n.id) {
		return
	}
	key := e.ID.String()
	if s.avoid[key] {
		return
	}
	if _, ok := s.pool[key]; ok {
		return
	}
	e.Distance = s.n.mesh.net.Distance(s.n.addr, e.Addr)
	e.Pinned, e.Leaving = false, false
	s.pool[key] = e
}

// prefixMatch returns the number of leading digits id shares with p.
func prefixMatch(id ids.ID, p ids.Prefix) int {
	n := p.Len()
	if id.Len() < n {
		n = id.Len()
	}
	for i := 0; i < n; i++ {
		if id.Digit(i) != p.Digit(i) {
			return i
		}
	}
	return n
}

// matchers returns every pooled candidate sharing at least m digits with p
// whose probe has not failed, sorted by (distance, ID) — the same order the
// routing table keeps its sets in, so "first matcher" and "slot primary"
// agree on tie-breaks.
func (s *nnSearch) matchers(p ids.Prefix, m int) []route.Entry {
	out := make([]route.Entry, 0, len(s.pool))
	for key, e := range s.pool {
		if s.failed[key] || prefixMatch(e.ID, p) < m {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].ID.Less(out[j].ID)
	})
	return out
}

// queryPeer contacts a candidate and folds its forward rows and backpointers
// at levels >= floor into the pool. Dead peers are marked failed (their
// cleanup belongs to the caller's sweep, not to the search — recursing into
// repair from inside a repair's own search would re-enter this code).
func (s *nnSearch) queryPeer(e route.Entry, floor int) bool {
	key := e.ID.String()
	// A peer queried before at a higher floor already contributed its rows
	// [prevFloor, Levels); re-fold only the newly exposed band below it —
	// the dedup in add() would discard the rest anyway.
	fold := -1 // exclusive upper bound; -1 = everything above floor
	if f, ok := s.floors[key]; ok {
		if floor >= f {
			return true // nothing new to gather
		}
		fold = f
	}
	s.floors[key] = floor
	peer, err := s.n.mesh.rpc(s.n.addr, e, s.cost, false)
	if err != nil {
		s.failed[key] = true
		if s.onDead != nil {
			s.onDead(e)
		}
		return false
	}
	peer.mu.Lock()
	top := peer.table.Levels()
	if fold >= 0 && fold < top {
		top = fold
	}
	var found []route.Entry
	for l := floor; l < top; l++ {
		for d := 0; d < peer.table.Base(); d++ {
			found = append(found, peer.table.SetView(l, ids.Digit(d))...)
		}
		found = append(found, peer.table.Backs(l)...)
	}
	peer.mu.Unlock()
	for _, f := range found {
		s.add(f)
	}
	if s.onPeer != nil {
		s.onPeer(peer)
	}
	return true
}

// expandLevel runs one level of the search: select the k closest candidates
// sharing at least m digits with p, query those not yet queried at a row
// floor this low, and repeat (new answers may contain closer matchers) until
// the k closest have all been queried or the round budget is spent.
func (s *nnSearch) expandLevel(p ids.Prefix, m, rounds int) {
	// Gathering at floor m surfaces level-m candidates; when m already spans
	// the whole target prefix, row m-1 is where the full matchers keep their
	// slot-mates, so the floor drops one level.
	floor := m
	if floor >= p.Len() && floor > 0 {
		floor = p.Len() - 1
	}
	for r := 0; r < rounds; r++ {
		list := s.matchers(p, m)
		if len(list) > s.k {
			list = list[:s.k]
		}
		progressed := false
		for _, c := range list {
			if f, ok := s.floors[c.ID.String()]; ok && f <= floor {
				continue
			}
			s.queryPeer(c, floor)
			progressed = true // even a failed probe changes the matcher set
		}
		if !progressed {
			return
		}
	}
}

// nearestForSlot is the slot-targeted search: the closest live nodes
// qualifying for slot (level, digit) of n's table, i.e. nodes extending
// β·j for β = n's level-length prefix. Seeds are n's own contacts sharing β
// (rows and backpointers at levels >= level); the search then walks the last
// prefix level: the k closest β-sharers are queried for their (β, ·) rows,
// surfacing (β, j) nodes, and the closest of those are closure-queried for
// their slot-mates until the k-closest list is stable. The returned entries
// are sorted by (distance, ID) from n's vantage; avoid lists IDs that must
// not be returned (the dead node being replaced).
func (n *Node) nearestForSlot(level int, digit ids.Digit, avoid map[string]bool, cost *netsim.Cost) []route.Entry {
	k := n.mesh.kList()
	s := n.newNNSearch(k, avoid, cost)

	n.mu.Lock()
	var seeds []route.Entry
	n.table.ForEachNeighbor(func(l int, e route.Entry) {
		if l >= level {
			seeds = append(seeds, e)
		}
	})
	for l := level; l < n.table.Levels(); l++ {
		seeds = append(seeds, n.table.Backs(l)...)
	}
	n.mu.Unlock()
	for _, e := range seeds {
		s.add(e)
	}

	p := n.id.Prefix(level).Extend(digit)
	s.expandLevel(p, level, nnLevelRounds)
	s.expandLevel(p, p.Len(), nnClosureRounds)
	return s.matchers(p, p.Len())
}

// NearestForSlot exposes the §4.2 slot search for experiments, audits and
// benchmarks: the closest known live candidates for (level, digit), sorted
// by distance from n. It performs network probes (charged to cost) but never
// mutates n's table.
func (n *Node) NearestForSlot(level int, digit ids.Digit, cost *netsim.Cost) []route.Entry {
	return n.nearestForSlot(level, digit, nil, cost)
}
