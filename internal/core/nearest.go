package core

import (
	"slices"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
	"tapestry/internal/wire"
)

// This file implements the paper's level-by-level nearest-neighbor search
// (Section 4.2, generalizing Figure 4's GETNEXTLIST) as a reusable engine.
// A search walks the prefix hierarchy toward a target prefix p: at match
// level m it keeps the k closest known nodes sharing at least m digits with
// p, queries the unqueried ones for their routing rows and backpointers at
// levels >= m (every entry there shares at least m digits with the queried
// node, hence candidates for level m and beyond), folds the answers into a
// measured candidate pool, and re-selects — repeating until the k closest
// m-matchers have all been queried. Lemma 1 is the reason one level's k-list
// is derivable from the previous level's: in a growth-restricted metric the
// closest nodes matching one more digit appear in the rows and backpointers
// of the current list w.h.p.
//
// Three consumers share the engine:
//   - repairHoleNearest (routing.go): refill N_{β,j} with the closest
//     qualifying nodes after a failure, so Property 2 survives churn;
//   - acquireNeighborTable (join.go): the Figure 4 descent that builds a new
//     node's table level by level;
//   - RefineTable (optimize.go): the §6.4 periodic refresh, re-running the
//     search from a node's current contacts without a multicast.

// Per-level query budget: how many times a level's k-closest list may be
// re-selected and its unqueried members contacted before the search moves
// on. Two rounds realize Lemma 1 (one to derive the next level's candidates,
// one to chase anything closer those candidates revealed); the slot search
// spends an extra closure round at the final level, where quality decides
// whether a repaired slot matches the oracle-closest node.
const (
	nnLevelRounds   = 2
	nnClosureRounds = 3
)

// nnScratch is the search engine's reusable arena: the measured candidate
// pool, per-peer query state and three fold/result buffers. Searches run on
// every repair, join and refresh, and their maps and slices dominated the
// engine's allocation profile; arenas recycle through Mesh.nnScratchPool so
// a steady-state mesh stops allocating them at all. All maps key by the
// comparable ids.ID — never by ID.String().
type nnScratch struct {
	pool   map[ids.ID]route.Entry
	floors map[ids.ID]int // lowest row floor this peer has been queried at
	failed map[ids.ID]struct{}
	list   []route.Entry // matchers result (re-filled per call)
	seeds  []route.Entry // vantage-table seed gathering
	found  []route.Entry // per-peer fold buffer

	// bandReq/bandResp are the recycled wire messages of queryPeer's
	// table-band RPC; bandResp decodes straight into the found buffer.
	bandReq  wire.TableBandReq
	bandResp wire.TableBandResp
}

func newNNScratch() *nnScratch {
	return &nnScratch{
		pool:   make(map[ids.ID]route.Entry, 64),
		floors: make(map[ids.ID]int, 32),
		failed: make(map[ids.ID]struct{}, 8),
	}
}

// reset clears the arena for reuse; Go compiles the map-range deletes to a
// bulk clear, and the slices keep their capacity.
func (sc *nnScratch) reset() {
	clear(sc.pool)
	clear(sc.floors)
	clear(sc.failed)
	sc.list = sc.list[:0]
	sc.seeds = sc.seeds[:0]
	sc.found = sc.found[:0]
}

// nnSearch carries one level-by-level search from a fixed vantage node: the
// measured candidate pool (distances from the vantage), which peers have
// been queried and down to which row floor, and which probes failed.
type nnSearch struct {
	n     *Node
	k     int
	cost  *netsim.Cost
	avoid ids.ID // an ID never pooled nor returned (the corpse being replaced); zero = none

	// onPeer, when set, runs on every successfully queried peer — join uses
	// it for Figure 4 line 4 (the queried node checks whether the vantage
	// node improves its own table, Theorem 4's update mechanism).
	onPeer func(peer *Node)
	// onDead, when set, runs on every candidate whose probe failed — join
	// and the periodic refresh use it to purge the corpse from the vantage
	// node's own table (noteDead), which the deleted GETNEXTLIST did
	// inline. Repair leaves it nil: noteDead re-enters repair, and a repair
	// recursing on every corpse its own search trips over would cascade.
	onDead func(e route.Entry)

	*nnScratch
}

func (n *Node) newNNSearch(k int, avoid ids.ID, cost *netsim.Cost) *nnSearch {
	return &nnSearch{
		n:         n,
		k:         k,
		cost:      cost,
		avoid:     avoid,
		nnScratch: n.mesh.getNNScratch(),
	}
}

// release returns the arena to the mesh pool. The search must not be used
// afterwards, and any matchers() result the caller wants to keep must be
// copied first (it aliases the arena's list buffer).
func (s *nnSearch) release() {
	sc := s.nnScratch
	s.nnScratch = nil
	s.n.mesh.putNNScratch(sc)
}

// add measures a candidate from the vantage node and pools it; the vantage
// node itself, the avoided ID and already-known candidates are ignored.
func (s *nnSearch) add(e route.Entry) {
	if e.ID.IsZero() || e.ID.Equal(s.n.id) || e.ID.Equal(s.avoid) {
		return
	}
	if _, ok := s.pool[e.ID]; ok {
		return
	}
	e.Distance = s.n.mesh.net.Distance(s.n.addr, e.Addr)
	e.Pinned, e.Leaving = false, false
	s.pool[e.ID] = e
}

// prefixMatch returns the number of leading digits id shares with p.
func prefixMatch(id ids.ID, p ids.Prefix) int {
	n := p.Len()
	if id.Len() < n {
		n = id.Len()
	}
	for i := 0; i < n; i++ {
		if id.Digit(i) != p.Digit(i) {
			return i
		}
	}
	return n
}

// matchers returns every pooled candidate sharing at least m digits with p
// whose probe has not failed, sorted by (distance, ID) — the same order the
// routing table keeps its sets in, so "first matcher" and "slot primary"
// agree on tie-breaks. The result aliases the arena's list buffer: it is
// valid until the next matchers call and must not outlive release().
func (s *nnSearch) matchers(p ids.Prefix, m int) []route.Entry {
	out := s.list[:0]
	for id, e := range s.pool {
		if _, bad := s.failed[id]; bad {
			continue
		}
		if prefixMatch(e.ID, p) < m {
			continue
		}
		out = append(out, e)
	}
	// The pool is a map, but the (distance, ID) order is total — IDs are
	// unique — so the sorted list is deterministic.
	slices.SortFunc(out, func(a, b route.Entry) int {
		if a.Distance != b.Distance {
			if a.Distance < b.Distance {
				return -1
			}
			return 1
		}
		return a.ID.Compare(b.ID)
	})
	s.list = out
	return out
}

// appendSeedBand collects every contact of t qualifying at levels >= level —
// forward rows as one contiguous RangeView copy, backpointers level by
// level — into dst. Self entries ride along; add() drops them.
func appendSeedBand(dst []route.Entry, t *route.Table, level int) []route.Entry {
	dst = append(dst, t.RangeView(level, t.Levels())...)
	for l := level; l < t.Levels(); l++ {
		dst = t.AppendBacks(dst, l)
	}
	return dst
}

// queryPeer contacts a candidate and folds its forward rows and backpointers
// at levels >= floor into the pool. Dead peers are marked failed (their
// cleanup belongs to the caller's sweep, not to the search — recursing into
// repair from inside a repair's own search would re-enter this code).
func (s *nnSearch) queryPeer(e route.Entry, floor int) bool {
	// A peer queried before at a higher floor already contributed its rows
	// [prevFloor, Levels); re-fold only the newly exposed band below it —
	// the dedup in add() would discard the rest anyway.
	fold := -1 // exclusive upper bound; -1 = everything above floor
	if f, ok := s.floors[e.ID]; ok {
		if floor >= f {
			return true // nothing new to gather
		}
		fold = f
	}
	s.floors[e.ID] = floor
	s.bandReq.Floor, s.bandReq.Fold = floor, fold
	s.bandResp.Entries = s.found[:0]
	peer, err := s.n.mesh.invoke(s.n.addr, e, &s.bandReq, &s.bandResp, s.cost, false)
	if err != nil {
		s.failed[e.ID] = struct{}{}
		if s.onDead != nil {
			s.onDead(e)
		}
		return false
	}
	s.found = s.bandResp.Entries
	for _, f := range s.found {
		s.add(f)
	}
	if s.onPeer != nil {
		s.onPeer(peer)
	}
	return true
}

// expandLevel runs one level of the search: select the k closest candidates
// sharing at least m digits with p, query those not yet queried at a row
// floor this low, and repeat (new answers may contain closer matchers) until
// the k closest have all been queried or the round budget is spent.
func (s *nnSearch) expandLevel(p ids.Prefix, m, rounds int) {
	// Gathering at floor m surfaces level-m candidates; when m already spans
	// the whole target prefix, row m-1 is where the full matchers keep their
	// slot-mates, so the floor drops one level.
	floor := m
	if floor >= p.Len() && floor > 0 {
		floor = p.Len() - 1
	}
	for r := 0; r < rounds; r++ {
		list := s.matchers(p, m)
		if len(list) > s.k {
			list = list[:s.k]
		}
		progressed := false
		for _, c := range list {
			if f, ok := s.floors[c.ID]; ok && f <= floor {
				continue
			}
			s.queryPeer(c, floor)
			progressed = true // even a failed probe changes the matcher set
		}
		if !progressed {
			return
		}
	}
}

// nearestForSlot is the slot-targeted search: the closest live nodes
// qualifying for slot (level, digit) of n's table, i.e. nodes extending
// β·j for β = n's level-length prefix. Seeds are n's own contacts sharing β
// (rows and backpointers at levels >= level); the search then walks the last
// prefix level: the k closest β-sharers are queried for their (β, ·) rows,
// surfacing (β, j) nodes, and the closest of those are closure-queried for
// their slot-mates until the k-closest list is stable. The returned entries
// are sorted by (distance, ID) from n's vantage; avoid names an ID that must
// not be returned (the dead node being replaced; zero for none).
func (n *Node) nearestForSlot(level int, digit ids.Digit, avoid ids.ID, cost *netsim.Cost) []route.Entry {
	k := n.mesh.kList()
	s := n.newNNSearch(k, avoid, cost)

	n.mu.Lock()
	s.seeds = appendSeedBand(s.seeds[:0], n.table, level)
	n.mu.Unlock()
	for _, e := range s.seeds {
		s.add(e)
	}

	p := n.id.Prefix(level).Extend(digit)
	s.expandLevel(p, level, nnLevelRounds)
	s.expandLevel(p, p.Len(), nnClosureRounds)
	res := s.matchers(p, p.Len())
	out := make([]route.Entry, len(res))
	copy(out, res)
	s.release()
	return out
}

// NearestForSlot exposes the §4.2 slot search for experiments, audits and
// benchmarks: the closest known live candidates for (level, digit), sorted
// by distance from n. It performs network probes (charged to cost) but never
// mutates n's table.
func (n *Node) NearestForSlot(level int, digit ids.Digit, cost *netsim.Cost) []route.Entry {
	return n.nearestForSlot(level, digit, ids.ID{}, cost)
}
