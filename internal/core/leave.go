package core

import (
	"errors"
	"sort"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
)

// sortedLevels returns the level keys of a per-level entry map (AllBacks,
// snapshotTable) in ascending order. These are maps; iterating them directly
// would make notification and repair order — and therefore eviction
// tie-breaks and message costs at every peer — nondeterministic
// map-iteration order.
func sortedLevels(byLevel map[int][]route.Entry) []int {
	levels := make([]int, 0, len(byLevel))
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	return levels
}

// sortedGUIDs returns the keys of a node's object-pointer map in ascending
// ID order, for the same reason: pointer re-routing order must not be
// map-iteration order.
func sortedGUIDs(objects map[ids.ID]*objState) []ids.ID {
	guids := make([]ids.ID, 0, len(objects))
	for g := range objects {
		guids = append(guids, g)
	}
	sort.Slice(guids, func(i, j int) bool { return guids[i].Less(guids[j]) })
	return guids
}

// Leave removes the node gracefully (Section 5.1, Figure 12): a two-phase
// voluntary delete that keeps objects available throughout.
//
// Phase 1 notifies every backpointer holder: the link is marked "leaving"
// and replacement candidates (the departing node's own slot-mates) are
// offered; holders re-route pointer paths that ran through the departing
// node as if it were already gone.
//
// Phase 2 hands objects rooted here to their post-departure surrogates and
// withdraws the replicas this node itself serves.
//
// Phase 3 sends the final delete notification: holders drop the link
// entirely, and forward neighbors retract their backpointers. Only then does
// the node disconnect.
func (n *Node) Leave(cost *netsim.Cost) error {
	n.mu.Lock()
	if n.state == stateDead {
		n.mu.Unlock()
		return errors.New("core: node already gone")
	}
	n.state = stateLeaving
	backs := n.table.AllBacks()
	n.mu.Unlock()

	// Phase 1: leaving notification with per-level replacements. The
	// holder-side work runs in the LeaveNotify dispatch handler
	// (onPeerLeaving); dead holders are skipped, as before.
	f := n.mesh.getFrames()
	for _, level := range sortedLevels(backs) {
		f.leave.Leaver, f.leave.Level = n.id, level
		f.leave.Replacements = n.replacementsAt(level)
		for _, h := range backs[level] {
			_, _ = n.mesh.oneWayMsg(n.addr, h, &f.leave, cost)
		}
	}
	f.leave.Replacements = nil

	// Phase 2a: withdraw replicas this node serves (they depart with it).
	for _, g := range n.PublishedObjects() {
		n.Unpublish(g, cost)
	}

	// Phase 2b: objects rooted here move to their new surrogate roots,
	// routing as if this node did not exist. Availability is guaranteed
	// because the transfer completes (with acknowledgments — our synchronous
	// calls) before the final delete notification goes out.
	n.mu.Lock()
	type moved struct {
		guid ids.ID
		rec  pointerRec
	}
	var moves []moved
	for _, g := range sortedGUIDs(n.objects) {
		st := n.objects[g]
		for _, r := range st.recs {
			if r.root && !r.server.Equal(n.id) {
				// Re-route from level 0: the post-departure root may diverge
				// from this node's path at any level, not just the record's
				// arrival level.
				rr := r
				rr.level = 0
				moves = append(moves, moved{r.guid, rr})
			}
		}
	}
	n.mu.Unlock()
	now := n.mesh.net.Epoch()
	for _, mv := range moves {
		n.forwardPointerPath(mv.guid, mv.rec, now, cost, n.id)
	}

	// Phase 3: final delete — everyone who links to or from n forgets it.
	n.mu.Lock()
	backs = n.table.AllBacks()
	var forwards []route.Entry
	n.table.ForEachNeighbor(func(_ int, e route.Entry) { forwards = append(forwards, e) })
	n.state = stateDead
	n.mu.Unlock()

	seen := map[ids.ID]struct{}{}
	f.deleted.ID = n.id
	for _, level := range sortedLevels(backs) {
		for _, h := range backs[level] {
			if _, ok := seen[h.ID]; ok {
				continue
			}
			seen[h.ID] = struct{}{}
			_, _ = n.mesh.oneWayMsg(n.addr, h, &f.deleted, cost)
		}
	}
	f.drop.ID = n.id
	for _, fe := range forwards {
		if _, ok := seen[fe.ID]; ok {
			continue
		}
		// The DropLinks handler removes n from the peer's table, which also
		// clears any backpointer entries for n.
		_, _ = n.mesh.oneWayMsg(n.addr, fe, &f.drop, cost)
	}
	n.mesh.putFrames(f)

	n.mesh.net.Detach(n.addr)
	n.mesh.unregister(n)
	return nil
}

// replacementsAt returns the departing node's slot-mates at (level, own
// digit) — valid substitutes for any holder whose level-`level` set contains
// the departing node, since holder, departing node and slot-mates all share
// the same length-`level` prefix and digit.
func (n *Node) replacementsAt(level int) []route.Entry {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []route.Entry
	for _, e := range n.table.SetView(level, n.id.Digit(level)) {
		if !e.ID.Equal(n.id) && !e.Leaving {
			out = append(out, e)
		}
	}
	return out
}

// onPeerLeaving is the phase-1 handler at a backpointer holder: mark links
// leaving, adopt offered replacements, and re-route pointer paths that ran
// through the leaver as if it were gone.
func (h *Node) onPeerLeaving(leaver ids.ID, level int, replacements []route.Entry, cost *netsim.Cost) {
	for _, r := range replacements {
		if r.ID.Equal(h.id) {
			continue
		}
		r.Distance = h.mesh.net.Distance(h.addr, r.Addr)
		r.Pinned, r.Leaving = false, false
		h.mu.Lock()
		improves := h.table.WouldImprove(level, r.ID, r.Distance) // a hole counts as an improvement
		h.mu.Unlock()
		if improves {
			h.addNeighborAndNotify(level, r, cost)
		}
	}
	// Republish local pointers whose next hop is the leaver, routing as if
	// it did not exist ("it republishes any local object pointers which
	// normally route through A as if A did not exist"). This happens BEFORE
	// the link is marked leaving: until the bypass path carries pointers,
	// concurrent queries must keep routing through the (still live) leaver,
	// or they could reach a pointer-less surrogate and fail.
	h.mu.Lock()
	type work struct {
		guid ids.ID
		rec  pointerRec
	}
	var rerouted []work
	for _, g := range sortedGUIDs(h.objects) {
		st := h.objects[g]
		for _, r := range st.recs {
			if r.root {
				continue
			}
			dec := h.nextHop(r.key, r.level, ids.ID{}, nil)
			if !dec.terminal && dec.next.ID.Equal(leaver) {
				rerouted = append(rerouted, work{r.guid, r})
			}
		}
	}
	h.mu.Unlock()
	now := h.mesh.net.Epoch()
	for _, w := range rerouted {
		h.forwardPointerPath(w.guid, w.rec, now, cost, leaver)
	}
	h.mu.Lock()
	h.table.MarkLeaving(leaver)
	h.mu.Unlock()
}

// onPeerDeleted is the phase-3 handler: drop the departed node and repair
// any hole it leaves (Property 1), preferring the replacements adopted in
// phase 1 (already in the table) and falling back to local search.
func (h *Node) onPeerDeleted(dead ids.ID, cost *netsim.Cost) {
	h.mu.Lock()
	levels := h.table.Remove(dead)
	var holes []slotRef
	for _, l := range levels {
		d := dead.Digit(l)
		if h.table.HasHole(l, d) {
			holes = append(holes, slotRef{l, d})
		}
	}
	h.mu.Unlock()
	h.repairHoles(holes, dead, cost)
}

// Fail removes the node without any notification — a crash, network
// partition or attack (Section 5.2). The rest of the overlay discovers the
// failure lazily: probes time out, links are repaired on demand or by
// SweepDead, and objects rooted at the corpse stay unavailable until the
// next republish reaches their new surrogates.
func (m *Mesh) Fail(n *Node) {
	n.mu.Lock()
	n.state = stateDead
	n.mu.Unlock()
	m.net.Detach(n.addr)
	m.unregister(n)
}
