package core

import (
	"fmt"
	"math/rand"
	"testing"

	"tapestry/internal/metric"
	"tapestry/internal/netsim"
)

// benchStaticMesh stands up a static mesh (oracle construction — the cheap
// path for read-mostly benchmarks) of n nodes on a sparse ring.
func benchStaticMesh(b *testing.B, n int, cfg Config, seed int64) (*Mesh, []*Node) {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	space := metric.NewRing(n * 4)
	net := netsim.New(space)
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, n)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	parts := StaticParticipants(cfg.Spec, addrs, rng)
	m, err := BuildStatic(net, cfg, parts)
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]*Node, len(addrs))
	for i, a := range addrs {
		nodes[i] = m.NodeAt(a)
	}
	return m, nodes
}

// BenchmarkServeQueryManyPointers is the satellite regression benchmark for
// the serveQuery selection pass: one node holding many replica pointers for
// a single GUID (the root of a well-replicated object). The old
// implementation copied the record list and spliced it per probe — O(k²)
// with allocation; the single-pass selection is O(k) with none.
func BenchmarkServeQueryManyPointers(b *testing.B) {
	for _, replicas := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			cfg := testConfig()
			_, nodes := benchStaticMesh(b, 128, cfg, 7)
			guid := testSpec.Hash("replicated-object")
			for i := 0; i < replicas; i++ {
				if err := nodes[i].Publish(guid, nil); err != nil {
					b.Fatal(err)
				}
			}
			// The root holds one pointer per replica; every node on a publish
			// path holds at least one.
			var serving *Node
			for _, n := range nodes {
				n.mu.Lock()
				st := n.objects[guid]
				hit := st != nil && len(st.recs) == replicas
				n.mu.Unlock()
				if hit {
					serving = n
					break
				}
			}
			if serving == nil {
				b.Fatal("no node aggregates all replica pointers")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hops := 0
				if _, ok := serving.serveQuery(guid, nil, &hops); !ok {
					b.Fatal("pointer hit expected")
				}
			}
		})
	}
}

// BenchmarkCoreLocate measures the core-level query hot path (no facade
// hashing/rendering) with the cache off: after the map rekeying and lazy
// dead-set work this path performs zero heap allocations.
func BenchmarkCoreLocate(b *testing.B) {
	_, nodes := benchStaticMesh(b, 256, testConfig(), 11)
	guid := testSpec.Hash("bench-object")
	if err := nodes[0].Publish(guid, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !nodes[i%len(nodes)].Locate(guid, nil).Found {
			b.Fatal("lost object")
		}
	}
}

// BenchmarkCoreLocateCached measures the same workload with the serving
// layer on and warm: repeat queries are answered at the first hop from the
// per-node LRU.
func BenchmarkCoreLocateCached(b *testing.B) {
	cfg := testConfig()
	cfg.LocateCacheCap = 128
	_, nodes := benchStaticMesh(b, 256, cfg, 11)
	guid := testSpec.Hash("bench-object")
	if err := nodes[0].Publish(guid, nil); err != nil {
		b.Fatal(err)
	}
	for _, n := range nodes {
		if !n.Locate(guid, nil).Found {
			b.Fatal("warmup failed")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !nodes[i%len(nodes)].Locate(guid, nil).Found {
			b.Fatal("lost object")
		}
	}
}
