package core

import (
	"tapestry/internal/ids"
	"tapestry/internal/netsim"
)

// Locate-path pointer caching (the serving layer).
//
// The paper's whole pitch (Section 2.2, Observation 1) is that queries are
// satisfied near the client: the locate path intersects the publish path
// early and stops at the first pointer. But for a popular object the nodes
// late on the publish path — the root and its last-hop neighbors — still see
// every query that starts far from the publish path, which under a Zipf
// workload recreates exactly the hotspot the centralized directory strawman
// is criticized for. The fix is classic DOLR soft state one level up: when a
// query succeeds, every node the query traversed may remember the answer
// (guid -> the replica served), piggybacked on the response path at no extra
// message cost. The next query for the same object is answered at the first
// hop that remembers it, long before the root.
//
// Consistency: a cache entry is a hint, never an authority. Use always
// verifies with the replica itself (the same final RPC an ordinary pointer
// hit pays, checking `published` under the server's lock), so a stale entry
// costs one wasted hop and is dropped on the spot — it can never serve a
// replica that no longer exists or no longer publishes the object. Entries
// are additionally epoch-stamped and expire alongside the soft-state pointer
// TTL, and Unpublish's path walk and the backward-delete sweep invalidate
// entries naming the withdrawing server at every node they visit.
//
// The cache is bounded per node (Config.LocateCacheCap, LRU eviction) and
// OFF by default: with LocateCacheCap == 0 no node allocates a cache, no
// counter is touched, and every experiment is bit-identical to the uncached
// build.

// cacheEntry is one cached location mapping plus its LRU links. Entries are
// intrusive list nodes so lookup/insert/evict are pointer moves without
// container allocations beyond the entry itself.
type cacheEntry struct {
	guid       ids.ID
	server     ids.ID
	serverAddr netsim.Addr
	epoch      int64 // deposit/refresh time, for TTL expiry

	prev, next *cacheEntry
}

// locateCache is a bounded LRU of location mappings. All methods require the
// owning node's mutex: the cache is touched only at hops that already hold
// n.mu briefly, so it adds no locking of its own.
type locateCache struct {
	cap int
	ttl int64
	m   map[ids.ID]*cacheEntry
	// head is most recently used, tail least; nil when empty.
	head, tail *cacheEntry
}

func newLocateCache(cap int, ttl int64) *locateCache {
	return &locateCache{cap: cap, ttl: ttl, m: make(map[ids.ID]*cacheEntry, cap)}
}

// lookup returns the cached mapping for guid if present and fresh, promoting
// it to most-recently-used. An expired entry is removed and reported as a
// miss.
func (c *locateCache) lookup(guid ids.ID, now int64) (cacheEntry, bool) {
	e := c.m[guid]
	if e == nil {
		return cacheEntry{}, false
	}
	if now-e.epoch >= c.ttl {
		c.unlink(e)
		delete(c.m, guid)
		return cacheEntry{}, false
	}
	c.touch(e)
	return *e, true
}

// put inserts or refreshes the mapping for guid, evicting the
// least-recently-used entry when the cache is full.
func (c *locateCache) put(guid, server ids.ID, serverAddr netsim.Addr, now int64) {
	if e := c.m[guid]; e != nil {
		e.server, e.serverAddr, e.epoch = server, serverAddr, now
		c.touch(e)
		return
	}
	if len(c.m) >= c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.guid)
	}
	e := &cacheEntry{guid: guid, server: server, serverAddr: serverAddr, epoch: now}
	c.m[guid] = e
	c.pushFront(e)
}

// invalidate drops the entry for guid. With a non-zero server the entry is
// dropped only if it names that server — an unpublish by one replica must
// not evict a hint pointing at another, still-valid replica.
func (c *locateCache) invalidate(guid, server ids.ID) {
	e := c.m[guid]
	if e == nil {
		return
	}
	if !server.IsZero() && !e.server.Equal(server) {
		return
	}
	c.unlink(e)
	delete(c.m, guid)
}

// expire drops every entry older than the TTL; called from the soft-state
// maintenance pass alongside pointer expiry.
func (c *locateCache) expire(now int64) {
	for e := c.tail; e != nil; {
		prev := e.prev
		if now-e.epoch >= c.ttl {
			c.unlink(e)
			delete(c.m, e.guid)
		}
		e = prev
	}
}

// len returns the number of cached mappings.
func (c *locateCache) len() int { return len(c.m) }

func (c *locateCache) touch(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *locateCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *locateCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// cacheInvalidate removes the (guid -> server) hint at n, if any. A zero
// server drops any entry for guid. Safe to call on cache-off meshes.
func (n *Node) cacheInvalidate(guid, server ids.ID) {
	if n.cache == nil {
		return
	}
	n.mu.Lock()
	n.cache.invalidate(guid, server)
	n.mu.Unlock()
}

// cacheDeposit records (guid -> server) at n. Population piggybacks on the
// response path of a successful locate, so it charges no messages.
func (n *Node) cacheDeposit(guid, server ids.ID, serverAddr netsim.Addr, now int64) {
	if n.cache == nil {
		return
	}
	n.mu.Lock()
	n.cache.put(guid, server, serverAddr, now)
	n.mu.Unlock()
}

// CacheSize returns the number of location mappings cached at this node.
func (n *Node) CacheSize() int {
	if n.cache == nil {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cache.len()
}

// LocateCacheStats returns the mesh-wide cache hit/miss counters: one
// observation per Locate on a cache-enabled mesh (hit = the query was
// answered from a cached mapping at some hop).
func (m *Mesh) LocateCacheStats() (hits, misses int64) {
	return m.cacheHits.Load(), m.cacheMisses.Load()
}

// CachedMappings returns the total number of cached location mappings across
// the overlay.
func (m *Mesh) CachedMappings() int {
	total := 0
	for _, n := range m.Nodes() {
		total += n.CacheSize()
	}
	return total
}
