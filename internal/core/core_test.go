package core

import (
	"math/rand"
	"testing"

	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
)

// testSpec keeps identifiers short so small meshes exercise every level.
var testSpec = ids.Spec{Base: 16, Digits: 6}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Spec = testSpec
	return cfg
}

// buildMesh grows a mesh of n nodes over a ring metric with sequential
// joins, asserting success. Addresses are a random permutation of the ring
// points so node locations are uniform.
func buildMesh(t testing.TB, n int, cfg Config, seed int64) (*Mesh, []*Node) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	space := metric.NewRing(n * 4) // sparse occupancy: 1/4 of points host nodes
	net := netsim.New(space)
	m, err := NewMesh(net, cfg)
	if err != nil {
		t.Fatalf("NewMesh: %v", err)
	}
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, n)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	nodes, _, err := m.GrowSequential(addrs, rng)
	if err != nil {
		t.Fatalf("GrowSequential: %v", err)
	}
	return m, nodes
}

func TestBootstrapOnly(t *testing.T) {
	net := netsim.New(metric.NewRing(8))
	m, err := NewMesh(net, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	id := testSpec.Hash("first")
	n, err := m.Bootstrap(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 1 || m.NodeByID(id) != n || m.NodeAt(0) != n {
		t.Error("registry inconsistent after bootstrap")
	}
	if _, err := m.Bootstrap(testSpec.Hash("second"), 1); err == nil {
		t.Error("second bootstrap must fail")
	}
	// The loner is its own root for everything.
	root, hops, err := n.SurrogateFor(testSpec.Hash("any"), nil)
	if err != nil || root != n || hops != 0 {
		t.Errorf("loner surrogate: %v %d %v", root, hops, err)
	}
}

func TestConfigValidation(t *testing.T) {
	net := netsim.New(metric.NewRing(8))
	bad := []Config{
		{Spec: testSpec, R: 1},
		{Spec: testSpec, RootSetSize: -1},
		{Spec: testSpec, PointerTTL: -2},
		{Spec: testSpec, K: -1},
		{Spec: ids.Spec{Base: 1, Digits: 3}},
	}
	for i, cfg := range bad {
		if _, err := NewMesh(net, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	// Zero config gets defaults.
	m, err := NewMesh(net, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Config().R != 3 || m.Config().RootSetSize != 1 || m.Config().PointerTTL != 3 {
		t.Errorf("defaults not applied: %+v", m.Config())
	}
}

func TestJoinRejectsDuplicates(t *testing.T) {
	m, nodes := buildMesh(t, 8, testConfig(), 1)
	gw := nodes[0]
	if _, _, err := m.Join(gw, nodes[3].id, netsim.Addr(nodes[3].addr)); err == nil {
		t.Error("duplicate ID join must fail")
	}
	rng := rand.New(rand.NewSource(99))
	if _, _, err := m.Join(gw, m.freshID(rng), nodes[2].addr); err == nil {
		t.Error("duplicate address join must fail")
	}
	if _, _, err := m.Join(nil, m.freshID(rng), 999); err == nil {
		t.Error("nil gateway must fail")
	}
}

func TestSequentialJoinsSatisfyProperty1(t *testing.T) {
	m, _ := buildMesh(t, 48, testConfig(), 2)
	if v := m.AuditProperty1(); len(v) != 0 {
		t.Fatalf("Property 1 violations after sequential joins:\n%v", v)
	}
}

func TestSequentialJoinsSatisfyProperty2ExactWithFullK(t *testing.T) {
	// Locality (Property 2): with k covering the whole population the
	// Lemma 1 descent sees every candidate, so tables must be exactly the
	// R closest nodes per slot — the Theorem 3/4 guarantee made certain.
	cfg := testConfig()
	cfg.K = 48
	m, _ := buildMesh(t, 48, cfg, 3)
	v := m.AuditProperty2()
	if len(v) != 0 {
		max := len(v)
		if max > 5 {
			max = 5
		}
		t.Fatalf("%d Property 2 violations with full k, e.g.:\n%v", len(v), v[:max])
	}
}

func TestSequentialJoinsProperty2RateWithAutoK(t *testing.T) {
	// With the practical k = O(log n) (the paper's Theorem 3/4 constants —
	// k ≈ 16abc·log n — would exceed these population sizes outright), a
	// modest rate of suboptimal secondary entries is expected and tolerated;
	// the deployed system relies on continual optimization (§6.4) to clean
	// them. Bound the violation rate at 10% of links, and verify primaries
	// are much better than that: Property 1 (correctness) must hold exactly.
	m, nodes := buildMesh(t, 48, testConfig(), 3)
	v := m.AuditProperty2()
	slots := 0
	for _, n := range nodes {
		slots += n.table.NeighborCount()
	}
	if len(v)*10 > slots {
		t.Fatalf("%d Property 2 violations across %d links (> 10%%):\n%v", len(v), slots, v[:min(5, len(v))])
	}
	if p1 := m.AuditProperty1(); len(p1) != 0 {
		t.Fatalf("Property 1 must hold regardless of k: %v", p1[:min(5, len(p1))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestUniqueRootsNative(t *testing.T) {
	m, _ := buildMesh(t, 40, testConfig(), 4)
	rng := rand.New(rand.NewSource(7))
	keys := make([]ids.ID, 24)
	for i := range keys {
		keys[i] = testSpec.Random(rng)
	}
	if v := m.AuditUniqueRoots(keys); len(v) != 0 {
		t.Fatalf("Theorem 2 violated (native): %v", v)
	}
}

func TestUniqueRootsPRRLike(t *testing.T) {
	cfg := testConfig()
	cfg.Surrogate = SchemePRRLike
	m, _ := buildMesh(t, 40, cfg, 5)
	rng := rand.New(rand.NewSource(8))
	keys := make([]ids.ID, 24)
	for i := range keys {
		keys[i] = testSpec.Random(rng)
	}
	if v := m.AuditUniqueRoots(keys); len(v) != 0 {
		t.Fatalf("Theorem 2 violated (prr-like): %v", v)
	}
}

func TestRouteToNode(t *testing.T) {
	_, nodes := buildMesh(t, 32, testConfig(), 6)
	var cost netsim.Cost
	dst, hops, err := nodes[0].RouteToNode(nodes[31].id, &cost)
	if err != nil {
		t.Fatal(err)
	}
	if dst != nodes[31] {
		t.Error("routed to the wrong node")
	}
	if hops > testSpec.Digits {
		t.Errorf("route took %d hops, more than %d digits", hops, testSpec.Digits)
	}
	if cost.Hops() == 0 && nodes[0] != nodes[31] {
		t.Error("cost not charged")
	}
	// Routing to a nonexistent ID errors but lands on a surrogate.
	missing := testSpec.Hash("no-such-node")
	if _, _, err := nodes[0].RouteToNode(missing, nil); err == nil {
		t.Error("routing to a nonexistent node must error")
	}
}

func TestPublishAndLocateEverywhere(t *testing.T) {
	m, nodes := buildMesh(t, 32, testConfig(), 7)
	guid := testSpec.Hash("object-1")
	server := nodes[5]
	if err := server.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	for _, c := range nodes {
		res := c.Locate(guid, nil)
		if !res.Found {
			t.Fatalf("node %v failed to locate %v (Deterministic Location violated)", c.id, guid)
		}
		if !res.Server.Equal(server.id) {
			t.Fatalf("located wrong server %v", res.Server)
		}
	}
	if v := m.AuditProperty4(); len(v) != 0 {
		t.Fatalf("Property 4 violations: %v", v)
	}
}

func TestLocateMissingObject(t *testing.T) {
	_, nodes := buildMesh(t, 16, testConfig(), 8)
	if res := nodes[0].Locate(testSpec.Hash("ghost"), nil); res.Found {
		t.Error("located an object that was never published")
	}
}

func TestLocateFindsClosestReplica(t *testing.T) {
	// Two replicas of the same GUID; each client should reach a replica at
	// most as far as routing to the root would imply, and clients adjacent
	// to a replica should get that replica.
	m, nodes := buildMesh(t, 48, testConfig(), 9)
	guid := testSpec.Hash("replicated")
	a, b := nodes[3], nodes[37]
	if err := a.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	net := m.Net()
	for _, c := range nodes {
		res := c.Locate(guid, nil)
		if !res.Found {
			t.Fatalf("replica not found from %v", c.id)
		}
		if !res.Server.Equal(a.id) && !res.Server.Equal(b.id) {
			t.Fatalf("unexpected server %v", res.Server)
		}
	}
	// The publishing servers locate themselves at distance 0.
	for _, s := range []*Node{a, b} {
		var cost netsim.Cost
		res := s.Locate(guid, &cost)
		if !res.Found || !res.Server.Equal(s.id) {
			t.Fatalf("server should find its own replica first, got %v", res.Server)
		}
		if cost.Distance() > 0 {
			t.Errorf("self-locate traveled %g", cost.Distance())
		}
	}
	_ = net
}

func TestUnpublishRemovesObject(t *testing.T) {
	m, nodes := buildMesh(t, 24, testConfig(), 10)
	guid := testSpec.Hash("volatile")
	server := nodes[2]
	if err := server.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	server.Unpublish(guid, nil)
	for _, c := range nodes {
		if res := c.Locate(guid, nil); res.Found {
			t.Fatalf("object still locatable from %v after unpublish", c.id)
		}
	}
	// No pointer debris anywhere.
	for _, n := range m.Nodes() {
		if n.PointerCount() != 0 {
			t.Errorf("node %v still holds %d pointers", n.id, n.PointerCount())
		}
	}
}

func TestMultiRootPublishing(t *testing.T) {
	cfg := testConfig()
	cfg.RootSetSize = 3
	_, nodes := buildMesh(t, 32, cfg, 11)
	guid := testSpec.Hash("multi-root")
	if err := nodes[1].Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	// Every salt-specific query succeeds (Observation 2).
	for salt := 0; salt < 3; salt++ {
		for _, c := range []*Node{nodes[0], nodes[10], nodes[20]} {
			if res := c.LocateVia(guid, salt, nil); !res.Found {
				t.Fatalf("salt %d locate failed from %v", salt, c.id)
			}
		}
	}
}

func TestPointerCountsAndRoots(t *testing.T) {
	m, nodes := buildMesh(t, 24, testConfig(), 12)
	guid := testSpec.Hash("counted")
	if err := nodes[0].Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	totalPtrs, totalRoots := 0, 0
	for _, n := range m.Nodes() {
		totalPtrs += n.PointerCount()
		totalRoots += n.RootCount()
	}
	if totalPtrs == 0 {
		t.Error("publish deposited no pointers")
	}
	if totalRoots != 1 {
		t.Errorf("object should have exactly one root record, got %d", totalRoots)
	}
}

func TestJoinCostScalesPolylog(t *testing.T) {
	// Insert cost (Table 1): messages per join should be polylogarithmic —
	// far below linear. We bound the mean join cost at n=64 by n itself and
	// require it to be non-trivial.
	_, costsSmall := growOnly(t, 64, 20)
	mean := 0.0
	for _, c := range costsSmall[32:] {
		mean += float64(c)
	}
	mean /= float64(len(costsSmall) - 32)
	if mean <= 0 {
		t.Fatal("join cost accounting broken")
	}
	if mean > 64*16 {
		t.Errorf("mean join cost %.0f messages looks super-polylogarithmic", mean)
	}
}

func growOnly(t *testing.T, n int, seed int64) (*Mesh, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	space := metric.NewRing(n * 4)
	net := netsim.New(space)
	m, err := NewMesh(net, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, n)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	_, costs, err := m.GrowSequential(addrs, rng)
	if err != nil {
		t.Fatal(err)
	}
	return m, costs
}
