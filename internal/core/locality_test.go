package core

import (
	"math/rand"
	"testing"

	"tapestry/internal/metric"
	"tapestry/internal/netsim"
)

// buildStubMesh grows a mesh over a transit-stub topology, returning the
// mesh and, for convenience, the nodes grouped by stub region.
func buildStubMesh(t testing.TB, seed int64) (*Mesh, map[int][]*Node) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ts := metric.NewTransitStub(metric.DefaultTransitStub(), rng)
	net := netsim.New(ts)
	m, err := NewMesh(net, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Host nodes on every stub point (skip transit routers: region -1).
	labels := metric.Regions(ts)
	var addrs []netsim.Addr
	for a := 0; a < ts.Size(); a++ {
		if labels[a] >= 0 {
			addrs = append(addrs, netsim.Addr(a))
		}
	}
	if _, _, err := m.GrowSequential(addrs, rng); err != nil {
		t.Fatal(err)
	}
	byRegion := map[int][]*Node{}
	for _, n := range m.Nodes() {
		byRegion[m.regionOf(n.addr)] = append(byRegion[m.regionOf(n.addr)], n)
	}
	return m, byRegion
}

func TestLocalLocateNeverLeavesStub(t *testing.T) {
	m, byRegion := buildStubMesh(t, 51)
	// Pick a stub with several nodes; publish locally from one of them.
	var region int
	var members []*Node
	for r, ms := range byRegion {
		if len(ms) >= 4 {
			region, members = r, ms
			break
		}
	}
	if members == nil {
		t.Fatal("no populated stub")
	}
	server := members[0]
	guid := testSpec.Hash("stub-local-object")
	if err := server.PublishLocal(guid, nil); err != nil {
		t.Fatal(err)
	}
	ts := m.Net().Space()
	intraMax := 0.0
	for _, a := range members {
		for _, b := range members {
			if d := ts.Distance(int(a.addr), int(b.addr)); d > intraMax {
				intraMax = d
			}
		}
	}
	for _, client := range members[1:] {
		var cost netsim.Cost
		res, local := client.LocateLocal(guid, &cost)
		if !res.Found {
			t.Fatalf("intra-stub locate failed from %v", client.id)
		}
		if !local {
			t.Fatalf("query from %v left the stub despite a local replica", client.id)
		}
		// Every hop stayed inside the stub, so the total distance is bounded
		// by the stub diameter per message; each routing hop is an RPC whose
		// response leg also charges distance (2 messages per hop).
		if cost.Distance() > 2*float64(cost.Hops())*intraMax+1e-9 {
			t.Fatalf("query paid wide-area latency %g (stub diameter %g, %d hops)",
				cost.Distance(), intraMax, cost.Hops())
		}
	}
	_ = region
}

func TestLocalLocateFallsBackToWideArea(t *testing.T) {
	_, byRegion := buildStubMesh(t, 52)
	var regions []int
	for r, ms := range byRegion {
		if len(ms) >= 2 {
			regions = append(regions, r)
		}
		if len(regions) == 2 {
			break
		}
	}
	if len(regions) < 2 {
		t.Fatal("need two stubs")
	}
	server := byRegion[regions[0]][0]
	client := byRegion[regions[1]][0]
	guid := testSpec.Hash("remote-object")
	if err := server.PublishLocal(guid, nil); err != nil {
		t.Fatal(err)
	}
	res, local := client.LocateLocal(guid, nil)
	if !res.Found {
		t.Fatal("wide-area fallback failed")
	}
	if local {
		t.Error("claimed local satisfaction for a remote-only object")
	}
}

func TestPublishLocalDegradesWithoutRegions(t *testing.T) {
	_, nodes := buildMesh(t, 16, testConfig(), 53)
	guid := testSpec.Hash("plain-metric")
	if err := nodes[0].PublishLocal(guid, nil); err != nil {
		t.Fatal(err)
	}
	res, local := nodes[4].LocateLocal(guid, nil)
	if !res.Found || local {
		t.Fatalf("degraded path broken: found=%v local=%v", res.Found, local)
	}
}
