package core

import (
	"math/rand"
	"testing"

	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
)

func buildStaticMesh(t testing.TB, n int, cfg Config, seed int64) *Mesh {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	space := metric.NewRing(n * 4)
	net := netsim.New(space)
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, n)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	parts := StaticParticipants(cfg.Spec, addrs, rng)
	m, err := BuildStatic(net, cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStaticBuildSatisfiesAllProperties(t *testing.T) {
	m := buildStaticMesh(t, 64, testConfig(), 41)
	if v := m.AuditProperty1(); len(v) != 0 {
		t.Fatalf("static Property 1:\n%v", v[:min(5, len(v))])
	}
	if v := m.AuditProperty2(); len(v) != 0 {
		t.Fatalf("static Property 2:\n%v", v[:min(5, len(v))])
	}
	rng := rand.New(rand.NewSource(42))
	keys := make([]ids.ID, 16)
	for i := range keys {
		keys[i] = testSpec.Random(rng)
	}
	if v := m.AuditUniqueRoots(keys); len(v) != 0 {
		t.Fatalf("static roots: %v", v)
	}
}

func TestStaticRejectsDuplicates(t *testing.T) {
	net := netsim.New(metric.NewRing(16))
	id1 := testSpec.Hash("x")
	if _, err := BuildStatic(net, testConfig(), []Participant{{id1, 0}, {id1, 1}}); err == nil {
		t.Error("duplicate ID must fail")
	}
	id2 := testSpec.Hash("y")
	if _, err := BuildStatic(net, testConfig(), []Participant{{id1, 0}, {id2, 0}}); err == nil {
		t.Error("duplicate address must fail")
	}
}

func TestStaticMeshServesObjects(t *testing.T) {
	m := buildStaticMesh(t, 48, testConfig(), 43)
	nodes := m.Nodes()
	guid := testSpec.Hash("static-object")
	if err := nodes[7].Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	for _, c := range nodes {
		if res := c.Locate(guid, nil); !res.Found {
			t.Fatalf("locate failed from %v on static mesh", c.id)
		}
	}
}

// TestDynamicMatchesStatic is the Section 4 equivalence claim: growing a
// mesh by sequential insertion (with full k) yields routing tables
// equivalent to the omniscient static construction — same set of slot
// occupants up to distance ties.
func TestDynamicMatchesStatic(t *testing.T) {
	cfg := testConfig()
	cfg.K = 40
	seed := int64(44)
	rng := rand.New(rand.NewSource(seed))
	space := metric.NewRing(160)
	netDyn := netsim.New(space)
	mDyn, err := NewMesh(netDyn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, 40)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	dynNodes, _, err := mDyn.GrowSequential(addrs, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Static twin with the same IDs and addresses.
	parts := make([]Participant, len(dynNodes))
	for i, n := range dynNodes {
		parts[i] = Participant{ID: n.id, Addr: n.addr}
	}
	netStat := netsim.New(space)
	mStat, err := BuildStatic(netStat, cfg, parts)
	if err != nil {
		t.Fatal(err)
	}
	mismatches := 0
	for _, dn := range dynNodes {
		sn := mStat.NodeByID(dn.id)
		for l := 0; l < testSpec.Digits; l++ {
			for d := 0; d < testSpec.Base; d++ {
				ds := dn.table.Set(l, ids.Digit(d))
				ss := sn.table.Set(l, ids.Digit(d))
				if len(ds) != len(ss) {
					mismatches++
					continue
				}
				for i := range ds {
					// Compare by distance (ties are interchangeable).
					if ds[i].Distance != ss[i].Distance {
						mismatches++
						break
					}
				}
			}
		}
	}
	if mismatches != 0 {
		t.Fatalf("%d slots differ between dynamic and static construction", mismatches)
	}
}

// staticParts draws a deterministic participant set on a fresh network.
// Byte-identity is compared through meshFingerprint (nearest_test.go).
func staticParts(n int, seed int64) (*netsim.Network, []Participant) {
	rng := rand.New(rand.NewSource(seed))
	space := metric.NewRing(n * 4)
	net := netsim.New(space)
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, n)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	return net, StaticParticipants(testConfig().Spec, addrs, rng)
}

// TestBuildStaticWorkerInvariance pins the parallel-construction contract:
// the mesh BuildStaticWith produces is byte-identical for every worker
// count, and identical to what the sequential single-worker fill produces.
func TestBuildStaticWorkerInvariance(t *testing.T) {
	var prints []string
	for _, workers := range []int{1, 3, 8} {
		net, parts := staticParts(96, 51)
		m, err := BuildStaticWith(net, testConfig(), parts, workers)
		if err != nil {
			t.Fatal(err)
		}
		prints = append(prints, meshFingerprint(m))
	}
	if prints[0] != prints[1] || prints[0] != prints[2] {
		t.Fatal("BuildStaticWith output differs across worker counts")
	}
}

// TestBuildStaticSampledInvariantAndProperty1 checks the sampled large-scale
// builder: byte-identical across worker counts, and Property 1 (no false
// holes) holds exactly despite the approximate neighbor selection.
func TestBuildStaticSampledInvariantAndProperty1(t *testing.T) {
	var prints []string
	var last *Mesh
	for _, workers := range []int{1, 8} {
		net, parts := staticParts(128, 52)
		m, err := BuildStaticSampled(net, testConfig(), parts, 8, workers)
		if err != nil {
			t.Fatal(err)
		}
		prints = append(prints, meshFingerprint(m))
		last = m
	}
	if prints[0] != prints[1] {
		t.Fatal("BuildStaticSampled output differs across worker counts")
	}
	if v := last.AuditProperty1(); len(v) != 0 {
		t.Fatalf("sampled build violates Property 1:\n%v", v[:min(5, len(v))])
	}
	// The sampled mesh must also serve objects end to end.
	nodes := last.Nodes()
	guid := testSpec.Hash("sampled-object")
	if err := nodes[11].Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	for _, c := range nodes[:16] {
		if res := c.Locate(guid, nil); !res.Found {
			t.Fatalf("locate failed from %v on sampled mesh", c.id)
		}
	}
}
