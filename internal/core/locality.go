package core

import (
	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
)

// Section 6.3 locality enhancement: on transit-stub topologies, latency
// differences between intra-stub and inter-stub paths are an order of
// magnitude or more, so "an object locate request never leaves the
// originating stub if there is a copy of the object somewhere inside the
// stub". Publication spawns a local-branch publish restricted to the stub,
// rooted at a stub-local surrogate; queries try the stub-restricted route
// first and resume wide-area routing only on a local miss.
//
// The stub oracle is the metric's region labelling (metric.Regions; the
// transit-stub generator populates it for both the matrix and the on-demand
// representation); in deployments the paper suggests approximating it with a
// latency threshold.

// regionOf returns the locality region of an address, or -1 when the metric
// has no region structure (transit routers also report -1: they belong to
// the wide area). The labelling is cached on the Mesh at construction.
func (m *Mesh) regionOf(a netsim.Addr) int {
	if len(m.regions) > 0 {
		return m.regions[a]
	}
	return -1
}

// nextHopLocal makes the surrogate-routing decision restricted to neighbors
// inside the given region ("treats the local network as its entire domain").
// The caller holds n.mu.
func (n *Node) nextHopLocal(key ids.ID, level, region int) hopDecision {
	digits := n.table.Levels()
	base := n.table.Base()
	for l := level; l < digits; l++ {
		var chosen []route.Entry
		want := int(key.Digit(l))
		for i := 0; i < base; i++ {
			var local []route.Entry
			for _, e := range n.table.SetView(l, ids.Digit((want+i)%base)) {
				if n.mesh.regionOf(e.Addr) == region {
					local = append(local, e)
				}
			}
			if len(local) > 0 {
				chosen = local
				break
			}
		}
		if len(chosen) == 0 {
			return hopDecision{terminal: true}
		}
		if chosen[0].ID.Equal(n.id) {
			continue
		}
		return hopDecision{next: chosen[0], nextLevel: l + 1}
	}
	return hopDecision{terminal: true}
}

// localWalk routes from n toward key using only stub-internal links,
// applying visit at each node (including endpoints); it returns the local
// root. All hops are intra-stub by construction.
func (n *Node) localWalk(key ids.ID, region int, cost *netsim.Cost, visit func(cur *Node, level int) bool) *Node {
	f := n.mesh.getFrames()
	defer n.mesh.putFrames(f)
	f.local.Key, f.local.Region = key, region
	cur := n
	level := 0
	hops := 0
	maxHops := n.table.Levels()*n.table.Base() + 8
	for hops <= maxHops {
		if visit != nil && visit(cur, level) {
			return cur
		}
		cur.mu.Lock()
		dec := cur.nextHopLocal(key, level, region)
		cur.mu.Unlock()
		if dec.terminal {
			return cur
		}
		f.local.Level = dec.nextLevel
		next, err := n.mesh.invoke(cur.addr, dec.next, &f.local, msgAck, cost, true)
		if err != nil {
			cur.noteDead(dec.next, cost)
			continue
		}
		cur = next
		level = dec.nextLevel
		hops++
	}
	return cur
}

// PublishLocal publishes the object both wide-area (the ordinary publish)
// and along a stub-restricted branch rooted inside the server's stub, so
// stub-mates can find it without wide-area traffic. On metrics without
// region structure it degrades to a plain Publish.
func (n *Node) PublishLocal(guid ids.ID, cost *netsim.Cost) error {
	if err := n.Publish(guid, cost); err != nil {
		return err
	}
	region := n.mesh.regionOf(n.addr)
	if region < 0 {
		return nil
	}
	now := n.mesh.net.Epoch()
	for i := 0; i < n.mesh.cfg.RootSetSize; i++ {
		key := n.mesh.cfg.Spec.Salt(guid, i)
		prevID, prevAddr := ids.ID{}, n.addr
		n.localWalk(key, region, cost, func(cur *Node, level int) bool {
			cur.depositPointer(pointerRec{
				guid: guid, server: n.id, serverAddr: n.addr,
				key: key, lastHop: prevID, lastAddr: prevAddr,
				level: level, epoch: now,
			})
			prevID, prevAddr = cur.id, cur.addr
			return false
		})
	}
	return nil
}

// LocateLocal performs the two-phase query of Section 6.3: first a
// stub-restricted search (which cannot leave the client's stub), then, on a
// miss, the ordinary wide-area locate. The second return value reports
// whether the query was satisfied without leaving the stub.
func (n *Node) LocateLocal(guid ids.ID, cost *netsim.Cost) (LocateResult, bool) {
	region := n.mesh.regionOf(n.addr)
	if region >= 0 {
		key := n.mesh.cfg.Spec.Salt(guid, 0)
		var found LocateResult
		hops := 0
		n.localWalk(key, region, cost, func(cur *Node, level int) bool {
			res, ok := cur.serveQueryLocal(guid, region, cost, &hops)
			if ok {
				found = res
				return true
			}
			hops++
			return false
		})
		if found.Found {
			return found, true
		}
	}
	return n.Locate(guid, cost), false
}

// serveQueryLocal answers from pointers whose replica lives in the same
// stub; remote replicas are ignored so the local phase never leaves. Like
// serveQuery, selection is a single pass under the lock and a replica that
// turns out dead or no longer publishing is purged on the spot (previously
// stale local pointers were silently skipped and re-probed by every later
// query until TTL expiry).
func (cur *Node) serveQueryLocal(guid ids.ID, region int, cost *netsim.Cost, hops *int) (LocateResult, bool) {
	var buf [16]pointerRec
	for {
		// Snapshot the stub-local records under the lock (the region check is
		// a slice index); measure distances and verify outside it, exactly as
		// serveQuery does.
		recs := buf[:0]
		cur.mu.Lock()
		if st := cur.objects[guid]; st != nil {
			for i := range st.recs {
				if cur.mesh.regionOf(st.recs[i].serverAddr) == region {
					recs = append(recs, st.recs[i])
				}
			}
		}
		cur.mu.Unlock()
		if len(recs) == 0 {
			return LocateResult{}, false
		}
		best := 0
		bestD := cur.mesh.net.Distance(cur.addr, recs[0].serverAddr)
		for i := 1; i < len(recs); i++ {
			if d := cur.mesh.net.Distance(cur.addr, recs[i].serverAddr); d < bestD {
				best, bestD = i, d
			}
		}
		rec := recs[best]
		if !cur.verifyReplica(guid, rec.server, rec.serverAddr, cost) {
			cur.purgePointer(guid, rec.server, rec.key)
			continue
		}
		*hops++
		return LocateResult{Found: true, Server: rec.server, ServerAddr: rec.serverAddr,
			FoundAt: cur.id, Hops: *hops}, true
	}
}
