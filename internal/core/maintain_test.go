package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
)

// sortedPointerState renders every pointer record in the mesh in canonical
// (node, guid, line) order. Unlike meshFingerprint it is insensitive to the
// order records were appended in, so it can compare meshes that deposited
// the same pointer set along different schedules (batched vs unbatched).
func sortedPointerState(m *Mesh) string {
	var lines []string
	for _, n := range m.Nodes() {
		n.mu.Lock()
		for _, g := range sortedGUIDs(n.objects) {
			for _, r := range n.objects[g].recs {
				lines = append(lines, fmt.Sprintf(
					"%v %v srv=%v key=%v lvl=%d last=%v root=%v ep=%d",
					n.id, g, r.server, r.key, r.level, r.lastHop, r.root, r.epoch))
			}
		}
		n.mu.Unlock()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// publishSharedPrefix publishes count objects from server whose GUIDs all
// start with the same digit, so their publish paths share early hops — the
// regime batching is supposed to exploit.
func publishSharedPrefix(t *testing.T, server *Node, count int) []ids.ID {
	t.Helper()
	want := server.id.Digit(0)
	var guids []ids.ID
	for i := 0; len(guids) < count; i++ {
		g := testSpec.Hash(fmt.Sprintf("batch-obj-%d", i))
		if g.Digit(0) != want {
			continue
		}
		if err := server.Publish(g, nil); err != nil {
			t.Fatalf("Publish %v: %v", g, err)
		}
		guids = append(guids, g)
		if i > 64*count {
			t.Fatalf("could not mine %d GUIDs with first digit %d", count, want)
		}
	}
	return guids
}

// TestRepublishAllBatchedMatchesUnbatched: on twin meshes, the batched
// caravan republish and the legacy per-object walk must produce
// byte-identical mesh state — same pointers, same roots, same tables — while
// the batched version spends strictly fewer messages.
func TestRepublishAllBatchedMatchesUnbatched(t *testing.T) {
	cfg := testConfig()
	cfg.RootSetSize = 2
	build := func() (*Mesh, *Node) {
		m, nodes := buildMesh(t, 40, cfg, 34)
		server := nodes[3]
		for i := 0; i < 16; i++ {
			g := testSpec.Hash(fmt.Sprintf("repub-eq-%d", i))
			if err := server.Publish(g, nil); err != nil {
				t.Fatal(err)
			}
		}
		return m, server
	}

	mBatched, sBatched := build()
	mLegacy, sLegacy := build()
	if f1, f2 := meshFingerprint(mBatched), meshFingerprint(mLegacy); f1 != f2 {
		t.Fatal("twin meshes diverged before republish (build nondeterminism)")
	}

	var costBatched, costLegacy netsim.Cost
	sBatched.RepublishAll(&costBatched)
	for _, g := range sLegacy.PublishedObjects() {
		if err := sLegacy.republishObject(g, &costLegacy); err != nil {
			t.Fatalf("republishObject %v: %v", g, err)
		}
	}

	if f1, f2 := meshFingerprint(mBatched), meshFingerprint(mLegacy); f1 != f2 {
		t.Errorf("batched republish changed mesh state vs per-object walk:\n--- batched ---\n%s\n--- unbatched ---\n%s", f1, f2)
	}
	if p1, p2 := sortedPointerState(mBatched), sortedPointerState(mLegacy); p1 != p2 {
		t.Errorf("pointer state diverged:\n--- batched ---\n%s\n--- unbatched ---\n%s", p1, p2)
	}
	b, u := costBatched.Messages(), costLegacy.Messages()
	if b >= u {
		t.Errorf("batched republish sent %d messages, unbatched %d; want strictly fewer", b, u)
	}
	t.Logf("republish messages: batched=%d unbatched=%d (%.0f%%)", b, u, 100*float64(b)/float64(u))
}

// TestRepublishBatchedScalesWithNextHops: when every record leaves the
// server through the same routing slot, the caravan's first wave is one
// message regardless of how many objects ride it. Shared-prefix GUIDs give
// long shared path segments, so the total must come in well under the
// per-path walk (which pays every hop once per record).
func TestRepublishBatchedScalesWithNextHops(t *testing.T) {
	cfg := testConfig()
	cfg.RootSetSize = 2
	build := func() (*Mesh, *Node) {
		m, nodes := buildMesh(t, 40, cfg, 91)
		return m, nodes[0]
	}
	mBatched, sBatched := build()
	mLegacy, sLegacy := build()
	publishSharedPrefix(t, sBatched, 12)
	guids := publishSharedPrefix(t, sLegacy, 12)

	var costBatched, costLegacy netsim.Cost
	sBatched.RepublishAll(&costBatched)
	for _, g := range guids {
		if err := sLegacy.republishObject(g, &costLegacy); err != nil {
			t.Fatal(err)
		}
	}
	if p1, p2 := sortedPointerState(mBatched), sortedPointerState(mLegacy); p1 != p2 {
		t.Fatal("pointer state diverged between batched and unbatched republish")
	}
	b, u := costBatched.Messages(), costLegacy.Messages()
	// 24 records share the server's first hop (one group ≡ one message where
	// the walk pays 24), and keep sharing while prefixes agree; well under
	// 2/3 of the unbatched cost is a conservative floor for this topology.
	if 3*b >= 2*u {
		t.Errorf("batched republish sent %d messages vs unbatched %d; want < 2/3", b, u)
	}
	t.Logf("shared-prefix republish messages: batched=%d unbatched=%d (%.0f%%)", b, u, 100*float64(b)/float64(u))
}

// TestRepublishBatchedDeadHop: a dead node on the publish paths forces the
// caravan through the group re-decide path. The surviving pointer state must
// match what the per-object walk (which retries through secondaries one
// path at a time) leaves behind, and the objects must stay locatable.
func TestRepublishBatchedDeadHop(t *testing.T) {
	cfg := testConfig()
	cfg.RootSetSize = 2
	build := func() (*Mesh, *Node, []ids.ID) {
		m, nodes := buildMesh(t, 40, cfg, 34)
		server := nodes[3]
		var guids []ids.ID
		for i := 0; i < 16; i++ {
			g := testSpec.Hash(fmt.Sprintf("repub-dead-%d", i))
			if err := server.Publish(g, nil); err != nil {
				t.Fatal(err)
			}
			guids = append(guids, g)
		}
		// Kill a node that holds pointers for the first object — guaranteed
		// to sit on at least one publish path — choosing the highest-ID
		// holder so the pick is deterministic and never the server itself.
		var victim *Node
		for _, n := range m.Nodes() {
			if n == server {
				continue
			}
			n.mu.Lock()
			_, holds := n.objects[guids[0]]
			n.mu.Unlock()
			if holds {
				victim = n
			}
		}
		if victim == nil {
			t.Fatal("no pointer holder besides the server")
		}
		m.Fail(victim)
		return m, server, guids
	}

	mBatched, sBatched, guids := build()
	mLegacy, sLegacy, _ := build()

	var cost netsim.Cost
	sBatched.RepublishAll(&cost)
	for _, g := range sLegacy.PublishedObjects() {
		_ = sLegacy.republishObject(g, &cost) // dead hops may surface as errors
	}

	if p1, p2 := sortedPointerState(mBatched), sortedPointerState(mLegacy); p1 != p2 {
		t.Errorf("pointer state diverged after dead-hop republish:\n--- batched ---\n%s\n--- unbatched ---\n%s", p1, p2)
	}
	// Every object must remain locatable from an arbitrary distant node.
	nodes := mBatched.Nodes()
	querier := nodes[len(nodes)-1]
	for _, g := range guids {
		if res := querier.Locate(g, nil); !res.Found || !res.Server.Equal(sBatched.id) {
			t.Errorf("object %v unlocatable after batched republish around dead hop", g)
		}
	}
}

// TestSweepDeadAllMatchesPerNodeSweep: with the same failed nodes, the
// mesh-wide coalesced sweep must remove exactly the links the per-node
// sweeps remove and leave a byte-identical mesh — only cheaper, because
// each distinct neighbor is probed once instead of once per holder.
func TestSweepDeadAllMatchesPerNodeSweep(t *testing.T) {
	build := func() *Mesh {
		m, _ := buildMesh(t, 40, testConfig(), 34)
		nodes := m.Nodes()
		for i := 5; i < len(nodes); i += 9 { // fail 4 nodes, ID order
			m.Fail(nodes[i])
		}
		return m
	}

	mAll := build()
	mPer := build()
	if f1, f2 := meshFingerprint(mAll), meshFingerprint(mPer); f1 != f2 {
		t.Fatal("twin meshes diverged before sweep")
	}

	var costAll, costPer netsim.Cost
	removedAll := mAll.SweepDeadAll(&costAll)
	removedPer := 0
	for _, n := range mPer.Nodes() {
		removedPer += n.SweepDead(&costPer)
	}

	if removedAll != removedPer {
		t.Errorf("SweepDeadAll removed %d links, per-node sweeps removed %d", removedAll, removedPer)
	}
	if removedAll == 0 {
		t.Error("expected dead links after failing 4 nodes")
	}
	if f1, f2 := meshFingerprint(mAll), meshFingerprint(mPer); f1 != f2 {
		t.Errorf("mesh state diverged between coalesced and per-node sweeps:\n--- all ---\n%s\n--- per ---\n%s", f1, f2)
	}
	a, p := costAll.Messages(), costPer.Messages()
	if a >= p {
		t.Errorf("SweepDeadAll sent %d messages, per-node sweeps %d; want strictly fewer", a, p)
	}
	t.Logf("sweep messages: coalesced=%d per-node=%d (%.0f%%)", a, p, 100*float64(a)/float64(p))
}

// TestSweepDeadAllProbesDistinctOnce: on a fully live mesh the coalesced
// sweep's traffic is exactly one round trip per distinct neighbor
// referenced anywhere — message count scales with distinct addresses, not
// with total links.
func TestSweepDeadAllProbesDistinctOnce(t *testing.T) {
	m, _ := buildMesh(t, 40, testConfig(), 55)

	distinct := map[ids.ID]struct{}{}
	perNodeSum := 0
	for _, n := range m.Nodes() {
		local := map[ids.ID]struct{}{}
		for _, es := range n.snapshotTable() {
			for _, e := range es {
				local[e.ID] = struct{}{}
				distinct[e.ID] = struct{}{}
			}
		}
		perNodeSum += len(local)
	}

	var cost netsim.Cost
	if removed := m.SweepDeadAll(&cost); removed != 0 {
		t.Fatalf("live mesh sweep removed %d links", removed)
	}
	// A live probe is a request plus a response (Mesh.rpc), nothing else.
	if got, want := cost.Messages(), 2*len(distinct); got != want {
		t.Errorf("SweepDeadAll sent %d messages; want %d (one round trip per %d distinct neighbors)",
			got, want, len(distinct))
	}
	if 2*len(distinct) >= 2*perNodeSum {
		t.Fatalf("topology has no shared neighbors (distinct=%d sum=%d): test is vacuous",
			len(distinct), perNodeSum)
	}
	t.Logf("distinct neighbors=%d vs per-node link sum=%d", len(distinct), perNodeSum)
}
