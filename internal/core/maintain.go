package core

import (
	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
	"tapestry/internal/wire"
)

// Batched soft-state maintenance (Section 6.5). The per-object, per-link
// versions of the heartbeat and the republish refresh send traffic
// proportional to links and objects×hops respectively; a maintenance epoch
// over a settled mesh repeats almost all of that work. The two entry points
// here coalesce it:
//
//   - Mesh.SweepDeadAll probes each distinct neighbor once per epoch
//     mesh-wide and shares the verdict across every node that links to it,
//     so probe traffic scales with distinct addresses rather than total
//     links.
//   - Node.republishBatched drives all of a server's publish records as one
//     caravan: at every node on the way records sharing the same next hop
//     ride a single grouped message, so refresh traffic scales with the
//     distinct routes out of each node rather than objects×hops.
//
// Both preserve the unbatched semantics — SweepDead's per-level dead-link
// counts and publishPath's deposit/convergence/teardown behavior — and both
// stay deterministic: nodes in ID order, records in (GUID, salt) order,
// next-hop groups in first-seen order.

// SweepDeadAll runs the Section 6.5 heartbeat for every node with epoch-wide
// probe coalescing: each distinct neighbor is probed once (by the first node
// in ID order that links to it) and the liveness verdict is shared, after
// which every holder of a dead link drops it through the same noteDead path
// the per-node sweep uses — per-level removal counts and repair behavior are
// identical, only the redundant probes are gone. Returns the total number of
// dead links removed across the mesh.
func (m *Mesh) SweepDeadAll(cost *netsim.Cost) int {
	verdict := map[ids.ID]bool{}
	removed := 0
	for _, n := range m.Nodes() {
		// Per-node iteration mirrors Node.SweepDead: ascending level order
		// over a snapshot, each distinct neighbor considered once, so the
		// order repairs run in (and with it eviction tie-breaks) matches the
		// unbatched sweep's determinism contract.
		neighbors := n.snapshotTable()
		seen := map[ids.ID]struct{}{}
		for _, l := range sortedLevels(neighbors) {
			for _, e := range neighbors[l] {
				if _, dup := seen[e.ID]; dup {
					continue
				}
				seen[e.ID] = struct{}{}
				alive, probed := verdict[e.ID]
				if !probed {
					_, err := m.invoke(n.addr, e, msgPing, msgAck, cost, false)
					alive = err == nil
					verdict[e.ID] = alive
				}
				if !alive {
					removed += n.noteDead(e, cost)
				}
			}
		}
	}
	return removed
}

// republishBatched re-lays the publish paths of the given served objects,
// visiting nodes exactly as publishPath would (deposit at every hop,
// convergence teardown, root flag at the terminal) but carrying all records
// together and spending ONE message per distinct next hop per node instead
// of one per record. Records that terminate on a mid-insertion node fall
// back to the single-path walk, which implements the Figure 10 bounce.
func (n *Node) republishBatched(guids []ids.ID, cost *netsim.Cost) {
	spec := n.mesh.cfg.Spec
	now := n.mesh.net.Epoch()
	recs := make([]wire.PubRec, 0, len(guids)*n.mesh.cfg.RootSetSize)
	for _, g := range guids {
		for i := 0; i < n.mesh.cfg.RootSetSize; i++ {
			recs = append(recs, wire.PubRec{GUID: g, Key: spec.Salt(g, i), PrevAddr: n.addr, Salt: i})
		}
	}

	type batch struct {
		node *Node
		recs []wire.PubRec
	}
	maxHops := n.table.Levels()*n.table.Base() + 8 // same loop guard as routeToKey
	cf := n.mesh.getFrames()
	cf.caravan.Server, cf.caravan.ServerAddr = n.id, n.addr
	queue := []batch{{n, recs}}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		cur := b.node

		// Visit: deposit every record at this node; a changed lastHop on an
		// existing record means this path converged onto a stale trail,
		// which is torn down backwards (Figure 9) exactly as in publishPath.
		for i := range b.recs {
			r := &b.recs[i]
			rec := pointerRec{
				guid:       r.GUID,
				server:     n.id,
				serverAddr: n.addr,
				key:        r.Key,
				lastHop:    r.PrevID,
				lastAddr:   r.PrevAddr,
				level:      r.Level,
				epoch:      now,
			}
			old, existed := cur.depositPointer(rec)
			if existed && !old.lastHop.IsZero() && !old.lastHop.Equal(r.PrevID) {
				cur.deleteBackward(r.GUID, r.Key, n.id, old.lastHop, old.lastAddr, n.id, cost)
			}
		}

		// Decide next hops for the whole batch under one lock, group records
		// by next node in first-seen order, and forward each group with a
		// single message. A dead next hop is noted once and its group's
		// records re-decided with the corpse excluded, like routeToKey's
		// retry-through-secondaries.
		// nextLevels[i] is record i's digits-resolved counter after the
		// decided hop; recs[i].level itself stays the arrival level so a
		// failed hop re-decides from the same state routeToKey would.
		var deadSet map[ids.ID]struct{}
		nextLevels := make([]int, len(b.recs))
		type group struct {
			next route.Entry
			idxs []int
		}
		decide := func(idxs []int) (terminals []int, groups []*group) {
			byNext := map[ids.ID]*group{}
			cur.mu.Lock()
			for _, i := range idxs {
				dec := cur.nextHop(b.recs[i].Key, b.recs[i].Level, ids.ID{}, deadSet)
				if dec.terminal {
					terminals = append(terminals, i)
					continue
				}
				nextLevels[i] = dec.nextLevel
				g := byNext[dec.next.ID]
				if g == nil {
					g = &group{next: dec.next}
					byNext[dec.next.ID] = g
					groups = append(groups, g)
				}
				g.idxs = append(g.idxs, i)
			}
			cur.mu.Unlock()
			return terminals, groups
		}

		all := make([]int, len(b.recs))
		for i := range all {
			all[i] = i
		}
		terminals, groups := decide(all)

		for gi := 0; gi < len(groups); gi++ {
			g := groups[gi]
			// The forwarded records ride the CaravanStep hop itself (one
			// message per distinct next hop, as before).
			sub := make([]wire.PubRec, 0, len(g.idxs))
			for _, i := range g.idxs {
				r := b.recs[i]
				r.Level = nextLevels[i]
				r.PrevID, r.PrevAddr = cur.id, cur.addr
				r.Hops++
				if r.Hops > maxHops {
					continue // inconsistent mesh; drop like RepublishAll drops errors
				}
				sub = append(sub, r)
			}
			cf.caravan.Recs = sub
			next, err := n.mesh.invoke(cur.addr, g.next, &cf.caravan, msgAck, cost, true)
			if err != nil {
				if deadSet == nil {
					deadSet = make(map[ids.ID]struct{}, 2)
				}
				deadSet[g.next.ID] = struct{}{}
				cur.noteDead(g.next, cost)
				// Re-decide just this group's records; new groups append to
				// the worklist and terminals join the batch's terminal set.
				t2, g2 := decide(g.idxs)
				terminals = append(terminals, t2...)
				groups = append(groups, g2...)
				continue
			}
			if len(sub) > 0 {
				queue = append(queue, batch{next, sub})
			}
		}

		handleTerminalRecords(n, cur, b.recs, terminals, cost)
	}
	cf.caravan.Recs = nil
	n.mesh.putFrames(cf)
}

// handleTerminalRecords finishes records whose walk ends at cur: flag them
// as roots, unless cur is still inserting — then fall back to the unbatched
// publishPath, which implements the Figure 10 bounce off the pre-insertion
// surrogate.
func handleTerminalRecords(server, cur *Node, recs []wire.PubRec, idxs []int, cost *netsim.Cost) {
	if len(idxs) == 0 {
		return
	}
	cur.mu.Lock()
	inserting := cur.state == stateInserting
	bounce := inserting && !cur.psurrogate.ID.IsZero()
	if !bounce {
		for _, i := range idxs {
			if st := cur.objects[recs[i].GUID]; st != nil {
				for j := range st.recs {
					if st.recs[j].samePath(server.id, recs[i].Key) {
						st.recs[j].root = true
					}
				}
			}
		}
	}
	cur.mu.Unlock()
	if bounce {
		for _, i := range idxs {
			_ = server.publishPath(recs[i].GUID, recs[i].Key, cost)
		}
	}
}
