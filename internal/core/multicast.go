package core

import (
	"fmt"
	"sync"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
)

// slotRef names one routing-table slot (level, digit).
type slotRef struct {
	level int
	digit ids.Digit
}

// watchList is the Figure 11 watch list: the set of still-unfilled slots of
// an inserting node, shared (thread-safely) across the whole multicast so
// that any reached node that can fill a slot reports itself to the inserting
// node exactly once.
type watchList struct {
	mu      sync.Mutex
	newID   ids.ID
	unfired map[slotRef]bool
}

func newWatchList(newID ids.ID, slots []slotRef) *watchList {
	w := &watchList{newID: newID, unfired: make(map[slotRef]bool, len(slots))}
	for _, s := range slots {
		w.unfired[s] = true
	}
	return w
}

// claim reports the watched slots that x fills and atomically marks them
// fired, so only the first filler notifies the inserting node per slot.
func (w *watchList) claim(x ids.ID) []slotRef {
	if w == nil {
		return nil
	}
	cpl := ids.CommonPrefixLen(w.newID, x)
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []slotRef
	for s := range w.unfired {
		if s.level <= cpl && s.level < x.Len() && x.Digit(s.level) == s.digit {
			out = append(out, s)
			delete(w.unfired, s)
		}
	}
	return out
}

// mcastCtx carries one acknowledged-multicast operation.
type mcastCtx struct {
	fn   func(*Node) // applied exactly once per reached node (may be nil)
	cost *netsim.Cost

	// Insertion extensions (zero-valued for plain multicasts):
	newNode   route.Entry // the inserting node this multicast announces
	holeLevel int         // |α|: level of the hole the new node fills
	watch     *watchList
	newRef    *Node // resolved inserting node, for watch-list notifications

	mu      sync.Mutex
	visited map[string]bool
	reached []route.Entry // every node the multicast touched, with addr
}

func (ctx *mcastCtx) firstVisit(n *Node) bool {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	k := n.id.String()
	if ctx.visited[k] {
		return false
	}
	ctx.visited[k] = true
	ctx.reached = append(ctx.reached, route.Entry{ID: n.id, Addr: n.addr})
	return true
}

func (ctx *mcastCtx) reachedEntries() []route.Entry {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	out := make([]route.Entry, len(ctx.reached))
	copy(out, ctx.reached)
	return out
}

// AcknowledgedMulticast contacts every node whose ID has the given prefix
// (which must be a prefix of n's own ID), applying fn at each, and returns
// when all acknowledgments are in (Section 4.1, Figure 8; Theorem 5
// guarantees completeness given Property 1). It returns the set of reached
// nodes.
func (n *Node) AcknowledgedMulticast(p ids.Prefix, fn func(*Node), cost *netsim.Cost) ([]route.Entry, error) {
	if !n.id.HasPrefix(p) {
		return nil, fmt.Errorf("core: multicast prefix %v is not a prefix of %v", p, n.id)
	}
	ctx := &mcastCtx{fn: fn, cost: cost, visited: make(map[string]bool)}
	n.mcastArrive(p, ctx)
	return ctx.reachedEntries(), nil
}

// mcastArrive is the per-node message handler: arrival processing (pin the
// inserting node, answer the watch list), then fan-out. The synchronous
// return *is* the acknowledgment; when it returns, the entire subtree has
// been reached (Theorem 5's induction).
func (n *Node) mcastArrive(p ids.Prefix, ctx *mcastCtx) {
	if !ctx.firstVisit(n) {
		return // duplicate delivery via a pinned pointer; suppressed
	}
	pinnedHere := false
	if !ctx.newNode.ID.IsZero() && !ctx.newNode.ID.Equal(n.id) {
		// Pin the inserting node at the hole level so that (a) it cannot be
		// evicted mid-insertion and (b) other multicasts passing through
		// this slot are forwarded to it (Section 4.4).
		e := ctx.newNode
		e.Distance = n.mesh.net.Distance(n.addr, e.Addr)
		e.Pinned = true
		n.mu.Lock()
		added, evicted := n.table.Add(ctx.holeLevel, e)
		n.mu.Unlock()
		if added {
			pinnedHere = true
			n.sendBackpointerAdd(ctx.holeLevel, e, ctx.cost)
		}
		for _, ev := range evicted {
			n.sendBackpointerRemove(ctx.holeLevel, ev, ctx.cost)
		}
		// Watch list: if this node fills a slot the inserting node still
		// lacks, tell it directly (Figure 11, CheckForNodesAndSend).
		if slots := ctx.watch.claim(n.id); len(slots) > 0 && ctx.newRef != nil {
			if _, err := n.mesh.oneWay(n.addr, ctx.newNode, ctx.cost); err == nil {
				me := route.Entry{ID: n.id, Addr: n.addr,
					Distance: n.mesh.net.Distance(ctx.newNode.Addr, n.addr)}
				for _, s := range slots {
					ctx.newRef.addNeighborAndNotify(s.level, me, ctx.cost)
				}
			}
		}
	}

	n.mcastDescend(p, ctx)

	if pinnedHere {
		n.mu.Lock()
		evicted := n.table.Unpin(ctx.holeLevel, ctx.newNode.ID)
		n.mu.Unlock()
		for _, ev := range evicted {
			n.sendBackpointerRemove(ctx.holeLevel, ev, ctx.cost)
		}
	}
}

// mcastDescend forwards the multicast one digit deeper. The node sends to
// one (unpinned) node per extension digit — plus every pinned pointer, so
// concurrently inserting nodes are not missed — recursing on itself for its
// own digit. When the node believes it is the only node with the prefix, it
// applies the function: with self-recursion this makes every reached node
// apply exactly once.
func (n *Node) mcastDescend(p ids.Prefix, ctx *mcastCtx) {
	n.mu.Lock()
	if n.table.OnlyNodeWithPrefix(p) {
		n.mu.Unlock()
		if ctx.fn != nil {
			ctx.fn(n)
		}
		return
	}
	l := p.Len()
	type target struct {
		e route.Entry
		j ids.Digit
	}
	var selfDigit = n.id.Digit(l)
	var targets []target
	for j := 0; j < n.table.Base(); j++ {
		d := ids.Digit(j)
		set := n.table.Set(l, d)
		if len(set) == 0 {
			continue
		}
		sentUnpinned := false
		for _, e := range set {
			if e.Pinned {
				targets = append(targets, target{e, d})
			} else if !sentUnpinned {
				targets = append(targets, target{e, d})
				sentUnpinned = true
			}
		}
	}
	n.mu.Unlock()

	selfHandled := false
	for _, t := range targets {
		if t.e.ID.Equal(n.id) {
			if !selfHandled {
				selfHandled = true
				n.mcastDescend(p.Extend(selfDigit), ctx)
			}
			continue
		}
		if !ctx.newNode.ID.IsZero() && t.e.ID.Equal(ctx.newNode.ID) {
			continue // no point multicasting the new node to itself
		}
		child, err := n.mesh.rpc(n.addr, t.e, ctx.cost, false)
		if err != nil {
			n.noteDead(t.e, ctx.cost)
			continue
		}
		child.mcastArrive(p.Extend(t.j), ctx)
	}
	if !selfHandled {
		// The fan-out may have skipped the self digit if its set's primary
		// was pinned-only; the owner still covers its own subtree.
		n.mcastDescend(p.Extend(selfDigit), ctx)
	}
}
