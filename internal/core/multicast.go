package core

import (
	"fmt"
	"sort"
	"sync"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
	"tapestry/internal/wire"
)

// slotRef names one routing-table slot (level, digit).
type slotRef struct {
	level int
	digit ids.Digit
}

// watchList is the Figure 11 watch list: the set of still-unfilled slots of
// an inserting node, shared (thread-safely) across the whole multicast so
// that any reached node that can fill a slot reports itself to the inserting
// node exactly once.
type watchList struct {
	mu      sync.Mutex
	newID   ids.ID
	unfired map[slotRef]bool
}

func newWatchList(newID ids.ID, slots []slotRef) *watchList {
	w := &watchList{newID: newID, unfired: make(map[slotRef]bool, len(slots))}
	for _, s := range slots {
		w.unfired[s] = true
	}
	return w
}

// claim reports the watched slots that x fills and atomically marks them
// fired, so only the first filler notifies the inserting node per slot.
func (w *watchList) claim(x ids.ID) []slotRef {
	if w == nil {
		return nil
	}
	cpl := ids.CommonPrefixLen(w.newID, x)
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []slotRef
	for s := range w.unfired {
		if s.level <= cpl && s.level < x.Len() && x.Digit(s.level) == s.digit {
			out = append(out, s)
			delete(w.unfired, s)
		}
	}
	// unfired is a map; hand the claimed slots back in a fixed order so the
	// inserting node's notify sequence is reproducible.
	sort.Slice(out, func(i, j int) bool {
		if out[i].level != out[j].level {
			return out[i].level < out[j].level
		}
		return out[i].digit < out[j].digit
	})
	return out
}

// mcastCtx carries one acknowledged-multicast operation.
type mcastCtx struct {
	fn   func(*Node) // applied exactly once per reached node (may be nil)
	cost *netsim.Cost

	root ids.Prefix // the multicast's α: every node extending it is owed a visit

	// Insertion extensions (zero-valued for plain multicasts):
	newNode   route.Entry // the inserting node this multicast announces
	holeLevel int         // |α|: level of the hole the new node fills
	watch     *watchList
	newRef    *Node // resolved inserting node, for watch-list notifications

	mu      sync.Mutex
	visited map[ids.ID]struct{}
	reached []route.Entry // every node the multicast touched, with addr
	pinned  []*Node       // nodes holding the inserting node pinned (§4.4)
}

func (ctx *mcastCtx) firstVisit(n *Node) bool {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	if _, dup := ctx.visited[n.id]; dup {
		return false
	}
	ctx.visited[n.id] = struct{}{}
	ctx.reached = append(ctx.reached, route.Entry{ID: n.id, Addr: n.addr})
	return true
}

func (ctx *mcastCtx) reachedEntries() []route.Entry {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	out := make([]route.Entry, len(ctx.reached))
	copy(out, ctx.reached)
	return out
}

// AcknowledgedMulticast contacts every node whose ID has the given prefix
// (which must be a prefix of n's own ID), applying fn at each, and returns
// when all acknowledgments are in (Section 4.1, Figure 8; Theorem 5
// guarantees completeness given Property 1). It returns the set of reached
// nodes.
func (n *Node) AcknowledgedMulticast(p ids.Prefix, fn func(*Node), cost *netsim.Cost) ([]route.Entry, error) {
	if !n.id.HasPrefix(p) {
		return nil, fmt.Errorf("core: multicast prefix %v is not a prefix of %v", p, n.id)
	}
	ctx := &mcastCtx{fn: fn, cost: cost, root: p, visited: make(map[ids.ID]struct{})}
	n.mcastArrive(p, ctx)
	return ctx.reachedEntries(), nil
}

// mcastArrive is the per-node message handler: arrival processing (pin the
// inserting node, answer the watch list), then fan-out. The synchronous
// return *is* the acknowledgment; when it returns, the entire subtree has
// been reached (Theorem 5's induction).
func (n *Node) mcastArrive(p ids.Prefix, ctx *mcastCtx) {
	if !ctx.firstVisit(n) {
		return // duplicate delivery via a pinned pointer; suppressed
	}
	if !ctx.newNode.ID.IsZero() && !ctx.newNode.ID.Equal(n.id) {
		// Pin the inserting node at the hole level so that (a) it cannot be
		// evicted mid-insertion and (b) other multicasts passing through
		// this slot are forwarded to it (Section 4.4). The pin must outlive
		// this multicast: it is released only when the whole insertion
		// completes (see Mesh.Join), otherwise a second node inserting
		// concurrently can multicast during the window where this one is in
		// no table at all and the two never link (a Theorem 6 violation).
		e := ctx.newNode
		e.Distance = n.mesh.net.Distance(n.addr, e.Addr)
		e.Pinned = true
		n.mu.Lock()
		// Skip nodes that already hold the pin (the surrogate is pinned in
		// step 2 and pre-seeded in ctx.pinned): Add would report an
		// update-in-place as added=true, double-registering the release and
		// re-sending a backpointer the node already has.
		alreadyPinned := false
		for _, pe := range n.table.PinnedAt(ctx.holeLevel, e.ID.Digit(ctx.holeLevel)) {
			if pe.ID.Equal(e.ID) {
				alreadyPinned = true
				break
			}
		}
		added := false
		if !alreadyPinned {
			// A pinned add never evicts: pinned entries are exempt from the
			// R bound and cannot push the unpinned count over it.
			added, _ = n.table.Add(ctx.holeLevel, e)
		}
		n.mu.Unlock()
		if added {
			ctx.mu.Lock()
			ctx.pinned = append(ctx.pinned, n)
			ctx.mu.Unlock()
			n.sendBackpointerAdd(ctx.holeLevel, e, ctx.cost)
		}
		// Watch list: if this node fills a slot the inserting node still
		// lacks, tell it directly (Figure 11, CheckForNodesAndSend). The
		// inserting node's side — adopting the sender at each claimed slot —
		// runs in the McastNotify dispatch handler.
		if slots := ctx.watch.claim(n.id); len(slots) > 0 && ctx.newRef != nil {
			f := n.mesh.getFrames()
			f.notify.Me = route.Entry{ID: n.id, Addr: n.addr,
				Distance: n.mesh.net.Distance(ctx.newNode.Addr, n.addr)}
			f.notify.Slots = f.notify.Slots[:0]
			for _, s := range slots {
				f.notify.Slots = append(f.notify.Slots, wire.Slot{Level: s.level, Digit: s.digit})
			}
			_, _ = n.mesh.oneWayMsg(n.addr, ctx.newNode, &f.notify, ctx.cost)
			n.mesh.putFrames(f)
		}
	}

	// Forward to in-flight inserters BEFORE descending. Inserters are pinned
	// at their hole level, which the regular fan-out scans only at the root
	// depth (each node is visited once, at the depth the wavefront reaches
	// it, and OnlyNodeWithPrefix can end a visit before any fan-out). Every
	// pinned entry extending the multicast's root prefix is an α-node owed
	// a visit, wherever it is pinned. Ordering matters: this node pinned
	// ctx's inserter above before scanning, so of two multicasts crossing
	// at this node, at least one must see the other's pin — a mutual miss
	// would need each scan to precede the other's pin, which contradicts
	// pin-before-scan within each visit (§4.4, Theorem 6).
	n.mu.Lock()
	var inflight []route.Entry
	if n.table.PinnedCount() > 0 { // O(1) fast path: no insertion in flight here
		for lvl := 0; lvl < n.table.Levels(); lvl++ {
			for j := 0; j < n.table.Base(); j++ {
				for _, e := range n.table.PinnedAt(lvl, ids.Digit(j)) {
					if e.ID.Equal(n.id) || !e.ID.HasPrefix(ctx.root) {
						continue
					}
					inflight = append(inflight, e)
				}
			}
		}
	}
	n.mu.Unlock()
	for _, e := range inflight {
		if !ctx.newNode.ID.IsZero() && e.ID.Equal(ctx.newNode.ID) {
			continue
		}
		cp := ctx.root.Extend(e.ID.Digit(ctx.root.Len()))
		f := n.mesh.getFrames()
		f.mcast.P, f.mcast.Root = cp, ctx.root
		f.mcast.NewNode, f.mcast.HoleLevel = ctx.newNode, ctx.holeLevel
		child, err := n.mesh.invoke(n.addr, e, &f.mcast, msgAck, ctx.cost, false)
		n.mesh.putFrames(f)
		if err != nil {
			continue // died mid-insertion; its abort cleans up
		}
		child.mcastArrive(cp, ctx)
	}

	n.mcastDescend(p, ctx)
}

// releasePins unpins the inserting node at every node that pinned it,
// applying any deferred capacity evictions. Called by Mesh.Join once the
// insertion has fully completed and the new node is durably reachable.
func (ctx *mcastCtx) releasePins() {
	ctx.mu.Lock()
	pinned := ctx.pinned
	ctx.pinned = nil
	ctx.mu.Unlock()
	for _, x := range pinned {
		x.mu.Lock()
		evicted := x.table.Unpin(ctx.holeLevel, ctx.newNode.ID)
		x.mu.Unlock()
		for _, ev := range evicted {
			x.sendBackpointerRemove(ctx.holeLevel, ev, ctx.cost)
		}
	}
}

// mcastDescend forwards the multicast one digit deeper. The node sends to
// one (unpinned) node per extension digit — plus every pinned pointer, so
// concurrently inserting nodes are not missed — recursing on itself for its
// own digit. When the node believes it is the only node with the prefix, it
// applies the function: with self-recursion this makes every reached node
// apply exactly once.
func (n *Node) mcastDescend(p ids.Prefix, ctx *mcastCtx) {
	n.mu.Lock()
	if n.table.OnlyNodeWithPrefix(p) {
		n.mu.Unlock()
		if ctx.fn != nil {
			ctx.fn(n)
		}
		return
	}
	l := p.Len()
	type target struct {
		e route.Entry
		j ids.Digit
	}
	var selfDigit = n.id.Digit(l)
	var targets []target
	for j := 0; j < n.table.Base(); j++ {
		d := ids.Digit(j)
		set := n.table.SetView(l, d) // read-only under n.mu; entries copied below
		if len(set) == 0 {
			continue
		}
		sentUnpinned := false
		for _, e := range set {
			if e.Pinned {
				targets = append(targets, target{e, d})
			} else if !sentUnpinned {
				targets = append(targets, target{e, d})
				sentUnpinned = true
			}
		}
	}
	n.mu.Unlock()

	selfHandled := false
	for _, t := range targets {
		if t.e.ID.Equal(n.id) {
			if !selfHandled {
				selfHandled = true
				n.mcastDescend(p.Extend(selfDigit), ctx)
			}
			continue
		}
		if !ctx.newNode.ID.IsZero() && t.e.ID.Equal(ctx.newNode.ID) {
			continue // no point multicasting the new node to itself
		}
		cp := p.Extend(t.j)
		f := n.mesh.getFrames()
		f.mcast.P, f.mcast.Root = cp, ctx.root
		f.mcast.NewNode, f.mcast.HoleLevel = ctx.newNode, ctx.holeLevel
		child, err := n.mesh.invoke(n.addr, t.e, &f.mcast, msgAck, ctx.cost, false)
		n.mesh.putFrames(f)
		if err != nil {
			n.noteDead(t.e, ctx.cost)
			continue
		}
		child.mcastArrive(cp, ctx)
	}
	if !selfHandled {
		// The fan-out may have skipped the self digit if its set's primary
		// was pinned-only; the owner still covers its own subtree.
		n.mcastDescend(p.Extend(selfDigit), ctx)
	}
}
