package core

import (
	"fmt"
	"sync"
	"testing"

	"tapestry/internal/netsim"
)

func cacheConfig() Config {
	cfg := testConfig()
	cfg.LocateCacheCap = 64
	return cfg
}

// TestLocateCacheServesRepeatQueries: the second query for an object from
// the same client is answered from the client's own cached mapping — fewer
// hops than the pointer walk — and the mesh counters see the hit.
func TestLocateCacheServesRepeatQueries(t *testing.T) {
	m, nodes := buildMesh(t, 48, cacheConfig(), 41)
	guid := testSpec.Hash("hot-object")
	server := nodes[3]
	if err := server.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	client := nodes[40]
	if client.id.Equal(server.id) {
		t.Fatal("test needs distinct client and server")
	}
	first := client.Locate(guid, nil)
	if !first.Found || first.FromCache {
		t.Fatalf("first locate: found=%v fromCache=%v, want pointer hit", first.Found, first.FromCache)
	}
	second := client.Locate(guid, nil)
	if !second.Found || !second.FromCache {
		t.Fatalf("second locate: found=%v fromCache=%v, want cache hit", second.Found, second.FromCache)
	}
	if second.Hops != 1 {
		t.Errorf("cached locate took %d hops, want 1 (client answers itself)", second.Hops)
	}
	if second.Hops > first.Hops {
		t.Errorf("cached locate took %d hops, uncached took %d", second.Hops, first.Hops)
	}
	hits, misses := m.LocateCacheStats()
	if hits < 1 || misses < 1 {
		t.Errorf("cache counters hits=%d misses=%d, want at least one of each", hits, misses)
	}
	if m.CachedMappings() == 0 {
		t.Error("no cached mappings after a successful locate")
	}
}

// TestLocateCacheOffIsInert: with LocateCacheCap == 0 (the default) no node
// allocates a cache, no counter moves, and results never claim FromCache.
func TestLocateCacheOffIsInert(t *testing.T) {
	m, nodes := buildMesh(t, 24, testConfig(), 42)
	guid := testSpec.Hash("cold-object")
	if err := nodes[0].Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res := nodes[10].Locate(guid, nil)
		if !res.Found || res.FromCache {
			t.Fatalf("locate %d: found=%v fromCache=%v", i, res.Found, res.FromCache)
		}
	}
	if hits, misses := m.LocateCacheStats(); hits != 0 || misses != 0 {
		t.Errorf("cache-off counters moved: hits=%d misses=%d", hits, misses)
	}
	for _, n := range m.Nodes() {
		if n.cache != nil || n.CacheSize() != 0 {
			t.Fatalf("node %v allocated a cache with the feature off", n.id)
		}
	}
}

// TestCacheNeverServesUnpublishedReplica: after a replica withdraws, no
// query may be served from a stale cached mapping naming it — use is always
// verified with the replica, and the unpublish walk invalidates hints along
// the publish path.
func TestCacheNeverServesUnpublishedReplica(t *testing.T) {
	m, nodes := buildMesh(t, 48, cacheConfig(), 43)
	guid := testSpec.Hash("churning-object")
	a, b := nodes[5], nodes[17]
	if err := a.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	// Warm caches from every node.
	for _, c := range m.Nodes() {
		if !c.Locate(guid, nil).Found {
			t.Fatalf("warmup locate from %v failed", c.id)
		}
	}
	a.Unpublish(guid, nil)
	for _, c := range m.Nodes() {
		res := c.Locate(guid, nil)
		if !res.Found {
			t.Fatalf("locate from %v failed after unpublish of one replica", c.id)
		}
		if res.Server.Equal(a.id) {
			t.Fatalf("locate from %v served withdrawn replica %v (fromCache=%v)", c.id, a.id, res.FromCache)
		}
	}
}

// TestCacheNeverServesDeadReplica: same guarantee when the replica crashes
// instead of withdrawing — verification fails, the hint is dropped, and the
// query falls back to the surviving replica.
func TestCacheNeverServesDeadReplica(t *testing.T) {
	m, nodes := buildMesh(t, 48, cacheConfig(), 44)
	guid := testSpec.Hash("crashing-object")
	a, b := nodes[5], nodes[17]
	if err := a.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Nodes() {
		if !c.Locate(guid, nil).Found {
			t.Fatalf("warmup locate from %v failed", c.id)
		}
	}
	m.Fail(a)
	for _, c := range m.Nodes() {
		res := c.Locate(guid, nil)
		if res.Found && res.Server.Equal(a.id) {
			t.Fatalf("locate from %v served dead replica %v (fromCache=%v)", c.id, a.id, res.FromCache)
		}
	}
}

// TestCacheExpiresWithSoftStateTTL: cached mappings are epoch-stamped and
// swept by the same maintenance pass that expires pointers.
func TestCacheExpiresWithSoftStateTTL(t *testing.T) {
	m, nodes := buildMesh(t, 32, cacheConfig(), 45)
	guid := testSpec.Hash("ttl-object")
	if err := nodes[0].Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if !nodes[8+i].Locate(guid, nil).Found {
			t.Fatal("warmup locate failed")
		}
	}
	if m.CachedMappings() == 0 {
		t.Fatal("no cached mappings to expire")
	}
	nodes[0].Unpublish(guid, nil) // stop the refresh re-validating the hint path
	for i := int64(0); i <= m.Config().LocateCacheTTL; i++ {
		now := m.Net().Tick()
		for _, n := range m.Nodes() {
			n.expirePointers(now)
		}
	}
	if got := m.CachedMappings(); got != 0 {
		t.Fatalf("%d cached mappings survived the TTL", got)
	}
}

// TestLocateCacheLRUBound: the per-node cache never exceeds its capacity and
// evicts least-recently-used mappings first.
func TestLocateCacheLRUBound(t *testing.T) {
	c := newLocateCache(3, 100)
	// Fill beyond capacity.
	for i := 0; i < 5; i++ {
		c.put(testSpec.Hash(fmt.Sprintf("g%d", i)), testSpec.Hash("server"), netsim.Addr(i), 0)
		if c.len() > 3 {
			t.Fatalf("cache grew to %d entries, cap 3", c.len())
		}
	}
	// g0 and g1 were evicted; g2..g4 remain.
	if _, ok := c.lookup(testSpec.Hash("g0"), 0); ok {
		t.Error("LRU entry g0 not evicted")
	}
	if _, ok := c.lookup(testSpec.Hash("g4"), 0); !ok {
		t.Error("recent entry g4 missing")
	}
	// Touch g2 to make it most-recent, insert a new one: g3 must be evicted.
	if _, ok := c.lookup(testSpec.Hash("g2"), 0); !ok {
		t.Fatal("entry g2 missing")
	}
	c.put(testSpec.Hash("g5"), testSpec.Hash("server"), netsim.Addr(5), 0)
	if _, ok := c.lookup(testSpec.Hash("g2"), 0); !ok {
		t.Error("recently-touched g2 evicted instead of LRU g3")
	}
	if _, ok := c.lookup(testSpec.Hash("g3"), 0); ok {
		t.Error("LRU g3 not evicted")
	}
	// Expiry inside lookup.
	if _, ok := c.lookup(testSpec.Hash("g5"), 100); ok {
		t.Error("expired entry served")
	}
}

// TestServeQueryPurgesDeadReplica: a pointer to a crashed, unreplicated
// server is removed from the serving node's store on the first failed
// probe, so later queries stop burning messages on the corpse.
func TestServeQueryPurgesDeadReplica(t *testing.T) {
	m, nodes := buildMesh(t, 32, testConfig(), 46)
	guid := testSpec.Hash("orphaned-object")
	server := nodes[7]
	if err := server.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	var client *Node
	for _, n := range nodes {
		if !n.id.Equal(server.id) {
			client = n
			break
		}
	}
	before := client.Locate(guid, nil)
	if !before.Found {
		t.Fatal("object not locatable before the crash")
	}
	m.Fail(server)

	var c1 netsim.Cost
	res := client.Locate(guid, &c1)
	if res.Found {
		t.Fatalf("located a dead, unreplicated object at %v", res.Server)
	}
	if res.Exhausted {
		t.Error("a genuine miss must not report Exhausted")
	}
	// The walk purges the records it touched, so an identical second query
	// must not probe the corpse again — it costs no more than the first.
	var c2 netsim.Cost
	_ = client.Locate(guid, &c2)
	if c2.Messages() > c1.Messages() {
		t.Errorf("second miss cost %d messages, first cost %d — stale pointers were not purged",
			c2.Messages(), c1.Messages())
	}
}

// TestConcurrentLocatePublishUnpublishExpiry drives the serving layer from
// many goroutines under -race: queries for a stable object must always
// succeed and must never name a server that is not a current publisher of
// the object they asked for.
func TestConcurrentLocatePublishUnpublishExpiry(t *testing.T) {
	m, nodes := buildMesh(t, 48, cacheConfig(), 47)
	stable := testSpec.Hash("stable-object")
	churny := testSpec.Hash("churny-object")
	if err := nodes[2].Publish(stable, nil); err != nil {
		t.Fatal(err)
	}
	if err := nodes[3].Publish(stable, nil); err != nil {
		t.Fatal(err)
	}

	const rounds = 60
	var wg sync.WaitGroup
	errs := make(chan string, 256)

	// Churner: one replica of churny flaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := nodes[9].Publish(churny, nil); err != nil {
				errs <- fmt.Sprintf("publish: %v", err)
				return
			}
			nodes[9].Unpublish(churny, nil)
		}
	}()
	// Maintenance: epochs tick, pointers and cache entries expire.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/4; i++ {
			m.RunMaintenanceEpoch(nil)
		}
	}()
	// Queriers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c := nodes[(w*11+i)%len(nodes)]
				if res := c.Locate(stable, nil); !res.Found {
					errs <- fmt.Sprintf("stable object lost (worker %d iter %d)", w, i)
					return
				}
				// churny may or may not be found; if found, the server must
				// have vouched for it at serve time (serveQuery/serveFromCache
				// check `published` under the server's lock), so a result
				// naming anyone but the one flapping replica is a bug.
				if res := c.Locate(churny, nil); res.Found && !res.Server.Equal(nodes[9].id) {
					errs <- fmt.Sprintf("churny object served by impostor %v", res.Server)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
