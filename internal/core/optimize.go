package core

import (
	"sort"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
)

// Section 6.4 — continual optimization. Internet routes drift (BGP
// reconfiguration, ISP policy, IGP reconvergence), so the "closest neighbor"
// answer decays over time. The paper sketches four refresh mechanisms; this
// file implements three of them (the second — a full re-run of the
// nearest-neighbor algorithm — is already available as part of the join
// machinery and exposed via ReacquireTable):
//
//  1. ReorderNeighborSets re-measures the R members of every set and
//     promotes the closest to primary ("periodically adjust which of these
//     neighbors is the primary").
//  2. ReacquireTable re-runs the complete nearest-neighbor table
//     construction from the node's current neighborhood.
//  3. ShareTables implements local information sharing: a node offers its
//     level-i row to its level-i neighbors, who re-measure and adopt any
//     closer entries ("the same idea as the heuristic neighbor table
//     building algorithms in [27, 37]").
//
// After any of these changes a node's primaries, object-pointer paths may be
// stale; callers follow up with OptimizeObjectPtrs (Section 4.2), which the
// maintenance wrapper TuneEpoch does automatically.

// ReorderNeighborSets re-measures every neighbor's distance (dropping
// corpses) and restores distance order within each set. It returns the
// number of sets whose primary changed.
func (n *Node) ReorderNeighborSets(cost *netsim.Cost) int {
	// Collect distinct neighbors and probe them (one RPC each).
	neighbors := n.snapshotTable()
	alive := map[ids.ID]bool{}
	for _, ents := range neighbors {
		for _, e := range ents {
			if _, probed := alive[e.ID]; probed {
				continue
			}
			_, err := n.mesh.invoke(n.addr, e, msgPing, msgAck, cost, false)
			alive[e.ID] = err == nil
		}
	}
	changed := 0
	n.mu.Lock()
	for l := 0; l < n.table.Levels(); l++ {
		for d := 0; d < n.table.Base(); d++ {
			dg := ids.Digit(d)
			set := n.table.Set(l, dg)
			if len(set) == 0 {
				continue
			}
			oldPrimary, _ := n.table.Primary(l, dg)
			for _, e := range set {
				if e.ID.Equal(n.id) || !alive[e.ID] {
					continue
				}
				e.Distance = n.mesh.net.Distance(n.addr, e.Addr)
				n.table.Add(l, e) // update-in-place re-sorts the set
			}
			if newPrimary, ok := n.table.Primary(l, dg); ok && !newPrimary.ID.Equal(oldPrimary.ID) {
				changed++
			}
		}
	}
	n.mu.Unlock()
	return changed
}

// ReacquireTable re-runs the Section 3 nearest-neighbor construction from
// this node's own surrogate, exactly as a fresh join would, tightening every
// level toward the current optimum. It is the paper's heavyweight option
// ("invoke periodic repetitions of the complete nearest neighbor
// algorithm").
func (n *Node) ReacquireTable(cost *netsim.Cost) error {
	// Find the node's current surrogate among the *other* nodes: route to
	// own ID as if absent.
	n.mu.Lock()
	dec := n.nextHop(n.id, 0, n.id, nil)
	n.mu.Unlock()
	if dec.terminal {
		return nil // alone in the network (or knows nobody else)
	}
	sur, err := n.mesh.invoke(n.addr, dec.next, msgReacquire, msgAck, cost, true)
	if err != nil {
		n.noteDead(dec.next, cost)
		return err
	}
	alpha := n.id.Prefix(ids.CommonPrefixLen(n.id, sur.id))
	list, err := sur.AcknowledgedMulticast(alpha, nil, cost)
	if err != nil {
		return err
	}
	if _, err := n.mesh.oneWayMsg(sur.addr, entryAt(n.id, n.addr), msgAck, cost); err != nil {
		return err
	}
	n.acquireNeighborTable(list, alpha.Len(), cost)
	return nil
}

// RefineTable re-runs the §4.2 level-by-level nearest-neighbor search from
// the node's current contacts and adopts every candidate that improves a
// neighbor set — the engine-based middle ground between ReorderNeighborSets
// (re-measures existing members only) and ReacquireTable (needs a full
// acknowledged multicast). It returns the number of entries adopted. This is
// the periodic-refinement consumer of nearest.go: run it when drift or churn
// has degraded Property 2 and a multicast per node is too expensive.
func (n *Node) RefineTable(cost *netsim.Cost) int {
	k := n.mesh.kList()
	s := n.newNNSearch(k, ids.ID{}, cost)
	defer s.release()
	s.onDead = func(e route.Entry) { n.noteDead(e, cost) }
	n.mu.Lock()
	s.seeds = appendSeedBand(s.seeds[:0], n.table, 0)
	levels := n.table.Levels()
	n.mu.Unlock()
	for _, e := range s.seeds {
		s.add(e)
	}
	adopted := 0
	offered := map[ids.ID]struct{}{}
	for i := levels - 1; i >= 0; i-- {
		p := n.id.Prefix(i)
		s.expandLevel(p, i, nnLevelRounds)
		for _, e := range s.matchers(p, i) {
			// A candidate seen at an earlier (higher) iteration was already
			// offered at every level above i; only level i is new for it.
			lo, hi := i, i
			if _, was := offered[e.ID]; !was {
				offered[e.ID] = struct{}{}
				hi = ids.CommonPrefixLen(n.id, e.ID)
				if hi > levels-1 {
					hi = levels - 1
				}
			}
			for l := lo; l <= hi; l++ {
				n.mu.Lock()
				improves := n.table.WouldImprove(l, e.ID, e.Distance)
				n.mu.Unlock()
				if improves && n.mesh.net.Alive(e.Addr) && n.addNeighborAndNotify(l, e, cost) {
					adopted++
				}
			}
		}
	}
	return adopted
}

// ShareTables sends each level's row to this node's neighbors at that level;
// the receiving half (considerEntries) runs in the ShareReq dispatch handler;
// each recipient re-measures the offered entries from its own vantage point
// and adopts improvements. Returns the number of adoptions across all
// recipients. This is the cheap gossip-style refresh: no multicast, no
// global search, locality spreads epidemically.
func (n *Node) ShareTables(cost *netsim.Cost) int {
	adopted := 0
	f := n.mesh.getFrames()
	defer n.mesh.putFrames(f)
	defer func() { f.share.Entries = nil }()
	for l := 0; l < n.table.Levels(); l++ {
		n.mu.Lock()
		var row []route.Entry
		for d := 0; d < n.table.Base(); d++ {
			row = append(row, n.table.SetView(l, ids.Digit(d))...)
		}
		n.mu.Unlock()
		if len(row) == 0 {
			continue
		}
		// Recipients: distinct neighbors at this level.
		seen := map[ids.ID]struct{}{n.id: {}}
		for _, target := range row {
			if _, dup := seen[target.ID]; dup {
				continue
			}
			seen[target.ID] = struct{}{}
			f.share.Entries = row
			if _, err := n.mesh.invoke(n.addr, target, &f.share, &f.shareResp, cost, false); err != nil {
				n.noteDead(target, cost)
				continue
			}
			adopted += f.shareResp.Adopted
		}
	}
	return adopted
}

// considerEntries re-measures offered entries and adopts any that improve
// the local table (the receiving half of ShareTables).
func (x *Node) considerEntries(offered []route.Entry, cost *netsim.Cost) int {
	adopted := 0
	for _, e := range offered {
		if e.ID.Equal(x.id) {
			continue
		}
		d := x.mesh.net.Distance(x.addr, e.Addr)
		max := ids.CommonPrefixLen(x.id, e.ID)
		x.mu.Lock()
		var improves []int
		for l := 0; l <= max && l < x.table.Levels(); l++ {
			if x.table.WouldImprove(l, e.ID, d) {
				improves = append(improves, l)
			}
		}
		x.mu.Unlock()
		if len(improves) == 0 {
			continue
		}
		if !x.mesh.net.Alive(e.Addr) {
			continue
		}
		e.Distance = d
		e.Pinned, e.Leaving = false, false
		for _, l := range improves {
			if x.addNeighborAndNotify(l, e, cost) {
				adopted++
			}
		}
	}
	return adopted
}

// DegradePrimariesForTest simulates network-distance drift for experiments:
// every primary neighbor's recorded distance is inflated past its set's
// worst member, demoting it — the state a mesh decays into when the
// underlying routes change and recorded measurements go stale (§6.4). The
// tuning mechanisms above are measured by how well they recover from this.
func (n *Node) DegradePrimariesForTest() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	degraded := 0
	for l := 0; l < n.table.Levels(); l++ {
		for d := 0; d < n.table.Base(); d++ {
			set := n.table.Set(l, ids.Digit(d))
			if len(set) < 2 || set[0].ID.Equal(n.id) {
				continue
			}
			e := set[0]
			e.Distance = set[len(set)-1].Distance + 100
			n.table.Add(l, e)
			degraded++
		}
	}
	return degraded
}

// TuneEpoch runs one continual-optimization round across the whole mesh:
// every node re-orders its sets and shares its tables, then redistributes
// object pointers whose primaries changed (Section 6.4's closing
// requirement: "when a new primary neighbor has been chosen, the node needs
// to move some object pointers"). Returns (primary changes, adoptions).
func (m *Mesh) TuneEpoch(cost *netsim.Cost) (reordered, adopted int) {
	nodes := m.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id.Less(nodes[j].id) })
	for _, n := range nodes {
		reordered += n.ReorderNeighborSets(cost)
	}
	for _, n := range nodes {
		adopted += n.ShareTables(cost)
	}
	if reordered+adopted > 0 {
		for _, n := range nodes {
			n.OptimizeObjectPtrs(cost)
		}
	}
	return reordered, adopted
}
