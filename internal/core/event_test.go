package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
)

// runEventStorm builds a static mesh, attaches the discrete-event engine,
// and drives an interleaved storm of scheduled joins, voluntary leaves,
// crashes, repair sweeps, maintenance epochs and locates through one
// deterministic virtual-time run. It returns a full trace: every operation's
// outcome stamped with its virtual completion time, the engine counters, and
// the final mesh fingerprint.
func runEventStorm(t *testing.T, seed int64) string {
	t.Helper()
	cfg := testConfig()
	cfg.PointerTTL = 10 // pointers must survive the whole storm
	rng := rand.New(rand.NewSource(seed))
	space := metric.NewRing(4096)
	net := netsim.New(space)

	const base = 40
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, base)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	parts := StaticParticipants(cfg.Spec, addrs, rng)
	m, err := BuildStatic(net, cfg, parts)
	if err != nil {
		t.Fatal(err)
	}

	// Object population, published in direct-call mode before the run.
	nodes := m.Nodes()
	guids := make([]ids.ID, 12)
	for i := range guids {
		guids[i] = cfg.Spec.Hash(fmt.Sprintf("storm-%d", i))
		if err := nodes[rng.Intn(base/2)].Publish(guids[i], nil); err != nil {
			t.Fatal(err)
		}
	}

	e := netsim.NewEngine(seed)
	net.AttachEngine(e)

	var trace strings.Builder // written only by ops: one runs at a time
	logf := func(format string, args ...any) {
		fmt.Fprintf(&trace, "t=%.3f ", e.Now())
		fmt.Fprintf(&trace, format+"\n", args...)
	}

	// Pre-draw every decision so the schedule itself is seed-deterministic.
	// Victims come from the back half of the initial population; clients and
	// gateways from the front half, which never departs.
	for i := 0; i < 6; i++ {
		gw := nodes[rng.Intn(base/2)]
		id := cfg.Spec.Random(rng)
		for m.NodeByID(id) != nil {
			id = cfg.Spec.Random(rng)
		}
		addr := netsim.Addr(perm[base+i])
		at := 1 + rng.Float64()*40
		e.At(at, func() {
			_, cost, err := m.Join(gw, id, addr)
			logf("join %v via %v err=%v msgs=%d vlat=%.3f", id, gw.id, err != nil, cost.Messages(), cost.VirtualLatency())
		})
	}
	for i := 0; i < 8; i++ {
		victim := nodes[base/2+rng.Intn(base/2)]
		crash := i%2 == 0
		at := 2 + rng.Float64()*40
		e.At(at, func() {
			if crash {
				m.Fail(victim)
				logf("crash %v", victim.id)
			} else {
				err := victim.Leave(nil)
				logf("leave %v err=%v", victim.id, err != nil)
			}
		})
	}
	// Repair sweeps and a maintenance epoch interleave with the churn.
	for _, at := range []float64{15, 30, 45} {
		at := at
		e.At(at, func() {
			removed := 0
			for _, n := range m.Nodes() {
				removed += n.SweepDead(nil)
			}
			logf("sweep removed=%d live=%d", removed, m.Size())
		})
	}
	e.At(48, func() {
		m.RunMaintenanceEpoch(nil)
		logf("maintenance epoch=%d", net.Epoch())
	})
	for i := 0; i < 24; i++ {
		client := nodes[rng.Intn(base/2)]
		g := guids[rng.Intn(len(guids))]
		at := 3 + rng.Float64()*50
		e.At(at, func() {
			var cost netsim.Cost
			res := client.Locate(g, &cost)
			logf("locate %v from %v found=%v hops=%d vlat=%.3f",
				g, client.id, res.Found, res.Hops, cost.VirtualLatency())
		})
	}

	e.Run()
	fmt.Fprintf(&trace, "engine %v\n", e.Stats())
	trace.WriteString(meshFingerprint(m))
	return trace.String()
}

// TestCoreEventTwinReplay is the determinism contract of the event-driven
// backend at the protocol level: two identically-seeded storms of
// interleaved join/leave/crash/repair/locate operations must produce
// bit-identical traces AND bit-identical final meshes — independent of the
// host scheduler, because the engine resumes exactly one operation at a
// time and breaks same-time ties from a seeded stream.
func TestCoreEventTwinReplay(t *testing.T) {
	a := runEventStorm(t, 61)
	b := runEventStorm(t, 61)
	if a != b {
		t.Fatalf("twin event-driven runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
	if c := runEventStorm(t, 62); c == a {
		t.Fatal("different seeds produced identical storms (seeding is dead)")
	}
}

// TestCoreEventStormHealthy runs the storm (under -race in CI, where the
// scheduler handoffs between parked operations are checked) and then audits
// the surviving mesh: after the interleaved churn plus sweeps, Property 1
// must hold and the objects must still be locatable from the stable nodes.
func TestCoreEventStormHealthy(t *testing.T) {
	cfg := testConfig()
	cfg.PointerTTL = 10
	rng := rand.New(rand.NewSource(63))
	space := metric.NewRing(4096)
	net := netsim.New(space)
	const base = 32
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, base)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	m, err := BuildStatic(net, cfg, StaticParticipants(cfg.Spec, addrs, rng))
	if err != nil {
		t.Fatal(err)
	}
	nodes := m.Nodes()
	guid := cfg.Spec.Hash("storm-health")
	if err := nodes[3].Publish(guid, nil); err != nil {
		t.Fatal(err)
	}

	e := netsim.NewEngine(63)
	net.AttachEngine(e)
	for i := 0; i < 6; i++ {
		victim := nodes[base/2+i]
		crash := i%2 == 0
		e.At(float64(1+i), func() {
			if crash {
				m.Fail(victim)
			} else {
				_ = victim.Leave(nil)
			}
		})
	}
	e.At(10, func() {
		for _, n := range m.Nodes() {
			n.SweepDead(nil)
		}
	})
	e.At(12, func() { m.RunMaintenanceEpoch(nil) })
	found := 0
	for i := 0; i < 8; i++ {
		client := nodes[i]
		e.At(14+float64(i), func() {
			if res := client.Locate(guid, nil); res.Found {
				found++
			}
		})
	}
	e.Run()

	if found != 8 {
		t.Fatalf("only %d/8 post-churn locates found the object", found)
	}
	if v := m.AuditProperty1(); len(v) != 0 {
		t.Fatalf("Property 1 violated after event-driven churn:\n%v", v[:min(5, len(v))])
	}
}
