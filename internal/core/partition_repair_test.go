package core

import (
	"math/rand"
	"testing"

	"tapestry/internal/metric"
	"tapestry/internal/netsim"
)

// TestReadRepairAfterHealedPartition pins that the availability tier
// re-converges after a healed partition, on every transport backend: the
// nodes holding one salted root's pointer path are cut off, their soft
// state ages out during the cut (the server's refresh cannot reach them),
// and after the cut heals a multi-root Locate that observes the decayed
// salt triggers read-repair — after which a direct single-root query on
// that salt hits again from the same client.
//
// The decay is applied as direct TTL expiry on the isolated nodes rather
// than by running full maintenance epochs under the cut: a republish that
// dies in the partition makes the sender evict its silent next hop and
// re-route the salted key to a different surrogate root, and that scar
// permanently disagrees with the unscarred routes of every client (see the
// chaos section of the README). Read-repair heals decayed soft state, not
// diverged routing tables, so the test keeps the publisher's route intact.
func TestReadRepairAfterHealedPartition(t *testing.T) {
	for _, k := range allTransports {
		t.Run(k.String(), func(t *testing.T) {
			const n = 32
			cfg := testConfig()
			cfg.Transport = k
			cfg.RootSetSize = 2
			cfg.PointerTTL = 2

			rng := rand.New(rand.NewSource(23))
			space := metric.NewRing(n * 4)
			net := netsim.New(space)
			m, err := NewMesh(net, cfg)
			if err != nil {
				t.Fatalf("NewMesh(%v): %v", k, err)
			}
			t.Cleanup(func() { m.Close() })
			perm := rng.Perm(space.Size())
			addrs := make([]netsim.Addr, n)
			for i := range addrs {
				addrs[i] = netsim.Addr(perm[i])
			}
			nodes, _, err := m.GrowSequential(addrs, rng)
			if err != nil {
				t.Fatalf("GrowSequential(%v): %v", k, err)
			}

			server := nodes[1]
			guid := testSpec.Hash("partition-repair")
			if err := server.Publish(guid, nil); err != nil {
				t.Fatalf("Publish: %v", err)
			}

			// Cut off every holder of a salt-1 pointer record except the
			// server itself: the whole salt-1 path lands on the minority
			// side, so its soft state must decay out there.
			key1 := m.Config().Spec.Salt(guid, 1)
			group := make([]int, net.Size())
			minority := map[*Node]bool{}
			for _, nd := range nodes {
				nd.mu.Lock()
				holds := false
				if st := nd.objects[guid]; st != nil {
					for _, r := range st.recs {
						if r.key.Equal(key1) {
							holds = true
						}
					}
				}
				nd.mu.Unlock()
				if holds && nd != server {
					group[int(nd.addr)] = 1
					minority[nd] = true
				}
			}
			if len(minority) == 0 {
				t.Fatal("salt-1 path is entirely on the server; scenario needs another seed")
			}
			net.SetPartition(group)

			// Age past the TTL under the cut: the isolated records expire
			// and the server's refresh cannot refill them. The reachable
			// side keeps its records — only the cut-off holders decay.
			for i := int64(0); i <= m.Config().PointerTTL; i++ {
				now := net.Tick()
				for nd := range minority {
					nd.expirePointers(now)
				}
			}
			net.HealPartition()

			// A majority-side client that misses on the decayed salt is the
			// witness; the partition geometry guarantees decay but not that
			// any particular route avoids surviving path prefixes, so scan.
			var client *Node
			for _, nd := range nodes {
				if nd == server || minority[nd] {
					continue
				}
				if res := nd.LocateVia(guid, 1, nil); !res.Found {
					client = nd
					break
				}
			}
			if client == nil {
				t.Fatal("every client still hits salt 1 after the cut; scenario needs another seed")
			}

			// Locate draws its starting root pseudo-randomly and repairs the
			// salts it observed missing; a handful of queries guarantees a
			// draw that starts at the dead salt for any fixed seed.
			repaired := false
			for q := 0; q < 32 && !repaired; q++ {
				res := client.Locate(guid, nil)
				if !res.Found {
					t.Fatalf("%v: multi-root locate %d missed entirely after heal", k, q)
				}
				repaired = client.LocateVia(guid, 1, nil).Found
			}
			if !repaired {
				t.Fatalf("%v: 32 multi-root locates never repaired the decayed salt-1 path", k)
			}

			// Re-convergence is mesh-wide, not just for the witness.
			for i, nd := range nodes {
				if res := nd.Locate(guid, nil); !res.Found {
					t.Errorf("%v: node %d cannot locate after heal + repair", k, i)
				}
			}
		})
	}
}
