package core

import (
	"fmt"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
)

// pointerRec is one object pointer: the mapping from a GUID to one storage
// server, deposited at every node on the publish path from that server
// toward a root (Section 2.2). Unlike PRR, Tapestry keeps a pointer for
// every replica. Pointers are soft state: they expire unless republished.
type pointerRec struct {
	guid       ids.ID // the object this pointer names
	server     ids.ID
	serverAddr netsim.Addr
	key        ids.ID // the (salted) routing key this path follows
	lastHop    ids.ID // previous node on the publish path; zero at the server
	lastAddr   netsim.Addr
	level      int   // digits resolved when the publish arrived here
	epoch      int64 // deposit/refresh time for expiry
	root       bool  // the publish path terminated at this node
}

func (r pointerRec) dedupeKey() string { return r.server.String() + "/" + r.key.String() }

// objState is a node's pointer set for one GUID.
type objState struct {
	recs []pointerRec
}

func (o *objState) upsert(r pointerRec) (prev pointerRec, existed bool) {
	k := r.dedupeKey()
	for i := range o.recs {
		if o.recs[i].dedupeKey() == k {
			prev = o.recs[i]
			o.recs[i] = r
			return prev, true
		}
	}
	o.recs = append(o.recs, r)
	return pointerRec{}, false
}

func (o *objState) remove(server, key ids.ID) bool {
	k := server.String() + "/" + key.String()
	for i := range o.recs {
		if o.recs[i].dedupeKey() == k {
			o.recs = append(o.recs[:i], o.recs[i+1:]...)
			return true
		}
	}
	return false
}

// depositPointer stores/refreshes a pointer at n and reports the previous
// record on this (server, key) path, for convergence detection during
// pointer redistribution (Section 4.2).
func (n *Node) depositPointer(r pointerRec) (prev pointerRec, existed bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	// The store is keyed by the *unsalted* GUID so queries (which know only
	// the GUID) find pointers deposited along any salted path.
	st := n.objects[r.guid.String()]
	if st == nil {
		st = &objState{}
		n.objects[r.guid.String()] = st
	}
	return st.upsert(r)
}

// Publish announces that n stores a replica of the object (Section 2.2,
// Figure 2): for each of the |R_ψ| salted roots, a publish message routes
// from n toward the root, depositing an object pointer at every hop.
func (n *Node) Publish(guid ids.ID, cost *netsim.Cost) error {
	n.mu.Lock()
	n.published[guid.String()] = true
	n.mu.Unlock()
	return n.republishObject(guid, cost)
}

// republishObject re-walks all publish paths for one object this node
// serves; used by Publish, the periodic soft-state refresh, and the
// leave/repair paths.
func (n *Node) republishObject(guid ids.ID, cost *netsim.Cost) error {
	spec := n.mesh.cfg.Spec
	var firstErr error
	for i := 0; i < n.mesh.cfg.RootSetSize; i++ {
		key := spec.Salt(guid, i)
		if err := n.publishPath(guid, key, cost); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// publishPath walks one salted path from n to the key's root, depositing
// pointers. Convergence with a stale path triggers backward deletion of the
// outdated trail (Figure 9's DeletePointersBackward), keyed off a changed
// lastHop at an already-present record.
func (n *Node) publishPath(guid, key ids.ID, cost *netsim.Cost) error {
	now := n.mesh.net.Epoch()
	prevID, prevAddr := ids.ID{}, n.addr
	res, err := n.routeToKey(key, cost, func(cur *Node, level int) bool {
		rec := pointerRec{
			guid:       guid,
			server:     n.id,
			serverAddr: n.addr,
			key:        key,
			lastHop:    prevID,
			lastAddr:   prevAddr,
			level:      level,
			epoch:      now,
		}
		old, existed := cur.depositPointer(rec)
		if existed && !old.lastHop.IsZero() && !old.lastHop.Equal(prevID) {
			// The new path converged onto a node that remembers an older
			// path arriving from elsewhere: tear the stale trail down, all
			// the way back to the server (a full republish re-lays the
			// entire path, so everything off it is stale).
			cur.deleteBackward(guid, key, n.id, old.lastHop, old.lastAddr, n.id, cost)
		}
		prevID, prevAddr = cur.id, cur.addr
		return false
	})
	if err != nil {
		return err
	}
	res.node.mu.Lock()
	if st := res.node.objects[guid.String()]; st != nil {
		for i := range st.recs {
			if st.recs[i].server.Equal(n.id) && st.recs[i].key.Equal(key) {
				st.recs[i].root = true
			}
		}
	}
	res.node.mu.Unlock()
	return nil
}

// deleteBackward removes the (guid, key, server)-pointer from the stale
// trail starting at (hopID, hopAddr) and walking lastHop links backwards,
// stopping when the trail runs out or reaches stopAt — the node at which the
// path diverged, whose own record (and everything upstream of it) is still
// valid (Figure 9's DeletePointersBackward with its changedNode argument).
func (n *Node) deleteBackward(guid, key, server ids.ID, hopID ids.ID, hopAddr netsim.Addr, stopAt ids.ID, cost *netsim.Cost) {
	from := n.addr
	for !hopID.IsZero() && !hopID.Equal(stopAt) && !hopID.Equal(server) {
		target, err := n.mesh.oneWay(from, entryAt(hopID, hopAddr), cost)
		if err != nil {
			return
		}
		target.mu.Lock()
		var next ids.ID
		var nextAddr netsim.Addr
		found := false
		protected := false
		if st := target.objects[guid.String()]; st != nil {
			for _, r := range st.recs {
				if r.key.Equal(key) && r.server.Equal(server) {
					found = true
					next, nextAddr = r.lastHop, r.lastAddr
					// A node that is currently the terminal for this key —
					// or whose record is root-flagged — must never lose the
					// record to a backward sweep: under concurrent
					// membership changes, a walk that followed a stale view
					// could otherwise delete the very record queries depend
					// on (the paper's rule that "the old root not delete
					// pointers until the new root has acknowledged" is this
					// guard in soft-state form). Stale residue that survives
					// here is cleaned up by TTL expiry.
					if r.root || target.nextHop(key, r.level, ids.ID{}, nil).terminal {
						protected = true
					}
				}
			}
			if found && !protected {
				st.remove(server, key)
				if len(st.recs) == 0 {
					delete(target.objects, guid.String())
				}
			}
		}
		target.mu.Unlock()
		if !found || protected {
			return
		}
		from = target.addr
		hopID, hopAddr = next, nextAddr
	}
}

func entryAt(id ids.ID, addr netsim.Addr) route.Entry {
	return route.Entry{ID: id, Addr: addr}
}

// Unpublish withdraws this node's replica of the object: the deletion walks
// each publish path removing this server's pointers (easier than in PRR
// because every replica has its own pointers, Section 2.4).
func (n *Node) Unpublish(guid ids.ID, cost *netsim.Cost) {
	n.mu.Lock()
	delete(n.published, guid.String())
	n.mu.Unlock()
	spec := n.mesh.cfg.Spec
	for i := 0; i < n.mesh.cfg.RootSetSize; i++ {
		key := spec.Salt(guid, i)
		_, _ = n.routeToKey(key, nil, func(cur *Node, level int) bool {
			cur.mu.Lock()
			if st := cur.objects[guid.String()]; st != nil {
				st.remove(n.id, key)
				if len(st.recs) == 0 {
					delete(cur.objects, guid.String())
				}
			}
			cur.mu.Unlock()
			return false
		})
		_ = cost
	}
}

// LocateResult reports a successful (or failed) object location.
type LocateResult struct {
	Found      bool
	Server     ids.ID      // the replica the query reached
	ServerAddr netsim.Addr // its network address
	FoundAt    ids.ID      // the node whose pointer satisfied the query
	Hops       int         // application-level hops traversed (incl. final hop to the server)
}

// Locate routes a query for the object from n toward a root, stopping at the
// first node holding a pointer and then proceeding to the closest replica
// (Section 2.2, Figure 3). With multiple roots the starting root is chosen
// at random and the rest are tried on failure (Observation 1).
func (n *Node) Locate(guid ids.ID, cost *netsim.Cost) LocateResult {
	k := n.mesh.cfg.RootSetSize
	start := 0
	if k > 1 {
		start = n.mesh.randIntn(k)
	}
	for t := 0; t < k; t++ {
		salt := (start + t) % k
		if res := n.locateVia(guid, salt, cost); res.Found {
			return res
		}
	}
	return LocateResult{}
}

// LocateVia runs a single-root query with an explicit salt; exposed for
// experiments that need deterministic root choice.
func (n *Node) LocateVia(guid ids.ID, salt int, cost *netsim.Cost) LocateResult {
	return n.locateVia(guid, salt, cost)
}

func (n *Node) locateVia(guid ids.ID, salt int, cost *netsim.Cost) LocateResult {
	key := n.mesh.cfg.Spec.Salt(guid, salt)
	cur := n
	level := 0
	hops := 0
	visited := map[string]bool{}
	deadSet := map[string]bool{}
	exclude := ids.ID{}
	maxHops := n.table.Levels()*n.table.Base() + 8
	for hops <= maxHops {
		if res, ok := cur.serveQuery(guid, cost, &hops); ok {
			return res
		}
		// Loop detection (Section 4.3: "including information in the message
		// header about where the request has been").
		if visited[cur.id.String()] {
			return LocateResult{}
		}
		visited[cur.id.String()] = true

		cur.mu.Lock()
		dec := cur.nextHop(key, level, exclude, deadSet)
		inserting := cur.state == stateInserting
		psur := cur.psurrogate
		alpha := cur.alpha
		cur.mu.Unlock()

		if dec.terminal {
			if inserting && !psur.ID.IsZero() && !visited[psur.ID.String()] {
				// Figure 10: an inserting node that cannot satisfy the query
				// bounces it to its pre-insertion surrogate, which routes as
				// if the new node did not exist.
				exclude = cur.id
				next, err := n.mesh.rpc(cur.addr, psur, cost, true)
				if err != nil {
					return LocateResult{}
				}
				cur = next
				// Resume from the arrival level if below |α| (the key only
				// provably shares min(arrival, |α|) digits with psur).
				if alpha.Len() < level {
					level = alpha.Len()
				}
				hops++
				continue
			}
			return LocateResult{} // true root reached without a pointer
		}
		next, err := n.mesh.rpc(cur.addr, dec.next, cost, true)
		if err != nil {
			deadSet[dec.next.ID.String()] = true
			cur.noteDead(dec.next, cost)
			continue
		}
		cur = next
		level = dec.nextLevel
		hops++
	}
	return LocateResult{}
}

// serveQuery checks cur's pointer store for the object; on a hit the query
// proceeds to the closest live replica known here.
func (cur *Node) serveQuery(guid ids.ID, cost *netsim.Cost, hops *int) (LocateResult, bool) {
	cur.mu.Lock()
	var cands []pointerRec
	if st := cur.objects[guid.String()]; st != nil {
		cands = append(cands, st.recs...)
	}
	cur.mu.Unlock()
	// "If multiple pointers are encountered, the query proceeds to the
	// closest replica to the current node."
	for len(cands) > 0 {
		best := 0
		for i := range cands {
			if cur.mesh.net.Distance(cur.addr, cands[i].serverAddr) <
				cur.mesh.net.Distance(cur.addr, cands[best].serverAddr) {
				best = i
			}
		}
		rec := cands[best]
		cands = append(cands[:best], cands[best+1:]...)
		server, err := cur.mesh.rpc(cur.addr, entryAt(rec.server, rec.serverAddr), cost, true)
		if err != nil {
			// Stale pointer to a dead replica: drop it and try the next one
			// (soft state will finish the cleanup).
			cur.mu.Lock()
			if st := cur.objects[guid.String()]; st != nil {
				st.remove(rec.server, rec.key)
			}
			cur.mu.Unlock()
			continue
		}
		server.mu.Lock()
		serves := server.published[guid.String()]
		server.mu.Unlock()
		if !serves {
			continue
		}
		*hops++
		return LocateResult{
			Found:      true,
			Server:     rec.server,
			ServerAddr: rec.serverAddr,
			FoundAt:    cur.id,
			Hops:       *hops,
		}, true
	}
	return LocateResult{}, false
}

// PublishedObjects lists the GUIDs this node serves.
func (n *Node) PublishedObjects() []ids.ID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]ids.ID, 0, len(n.published))
	for g := range n.published {
		id, err := n.mesh.cfg.Spec.Parse(g)
		if err != nil {
			panic(fmt.Sprintf("core: corrupt published key %q: %v", g, err))
		}
		out = append(out, id)
	}
	return out
}

// PointerCount returns the number of object pointers stored at this node
// (the directory-load measurement for Table 1's balance column).
func (n *Node) PointerCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := 0
	for _, st := range n.objects {
		c += len(st.recs)
	}
	return c
}

// RootCount returns the number of pointer records for which this node is a
// path terminal (root), a second balance measurement.
func (n *Node) RootCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := 0
	for _, st := range n.objects {
		for _, r := range st.recs {
			if r.root {
				c++
			}
		}
	}
	return c
}

// expirePointers drops pointer records older than the soft-state TTL.
func (n *Node) expirePointers(now int64) {
	ttl := n.mesh.cfg.PointerTTL
	n.mu.Lock()
	defer n.mu.Unlock()
	for g, st := range n.objects {
		kept := st.recs[:0]
		for _, r := range st.recs {
			if now-r.epoch < ttl {
				kept = append(kept, r)
			}
		}
		st.recs = kept
		if len(st.recs) == 0 {
			delete(n.objects, g)
		}
	}
}

// RepublishAll refreshes the publish paths of every object this node serves
// (the periodic soft-state refresh of Section 6.5).
func (n *Node) RepublishAll(cost *netsim.Cost) {
	for _, g := range n.PublishedObjects() {
		_ = n.republishObject(g, cost)
	}
}

// OptimizeObjectPtrs re-routes every pointer path segment recorded at this
// node whose next hop has changed (Section 4.2): the records are re-sent up
// the current path; convergence nodes tear down the stale trail backwards.
// Called after routing-table changes (e.g. a closer primary appeared); it is
// a performance aid, not a correctness requirement — "timeouts and regular
// republishes will eventually ensure that the object pointers are on the
// correct nodes".
func (n *Node) OptimizeObjectPtrs(cost *netsim.Cost) {
	n.mu.Lock()
	type workItem struct {
		guid ids.ID
		rec  pointerRec
	}
	var work []workItem
	for g, st := range n.objects {
		guid, err := n.mesh.cfg.Spec.Parse(g)
		if err != nil {
			panic(fmt.Sprintf("core: corrupt object key %q: %v", g, err))
		}
		for _, r := range st.recs {
			if r.root {
				continue
			}
			work = append(work, workItem{guid, r})
		}
	}
	n.mu.Unlock()
	now := n.mesh.net.Epoch()
	for _, w := range work {
		n.forwardPointerPath(w.guid, w.rec, now, cost, ids.ID{})
	}
}

// forwardPointerPath re-walks the path of one pointer record from this node
// toward its root using current tables (optionally routing as if `exclude`
// did not exist), depositing/refreshing records and triggering backward
// deletion where the new path converges with a stale one.
func (n *Node) forwardPointerPath(guid ids.ID, rec pointerRec, now int64, cost *netsim.Cost, exclude ids.ID) {
	prevID, prevAddr := n.id, n.addr
	cur := n
	level := rec.level
	hops := 0
	maxHops := n.table.Levels()*n.table.Base() + 8
	for hops <= maxHops {
		cur.mu.Lock()
		dec := cur.nextHop(rec.key, level, exclude, nil)
		cur.mu.Unlock()
		if dec.terminal {
			cur.mu.Lock()
			if st := cur.objects[guid.String()]; st != nil {
				for i := range st.recs {
					if st.recs[i].server.Equal(rec.server) && st.recs[i].key.Equal(rec.key) {
						st.recs[i].root = true
					}
				}
			}
			cur.mu.Unlock()
			return
		}
		next, err := n.mesh.rpc(cur.addr, dec.next, cost, true)
		if err != nil {
			cur.noteDead(dec.next, cost)
			continue
		}
		newRec := pointerRec{
			guid: guid, server: rec.server, serverAddr: rec.serverAddr,
			key: rec.key, lastHop: prevID, lastAddr: prevAddr,
			level: dec.nextLevel, epoch: now,
		}
		old, existed := next.depositPointer(newRec)
		if existed && !old.lastHop.IsZero() && !old.lastHop.Equal(newRec.lastHop) && !old.lastHop.Equal(n.id) {
			// The new path converged onto a node holding a record from a
			// different predecessor: delete the stale trail backwards, but
			// only down to the node that initiated this re-route — the
			// records upstream of it are still on the valid path.
			next.deleteBackward(guid, rec.key, rec.server, old.lastHop, old.lastAddr, n.id, cost)
		}
		// Keep walking to the terminal even across convergence: the path
		// downstream may have changed too (that is what triggered the
		// re-route), so every node up to the new root must see the record.
		prevID, prevAddr = next.id, next.addr
		cur = next
		level = dec.nextLevel
		hops++
	}
}
