package core

import (
	"sort"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
	"tapestry/internal/stats"
	"tapestry/internal/wire"
)

// pointerRec is one object pointer: the mapping from a GUID to one storage
// server, deposited at every node on the publish path from that server
// toward a root (Section 2.2). Unlike PRR, Tapestry keeps a pointer for
// every replica. Pointers are soft state: they expire unless republished.
type pointerRec struct {
	guid       ids.ID // the object this pointer names
	server     ids.ID
	serverAddr netsim.Addr
	key        ids.ID // the (salted) routing key this path follows
	lastHop    ids.ID // previous node on the publish path; zero at the server
	lastAddr   netsim.Addr
	level      int   // digits resolved when the publish arrived here
	epoch      int64 // deposit/refresh time for expiry
	root       bool  // the publish path terminated at this node
}

// samePath reports whether the record lies on the (server, key) publish
// path — the dedupe identity of a pointer record.
func (r *pointerRec) samePath(server, key ids.ID) bool {
	return r.server.Equal(server) && r.key.Equal(key)
}

// objState is a node's pointer set for one GUID.
type objState struct {
	recs []pointerRec
}

func (o *objState) upsert(r pointerRec) (prev pointerRec, existed bool) {
	for i := range o.recs {
		if o.recs[i].samePath(r.server, r.key) {
			prev = o.recs[i]
			o.recs[i] = r
			return prev, true
		}
	}
	o.recs = append(o.recs, r)
	return pointerRec{}, false
}

func (o *objState) remove(server, key ids.ID) bool {
	for i := range o.recs {
		if o.recs[i].samePath(server, key) {
			o.recs = append(o.recs[:i], o.recs[i+1:]...)
			return true
		}
	}
	return false
}

// depositPointer stores/refreshes a pointer at n and reports the previous
// record on this (server, key) path, for convergence detection during
// pointer redistribution (Section 4.2).
func (n *Node) depositPointer(r pointerRec) (prev pointerRec, existed bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	// The store is keyed by the *unsalted* GUID so queries (which know only
	// the GUID) find pointers deposited along any salted path.
	st := n.objects[r.guid]
	if st == nil {
		st = &objState{}
		n.objects[r.guid] = st
	}
	return st.upsert(r)
}

// purgePointer removes a stale (server, key) record observed dead or
// no-longer-serving by a query, so subsequent queries stop re-trying it
// until the soft-state refresh re-deposits a live one.
func (n *Node) purgePointer(guid, server, key ids.ID) {
	n.mu.Lock()
	if st := n.objects[guid]; st != nil {
		if st.remove(server, key) && len(st.recs) == 0 {
			delete(n.objects, guid)
		}
	}
	if n.cache != nil {
		// A cache hint naming the same failed server is equally stale; drop
		// it now rather than burning a second probe on it next query.
		n.cache.invalidate(guid, server)
	}
	n.mu.Unlock()
}

// Publish announces that n stores a replica of the object (Section 2.2,
// Figure 2): for each of the |R_ψ| salted roots, a publish message routes
// from n toward the root, depositing an object pointer at every hop.
func (n *Node) Publish(guid ids.ID, cost *netsim.Cost) error {
	n.mu.Lock()
	n.published[guid] = true
	n.mu.Unlock()
	return n.republishObject(guid, cost)
}

// republishObject re-walks all publish paths for one object this node
// serves; used by Publish, the periodic soft-state refresh, and the
// leave/repair paths.
func (n *Node) republishObject(guid ids.ID, cost *netsim.Cost) error {
	spec := n.mesh.cfg.Spec
	var firstErr error
	for i := 0; i < n.mesh.cfg.RootSetSize; i++ {
		key := spec.Salt(guid, i)
		if err := n.publishPath(guid, key, cost); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// publishPath walks one salted path from n to the key's root, depositing
// pointers. Convergence with a stale path triggers backward deletion of the
// outdated trail (Figure 9's DeletePointersBackward), keyed off a changed
// lastHop at an already-present record.
func (n *Node) publishPath(guid, key ids.ID, cost *netsim.Cost) error {
	now := n.mesh.net.Epoch()
	prevID, prevAddr := ids.ID{}, n.addr
	res, err := n.routeToKey(key, cost, wire.RouteOpPublish, func(cur *Node, level int) bool {
		rec := pointerRec{
			guid:       guid,
			server:     n.id,
			serverAddr: n.addr,
			key:        key,
			lastHop:    prevID,
			lastAddr:   prevAddr,
			level:      level,
			epoch:      now,
		}
		old, existed := cur.depositPointer(rec)
		if existed && !old.lastHop.IsZero() && !old.lastHop.Equal(prevID) {
			// The new path converged onto a node that remembers an older
			// path arriving from elsewhere: tear the stale trail down, all
			// the way back to the server (a full republish re-lays the
			// entire path, so everything off it is stale).
			cur.deleteBackward(guid, key, n.id, old.lastHop, old.lastAddr, n.id, cost)
		}
		prevID, prevAddr = cur.id, cur.addr
		return false
	})
	if err != nil {
		return err
	}
	res.node.mu.Lock()
	if st := res.node.objects[guid]; st != nil {
		for i := range st.recs {
			if st.recs[i].samePath(n.id, key) {
				st.recs[i].root = true
			}
		}
	}
	res.node.mu.Unlock()
	return nil
}

// deleteBackward removes the (guid, key, server)-pointer from the stale
// trail starting at (hopID, hopAddr) and walking lastHop links backwards,
// stopping when the trail runs out or reaches stopAt — the node at which the
// path diverged, whose own record (and everything upstream of it) is still
// valid (Figure 9's DeletePointersBackward with its changedNode argument).
func (n *Node) deleteBackward(guid, key, server ids.ID, hopID ids.ID, hopAddr netsim.Addr, stopAt ids.ID, cost *netsim.Cost) {
	f := n.mesh.getFrames()
	defer n.mesh.putFrames(f)
	f.del.GUID, f.del.Key, f.del.Server, f.del.StopAt = guid, key, server, stopAt
	from := n.addr
	for !hopID.IsZero() && !hopID.Equal(stopAt) && !hopID.Equal(server) {
		target, err := n.mesh.oneWayMsg(from, entryAt(hopID, hopAddr), &f.del, cost)
		if err != nil {
			return
		}
		target.mu.Lock()
		var next ids.ID
		var nextAddr netsim.Addr
		found := false
		protected := false
		if st := target.objects[guid]; st != nil {
			for _, r := range st.recs {
				if r.samePath(server, key) {
					found = true
					next, nextAddr = r.lastHop, r.lastAddr
					// A node that is currently the terminal for this key —
					// or whose record is root-flagged — must never lose the
					// record to a backward sweep: under concurrent
					// membership changes, a walk that followed a stale view
					// could otherwise delete the very record queries depend
					// on (the paper's rule that "the old root not delete
					// pointers until the new root has acknowledged" is this
					// guard in soft-state form). Stale residue that survives
					// here is cleaned up by TTL expiry.
					if r.root || target.nextHop(key, r.level, ids.ID{}, nil).terminal {
						protected = true
					}
				}
			}
			if found && !protected {
				st.remove(server, key)
				if len(st.recs) == 0 {
					delete(target.objects, guid)
				}
			}
		}
		if target.cache != nil && found && !protected {
			// The pointer trail is being torn down; a cached hint naming the
			// same withdrawing server must not outlive it.
			target.cache.invalidate(guid, server)
		}
		target.mu.Unlock()
		if !found || protected {
			return
		}
		from = target.addr
		hopID, hopAddr = next, nextAddr
	}
}

func entryAt(id ids.ID, addr netsim.Addr) route.Entry {
	return route.Entry{ID: id, Addr: addr}
}

// Unpublish withdraws this node's replica of the object: the deletion walks
// each publish path removing this server's pointers (easier than in PRR
// because every replica has its own pointers, Section 2.4). The walk also
// invalidates any cached location hints naming this server at the visited
// nodes, so the serving layer forgets the replica along with the pointers.
func (n *Node) Unpublish(guid ids.ID, cost *netsim.Cost) {
	n.mu.Lock()
	delete(n.published, guid)
	n.mu.Unlock()
	spec := n.mesh.cfg.Spec
	for i := 0; i < n.mesh.cfg.RootSetSize; i++ {
		key := spec.Salt(guid, i)
		_, _ = n.routeToKey(key, nil, wire.RouteOpUnpublish, func(cur *Node, level int) bool {
			cur.mu.Lock()
			if st := cur.objects[guid]; st != nil {
				st.remove(n.id, key)
				if len(st.recs) == 0 {
					delete(cur.objects, guid)
				}
			}
			if cur.cache != nil {
				cur.cache.invalidate(guid, n.id)
			}
			cur.mu.Unlock()
			return false
		})
		_ = cost
	}
}

// LocateResult reports a successful (or failed) object location.
type LocateResult struct {
	Found      bool
	Server     ids.ID      // the replica the query reached
	ServerAddr netsim.Addr // its network address
	FoundAt    ids.ID      // the node whose pointer (or cached hint) satisfied the query
	Hops       int         // application-level hops traversed (incl. final hop to the server)
	FromCache  bool        // the answer came from a cached location mapping, not a pointer
	// Exhausted distinguishes an abnormal termination — the hop budget ran
	// out or the walk revisited a node (a routing loop) — from a genuine
	// miss at the root. A healthy mesh never sets it.
	Exhausted bool
}

// Locate routes a query for the object from n toward a root, stopping at the
// first node holding a pointer and then proceeding to the closest replica
// (Section 2.2, Figure 3). With multiple roots the starting root is chosen
// pseudo-randomly and the rest are tried on failure (Observation 1) — a
// sequential fallback over at most Config.LocateProbes roots. The choice is
// drawn from a per-node SplitMix64 stream (seeded from Config.Seed and the
// node ID) advanced by an atomic counter, so concurrent queries never
// serialize on a shared RNG lock and serial runs replay exactly.
//
// A multi-root locate that succeeds after one or more roots returned a clean
// miss (the pointer chain toward that root decayed, e.g. its root crashed
// since the last republish) triggers read-repair: the serving replica is
// asked to republish toward exactly the missed roots, so the next query that
// draws them hits again.
func (n *Node) Locate(guid ids.ID, cost *netsim.Cost) LocateResult {
	k := n.mesh.cfg.RootSetSize
	start := 0
	if k > 1 {
		start = int(stats.SplitMix64(n.rootSalt+n.locateSeq.Add(1)) % uint64(k))
	}
	var out LocateResult
	var missedBuf [8]int
	missed := missedBuf[:0]
	for t := 0; t < n.mesh.cfg.LocateProbes; t++ {
		salt := (start + t) % k
		res := n.locateVia(guid, salt, cost)
		if res.Found {
			out = res
			break
		}
		out.Exhausted = out.Exhausted || res.Exhausted
		if k > 1 && !res.Exhausted {
			missed = append(missed, salt)
		}
	}
	if out.Found && len(missed) > 0 {
		n.readRepair(guid, out, missed, cost)
	}
	if n.cache != nil {
		if out.Found && out.FromCache {
			n.mesh.cacheHits.Add(1)
		} else {
			n.mesh.cacheMisses.Add(1)
		}
	}
	return out
}

// LocateVia runs a single-root query with an explicit salt; exposed for
// experiments that need deterministic root choice.
func (n *Node) LocateVia(guid ids.ID, salt int, cost *netsim.Cost) LocateResult {
	return n.locateVia(guid, salt, cost)
}

// idIn reports whether id occurs in list. The per-query loop-detection
// memory is a small slice with linear scans: locate paths are a few hops
// (Theorem 2: <= Levels plus small surrogate overhead), so this beats a map
// — and the backing array can live on the caller's stack, keeping the hot
// path allocation-free.
func idIn(list []ids.ID, id ids.ID) bool {
	for i := range list {
		if list[i].Equal(id) {
			return true
		}
	}
	return false
}

func (n *Node) locateVia(guid ids.ID, salt int, cost *netsim.Cost) LocateResult {
	key := n.mesh.cfg.Spec.Salt(guid, salt)
	f := n.mesh.getFrames()
	defer n.mesh.putFrames(f)
	f.locate.GUID, f.locate.Key, f.locate.Salt = guid, key, salt
	cur := n
	level := 0
	hops := 0
	var visitedBuf [12]ids.ID
	visited := visitedBuf[:0]
	var deadSet map[ids.ID]struct{} // lazily allocated: only failed probes populate it
	exclude := ids.ID{}
	cacheOn := n.mesh.cfg.LocateCacheCap > 0
	// path collects the traversed nodes so a successful answer can be cached
	// at every hop on the (piggybacked) return path; nil when the cache is
	// off, so the default configuration allocates nothing here.
	var path []*Node
	maxHops := n.table.Levels()*n.table.Base() + 8
	for hops <= maxHops {
		if cacheOn {
			path = append(path, cur)
		}
		if res, ok := cur.serveQuery(guid, cost, &hops); ok {
			cachePathDeposit(path, guid, res)
			return res
		}
		if cacheOn {
			if res, ok := cur.serveFromCache(guid, cost, &hops); ok {
				cachePathDeposit(path, guid, res)
				return res
			}
		}
		// Loop detection (Section 4.3: "including information in the message
		// header about where the request has been"). Reached only when the
		// walk re-ENTERS a node over the network; re-deciding at the same
		// node after a failed probe (below) is not a loop.
		if idIn(visited, cur.id) {
			return LocateResult{Exhausted: true}
		}
		visited = append(visited, cur.id)

		// Decide and take the next hop, retrying through surviving entries
		// when the chosen neighbor's host turns out dead (Observation 1
		// fault tolerance): the corpse goes into deadSet and the decision is
		// re-made at the same node instead of aborting the query. Each retry
		// removes a table entry (noteDead) or excludes one, so the inner
		// loop terminates.
		for {
			cur.mu.Lock()
			dec := cur.nextHop(key, level, exclude, deadSet)
			inserting := cur.state == stateInserting
			psur := cur.psurrogate
			alpha := cur.alpha
			cur.mu.Unlock()

			if dec.terminal {
				if inserting && !psur.ID.IsZero() && !idIn(visited, psur.ID) {
					// Figure 10: an inserting node that cannot satisfy the
					// query bounces it to its pre-insertion surrogate, which
					// routes as if the new node did not exist.
					exclude = cur.id
					f.locate.Level, f.locate.Hops = level, hops
					next, err := n.mesh.invoke(cur.addr, psur, &f.locate, msgAck, cost, true)
					if err != nil {
						return LocateResult{}
					}
					cur = next
					// Resume from the arrival level if below |α| (the key
					// only provably shares min(arrival, |α|) digits with
					// psur).
					if alpha.Len() < level {
						level = alpha.Len()
					}
					hops++
					break
				}
				return LocateResult{} // true root reached without a pointer
			}
			f.locate.Level, f.locate.Hops = dec.nextLevel, hops
			next, err := n.mesh.invoke(cur.addr, dec.next, &f.locate, msgAck, cost, true)
			if err != nil {
				if deadSet == nil {
					deadSet = make(map[ids.ID]struct{}, 2)
				}
				deadSet[dec.next.ID] = struct{}{}
				cur.noteDead(dec.next, cost)
				continue
			}
			cur = next
			level = dec.nextLevel
			hops++
			break
		}
	}
	return LocateResult{Exhausted: true}
}

// cachePathDeposit records a successful answer at every upstream hop of the
// query path — piggybacked on the response, charging no messages. The last
// path element (the node that answered) is skipped: its own pointer store or
// cache already answers. A nil path (cache off) is a no-op.
func cachePathDeposit(path []*Node, guid ids.ID, res LocateResult) {
	if len(path) < 2 {
		return
	}
	now := path[0].mesh.net.Epoch()
	for _, p := range path[:len(path)-1] {
		p.cacheDeposit(guid, res.Server, res.ServerAddr, now)
	}
}

// verifyReplica pays the final hop to a claimed replica and checks, under
// the replica's own lock, that it still publishes the object. This is THE
// consistency rule of the serving layer: no pointer record and no cached
// hint is ever served without this check succeeding.
func (cur *Node) verifyReplica(guid, server ids.ID, addr netsim.Addr, cost *netsim.Cost) bool {
	f := cur.mesh.getFrames()
	defer cur.mesh.putFrames(f)
	f.verify.GUID = guid
	if _, err := cur.mesh.invoke(cur.addr, entryAt(server, addr), &f.verify, &f.verifyResp, cost, true); err != nil {
		return false
	}
	return f.verifyResp.Serves
}

// serveQuery checks cur's pointer store for the object; on a hit the query
// proceeds to the closest live replica known here. The lock is held only for
// a snapshot of the records (into a stack buffer — no heap traffic at
// realistic replica counts); distance evaluation runs outside it, since on
// lazy graph metrics a cold Distance is a Dijkstra and must not stall every
// operation contending for this node. Selection is a single pass (the old
// implementation re-scanned and spliced a candidate copy per probe, O(k²)
// per pointer hit), and a replica that turns out dead — or live but no
// longer publishing — is purged from the store on the spot, so subsequent
// queries stop burning a probe on it until the soft-state refresh
// re-deposits a live pointer.
func (cur *Node) serveQuery(guid ids.ID, cost *netsim.Cost, hops *int) (LocateResult, bool) {
	var buf [16]pointerRec
	for {
		recs := buf[:0]
		cur.mu.Lock()
		if st := cur.objects[guid]; st != nil {
			recs = append(recs, st.recs...)
		}
		cur.mu.Unlock()
		if len(recs) == 0 {
			return LocateResult{}, false
		}
		// "If multiple pointers are encountered, the query proceeds to the
		// closest replica to the current node."
		best := 0
		bestD := cur.mesh.net.Distance(cur.addr, recs[0].serverAddr)
		for i := 1; i < len(recs); i++ {
			if d := cur.mesh.net.Distance(cur.addr, recs[i].serverAddr); d < bestD {
				best, bestD = i, d
			}
		}
		rec := recs[best]
		if !cur.verifyReplica(guid, rec.server, rec.serverAddr, cost) {
			// Stale pointer (dead host, reused address, or a replica that
			// withdrew): drop it and re-select from what remains.
			cur.purgePointer(guid, rec.server, rec.key)
			continue
		}
		*hops++
		return LocateResult{
			Found:      true,
			Server:     rec.server,
			ServerAddr: rec.serverAddr,
			FoundAt:    cur.id,
			Hops:       *hops,
		}, true
	}
}

// serveFromCache answers the query from cur's cached location mapping, if
// any. The hint is verified with the replica itself before being served — a
// cache entry can short-cut the route but never vouch for liveness — and a
// failed verification drops the entry and reports a miss so the query
// resumes ordinary routing.
func (cur *Node) serveFromCache(guid ids.ID, cost *netsim.Cost, hops *int) (LocateResult, bool) {
	if cur.cache == nil {
		return LocateResult{}, false
	}
	now := cur.mesh.net.Epoch()
	cur.mu.Lock()
	ent, ok := cur.cache.lookup(guid, now)
	cur.mu.Unlock()
	if !ok {
		return LocateResult{}, false
	}
	if !cur.verifyReplica(guid, ent.server, ent.serverAddr, cost) {
		// Stale hint: the replica is gone or withdrew. Drop it; the probe's
		// cost is the price of the shortcut, the fallback is the normal path.
		cur.mu.Lock()
		cur.cache.invalidate(guid, ent.server)
		cur.mu.Unlock()
		return LocateResult{}, false
	}
	*hops++
	return LocateResult{
		Found:      true,
		Server:     ent.server,
		ServerAddr: ent.serverAddr,
		FoundAt:    cur.id,
		Hops:       *hops,
		FromCache:  true,
	}, true
}

// PublishedObjects lists the GUIDs this node serves, in ascending ID order
// (the store is a map; callers iterate the result where order has
// observable effects, e.g. republish sequencing).
func (n *Node) PublishedObjects() []ids.ID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]ids.ID, 0, len(n.published))
	for g := range n.published {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// PointerCount returns the number of object pointers stored at this node
// (the directory-load measurement for Table 1's balance column).
func (n *Node) PointerCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := 0
	for _, st := range n.objects {
		c += len(st.recs)
	}
	return c
}

// RootCount returns the number of pointer records for which this node is a
// path terminal (root), a second balance measurement.
func (n *Node) RootCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := 0
	for _, st := range n.objects {
		for _, r := range st.recs {
			if r.root {
				c++
			}
		}
	}
	return c
}

// expirePointers drops pointer records — and cached location mappings —
// older than the soft-state TTL.
func (n *Node) expirePointers(now int64) {
	ttl := n.mesh.cfg.PointerTTL
	n.mu.Lock()
	defer n.mu.Unlock()
	for g, st := range n.objects {
		kept := st.recs[:0]
		for _, r := range st.recs {
			if now-r.epoch < ttl {
				kept = append(kept, r)
			}
		}
		st.recs = kept
		if len(st.recs) == 0 {
			delete(n.objects, g)
		}
	}
	if n.cache != nil {
		n.cache.expire(now)
	}
}

// RepublishAll refreshes the publish paths of every object this node serves
// (the periodic soft-state refresh of Section 6.5). All records travel as
// one batched caravan — one message per distinct next hop per node
// (maintain.go) — so an epoch's refresh traffic scales with the distinct
// routes out of each node rather than objects×hops.
func (n *Node) RepublishAll(cost *netsim.Cost) {
	guids := n.PublishedObjects()
	if len(guids) == 0 {
		return
	}
	n.republishBatched(guids, cost)
}

// OptimizeObjectPtrs re-routes every pointer path segment recorded at this
// node whose next hop has changed (Section 4.2): the records are re-sent up
// the current path; convergence nodes tear down the stale trail backwards.
// Called after routing-table changes (e.g. a closer primary appeared); it is
// a performance aid, not a correctness requirement — "timeouts and regular
// republishes will eventually ensure that the object pointers are on the
// correct nodes".
func (n *Node) OptimizeObjectPtrs(cost *netsim.Cost) {
	n.mu.Lock()
	type workItem struct {
		guid ids.ID
		rec  pointerRec
	}
	var work []workItem
	for guid, st := range n.objects {
		for _, r := range st.recs {
			if r.root {
				continue
			}
			work = append(work, workItem{guid, r})
		}
	}
	n.mu.Unlock()
	now := n.mesh.net.Epoch()
	for _, w := range work {
		n.forwardPointerPath(w.guid, w.rec, now, cost, ids.ID{})
	}
}

// forwardPointerPath re-walks the path of one pointer record from this node
// toward its root using current tables (optionally routing as if `exclude`
// did not exist), depositing/refreshing records and triggering backward
// deletion where the new path converges with a stale one.
func (n *Node) forwardPointerPath(guid ids.ID, rec pointerRec, now int64, cost *netsim.Cost, exclude ids.ID) {
	f := n.mesh.getFrames()
	defer n.mesh.putFrames(f)
	f.fwd.GUID, f.fwd.Key = guid, rec.key
	f.fwd.Server, f.fwd.ServerAddr = rec.server, rec.serverAddr
	prevID, prevAddr := n.id, n.addr
	cur := n
	level := rec.level
	hops := 0
	maxHops := n.table.Levels()*n.table.Base() + 8
	for hops <= maxHops {
		cur.mu.Lock()
		dec := cur.nextHop(rec.key, level, exclude, nil)
		cur.mu.Unlock()
		if dec.terminal {
			cur.mu.Lock()
			if st := cur.objects[guid]; st != nil {
				for i := range st.recs {
					if st.recs[i].samePath(rec.server, rec.key) {
						st.recs[i].root = true
					}
				}
			}
			cur.mu.Unlock()
			return
		}
		f.fwd.Level = dec.nextLevel
		f.fwd.PrevID, f.fwd.PrevAddr = prevID, prevAddr
		next, err := n.mesh.invoke(cur.addr, dec.next, &f.fwd, msgAck, cost, true)
		if err != nil {
			cur.noteDead(dec.next, cost)
			continue
		}
		newRec := pointerRec{
			guid: guid, server: rec.server, serverAddr: rec.serverAddr,
			key: rec.key, lastHop: prevID, lastAddr: prevAddr,
			level: dec.nextLevel, epoch: now,
		}
		old, existed := next.depositPointer(newRec)
		if existed && !old.lastHop.IsZero() && !old.lastHop.Equal(newRec.lastHop) && !old.lastHop.Equal(n.id) {
			// The new path converged onto a node holding a record from a
			// different predecessor: delete the stale trail backwards, but
			// only down to the node that initiated this re-route — the
			// records upstream of it are still on the valid path.
			next.deleteBackward(guid, rec.key, rec.server, old.lastHop, old.lastAddr, n.id, cost)
		}
		// Keep walking to the terminal even across convergence: the path
		// downstream may have changed too (that is what triggered the
		// re-route), so every node up to the new root must see the record.
		prevID, prevAddr = next.id, next.addr
		cur = next
		level = dec.nextLevel
		hops++
	}
}
