package core

import (
	"fmt"
	"math/bits"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
	"tapestry/internal/wire"
)

// hopDecision is the outcome of one local routing decision (Section 2.3:
// "all routing decisions are made based on the current routing table, the
// source and destination GUIDs, and information collected along the route
// ... the number of digits resolved so far").
type hopDecision struct {
	// next is the chosen neighbor; meaningful only when terminal is false.
	next route.Entry
	// nextLevel is the digits-resolved counter the message carries onward.
	nextLevel int
	// terminal reports that the current node is the root for the key.
	terminal bool
}

// nextHop makes the local surrogate-routing decision for key with `level`
// digits already resolved, skipping the node identified by exclude (used by
// Figure 10's "route as if the new node were absent"; pass ids.ID{} for no
// exclusion) and skipping entries whose hosts are observed dead in `deadSet`
// (per-operation memory of failed probes). The caller holds n.mu.
func (n *Node) nextHop(key ids.ID, level int, exclude ids.ID, deadSet map[ids.ID]struct{}) hopDecision {
	digits := n.table.Levels()
	for l := level; l < digits; l++ {
		var set []route.Entry
		switch n.mesh.cfg.Surrogate {
		case SchemeNative:
			set = n.scanNative(key, l, exclude, deadSet)
		case SchemePRRLike:
			set = n.scanPRRLike(key, l, exclude, deadSet)
		default:
			panic(fmt.Sprintf("core: unknown surrogate scheme %v", n.mesh.cfg.Surrogate))
		}
		if len(set) == 0 {
			// Row is empty apart from excluded/dead entries; with self always
			// present this only happens under exclusion — treat as terminal
			// at this node (it is the best surviving surrogate).
			return hopDecision{terminal: true}
		}
		if set[0].ID.Equal(n.id) {
			continue // digit resolved by staying put; move to the next level
		}
		return hopDecision{next: set[0], nextLevel: l + 1}
	}
	return hopDecision{terminal: true}
}

// scanNative returns the candidate entries for Tapestry native routing at
// row l: the first non-empty neighbor set encountered in surrogate order
// (desired digit, then wrapping upward), primary first with live-looking
// secondaries behind it for failover.
func (n *Node) scanNative(key ids.ID, l int, exclude ids.ID, deadSet map[ids.ID]struct{}) []route.Entry {
	// The surrogate order (ids.SurrogateOrder) is generated arithmetically
	// instead of materialized: this scan runs once per level of every locate
	// and publish, and the slice would be the hot path's only allocation.
	base := n.table.Base()
	want := int(key.Digit(l))
	for i := 0; i < base; i++ {
		set := n.usableSet(l, ids.Digit((want+i)%base), exclude, deadSet)
		if len(set) > 0 {
			return set
		}
	}
	return nil
}

// scanPRRLike implements the distributed PRR-like variant: exact digit if
// present; otherwise the filled digit sharing the most significant bits with
// the desired digit, ties broken toward the numerically higher digit. (The
// paper's "after first hole always pick the numerically highest digit" is
// the same rule once the desired digit is treated as its best-bit target; we
// keep the per-level best-bit rule, which also yields a unique root under
// Property 1 by the Theorem 2 argument.)
func (n *Node) scanPRRLike(key ids.ID, l int, exclude ids.ID, deadSet map[ids.ID]struct{}) []route.Entry {
	want := key.Digit(l)
	if set := n.usableSet(l, want, exclude, deadSet); len(set) > 0 {
		return set
	}
	bestScore := -1
	var best []route.Entry
	for d := 0; d < n.table.Base(); d++ {
		dd := ids.Digit(d)
		if dd == want {
			continue
		}
		set := n.usableSet(l, dd, exclude, deadSet)
		if len(set) == 0 {
			continue
		}
		score := bitMatch(want, dd)*64 + d // bit match dominates; ties -> higher digit
		if score > bestScore {
			bestScore = score
			best = set
		}
	}
	return best
}

// bitMatch counts the matching high-order bits of two digits in an 8-bit
// frame, which is order-preserving for any base <= 64.
func bitMatch(a, b ids.Digit) int {
	x := a ^ b
	if x == 0 {
		return 8
	}
	return bits.LeadingZeros8(x)
}

// usableSet filters the neighbor set at (l, d) to entries that are not
// excluded and not locally known to be dead; order (primary first) is
// preserved. It reads the table storage in place (SetView): in the common
// case — no exclusion, no observed corpses — it returns the view itself and
// allocates nothing; the caller holds n.mu and must not retain the slice
// across a table mutation, which every caller (nextHop and the scan helpers)
// already satisfies.
func (n *Node) usableSet(l int, d ids.Digit, exclude ids.ID, deadSet map[ids.ID]struct{}) []route.Entry {
	set := n.table.SetView(l, d)
	skip := func(e route.Entry) bool {
		if !exclude.IsZero() && e.ID.Equal(exclude) {
			return true
		}
		if deadSet == nil {
			return false
		}
		_, dead := deadSet[e.ID]
		return dead
	}
	i := 0
	for ; i < len(set); i++ {
		if skip(set[i]) {
			break
		}
	}
	if i == len(set) {
		return set // nothing filtered: zero-copy fast path
	}
	out := make([]route.Entry, 0, len(set)-1)
	out = append(out, set[:i]...)
	for _, e := range set[i+1:] {
		if !skip(e) {
			out = append(out, e)
		}
	}
	return out
}

// NextHopDecision exposes one local surrogate-routing decision — the inner
// loop of every locate and publish — for the microbenchmark harness, which
// lives outside this package. It returns the chosen neighbor entry, the
// digits-resolved counter the message would carry onward, and whether n is
// the terminal (root) for key.
func (n *Node) NextHopDecision(key ids.ID, level int) (route.Entry, int, bool) {
	n.mu.Lock()
	dec := n.nextHop(key, level, ids.ID{}, nil)
	n.mu.Unlock()
	return dec.next, dec.nextLevel, dec.terminal
}

// routeResult is where a key-directed walk ended.
type routeResult struct {
	node  *Node
	hops  int
	level int // digits resolved upon arrival (== spec.Digits at a true root)
}

// routeToKey walks from n toward key's root via surrogate routing, invoking
// visit (if non-nil) exactly once at every node on the path including the
// endpoints; visit returns true to stop early (e.g. a locate found a
// pointer). It retries through secondary neighbors when a primary's host
// turns out dead (Observation 1 fault tolerance) and repairs the stale link.
// Each hop travels as a wire.RouteStep tagged with op (route, publish or
// unpublish).
func (n *Node) routeToKey(key ids.ID, cost *netsim.Cost, op wire.RouteOp, visit func(cur *Node, level int) bool) (routeResult, error) {
	f := n.mesh.getFrames()
	defer n.mesh.putFrames(f)
	f.route.Key = key
	f.route.Op = op
	cur := n
	level := 0
	hops := 0
	// Both sets are lazily allocated: a healthy walk never touches them, so
	// the publish/optimize hot paths stay allocation-free.
	var deadSet, bounced map[ids.ID]struct{}
	visited := false                               // re-deciding after a dead hop must not re-visit cur
	maxHops := n.table.Levels()*n.table.Base() + 8 // generous loop guard; Theorem 2 implies <= Levels hops
	for {
		if visit != nil && !visited && visit(cur, level) {
			return routeResult{node: cur, hops: hops, level: level}, nil
		}
		visited = true
		cur.mu.Lock()
		dec := cur.nextHop(key, level, ids.ID{}, deadSet)
		inserting := cur.state == stateInserting
		psur := cur.psurrogate
		alpha := cur.alpha
		cur.mu.Unlock()
		if dec.terminal {
			// Figure 10: a node that is still inserting must not act as a
			// terminal (its table is preliminary — ending a surrogate walk
			// here would, e.g., give a concurrent Join a near-empty table to
			// seed from). Bounce to its pre-insertion surrogate, which
			// routes as if the new node did not exist. The exclusion goes in
			// deadSet — a single excluded ID is not enough, because a walk
			// that bounces off a second inserter could otherwise re-enter
			// (and wrongly terminate at) the first.
			_, alreadyBounced := bounced[cur.id]
			if inserting && !psur.ID.IsZero() && !alreadyBounced {
				if bounced == nil {
					bounced = make(map[ids.ID]struct{}, 2)
				}
				if deadSet == nil {
					deadSet = make(map[ids.ID]struct{}, 2)
				}
				bounced[cur.id] = struct{}{}
				deadSet[cur.id] = struct{}{}
				f.route.Level = level
				next, err := n.mesh.invoke(cur.addr, psur, &f.route, msgAck, cost, true)
				if err != nil {
					// The pre-insertion surrogate died (join racing churn):
					// degrade to terminating here rather than failing every
					// walk that lands on this inserting node.
					return routeResult{node: cur, hops: hops, level: cur.table.Levels()}, nil
				}
				cur = next
				visited = false
				// Resume from the arrival level if it is below |α|: the
				// inserter's preliminary table may have resolved rows
				// level..|α|-1 differently than its surrogate would, and
				// "as if absent" means re-deciding them too.
				if alpha.Len() < level {
					level = alpha.Len()
				}
				hops++
				if hops > maxHops {
					return routeResult{}, fmt.Errorf("core: routing to %v exceeded %d hops (mesh inconsistent)", key, maxHops)
				}
				continue
			}
			return routeResult{node: cur, hops: hops, level: cur.table.Levels()}, nil
		}
		f.route.Level = dec.nextLevel
		next, err := n.mesh.invoke(cur.addr, dec.next, &f.route, msgAck, cost, true)
		if err != nil {
			// Failed hop: remember the corpse for this operation, repair the
			// table, and re-decide from the same node.
			if deadSet == nil {
				deadSet = make(map[ids.ID]struct{}, 2)
			}
			deadSet[dec.next.ID] = struct{}{}
			cur.noteDead(dec.next, cost)
			continue
		}
		cur = next
		visited = false
		level = dec.nextLevel
		hops++
		if hops > maxHops {
			return routeResult{}, fmt.Errorf("core: routing to %v exceeded %d hops (mesh inconsistent)", key, maxHops)
		}
	}
}

// RouteToNode routes a message from n to the node owning exactly the given
// ID, returning the destination and the hop count. It fails if no such node
// exists (the walk terminates at a surrogate with a different ID).
func (n *Node) RouteToNode(target ids.ID, cost *netsim.Cost) (*Node, int, error) {
	res, err := n.routeToKey(target, cost, wire.RouteOpRoute, nil)
	if err != nil {
		return nil, 0, err
	}
	if !res.node.id.Equal(target) {
		return nil, res.hops, fmt.Errorf("core: no node %v (surrogate %v reached)", target, res.node.id)
	}
	return res.node, res.hops, nil
}

// SurrogateFor returns the root node for a key as seen from n — the node a
// publish or query for the key would terminate at (Theorem 2: unique given
// Property 1).
func (n *Node) SurrogateFor(key ids.ID, cost *netsim.Cost) (*Node, int, error) {
	res, err := n.routeToKey(key, cost, wire.RouteOpRoute, nil)
	if err != nil {
		return nil, 0, err
	}
	return res.node, res.hops, nil
}

// noteDead reacts to a failed probe of a neighbor: the entry is removed
// everywhere and holes are repaired per the configured repair scheme
// (Section 5.2). It returns the number of dead forward links removed from
// this node's table (one per level the corpse occupied).
func (n *Node) noteDead(e route.Entry, cost *netsim.Cost) int {
	n.mu.Lock()
	if n.state == stateDead {
		n.mu.Unlock()
		return 0
	}
	levels := n.table.Remove(e.ID)
	var holes []slotRef
	for _, l := range levels {
		d := e.ID.Digit(l)
		if n.table.HasHole(l, d) {
			holes = append(holes, slotRef{l, d})
		}
	}
	n.mu.Unlock()
	n.repairHoles(holes, e.ID, cost)
	return len(levels)
}

// repairHoles refills the given slots after `dead` was removed, dispatching
// on the configured repair scheme: the §4.2 nearest-neighbor search
// (default; refills each slot with the closest qualifying nodes so Property
// 2 survives churn) or the legacy best-effort informant scan kept as an
// experimental baseline. Holes must be in ascending level order (Remove
// reports them that way).
func (n *Node) repairHoles(holes []slotRef, dead ids.ID, cost *netsim.Cost) {
	if len(holes) == 0 {
		return
	}
	switch n.mesh.cfg.Repair {
	case RepairScan:
		for _, h := range holes {
			n.repairHoleScan(h.level, h.digit, dead, cost)
		}
	default:
		n.repairHolesNearest(holes, dead, cost)
	}
}

// repairHolesNearest runs the level-by-level search of §4.2 (nearest.go)
// once per holed slot over ONE shared candidate pool — a corpse that holed
// several levels of the same table would otherwise trigger several searches
// re-querying largely the same peers — and installs up to R closest live
// candidates per slot, so a repaired set holds the same entries a fresh
// table construction would.
func (n *Node) repairHolesNearest(holes []slotRef, dead ids.ID, cost *netsim.Cost) {
	s := n.newNNSearch(n.mesh.kList(), dead, cost)
	defer s.release()

	// Seed once from every contact qualifying for the shallowest hole;
	// deeper holes' informants are a subset.
	minLevel := holes[0].level
	n.mu.Lock()
	s.seeds = appendSeedBand(s.seeds[:0], n.table, minLevel)
	n.mu.Unlock()
	for _, e := range s.seeds {
		s.add(e)
	}

	for _, h := range holes {
		p := n.id.Prefix(h.level).Extend(h.digit)
		s.expandLevel(p, h.level, nnLevelRounds)
		s.expandLevel(p, p.Len(), nnClosureRounds)
		installed := 0
		for _, c := range s.matchers(p, p.Len()) {
			if installed >= n.mesh.cfg.R {
				break
			}
			if n.mesh.net.Alive(c.Addr) && n.addNeighborAndNotify(h.level, c, cost) {
				installed++
			}
		}
	}
}

// repairHoleScan is the legacy repair heuristic: ask current neighbors for
// their matching entries and take the first live one. Not guaranteed to find
// the closest replacement; guaranteed to find *a* replacement if one is known
// to any queried neighbor. Kept (behind Config.Repair = RepairScan) as the
// baseline the E-repair experiment measures the §4.2 engine against.
func (n *Node) repairHoleScan(level int, digit ids.Digit, dead ids.ID, cost *netsim.Cost) {
	n.mu.Lock()
	prefix := n.id.Prefix(level)
	// Candidates able to know (β,j) nodes: anyone sharing β, i.e. entries at
	// rows >= level, plus backpointers at those rows.
	var informants []route.Entry
	n.table.ForEachNeighbor(func(l int, e route.Entry) {
		if l >= level {
			informants = append(informants, e)
		}
	})
	for l := level; l < n.table.Levels(); l++ {
		informants = append(informants, n.table.Backs(l)...)
	}
	n.mu.Unlock()

	f := n.mesh.getFrames()
	defer n.mesh.putFrames(f)
	f.match.Origin = n.id
	f.match.Level = level
	f.match.Digit = digit
	seen := map[ids.ID]struct{}{dead: {}, n.id: {}}
	for _, inf := range informants {
		if _, dup := seen[inf.ID]; dup {
			continue
		}
		seen[inf.ID] = struct{}{}
		if _, err := n.mesh.invoke(n.addr, inf, &f.match, &f.matchResp, cost, false); err != nil {
			continue
		}
		for _, c := range f.matchResp.Entries {
			if c.ID.Equal(dead) || c.ID.Equal(n.id) || !c.ID.HasPrefix(prefix) {
				continue
			}
			c.Distance = n.mesh.net.Distance(n.addr, c.Addr)
			c.Pinned, c.Leaving = false, false
			if n.mesh.net.Alive(c.Addr) && n.addNeighborAndNotify(level, c, cost) {
				return
			}
		}
	}
}

// SweepDead probes every forward neighbor (the soft-state heartbeat of
// Section 6.5) and repairs links whose hosts no longer respond. It returns
// the number of dead links removed: a neighbor held at several levels counts
// once per level its link was dropped from, matching what Remove reports.
func (n *Node) SweepDead(cost *netsim.Cost) int {
	// Probe in ascending level order: snapshotTable is a map, and probe order
	// decides the order repairs run in — and with it repair traffic and
	// eviction tie-breaks — so iterating it directly would make sweeps
	// nondeterministic (the same map-order bug class the Leave path had).
	neighbors := n.snapshotTable()
	removed := 0
	seen := map[ids.ID]struct{}{}
	for _, l := range sortedLevels(neighbors) {
		for _, e := range neighbors[l] {
			if _, ok := seen[e.ID]; ok {
				continue
			}
			seen[e.ID] = struct{}{}
			if _, err := n.mesh.invoke(n.addr, e, msgPing, msgAck, cost, false); err != nil {
				removed += n.noteDead(e, cost)
			}
		}
	}
	return removed
}
