package core

import (
	"fmt"
	"math/bits"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
)

// hopDecision is the outcome of one local routing decision (Section 2.3:
// "all routing decisions are made based on the current routing table, the
// source and destination GUIDs, and information collected along the route
// ... the number of digits resolved so far").
type hopDecision struct {
	// next is the chosen neighbor; meaningful only when terminal is false.
	next route.Entry
	// nextLevel is the digits-resolved counter the message carries onward.
	nextLevel int
	// terminal reports that the current node is the root for the key.
	terminal bool
}

// nextHop makes the local surrogate-routing decision for key with `level`
// digits already resolved, skipping the node identified by exclude (used by
// Figure 10's "route as if the new node were absent"; pass ids.ID{} for no
// exclusion) and skipping entries whose hosts are observed dead in `deadSet`
// (per-operation memory of failed probes). The caller holds n.mu.
func (n *Node) nextHop(key ids.ID, level int, exclude ids.ID, deadSet map[string]bool) hopDecision {
	digits := n.table.Levels()
	for l := level; l < digits; l++ {
		var set []route.Entry
		switch n.mesh.cfg.Surrogate {
		case SchemeNative:
			set = n.scanNative(key, l, exclude, deadSet)
		case SchemePRRLike:
			set = n.scanPRRLike(key, l, exclude, deadSet)
		default:
			panic(fmt.Sprintf("core: unknown surrogate scheme %v", n.mesh.cfg.Surrogate))
		}
		if len(set) == 0 {
			// Row is empty apart from excluded/dead entries; with self always
			// present this only happens under exclusion — treat as terminal
			// at this node (it is the best surviving surrogate).
			return hopDecision{terminal: true}
		}
		if set[0].ID.Equal(n.id) {
			continue // digit resolved by staying put; move to the next level
		}
		return hopDecision{next: set[0], nextLevel: l + 1}
	}
	return hopDecision{terminal: true}
}

// scanNative returns the candidate entries for Tapestry native routing at
// row l: the first non-empty neighbor set encountered in surrogate order
// (desired digit, then wrapping upward), primary first with live-looking
// secondaries behind it for failover.
func (n *Node) scanNative(key ids.ID, l int, exclude ids.ID, deadSet map[string]bool) []route.Entry {
	for _, d := range ids.SurrogateOrder(n.table.Base(), key.Digit(l)) {
		set := n.usableSet(l, d, exclude, deadSet)
		if len(set) > 0 {
			return set
		}
	}
	return nil
}

// scanPRRLike implements the distributed PRR-like variant: exact digit if
// present; otherwise the filled digit sharing the most significant bits with
// the desired digit, ties broken toward the numerically higher digit. (The
// paper's "after first hole always pick the numerically highest digit" is
// the same rule once the desired digit is treated as its best-bit target; we
// keep the per-level best-bit rule, which also yields a unique root under
// Property 1 by the Theorem 2 argument.)
func (n *Node) scanPRRLike(key ids.ID, l int, exclude ids.ID, deadSet map[string]bool) []route.Entry {
	want := key.Digit(l)
	if set := n.usableSet(l, want, exclude, deadSet); len(set) > 0 {
		return set
	}
	bestScore := -1
	var best []route.Entry
	for d := 0; d < n.table.Base(); d++ {
		dd := ids.Digit(d)
		if dd == want {
			continue
		}
		set := n.usableSet(l, dd, exclude, deadSet)
		if len(set) == 0 {
			continue
		}
		score := bitMatch(want, dd)*64 + d // bit match dominates; ties -> higher digit
		if score > bestScore {
			bestScore = score
			best = set
		}
	}
	return best
}

// bitMatch counts the matching high-order bits of two digits in an 8-bit
// frame, which is order-preserving for any base <= 64.
func bitMatch(a, b ids.Digit) int {
	x := a ^ b
	if x == 0 {
		return 8
	}
	return bits.LeadingZeros8(x)
}

// usableSet filters the neighbor set at (l, d) to entries that are not
// excluded and not locally known to be dead; order (primary first) is
// preserved.
func (n *Node) usableSet(l int, d ids.Digit, exclude ids.ID, deadSet map[string]bool) []route.Entry {
	set := n.table.Set(l, d)
	out := set[:0]
	for _, e := range set {
		if !exclude.IsZero() && e.ID.Equal(exclude) {
			continue
		}
		if deadSet != nil && deadSet[e.ID.String()] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// routeResult is where a key-directed walk ended.
type routeResult struct {
	node  *Node
	hops  int
	level int // digits resolved upon arrival (== spec.Digits at a true root)
}

// routeToKey walks from n toward key's root via surrogate routing, invoking
// visit (if non-nil) at every node on the path including the endpoints;
// visit returns true to stop early (e.g. a locate found a pointer). It
// retries through secondary neighbors when a primary's host turns out dead
// (Observation 1 fault tolerance) and repairs the stale link.
func (n *Node) routeToKey(key ids.ID, cost *netsim.Cost, visit func(cur *Node, level int) bool) (routeResult, error) {
	cur := n
	level := 0
	hops := 0
	deadSet := map[string]bool{}
	bounced := map[string]bool{}
	maxHops := n.table.Levels()*n.table.Base() + 8 // generous loop guard; Theorem 2 implies <= Levels hops
	for {
		if visit != nil && visit(cur, level) {
			return routeResult{node: cur, hops: hops, level: level}, nil
		}
		cur.mu.Lock()
		dec := cur.nextHop(key, level, ids.ID{}, deadSet)
		inserting := cur.state == stateInserting
		psur := cur.psurrogate
		alpha := cur.alpha
		cur.mu.Unlock()
		if dec.terminal {
			// Figure 10: a node that is still inserting must not act as a
			// terminal (its table is preliminary — ending a surrogate walk
			// here would, e.g., give a concurrent Join a near-empty table to
			// seed from). Bounce to its pre-insertion surrogate, which
			// routes as if the new node did not exist. The exclusion goes in
			// deadSet — a single excluded ID is not enough, because a walk
			// that bounces off a second inserter could otherwise re-enter
			// (and wrongly terminate at) the first.
			if inserting && !psur.ID.IsZero() && !bounced[cur.id.String()] {
				bounced[cur.id.String()] = true
				deadSet[cur.id.String()] = true
				next, err := n.mesh.rpc(cur.addr, psur, cost, true)
				if err != nil {
					// The pre-insertion surrogate died (join racing churn):
					// degrade to terminating here rather than failing every
					// walk that lands on this inserting node.
					return routeResult{node: cur, hops: hops, level: cur.table.Levels()}, nil
				}
				cur = next
				// Resume from the arrival level if it is below |α|: the
				// inserter's preliminary table may have resolved rows
				// level..|α|-1 differently than its surrogate would, and
				// "as if absent" means re-deciding them too.
				if alpha.Len() < level {
					level = alpha.Len()
				}
				hops++
				if hops > maxHops {
					return routeResult{}, fmt.Errorf("core: routing to %v exceeded %d hops (mesh inconsistent)", key, maxHops)
				}
				continue
			}
			return routeResult{node: cur, hops: hops, level: cur.table.Levels()}, nil
		}
		next, err := n.mesh.rpc(cur.addr, dec.next, cost, true)
		if err != nil {
			// Failed hop: remember the corpse for this operation, repair the
			// table, and re-decide from the same node.
			deadSet[dec.next.ID.String()] = true
			cur.noteDead(dec.next, cost)
			continue
		}
		cur = next
		level = dec.nextLevel
		hops++
		if hops > maxHops {
			return routeResult{}, fmt.Errorf("core: routing to %v exceeded %d hops (mesh inconsistent)", key, maxHops)
		}
	}
}

// RouteToNode routes a message from n to the node owning exactly the given
// ID, returning the destination and the hop count. It fails if no such node
// exists (the walk terminates at a surrogate with a different ID).
func (n *Node) RouteToNode(target ids.ID, cost *netsim.Cost) (*Node, int, error) {
	res, err := n.routeToKey(target, cost, nil)
	if err != nil {
		return nil, 0, err
	}
	if !res.node.id.Equal(target) {
		return nil, res.hops, fmt.Errorf("core: no node %v (surrogate %v reached)", target, res.node.id)
	}
	return res.node, res.hops, nil
}

// SurrogateFor returns the root node for a key as seen from n — the node a
// publish or query for the key would terminate at (Theorem 2: unique given
// Property 1).
func (n *Node) SurrogateFor(key ids.ID, cost *netsim.Cost) (*Node, int, error) {
	res, err := n.routeToKey(key, cost, nil)
	if err != nil {
		return nil, 0, err
	}
	return res.node, res.hops, nil
}

// noteDead reacts to a failed probe of a neighbor: the entry is removed
// everywhere and holes are repaired via the local-search algorithm of
// Section 5.2 ("asking its remaining neighbors for their nearest matching
// nodes").
func (n *Node) noteDead(e route.Entry, cost *netsim.Cost) {
	n.mu.Lock()
	if n.state == stateDead {
		n.mu.Unlock()
		return
	}
	levels := n.table.Remove(e.ID)
	type holeRef struct {
		level int
		digit ids.Digit
	}
	var holes []holeRef
	for _, l := range levels {
		d := e.ID.Digit(l)
		if n.table.HasHole(l, d) {
			holes = append(holes, holeRef{l, d})
		}
	}
	n.mu.Unlock()
	for _, h := range holes {
		n.repairHole(h.level, h.digit, e.ID, cost)
	}
}

// repairHole attempts to refill N_{β,j} after a neighbor died, by asking
// current neighbors for their matching entries. Not guaranteed to find the
// closest replacement (the paper offers the full nearest-neighbor algorithm
// for that); guaranteed to find *a* replacement if one is known to any
// queried neighbor.
func (n *Node) repairHole(level int, digit ids.Digit, dead ids.ID, cost *netsim.Cost) {
	n.mu.Lock()
	prefix := n.id.Prefix(level)
	// Candidates able to know (β,j) nodes: anyone sharing β, i.e. entries at
	// rows >= level, plus backpointers at those rows.
	var informants []route.Entry
	n.table.ForEachNeighbor(func(l int, e route.Entry) {
		if l >= level {
			informants = append(informants, e)
		}
	})
	for l := level; l < n.table.Levels(); l++ {
		informants = append(informants, n.table.Backs(l)...)
	}
	n.mu.Unlock()

	seen := map[string]bool{dead.String(): true, n.id.String(): true}
	for _, inf := range informants {
		if seen[inf.ID.String()] {
			continue
		}
		seen[inf.ID.String()] = true
		target, err := n.mesh.rpc(n.addr, inf, cost, false)
		if err != nil {
			continue
		}
		target.mu.Lock()
		var cands []route.Entry
		if ids.CommonPrefixLen(target.id, n.id) >= level {
			for _, c := range target.table.Set(level, digit) {
				cands = append(cands, c)
			}
		}
		target.mu.Unlock()
		for _, c := range cands {
			if c.ID.Equal(dead) || c.ID.Equal(n.id) || !c.ID.HasPrefix(prefix) {
				continue
			}
			c.Distance = n.mesh.net.Distance(n.addr, c.Addr)
			c.Pinned, c.Leaving = false, false
			if n.mesh.net.Alive(c.Addr) && n.addNeighborAndNotify(level, c, cost) {
				return
			}
		}
	}
}

// SweepDead probes every forward neighbor (the soft-state heartbeat of
// Section 6.5) and repairs links whose hosts no longer respond. It returns
// the number of dead links removed.
func (n *Node) SweepDead(cost *netsim.Cost) int {
	neighbors := n.snapshotTable()
	removed := 0
	seen := map[string]bool{}
	for _, ents := range neighbors {
		for _, e := range ents {
			if seen[e.ID.String()] {
				continue
			}
			seen[e.ID.String()] = true
			if _, err := n.mesh.rpc(n.addr, e, cost, false); err != nil {
				n.noteDead(e, cost)
				removed++
			}
		}
	}
	return removed
}
