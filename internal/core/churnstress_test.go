package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/wire"
)

// TestChurnStressAvailability runs many independent churn scenarios —
// concurrent joins, voluntary departures and queries — and requires every
// object to be locatable from every node once the dust settles. On failure
// it dumps the full pointer state for the lost object; this harness caught
// two real protocol bugs during development (a stale-trail backward delete
// racing a root transfer, and a root transfer keyed to the wrong level).
func TestChurnStressAvailability(t *testing.T) {
	iters := 30
	if testing.Short() {
		iters = 6
	}
	for iter := 0; iter < iters; iter++ {
		if msg := runChurnOnce(t, int64(1000+iter)); msg != "" {
			t.Fatalf("iter %d:\n%s", iter, msg)
		}
	}
}

func runChurnOnce(t *testing.T, seed int64) string {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(seed))
	space := metric.NewRing(1024)
	net := netsim.New(space)
	m, err := NewMesh(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(space.Size())
	next := 0
	takeAddr := func() netsim.Addr { a := netsim.Addr(perm[next]); next++; return a }
	if _, err := m.Bootstrap(testSpec.Random(rng), takeAddr()); err != nil {
		t.Fatal(err)
	}
	var servers []*Node
	for i := 0; i < 24; i++ {
		gw := m.randomLiveNode(rng)
		n, _, err := m.Join(gw, m.freshID(rng), takeAddr())
		if err != nil {
			t.Fatal(err)
		}
		if i < 6 {
			servers = append(servers, n)
		}
	}
	guids := make([]ids.ID, len(servers))
	for i, s := range servers {
		guids[i] = testSpec.Hash(fmt.Sprintf("churn-object-%d-%d", seed, i))
		if err := s.Publish(guids[i], nil); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		qrng := rand.New(rand.NewSource(seed * 7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			nodes := m.Nodes()
			if len(nodes) == 0 {
				continue
			}
			c := nodes[qrng.Intn(len(nodes))]
			g := guids[qrng.Intn(len(guids))]
			c.Locate(g, nil)
		}
	}()

	serverSet := map[string]bool{}
	for _, s := range servers {
		serverSet[s.id.String()] = true
	}
	for i := 0; i < 12; i++ {
		gw := m.randomLiveNode(rng)
		n, _, err := m.Join(gw, m.freshID(rng), takeAddr())
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 {
			for _, cand := range m.Nodes() {
				if !serverSet[cand.id.String()] && cand != n {
					_ = cand.Leave(nil)
					break
				}
			}
		}
	}
	close(stop)
	qwg.Wait()

	// Post-churn, quiescent: every object must be locatable from everywhere.
	for gi, g := range guids {
		for _, c := range m.Nodes() {
			if res := c.Locate(g, nil); !res.Found {
				return dumpObject(m, g, servers[gi], c)
			}
		}
	}
	return ""
}

func dumpObject(m *Mesh, guid ids.ID, server, client *Node) string {
	out := fmt.Sprintf("object %v (server %v) not found from %v\n", guid, server.id, client.id)
	key := m.cfg.Spec.Salt(guid, 0)
	out += fmt.Sprintf("key %v\n", key)
	// Walk from client and from server, dumping rec presence.
	for name, start := range map[string]*Node{"client": client, "server": server} {
		out += name + " walk:\n"
		res, err := start.routeToKey(key, nil, wire.RouteOpRoute, func(cur *Node, level int) bool {
			cur.mu.Lock()
			recs := "none"
			if st := cur.objects[guid]; st != nil {
				recs = ""
				for _, r := range st.recs {
					recs += fmt.Sprintf("(srv=%v lastHop=%v lvl=%d root=%v) ", r.server, r.lastHop, r.level, r.root)
				}
			}
			state := cur.state
			cur.mu.Unlock()
			out += fmt.Sprintf("  node %v state=%d level=%d recs=%s\n", cur.id, state, level, recs)
			return false
		})
		out += fmt.Sprintf("  terminal: %v err=%v\n", res.node.id, err)
	}
	// Server's view of whether it still publishes.
	server.mu.Lock()
	out += fmt.Sprintf("server published=%v pointerCount=%d\n", server.published[guid], 0)
	server.mu.Unlock()
	// Global pointer census for this guid.
	out += "all recs:\n"
	for _, n := range m.Nodes() {
		n.mu.Lock()
		if st := n.objects[guid]; st != nil {
			for _, r := range st.recs {
				out += fmt.Sprintf("  at %v: srv=%v lastHop=%v lvl=%d root=%v epoch=%d\n",
					n.id, r.server, r.lastHop, r.level, r.root, r.epoch)
			}
		}
		n.mu.Unlock()
	}
	return out
}
