package core

import (
	"fmt"
	"sort"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
)

// Participant names one (node-ID, address) pair for static construction.
type Participant struct {
	ID   ids.ID
	Addr netsim.Addr
}

// BuildStatic constructs a complete Tapestry mesh from global knowledge —
// the preprocessing the original PRR scheme assumes ("the original statement
// of the algorithm required a static set of participating nodes as well as
// significant work to preprocess this set"). Every neighbor set is filled
// with exactly the R closest qualifying nodes, and backpointers are exact.
//
// BuildStatic is the oracle the dynamic algorithms are measured against
// (Section 4: insertion should produce "the same as if we had been able to
// build the network from static data") and the fast path for standing up
// large meshes in benchmarks.
func BuildStatic(net *netsim.Network, cfg Config, parts []Participant) (*Mesh, error) {
	m, err := NewMesh(net, cfg)
	if err != nil {
		return nil, err
	}
	seenID := map[string]bool{}
	seenAddr := map[netsim.Addr]bool{}
	for _, p := range parts {
		if seenID[p.ID.String()] {
			return nil, fmt.Errorf("core: duplicate static ID %v", p.ID)
		}
		if seenAddr[p.Addr] {
			return nil, fmt.Errorf("core: duplicate static address %d", p.Addr)
		}
		seenID[p.ID.String()] = true
		seenAddr[p.Addr] = true
	}
	m.mu.Lock()
	nodes := make([]*Node, len(parts))
	for i, p := range parts {
		nodes[i] = m.newNodeLocked(p.ID, p.Addr)
		nodes[i].state = stateActive
	}
	m.mu.Unlock()

	// For each node, sort all others by distance once, then fill every slot
	// greedily: a node qualifies for (level, digit) slots derived from its
	// common prefix with the owner.
	type distPeer struct {
		n *Node
		d float64
	}
	for _, owner := range nodes {
		peers := make([]distPeer, 0, len(nodes)-1)
		for _, p := range nodes {
			if p != owner {
				peers = append(peers, distPeer{p, net.Distance(owner.addr, p.addr)})
			}
		}
		sort.Slice(peers, func(i, j int) bool {
			if peers[i].d != peers[j].d {
				return peers[i].d < peers[j].d
			}
			return peers[i].n.id.Less(peers[j].n.id)
		})
		for _, pr := range peers {
			cpl := ids.CommonPrefixLen(owner.id, pr.n.id)
			for l := 0; l <= cpl && l < cfg.Spec.Digits; l++ {
				e := route.Entry{ID: pr.n.id, Addr: pr.n.addr, Distance: pr.d}
				added, _ := owner.table.Add(l, e)
				if added {
					pr.n.table.AddBack(l, route.Entry{ID: owner.id, Addr: owner.addr, Distance: pr.d})
				}
			}
		}
	}
	return m, nil
}

// StaticParticipants draws n distinct random IDs over the given addresses,
// for convenience when standing up static meshes.
func StaticParticipants(spec ids.Spec, addrs []netsim.Addr, rng interface{ Intn(int) int }) []Participant {
	parts := make([]Participant, 0, len(addrs))
	seen := map[string]bool{}
	for _, a := range addrs {
		for {
			d := make([]ids.Digit, spec.Digits)
			for i := range d {
				d[i] = ids.Digit(rng.Intn(spec.Base))
			}
			id := spec.Make(d)
			if !seen[id.String()] {
				seen[id.String()] = true
				parts = append(parts, Participant{ID: id, Addr: a})
				break
			}
		}
	}
	return parts
}
