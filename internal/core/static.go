package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
	"tapestry/internal/stats"
)

// Participant names one (node-ID, address) pair for static construction.
type Participant struct {
	ID   ids.ID
	Addr netsim.Addr
}

// BuildStatic constructs a complete Tapestry mesh from global knowledge —
// the preprocessing the original PRR scheme assumes ("the original statement
// of the algorithm required a static set of participating nodes as well as
// significant work to preprocess this set"). Every neighbor set is filled
// with exactly the R closest qualifying nodes, and backpointers are exact.
//
// BuildStatic is the oracle the dynamic algorithms are measured against
// (Section 4: insertion should produce "the same as if we had been able to
// build the network from static data") and the fast path for standing up
// large meshes in benchmarks. Construction runs on one worker per CPU; see
// BuildStaticWith for the determinism contract.
func BuildStatic(net *netsim.Network, cfg Config, parts []Participant) (*Mesh, error) {
	return BuildStaticWith(net, cfg, parts, 0)
}

// BuildStaticWith is BuildStatic with explicit build parallelism (workers
// <= 0 means one per CPU). The resulting mesh is byte-identical for every
// workers value: each owner's table fill is a pure function of the immutable
// participant set (peers are sorted by (distance, ID) and offered in that
// order, so the R-bounded sets never depend on arrival interleaving), owners
// are partitioned across workers in contiguous index shards that only write
// their own tables, and the backpointer registrations each fill produces are
// applied in a second pass in owner order.
func BuildStaticWith(net *netsim.Network, cfg Config, parts []Participant, workers int) (*Mesh, error) {
	m, nodes, err := registerStatic(net, cfg, parts)
	if err != nil {
		return nil, err
	}
	spec := m.cfg.Spec

	// For each node, sort all others by distance once, then fill every slot
	// greedily: a node qualifies for (level, digit) slots derived from its
	// common prefix with the owner.
	type distPeer struct {
		n *Node
		d float64
	}
	intents := make([][]backIntent, len(nodes))
	parallelFor(len(nodes), workers, func(i int) {
		owner := nodes[i]
		peers := make([]distPeer, 0, len(nodes)-1)
		for _, p := range nodes {
			if p != owner {
				peers = append(peers, distPeer{p, net.Distance(owner.addr, p.addr)})
			}
		}
		sort.Slice(peers, func(i, j int) bool {
			if peers[i].d != peers[j].d {
				return peers[i].d < peers[j].d
			}
			return peers[i].n.id.Less(peers[j].n.id)
		})
		for _, pr := range peers {
			cpl := ids.CommonPrefixLen(owner.id, pr.n.id)
			for l := 0; l <= cpl && l < spec.Digits; l++ {
				e := route.Entry{ID: pr.n.id, Addr: pr.n.addr, Distance: pr.d}
				added, _ := owner.table.Add(l, e)
				if added {
					intents[i] = append(intents[i], backIntent{peer: pr.n, level: l, d: pr.d})
				}
			}
		}
	})
	applyBackIntents(nodes, intents)
	return m, nil
}

// BuildStaticSampled constructs a large static mesh approximately. The exact
// builder sorts all n-1 peers per owner — O(n² log n), prohibitive at 100k
// nodes — so here each (level, digit) slot instead draws up to `sample`
// qualifying candidates from the slot's prefix bucket and keeps the R
// closest, for O(n · digits · base · sample) total work.
//
// Property 1 (no false holes) holds exactly: a slot is filled whenever any
// qualifying node exists, because every non-empty bucket yields at least one
// candidate. Property 2 (neighbor sets hold the R closest) becomes
// approximate — the sampled candidates are close-ish, not provably closest —
// which is the documented price of planetary-scale construction; dynamic
// joins and the §4.2 repair engine remain exact.
//
// Determinism: candidate draws come from a SplitMix64 stream seeded by
// (cfg.Seed, owner ID, slot), never by worker identity, so the mesh is
// byte-identical for every workers value and every host core count.
func BuildStaticSampled(net *netsim.Network, cfg Config, parts []Participant, sample, workers int) (*Mesh, error) {
	m, nodes, err := registerStatic(net, cfg, parts)
	if err != nil {
		return nil, err
	}
	spec := m.cfg.Spec
	if sample < 2*m.cfg.R {
		sample = 2 * m.cfg.R
	}

	// buckets maps each (l+1)-digit prefix to the indices (into nodes) of the
	// IDs carrying it: the candidate pool for every slot (level l, digit d)
	// whose owner prefix extends to that key. Built sequentially so bucket
	// order is parts order.
	buckets := make(map[string][]int32, len(nodes)*spec.Digits)
	keyBuf := make([]byte, spec.Digits)
	for i, n := range nodes {
		for l := 0; l < spec.Digits; l++ {
			keyBuf[l] = byte(n.id.Digit(l))
		}
		for l := 0; l < spec.Digits; l++ {
			k := string(keyBuf[:l+1])
			buckets[k] = append(buckets[k], int32(i))
		}
	}

	type cand struct {
		idx int32
		d   float64
	}
	intents := make([][]backIntent, len(nodes))
	parallelFor(len(nodes), workers, func(i int) {
		owner := nodes[i]
		label := owner.id.String()
		prefix := make([]byte, 0, spec.Digits)
		cands := make([]cand, 0, sample)
		for l := 0; l < spec.Digits; l++ {
			for d := 0; d < spec.Base; d++ {
				bucket := buckets[string(append(prefix, byte(d)))]
				cands = cands[:0]
				if len(bucket) <= sample {
					for _, bi := range bucket {
						if int(bi) != i {
							cands = append(cands, cand{bi, net.Distance(owner.addr, nodes[bi].addr)})
						}
					}
				} else {
					// Seeded draws with replacement, deduplicated; the stream
					// is a function of (seed, owner, slot) only.
					s := uint64(stats.StreamSeed(m.cfg.Seed, label, l*spec.Base+d))
					for k := 0; k < 3*sample && len(cands) < sample; k++ {
						s = stats.SplitMix64(s)
						bi := bucket[int(s%uint64(len(bucket)))]
						if int(bi) == i {
							continue
						}
						dup := false
						for _, c := range cands {
							if c.idx == bi {
								dup = true
								break
							}
						}
						if !dup {
							cands = append(cands, cand{bi, net.Distance(owner.addr, nodes[bi].addr)})
						}
					}
				}
				if len(cands) == 0 {
					continue
				}
				sort.Slice(cands, func(a, b int) bool {
					if cands[a].d != cands[b].d {
						return cands[a].d < cands[b].d
					}
					return nodes[cands[a].idx].id.Less(nodes[cands[b].idx].id)
				})
				for _, c := range cands {
					p := nodes[c.idx]
					added, _ := owner.table.Add(l, route.Entry{ID: p.id, Addr: p.addr, Distance: c.d})
					if added {
						intents[i] = append(intents[i], backIntent{peer: p, level: l, d: c.d})
					}
				}
			}
			prefix = append(prefix, byte(owner.id.Digit(l)))
		}
	})
	applyBackIntents(nodes, intents)
	return m, nil
}

// backIntent is one deferred backpointer registration: during the parallel
// fill phase owners only write their own tables; the cross-owner AddBack
// writes are applied afterwards, in owner order, single-threaded.
type backIntent struct {
	peer  *Node
	level int
	d     float64
}

func applyBackIntents(nodes []*Node, intents [][]backIntent) {
	for i, list := range intents {
		owner := nodes[i]
		for _, bi := range list {
			bi.peer.table.AddBack(bi.level, route.Entry{ID: owner.id, Addr: owner.addr, Distance: bi.d})
		}
	}
}

// registerStatic validates the participant set and registers one active node
// per participant on a fresh mesh.
func registerStatic(net *netsim.Network, cfg Config, parts []Participant) (*Mesh, []*Node, error) {
	m, err := NewMesh(net, cfg)
	if err != nil {
		return nil, nil, err
	}
	seenID := make(map[ids.ID]bool, len(parts))
	seenAddr := make(map[netsim.Addr]bool, len(parts))
	for _, p := range parts {
		if seenID[p.ID] {
			return nil, nil, fmt.Errorf("core: duplicate static ID %v", p.ID)
		}
		if seenAddr[p.Addr] {
			return nil, nil, fmt.Errorf("core: duplicate static address %d", p.Addr)
		}
		seenID[p.ID] = true
		seenAddr[p.Addr] = true
	}
	nodes := make([]*Node, len(parts))
	for i, p := range parts {
		n := m.newNode(p.ID, p.Addr)
		n.state = stateActive
		if err := m.publish(n); err != nil {
			return nil, nil, err // unreachable: duplicates rejected above
		}
		nodes[i] = n
	}
	return m, nodes, nil
}

// parallelFor runs fn(i) for every i in [0, n) across contiguous index
// shards on max(1, workers) goroutines (workers <= 0 selects one per CPU).
// fn must be safe to run concurrently for distinct i.
func parallelFor(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// StaticParticipants draws n distinct random IDs over the given addresses,
// for convenience when standing up static meshes.
func StaticParticipants(spec ids.Spec, addrs []netsim.Addr, rng interface{ Intn(int) int }) []Participant {
	parts := make([]Participant, 0, len(addrs))
	seen := map[string]bool{}
	for _, a := range addrs {
		for {
			d := make([]ids.Digit, spec.Digits)
			for i := range d {
				d[i] = ids.Digit(rng.Intn(spec.Base))
			}
			id := spec.Make(d)
			if !seen[id.String()] {
				seen[id.String()] = true
				parts = append(parts, Participant{ID: id, Addr: a})
				break
			}
		}
	}
	return parts
}
