package core

import (
	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
	"tapestry/internal/wire"
)

// This file is the availability tier above the single-server publish of
// objects.go: k-replica placement (PublishReplicated) hands copies of an
// object to the closest live peers found by the §4.2 nearest-neighbor
// engine, and read-repair (readRepair, called from Locate) refills salted
// root paths that a multi-root query observed to have decayed. Both ride the
// PublishReq wire message; its peer-side effect lives in handlePublishReq,
// dispatched like every other RPC so all transport backends agree on it.

// PublishReplicated publishes guid from n and additionally places the object
// on the Config.Replicas-1 closest live peers, each of which records itself
// as a replica server and announces along every salted root. Candidates come
// from the §4.2 nearest-neighbor engine run to the empty prefix (i.e. the
// plain "closest nodes" search); on transit-stub topologies the selection is
// locality-aware — the closest node of each distinct stub region is
// preferred before filling by raw distance, so one stub outage cannot take
// every copy. A dead candidate is skipped for the next closest, mirroring
// routing's retry-through-secondaries.
//
// It returns the number of replicas placed, counting n itself; fewer than
// Config.Replicas means the candidate pool ran dry (tiny or heavily churned
// meshes). With Replicas <= 1 it is exactly Publish.
func (n *Node) PublishReplicated(guid ids.ID, cost *netsim.Cost) (int, error) {
	if err := n.Publish(guid, cost); err != nil {
		return 0, err
	}
	placed := 1
	want := n.mesh.cfg.Replicas - 1
	if want <= 0 {
		return placed, nil
	}
	cands := n.replicaCandidates(cost)
	f := n.mesh.getFrames()
	defer n.mesh.putFrames(f)
	for _, e := range cands {
		if placed > want {
			break
		}
		f.pub.GUID, f.pub.Adopt = guid, true
		f.pub.Salts = f.pub.Salts[:0]
		if _, err := n.mesh.invoke(n.addr, e, &f.pub, msgAck, cost, false); err != nil {
			continue // stale candidate; the next closest takes its slot
		}
		placed++
	}
	return placed, nil
}

// replicaCandidates returns placement candidates for extra replicas, sorted
// closest-first from n's vantage and then region-diversified: the closest
// node of each stub region not yet hosting a copy moves ahead of closer
// nodes in already-covered regions. n's own region counts as covered (n is
// the first replica). Metrics without region structure keep the pure
// distance order.
func (n *Node) replicaCandidates(cost *netsim.Cost) []route.Entry {
	s := n.newNNSearch(n.mesh.kList(), ids.ID{}, cost)
	n.mu.Lock()
	s.seeds = appendSeedBand(s.seeds[:0], n.table, 0)
	n.mu.Unlock()
	for _, e := range s.seeds {
		s.add(e)
	}
	s.expandLevel(ids.EmptyPrefix, 0, nnLevelRounds)
	res := s.matchers(ids.EmptyPrefix, 0)
	out := make([]route.Entry, len(res))
	copy(out, res)
	s.release()
	if len(n.mesh.regions) == 0 {
		return out
	}
	covered := map[int]bool{n.mesh.regionOf(n.addr): true}
	ordered := make([]route.Entry, 0, len(out))
	var rest []route.Entry
	for _, e := range out {
		if r := n.mesh.regionOf(e.Addr); r >= 0 && !covered[r] {
			covered[r] = true
			ordered = append(ordered, e)
		} else {
			rest = append(rest, e)
		}
	}
	return append(ordered, rest...)
}

// readRepair re-arms the salted roots a successful multi-root locate found
// decayed: the replica that satisfied the query is asked to republish toward
// exactly the missed roots, so the next query drawing one of them hits
// without waiting for the server's maintenance epoch. Best effort — a stale
// server (possible when the answer came from a cached mapping) drops the
// repair, and the surviving roots keep answering in the meantime.
func (n *Node) readRepair(guid ids.ID, res LocateResult, missed []int, cost *netsim.Cost) {
	f := n.mesh.getFrames()
	defer n.mesh.putFrames(f)
	f.pub.GUID, f.pub.Adopt = guid, false
	f.pub.Salts = append(f.pub.Salts[:0], missed...)
	_, _ = n.mesh.invoke(n.addr, entryAt(res.Server, res.ServerAddr), &f.pub, msgAck, cost, false)
}

// handlePublishReq is the peer-side effect of a PublishReq (dispatched from
// transport.go). Adopt records the receiver as a replica server first — the
// k-replica placement handoff — after which both variants republish: along
// every salted root when Salts is empty, or along exactly the listed roots
// (read-repair). A receiver that does not serve the object ignores the
// request rather than resurrecting pointers to a copy it does not hold.
func (n *Node) handlePublishReq(q *wire.PublishReq, cost *netsim.Cost) {
	n.mu.Lock()
	if q.Adopt {
		n.published[q.GUID] = true
	}
	serves := n.published[q.GUID]
	n.mu.Unlock()
	if !serves {
		return
	}
	if len(q.Salts) == 0 {
		_ = n.republishObject(q.GUID, cost)
		return
	}
	spec := n.mesh.cfg.Spec
	for _, s := range q.Salts {
		if s < 0 || s >= n.mesh.cfg.RootSetSize {
			continue
		}
		_ = n.publishPath(q.GUID, spec.Salt(q.GUID, s), cost)
	}
}
