package core

import (
	"fmt"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
	"tapestry/internal/wire"
)

// Join inserts a new node into the overlay (Section 4, Figure 7):
//
//  1. route from the gateway to the new ID's primary surrogate;
//  2. copy the surrogate's neighbor table as a preliminary table, making the
//     new node immediately functional;
//  3. acknowledged-multicast to every node sharing α = GCP(new, surrogate),
//     carrying the watch list; each reached node links the new node where it
//     improves its table and transfers object pointers that must now root at
//     the new node (LinkAndXferRoot);
//  4. run the incremental nearest-neighbor algorithm (Section 3, Figure 4)
//     to build locality-optimal neighbor sets level by level.
//
// Join is safe to call concurrently for different new nodes (Section 4.4):
// the multicast pins in-flight inserters so simultaneous insertions filling
// the same or related holes discover each other (Theorem 6).
func (m *Mesh) Join(gateway *Node, newID ids.ID, addr netsim.Addr) (*Node, *netsim.Cost, error) {
	cost := &netsim.Cost{}
	if gateway == nil {
		return nil, cost, fmt.Errorf("core: nil gateway")
	}

	// Step 1: acquire the primary surrogate.
	surrogate, _, err := gateway.SurrogateFor(newID, cost)
	if err != nil {
		return nil, cost, fmt.Errorf("core: surrogate acquisition: %w", err)
	}
	if surrogate.id.Equal(newID) {
		return nil, cost, fmt.Errorf("core: node-ID %v already present", newID)
	}

	alpha := newID.Prefix(ids.CommonPrefixLen(newID, surrogate.id))
	n, err := m.register(newID, addr, alpha, surrogate.entryFor(addr))
	if err != nil {
		return nil, cost, err
	}

	// Step 2: preliminary neighbor table (GetPrelimNeighborTable): every
	// link the surrogate has, re-evaluated from the new node's vantage
	// point. The table may be far from optimal but satisfies connectivity.
	// The surrogate-side work — pinning the new node and snapshotting the
	// table — runs in the JoinSnapshotReq dispatch handler (joinSnapshot).
	f := m.getFrames()
	f.joinReq.NewID, f.joinReq.NewAddr, f.joinReq.PinLevel = newID, addr, alpha.Len()
	if _, err := m.invoke(addr, surrogate.entryFor(addr), &f.joinReq, &f.joinResp, cost, true); err != nil {
		m.putFrames(f)
		m.abortJoin(n)
		return nil, cost, fmt.Errorf("core: surrogate died mid-join: %w", err)
	}
	n.installPreliminary(surrogate, f.joinResp.Rows, cost)

	// Step 3: acknowledged multicast over α with the watch list.
	watch := n.holeSlots()
	ctx := &mcastCtx{
		root:      alpha,
		fn:        func(x *Node) { x.linkAndXferRoot(n, cost) },
		cost:      cost,
		newNode:   route.Entry{ID: n.id, Addr: n.addr},
		holeLevel: alpha.Len(),
		watch:     newWatchList(newID, watch),
		newRef:    n,
		visited:   map[ids.ID]struct{}{},
		pinned:    []*Node{surrogate}, // the step-2 pin, released with the rest
	}
	f.mcast.P, f.mcast.Root = alpha, alpha
	f.mcast.NewNode, f.mcast.HoleLevel = ctx.newNode, alpha.Len()
	if _, err := m.oneWayMsg(addr, surrogate.entryFor(addr), &f.mcast, cost); err != nil {
		m.putFrames(f)
		m.abortJoin(n)
		return nil, cost, fmt.Errorf("core: surrogate died before multicast: %w", err)
	}
	m.putFrames(f)
	surrogate.mcastArrive(alpha, ctx)
	alphaList := ctx.reachedEntries()

	// Step 4: nearest-neighbor descent, seeded with the α-list (the paper's
	// optimization: "use the multicast in step 4 ... to get the first list
	// of the nearest neighbor algorithm").
	n.acquireNeighborTable(alphaList, alpha.Len(), cost)

	n.mu.Lock()
	n.state = stateActive
	n.mu.Unlock()
	// Only now release the §4.4 pins: while they were held, every multicast
	// of a concurrently inserting node was forwarded to n, so the two could
	// link (Theorem 6). Deferred capacity evictions happen here.
	ctx.releasePins()
	return n, cost, nil
}

// abortJoin rolls back a half-registered node after a failed join.
func (m *Mesh) abortJoin(n *Node) {
	n.mu.Lock()
	n.state = stateDead
	n.mu.Unlock()
	m.net.Detach(n.addr)
	m.unregister(n)
}

// joinSnapshot is the surrogate-side handler for join step 2: pin the new
// node at its surrogate for the whole insertion, BEFORE taking the
// preliminary snapshot. α is a prefix of the surrogate's own ID, so any
// concurrent insertion's multicast self-recurses at the surrogate down to
// level |α| and gets forwarded to the pinned new node — the §4.4 guarantee
// that simultaneous inserters discover each other even when their multicasts
// are in flight at the same time. (The insertion multicast pins it at every
// reached node too, but that only helps multicasts that start after this
// one's wavefront has passed.) The response carries the surrogate's table
// flattened in ascending (level, digit) order — the same order the old
// per-level snapshot was consumed in, so installation (and its eviction
// tie-breaks) is unchanged.
func (s *Node) joinSnapshot(q *wire.JoinSnapshotReq, r *wire.JoinSnapshotResp, cost *netsim.Cost) {
	pe := route.Entry{ID: q.NewID, Addr: q.NewAddr,
		Distance: s.mesh.net.Distance(s.addr, q.NewAddr), Pinned: true}
	s.mu.Lock()
	pinAdded, _ := s.table.Add(q.PinLevel, pe) // pinned adds never evict
	s.mu.Unlock()
	if pinAdded {
		s.sendBackpointerAdd(q.PinLevel, pe, cost)
	}
	r.Rows = r.Rows[:0]
	s.mu.Lock()
	s.table.ForEachNeighbor(func(l int, e route.Entry) {
		r.Rows = append(r.Rows, wire.LeveledEntry{Level: l, E: e})
	})
	s.mu.Unlock()
}

// installPreliminary seeds the new node's table from the surrogate's links
// (plus the surrogate itself), with distances recomputed from the new node.
// rows arrive level-ascending (see joinSnapshot), which keeps installation
// order — and eviction tie-breaks among equal-distance candidates —
// deterministic.
func (n *Node) installPreliminary(surrogate *Node, rows []wire.LeveledEntry, cost *netsim.Cost) {
	addAtAllLevels := func(e route.Entry) {
		if e.ID.Equal(n.id) {
			return
		}
		e.Distance = n.mesh.net.Distance(n.addr, e.Addr)
		e.Pinned, e.Leaving = false, false
		max := ids.CommonPrefixLen(n.id, e.ID)
		for l := 0; l <= max && l < n.table.Levels(); l++ {
			n.addNeighborAndNotify(l, e, cost)
		}
	}
	addAtAllLevels(surrogate.entryFor(n.addr))
	seen := map[ids.ID]struct{}{}
	for _, r := range rows {
		if _, dup := seen[r.E.ID]; dup {
			continue
		}
		seen[r.E.ID] = struct{}{}
		addAtAllLevels(r.E)
	}
}

// holeSlots lists the new node's still-empty slots for the watch list. Lower
// levels are mostly filled by the preliminary table; what remains is exactly
// what Figure 11 describes being sent ("most of the lower levels ... filled
// by the surrogate in the first step, and most of the upper levels ... zero").
func (n *Node) holeSlots() []slotRef {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []slotRef
	for l := 0; l < n.table.Levels(); l++ {
		for d := 0; d < n.table.Base(); d++ {
			if n.table.HasHole(l, ids.Digit(d)) {
				out = append(out, slotRef{l, ids.Digit(d)})
			}
		}
	}
	return out
}

// linkAndXferRoot is the function the insertion multicast applies at every
// α-node X (Figure 7): add the new node to X's table wherever it improves
// it, and hand over object pointers whose root moves to the new node —
// without this transfer "objects may become unreachable".
func (x *Node) linkAndXferRoot(n *Node, cost *netsim.Cost) {
	if x.id.Equal(n.id) {
		return
	}
	d := x.mesh.net.Distance(x.addr, n.addr)
	e := route.Entry{ID: n.id, Addr: n.addr, Distance: d}
	max := ids.CommonPrefixLen(x.id, n.id)
	x.mu.Lock()
	var improves []int
	for l := 0; l <= max && l < x.table.Levels(); l++ {
		if x.table.WouldImprove(l, n.id, d) {
			improves = append(improves, l)
		}
	}
	x.mu.Unlock()
	for _, l := range improves {
		x.addNeighborAndNotify(l, e, cost)
	}

	// Root transfer: every pointer rooted at X is re-routed from level 0 —
	// the true-root computation. The new node may have re-rooted a key by
	// filling the (|α|, ·) hole at *upstream* nodes, a change X cannot see by
	// re-examining its own table at the record's arrival level; a full
	// re-route from X converges on the current unique root (Theorem 2) and
	// deposits the pointer there. If the root did not move, the walk simply
	// re-terminates at X and the records refresh in place.
	x.mu.Lock()
	type moved struct {
		guid ids.ID
		rec  pointerRec
	}
	var moves []moved
	for _, g := range sortedGUIDs(x.objects) {
		st := x.objects[g]
		for i := range st.recs {
			r := st.recs[i]
			terminalHere := x.nextHop(r.key, r.level, ids.ID{}, nil).terminal
			if r.root || terminalHere {
				st.recs[i].root = false
				rr := st.recs[i]
				rr.level = 0
				moves = append(moves, moved{r.guid, rr})
			}
		}
	}
	x.mu.Unlock()
	now := x.mesh.net.Epoch()
	for _, mv := range moves {
		x.forwardPointerPath(mv.guid, mv.rec, now, cost, ids.ID{})
	}
}

// acquireNeighborTable is Figure 4's ACQUIRENEIGHBORTABLE on the nearest.go
// engine: starting from the closest k nodes sharing maxLevel digits,
// repeatedly derive the closest k nodes sharing one digit fewer (Lemma 1)
// and fill the corresponding table level from everything measured along the
// way (Lemma 2), down to the empty prefix. Every queried peer also checks
// whether the inserting node improves its own table (Figure 4 line 4 /
// Theorem 4's update mechanism, via the engine's onPeer hook).
func (n *Node) acquireNeighborTable(seed []route.Entry, maxLevel int, cost *netsim.Cost) {
	k := n.mesh.kList()
	s := n.newNNSearch(k, ids.ID{}, cost)
	defer s.release()
	s.onPeer = func(peer *Node) { peer.addToTableIfCloser(n, cost) }
	s.onDead = func(e route.Entry) { n.noteDead(e, cost) }
	// The α-list from the multicast is complete, so use all of it to fill
	// the top levels (Lemma 2 wants ~b·log n candidates per level; the
	// trimmed k-list is only the descent vehicle of Lemma 1).
	all := n.measureAll(seed, maxLevel)
	n.buildTableFromList(all, maxLevel, cost)
	for _, e := range all {
		s.add(e)
	}
	for i := maxLevel - 1; i >= 0; i-- {
		p := n.id.Prefix(i)
		s.expandLevel(p, i, nnLevelRounds)
		n.buildTableFromList(s.matchers(p, i), i, cost)
	}
}

// measureAll filters to candidates sharing >= level digits and fills in
// their distances from the new node (metric oracle — deployments get these
// from RTT measurements accumulated as a side effect of traffic).
func (n *Node) measureAll(cands []route.Entry, level int) []route.Entry {
	out := make([]route.Entry, 0, len(cands))
	for _, c := range cands {
		if c.ID.Equal(n.id) || ids.CommonPrefixLen(n.id, c.ID) < level {
			continue
		}
		c.Distance = n.mesh.net.Distance(n.addr, c.Addr)
		c.Pinned, c.Leaving = false, false
		out = append(out, c)
	}
	return out
}

// buildTableFromList installs list members into every qualifying level >=
// minLevel of the new node's table. Entries already present at a level are
// skipped outright: the descent re-offers its cumulative pool at every
// level, and re-adding an unchanged entry would re-send its backpointer
// registration (Table.Add reports an update-in-place as added).
func (n *Node) buildTableFromList(list []route.Entry, minLevel int, cost *netsim.Cost) {
	for _, e := range list {
		max := ids.CommonPrefixLen(n.id, e.ID)
		n.mu.Lock()
		var missing []int
		for l := minLevel; l <= max && l < n.table.Levels(); l++ {
			if !n.table.Contains(l, e.ID) {
				missing = append(missing, l)
			}
		}
		n.mu.Unlock()
		for _, l := range missing {
			n.addNeighborAndNotify(l, e, cost)
		}
	}
}

// addToTableIfCloser lets an existing node x adopt the inserting node n
// wherever it improves x's neighbor sets (Figure 4 line 4).
func (x *Node) addToTableIfCloser(n *Node, cost *netsim.Cost) {
	d := x.mesh.net.Distance(x.addr, n.addr)
	max := ids.CommonPrefixLen(x.id, n.id)
	x.mu.Lock()
	var improves []int
	for l := 0; l <= max && l < x.table.Levels(); l++ {
		if x.table.WouldImprove(l, n.id, d) {
			improves = append(improves, l)
		}
	}
	x.mu.Unlock()
	e := route.Entry{ID: n.id, Addr: n.addr, Distance: d}
	for _, l := range improves {
		x.addNeighborAndNotify(l, e, cost)
	}
}
