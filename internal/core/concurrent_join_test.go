package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
)

// TestConcurrentJoinsUnderQueryLoad is the §4.4/Theorem 6 regression test
// for the pin-lifetime and wavefront-crossing bugs: waves of simultaneous
// insertions run while a query loop hammers Locate, then Property 1 is
// audited. The query load is what makes the historical failure modes likely
// — it perturbs the join interleavings enough that, before the fixes
// (whole-insertion pin lifetime, step-2 surrogate pin, pre-descend inflight
// forwarding, Figure 10 bounce in routeToKey, atomic register), two
// concurrent inserters could permanently miss each other or seed a join
// from a mid-insertion surrogate's near-empty table.
func TestConcurrentJoinsUnderQueryLoad(t *testing.T) {
	attempts := 20
	if testing.Short() {
		attempts = 4
	}
	spec := ids.Spec{Base: 16, Digits: 8}
	for attempt := 0; attempt < attempts; attempt++ {
		base, waves, batch := 12, 3, 6
		seed := int64(10 + attempt)
		cfg := DefaultConfig()
		cfg.Spec = spec
		rng := rand.New(rand.NewSource(seed))
		total := base + waves*batch
		space := metric.NewRing(4 * total)
		net := netsim.New(space)
		m, err := NewMesh(net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(space.Size())
		addrs := make([]netsim.Addr, total)
		for i := range addrs {
			addrs[i] = netsim.Addr(perm[i])
		}
		nodes, _, err := m.GrowSequential(addrs[:base], rng)
		if err != nil {
			t.Fatal(err)
		}
		guids := make([]ids.ID, 6)
		for i := range guids {
			guids[i] = spec.Hash(fmt.Sprintf("cj-%d", i))
			if err := nodes[i%len(nodes)].Publish(guids[i], nil); err != nil {
				t.Fatal(err)
			}
		}
		next := base
		for wave := 0; wave < waves; wave++ {
			var wg sync.WaitGroup
			errs := make([]error, batch)
			for i := 0; i < batch; i++ {
				gw := nodes[rng.Intn(len(nodes))]
				id := spec.Random(rng)
				for m.NodeByID(id) != nil {
					id = spec.Random(rng)
				}
				addr := addrs[next]
				next++
				wg.Add(1)
				go func(i int, gw *Node, id ids.ID, addr netsim.Addr) {
					defer wg.Done()
					_, _, errs[i] = m.Join(gw, id, addr)
				}(i, gw, id, addr)
			}
			stop := make(chan struct{})
			var qwg sync.WaitGroup
			qwg.Add(1)
			go func() {
				defer qwg.Done()
				qrng := rand.New(rand.NewSource(seed * 77))
				for {
					select {
					case <-stop:
						return
					default:
					}
					c := nodes[qrng.Intn(len(nodes))]
					c.Locate(guids[qrng.Intn(len(guids))], nil)
				}
			}()
			wg.Wait()
			close(stop)
			qwg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatalf("attempt %d wave %d: join failed: %v", attempt, wave, err)
				}
			}
			nodes = m.Nodes()
			if v1 := m.AuditProperty1(); len(v1) > 0 {
				t.Fatalf("attempt %d wave %d: %d P1 violations (first: %s)", attempt, wave, len(v1), v1[0])
			}
		}
	}
}
