package core

import (
	"fmt"
	"math/rand"
	"sort"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
	"tapestry/internal/wire"
)

// GrowSequential joins count new nodes one at a time through random live
// gateways, drawing fresh random IDs from rng and consuming addresses from
// addrs in order. It returns the new nodes and the per-join message counts.
func (m *Mesh) GrowSequential(addrs []netsim.Addr, rng *rand.Rand) ([]*Node, []int, error) {
	nodes := make([]*Node, 0, len(addrs))
	costs := make([]int, 0, len(addrs))
	for _, a := range addrs {
		id := m.freshID(rng)
		gw := m.randomLiveNode(rng)
		if gw == nil {
			n, err := m.Bootstrap(id, a)
			if err != nil {
				return nodes, costs, err
			}
			nodes = append(nodes, n)
			costs = append(costs, 0)
			continue
		}
		n, cost, err := m.Join(gw, id, a)
		if err != nil {
			return nodes, costs, fmt.Errorf("join %v@%d: %w", id, a, err)
		}
		nodes = append(nodes, n)
		costs = append(costs, cost.Messages())
	}
	return nodes, costs, nil
}

// freshID draws a random ID not already in use.
func (m *Mesh) freshID(rng *rand.Rand) ids.ID {
	for {
		id := m.cfg.Spec.Random(rng)
		if m.NodeByID(id) == nil {
			return id
		}
	}
}

// randomLiveNode returns a uniformly random registered node, or nil when the
// overlay is empty.
func (m *Mesh) randomLiveNode(rng *rand.Rand) *Node {
	nodes := m.Nodes() // already ID-sorted, so the draw is reproducible
	if len(nodes) == 0 {
		return nil
	}
	return nodes[rng.Intn(len(nodes))]
}

// RunMaintenanceEpoch advances virtual time one epoch, expires stale
// pointers everywhere, and republishes every served object — the periodic
// soft-state refresh of Section 6.5.
func (m *Mesh) RunMaintenanceEpoch(cost *netsim.Cost) {
	now := m.net.Tick()
	for _, n := range m.Nodes() {
		n.expirePointers(now)
	}
	for _, n := range m.Nodes() {
		n.RepublishAll(cost)
	}
}

// prefixCensus counts, for every prefix occurring among live node IDs, how
// many nodes carry it; used by the audits to decide whether a "hole" is
// legitimate.
func (m *Mesh) prefixCensus() map[string]int {
	census := map[string]int{}
	for _, n := range m.Nodes() {
		for l := 1; l <= n.id.Len(); l++ {
			census[n.id.Prefix(l).String()]++
		}
	}
	return census
}

// AuditProperty1 verifies the consistency property: a node's neighbor set
// N_{β,j} may be empty only if no live (β,j) node exists anywhere. It
// returns a description of each violation (an illegitimate hole) plus any
// table entry pointing at a node that no longer exists.
func (m *Mesh) AuditProperty1() []string {
	census := m.prefixCensus()
	var violations []string
	for _, n := range m.Nodes() {
		n.lockedView(func(t *route.Table) {
			for l := 0; l < t.Levels(); l++ {
				prefix := n.id.Prefix(l)
				for d := 0; d < t.Base(); d++ {
					dj := ids.Digit(d)
					if !t.HasHole(l, dj) {
						continue
					}
					if census[prefix.Extend(dj).String()] > 0 {
						violations = append(violations,
							fmt.Sprintf("node %v: hole at level %d digit %d but (%v,%d) nodes exist",
								n.id, l, d, prefix, d))
					}
				}
			}
		})
	}
	for _, n := range m.Nodes() {
		for level, ents := range n.snapshotTable() {
			for _, e := range ents {
				if peer := m.NodeByID(e.ID); peer == nil || peer.addr != e.Addr {
					violations = append(violations,
						fmt.Sprintf("node %v: stale entry %v at level %d", n.id, e.ID, level))
				}
			}
		}
	}
	return violations
}

// AuditProperty2 verifies locality: every neighbor set should hold exactly
// the R closest live (β,j) nodes (ties in distance are interchangeable). It
// returns one description per slot whose contents are not distance-optimal.
// The guarantee is probabilistic (Theorems 3–4 hold w.h.p. and only for
// growth-restricted metrics), so callers typically assert a violation *rate*
// rather than zero.
func (m *Mesh) AuditProperty2() []string {
	nodes := m.Nodes()
	var violations []string
	for _, n := range nodes {
		// Gather candidate distances per (level, digit) for this node.
		type slotKey struct {
			l int
			d ids.Digit
		}
		best := map[slotKey][]float64{}
		for _, peer := range nodes {
			if peer.id.Equal(n.id) {
				continue
			}
			cpl := ids.CommonPrefixLen(n.id, peer.id)
			dist := m.net.Distance(n.addr, peer.addr)
			for l := 0; l <= cpl && l < n.id.Len(); l++ {
				k := slotKey{l, peer.id.Digit(l)}
				best[k] = append(best[k], dist)
			}
		}
		n.lockedView(func(t *route.Table) {
			for k, dists := range best {
				sort.Float64s(dists)
				set := t.Set(k.l, k.d)
				var got []float64
				for _, e := range set {
					if !e.ID.Equal(n.id) {
						got = append(got, e.Distance)
					}
				}
				want := t.R()
				if len(dists) < want {
					want = len(dists)
				}
				if k.d == n.id.Digit(k.l) && want == t.R() {
					// The owner occupies one slot of its own set; only R-1
					// foreign entries are expected there... unless the set
					// held extras. Accept >= R-1 foreign entries.
					want = t.R() - 1
				}
				if len(got) < want {
					violations = append(violations, fmt.Sprintf(
						"node %v slot (%d,%d): %d entries, want %d", n.id, k.l, k.d, len(got), want))
					continue
				}
				for i := 0; i < want; i++ {
					if got[i] > dists[i]+1e-9 {
						violations = append(violations, fmt.Sprintf(
							"node %v slot (%d,%d): entry %d at distance %g, optimum %g",
							n.id, k.l, k.d, i, got[i], dists[i]))
						break
					}
				}
			}
		})
	}
	return violations
}

// AuditUniqueRoots checks Theorem 2: for each sampled key, surrogate routing
// from every live node terminates at the same root. It returns violations
// and the total extra surrogate hops observed (for the <2-expected-extra-hops
// claim, measured separately).
func (m *Mesh) AuditUniqueRoots(keys []ids.ID) []string {
	var violations []string
	nodes := m.Nodes()
	for _, key := range keys {
		var rootID ids.ID
		for _, n := range nodes {
			res, err := n.routeToKey(key, nil, wire.RouteOpRoute, nil)
			if err != nil {
				violations = append(violations, fmt.Sprintf("key %v from %v: %v", key, n.id, err))
				continue
			}
			if rootID.IsZero() {
				rootID = res.node.id
			} else if !rootID.Equal(res.node.id) {
				violations = append(violations, fmt.Sprintf(
					"key %v: roots %v and %v disagree", key, rootID, res.node.id))
			}
		}
	}
	return violations
}

// AuditProperty4 checks that every node on each current publish path holds
// the corresponding pointer: walk the path from each server toward each
// salted root and confirm the records exist. Returns violations.
func (m *Mesh) AuditProperty4() []string {
	var violations []string
	for _, server := range m.Nodes() {
		for _, guid := range server.PublishedObjects() {
			for s := 0; s < m.cfg.RootSetSize; s++ {
				key := m.cfg.Spec.Salt(guid, s)
				_, err := server.routeToKey(key, nil, wire.RouteOpRoute, func(cur *Node, level int) bool {
					cur.mu.Lock()
					ok := false
					if st := cur.objects[guid]; st != nil {
						for _, r := range st.recs {
							if r.server.Equal(server.id) && r.key.Equal(key) {
								ok = true
							}
						}
					}
					cur.mu.Unlock()
					if !ok {
						violations = append(violations, fmt.Sprintf(
							"object %v (server %v, salt %d): node %v on path lacks pointer",
							guid, server.id, s, cur.id))
					}
					return false
				})
				if err != nil {
					violations = append(violations, fmt.Sprintf(
						"object %v (server %v, salt %d): path walk failed: %v", guid, server.id, s, err))
				}
			}
		}
	}
	return violations
}

// AuditAvailability locates every published object from `probes` random live
// vantage points and returns the number of failed (object, vantage) pairs
// plus the total attempts.
func (m *Mesh) AuditAvailability(rng *rand.Rand, probes int) (failed, total int) {
	nodes := m.Nodes()
	if len(nodes) == 0 {
		return 0, 0
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id.Less(nodes[j].id) })
	objs := map[string]ids.ID{}
	for _, n := range nodes {
		for _, g := range n.PublishedObjects() {
			objs[g.String()] = g
		}
	}
	keys := make([]string, 0, len(objs))
	for k := range objs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := objs[k]
		for p := 0; p < probes; p++ {
			client := nodes[rng.Intn(len(nodes))]
			total++
			if res := client.Locate(g, nil); !res.Found {
				failed++
			}
		}
	}
	return failed, total
}
