package core

import (
	"errors"
	"math/rand"
	"testing"

	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
)

// buildMeshTransport is buildMesh with an explicit transport backend.
func buildMeshTransport(t testing.TB, n int, seed int64, k TransportKind) (*Mesh, []*Node) {
	t.Helper()
	cfg := testConfig()
	cfg.Transport = k
	rng := rand.New(rand.NewSource(seed))
	space := metric.NewRing(n * 4)
	net := netsim.New(space)
	m, err := NewMesh(net, cfg)
	if err != nil {
		t.Fatalf("NewMesh(%v): %v", k, err)
	}
	t.Cleanup(func() { m.Close() })
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, n)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	nodes, _, err := m.GrowSequential(addrs, rng)
	if err != nil {
		t.Fatalf("GrowSequential(%v): %v", k, err)
	}
	return m, nodes
}

var allTransports = []TransportKind{TransportDirect, TransportLoopback, TransportTCP}

// TestDeadPeerErrorUniform pins the unified failure semantics of satellite
// transports: on every backend, probing a crashed node and probing a stale
// entry (live address, different ID) both yield a *PeerError, and the
// underlying causes agree — unreachable host vs. departed overlay node. The
// twin meshes are built from the same seed, so the scenario is identical on
// each backend.
func TestDeadPeerErrorUniform(t *testing.T) {
	for _, k := range allTransports {
		m, nodes := buildMeshTransport(t, 16, 7, k)

		victim, observer := nodes[3], nodes[5]
		ve := victim.entryFor(observer.addr)
		m.Fail(victim)

		cost := &netsim.Cost{}
		_, err := m.invoke(observer.addr, ve, msgPing, msgAck, cost, false)
		if err == nil {
			t.Fatalf("%v: probe of failed node succeeded", k)
		}
		var pe *PeerError
		if !errors.As(err, &pe) {
			t.Fatalf("%v: probe error %T is not *PeerError: %v", k, err, err)
		}
		if !pe.To.ID.Equal(ve.ID) {
			t.Errorf("%v: PeerError.To = %v, want %v", k, pe.To.ID, ve.ID)
		}
		if k != TransportTCP && !errors.Is(err, netsim.ErrUnreachable) {
			// TCP reports the same failure via the simulated-network charge
			// too, so this holds there as well — but keep the assertion on
			// the deterministic backends where the cause is fully specified.
			t.Errorf("%v: cause %v, want netsim.ErrUnreachable", k, pe.Err)
		}

		// A stale entry: the address is alive but hosts a different ID.
		stale := route.Entry{ID: ids.FromDigits([]ids.Digit{1, 2, 3, 4, 5, 6}),
			Addr: nodes[8].addr}
		_, err = m.invoke(observer.addr, stale, msgPing, msgAck, cost, false)
		if err == nil {
			t.Fatalf("%v: probe of stale entry succeeded", k)
		}
		if !errors.As(err, &pe) {
			t.Fatalf("%v: stale-entry error %T is not *PeerError", k, err)
		}
		if !errors.Is(err, errDead) {
			t.Errorf("%v: stale-entry cause %v, want errDead", k, pe.Err)
		}

		// One-way sends agree with invokes.
		_, err = m.oneWayMsg(observer.addr, ve, msgPing, cost)
		if !errors.As(err, &pe) {
			t.Fatalf("%v: one-way error %T is not *PeerError", k, err)
		}
	}
}

// TestDirectLoopbackTwinIdentical builds the same mesh on the direct and
// loopback backends and requires identical message totals and identical
// publish/locate outcomes — the codec round-trip may not change behavior or
// simulated cost anywhere.
func TestDirectLoopbackTwinIdentical(t *testing.T) {
	type result struct {
		msgs    int64
		hops    []int
		founds  []bool
		removed int
	}
	run := func(k TransportKind) result {
		m, nodes := buildMeshTransport(t, 24, 11, k)
		rng := rand.New(rand.NewSource(99))
		var guids []ids.ID
		for i := 0; i < 6; i++ {
			g := testSpec.Random(rng)
			srv := nodes[i*3]
			if err := srv.Publish(g, &netsim.Cost{}); err != nil {
				t.Fatalf("%v: publish: %v", k, err)
			}
			guids = append(guids, g)
		}
		var r result
		for _, g := range guids {
			for _, qi := range []int{1, 7, 20} {
				cost := &netsim.Cost{}
				res := nodes[qi].Locate(g, cost)
				r.founds = append(r.founds, res.Found)
				r.hops = append(r.hops, res.Hops)
			}
		}
		// A leave and a sweep keep the maintenance paths in the comparison.
		if err := nodes[2].Leave(&netsim.Cost{}); err != nil {
			t.Fatalf("%v: leave: %v", k, err)
		}
		m.Fail(nodes[4])
		r.removed = m.SweepDeadAll(&netsim.Cost{})
		r.msgs = m.net.TotalMessages()
		return r
	}

	direct := run(TransportDirect)
	loop := run(TransportLoopback)
	if direct.msgs != loop.msgs {
		t.Errorf("message totals diverge: direct %d, loopback %d", direct.msgs, loop.msgs)
	}
	if direct.removed != loop.removed {
		t.Errorf("sweep removals diverge: direct %d, loopback %d", direct.removed, loop.removed)
	}
	for i := range direct.founds {
		if direct.founds[i] != loop.founds[i] || direct.hops[i] != loop.hops[i] {
			t.Errorf("locate %d diverges: direct (%v,%d) loopback (%v,%d)",
				i, direct.founds[i], direct.hops[i], loop.founds[i], loop.hops[i])
		}
	}
}

// TestTCPRejectsEventEngine pins the construction-time incompatibility: real
// sockets cannot park on virtual time.
func TestTCPRejectsEventEngine(t *testing.T) {
	space := metric.NewRing(16)
	net := netsim.New(space)
	net.AttachEngine(netsim.NewEngine(1))
	cfg := testConfig()
	cfg.Transport = TransportTCP
	if _, err := NewMesh(net, cfg); err == nil {
		t.Fatal("NewMesh accepted TCP transport with an event engine attached")
	}
}

// TestParseTransport covers the flag/environment surface.
func TestParseTransport(t *testing.T) {
	for s, want := range map[string]TransportKind{
		"":         TransportAuto,
		"auto":     TransportAuto,
		"direct":   TransportDirect,
		"loopback": TransportLoopback,
		"tcp":      TransportTCP,
	} {
		got, err := ParseTransport(s)
		if err != nil || got != want {
			t.Errorf("ParseTransport(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseTransport("carrier-pigeon"); err == nil {
		t.Error("ParseTransport accepted an unknown backend")
	}
}
