// Package core implements the Tapestry overlay of Hildrum, Kubiatowicz, Rao
// and Zhao, "Distributed Object Location in a Dynamic Network": a
// location-independent routing infrastructure with routing locality that
// adapts to arriving and departing nodes.
//
// A Mesh is one overlay instance over a simulated network. Each Node owns a
// prefix routing table (Section 2.1), a bag of soft-state object pointers
// (Section 2.2), and participates in the dynamic-membership protocols:
// acknowledged multicast (Section 4.1), the incremental nearest-neighbor
// table construction (Section 3), insertion that keeps objects available
// (Sections 4.2–4.4), and voluntary/involuntary deletion (Section 5).
//
// Locking discipline: every node has a single mutex guarding its table,
// pointer store and state. No node method ever sends a network message while
// holding its own lock; handlers lock, copy what they need, unlock, then
// communicate. This keeps the genuinely concurrent tests (simultaneous
// insertion, churn) deadlock-free by construction.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
	"tapestry/internal/stats"
)

// Scheme selects the surrogate-routing variant of Section 2.3.
type Scheme int

const (
	// SchemeNative is Tapestry native routing: when the desired digit's
	// entry is missing, try the next filled entry at the same level,
	// wrapping around.
	SchemeNative Scheme = iota
	// SchemePRRLike is the distributed PRR-like variant: exact digits until
	// the first hole, then best-bit-match (ties to the numerically higher
	// digit), then always the numerically highest filled digit.
	SchemePRRLike
)

func (s Scheme) String() string {
	switch s {
	case SchemeNative:
		return "native"
	case SchemePRRLike:
		return "prr-like"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// RepairScheme selects how a node refills a routing-table hole left by a
// dead neighbor (Section 5.2).
type RepairScheme int

const (
	// RepairNearest runs the §4.2 level-by-level nearest-neighbor search
	// (nearest.go) and installs the closest qualifying candidates, so
	// Property 2 quality survives churn. The default.
	RepairNearest RepairScheme = iota
	// RepairScan is the legacy best-effort informant scan: ask current
	// neighbors for any matching entry and take the first live one. Kept as
	// the baseline the E-repair experiment compares the engine against.
	RepairScan
)

func (r RepairScheme) String() string {
	switch r {
	case RepairNearest:
		return "nearest"
	case RepairScan:
		return "scan"
	default:
		return fmt.Sprintf("repair(%d)", int(r))
	}
}

// Config parameterises a Mesh.
type Config struct {
	// Spec shapes the identifier space. Base must exceed the square of the
	// metric's expansion constant for the Section 3 guarantees.
	Spec ids.Spec
	// R is the neighbor-set capacity (primary + secondaries); the deployed
	// Tapestry uses 3. Must be >= 2 so "am I the only α-node?" is locally
	// decidable (see route.Table.OnlyNodeWithPrefix).
	R int
	// K is the nearest-neighbor list width of Section 3 (Lemma 1's
	// O(log n)). Zero means auto: max(8, 3·⌈log₂ n⌉) evaluated per join
	// against the current live population.
	K int
	// RootSetSize is |R_ψ|, the number of salted roots per object
	// (Observation 2). Default 1.
	RootSetSize int
	// Replicas is the object replication factor k: PublishReplicated places
	// the object on the publishing node plus the k-1 closest live peers
	// found by the §4.2 nearest-neighbor engine. Default 1 (no extra
	// copies); plain Publish ignores it.
	Replicas int
	// LocateProbes bounds how many salted roots one Locate tries before
	// giving up — the cheap sequential-fallback policy. Zero (the default)
	// probes the full root set; values above RootSetSize are clamped to it.
	LocateProbes int
	// Surrogate selects the localized routing variant.
	Surrogate Scheme
	// Repair selects the hole-repair strategy after neighbor failures; the
	// zero value is the §4.2 nearest-neighbor engine.
	Repair RepairScheme
	// PointerTTL is the soft-state lifetime of an object pointer in epochs;
	// pointers older than PointerTTL epochs vanish unless republished.
	PointerTTL int64
	// LocateCacheCap bounds the per-node LRU of cached location mappings
	// (guid -> replica) populated on the return path of successful locates
	// (see cache.go). Zero — the default — disables the cache entirely: no
	// node allocates one and query behavior is bit-identical to builds
	// without the serving layer.
	LocateCacheCap int
	// LocateCacheTTL is the lifetime of a cached location mapping in epochs.
	// Zero means "expire alongside the pointer soft state" (PointerTTL).
	LocateCacheTTL int64
	// Seed feeds the per-node root-selection streams used by queries (each
	// node derives a private SplitMix64 stream from Seed and its ID, so
	// concurrent Locate calls never serialize on a shared RNG).
	Seed int64
	// BuildWorkers is the worker-shard count for the parallel static bulk
	// constructions (BuildStatic, BuildStaticSampled); 0 means one worker
	// per CPU. The built mesh is byte-identical for every value.
	BuildWorkers int
	// Transport selects the node-to-node message backend (transport.go). The
	// zero value TransportAuto consults TAPESTRY_TRANSPORT and falls back to
	// the in-memory direct path.
	Transport TransportKind
}

// DefaultConfig returns the configuration used throughout the paper-scale
// experiments.
func DefaultConfig() Config {
	return Config{
		Spec:        ids.DefaultSpec,
		R:           3,
		K:           0,
		RootSetSize: 1,
		Replicas:    1,
		Surrogate:   SchemeNative,
		PointerTTL:  3,
		Seed:        1,
	}
}

func (c Config) withDefaults() (Config, error) {
	if c.Spec.Base == 0 && c.Spec.Digits == 0 {
		c.Spec = ids.DefaultSpec
	}
	if err := c.Spec.Validate(); err != nil {
		return c, err
	}
	if c.R == 0 {
		c.R = 3
	}
	if c.R < 2 {
		return c, errors.New("core: R must be >= 2 (primary plus at least one backup)")
	}
	if c.RootSetSize == 0 {
		c.RootSetSize = 1
	}
	if c.RootSetSize < 1 {
		return c, errors.New("core: RootSetSize must be >= 1")
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.Replicas < 1 {
		return c, errors.New("core: Replicas must be >= 1")
	}
	if c.LocateProbes < 0 {
		return c, errors.New("core: LocateProbes must be >= 0 (0 probes every root)")
	}
	if c.LocateProbes == 0 || c.LocateProbes > c.RootSetSize {
		c.LocateProbes = c.RootSetSize
	}
	if c.PointerTTL == 0 {
		c.PointerTTL = 3
	}
	if c.PointerTTL < 1 {
		return c, errors.New("core: PointerTTL must be >= 1")
	}
	if c.K < 0 {
		return c, errors.New("core: K must be >= 0")
	}
	if c.LocateCacheCap < 0 {
		return c, errors.New("core: LocateCacheCap must be >= 0 (0 disables the cache)")
	}
	if c.LocateCacheTTL < 0 {
		return c, errors.New("core: LocateCacheTTL must be >= 0 (0 follows PointerTTL)")
	}
	if c.BuildWorkers < 0 {
		return c, errors.New("core: BuildWorkers must be >= 0 (0 = one per CPU)")
	}
	if c.LocateCacheTTL == 0 {
		c.LocateCacheTTL = c.PointerTTL
	}
	tk, err := resolveTransportKind(c.Transport)
	if err != nil {
		return c, err
	}
	c.Transport = tk
	return c, nil
}

// nodeState tracks a node's lifecycle.
type nodeState int

const (
	stateInserting nodeState = iota
	stateActive
	stateLeaving
	stateDead
)

// Node is one Tapestry participant.
type Node struct {
	mesh *Mesh
	id   ids.ID
	addr netsim.Addr

	mu      sync.Mutex
	table   *route.Table
	objects map[ids.ID]*objState // GUID -> pointer records
	state   nodeState

	// published lists the GUIDs this node serves replicas of (it is a
	// storage server for them); used for republish and audits.
	published map[ids.ID]bool

	// cache is the bounded LRU of location mappings for the serving layer
	// (cache.go); nil unless Config.LocateCacheCap > 0. Guarded by mu.
	cache *locateCache

	// rootSalt seeds this node's private root-selection stream; locateSeq
	// advances it one draw per Locate without any shared lock.
	rootSalt  uint64
	locateSeq atomic.Uint64

	// Insertion-window state (Section 4.3): while inserting, queries for
	// unknown objects are bounced to the pre-insertion surrogate.
	psurrogate route.Entry
	alpha      ids.Prefix
}

// ID returns the node's identifier.
func (n *Node) ID() ids.ID { return n.id }

// Addr returns the node's network address.
func (n *Node) Addr() netsim.Addr { return n.addr }

// Entry renders the node as a routing-table entry at distance 0 from itself;
// callers adjust Distance for their own vantage point.
func (n *Node) entryFor(viewer netsim.Addr) route.Entry {
	return route.Entry{ID: n.id, Addr: n.addr, Distance: n.mesh.net.Distance(viewer, n.addr)}
}

// idShards is the number of independent locks over the ID registry. 64 keeps
// shard contention negligible at 100k nodes while the array of mutexes stays
// a few cache lines.
const idShards = 64

// idShard is one lock-striped slice of the ID -> node registry. Keys are
// ids.ID values directly (a comparable single-string struct), so lookups
// never pay the String() formatting allocation the old map[string] did.
type idShard struct {
	mu sync.Mutex
	m  map[ids.ID]*Node
}

// idShardIndex hashes an ID to its registry shard (FNV-1a over the digits —
// no allocation, and IDs are short).
func idShardIndex(id ids.ID) int {
	h := uint64(14695981039346656037)
	for i := 0; i < id.Len(); i++ {
		h = (h ^ uint64(id.Digit(i))) * 1099511628211
	}
	return int(h % idShards)
}

// Mesh is one Tapestry overlay instance.
//
// The membership registry is built not to serialize 100k nodes on a global
// lock: the address -> node map is a flat slice of atomic pointers (NodeAt —
// the per-message hot path inside rpc — is one lock-free load), the ID ->
// node map is lock-striped across idShards mutexes, and the size is a
// maintained atomic counter.
type Mesh struct {
	cfg Config
	net *netsim.Network

	// regions caches the metric's locality labelling (stub domains) at
	// construction, so the per-hop region lookups of the Section 6.3 paths
	// are an index into a slice regardless of the metric representation.
	regions []int

	// byAddr[a] is the node hosted at address a, nil when vacant. Sized by
	// the network at construction; slots flip with CAS so duplicate-address
	// registration is detected without any lock.
	byAddr []atomic.Pointer[Node]
	byID   [idShards]idShard
	size   atomic.Int64

	// Serving-layer counters: one observation per Locate on a cache-enabled
	// mesh. Atomics so the query hot path never takes a mesh-wide lock.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// nnScratchPool recycles the §4.2 search engine's candidate arenas
	// (nearest.go) across repairs, joins and refreshes mesh-wide.
	nnScratchPool sync.Pool

	// tr delivers every node-to-node message (transport.go); framePool
	// recycles the per-operation wire-message bundles the walk drivers fill.
	tr        Transport
	framePool sync.Pool
}

// getNNScratch hands out a clean search arena; putNNScratch recycles it.
func (m *Mesh) getNNScratch() *nnScratch {
	if sc, ok := m.nnScratchPool.Get().(*nnScratch); ok {
		return sc
	}
	return newNNScratch()
}

func (m *Mesh) putNNScratch(sc *nnScratch) {
	sc.reset()
	m.nnScratchPool.Put(sc)
}

// NewMesh creates an empty overlay on the given network.
func NewMesh(net *netsim.Network, cfg Config) (*Mesh, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := &Mesh{
		cfg:     cfg,
		net:     net,
		regions: metric.Regions(net.Space()),
		byAddr:  make([]atomic.Pointer[Node], net.Size()),
	}
	for i := range m.byID {
		m.byID[i].m = make(map[ids.ID]*Node)
	}
	tr, err := newTransport(m, cfg.Transport)
	if err != nil {
		return nil, err
	}
	m.tr = tr
	return m, nil
}

// Transport returns the mesh's message transport.
func (m *Mesh) Transport() Transport { return m.tr }

// Close releases transport resources (the TCP backend's listener and
// connection pool). The mesh itself remains usable only with the in-memory
// backends; Close is idempotent.
func (m *Mesh) Close() error { return m.tr.Close() }

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Net returns the underlying simulated network.
func (m *Mesh) Net() *netsim.Network { return m.net }

// Spec returns the identifier spec.
func (m *Mesh) Spec() ids.Spec { return m.cfg.Spec }

// Bootstrap creates the first node of the overlay. It fails if the overlay
// already has members (use Join) or the address or ID is taken.
func (m *Mesh) Bootstrap(id ids.ID, addr netsim.Addr) (*Node, error) {
	if m.Size() != 0 {
		return nil, errors.New("core: mesh already bootstrapped; use Join")
	}
	n := m.newNode(id, addr)
	n.state = stateActive
	if err := m.publish(n); err != nil {
		return nil, err
	}
	return n, nil
}

// newNode allocates a node that is NOT yet in the registry. Every field a
// concurrent reader may touch must be set before publish makes it visible.
func (m *Mesh) newNode(id ids.ID, addr netsim.Addr) *Node {
	n := &Node{
		mesh:      m,
		id:        id,
		addr:      addr,
		table:     route.New(m.cfg.Spec, id, addr, m.cfg.R),
		objects:   make(map[ids.ID]*objState),
		published: make(map[ids.ID]bool),
		state:     stateInserting,
		rootSalt:  uint64(stats.StreamSeed(m.cfg.Seed, id.String(), 0)),
	}
	if m.cfg.LocateCacheCap > 0 {
		n.cache = newLocateCache(m.cfg.LocateCacheCap, m.cfg.LocateCacheTTL)
	}
	return n
}

// publish inserts a fully-initialized node into the registry, enforcing ID
// and address uniqueness, and attaches its address to the network. The ID
// shard is claimed first and the address slot second: on an address clash
// the ID entry is rolled back, so a failed registration is never reachable
// through NodeAt (the path every message resolution takes); the transient
// NodeByID visibility only audits could observe is harmless.
func (m *Mesh) publish(n *Node) error {
	sh := &m.byID[idShardIndex(n.id)]
	sh.mu.Lock()
	if _, dup := sh.m[n.id]; dup {
		sh.mu.Unlock()
		return fmt.Errorf("core: node-ID %v already in use", n.id)
	}
	sh.m[n.id] = n
	sh.mu.Unlock()
	if !m.byAddr[n.addr].CompareAndSwap(nil, n) {
		sh.mu.Lock()
		delete(sh.m, n.id)
		sh.mu.Unlock()
		return fmt.Errorf("core: address %d already hosts a node", n.addr)
	}
	m.size.Add(1)
	m.net.Attach(n.addr)
	return nil
}

// register validates uniqueness and creates an inserting node. The node's
// Figure 10 fields (α and the pre-insertion surrogate) are set before it
// becomes visible in the registry: a concurrent surrogate walk may reach the
// node the instant it is published, and must be able to bounce off it.
func (m *Mesh) register(id ids.ID, addr netsim.Addr, alpha ids.Prefix, psur route.Entry) (*Node, error) {
	n := m.newNode(id, addr)
	n.alpha = alpha
	n.psurrogate = psur
	if err := m.publish(n); err != nil {
		return nil, err
	}
	return n, nil
}

// unregister removes a departed node from the registry (idempotent).
func (m *Mesh) unregister(n *Node) {
	sh := &m.byID[idShardIndex(n.id)]
	sh.mu.Lock()
	if sh.m[n.id] == n {
		delete(sh.m, n.id)
	}
	sh.mu.Unlock()
	if m.byAddr[n.addr].CompareAndSwap(n, nil) {
		m.size.Add(-1)
	}
}

// NodeAt returns the node hosted at addr, or nil. Lock-free: this is the
// target-resolution step of every simulated message.
func (m *Mesh) NodeAt(addr netsim.Addr) *Node {
	if addr < 0 || int(addr) >= len(m.byAddr) {
		return nil
	}
	return m.byAddr[addr].Load()
}

// NodeByID returns the registered node with the given ID, or nil.
func (m *Mesh) NodeByID(id ids.ID) *Node {
	sh := &m.byID[idShardIndex(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m[id]
}

// Nodes returns a snapshot of all registered nodes (including currently
// inserting ones, excluding failed/departed ones).
func (m *Mesh) Nodes() []*Node {
	out := make([]*Node, 0, m.Size())
	for i := range m.byID {
		sh := &m.byID[i]
		sh.mu.Lock()
		for _, n := range sh.m {
			out = append(out, n)
		}
		sh.mu.Unlock()
	}
	// Shard maps iterate in arbitrary order: return in ID order so churn and
	// failure experiments that pick victims or probe clients from this slice
	// are reproducible.
	sort.Slice(out, func(i, j int) bool { return out[i].id.Less(out[j].id) })
	return out
}

// Size returns the number of registered nodes (O(1): a maintained counter).
func (m *Mesh) Size() int {
	return int(m.size.Load())
}

// errDead distinguishes "destination's host is up but the overlay node is
// gone" — treated exactly like an unreachable host by callers. It reaches
// them wrapped in a *PeerError (transport.go), the one failure shape every
// backend produces.
var errDead = errors.New("core: node no longer participates")

// rpc charges a request/response pair from caller to the entry's address and
// resolves the live target node. A stale entry (address re-used by a
// different ID, departed node, dead host) yields a *PeerError after charging
// the probe, matching the paper's model where failures are detected by
// timeout. This is the charging half of the direct and loopback transports;
// message delivery is layered on top by Transport.Invoke.
func (m *Mesh) rpc(from netsim.Addr, to route.Entry, cost *netsim.Cost, hop bool) (*Node, error) {
	if err := m.net.Send(from, to.Addr, cost, hop); err != nil {
		return nil, &PeerError{To: to, Err: err}
	}
	target := m.NodeAt(to.Addr)
	if target == nil || !target.id.Equal(to.ID) {
		return nil, &PeerError{To: to, Err: errDead}
	}
	target.mu.Lock()
	dead := target.state == stateDead
	target.mu.Unlock()
	if dead {
		return nil, &PeerError{To: to, Err: errDead}
	}
	// Response leg.
	_ = m.net.Send(to.Addr, from, cost, false)
	return target, nil
}

// oneWay charges a single message and resolves the target (no response leg),
// used for notifications that are fire-and-forget in the paper.
func (m *Mesh) oneWay(from netsim.Addr, to route.Entry, cost *netsim.Cost) (*Node, error) {
	if err := m.net.Send(from, to.Addr, cost, false); err != nil {
		return nil, &PeerError{To: to, Err: err}
	}
	target := m.NodeAt(to.Addr)
	if target == nil || !target.id.Equal(to.ID) {
		return nil, &PeerError{To: to, Err: errDead}
	}
	return target, nil
}

// kList returns the effective nearest-neighbor list width for the current
// population (Section 3: k = O(log n)).
func (m *Mesh) kList() int {
	if m.cfg.K > 0 {
		return m.cfg.K
	}
	n := m.Size()
	k := 8
	for p := 1; p < n; p *= 2 {
		k += 3
	}
	return k
}

// addNeighborAndNotify inserts e into n's table at the given level under n's
// lock, then (outside the lock) registers the backpointer at e and retracts
// backpointers at any evicted nodes. It reports whether e was added.
func (n *Node) addNeighborAndNotify(level int, e route.Entry, cost *netsim.Cost) bool {
	if e.ID.Equal(n.id) {
		return false
	}
	n.mu.Lock()
	added, evicted := n.table.Add(level, e)
	n.mu.Unlock()
	if added {
		n.sendBackpointerAdd(level, e, cost)
	}
	for _, ev := range evicted {
		n.sendBackpointerRemove(level, ev, cost)
	}
	return added
}

func (n *Node) sendBackpointerAdd(level int, e route.Entry, cost *netsim.Cost) {
	f := n.mesh.getFrames()
	f.backAdd.Level = level
	f.backAdd.From = route.Entry{ID: n.id, Addr: n.addr, Distance: e.Distance}
	// A dead neighbor is ignored; the sweep will clean it up.
	_, _ = n.mesh.oneWayMsg(n.addr, e, &f.backAdd, cost)
	n.mesh.putFrames(f)
}

func (n *Node) sendBackpointerRemove(level int, e route.Entry, cost *netsim.Cost) {
	f := n.mesh.getFrames()
	f.backRemove.Level = level
	f.backRemove.ID = n.id
	_, _ = n.mesh.oneWayMsg(n.addr, e, &f.backRemove, cost)
	n.mesh.putFrames(f)
}

// snapshotTable returns a deep copy of the node's forward links as entries
// grouped by level, used by SweepDead, ReorderNeighborSets and the
// preliminary-table copy. Iterate the result via sortedLevels wherever the
// order has observable effects.
func (n *Node) snapshotTable() map[int][]route.Entry {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[int][]route.Entry)
	n.table.ForEachNeighbor(func(level int, e route.Entry) {
		out[level] = append(out[level], e)
	})
	return out
}

// Table exposes the node's routing table for audits and experiments. The
// caller must treat it as read-only and must not retain it across
// membership changes; tests are the intended consumer.
func (n *Node) Table() *route.Table { return n.table }

// NeighborCount returns the number of routing-table links, taken under the
// node's lock so it is safe against concurrent membership changes (the
// Table() accessor is not).
func (n *Node) NeighborCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.table.NeighborCount()
}

// lockedView runs fn with the node's lock held; for audits only.
func (n *Node) lockedView(fn func(t *route.Table)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn(n.table)
}
