package core

import (
	"testing"

	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
)

// purgeSaltPath deletes every pointer on (server, Salt(guid, salt))'s publish
// path mesh-wide, simulating a root path that decayed — the pointer holders
// crashed and were replaced — without the server having republished yet.
func purgeSaltPath(nodes []*Node, server *Node, guid ids.ID, salt int) {
	key := server.mesh.cfg.Spec.Salt(guid, salt)
	for _, nd := range nodes {
		nd.mu.Lock()
		if st := nd.objects[guid]; st != nil {
			st.remove(server.id, key)
			if len(st.recs) == 0 {
				delete(nd.objects, guid)
			}
		}
		nd.mu.Unlock()
	}
}

func TestReplicationConfigValidation(t *testing.T) {
	net := netsim.New(metric.NewRing(8))
	for i, cfg := range []Config{
		{Spec: testSpec, Replicas: -1},
		{Spec: testSpec, LocateProbes: -2},
	} {
		if _, err := NewMesh(net, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

// TestPublishReplicated pins the k-replica placement: the object lands on
// exactly Replicas servers (the publisher plus the closest live peers), every
// copy is announced along every salted root, and the object survives the
// original publisher crashing.
func TestPublishReplicated(t *testing.T) {
	cfg := testConfig()
	cfg.RootSetSize = 2
	cfg.Replicas = 3
	m, nodes := buildMesh(t, 48, cfg, 5)

	guid := testSpec.Hash("replicated-object")
	placed, err := nodes[0].PublishReplicated(guid, nil)
	if err != nil {
		t.Fatalf("PublishReplicated: %v", err)
	}
	if placed != 3 {
		t.Fatalf("placed %d replicas, want 3", placed)
	}
	var servers []*Node
	for _, nd := range nodes {
		for _, g := range nd.PublishedObjects() {
			if g.Equal(guid) {
				servers = append(servers, nd)
			}
		}
	}
	if len(servers) != 3 {
		t.Fatalf("%d nodes serve the object, want 3", len(servers))
	}
	if servers[0] != nodes[0] && servers[1] != nodes[0] && servers[2] != nodes[0] {
		t.Error("the publisher itself must be one of the replicas")
	}
	// The object must be reachable through every salted root.
	for salt := 0; salt < cfg.RootSetSize; salt++ {
		if res := nodes[7].LocateVia(guid, salt, nil); !res.Found {
			t.Fatalf("salt-%d locate missed with %d replicas placed", salt, placed)
		}
	}

	// Crash the publisher: the other replicas keep the object reachable
	// (serveQuery verifies replica liveness and falls back to a live copy).
	m.Fail(nodes[0])
	res := nodes[11].Locate(guid, nil)
	if !res.Found {
		t.Fatal("object unreachable after the publisher crashed despite 2 surviving replicas")
	}
	if res.Server.Equal(nodes[0].ID()) {
		t.Errorf("locate answered with the crashed replica %v", res.Server)
	}
}

// TestPublishReplicatedSingle pins that Replicas=1 collapses to plain
// Publish: one server, no placement traffic.
func TestPublishReplicatedSingle(t *testing.T) {
	cfg := testConfig()
	m, nodes := buildMesh(t, 24, cfg, 6)
	_ = m
	guid := testSpec.Hash("solo")
	placed, err := nodes[3].PublishReplicated(guid, nil)
	if err != nil || placed != 1 {
		t.Fatalf("PublishReplicated = (%d, %v), want (1, nil)", placed, err)
	}
	count := 0
	for _, nd := range nodes {
		count += len(nd.PublishedObjects())
	}
	if count != 1 {
		t.Fatalf("%d servers hold the object, want 1", count)
	}
}

// TestReadRepair pins the locate-triggered repair: with one salted root's
// path decayed, a multi-root locate still succeeds via the surviving root
// and re-publishes toward the missed one, after which a direct single-root
// query on the previously dead salt hits again.
func TestReadRepair(t *testing.T) {
	cfg := testConfig()
	cfg.RootSetSize = 2
	_, nodes := buildMesh(t, 48, cfg, 7)

	server := nodes[1]
	guid := testSpec.Hash("repair-me")
	if err := server.Publish(guid, nil); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	purgeSaltPath(nodes, server, guid, 1)

	client := nodes[30]
	if res := client.LocateVia(guid, 1, nil); res.Found || res.Exhausted {
		t.Fatalf("salt-1 path not decayed: %+v", res)
	}

	// Locate draws its starting root pseudo-randomly; a draw starting at the
	// dead salt observes the miss, succeeds via salt 0 and repairs. A handful
	// of queries guarantees such a draw for any fixed seed.
	repaired := false
	for q := 0; q < 32 && !repaired; q++ {
		res := client.Locate(guid, nil)
		if !res.Found {
			t.Fatalf("multi-root locate %d missed entirely", q)
		}
		repaired = client.LocateVia(guid, 1, nil).Found
	}
	if !repaired {
		t.Fatal("32 multi-root locates never repaired the decayed salt-1 path")
	}
}

// TestLocateProbesBudget pins the sequential-fallback budget: with
// LocateProbes=1 a locate consults exactly one salted root, so a query that
// draws the decayed root misses where the full fallback would have hit.
func TestLocateProbesBudget(t *testing.T) {
	cfg := testConfig()
	cfg.RootSetSize = 2
	cfg.LocateProbes = 1
	_, nodes := buildMesh(t, 48, cfg, 8)

	server := nodes[2]
	guid := testSpec.Hash("budgeted")
	if err := server.Publish(guid, nil); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	purgeSaltPath(nodes, server, guid, 1)

	client := nodes[20]
	missed, found := 0, 0
	for q := 0; q < 64; q++ {
		if client.Locate(guid, nil).Found {
			found++
		} else {
			missed++
		}
	}
	if missed == 0 {
		t.Error("LocateProbes=1 never missed on the decayed root: the budget is not being honored")
	}
	if found == 0 {
		t.Error("LocateProbes=1 never hit via the live root")
	}
}

// TestReplicaPlacementPrefersClose pins the nearest-engine selection: the
// extra replicas are drawn from the closest candidates, not arbitrary mesh
// members. The check is loose — within the closest third of the live
// population by distance from the publisher — because the engine's k-list
// is an approximation under Lemma 1, not an oracle sort.
func TestReplicaPlacementPrefersClose(t *testing.T) {
	cfg := testConfig()
	cfg.Replicas = 3
	m, nodes := buildMesh(t, 60, cfg, 9)

	pub := nodes[4]
	guid := testSpec.Hash("near-copies")
	if _, err := pub.PublishReplicated(guid, nil); err != nil {
		t.Fatalf("PublishReplicated: %v", err)
	}

	// Rank all other nodes by distance from the publisher.
	rank := make(map[ids.ID]int)
	others := make([]*Node, 0, len(nodes)-1)
	for _, nd := range nodes {
		if nd != pub {
			others = append(others, nd)
		}
	}
	sortNodesByDistance(m.Net(), pub, others)
	for i, nd := range others {
		rank[nd.ID()] = i
	}

	limit := len(others) / 3
	for _, nd := range others {
		if len(nd.PublishedObjects()) == 0 {
			continue
		}
		if r := rank[nd.ID()]; r >= limit {
			t.Errorf("replica %v is distance-rank %d of %d, expected within the closest third",
				nd.ID(), r, len(others))
		}
	}
}

func sortNodesByDistance(net *netsim.Network, from *Node, list []*Node) {
	for i := 1; i < len(list); i++ {
		for j := i; j > 0; j-- {
			dj := net.Distance(from.Addr(), list[j].Addr())
			dp := net.Distance(from.Addr(), list[j-1].Addr())
			if dj < dp || (dj == dp && list[j].ID().Less(list[j-1].ID())) {
				list[j], list[j-1] = list[j-1], list[j]
			} else {
				break
			}
		}
	}
}
