package core

import (
	"math/rand"
	"sync"
	"testing"

	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
)

// freeAddr returns an address in the mesh's space not hosting a node.
func freeAddr(m *Mesh) netsim.Addr {
	for a := 0; a < m.Net().Size(); a++ {
		if m.NodeAt(netsim.Addr(a)) == nil && !m.Net().Alive(netsim.Addr(a)) {
			return netsim.Addr(a)
		}
	}
	panic("no free address")
}

func TestMulticastReachesAllPrefixHolders(t *testing.T) {
	m, nodes := buildMesh(t, 40, testConfig(), 21)
	// For each node and each of its prefix lengths, the multicast must reach
	// exactly the nodes with that prefix (Theorem 5).
	byPrefix := func(p ids.Prefix) map[string]bool {
		want := map[string]bool{}
		for _, n := range m.Nodes() {
			if n.id.HasPrefix(p) {
				want[n.id.String()] = true
			}
		}
		return want
	}
	for _, start := range []*Node{nodes[0], nodes[17], nodes[39]} {
		for l := 0; l <= 2; l++ {
			p := start.id.Prefix(l)
			var mu sync.Mutex
			got := map[string]bool{}
			var cost netsim.Cost
			reached, err := start.AcknowledgedMulticast(p, func(x *Node) {
				mu.Lock()
				got[x.id.String()] = true
				mu.Unlock()
			}, &cost)
			if err != nil {
				t.Fatal(err)
			}
			want := byPrefix(p)
			if len(got) != len(want) {
				t.Fatalf("prefix %v: applied at %d nodes, want %d", p, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("prefix %v: node %s missed", p, k)
				}
			}
			if len(reached) < len(want) {
				t.Fatalf("prefix %v: reached %d < %d", p, len(reached), len(want))
			}
			// Message cost is O(k): each reached node gets O(1) messages
			// (plus acks); allow a generous constant.
			if l == 0 && cost.Messages() > 6*len(want) {
				t.Errorf("multicast to %d nodes used %d messages", len(want), cost.Messages())
			}
		}
	}
}

func TestMulticastRejectsForeignPrefix(t *testing.T) {
	_, nodes := buildMesh(t, 8, testConfig(), 22)
	var foreign ids.Prefix
	for _, other := range nodes[1:] {
		if ids.CommonPrefixLen(nodes[0].id, other.id) == 0 {
			foreign = other.id.Prefix(1)
			break
		}
	}
	if foreign.Len() == 0 {
		t.Skip("all nodes share a first digit (improbable)")
	}
	if _, err := nodes[0].AcknowledgedMulticast(foreign, nil, nil); err == nil {
		t.Error("multicast with a non-own prefix must fail")
	}
}

func TestVoluntaryLeaveKeepsNetworkConsistent(t *testing.T) {
	m, nodes := buildMesh(t, 40, testConfig(), 23)
	guid := testSpec.Hash("survives-leave")
	server := nodes[10]
	if err := server.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	// A third of the network departs gracefully (never the server).
	for _, n := range []*Node{nodes[1], nodes[4], nodes[7], nodes[13], nodes[22], nodes[31], nodes[38]} {
		if err := n.Leave(nil); err != nil {
			t.Fatalf("leave %v: %v", n.id, err)
		}
	}
	if v := m.AuditProperty1(); len(v) != 0 {
		t.Fatalf("Property 1 violated after voluntary departures:\n%v", v[:min(5, len(v))])
	}
	for _, c := range m.Nodes() {
		if res := c.Locate(guid, nil); !res.Found {
			t.Fatalf("object unavailable from %v after voluntary departures", c.id)
		}
	}
}

func TestLeaveOfRootTransfersObjects(t *testing.T) {
	m, nodes := buildMesh(t, 32, testConfig(), 24)
	guid := testSpec.Hash("root-owned")
	server := nodes[3]
	if err := server.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	key := testSpec.Salt(guid, 0)
	root, _, err := server.SurrogateFor(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if root == server {
		t.Skip("server is its own root; pick a different seed if this recurs")
	}
	if err := root.Leave(nil); err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Nodes() {
		if res := c.Locate(guid, nil); !res.Found {
			t.Fatalf("object lost after its root departed (client %v)", c.id)
		}
	}
}

func TestLeavingServerRemovesItsReplica(t *testing.T) {
	m, nodes := buildMesh(t, 24, testConfig(), 25)
	guid := testSpec.Hash("replica-walks")
	a, b := nodes[2], nodes[9]
	if err := a.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Leave(nil); err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Nodes() {
		res := c.Locate(guid, nil)
		if !res.Found {
			t.Fatalf("remaining replica not found from %v", c.id)
		}
		if !res.Server.Equal(b.id) {
			t.Fatalf("located departed server %v", res.Server)
		}
	}
}

func TestDoubleLeaveFails(t *testing.T) {
	_, nodes := buildMesh(t, 8, testConfig(), 26)
	if err := nodes[1].Leave(nil); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Leave(nil); err == nil {
		t.Error("second leave must fail")
	}
}

func TestInvoluntaryFailureRoutingRecovers(t *testing.T) {
	m, nodes := buildMesh(t, 40, testConfig(), 27)
	// Kill a handful of nodes without notice.
	for _, n := range []*Node{nodes[5], nodes[15], nodes[25]} {
		m.Fail(n)
	}
	// Routing still terminates and roots are still unique among survivors
	// after a sweep repairs the mesh.
	for _, n := range m.Nodes() {
		n.SweepDead(nil)
	}
	if v := m.AuditProperty1(); len(v) != 0 {
		t.Fatalf("Property 1 violated after failures + sweep:\n%v", v[:min(5, len(v))])
	}
	rng := rand.New(rand.NewSource(3))
	keys := []ids.ID{testSpec.Random(rng), testSpec.Random(rng), testSpec.Random(rng)}
	if v := m.AuditUniqueRoots(keys); len(v) != 0 {
		t.Fatalf("root uniqueness lost after failures: %v", v)
	}
}

func TestFailureThenRepublishRestoresAvailability(t *testing.T) {
	m, nodes := buildMesh(t, 40, testConfig(), 28)
	guid := testSpec.Hash("phoenix")
	server := nodes[8]
	if err := server.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	key := testSpec.Salt(guid, 0)
	root, _, err := server.SurrogateFor(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if root == server {
		t.Skip("server is its own root")
	}
	m.Fail(root) // the root dies with all its pointers
	// Soft state heals: a maintenance epoch republishes everything onto the
	// new surrogate root.
	m.RunMaintenanceEpoch(nil)
	for _, n := range m.Nodes() {
		n.SweepDead(nil)
	}
	for _, c := range m.Nodes() {
		if res := c.Locate(guid, nil); !res.Found {
			t.Fatalf("object not restored after republish (client %v)", c.id)
		}
	}
}

func TestSoftStateExpiry(t *testing.T) {
	m, nodes := buildMesh(t, 24, testConfig(), 29)
	guid := testSpec.Hash("ephemeral")
	server := nodes[4]
	if err := server.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	// Stop serving without unpublishing (a crash of the app, not the node),
	// then let the TTL lapse: pointers must evaporate.
	server.mu.Lock()
	delete(server.published, guid)
	server.mu.Unlock()
	for i := int64(0); i <= m.Config().PointerTTL; i++ {
		now := m.Net().Tick()
		for _, n := range m.Nodes() {
			n.expirePointers(now)
		}
	}
	for _, n := range m.Nodes() {
		if n.PointerCount() != 0 {
			t.Fatalf("node %v holds %d pointers after TTL", n.id, n.PointerCount())
		}
	}
}

func TestRepublishKeepsPointersFresh(t *testing.T) {
	m, nodes := buildMesh(t, 24, testConfig(), 30)
	guid := testSpec.Hash("refreshed")
	if err := nodes[6].Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	// Many maintenance epochs: the object stays available because republish
	// outruns expiry.
	for e := 0; e < int(m.Config().PointerTTL)*4; e++ {
		m.RunMaintenanceEpoch(nil)
	}
	for _, c := range m.Nodes() {
		if res := c.Locate(guid, nil); !res.Found {
			t.Fatalf("object expired despite republish (client %v)", c.id)
		}
	}
}

func TestConcurrentJoinsMaintainConsistency(t *testing.T) {
	// Theorem 6: simultaneous insertions leave no fillable holes. Join
	// batches of nodes concurrently and audit after each wave.
	cfg := testConfig()
	rng := rand.New(rand.NewSource(31))
	space := metric.NewRing(512)
	net := netsim.New(space)
	m, err := NewMesh(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(space.Size())
	next := 0
	takeAddr := func() netsim.Addr { a := netsim.Addr(perm[next]); next++; return a }
	if _, err := m.Bootstrap(testSpec.Random(rng), takeAddr()); err != nil {
		t.Fatal(err)
	}
	// Grow a small sequential base first.
	for i := 0; i < 8; i++ {
		gw := m.randomLiveNode(rng)
		if _, _, err := m.Join(gw, m.freshID(rng), takeAddr()); err != nil {
			t.Fatal(err)
		}
	}
	// Now five waves of eight truly concurrent joins.
	for wave := 0; wave < 5; wave++ {
		type joinArg struct {
			gw   *Node
			id   ids.ID
			addr netsim.Addr
		}
		args := make([]joinArg, 8)
		for i := range args {
			args[i] = joinArg{m.randomLiveNode(rng), m.freshID(rng), takeAddr()}
		}
		var wg sync.WaitGroup
		errs := make([]error, len(args))
		for i, a := range args {
			wg.Add(1)
			go func(i int, a joinArg) {
				defer wg.Done()
				_, _, errs[i] = m.Join(a.gw, a.id, a.addr)
			}(i, a)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("wave %d join %d: %v", wave, i, err)
			}
		}
		if v := m.AuditProperty1(); len(v) != 0 {
			t.Fatalf("wave %d: Property 1 violated after concurrent joins:\n%v", wave, v[:min(5, len(v))])
		}
	}
	keys := []ids.ID{testSpec.Random(rng), testSpec.Random(rng)}
	if v := m.AuditUniqueRoots(keys); len(v) != 0 {
		t.Fatalf("concurrent joins broke root uniqueness: %v", v)
	}
}

func TestAvailabilityDuringChurn(t *testing.T) {
	// Objects stay locatable while joins and leaves proceed (Sections 4.3
	// and 5.1). Queries run concurrently with membership changes.
	cfg := testConfig()
	rng := rand.New(rand.NewSource(32))
	space := metric.NewRing(1024)
	net := netsim.New(space)
	m, err := NewMesh(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(space.Size())
	next := 0
	takeAddr := func() netsim.Addr { a := netsim.Addr(perm[next]); next++; return a }
	if _, err := m.Bootstrap(testSpec.Random(rng), takeAddr()); err != nil {
		t.Fatal(err)
	}
	var servers []*Node
	for i := 0; i < 24; i++ {
		gw := m.randomLiveNode(rng)
		n, _, err := m.Join(gw, m.freshID(rng), takeAddr())
		if err != nil {
			t.Fatal(err)
		}
		if i < 6 {
			servers = append(servers, n)
		}
	}
	guids := make([]ids.ID, len(servers))
	for i, s := range servers {
		guids[i] = testSpec.Hash("churn-object-" + string(rune('a'+i)))
		if err := s.Publish(guids[i], nil); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var failures sync.Map
	var qwg sync.WaitGroup
	qwg.Add(1)
	go func() {
		defer qwg.Done()
		qrng := rand.New(rand.NewSource(33))
		for {
			select {
			case <-stop:
				return
			default:
			}
			nodes := m.Nodes()
			if len(nodes) == 0 {
				continue
			}
			c := nodes[qrng.Intn(len(nodes))]
			g := guids[qrng.Intn(len(guids))]
			if res := c.Locate(g, nil); !res.Found {
				// Retry once: the client itself may have been mid-departure.
				if res2 := c.Locate(g, nil); !res2.Found {
					failures.Store(g.String()+"/"+c.ID().String(), true)
				}
			}
		}
	}()

	// Churn: 12 joins and 8 leaves interleaved (servers never leave).
	serverSet := map[string]bool{}
	for _, s := range servers {
		serverSet[s.id.String()] = true
	}
	var joined []*Node
	for i := 0; i < 12; i++ {
		gw := m.randomLiveNode(rng)
		n, _, err := m.Join(gw, m.freshID(rng), takeAddr())
		if err != nil {
			t.Fatal(err)
		}
		joined = append(joined, n)
		if i%3 == 2 {
			// Pick a non-server victim.
			for _, cand := range m.Nodes() {
				if !serverSet[cand.id.String()] && cand != n {
					_ = cand.Leave(nil)
					break
				}
			}
		}
	}
	close(stop)
	qwg.Wait()
	_ = joined

	count := 0
	failures.Range(func(k, v any) bool { count++; return true })
	if count > 0 {
		t.Fatalf("%d locate failures during churn", count)
	}
	if v := m.AuditProperty1(); len(v) != 0 {
		t.Fatalf("Property 1 violated after churn:\n%v", v[:min(5, len(v))])
	}
}

func TestOptimizeObjectPtrsMaintainsProperty4(t *testing.T) {
	m, nodes := buildMesh(t, 32, testConfig(), 34)
	guid := testSpec.Hash("optimized")
	server := nodes[7]
	if err := server.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	// Perturb the mesh: new joins may change primaries along the path.
	rng := rand.New(rand.NewSource(35))
	for i := 0; i < 6; i++ {
		gw := m.randomLiveNode(rng)
		if _, _, err := m.Join(gw, m.freshID(rng), freeAddr(m)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range m.Nodes() {
		n.OptimizeObjectPtrs(nil)
	}
	if v := m.AuditProperty4(); len(v) != 0 {
		t.Fatalf("Property 4 violated after optimization:\n%v", v[:min(5, len(v))])
	}
	for _, c := range m.Nodes() {
		if res := c.Locate(guid, nil); !res.Found {
			t.Fatalf("object lost after optimization (client %v)", c.id)
		}
	}
}

func TestJoinTransfersRootPointers(t *testing.T) {
	// A new node whose ID makes it the better root for an existing object
	// must receive the pointers during its insertion (LinkAndXferRoot), or
	// queries terminating at it would fail.
	m, nodes := buildMesh(t, 24, testConfig(), 36)
	guid := testSpec.Hash("transferred")
	server := nodes[5]
	if err := server.Publish(guid, nil); err != nil {
		t.Fatal(err)
	}
	key := testSpec.Salt(guid, 0)
	// Craft a node ID equal to the key's first digits: it will become the
	// new root (longest shared prefix wins under surrogate routing).
	d := make([]ids.Digit, testSpec.Digits)
	for i := 0; i < testSpec.Digits; i++ {
		d[i] = key.Digit(i)
	}
	newID := testSpec.Make(d)
	if m.NodeByID(newID) != nil {
		t.Skip("key collides with an existing node")
	}
	gw := nodes[0]
	nn, _, err := m.Join(gw, newID, freeAddr(m))
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := server.SurrogateFor(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if root != nn {
		t.Fatalf("exact-match node is not the root (got %v)", root.id)
	}
	for _, c := range m.Nodes() {
		if res := c.Locate(guid, nil); !res.Found {
			t.Fatalf("object lost after root handover (client %v)", c.id)
		}
	}
	if nn.PointerCount() == 0 {
		t.Error("new root received no pointers")
	}
}

func TestSweepDeadCountsAndRepairs(t *testing.T) {
	m, nodes := buildMesh(t, 24, testConfig(), 37)
	victim := nodes[9]
	m.Fail(victim)
	totalRemoved := 0
	for _, n := range m.Nodes() {
		totalRemoved += n.SweepDead(nil)
	}
	if totalRemoved == 0 {
		t.Error("nobody noticed the corpse")
	}
	if v := m.AuditProperty1(); len(v) != 0 {
		t.Fatalf("Property 1 violated after sweep:\n%v", v[:min(5, len(v))])
	}
}
