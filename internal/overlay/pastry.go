package overlay

import (
	"errors"
	"math/rand"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/pastry"
)

// pastryCaps is empty: the Pastry baseline builds its proximity tables
// statically from global knowledge (the standard simulation methodology for
// its hop/stretch numbers) and has no dynamic membership or maintenance to
// offer — it declines everything beyond the universal operations.
const pastryCaps = Caps(0)

// pastryProto adapts pastry.Mesh.
type pastryProto struct {
	members
	net  *netsim.Network
	mesh *pastry.Mesh
	spec ids.Spec
	rng  *rand.Rand
}

type pastryHandle struct{ n *pastry.Node }

func (h pastryHandle) Addr() netsim.Addr { return h.n.Addr() }
func (h pastryHandle) Label() string     { return h.n.ID().String() }

func newPastry(net *netsim.Network, cfg Config) (Protocol, error) {
	leaf := cfg.LeafSize
	if leaf == 0 {
		leaf = 8
	}
	spec := cfg.spec()
	mesh, err := pastry.NewMesh(net, spec, leaf)
	if err != nil {
		return nil, err
	}
	return &pastryProto{
		net:  net,
		mesh: mesh,
		spec: spec,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

func (p *pastryProto) Name() string         { return "pastry" }
func (p *pastryProto) Caps() Caps           { return pastryCaps }
func (p *pastryProto) Net() *netsim.Network { return p.net }

func (p *pastryProto) Build(addrs []netsim.Addr) ([]Handle, []int, error) {
	p.opMu.Lock()
	defer p.opMu.Unlock()
	if err := p.members.checkEmptyBuild(); err != nil {
		return nil, nil, err
	}
	if err := p.mesh.Build(pastry.RandomParts(p.spec, addrs, p.rng)); err != nil {
		return nil, nil, err
	}
	at := make(map[netsim.Addr]*pastry.Node, len(addrs))
	for _, n := range p.mesh.Nodes() {
		at[n.Addr()] = n
	}
	handles := make([]Handle, len(addrs))
	for i, a := range addrs {
		handles[i] = pastryHandle{at[a]}
		p.members.add(handles[i])
	}
	return handles, make([]int, len(addrs)), nil
}

func (p *pastryProto) Join(addr netsim.Addr) (Handle, *netsim.Cost, error) {
	return nil, &netsim.Cost{}, unsupported("pastry", "Join")
}

func (p *pastryProto) Leave(h Handle) (*netsim.Cost, error) {
	return &netsim.Cost{}, unsupported("pastry", "Leave")
}

func (p *pastryProto) Fail(h Handle) error { return unsupported("pastry", "Fail") }

func (p *pastryProto) key(name string) ids.ID { return p.spec.Hash(name) }

func (p *pastryProto) Publish(h Handle, key string) (*netsim.Cost, error) {
	cost := &netsim.Cost{}
	ph, ok := h.(pastryHandle)
	if !ok {
		return cost, errors.New("overlay: foreign handle")
	}
	return cost, ph.n.Publish(p.key(key), cost)
}

func (p *pastryProto) Unpublish(h Handle, key string) (*netsim.Cost, error) {
	return &netsim.Cost{}, unsupported("pastry", "Unpublish")
}

func (p *pastryProto) Locate(h Handle, key string) (Result, *netsim.Cost) {
	cost := &netsim.Cost{}
	ph, ok := h.(pastryHandle)
	if !ok {
		return Result{}, cost
	}
	res := ph.n.Locate(p.key(key), cost)
	if !res.Found {
		return Result{}, cost
	}
	return Result{Found: true, Server: res.Server,
		ServerID: p.members.labelAt(res.Server), Hops: res.Hops}, cost
}

func (p *pastryProto) Maintain() (*netsim.Cost, error) {
	return &netsim.Cost{}, unsupported("pastry", "Maintain")
}

func (p *pastryProto) TableSize(h Handle) int {
	ph, ok := h.(pastryHandle)
	if !ok {
		return 0
	}
	return ph.n.TableSize()
}

func (p *pastryProto) Stats() Stats {
	live := p.members.snapshot()
	s := Stats{Nodes: len(live), TotalMessages: p.net.TotalMessages()}
	entries := 0
	for _, h := range live {
		entries += h.(pastryHandle).n.TableSize()
	}
	if len(live) > 0 {
		s.MeanTableEntries = float64(entries) / float64(len(live))
	}
	return s
}
