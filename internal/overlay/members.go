package overlay

import (
	"errors"
	"sync"

	"tapestry/internal/netsim"
)

// members is the shared live-member bookkeeping every adapter embeds: an
// insertion-ordered list (so Handles() is deterministic for identically
// seeded runs) plus an address index, both guarded by mu so Handles()/
// Stats() readers are safe against concurrent membership churn. opMu is the
// adapters' membership-operation lock: Join/Build consume the adapter's RNG
// and must not interleave, matching the serialization the facade's old
// AddNode lock provided. Adapters whose departures mutate shared protocol
// state a concurrent join walks through (Tapestry: a Leave/Fail can kill the
// surrogate an in-flight multicast is traversing) serialize Leave/Fail on the
// same lock.
type members struct {
	opMu sync.Mutex

	mu     sync.RWMutex
	list   []Handle
	byAddr map[netsim.Addr]Handle
}

// checkEmptyBuild enforces the Build-exactly-once contract.
func (m *members) checkEmptyBuild() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.list) != 0 {
		return errors.New("overlay: Build called on a populated protocol")
	}
	return nil
}

func (m *members) add(h Handle) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.byAddr == nil {
		m.byAddr = make(map[netsim.Addr]Handle)
	}
	m.list = append(m.list, h)
	m.byAddr[h.Addr()] = h
}

func (m *members) remove(h Handle) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.byAddr, h.Addr())
	for i, x := range m.list {
		if x.Addr() == h.Addr() {
			m.list = append(m.list[:i], m.list[i+1:]...)
			return
		}
	}
}

// at returns the live member at an address, or nil.
func (m *members) at(a netsim.Addr) Handle {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.byAddr[a]
}

// labelAt renders the identifier of the live member at an address ("" when
// none) — used to fill Result.ServerID.
func (m *members) labelAt(a netsim.Addr) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if h := m.byAddr[a]; h != nil {
		return h.Label()
	}
	return ""
}

// count returns the live-member count.
func (m *members) count() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.list)
}

// snapshot returns a copy of the live members in insertion order.
func (m *members) snapshot() []Handle {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]Handle(nil), m.list...)
}

// Handles returns the current live members in insertion order.
func (m *members) Handles() []Handle { return m.snapshot() }
