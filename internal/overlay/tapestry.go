package overlay

import (
	"errors"
	"math/rand"

	"tapestry/internal/core"
	"tapestry/internal/ids"
	"tapestry/internal/netsim"
)

const tapestryCaps = CapJoin | CapLeave | CapFail | CapUnpublish |
	CapMaintain | CapLocality | CapCache | CapReplication

// tapestry adapts core.Mesh — the paper's own protocol — to the unified
// interface.
type tapestry struct {
	members
	net  *netsim.Network
	cfg  core.Config
	mesh *core.Mesh
	rng  *rand.Rand // member IDs and gateway choice
	stat bool       // Build uses the oracle static construction
}

// tapHandle wraps one core node.
type tapHandle struct{ n *core.Node }

func (h tapHandle) Addr() netsim.Addr { return h.n.Addr() }
func (h tapHandle) Label() string     { return h.n.ID().String() }

// CoreMesh exposes the Tapestry adapter's underlying mesh so the facade can
// offer the Tapestry-only extended surface (multicast, locality queries,
// consistency audits). It reports false for every other protocol.
func CoreMesh(p Protocol) (*core.Mesh, bool) {
	t, ok := p.(*tapestry)
	if !ok {
		return nil, false
	}
	return t.mesh, true
}

// CoreNode exposes the core node behind a Tapestry handle.
func CoreNode(h Handle) (*core.Node, bool) {
	t, ok := h.(tapHandle)
	if !ok {
		return nil, false
	}
	return t.n, true
}

func newTapestry(net *netsim.Network, cfg Config) (Protocol, error) {
	cc := core.DefaultConfig()
	if cfg.Core != nil {
		cc = *cfg.Core
	} else {
		cc.Spec = cfg.spec()
		cc.Seed = cfg.Seed
	}
	mesh, err := core.NewMesh(net, cc)
	if err != nil {
		return nil, err
	}
	// Normalize the availability knobs the mesh defaulted internally, so
	// Stats reports the effective values even for a zero-valued cfg.Core.
	if cc.RootSetSize < 1 {
		cc.RootSetSize = 1
	}
	if cc.Replicas < 1 {
		cc.Replicas = 1
	}
	return &tapestry{
		net:  net,
		cfg:  cc,
		mesh: mesh,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		stat: cfg.Static,
	}, nil
}

func (t *tapestry) Name() string         { return "tapestry" }
func (t *tapestry) Caps() Caps           { return tapestryCaps }
func (t *tapestry) Net() *netsim.Network { return t.net }

func (t *tapestry) Build(addrs []netsim.Addr) ([]Handle, []int, error) {
	t.opMu.Lock()
	defer t.opMu.Unlock()
	if err := t.members.checkEmptyBuild(); err != nil {
		return nil, nil, err
	}
	if t.stat {
		parts := core.StaticParticipants(t.cfg.Spec, addrs, t.rng)
		m, err := core.BuildStaticWith(t.net, t.cfg, parts, t.cfg.BuildWorkers)
		if err != nil {
			return nil, nil, err
		}
		t.mesh = m
		handles := make([]Handle, len(addrs))
		for i, a := range addrs {
			handles[i] = tapHandle{m.NodeAt(a)}
			t.members.add(handles[i])
		}
		return handles, make([]int, len(addrs)), nil
	}
	nodes, costs, err := t.mesh.GrowSequential(addrs, t.rng)
	if err != nil {
		return nil, nil, err
	}
	handles := make([]Handle, len(nodes))
	for i, n := range nodes {
		handles[i] = tapHandle{n}
		t.members.add(handles[i])
	}
	return handles, costs, nil
}

func (t *tapestry) Join(addr netsim.Addr) (Handle, *netsim.Cost, error) {
	t.opMu.Lock()
	defer t.opMu.Unlock()
	cost := &netsim.Cost{}
	id := t.mesh.Spec().Random(t.rng)
	for t.mesh.NodeByID(id) != nil {
		id = t.mesh.Spec().Random(t.rng)
	}
	var n *core.Node
	var err error
	if nodes := t.mesh.Nodes(); len(nodes) == 0 {
		n, err = t.mesh.Bootstrap(id, addr)
	} else {
		gateway := nodes[t.rng.Intn(len(nodes))]
		n, cost, err = t.mesh.Join(gateway, id, addr)
	}
	if err != nil {
		return nil, cost, err
	}
	h := tapHandle{n}
	t.members.add(h)
	return h, cost, nil
}

func (t *tapestry) Leave(h Handle) (*netsim.Cost, error) {
	// Serialized with Join/Build: an unserialized departure can kill the
	// surrogate an in-flight join is multicasting through, failing the join.
	t.opMu.Lock()
	defer t.opMu.Unlock()
	cost := &netsim.Cost{}
	n, ok := CoreNode(h)
	if !ok {
		return cost, errors.New("overlay: foreign handle")
	}
	if err := n.Leave(cost); err != nil {
		return cost, err
	}
	t.members.remove(h)
	return cost, nil
}

func (t *tapestry) Fail(h Handle) error {
	t.opMu.Lock()
	defer t.opMu.Unlock()
	n, ok := CoreNode(h)
	if !ok {
		return errors.New("overlay: foreign handle")
	}
	t.mesh.Fail(n)
	t.members.remove(h)
	return nil
}

func (t *tapestry) guid(key string) ids.ID { return t.mesh.Spec().Hash(key) }

func (t *tapestry) Publish(h Handle, key string) (*netsim.Cost, error) {
	cost := &netsim.Cost{}
	n, ok := CoreNode(h)
	if !ok {
		return cost, errors.New("overlay: foreign handle")
	}
	if t.cfg.Replicas > 1 {
		_, err := n.PublishReplicated(t.guid(key), cost)
		return cost, err
	}
	return cost, n.Publish(t.guid(key), cost)
}

func (t *tapestry) Unpublish(h Handle, key string) (*netsim.Cost, error) {
	cost := &netsim.Cost{}
	n, ok := CoreNode(h)
	if !ok {
		return cost, errors.New("overlay: foreign handle")
	}
	n.Unpublish(t.guid(key), cost)
	return cost, nil
}

func (t *tapestry) Locate(h Handle, key string) (Result, *netsim.Cost) {
	cost := &netsim.Cost{}
	n, ok := CoreNode(h)
	if !ok {
		return Result{}, cost
	}
	res := n.Locate(t.guid(key), cost)
	if !res.Found {
		return Result{}, cost
	}
	return Result{Found: true, Server: res.ServerAddr, ServerID: res.Server.String(),
		Hops: res.Hops, FromCache: res.FromCache}, cost
}

// Maintain runs the heartbeat sweep (dead-link repair) followed by one
// soft-state epoch (pointer expiry + republish) — the stabilization pass
// the churn experiments run between epochs. Both halves are batched: the
// sweep probes each distinct neighbor once mesh-wide, and the republish
// groups records per next hop (core/maintain.go).
func (t *tapestry) Maintain() (*netsim.Cost, error) {
	cost := &netsim.Cost{}
	t.mesh.SweepDeadAll(cost)
	t.mesh.RunMaintenanceEpoch(cost)
	return cost, nil
}

func (t *tapestry) TableSize(h Handle) int {
	n, ok := CoreNode(h)
	if !ok {
		return 0
	}
	return n.NeighborCount()
}

func (t *tapestry) Stats() Stats {
	nodes := t.mesh.Nodes()
	s := Stats{Nodes: len(nodes), TotalMessages: t.net.TotalMessages()}
	links := 0
	for _, n := range nodes {
		links += n.NeighborCount()
		s.TotalPointers += n.PointerCount()
		s.CachedMappings += n.CacheSize()
	}
	if len(nodes) > 0 {
		s.MeanTableEntries = float64(links) / float64(len(nodes))
	}
	s.CacheHits, s.CacheMisses = t.mesh.LocateCacheStats()
	s.Roots, s.Replicas = t.cfg.RootSetSize, t.cfg.Replicas
	return s
}
