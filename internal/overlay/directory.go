package overlay

import (
	"errors"
	"fmt"

	"tapestry/internal/directory"
	"tapestry/internal/netsim"
)

// directoryCaps: clients come and go freely (a join is one attach, a
// graceful leave deregisters its replicas), crashed clients leave stale
// registrations behind (queries that pick the dead replica fail — the
// strawman has no repair), and Unpublish is one withdraw round trip. There
// is no maintenance: the table is hard state on the single server.
const directoryCaps = CapJoin | CapLeave | CapFail | CapUnpublish

// dirProto adapts the centralized-directory strawman: members are clients,
// the server sits at the first address the Build population leaves free.
type dirProto struct {
	members
	net *netsim.Network
	d   *directory.Directory
}

type dirHandle struct{ addr netsim.Addr }

func (h dirHandle) Addr() netsim.Addr { return h.addr }
func (h dirHandle) Label() string     { return fmt.Sprintf("client@%d", h.addr) }

func newDirectory(net *netsim.Network, cfg Config) (Protocol, error) {
	return &dirProto{net: net}, nil
}

func (p *dirProto) Name() string         { return "directory" }
func (p *dirProto) Caps() Caps           { return directoryCaps }
func (p *dirProto) Net() *netsim.Network { return p.net }

// Server returns the central server's address.
func (p *dirProto) Server() netsim.Addr { return p.d.Server() }

// DirectoryServer exposes the central server address of a directory-backed
// protocol (false for every other protocol) — experiments fold the server's
// load in explicitly, since it is not a client.
func DirectoryServer(pr Protocol) (netsim.Addr, bool) {
	d, ok := pr.(*dirProto)
	if !ok || d.d == nil {
		return 0, false
	}
	return d.Server(), true
}

func (p *dirProto) Build(addrs []netsim.Addr) ([]Handle, []int, error) {
	p.opMu.Lock()
	defer p.opMu.Unlock()
	if err := p.members.checkEmptyBuild(); err != nil {
		return nil, nil, err
	}
	used := make(map[netsim.Addr]bool, len(addrs))
	for _, a := range addrs {
		used[a] = true
	}
	server := netsim.Addr(-1)
	for a := 0; a < p.net.Size(); a++ {
		if !used[netsim.Addr(a)] {
			server = netsim.Addr(a)
			break
		}
	}
	if server < 0 {
		return nil, nil, errors.New("overlay: no free address for the directory server")
	}
	p.d = directory.New(p.net, server)
	handles := make([]Handle, len(addrs))
	for i, a := range addrs {
		p.net.Attach(a)
		handles[i] = dirHandle{a}
		p.members.add(handles[i])
	}
	return handles, make([]int, len(addrs)), nil
}

func (p *dirProto) Join(addr netsim.Addr) (Handle, *netsim.Cost, error) {
	p.opMu.Lock()
	defer p.opMu.Unlock()
	cost := &netsim.Cost{}
	if p.d == nil {
		return nil, cost, errors.New("overlay: directory joins require a prior Build")
	}
	if p.members.at(addr) != nil || addr == p.d.Server() {
		return nil, cost, fmt.Errorf("overlay: directory address %d taken", addr)
	}
	p.net.Attach(addr)
	h := dirHandle{addr}
	p.members.add(h)
	return h, cost, nil
}

func (p *dirProto) Leave(h Handle) (*netsim.Cost, error) {
	cost := &netsim.Cost{}
	if err := p.d.Deregister(h.Addr(), cost); err != nil {
		return cost, err
	}
	p.net.Detach(h.Addr())
	p.members.remove(h)
	return cost, nil
}

// Fail kills a client without notice: its registrations stay in the table,
// so queries that pick the dead replica fail until another replica exists.
func (p *dirProto) Fail(h Handle) error {
	p.net.Detach(h.Addr())
	p.members.remove(h)
	return nil
}

func (p *dirProto) Publish(h Handle, key string) (*netsim.Cost, error) {
	cost := &netsim.Cost{}
	return cost, p.d.Publish(key, h.Addr(), cost)
}

func (p *dirProto) Unpublish(h Handle, key string) (*netsim.Cost, error) {
	cost := &netsim.Cost{}
	return cost, p.d.Withdraw(key, h.Addr(), cost)
}

func (p *dirProto) Locate(h Handle, key string) (Result, *netsim.Cost) {
	cost := &netsim.Cost{}
	res := p.d.Locate(h.Addr(), key, cost)
	if !res.Found {
		return Result{}, cost
	}
	return Result{Found: true, Server: res.Server,
		ServerID: p.members.labelAt(res.Server), Hops: res.Hops}, cost
}

func (p *dirProto) Maintain() (*netsim.Cost, error) {
	return &netsim.Cost{}, unsupported("directory", "Maintain")
}

// TableSize is zero for clients: the directory concentrates all routing
// state on the single server.
func (p *dirProto) TableSize(h Handle) int { return 0 }

func (p *dirProto) Stats() Stats {
	return Stats{Nodes: p.members.count(), TotalMessages: p.net.TotalMessages()}
}
