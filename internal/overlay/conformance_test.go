package overlay

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
)

// The conformance suite drives every registered protocol through the same
// lifecycle — build → publish → locate → churn (caps-gated) → maintain →
// locate — and pins the adapter contract:
//
//   - universal operations work and charge non-zero cost from remote clients;
//   - operations outside Caps() return a typed refusal matching
//     ErrUnsupported (and never panic);
//   - two identically-seeded runs produce identical results and identical
//     cost accounting, operation by operation.

const (
	confNodes   = 48
	confObjects = 8
	confSeed    = int64(42)
)

var confSpec = ids.Spec{Base: 16, Digits: 8}

// confTrace is the op-by-op record two identically-seeded runs must agree on.
type confTrace struct {
	lines []string
}

func (tr *confTrace) addf(format string, args ...interface{}) {
	tr.lines = append(tr.lines, fmt.Sprintf(format, args...))
}

func costLine(c *netsim.Cost) string {
	m, h, d := c.Snapshot()
	return fmt.Sprintf("msgs=%d hops=%d dist=%.6f", m, h, d)
}

// runConformance drives one protocol instance through the lifecycle and
// returns the trace plus aggregate checks via t.
func runConformance(t *testing.T, b Builder, seed int64) *confTrace {
	t.Helper()
	tr := &confTrace{}
	space := metric.NewRing(8 * confNodes)
	net := netsim.New(space)
	p, err := b.New(net, Config{Spec: confSpec, Seed: seed})
	if err != nil {
		t.Fatalf("%s: New: %v", b.Name, err)
	}
	if p.Name() != b.Name {
		t.Fatalf("instance name %q != registry name %q", p.Name(), b.Name)
	}
	if p.Caps() != b.Caps {
		t.Fatalf("%s: instance caps %v != registry caps %v", b.Name, p.Caps(), b.Caps)
	}

	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, confNodes)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	reserve := make([]netsim.Addr, 4)
	for i := range reserve {
		reserve[i] = netsim.Addr(perm[confNodes+i])
	}

	handles, buildMsgs, err := p.Build(addrs)
	if err != nil {
		t.Fatalf("%s: Build: %v", b.Name, err)
	}
	if len(handles) != confNodes || len(buildMsgs) != confNodes {
		t.Fatalf("%s: Build returned %d handles, %d costs", b.Name, len(handles), len(buildMsgs))
	}
	for i, h := range handles {
		if h.Addr() != addrs[i] {
			t.Fatalf("%s: handle %d at %d, want %d (address-order contract)", b.Name, i, h.Addr(), addrs[i])
		}
	}
	if _, _, err := p.Build(addrs); err == nil {
		t.Fatalf("%s: second Build accepted", b.Name)
	}
	if got := len(p.Handles()); got != confNodes {
		t.Fatalf("%s: Handles() = %d members, want %d", b.Name, got, confNodes)
	}
	tr.addf("build msgs=%v", buildMsgs)

	// Publish one object per server from the first confObjects members.
	for i := 0; i < confObjects; i++ {
		key := fmt.Sprintf("conf-%d", i)
		c, err := p.Publish(handles[i], key)
		if err != nil {
			t.Fatalf("%s: Publish %s: %v", b.Name, key, err)
		}
		tr.addf("publish %s %s", key, costLine(c))
	}

	// Locate every object from a fixed remote client; cost must be charged.
	client := handles[confNodes-1]
	totalMsgs := 0
	for i := 0; i < confObjects; i++ {
		key := fmt.Sprintf("conf-%d", i)
		res, c := p.Locate(client, key)
		if !res.Found {
			t.Fatalf("%s: object %s not found pre-churn", b.Name, key)
		}
		if res.Hops <= 0 {
			t.Errorf("%s: locate %s reported %d hops", b.Name, key, res.Hops)
		}
		m, _, _ := c.Snapshot()
		totalMsgs += m
		tr.addf("locate %s found=%v server=%d id=%q hops=%d %s",
			key, res.Found, res.Server, res.ServerID, res.Hops, costLine(c))
	}
	if totalMsgs == 0 {
		t.Errorf("%s: locate phase charged zero messages from a remote client", b.Name)
	}

	// Missing objects are a miss, not an error or panic.
	if res, _ := p.Locate(client, "conf-missing"); res.Found {
		t.Errorf("%s: found an object never published", b.Name)
	}

	// Churn, capability-gated. Unsupported operations must refuse with
	// ErrUnsupported; supported ones must succeed and be traced.
	caps := p.Caps()
	if caps.Has(CapJoin) {
		for i, a := range reserve {
			h, c, err := p.Join(a)
			if err != nil {
				t.Fatalf("%s: Join %d: %v", b.Name, a, err)
			}
			if h.Addr() != a {
				t.Fatalf("%s: joined handle at %d, want %d", b.Name, h.Addr(), a)
			}
			tr.addf("join %d %s", i, costLine(c))
		}
	} else {
		if _, _, err := p.Join(reserve[0]); !errors.Is(err, ErrUnsupported) {
			t.Errorf("%s: Join without CapJoin returned %v, want ErrUnsupported", b.Name, err)
		}
	}
	// Victims are non-servers (object availability must survive the churn).
	victims := p.Handles()[confObjects : confObjects+4]
	if caps.Has(CapLeave) {
		for i := 0; i < 2; i++ {
			c, err := p.Leave(victims[i])
			if err != nil {
				t.Fatalf("%s: Leave: %v", b.Name, err)
			}
			tr.addf("leave %d %s", i, costLine(c))
		}
	} else {
		if _, err := p.Leave(victims[0]); !errors.Is(err, ErrUnsupported) {
			t.Errorf("%s: Leave without CapLeave returned %v, want ErrUnsupported", b.Name, err)
		}
	}
	if caps.Has(CapFail) {
		for i := 2; i < 4; i++ {
			if err := p.Fail(victims[i]); err != nil {
				t.Fatalf("%s: Fail: %v", b.Name, err)
			}
			tr.addf("fail %d", i)
		}
	} else {
		if err := p.Fail(victims[3]); !errors.Is(err, ErrUnsupported) {
			t.Errorf("%s: Fail without CapFail returned %v, want ErrUnsupported", b.Name, err)
		}
	}
	if caps.Has(CapMaintain) {
		c, err := p.Maintain()
		if err != nil {
			t.Fatalf("%s: Maintain: %v", b.Name, err)
		}
		tr.addf("maintain %s", costLine(c))
	} else {
		if _, err := p.Maintain(); !errors.Is(err, ErrUnsupported) {
			t.Errorf("%s: Maintain without CapMaintain returned %v, want ErrUnsupported", b.Name, err)
		}
	}

	// Membership bookkeeping must reflect exactly the applied churn.
	want := confNodes
	if caps.Has(CapJoin) {
		want += len(reserve)
	}
	if caps.Has(CapLeave) {
		want -= 2
	}
	if caps.Has(CapFail) {
		want -= 2
	}
	if got := len(p.Handles()); got != want {
		t.Fatalf("%s: %d members after churn, want %d", b.Name, got, want)
	}

	// Post-churn availability: every object's server is still alive, so
	// locates must still succeed (after maintenance where supported).
	for i := 0; i < confObjects; i++ {
		key := fmt.Sprintf("conf-%d", i)
		res, c := p.Locate(client, key)
		if !res.Found {
			t.Fatalf("%s: object %s lost after caps-gated churn", b.Name, key)
		}
		tr.addf("relocate %s hops=%d %s", key, res.Hops, costLine(c))
	}

	// Unpublish, capability-gated: a withdrawn object must vanish.
	if caps.Has(CapUnpublish) {
		c, err := p.Unpublish(handles[0], "conf-0")
		if err != nil {
			t.Fatalf("%s: Unpublish: %v", b.Name, err)
		}
		tr.addf("unpublish %s", costLine(c))
		if res, _ := p.Locate(client, "conf-0"); res.Found {
			t.Errorf("%s: object found after Unpublish", b.Name)
		}
	} else {
		if _, err := p.Unpublish(handles[0], "conf-0"); !errors.Is(err, ErrUnsupported) {
			t.Errorf("%s: Unpublish without CapUnpublish returned %v, want ErrUnsupported", b.Name, err)
		}
	}

	// TableSize and Stats must be sane.
	if b.Name != "directory" { // directory clients legitimately hold no state
		if p.TableSize(p.Handles()[0]) <= 0 {
			t.Errorf("%s: TableSize = %d", b.Name, p.TableSize(p.Handles()[0]))
		}
	}
	st := p.Stats()
	if st.Nodes != want || st.TotalMessages <= 0 {
		t.Errorf("%s: stats %+v", b.Name, st)
	}
	tr.addf("stats nodes=%d", st.Nodes)
	return tr
}

func TestConformanceAllProtocols(t *testing.T) {
	for _, b := range Builders() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			first := runConformance(t, b, confSeed)
			second := runConformance(t, b, confSeed)
			if len(first.lines) != len(second.lines) {
				t.Fatalf("twin runs traced %d vs %d operations", len(first.lines), len(second.lines))
			}
			for i := range first.lines {
				if first.lines[i] != second.lines[i] {
					t.Fatalf("twin runs diverge at op %d:\n  run1: %s\n  run2: %s",
						i, first.lines[i], second.lines[i])
				}
			}
		})
	}
}

// TestLookup pins the registry: five protocols, presentation order, and a
// helpful error for unknown names.
func TestLookup(t *testing.T) {
	wantOrder := []string{"tapestry", "chord", "pastry", "can", "directory"}
	bs := Builders()
	if len(bs) != len(wantOrder) {
		t.Fatalf("%d builders registered, want %d", len(bs), len(wantOrder))
	}
	for i, b := range bs {
		if b.Name != wantOrder[i] {
			t.Errorf("builder %d = %q, want %q", i, b.Name, wantOrder[i])
		}
		got, err := Lookup(b.Name)
		if err != nil || got.Name != b.Name {
			t.Errorf("Lookup(%q) = %v, %v", b.Name, got.Name, err)
		}
	}
	if _, err := Lookup("gnutella"); err == nil {
		t.Error("Lookup of unknown protocol succeeded")
	}
}

// TestCapsString pins the capability-matrix rendering.
func TestCapsString(t *testing.T) {
	if got := Caps(0).String(); got != "static" {
		t.Errorf("empty caps = %q", got)
	}
	if got := (CapJoin | CapFail).String(); got != "join,fail" {
		t.Errorf("join|fail = %q", got)
	}
	if got := tapestryCaps.String(); got != "join,leave,fail,unpublish,maintain,locality,cache,replication" {
		t.Errorf("tapestry caps = %q", got)
	}
}

// TestOpErrorShape pins the typed-refusal contract satellite: the concrete
// error names protocol and operation and matches the sentinel.
func TestOpErrorShape(t *testing.T) {
	err := unsupported("can", "Leave")
	if !errors.Is(err, ErrUnsupported) {
		t.Fatal("OpError does not match ErrUnsupported")
	}
	var op *OpError
	if !errors.As(err, &op) || op.Protocol != "can" || op.Op != "Leave" {
		t.Fatalf("OpError fields: %+v", op)
	}
	if err.Error() != "overlay: can does not support Leave" {
		t.Fatalf("message: %q", err.Error())
	}
}
