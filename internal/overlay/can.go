package overlay

import (
	"errors"
	"fmt"
	"math/rand"

	"tapestry/internal/can"
	"tapestry/internal/netsim"
)

// canCaps: CAN joins dynamically (zone split + handover) but the simplified
// one-zone-per-node model cannot express the zone-merge/takeover dance a
// graceful leave needs, and failures leave unroutable dead zones — both are
// honest Caps-declared refusals rather than panics or silent availability
// holes. No maintenance pass exists either (references at a zone owner are
// hard state).
const canCaps = CapJoin

// canProto adapts can.Mesh. Keys map to torus points via can's own
// SHA-256-based hashing (seed-independent).
type canProto struct {
	members
	net  *netsim.Network
	mesh *can.Mesh
	rng  *rand.Rand
}

type canHandle struct{ n *can.Node }

func (h canHandle) Addr() netsim.Addr { return h.n.Addr() }
func (h canHandle) Label() string     { return fmt.Sprintf("zone@%d", h.n.Addr()) }

func newCAN(net *netsim.Network, cfg Config) (Protocol, error) {
	dims := cfg.Dims
	if dims == 0 {
		dims = 2
	}
	mesh, err := can.NewMesh(net, dims)
	if err != nil {
		return nil, err
	}
	return &canProto{
		net:  net,
		mesh: mesh,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

func (c *canProto) Name() string         { return "can" }
func (c *canProto) Caps() Caps           { return canCaps }
func (c *canProto) Net() *netsim.Network { return c.net }

func (c *canProto) Build(addrs []netsim.Addr) ([]Handle, []int, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	if err := c.members.checkEmptyBuild(); err != nil {
		return nil, nil, err
	}
	nodes, costs, err := c.mesh.Grow(addrs, c.rng)
	if err != nil {
		return nil, nil, err
	}
	handles := make([]Handle, len(nodes))
	for i, n := range nodes {
		handles[i] = canHandle{n}
		c.members.add(handles[i])
	}
	return handles, costs, nil
}

func (c *canProto) Join(addr netsim.Addr) (Handle, *netsim.Cost, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	cost := &netsim.Cost{}
	live := c.members.snapshot()
	if len(live) == 0 {
		n, err := c.mesh.Bootstrap(addr)
		if err != nil {
			return nil, cost, err
		}
		h := canHandle{n}
		c.members.add(h)
		return h, cost, nil
	}
	gateway := live[c.rng.Intn(len(live))].(canHandle).n
	n, cost, err := c.mesh.Join(gateway, addr, c.rng)
	if err != nil {
		return nil, cost, err
	}
	h := canHandle{n}
	c.members.add(h)
	return h, cost, nil
}

func (c *canProto) Leave(h Handle) (*netsim.Cost, error) {
	return &netsim.Cost{}, unsupported("can", "Leave")
}

func (c *canProto) Fail(h Handle) error { return unsupported("can", "Fail") }

func (c *canProto) Publish(h Handle, key string) (*netsim.Cost, error) {
	cost := &netsim.Cost{}
	ch, ok := h.(canHandle)
	if !ok {
		return cost, errors.New("overlay: foreign handle")
	}
	return cost, ch.n.Publish(key, cost)
}

func (c *canProto) Unpublish(h Handle, key string) (*netsim.Cost, error) {
	return &netsim.Cost{}, unsupported("can", "Unpublish")
}

func (c *canProto) Locate(h Handle, key string) (Result, *netsim.Cost) {
	cost := &netsim.Cost{}
	ch, ok := h.(canHandle)
	if !ok {
		return Result{}, cost
	}
	res := ch.n.Locate(key, cost)
	if !res.Found {
		return Result{}, cost
	}
	return Result{Found: true, Server: res.Server,
		ServerID: c.members.labelAt(res.Server), Hops: res.Hops}, cost
}

func (c *canProto) Maintain() (*netsim.Cost, error) {
	return &netsim.Cost{}, unsupported("can", "Maintain")
}

func (c *canProto) TableSize(h Handle) int {
	ch, ok := h.(canHandle)
	if !ok {
		return 0
	}
	return ch.n.NeighborCount()
}

func (c *canProto) Stats() Stats {
	live := c.members.snapshot()
	s := Stats{Nodes: len(live), TotalMessages: c.net.TotalMessages()}
	entries := 0
	for _, h := range live {
		entries += h.(canHandle).n.NeighborCount()
	}
	if len(live) > 0 {
		s.MeanTableEntries = float64(entries) / float64(len(live))
	}
	return s
}
