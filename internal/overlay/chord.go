package overlay

import (
	"errors"
	"fmt"
	"math/rand"

	"tapestry/internal/chord"
	"tapestry/internal/netsim"
)

const chordCaps = CapJoin | CapLeave | CapFail | CapMaintain

// chordProto adapts chord.Ring. Keys hash onto the 64-bit ring with the
// instance seed, so identically-seeded instances agree on object placement.
// Chord has no soft-state republish: references stored at crashed owners are
// lost until their publishers re-publish — Maintain only re-forms the ring
// (successor lists, predecessors, fingers) among survivors.
type chordProto struct {
	members
	net  *netsim.Network
	ring *chord.Ring
	rng  *rand.Rand
	seed int64
}

type chordHandle struct{ n *chord.Node }

func (h chordHandle) Addr() netsim.Addr { return h.n.Self().Addr }
func (h chordHandle) Label() string     { return fmt.Sprintf("%016x", h.n.Self().ID) }

func newChord(net *netsim.Network, cfg Config) (Protocol, error) {
	return &chordProto{
		net:  net,
		ring: chord.NewRing(net, cfg.Seed),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		seed: cfg.Seed,
	}, nil
}

func (c *chordProto) Name() string         { return "chord" }
func (c *chordProto) Caps() Caps           { return chordCaps }
func (c *chordProto) Net() *netsim.Network { return c.net }

func (c *chordProto) Build(addrs []netsim.Addr) ([]Handle, []int, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	if err := c.members.checkEmptyBuild(); err != nil {
		return nil, nil, err
	}
	nodes, costs, err := c.ring.Grow(addrs, c.rng)
	if err != nil {
		return nil, nil, err
	}
	c.ring.Stabilize(nil)
	handles := make([]Handle, len(nodes))
	for i, n := range nodes {
		handles[i] = chordHandle{n}
		c.members.add(handles[i])
	}
	return handles, costs, nil
}

func (c *chordProto) Join(addr netsim.Addr) (Handle, *netsim.Cost, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	cost := &netsim.Cost{}
	live := c.members.snapshot()
	if len(live) == 0 {
		n, err := c.ring.Bootstrap(chord.RandomID(c.rng), addr)
		if err != nil {
			return nil, cost, err
		}
		h := chordHandle{n}
		c.members.add(h)
		return h, cost, nil
	}
	gateway := live[c.rng.Intn(len(live))].(chordHandle).n
	n, cost, err := c.ring.Join(gateway, chord.RandomID(c.rng), addr)
	if err != nil {
		return nil, cost, err
	}
	h := chordHandle{n}
	c.members.add(h)
	return h, cost, nil
}

func (c *chordProto) Leave(h Handle) (*netsim.Cost, error) {
	cost := &netsim.Cost{}
	ch, ok := h.(chordHandle)
	if !ok {
		return cost, errors.New("overlay: foreign handle")
	}
	if err := ch.n.Leave(cost); err != nil {
		return cost, err
	}
	c.members.remove(h)
	return cost, nil
}

func (c *chordProto) Fail(h Handle) error {
	ch, ok := h.(chordHandle)
	if !ok {
		return errors.New("overlay: foreign handle")
	}
	c.ring.Fail(ch.n)
	c.members.remove(h)
	return nil
}

func (c *chordProto) key(name string) uint64 { return chord.HashKey(name, c.seed) }

func (c *chordProto) Publish(h Handle, key string) (*netsim.Cost, error) {
	cost := &netsim.Cost{}
	ch, ok := h.(chordHandle)
	if !ok {
		return cost, errors.New("overlay: foreign handle")
	}
	return cost, ch.n.Publish(c.key(key), cost)
}

func (c *chordProto) Unpublish(h Handle, key string) (*netsim.Cost, error) {
	return &netsim.Cost{}, unsupported("chord", "Unpublish")
}

func (c *chordProto) Locate(h Handle, key string) (Result, *netsim.Cost) {
	cost := &netsim.Cost{}
	ch, ok := h.(chordHandle)
	if !ok {
		return Result{}, cost
	}
	res := ch.n.Locate(c.key(key), cost)
	if !res.Found {
		return Result{}, cost
	}
	return Result{Found: true, Server: res.Server,
		ServerID: c.members.labelAt(res.Server), Hops: res.Hops}, cost
}

// Maintain re-forms the ring among survivors (the fixed point of Chord's
// iterative stabilization) and refreshes fingers.
func (c *chordProto) Maintain() (*netsim.Cost, error) {
	cost := &netsim.Cost{}
	c.ring.Repair(cost)
	return cost, nil
}

func (c *chordProto) TableSize(h Handle) int {
	ch, ok := h.(chordHandle)
	if !ok {
		return 0
	}
	return ch.n.FingerCount()
}

func (c *chordProto) Stats() Stats {
	live := c.members.snapshot()
	s := Stats{Nodes: len(live), TotalMessages: c.net.TotalMessages()}
	entries := 0
	for _, h := range live {
		entries += h.(chordHandle).n.FingerCount()
	}
	if len(live) > 0 {
		s.MeanTableEntries = float64(entries) / float64(len(live))
	}
	return s
}
