// Package overlay defines the unified protocol interface the repository's
// five object-location systems — Tapestry (internal/core), Chord, Pastry,
// CAN and the centralized directory — are driven through. The paper's
// central claim is comparative (a DOLR with routing locality beats DHT-style
// and centralized location on stretch and load), so the baselines must be
// first-class: every experiment workload (static Table-1 sweeps, Poisson
// churn epochs, Zipf query storms) and the public facade run against any
// protocol through this one seam.
//
// The vocabulary is deliberately small: a Protocol is built over a
// netsim.Network, members are opaque Handles, every operation returns exact
// *netsim.Cost accounting, and a Caps bitmask lets a protocol honestly
// decline operations it has no sensible implementation of (CAN has no
// graceful leave, Pastry's proximity tables are built from global knowledge
// and cannot absorb dynamic joins, the directory has no soft-state epoch).
// Declined operations return a typed error matching ErrUnsupported — never
// a panic and never a silent no-op.
package overlay

import (
	"errors"
	"fmt"

	"tapestry/internal/core"
	"tapestry/internal/ids"
	"tapestry/internal/netsim"
)

// Caps is the capability set of a protocol: which optional operations it
// genuinely implements. Build, Publish and Locate are universal and have no
// capability bit.
type Caps uint32

const (
	// CapJoin: dynamic single-node insertion after the initial Build.
	CapJoin Caps = 1 << iota
	// CapLeave: graceful voluntary departure that preserves availability.
	CapLeave
	// CapFail: involuntary failure the protocol can later repair around.
	CapFail
	// CapUnpublish: withdrawing a previously published replica.
	CapUnpublish
	// CapMaintain: a periodic stabilization / soft-state maintenance pass.
	CapMaintain
	// CapLocality: locality-aware placement and queries (stub-local branches).
	CapLocality
	// CapCache: locate-path result caching (the hot-object serving layer).
	CapCache
	// CapReplication: the availability tier — salted multi-root publication,
	// k-replica placement and locate-triggered read-repair.
	CapReplication
)

// Has reports whether every capability in x is present.
func (c Caps) Has(x Caps) bool { return c&x == x }

// String renders the set as a stable comma-separated list — the capability
// matrix rendering used by experiments and docs.
func (c Caps) String() string {
	names := []struct {
		bit  Caps
		name string
	}{
		{CapJoin, "join"}, {CapLeave, "leave"}, {CapFail, "fail"},
		{CapUnpublish, "unpublish"}, {CapMaintain, "maintain"},
		{CapLocality, "locality"}, {CapCache, "cache"},
		{CapReplication, "replication"},
	}
	out := ""
	for _, n := range names {
		if c.Has(n.bit) {
			if out != "" {
				out += ","
			}
			out += n.name
		}
	}
	if out == "" {
		return "static"
	}
	return out
}

// ErrUnsupported is the sentinel every capability refusal matches:
// errors.Is(err, ErrUnsupported) holds for any operation a protocol's Caps
// exclude. The concrete error is an *OpError naming the protocol and
// operation.
var ErrUnsupported = errors.New("operation not supported by this overlay protocol")

// OpError is the typed refusal returned for operations outside a protocol's
// capability set.
type OpError struct {
	Protocol string // protocol name, e.g. "can"
	Op       string // operation name, e.g. "Leave"
}

func (e *OpError) Error() string {
	return fmt.Sprintf("overlay: %s does not support %s", e.Protocol, e.Op)
}

// Is makes errors.Is(err, ErrUnsupported) true for every OpError.
func (e *OpError) Is(target error) bool { return target == ErrUnsupported }

// unsupported builds the canonical refusal.
func unsupported(protocol, op string) error { return &OpError{Protocol: protocol, Op: op} }

// Handle names one overlay member. Handles are issued by Build and Join and
// stay valid as identifiers after the member departs (operations on a
// departed member fail cleanly).
type Handle interface {
	// Addr is the member's location in the metric space.
	Addr() netsim.Addr
	// Label renders the member's protocol-specific identifier (a Tapestry
	// digit string, a Chord ring position, a CAN address, ...).
	Label() string
}

// Result reports one object location, protocol-independently.
type Result struct {
	Found     bool
	Server    netsim.Addr // the replica that would serve the object
	ServerID  string      // the replica holder's Label ("" if unknown)
	Hops      int         // application-level hops, incl. the final serve hop
	FromCache bool        // answered from a cached location mapping (CapCache)
}

// Stats is a protocol-wide snapshot. Fields a protocol has no notion of stay
// zero.
type Stats struct {
	Nodes            int
	TotalMessages    int64
	MeanTableEntries float64 // routing entries per member
	TotalPointers    int     // in-network object pointers (Tapestry)
	CachedMappings   int     // serving-layer cache entries (CapCache)
	CacheHits        int64
	CacheMisses      int64
	Roots            int // salted roots per object (CapReplication; 0 = no notion)
	Replicas         int // replica servers per publish (CapReplication; 0 = no notion)
}

// Protocol is the unified overlay interface. Implementations are built
// empty over a netsim.Network, populated once via Build, and then driven
// through the uniform operation vocabulary. Adapters serialize membership
// operations (Build/Join consume the adapter RNG under one lock) and guard
// their member bookkeeping, so concurrent Handles/Stats/membership calls
// are safe; whether object operations (Publish/Locate/...) may run
// concurrently is up to the underlying protocol (Tapestry's are
// concurrency-safe, the serial baselines are driven serially by the
// experiment harness).
//
// Determinism contract: given the same Config (including Seed), the same
// Build addresses and the same operation sequence, every operation returns
// identical results and identical cost accounting. The conformance suite
// pins this for every registered protocol.
type Protocol interface {
	// Name returns the registry name ("tapestry", "chord", ...).
	Name() string
	// Caps returns the capability set; operations outside it return a typed
	// refusal matching ErrUnsupported.
	Caps() Caps
	// Net returns the simulated network the overlay is attached to.
	Net() *netsim.Network

	// Build populates the empty overlay with members at the given addresses
	// and returns their handles in address order (handle i sits at addrs[i])
	// plus per-member construction message counts (zeros for protocols that
	// build statically from global knowledge). Build must be called exactly
	// once, before any other operation.
	Build(addrs []netsim.Addr) ([]Handle, []int, error)
	// Join dynamically inserts one member (CapJoin). On an empty overlay it
	// bootstraps instead of routing through a gateway.
	Join(addr netsim.Addr) (Handle, *netsim.Cost, error)
	// Leave removes the member gracefully (CapLeave).
	Leave(h Handle) (*netsim.Cost, error)
	// Fail kills the member without notice (CapFail).
	Fail(h Handle) error

	// Publish announces that member h stores a replica of the named object.
	Publish(h Handle, key string) (*netsim.Cost, error)
	// Unpublish withdraws h's replica of the named object (CapUnpublish).
	Unpublish(h Handle, key string) (*netsim.Cost, error)
	// Locate routes a query for the named object from h.
	Locate(h Handle, key string) (Result, *netsim.Cost)

	// Maintain runs one stabilization / soft-state maintenance pass
	// (CapMaintain): repair around failures, expire and republish soft
	// state.
	Maintain() (*netsim.Cost, error)

	// Handles returns the current live members in deterministic
	// (insertion) order.
	Handles() []Handle
	// TableSize reports h's routing-state size in entries (the Table 1
	// space measurement).
	TableSize(h Handle) int
	// Stats returns a protocol-wide snapshot.
	Stats() Stats
}

// Config parameterizes a Builder. Protocols ignore the knobs that do not
// concern them.
type Config struct {
	// Spec shapes the identifier space of the prefix-routing protocols
	// (Tapestry, Pastry). Zero means ids.DefaultSpec.
	Spec ids.Spec
	// Seed drives every randomized choice the adapter makes (member IDs,
	// gateway selection, CAN split points). Identical seeds replay exactly.
	Seed int64
	// Static selects Tapestry's oracle static construction in Build (fast,
	// no join costs) instead of the dynamic insertion protocol.
	Static bool
	// LeafSize is Pastry's leaf-set size |L| (0 = 8).
	LeafSize int
	// Dims is CAN's torus dimensionality r (0 = 2).
	Dims int
	// Core, when non-nil, is the full Tapestry configuration to use
	// verbatim (the facade builds one from its public Config). When nil,
	// Tapestry runs core.DefaultConfig with Spec and Seed applied.
	Core *core.Config
}

// spec returns the effective identifier spec.
func (c Config) spec() ids.Spec {
	if c.Spec.Base == 0 && c.Spec.Digits == 0 {
		return ids.DefaultSpec
	}
	return c.Spec
}

// Builder is one registered protocol constructor.
type Builder struct {
	Name string
	// Caps is the capability set instances of this protocol report —
	// available without building, for caps-gated experiment planning.
	Caps Caps
	// New creates an empty instance over the network.
	New func(net *netsim.Network, cfg Config) (Protocol, error)
}

// builders holds every protocol in presentation order: Tapestry first, then
// the paper's baselines in the order Table 1 lists them.
var builders = []Builder{
	{Name: "tapestry", Caps: tapestryCaps, New: newTapestry},
	{Name: "chord", Caps: chordCaps, New: newChord},
	{Name: "pastry", Caps: pastryCaps, New: newPastry},
	{Name: "can", Caps: canCaps, New: newCAN},
	{Name: "directory", Caps: directoryCaps, New: newDirectory},
}

// Builders returns every registered protocol in presentation order.
func Builders() []Builder {
	out := make([]Builder, len(builders))
	copy(out, builders)
	return out
}

// Lookup resolves a protocol by registry name.
func Lookup(name string) (Builder, error) {
	for _, b := range builders {
		if b.Name == name {
			return b, nil
		}
	}
	names := make([]string, len(builders))
	for i, b := range builders {
		names[i] = b.Name
	}
	return Builder{}, fmt.Errorf("overlay: unknown protocol %q (have %v)", name, names)
}
