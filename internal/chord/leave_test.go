package chord

import (
	"math/rand"
	"testing"
)

func TestVoluntaryLeaveKeepsKeys(t *testing.T) {
	_, nodes := buildRing(t, 24, 20)
	rng := rand.New(rand.NewSource(21))
	keys := make([]uint64, 12)
	for i := range keys {
		keys[i] = rng.Uint64()
		if err := nodes[i%4].Publish(keys[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	// A third of the nodes (never the publishers) leave gracefully.
	left := 0
	for _, n := range nodes[4:] {
		if left == 8 {
			break
		}
		if err := n.Leave(nil); err != nil {
			t.Fatalf("leave: %v", err)
		}
		left++
	}
	nodes[0].ring.Stabilize(nil)
	for _, k := range keys {
		if res := nodes[1].Locate(k, nil); !res.Found {
			t.Fatalf("key %d lost after voluntary leaves", k)
		}
	}
}

func TestDoubleLeaveAndLastNode(t *testing.T) {
	r, nodes := buildRing(t, 2, 22)
	if err := nodes[0].Leave(nil); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Leave(nil); err == nil {
		t.Error("double leave accepted")
	}
	if err := nodes[1].Leave(nil); err == nil {
		t.Error("last node leave accepted")
	}
	_ = r
}

func TestFailureThenRepair(t *testing.T) {
	r, nodes := buildRing(t, 32, 23)
	key := HashKey("survivor", 1)
	if err := nodes[0].Publish(key, nil); err != nil {
		t.Fatal(err)
	}
	// Kill a quarter of the ring (not node 0 and not the key's owner).
	owner, _, err := nodes[0].FindSuccessor(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	killed := 0
	for _, n := range nodes[1:] {
		if killed == 8 {
			break
		}
		if n == owner || n == nodes[0] {
			continue
		}
		r.Fail(n)
		killed++
	}
	r.Repair(nil)
	// Ring re-formed: lookups from every survivor still find the key.
	r.mu.RLock()
	survivors := make([]*Node, 0, len(r.byAddr))
	for _, n := range r.byAddr {
		survivors = append(survivors, n)
	}
	r.mu.RUnlock()
	if len(survivors) != 32-killed {
		t.Fatalf("survivors %d", len(survivors))
	}
	for _, n := range survivors {
		if res := n.Locate(key, nil); !res.Found {
			t.Fatalf("key lost after repair (from %d)", n.self.Addr)
		}
	}
}

func TestFailedOwnerLosesKeysUntilRepublish(t *testing.T) {
	r, nodes := buildRing(t, 24, 24)
	key := HashKey("fragile", 1)
	publisher := nodes[0]
	if err := publisher.Publish(key, nil); err != nil {
		t.Fatal(err)
	}
	owner, _, err := publisher.FindSuccessor(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if owner == publisher {
		t.Skip("publisher owns its own key")
	}
	r.Fail(owner)
	r.Repair(nil)
	if res := nodes[1].Locate(key, nil); res.Found {
		t.Fatal("key survived its owner's death without republish?")
	}
	if err := publisher.Publish(key, nil); err != nil {
		t.Fatal(err)
	}
	if res := nodes[1].Locate(key, nil); !res.Found {
		t.Fatal("republish did not restore the key")
	}
}
