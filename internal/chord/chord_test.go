package chord

import (
	"math/rand"
	"testing"

	"tapestry/internal/metric"
	"tapestry/internal/netsim"
)

func buildRing(t testing.TB, n int, seed int64) (*Ring, []*Node) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	space := metric.NewRing(n * 4)
	net := netsim.New(space)
	r := NewRing(net, seed)
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, n)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	nodes, _, err := r.Grow(addrs, rng)
	if err != nil {
		t.Fatal(err)
	}
	r.Stabilize(nil)
	return r, nodes
}

func TestBetween(t *testing.T) {
	cases := []struct {
		x, a, b uint64
		want    bool
	}{
		{5, 3, 7, true},
		{3, 3, 7, false},
		{7, 3, 7, true},
		{9, 3, 7, false},
		{1, 7, 3, true},  // wrap
		{8, 7, 3, true},  // wrap
		{5, 7, 3, false}, // wrap
	}
	for _, c := range cases {
		if got := between(c.x, c.a, c.b); got != c.want {
			t.Errorf("between(%d,%d,%d) = %v", c.x, c.a, c.b, got)
		}
	}
	if betweenOpen(7, 3, 7) {
		t.Error("betweenOpen right endpoint")
	}
}

func TestRingFormation(t *testing.T) {
	_, nodes := buildRing(t, 32, 1)
	// Successor graph forms one cycle covering all nodes.
	start := nodes[0]
	cur := start
	seen := map[netsim.Addr]bool{}
	for i := 0; i <= len(nodes); i++ {
		if seen[cur.self.Addr] {
			break
		}
		seen[cur.self.Addr] = true
		cur.mu.Lock()
		next := cur.succ[0]
		cur.mu.Unlock()
		cur = cur.ring.nodeAt(next.Addr)
		if cur == nil {
			t.Fatal("successor points nowhere")
		}
	}
	if len(seen) != len(nodes) {
		t.Fatalf("successor cycle covers %d of %d nodes", len(seen), len(nodes))
	}
}

func TestFindSuccessorAgreesWithGlobalOrder(t *testing.T) {
	_, nodes := buildRing(t, 48, 2)
	ids := make([]uint64, len(nodes))
	for i, n := range nodes {
		ids[i] = n.self.ID
	}
	owner := func(key uint64) uint64 {
		best := uint64(0)
		bestDelta := ^uint64(0)
		for _, id := range ids {
			delta := id - key // wraparound distance forward
			if delta < bestDelta {
				bestDelta = delta
				best = id
			}
		}
		return best
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		key := rng.Uint64()
		want := owner(key)
		start := nodes[rng.Intn(len(nodes))]
		got, hops, err := start.FindSuccessor(key, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.self.ID != want {
			t.Fatalf("owner of %d: got %d, want %d", key, got.self.ID, want)
		}
		if hops > 30 {
			t.Errorf("lookup took %d hops", hops)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	_, nodes := buildRing(t, 64, 4)
	rng := rand.New(rand.NewSource(5))
	total := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		key := rng.Uint64()
		start := nodes[rng.Intn(len(nodes))]
		_, hops, err := start.FindSuccessor(key, nil)
		if err != nil {
			t.Fatal(err)
		}
		total += hops
	}
	mean := float64(total) / trials
	// log2(64) = 6; Chord's expected half that. Allow generous slack.
	if mean > 9 {
		t.Errorf("mean hops %.2f for n=64, expected ~3-6", mean)
	}
}

func TestPublishAndLocate(t *testing.T) {
	_, nodes := buildRing(t, 32, 6)
	key := HashKey("obj", 1)
	if err := nodes[3].Publish(key, nil); err != nil {
		t.Fatal(err)
	}
	for _, c := range nodes {
		res := c.Locate(key, nil)
		if !res.Found {
			t.Fatalf("locate failed from %d", c.self.Addr)
		}
		if res.Server != nodes[3].self.Addr {
			t.Fatalf("wrong server %d", res.Server)
		}
	}
	if res := nodes[0].Locate(HashKey("ghost", 1), nil); res.Found {
		t.Error("found unpublished key")
	}
}

func TestKeyHandoverOnJoin(t *testing.T) {
	r, nodes := buildRing(t, 16, 7)
	rng := rand.New(rand.NewSource(8))
	keys := make([]uint64, 20)
	for i := range keys {
		keys[i] = rng.Uint64()
		if err := nodes[i%len(nodes)].Publish(keys[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	// Join several more nodes; previously published keys must remain
	// locatable (handover moved them to their new owners).
	joined := 0
	for a := 0; a < r.net.Size() && joined < 8; a++ {
		if r.nodeAt(netsim.Addr(a)) != nil {
			continue
		}
		if _, _, err := r.Join(nodes[0], RandomID(rng), netsim.Addr(a)); err != nil {
			t.Fatal(err)
		}
		joined++
	}
	r.Stabilize(nil)
	for _, k := range keys {
		if res := nodes[1].Locate(k, nil); !res.Found {
			t.Fatalf("key %d lost after joins", k)
		}
	}
}

func TestJoinCostLogSquared(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	space := metric.NewRing(1024)
	net := netsim.New(space)
	r := NewRing(net, 9)
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, 128)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	_, costs, err := r.Grow(addrs, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Mean of the last 64 joins: should be well below n (it is O(log² n)).
	mean := 0.0
	for _, c := range costs[64:] {
		mean += float64(c)
	}
	mean /= 64
	if mean > 400 {
		t.Errorf("mean join cost %.0f messages for n=128; expected O(log² n) ≈ 50-200", mean)
	}
	if mean < 5 {
		t.Errorf("join cost %.0f suspiciously low; accounting broken?", mean)
	}
}

func TestFingerCountLogarithmic(t *testing.T) {
	_, nodes := buildRing(t, 64, 10)
	for _, n := range nodes {
		c := n.FingerCount()
		if c < 2 || c > 40 {
			t.Fatalf("node has %d distinct fingers; expected Θ(log n)", c)
		}
	}
}

func TestDuplicateJoinRejected(t *testing.T) {
	r, nodes := buildRing(t, 8, 11)
	if _, _, err := r.Join(nodes[0], nodes[1].self.ID, 999); err == nil {
		t.Error("duplicate ID join should fail")
	}
	if _, _, err := r.Join(nodes[0], 42, nodes[1].self.Addr); err == nil {
		t.Error("duplicate address join should fail")
	}
	if _, err := r.Bootstrap(1, 998); err == nil {
		t.Error("second bootstrap should fail")
	}
}

func TestHashKeyDeterministic(t *testing.T) {
	if HashKey("a", 1) != HashKey("a", 1) {
		t.Error("not deterministic")
	}
	if HashKey("a", 1) == HashKey("b", 1) {
		t.Error("collision (wildly unlikely)")
	}
	if HashKey("a", 1) == HashKey("a", 2) {
		t.Error("seed ignored")
	}
}
