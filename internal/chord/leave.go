package chord

import (
	"errors"

	"tapestry/internal/netsim"
)

// Leave removes the node gracefully: stored keys move to the successor, the
// predecessor and successor are spliced together, and the node detaches.
func (n *Node) Leave(cost *netsim.Cost) error {
	n.mu.Lock()
	if !n.alive {
		n.mu.Unlock()
		return errors.New("chord: node already gone")
	}
	if len(n.succ) == 0 || n.succ[0].Addr == n.self.Addr {
		n.mu.Unlock()
		return errors.New("chord: last node cannot leave")
	}
	succRef := n.succ[0]
	predRef := n.pred
	keys := n.store
	n.store = map[uint64][]Replica{}
	n.mu.Unlock()

	// Hand keys to the successor.
	if succ, err := n.ring.rpc(n.self.Addr, succRef, cost, false); err == nil {
		succ.mu.Lock()
		for k, reps := range keys {
			succ.store[k] = append(succ.store[k], reps...)
		}
		succ.pred = predRef
		succ.mu.Unlock()
	}
	// Splice the predecessor around us.
	if predRef.Addr != n.self.Addr {
		if pred, err := n.ring.rpc(n.self.Addr, predRef, cost, false); err == nil {
			pred.mu.Lock()
			fixed := make([]Ref, 0, len(pred.succ)+1)
			fixed = append(fixed, succRef)
			for _, s := range pred.succ {
				if s.Addr != n.self.Addr {
					fixed = append(fixed, s)
				}
			}
			pred.succ = fixed
			if len(pred.succ) > pred.succLen {
				pred.succ = pred.succ[:pred.succLen]
			}
			pred.mu.Unlock()
		}
	}

	n.mu.Lock()
	n.alive = false
	n.mu.Unlock()
	n.ring.net.Detach(n.self.Addr)
	n.ring.mu.Lock()
	delete(n.ring.byAddr, n.self.Addr)
	n.ring.mu.Unlock()
	return nil
}

// Fail kills the node without notice. Lookups routed through it fail until
// Repair (or Stabilize) runs — Chord's successor lists exist exactly for
// this, and the keys it stored are lost until their owners re-publish
// (Chord has no soft-state republish of its own; the experiment harness
// re-publishes explicitly).
func (r *Ring) Fail(n *Node) {
	n.mu.Lock()
	n.alive = false
	n.mu.Unlock()
	r.net.Detach(n.self.Addr)
	r.mu.Lock()
	delete(r.byAddr, n.self.Addr)
	r.mu.Unlock()
}

// Repair re-forms the ring among survivors after failures: successor lists
// and predecessors are rebuilt from the surviving membership (the converged
// fixed point that Chord's iterative stabilization would reach), then
// fingers are refreshed. Keys stored on the corpses are gone until their
// publishers re-publish.
func (r *Ring) Repair(cost *netsim.Cost) {
	r.mu.RLock()
	nodes := make([]*Node, 0, len(r.byAddr))
	for _, n := range r.byAddr {
		nodes = append(nodes, n)
	}
	r.mu.RUnlock()
	// Reset fingers to something live before Stabilize re-derives them via
	// lookups (dropRef handles any residual staleness lazily).
	for _, n := range nodes {
		n.mu.Lock()
		kept := n.succ[:0]
		for _, s := range n.succ {
			if r.net.Alive(s.Addr) {
				kept = append(kept, s)
			}
		}
		n.succ = kept
		if len(n.succ) == 0 {
			n.succ = []Ref{n.self}
		}
		first := n.succ[0]
		for j := range n.finger {
			if !r.net.Alive(n.finger[j].Addr) {
				n.finger[j] = first
			}
		}
		n.mu.Unlock()
	}
	r.Stabilize(cost)
}
