// Package chord implements the Chord distributed lookup service of Stoica
// et al. [30], as a baseline for Table 1: O(log n) lookup hops, O(log n)
// routing state per node, O(log² n) join messages — but no routing locality,
// since identifiers are unrelated to network position ("most of the recent
// work on peer-to-peer networks ignore stretch").
//
// Nodes sit on a 64-bit identifier circle. Each node keeps a predecessor, a
// successor list, and a finger table whose i-th entry is the successor of
// n + 2^i. Objects are stored (as location references) at the successor of
// their key; queries route to that node, then hop to the replica it names.
package chord

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"tapestry/internal/netsim"
)

// M is the identifier-circle bit width.
const M = 64

// Ref names a node: its ring ID and network address.
type Ref struct {
	ID   uint64
	Addr netsim.Addr
}

// Node is one Chord participant.
type Node struct {
	ring *Ring
	self Ref

	mu      sync.Mutex
	pred    Ref
	succ    []Ref // successor list, closest first; len >= 1 once joined
	finger  [M]Ref
	store   map[uint64][]Replica // key -> replicas, held by the key's successor
	serves  map[uint64][]netsim.Addr
	alive   bool
	succLen int
}

// Replica names one copy of an object.
type Replica struct {
	Key    uint64
	Server netsim.Addr
}

// Ring is a Chord overlay instance.
type Ring struct {
	net *netsim.Network

	mu     sync.RWMutex
	byAddr map[netsim.Addr]*Node
	seed   int64
}

// NewRing creates an empty Chord overlay.
func NewRing(net *netsim.Network, seed int64) *Ring {
	return &Ring{net: net, byAddr: make(map[netsim.Addr]*Node), seed: seed}
}

// between reports whether x lies in the half-open ring interval (a, b].
func between(x, a, b uint64) bool {
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b // interval wraps
}

// betweenOpen reports whether x lies in the open interval (a, b).
func betweenOpen(x, a, b uint64) bool {
	if a < b {
		return x > a && x < b
	}
	return x > a || x < b
}

// Bootstrap creates the first node.
func (r *Ring) Bootstrap(id uint64, addr netsim.Addr) (*Node, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.byAddr) != 0 {
		return nil, errors.New("chord: ring already bootstrapped")
	}
	n := &Node{
		ring: r, self: Ref{id, addr},
		store:  make(map[uint64][]Replica),
		serves: make(map[uint64][]netsim.Addr),
		alive:  true, succLen: 4,
	}
	n.pred = n.self
	n.succ = []Ref{n.self}
	for i := range n.finger {
		n.finger[i] = n.self
	}
	r.byAddr[addr] = n
	r.net.Attach(addr)
	return n, nil
}

func (r *Ring) nodeAt(a netsim.Addr) *Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byAddr[a]
}

// rpc charges a message pair and resolves the target node.
func (r *Ring) rpc(from netsim.Addr, to Ref, cost *netsim.Cost, hop bool) (*Node, error) {
	if err := r.net.Send(from, to.Addr, cost, hop); err != nil {
		return nil, err
	}
	n := r.nodeAt(to.Addr)
	if n == nil {
		return nil, fmt.Errorf("chord: no node at %d", to.Addr)
	}
	n.mu.Lock()
	ok := n.alive && n.self.ID == to.ID
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("chord: node at %d gone", to.Addr)
	}
	_ = r.net.Send(to.Addr, from, cost, false)
	return n, nil
}

// closestPrecedingFinger returns the highest finger strictly between self
// and key.
func (n *Node) closestPrecedingFinger(key uint64) Ref {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := M - 1; i >= 0; i-- {
		f := n.finger[i]
		if f.Addr != n.self.Addr && betweenOpen(f.ID, n.self.ID, key) {
			return f
		}
	}
	for i := len(n.succ) - 1; i >= 0; i-- {
		if s := n.succ[i]; s.Addr != n.self.Addr && betweenOpen(s.ID, n.self.ID, key) {
			return s
		}
	}
	return n.self
}

// FindSuccessor routes from n to the node owning key, charging cost per
// hop. Returns the owner and the hop count.
func (n *Node) FindSuccessor(key uint64, cost *netsim.Cost) (*Node, int, error) {
	cur := n
	hops := 0
	for hops <= 4*M {
		cur.mu.Lock()
		succ := cur.succ[0]
		selfID := cur.self.ID
		cur.mu.Unlock()
		if between(key, selfID, succ.ID) {
			if succ.Addr == cur.self.Addr {
				return cur, hops, nil
			}
			owner, err := cur.ring.rpc(cur.self.Addr, succ, cost, true)
			if err != nil {
				cur.dropRef(succ) // stale successor; retry with the next one
				continue
			}
			return owner, hops + 1, nil
		}
		next := cur.closestPrecedingFinger(key)
		if next.Addr == cur.self.Addr {
			// Fingers exhausted: fall through to the successor.
			owner, err := cur.ring.rpc(cur.self.Addr, succ, cost, true)
			if err != nil {
				cur.dropRef(succ)
				continue
			}
			cur = owner
			hops++
			continue
		}
		peer, err := cur.ring.rpc(cur.self.Addr, next, cost, true)
		if err != nil {
			cur.dropRef(next) // stale finger; re-decide
			continue
		}
		cur = peer
		hops++
	}
	return nil, 0, errors.New("chord: lookup did not converge")
}

// dropRef removes a reference observed dead from the successor list and
// fingers (lazy repair on lookup failure).
func (n *Node) dropRef(ref Ref) {
	n.mu.Lock()
	defer n.mu.Unlock()
	kept := n.succ[:0]
	for _, s := range n.succ {
		if s.Addr != ref.Addr {
			kept = append(kept, s)
		}
	}
	n.succ = kept
	if len(n.succ) == 0 {
		n.succ = []Ref{n.self}
	}
	for i := range n.finger {
		if n.finger[i].Addr == ref.Addr {
			n.finger[i] = n.succ[0]
		}
	}
}

// Join inserts a new node via the gateway: find its successor, splice the
// ring, build the finger table with O(log n) lookups (O(log² n) messages,
// the Table 1 insert cost), and take over the keys it now owns.
func (r *Ring) Join(gateway *Node, id uint64, addr netsim.Addr) (*Node, *netsim.Cost, error) {
	cost := &netsim.Cost{}
	r.mu.Lock()
	if _, dup := r.byAddr[addr]; dup {
		r.mu.Unlock()
		return nil, cost, fmt.Errorf("chord: address %d taken", addr)
	}
	r.mu.Unlock()

	succ, _, err := gateway.FindSuccessor(id, cost)
	if err != nil {
		return nil, cost, err
	}
	if succ.self.ID == id {
		return nil, cost, fmt.Errorf("chord: id %d already present", id)
	}

	n := &Node{
		ring: r, self: Ref{id, addr},
		store:  make(map[uint64][]Replica),
		serves: make(map[uint64][]netsim.Addr),
		alive:  true, succLen: 4,
	}
	r.mu.Lock()
	r.byAddr[addr] = n
	r.mu.Unlock()
	r.net.Attach(addr)

	// Splice: pred(succ) <- n -> succ.
	succ.mu.Lock()
	oldPred := succ.pred
	succ.pred = n.self
	n.succ = append([]Ref{succ.self}, succ.succ...)
	if len(n.succ) > n.succLen {
		n.succ = n.succ[:n.succLen]
	}
	// Key handover: everything in (oldPred, n] moves to n.
	for k, reps := range succ.store {
		if between(k, oldPred.ID, n.self.ID) {
			n.store[k] = reps
			delete(succ.store, k)
		}
	}
	succ.mu.Unlock()
	n.mu.Lock()
	n.pred = oldPred
	n.mu.Unlock()
	if oldPred.Addr != succ.self.Addr || oldPred.ID != succ.self.ID {
		if p, err := r.rpc(n.self.Addr, oldPred, cost, false); err == nil {
			p.mu.Lock()
			p.succ = append([]Ref{n.self}, p.succ...)
			if len(p.succ) > p.succLen {
				p.succ = p.succ[:p.succLen]
			}
			p.mu.Unlock()
		}
	} else {
		succ.mu.Lock()
		succ.succ = append([]Ref{n.self}, succ.succ...)
		if len(succ.succ) > succ.succLen {
			succ.succ = succ.succ[:succ.succLen]
		}
		succ.mu.Unlock()
	}

	// Finger table: one lookup per distinct finger start.
	n.buildFingers(gateway, cost)
	return n, cost, nil
}

// buildFingers fills the finger table via lookups; consecutive fingers that
// share an owner are coalesced (the standard optimization, keeping join at
// O(log² n) messages rather than O(M log n)).
func (n *Node) buildFingers(via *Node, cost *netsim.Cost) {
	var last Ref
	for i := 0; i < M; i++ {
		start := n.self.ID + (uint64(1) << uint(i))
		if last.Addr != 0 || last.ID != 0 {
			if between(start, n.self.ID, last.ID) {
				n.mu.Lock()
				n.finger[i] = last
				n.mu.Unlock()
				continue
			}
		}
		owner, _, err := via.FindSuccessor(start, cost)
		if err != nil {
			continue
		}
		n.mu.Lock()
		n.finger[i] = owner.self
		n.mu.Unlock()
		last = owner.self
	}
}

// Stabilize refreshes the successor/predecessor links and fingers of every
// node to the fixed point Chord's iterative stabilization converges to (run
// periodically in deployments; invoked explicitly in experiments after
// churn).
func (r *Ring) Stabilize(cost *netsim.Cost) {
	r.mu.RLock()
	nodes := make([]*Node, 0, len(r.byAddr))
	for _, n := range r.byAddr {
		nodes = append(nodes, n)
	}
	r.mu.RUnlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].self.ID < nodes[j].self.ID })
	nn := len(nodes)
	for i, n := range nodes {
		n.mu.Lock()
		n.succ = n.succ[:0]
		for o := 1; o <= n.succLen && o < nn; o++ {
			n.succ = append(n.succ, nodes[(i+o)%nn].self)
		}
		if len(n.succ) == 0 {
			n.succ = []Ref{n.self}
		}
		n.pred = nodes[(i-1+nn)%nn].self
		n.mu.Unlock()
	}
	for _, n := range nodes {
		n.buildFingers(n, cost)
	}
}

// Publish stores a replica reference at the successor of the key.
func (n *Node) Publish(key uint64, cost *netsim.Cost) error {
	owner, _, err := n.FindSuccessor(key, cost)
	if err != nil {
		return err
	}
	owner.mu.Lock()
	owner.store[key] = append(owner.store[key], Replica{Key: key, Server: n.self.Addr})
	owner.mu.Unlock()
	n.mu.Lock()
	n.serves[key] = append(n.serves[key], n.self.Addr)
	n.mu.Unlock()
	return nil
}

// LocateResult mirrors the Tapestry result for comparable experiments.
type LocateResult struct {
	Found  bool
	Server netsim.Addr
	Hops   int
}

// Locate routes to the key's owner and then to the replica closest to the
// owner (Chord has no locality: the owner is a uniformly random node, so
// both legs are typically long).
func (n *Node) Locate(key uint64, cost *netsim.Cost) LocateResult {
	owner, hops, err := n.FindSuccessor(key, cost)
	if err != nil {
		return LocateResult{}
	}
	owner.mu.Lock()
	reps := append([]Replica(nil), owner.store[key]...)
	owner.mu.Unlock()
	if len(reps) == 0 {
		return LocateResult{}
	}
	best := reps[0]
	bestD := n.ring.net.Distance(owner.self.Addr, best.Server)
	for _, rep := range reps[1:] {
		if d := n.ring.net.Distance(owner.self.Addr, rep.Server); d < bestD {
			best, bestD = rep, d
		}
	}
	if err := n.ring.net.Send(owner.self.Addr, best.Server, cost, true); err != nil {
		return LocateResult{}
	}
	return LocateResult{Found: true, Server: best.Server, Hops: hops + 1}
}

// FingerCount returns the number of distinct routing entries (the Table 1
// space measurement).
func (n *Node) FingerCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	seen := map[netsim.Addr]bool{}
	for _, f := range n.finger {
		if f.Addr != n.self.Addr {
			seen[f.Addr] = true
		}
	}
	for _, s := range n.succ {
		if s.Addr != n.self.Addr {
			seen[s.Addr] = true
		}
	}
	return len(seen)
}

// Self returns the node's ring reference.
func (n *Node) Self() Ref { return n.self }

// HashKey maps an arbitrary name onto the ring deterministically.
func HashKey(name string, seed int64) uint64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 + 0x1234567
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001B3
	}
	return h
}

// RandomID draws a ring identifier.
func RandomID(rng *rand.Rand) uint64 { return rng.Uint64() }

// Grow bootstraps (if needed) and joins nodes at the given addresses with
// random IDs, returning the nodes and per-join message counts.
func (r *Ring) Grow(addrs []netsim.Addr, rng *rand.Rand) ([]*Node, []int, error) {
	var nodes []*Node
	var costs []int
	for _, a := range addrs {
		id := RandomID(rng)
		r.mu.RLock()
		empty := len(r.byAddr) == 0
		r.mu.RUnlock()
		if empty {
			n, err := r.Bootstrap(id, a)
			if err != nil {
				return nodes, costs, err
			}
			nodes = append(nodes, n)
			costs = append(costs, 0)
			continue
		}
		gw := nodes[rng.Intn(len(nodes))]
		n, cost, err := r.Join(gw, id, a)
		if err != nil {
			return nodes, costs, err
		}
		nodes = append(nodes, n)
		costs = append(costs, cost.Messages())
	}
	return nodes, costs, nil
}
