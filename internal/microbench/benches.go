package microbench

import (
	"fmt"
	"math/rand"

	"tapestry"
	"tapestry/internal/core"
	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
	"tapestry/internal/wire"
)

// The micro set pins the hot paths the perf PRs optimized: the end-to-end
// locate, the §4.2 slot search, the per-hop routing decision, and the two
// halves of a batched maintenance epoch. Fixture sizes match the historical
// `go test -bench` numbers (256-node facade network, 64/128-node core
// meshes) so BENCH_micro.json stays comparable with the figures quoted in
// README's Performance section.

// benchSpec matches internal/core's test spec: short IDs so small meshes
// populate every level.
var benchSpec = ids.Spec{Base: 16, Digits: 6}

// buildCoreMesh mirrors the core package's test fixture: n nodes grown
// sequentially over a sparse ring, addresses drawn as a seeded permutation.
func buildCoreMesh(n int, cfg core.Config, seed int64) (*core.Mesh, []*core.Node) {
	rng := rand.New(rand.NewSource(seed))
	space := metric.NewRing(n * 4)
	net := netsim.New(space)
	m, err := core.NewMesh(net, cfg)
	if err != nil {
		panic(err)
	}
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, n)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	nodes, _, err := m.GrowSequential(addrs, rng)
	if err != nil {
		panic(err)
	}
	return m, nodes
}

func benchCoreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Spec = benchSpec
	return cfg
}

// Benches returns the standard micro set in its canonical order.
func Benches() []Benchmark {
	return []Benchmark{
		{Name: "OpLocate", Setup: setupOpLocate},
		{Name: "OpLocateMultiRoot", Setup: setupOpLocateMultiRoot},
		{Name: "NearestForSlot", Setup: setupNearestForSlot},
		{Name: "NextHop", Setup: setupNextHop},
		{Name: "SweepDeadEpoch", Setup: setupSweepDeadEpoch},
		{Name: "RepublishAllEpoch", Setup: setupRepublishAllEpoch},
		{Name: "WireEncode", Setup: setupWireEncode},
		{Name: "WireDecode", Setup: setupWireDecode},
		{Name: "LoopbackLocate", Setup: setupLoopbackLocate},
	}
}

// OpLocate: the facade-level end-to-end locate on a settled 256-node
// network, round-robin over clients (mirrors bench_test.go's
// BenchmarkOpLocate).
func setupOpLocate() func(b *B) {
	nw, err := tapestry.New(tapestry.RingSpace(256*4), tapestry.Defaults())
	if err != nil {
		panic(err)
	}
	nodes, err := nw.Grow(256)
	if err != nil {
		panic(err)
	}
	if _, err := nodes[0].Publish("bench-object"); err != nil {
		panic(err)
	}
	return func(b *B) {
		hops := 0
		for i := 0; i < b.N; i++ {
			res, _ := nodes[i%len(nodes)].Locate("bench-object")
			if !res.Found {
				panic("lost object")
			}
			hops += res.Hops
		}
		b.ReportMetric(float64(hops)/float64(b.N), "hops/op")
	}
}

// OpLocateMultiRoot: the same end-to-end locate with the availability tier
// turned up (r=4 salted roots, k=3 replicas) — the per-query overhead of the
// pseudo-random root draw plus the occasional extra probe, which must stay a
// small constant over OpLocate on a healthy mesh (every root path is intact,
// so almost every query succeeds on its first probe).
func setupOpLocateMultiRoot() func(b *B) {
	cfg := tapestry.Defaults()
	cfg.Roots = 4
	cfg.Replicas = 3
	nw, err := tapestry.New(tapestry.RingSpace(256*4), cfg)
	if err != nil {
		panic(err)
	}
	nodes, err := nw.Grow(256)
	if err != nil {
		panic(err)
	}
	if _, err := nodes[0].Publish("bench-object"); err != nil {
		panic(err)
	}
	return func(b *B) {
		hops := 0
		for i := 0; i < b.N; i++ {
			res, _ := nodes[i%len(nodes)].Locate("bench-object")
			if !res.Found {
				panic("lost object")
			}
			hops += res.Hops
		}
		b.ReportMetric(float64(hops)/float64(b.N), "hops/op")
	}
}

// NearestForSlot: one §4.2 slot search on a settled 64-node mesh, the
// repair hot path's dominant cost (mirrors BenchmarkNearestForSlot; the
// random (node, level, digit) sequence is precomputed so only the search is
// timed).
func setupNearestForSlot() func(b *B) {
	_, nodes := buildCoreMesh(64, benchCoreConfig(), 36)
	rng := rand.New(rand.NewSource(37))
	const seqLen = 1 << 12
	type pick struct {
		node  *core.Node
		level int
		digit ids.Digit
	}
	seq := make([]pick, seqLen)
	for i := range seq {
		seq[i] = pick{
			node:  nodes[rng.Intn(len(nodes))],
			level: rng.Intn(2), // low levels are the populated (expensive) ones
			digit: ids.Digit(rng.Intn(benchSpec.Base)),
		}
	}
	return func(b *B) {
		for i := 0; i < b.N; i++ {
			p := seq[i%seqLen]
			p.node.NearestForSlot(p.level, p.digit, nil)
		}
	}
}

// NextHop: the single local routing decision every hop of every walk makes,
// over precomputed random keys on a settled 128-node mesh.
func setupNextHop() func(b *B) {
	_, nodes := buildCoreMesh(128, benchCoreConfig(), 44)
	rng := rand.New(rand.NewSource(45))
	const seqLen = 1 << 12
	keys := make([]ids.ID, seqLen)
	for i := range keys {
		keys[i] = benchSpec.Random(rng)
	}
	return func(b *B) {
		for i := 0; i < b.N; i++ {
			nodes[i%len(nodes)].NextHopDecision(keys[i%seqLen], 0)
		}
	}
}

// SweepDeadEpoch: one mesh-wide coalesced heartbeat on a settled 128-node
// mesh. The msgs/epoch metric equals one round trip per distinct neighbor —
// the scaling the batching exists to deliver.
func setupSweepDeadEpoch() func(b *B) {
	m, nodes := buildCoreMesh(128, benchCoreConfig(), 52)
	distinct := map[ids.ID]struct{}{}
	for _, n := range nodes {
		n.Table().ForEachNeighbor(func(_ int, e route.Entry) {
			distinct[e.ID] = struct{}{}
		})
	}
	return func(b *B) {
		var cost netsim.Cost
		for i := 0; i < b.N; i++ {
			m.SweepDeadAll(&cost)
		}
		b.ReportMetric(float64(cost.Messages())/float64(b.N), "msgs/epoch")
		b.ReportMetric(float64(len(distinct)), "distinct_neighbors")
	}
}

// RepublishAllEpoch: the batched soft-state refresh of 32 objects spread
// over a settled 128-node mesh (one caravan per serving node). msgs/epoch
// scales with distinct next hops; records/epoch is the objects×roots count
// the unbatched walk would pay per-hop for.
func setupRepublishAllEpoch() func(b *B) {
	m, nodes := buildCoreMesh(128, benchCoreConfig(), 60)
	rng := rand.New(rand.NewSource(61))
	records := 0
	for i := 0; i < 32; i++ {
		g := benchSpec.Hash(fmt.Sprintf("micro-%d", i))
		if err := nodes[rng.Intn(len(nodes))].Publish(g, nil); err != nil {
			panic(err)
		}
		records++
	}
	servers := m.Nodes()
	return func(b *B) {
		var cost netsim.Cost
		for i := 0; i < b.N; i++ {
			for _, n := range servers {
				n.RepublishAll(&cost)
			}
		}
		b.ReportMetric(float64(cost.Messages())/float64(b.N), "msgs/epoch")
		b.ReportMetric(float64(records), "records")
	}
}

// benchWireMsgs is a realistic message mix for the codec benches: the walk
// steps every hop sends, a populated table-band response (the largest routine
// payload), and the small notification messages.
func benchWireMsgs() []wire.Msg {
	rng := rand.New(rand.NewSource(77))
	entries := make([]route.Entry, 16)
	for i := range entries {
		entries[i] = route.Entry{
			ID:       benchSpec.Random(rng),
			Addr:     netsim.Addr(rng.Intn(1024)),
			Distance: rng.Float64() * 500,
		}
	}
	return []wire.Msg{
		&wire.RouteStep{Key: benchSpec.Random(rng), Level: 3, Op: wire.RouteOpRoute},
		&wire.LocateStep{GUID: benchSpec.Random(rng), Key: benchSpec.Random(rng), Level: 2, Hops: 4},
		&wire.TableBandReq{Floor: 1, Fold: -1},
		&wire.TableBandResp{Entries: entries},
		&wire.BackAdd{Level: 2, From: entries[0]},
		&wire.McastStep{P: benchSpec.Random(rng).Prefix(2), Root: benchSpec.Random(rng).Prefix(1),
			NewNode: entries[1], HoleLevel: 1},
	}
}

// WireEncode: steady-state framing of the routine message mix into a reused
// buffer — the per-hop encode cost of the loopback and TCP transports.
func setupWireEncode() func(b *B) {
	msgs := benchWireMsgs()
	return func(b *B) {
		var buf []byte
		total := 0
		for i := 0; i < b.N; i++ {
			buf = wire.AppendFrame(buf[:0], msgs[i%len(msgs)])
			total += len(buf)
		}
		b.ReportMetric(float64(total)/float64(b.N), "bytes/op")
	}
}

// WireDecode: the zero-allocation DecodeFrameInto path over pre-encoded
// frames with recycled message structs — the per-hop decode cost.
func setupWireDecode() func(b *B) {
	msgs := benchWireMsgs()
	frames := make([][]byte, len(msgs))
	recycled := make([]wire.Msg, len(msgs))
	for i, m := range msgs {
		frames[i] = wire.AppendFrame(nil, m)
		recycled[i] = wire.New(m.WireType())
	}
	return func(b *B) {
		for i := 0; i < b.N; i++ {
			j := i % len(frames)
			if _, err := wire.DecodeFrameInto(frames[j], recycled[j]); err != nil {
				panic(err)
			}
		}
	}
}

// LoopbackLocate: the core end-to-end locate with every message round-tripped
// through the codec — OpLocate's counterpart measuring the full serialization
// tax on a settled 64-node mesh.
func setupLoopbackLocate() func(b *B) {
	cfg := benchCoreConfig()
	cfg.Transport = core.TransportLoopback
	_, nodes := buildCoreMesh(64, cfg, 68)
	g := benchSpec.Hash("loopback-object")
	if err := nodes[0].Publish(g, nil); err != nil {
		panic(err)
	}
	return func(b *B) {
		hops := 0
		for i := 0; i < b.N; i++ {
			var cost netsim.Cost
			res := nodes[i%len(nodes)].Locate(g, &cost)
			if !res.Found {
				panic("lost object")
			}
			hops += res.Hops
		}
		b.ReportMetric(float64(hops)/float64(b.N), "hops/op")
	}
}
