// Package microbench is a small self-contained benchmark harness behind
// `benchtables -bench-json`: it runs the hot-path micro-benchmark set
// (locate, slot search, next-hop decision, maintenance epochs) outside `go
// test` so the perf trajectory can be emitted as JSON, committed as
// BENCH_micro.json, and gated by CI against regressions.
//
// The harness mirrors testing.B's contract where it matters: each benchmark
// body runs b.N iterations, setup happens before the timer starts, and the
// reported ns/op is the minimum over `count` repetitions (the least-noise
// estimator for a gate). Allocation counts come from runtime.MemStats
// deltas around the timed loop; with a single benchmarking goroutine they
// are exact, which is what makes "any allocs/op increase fails CI"
// enforceable.
package microbench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"
)

// B is the per-run handle a benchmark body receives. The body must execute
// its operation exactly N times.
type B struct {
	// N is the iteration count for this timed run.
	N int

	metrics map[string]float64
}

// ReportMetric records a custom per-op metric (e.g. "msgs/epoch") alongside
// the timing columns. Later reports of the same name overwrite.
func (b *B) ReportMetric(perOp float64, name string) {
	if b.metrics == nil {
		b.metrics = map[string]float64{}
	}
	b.metrics[name] = perOp
}

// Benchmark is one named entry of the micro set. Setup builds the fixture
// (untimed) and returns the body to be timed; the body is re-invoked with
// growing b.N, so it must be repeatable against the same fixture.
type Benchmark struct {
	Name  string
	Setup func() func(b *B)
}

// Result is one benchmark's measurement, serialized into BENCH_micro.json.
type Result struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	Iterations  int                `json:"iterations"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Options configure a harness run.
type Options struct {
	BenchTime time.Duration // target wall time per repetition (default 200ms)
	Count     int           // repetitions; min ns/op wins (default 3)
	Verbose   io.Writer     // per-benchmark progress lines, nil for quiet
}

func (o Options) withDefaults() Options {
	if o.BenchTime <= 0 {
		o.BenchTime = 200 * time.Millisecond
	}
	if o.Count <= 0 {
		o.Count = 3
	}
	return o
}

// Run executes every benchmark and returns results in definition order.
func Run(benches []Benchmark, opts Options) []Result {
	opts = opts.withDefaults()
	results := make([]Result, 0, len(benches))
	for _, bm := range benches {
		r := runOne(bm, opts)
		if opts.Verbose != nil {
			fmt.Fprintf(opts.Verbose, "%-24s %12.0f ns/op %8.0f allocs/op %10.0f B/op\n",
				r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		}
		results = append(results, r)
	}
	return results
}

func runOne(bm Benchmark, opts Options) Result {
	body := bm.Setup()
	res := Result{Name: bm.Name}
	best := -1.0
	for rep := 0; rep < opts.Count; rep++ {
		n := 1
		for {
			ns, allocs, bytes, metrics := measure(body, n)
			elapsed := ns * float64(n)
			if elapsed >= float64(opts.BenchTime.Nanoseconds()) || n >= 1<<24 {
				if best < 0 || ns < best {
					best = ns
					res.NsPerOp = ns
					res.AllocsPerOp = allocs
					res.BytesPerOp = bytes
					res.Iterations = n
					res.Metrics = metrics
				}
				break
			}
			// Grow toward the target the way testing.B does: predict from
			// the observed rate, bounded to at most 100x per step.
			next := int(1.2 * float64(opts.BenchTime.Nanoseconds()) / ns)
			if next > 100*n {
				next = 100 * n
			}
			if next <= n {
				next = n + 1
			}
			n = next
		}
	}
	return res
}

// measure times one run of body with the given N and returns per-op
// nanoseconds, mallocs, and bytes.
func measure(body func(b *B), n int) (ns, allocs, bytes float64, metrics map[string]float64) {
	b := &B{N: n}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	body(b)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	fn := float64(n)
	ns = float64(elapsed.Nanoseconds()) / fn
	allocs = float64(after.Mallocs-before.Mallocs) / fn
	bytes = float64(after.TotalAlloc-before.TotalAlloc) / fn
	return ns, allocs, bytes, b.metrics
}

// WriteJSON emits results as indented JSON (the BENCH_micro.json format:
// a JSON array of Result objects, stable order, no timestamps so reruns on
// identical code diff cleanly).
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// ReadJSON parses a BENCH_micro.json previously written by WriteJSON.
func ReadJSON(r io.Reader) ([]Result, error) {
	var out []Result
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("microbench: parse baseline: %w", err)
	}
	return out, nil
}

// Compare gates current results against a baseline: a benchmark fails when
// its ns/op regresses by more than tol (fraction, e.g. 0.25) or its
// allocs/op increases beyond a hair of slack (+5% and +0.5 absolute —
// allocation counts are near-deterministic, but pooled scratch refills
// after a GC add a fractional, run-dependent remainder; the slack absorbs
// that while still catching any real per-op allocation added to a hot
// path). New benchmarks absent from the baseline pass (adding one must not
// require a two-step baseline dance); baseline entries that vanish fail, so
// a gate cannot be deleted silently. Returns human-readable violations;
// empty means the gate passes.
func Compare(baseline, current []Result, tol float64) []string {
	base := map[string]Result{}
	for _, r := range baseline {
		base[r.Name] = r
	}
	var violations []string
	seen := map[string]bool{}
	for _, cur := range current {
		seen[cur.Name] = true
		b, ok := base[cur.Name]
		if !ok {
			continue // new benchmark: becomes part of the next baseline
		}
		if b.NsPerOp > 0 && cur.NsPerOp > b.NsPerOp*(1+tol) {
			violations = append(violations, fmt.Sprintf(
				"%s: ns/op %.0f -> %.0f (+%.0f%%, tolerance %.0f%%)",
				cur.Name, b.NsPerOp, cur.NsPerOp,
				100*(cur.NsPerOp/b.NsPerOp-1), 100*tol))
		}
		if cur.AllocsPerOp > b.AllocsPerOp*1.05+0.5 {
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op %.1f -> %.1f (allowance is +5%% and +0.5)",
				cur.Name, b.AllocsPerOp, cur.AllocsPerOp))
		}
	}
	for name := range base {
		if !seen[name] {
			violations = append(violations, fmt.Sprintf(
				"%s: present in baseline but not measured (renamed or deleted? refresh the baseline)", name))
		}
	}
	sort.Strings(violations)
	return violations
}
