// Package ids implements the radix-b digit identifiers used by Tapestry for
// both node identifiers (node-IDs) and object identifiers (GUIDs), together
// with the prefix algebra the routing mesh is built on.
//
// An ID is a fixed-length string of digits drawn from an alphabet of radix
// Base. Identifiers are uniformly distributed in the namespace (Section 2 of
// the paper). The package also provides the salted multi-root derivation of
// Observation 2 and deterministic generation for reproducible simulations.
package ids

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
)

// Digit is a single symbol of an identifier, in [0, Base).
type Digit = byte

// Spec fixes the shape of the identifier space: the radix of the digit
// alphabet and the number of digits per identifier.
type Spec struct {
	Base   int // radix b of the digit alphabet; 2 <= Base <= 64
	Digits int // number of digits per identifier; >= 1
}

// DefaultSpec matches the deployed Tapestry configuration: 160-bit-style
// hexadecimal identifiers truncated to 8 digits, which is ample for the
// network sizes exercised in simulation (16^8 ≈ 4.3e9 names).
var DefaultSpec = Spec{Base: 16, Digits: 8}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Base < 2 || s.Base > 64 {
		return fmt.Errorf("ids: base %d out of range [2,64]", s.Base)
	}
	if s.Digits < 1 || s.Digits > 64 {
		return fmt.Errorf("ids: digit count %d out of range [1,64]", s.Digits)
	}
	return nil
}

// Namespace returns the number of distinct identifiers the spec admits,
// saturating at the maximum uint64 on overflow.
func (s Spec) Namespace() uint64 {
	out := uint64(1)
	for i := 0; i < s.Digits; i++ {
		next := out * uint64(s.Base)
		if next/uint64(s.Base) != out {
			return ^uint64(0)
		}
		out = next
	}
	return out
}

// ID is an identifier: a fixed-length digit string. IDs are immutable by
// convention; all operations return fresh values. The zero ID (all zero
// digits) is a valid identifier.
//
// IDs are comparable via == only when they come from the same Spec; use
// Equal for explicit comparison.
type ID struct {
	digits string // each byte is a digit value in [0, Base)
}

// Make builds an ID from explicit digit values. It panics if a digit is out
// of range for the spec; identifiers enter the system only through trusted
// constructors.
func (s Spec) Make(digits []Digit) ID {
	if len(digits) != s.Digits {
		panic(fmt.Sprintf("ids: Make with %d digits, spec wants %d", len(digits), s.Digits))
	}
	for i, d := range digits {
		if int(d) >= s.Base {
			panic(fmt.Sprintf("ids: digit %d at position %d exceeds base %d", d, i, s.Base))
		}
	}
	return ID{digits: string(digits)}
}

// FromDigits builds an ID directly from raw digit values without binding to
// a Spec. It is the trusted-decoder constructor used by the wire codec, which
// enforces digit bounds itself before calling; digits are copied.
func FromDigits(digits []Digit) ID { return ID{digits: string(digits)} }

// PrefixFromDigits builds a Prefix directly from raw digit values (the wire
// codec's counterpart of FromDigits); digits are copied.
func PrefixFromDigits(digits []Digit) Prefix { return Prefix{digits: string(digits)} }

// Random draws an identifier uniformly at random from the namespace using
// the supplied source.
func (s Spec) Random(rng *rand.Rand) ID {
	d := make([]Digit, s.Digits)
	for i := range d {
		d[i] = Digit(rng.Intn(s.Base))
	}
	return ID{digits: string(d)}
}

// FromUint64 maps v into the namespace by repeated division, most
// significant digit first. Values beyond the namespace wrap.
func (s Spec) FromUint64(v uint64) ID {
	d := make([]Digit, s.Digits)
	for i := s.Digits - 1; i >= 0; i-- {
		d[i] = Digit(v % uint64(s.Base))
		v /= uint64(s.Base)
	}
	return ID{digits: string(d)}
}

// Hash deterministically derives an identifier from an application-level
// name (e.g. an object's human name) by hashing into the namespace. This is
// how GUIDs are minted in practice.
func (s Spec) Hash(name string) ID {
	sum := sha256.Sum256([]byte(name))
	return s.fromHash(sum)
}

// Salt derives the i-th root identifier for a GUID per Observation 2: a
// pseudo-random function maps the document GUID ψ into identifiers
// ψ_0, ψ_1, ..., and root i is the surrogate of ψ_i. Salt(id, 0) == id so a
// single-root configuration is the unsalted GUID.
//
// The derivation runs SplitMix64 over the digit string: the salt index seeds
// the state, each digit folds in through the finalizer, and successive draws
// emit the salted digits. Allocation-free beyond the result and cheap enough
// to call on every locate probe.
func (s Spec) Salt(id ID, i int) ID {
	if i == 0 {
		return id
	}
	h := uint64(i) * 0x9e3779b97f4a7c15
	for j := 0; j < len(id.digits); j++ {
		h = splitmix64(h + uint64(id.digits[j]) + 1)
	}
	d := make([]Digit, s.Digits)
	for j := range d {
		h = splitmix64(h)
		// Direct modulo: the bias for bases up to 64 over a 64-bit draw is
		// below 2^-58, far under anything a simulation can observe.
		d[j] = Digit(h % uint64(s.Base))
	}
	return ID{digits: string(d)}
}

// Salted returns the full root set [ψ_0, ..., ψ_{r-1}] for a GUID: the r
// independent identifiers whose surrogates serve as the object's roots under
// an r-root availability configuration. Salted(id, 1) is just {id}.
func (s Spec) Salted(id ID, r int) []ID {
	if r < 1 {
		panic(fmt.Sprintf("ids: Salted with root count %d", r))
	}
	out := make([]ID, r)
	for i := range out {
		out[i] = s.Salt(id, i)
	}
	return out
}

// splitmix64 is the SplitMix64 finalizer (Steele et al.), the same mixer the
// stats package uses for seed streams; duplicated privately so ids stays a
// leaf package.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s Spec) fromHash(sum [32]byte) ID {
	d := make([]Digit, s.Digits)
	// Consume the hash as a stream of uint16s to keep modulo bias negligible
	// for bases up to 64.
	for i := range d {
		v := binary.BigEndian.Uint16(sum[(2*i)%30 : (2*i)%30+2])
		// Re-mix when we wrap around the hash to avoid repeating digits for
		// long identifiers.
		v ^= uint16(i) * 0x9e37
		d[i] = Digit(v % uint16(s.Base))
	}
	return ID{digits: string(d)}
}

// Len returns the number of digits in the identifier.
func (id ID) Len() int { return len(id.digits) }

// Digit returns the i-th digit (0 = most significant).
func (id ID) Digit(i int) Digit { return id.digits[i] }

// IsZero reports whether id is the zero value (no digits), which is used as
// a sentinel for "no identifier".
func (id ID) IsZero() bool { return id.digits == "" }

// Equal reports whether two identifiers have identical digit strings.
func (id ID) Equal(other ID) bool { return id.digits == other.digits }

// Less orders identifiers lexicographically by digit, which coincides with
// numeric order since all IDs have equal length.
func (id ID) Less(other ID) bool { return id.digits < other.digits }

// Compare returns -1, 0, or +1 as id is numerically below, equal to, or
// above other.
func (id ID) Compare(other ID) int { return strings.Compare(id.digits, other.digits) }

// String renders the identifier using the usual digit alphabet
// 0-9, A-Z, a-z, then '+' and '/'.
func (id ID) String() string {
	var b strings.Builder
	b.Grow(len(id.digits))
	for i := 0; i < len(id.digits); i++ {
		b.WriteByte(digitRune(id.digits[i]))
	}
	return b.String()
}

func digitRune(d Digit) byte {
	switch {
	case d < 10:
		return '0' + d
	case d < 36:
		return 'A' + d - 10
	case d < 62:
		return 'a' + d - 36
	case d == 62:
		return '+'
	default:
		return '/'
	}
}

// Parse is the inverse of String for identifiers produced under spec.
func (s Spec) Parse(text string) (ID, error) {
	if len(text) != s.Digits {
		return ID{}, fmt.Errorf("ids: parse %q: want %d digits, have %d", text, s.Digits, len(text))
	}
	d := make([]Digit, len(text))
	for i := 0; i < len(text); i++ {
		v, err := runeDigit(text[i])
		if err != nil {
			return ID{}, fmt.Errorf("ids: parse %q: %v", text, err)
		}
		if int(v) >= s.Base {
			return ID{}, fmt.Errorf("ids: parse %q: digit %c exceeds base %d", text, text[i], s.Base)
		}
		d[i] = v
	}
	return ID{digits: string(d)}, nil
}

func runeDigit(c byte) (Digit, error) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', nil
	case c >= 'A' && c <= 'Z':
		return c - 'A' + 10, nil
	case c >= 'a' && c <= 'z':
		return c - 'a' + 36, nil
	case c == '+':
		return 62, nil
	case c == '/':
		return 63, nil
	default:
		return 0, fmt.Errorf("invalid digit %q", c)
	}
}

// CommonPrefixLen returns the number of leading digits shared by a and b,
// i.e. |GreatestCommonPrefix(a, b)|.
func CommonPrefixLen(a, b ID) int {
	n := len(a.digits)
	if len(b.digits) < n {
		n = len(b.digits)
	}
	for i := 0; i < n; i++ {
		if a.digits[i] != b.digits[i] {
			return i
		}
	}
	return n
}

// HasPrefix reports whether the first p.Len() digits of id equal p.
func (id ID) HasPrefix(p Prefix) bool {
	return len(id.digits) >= len(p.digits) && id.digits[:len(p.digits)] == p.digits
}

// Prefix returns the length-n prefix of the identifier.
func (id ID) Prefix(n int) Prefix {
	if n < 0 || n > len(id.digits) {
		panic(fmt.Sprintf("ids: prefix length %d out of range for %d-digit id", n, len(id.digits)))
	}
	return Prefix{digits: id.digits[:n]}
}

// Prefix is a (possibly empty) digit string that identifies a subtree of the
// namespace: all IDs whose leading digits equal it. The empty prefix matches
// every identifier.
type Prefix struct {
	digits string
}

// EmptyPrefix matches all identifiers.
var EmptyPrefix = Prefix{}

// Len returns the number of digits in the prefix.
func (p Prefix) Len() int { return len(p.digits) }

// Digit returns the i-th digit of the prefix.
func (p Prefix) Digit(i int) Digit { return p.digits[i] }

// Extend returns the prefix p·j, one digit longer.
func (p Prefix) Extend(j Digit) Prefix {
	return Prefix{digits: p.digits + string([]byte{j})}
}

// Equal reports whether two prefixes are identical.
func (p Prefix) Equal(other Prefix) bool { return p.digits == other.digits }

// String renders the prefix with the same alphabet as ID.String, or "ε" for
// the empty prefix.
func (p Prefix) String() string {
	if len(p.digits) == 0 {
		return "ε"
	}
	var b strings.Builder
	for i := 0; i < len(p.digits); i++ {
		b.WriteByte(digitRune(p.digits[i]))
	}
	return b.String()
}

// SurrogateOrder yields the order in which Tapestry-native surrogate routing
// probes digits at a level when the desired digit's entry may be missing:
// the desired digit first, then successively higher digits modulo the base
// ("if the next digit to be routed is a 3 and there is no entry, try 4, then
// 5, and so on", Section 2.3). The returned slice has length base.
func SurrogateOrder(base int, want Digit) []Digit {
	out := make([]Digit, base)
	for i := 0; i < base; i++ {
		out[i] = Digit((int(want) + i) % base)
	}
	return out
}
