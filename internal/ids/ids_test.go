package ids

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{Base: 16, Digits: 8}, true},
		{Spec{Base: 2, Digits: 1}, true},
		{Spec{Base: 64, Digits: 64}, true},
		{Spec{Base: 1, Digits: 8}, false},
		{Spec{Base: 65, Digits: 8}, false},
		{Spec{Base: 16, Digits: 0}, false},
		{Spec{Base: 16, Digits: 65}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
}

func TestNamespace(t *testing.T) {
	if got := (Spec{Base: 2, Digits: 3}).Namespace(); got != 8 {
		t.Errorf("2^3 namespace = %d, want 8", got)
	}
	if got := (Spec{Base: 16, Digits: 8}).Namespace(); got != 1<<32 {
		t.Errorf("16^8 namespace = %d, want 2^32", got)
	}
	if got := (Spec{Base: 64, Digits: 64}).Namespace(); got != ^uint64(0) {
		t.Errorf("64^64 namespace should saturate, got %d", got)
	}
}

func TestMakeAndDigits(t *testing.T) {
	s := Spec{Base: 4, Digits: 4}
	id := s.Make([]Digit{3, 0, 2, 1})
	if id.Len() != 4 {
		t.Fatalf("Len = %d, want 4", id.Len())
	}
	want := []Digit{3, 0, 2, 1}
	for i, w := range want {
		if id.Digit(i) != w {
			t.Errorf("Digit(%d) = %d, want %d", i, id.Digit(i), w)
		}
	}
}

func TestMakePanics(t *testing.T) {
	s := Spec{Base: 4, Digits: 2}
	mustPanic(t, "wrong length", func() { s.Make([]Digit{1}) })
	mustPanic(t, "digit out of range", func() { s.Make([]Digit{1, 4}) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestStringParseRoundTrip(t *testing.T) {
	for _, spec := range []Spec{{Base: 4, Digits: 6}, {Base: 16, Digits: 8}, {Base: 64, Digits: 10}} {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 200; i++ {
			id := spec.Random(rng)
			back, err := spec.Parse(id.String())
			if err != nil {
				t.Fatalf("Parse(%q): %v", id.String(), err)
			}
			if !back.Equal(id) {
				t.Fatalf("round trip %q != %q", back, id)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	s := Spec{Base: 16, Digits: 4}
	for _, bad := range []string{"", "123", "12345", "12G.", "zzzz", "1 23"} {
		if _, err := s.Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestFromUint64(t *testing.T) {
	s := Spec{Base: 10, Digits: 4}
	if got := s.FromUint64(1234).String(); got != "1234" {
		t.Errorf("FromUint64(1234) = %s", got)
	}
	if got := s.FromUint64(10_001_234).String(); got != "1234" {
		t.Errorf("FromUint64 wrap = %s, want 1234", got)
	}
}

func TestHashDeterministic(t *testing.T) {
	s := DefaultSpec
	a, b := s.Hash("object-A"), s.Hash("object-A")
	if !a.Equal(b) {
		t.Error("Hash is not deterministic")
	}
	if s.Hash("object-A").Equal(s.Hash("object-B")) {
		t.Error("distinct names collided (vanishingly unlikely)")
	}
}

func TestHashDigitsInRange(t *testing.T) {
	for _, spec := range []Spec{{Base: 4, Digits: 16}, {Base: 16, Digits: 40}, {Base: 64, Digits: 20}} {
		for i := 0; i < 100; i++ {
			id := spec.Hash(string(rune('a' + i%26)))
			for j := 0; j < id.Len(); j++ {
				if int(id.Digit(j)) >= spec.Base {
					t.Fatalf("hash digit out of range: %d >= %d", id.Digit(j), spec.Base)
				}
			}
			_ = i
		}
	}
}

func TestSaltProperties(t *testing.T) {
	s := DefaultSpec
	rng := rand.New(rand.NewSource(7))
	id := s.Random(rng)
	if !s.Salt(id, 0).Equal(id) {
		t.Error("Salt(id, 0) must be the identity")
	}
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		seen[s.Salt(id, i).String()] = true
	}
	if len(seen) != 8 {
		t.Errorf("8 salts produced %d distinct ids", len(seen))
	}
	// Deterministic across calls.
	if !s.Salt(id, 3).Equal(s.Salt(id, 3)) {
		t.Error("Salt not deterministic")
	}
}

func TestSalted(t *testing.T) {
	s := DefaultSpec
	rng := rand.New(rand.NewSource(11))
	id := s.Random(rng)
	roots := s.Salted(id, 4)
	if len(roots) != 4 {
		t.Fatalf("Salted(id, 4) returned %d roots", len(roots))
	}
	if !roots[0].Equal(id) {
		t.Error("root 0 must be the unsalted GUID")
	}
	for i, r := range roots {
		if !r.Equal(s.Salt(id, i)) {
			t.Errorf("root %d disagrees with Salt(id, %d)", i, i)
		}
		for j := 0; j < r.Len(); j++ {
			if int(r.Digit(j)) >= s.Base {
				t.Fatalf("salted digit out of range: %d >= %d", r.Digit(j), s.Base)
			}
		}
	}
	if len(s.Salted(id, 1)) != 1 {
		t.Error("Salted(id, 1) must be the singleton root set")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	s := Spec{Base: 16, Digits: 4}
	cases := []struct {
		a, b string
		want int
	}{
		{"1234", "1234", 4},
		{"1234", "1235", 3},
		{"1234", "1334", 1},
		{"1234", "2234", 0},
		{"ABCD", "ABFF", 2},
	}
	for _, c := range cases {
		a, _ := s.Parse(c.a)
		b, _ := s.Parse(c.b)
		if got := CommonPrefixLen(a, b); got != c.want {
			t.Errorf("CommonPrefixLen(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := CommonPrefixLen(b, a); got != c.want {
			t.Errorf("CommonPrefixLen symmetric (%s,%s) = %d, want %d", c.b, c.a, got, c.want)
		}
	}
}

func TestPrefixOperations(t *testing.T) {
	s := Spec{Base: 16, Digits: 4}
	id, _ := s.Parse("4227")
	p := id.Prefix(2)
	if p.Len() != 2 || p.String() != "42" {
		t.Fatalf("Prefix(2) = %s", p)
	}
	if !id.HasPrefix(p) {
		t.Error("id must have its own prefix")
	}
	other, _ := s.Parse("4327")
	if other.HasPrefix(p) {
		t.Error("4327 should not have prefix 42")
	}
	ext := p.Extend(2)
	if ext.String() != "422" {
		t.Errorf("Extend = %s, want 422", ext)
	}
	if !id.HasPrefix(ext) {
		t.Error("4227 should have prefix 422")
	}
	if EmptyPrefix.Len() != 0 || EmptyPrefix.String() != "ε" {
		t.Error("EmptyPrefix misbehaves")
	}
	if !id.HasPrefix(EmptyPrefix) {
		t.Error("everything has the empty prefix")
	}
	mustPanic(t, "prefix too long", func() { id.Prefix(5) })
	mustPanic(t, "prefix negative", func() { id.Prefix(-1) })
}

func TestCompareAndLess(t *testing.T) {
	s := Spec{Base: 16, Digits: 4}
	a, _ := s.Parse("1000")
	b, _ := s.Parse("1001")
	if !a.Less(b) || b.Less(a) || a.Less(a) {
		t.Error("Less ordering broken")
	}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("Compare broken")
	}
}

func TestSurrogateOrder(t *testing.T) {
	got := SurrogateOrder(4, 2)
	want := []Digit{2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SurrogateOrder(4,2) = %v, want %v", got, want)
		}
	}
	if len(SurrogateOrder(16, 0)) != 16 {
		t.Error("order length must equal base")
	}
}

// Property: prefix of common length always shared; extending past the common
// prefix always differs.
func TestQuickCommonPrefixConsistency(t *testing.T) {
	s := Spec{Base: 8, Digits: 10}
	f := func(seedA, seedB int64) bool {
		a := s.Random(rand.New(rand.NewSource(seedA)))
		b := s.Random(rand.New(rand.NewSource(seedB)))
		n := CommonPrefixLen(a, b)
		if !a.HasPrefix(b.Prefix(n)) || !b.HasPrefix(a.Prefix(n)) {
			return false
		}
		if n < a.Len() && n < b.Len() {
			// The next digit must differ.
			if a.Digit(n) == b.Digit(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: SurrogateOrder is always a permutation of [0, base).
func TestQuickSurrogateOrderPermutation(t *testing.T) {
	f := func(baseRaw, wantRaw uint8) bool {
		base := 2 + int(baseRaw)%63
		want := Digit(int(wantRaw) % base)
		order := SurrogateOrder(base, want)
		if len(order) != base || order[0] != want {
			return false
		}
		seen := make([]bool, base)
		for _, d := range order {
			if int(d) >= base || seen[d] {
				return false
			}
			seen[d] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: String/Parse round-trips for random specs.
func TestQuickRoundTrip(t *testing.T) {
	f := func(baseRaw, digitsRaw uint8, seed int64) bool {
		spec := Spec{Base: 2 + int(baseRaw)%63, Digits: 1 + int(digitsRaw)%32}
		id := spec.Random(rand.New(rand.NewSource(seed)))
		back, err := spec.Parse(id.String())
		return err == nil && back.Equal(id)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRandomUniformFirstDigit(t *testing.T) {
	s := Spec{Base: 4, Digits: 6}
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, 4)
	const n = 8000
	for i := 0; i < n; i++ {
		counts[s.Random(rng).Digit(0)]++
	}
	for d, c := range counts {
		if c < n/4-300 || c > n/4+300 {
			t.Errorf("digit %d count %d deviates from uniform %d", d, c, n/4)
		}
	}
}

func TestIsZero(t *testing.T) {
	var zero ID
	if !zero.IsZero() {
		t.Error("zero value must report IsZero")
	}
	s := Spec{Base: 2, Digits: 1}
	if s.Make([]Digit{0}).IsZero() {
		t.Error("an all-zero-digit ID is not the zero value")
	}
}
