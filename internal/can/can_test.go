package can

import (
	"math/rand"
	"testing"

	"tapestry/internal/metric"
	"tapestry/internal/netsim"
)

func buildCAN(t testing.TB, n, dims int, seed int64) (*Mesh, []*Node) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	space := metric.NewRing(n * 4)
	net := netsim.New(space)
	m, err := NewMesh(net, dims)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, n)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	nodes, _, err := m.Grow(addrs, rng)
	if err != nil {
		t.Fatal(err)
	}
	return m, nodes
}

func TestZonesPartitionTorus(t *testing.T) {
	m, nodes := buildCAN(t, 32, 2, 1)
	// Zones tile the torus: total volume 1, and every random point has
	// exactly one owner.
	vol := 0.0
	for _, n := range nodes {
		z := n.Zone()
		v := 1.0
		for i := range z.Lo {
			v *= z.Hi[i] - z.Lo[i]
		}
		vol += v
	}
	if vol < 0.999 || vol > 1.001 {
		t.Fatalf("zone volumes sum to %g", vol)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		p := Point{rng.Float64(), rng.Float64()}
		owners := 0
		for _, n := range nodes {
			if n.Zone().contains(p) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("point %v has %d owners", p, owners)
		}
	}
	_ = m
}

func TestRoutingReachesOwner(t *testing.T) {
	_, nodes := buildCAN(t, 48, 2, 3)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		p := Point{rng.Float64(), rng.Float64()}
		start := nodes[rng.Intn(len(nodes))]
		owner, hops, err := start.RouteTo(p, nil)
		if err != nil {
			t.Fatalf("routing failed: %v", err)
		}
		if !owner.Zone().contains(p) {
			t.Fatal("terminal zone does not contain the target")
		}
		if hops > 40 {
			t.Errorf("route took %d hops", hops)
		}
	}
}

func TestPublishLocate(t *testing.T) {
	_, nodes := buildCAN(t, 32, 2, 5)
	if err := nodes[7].Publish("can-object", nil); err != nil {
		t.Fatal(err)
	}
	for _, c := range nodes {
		res := c.Locate("can-object", nil)
		if !res.Found {
			t.Fatalf("locate failed from %d", c.Addr())
		}
		if res.Server != nodes[7].Addr() {
			t.Fatal("wrong server")
		}
	}
	if res := nodes[0].Locate("ghost", nil); res.Found {
		t.Error("found unpublished key")
	}
}

func TestKeyHandoverOnSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	space := metric.NewRing(256)
	net := netsim.New(space)
	m, _ := NewMesh(net, 2)
	first, err := m.Bootstrap(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		key := string(rune('a' + i))
		if err := first.Publish(key, nil); err != nil {
			t.Fatal(err)
		}
	}
	nodes := []*Node{first}
	for i := 1; i <= 15; i++ {
		n, _, err := m.Join(nodes[rng.Intn(len(nodes))], netsim.Addr(i), rng)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for i := 0; i < 10; i++ {
		key := string(rune('a' + i))
		if res := nodes[12].Locate(key, nil); !res.Found {
			t.Fatalf("key %q lost after splits", key)
		}
	}
}

func TestHopsScaleAsSqrtN(t *testing.T) {
	// r=2: hops ~ (r/4)·n^{1/r} = sqrt(n)/2. For n=64 expect ~4, allow <12.
	_, nodes := buildCAN(t, 64, 2, 7)
	rng := rand.New(rand.NewSource(8))
	total := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		p := Point{rng.Float64(), rng.Float64()}
		_, hops, err := nodes[rng.Intn(len(nodes))].RouteTo(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		total += hops
	}
	if mean := float64(total) / trials; mean > 12 {
		t.Errorf("mean hops %.1f for n=64 r=2; expected ~4", mean)
	}
}

func TestNeighborCountBounded(t *testing.T) {
	_, nodes := buildCAN(t, 64, 2, 9)
	for _, n := range nodes {
		if c := n.NeighborCount(); c < 1 || c > 30 {
			t.Fatalf("neighbor count %d implausible for r=2", c)
		}
	}
}

func TestValidation(t *testing.T) {
	net := netsim.New(metric.NewRing(8))
	if _, err := NewMesh(net, 0); err == nil {
		t.Error("dims 0 accepted")
	}
	m, _ := NewMesh(net, 2)
	if _, err := m.Bootstrap(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Bootstrap(1); err == nil {
		t.Error("double bootstrap accepted")
	}
	rng := rand.New(rand.NewSource(1))
	if _, _, err := m.Join(m.Nodes()[0], 0, rng); err == nil {
		t.Error("duplicate address accepted")
	}
}

func TestNeighborsOn(t *testing.T) {
	a := Zone{Lo: Point{0, 0}, Hi: Point{0.5, 0.5}}
	b := Zone{Lo: Point{0.5, 0}, Hi: Point{1, 0.5}}
	c := Zone{Lo: Point{0.5, 0.5}, Hi: Point{1, 1}}
	if !neighborsOn(a, b) {
		t.Error("a-b should abut")
	}
	if neighborsOn(a, c) {
		t.Error("a-c touch only at a corner")
	}
	// Torus wrap: b's right edge (x=1) abuts a's left edge (x=0).
	if !neighborsOn(b, a) {
		t.Error("symmetry")
	}
}
