// Package can implements a Content-Addressable Network baseline [26]: nodes
// own zones of an r-dimensional unit torus; greedy coordinate routing takes
// O(r·n^{1/r}) hops (the Table 1 row); objects live at the zone owner of
// their hashed point. Like Chord, CAN ignores network proximity, so its
// stretch is unbounded by the object distance.
package can

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"tapestry/internal/netsim"
)

// Point is a location in the d-dimensional unit torus.
type Point []float64

// Zone is an axis-aligned box, half-open on each axis.
type Zone struct {
	Lo, Hi Point
}

// contains reports whether p falls inside the zone.
func (z Zone) contains(p Point) bool {
	for i := range p {
		if p[i] < z.Lo[i] || p[i] >= z.Hi[i] {
			return false
		}
	}
	return true
}

// center returns the zone's midpoint.
func (z Zone) center() Point {
	c := make(Point, len(z.Lo))
	for i := range c {
		c[i] = (z.Lo[i] + z.Hi[i]) / 2
	}
	return c
}

// neighborsOn reports whether a and b abut: they touch on exactly one axis
// (possibly across the torus wrap) and overlap on all others.
func neighborsOn(a, b Zone) bool {
	touch := 0
	for i := range a.Lo {
		overlap := a.Lo[i] < b.Hi[i] && b.Lo[i] < a.Hi[i]
		abut := a.Hi[i] == b.Lo[i] || b.Hi[i] == a.Lo[i] ||
			(a.Hi[i] == 1 && b.Lo[i] == 0) || (b.Hi[i] == 1 && a.Lo[i] == 0)
		switch {
		case overlap:
		case abut:
			touch++
		default:
			return false
		}
	}
	return touch == 1
}

// torusDelta is the wrapped 1-D distance.
func torusDelta(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

// torusDist is the wrapped Euclidean distance between points.
func torusDist(a, b Point) float64 {
	s := 0.0
	for i := range a {
		d := torusDelta(a[i], b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// zoneDist is the wrapped Euclidean distance from point p to the nearest
// point of zone z (0 when p is inside). Greedy forwarding on this measure —
// rather than zone centers — avoids the local minima that uneven zone sizes
// create.
func (z Zone) dist(p Point) float64 {
	s := 0.0
	for i := range p {
		if p[i] >= z.Lo[i] && p[i] < z.Hi[i] {
			continue
		}
		d := math.Min(torusDelta(p[i], z.Lo[i]), torusDelta(p[i], z.Hi[i]))
		s += d * d
	}
	return math.Sqrt(s)
}

// Node owns one zone.
type Node struct {
	mesh *Mesh
	addr netsim.Addr

	mu        sync.Mutex
	zone      Zone
	neighbors map[netsim.Addr]Zone
	store     map[string][]netsim.Addr
}

// Mesh is one CAN instance.
type Mesh struct {
	dims int
	net  *netsim.Network

	mu        sync.RWMutex
	byAddr    map[netsim.Addr]*Node
	nodes     []*Node
	nextSplit int
}

// NewMesh creates an empty CAN over the given network with the given
// dimensionality r >= 1.
func NewMesh(net *netsim.Network, dims int) (*Mesh, error) {
	if dims < 1 || dims > 10 {
		return nil, errors.New("can: dims must be in [1,10]")
	}
	return &Mesh{dims: dims, net: net, byAddr: map[netsim.Addr]*Node{}}, nil
}

// Bootstrap creates the first node owning the whole torus.
func (m *Mesh) Bootstrap(addr netsim.Addr) (*Node, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.nodes) != 0 {
		return nil, errors.New("can: already bootstrapped")
	}
	z := Zone{Lo: make(Point, m.dims), Hi: make(Point, m.dims)}
	for i := range z.Hi {
		z.Hi[i] = 1
	}
	n := &Node{mesh: m, addr: addr, zone: z,
		neighbors: map[netsim.Addr]Zone{}, store: map[string][]netsim.Addr{}}
	m.byAddr[addr] = n
	m.nodes = append(m.nodes, n)
	m.net.Attach(addr)
	return n, nil
}

// Join inserts a node: pick a random point, route to its zone owner, split
// that zone in half, and take over one half (with the stored keys falling in
// it). Returns the join's message cost.
func (m *Mesh) Join(gateway *Node, addr netsim.Addr, rng *rand.Rand) (*Node, *netsim.Cost, error) {
	cost := &netsim.Cost{}
	m.mu.Lock()
	if _, dup := m.byAddr[addr]; dup {
		m.mu.Unlock()
		return nil, cost, fmt.Errorf("can: address %d taken", addr)
	}
	m.mu.Unlock()

	p := make(Point, m.dims)
	for i := range p {
		p[i] = rng.Float64()
	}
	owner, _, err := gateway.RouteTo(p, cost)
	if err != nil {
		return nil, cost, err
	}

	owner.mu.Lock()
	// Split along the widest axis for aspect-ratio health.
	axis := 0
	width := 0.0
	for i := 0; i < m.dims; i++ {
		if w := owner.zone.Hi[i] - owner.zone.Lo[i]; w > width {
			width, axis = w, i
		}
	}
	mid := (owner.zone.Lo[axis] + owner.zone.Hi[axis]) / 2
	newZone := Zone{Lo: append(Point(nil), owner.zone.Lo...), Hi: append(Point(nil), owner.zone.Hi...)}
	newZone.Lo[axis] = mid
	owner.zone.Hi[axis] = mid

	n := &Node{mesh: m, addr: addr, zone: newZone,
		neighbors: map[netsim.Addr]Zone{}, store: map[string][]netsim.Addr{}}
	// Key handover: stored points now in the new half.
	for k, v := range owner.store {
		if newZone.contains(pointOf(k, m.dims)) {
			n.store[k] = v
			delete(owner.store, k)
		}
	}
	oldNeighbors := make(map[netsim.Addr]Zone, len(owner.neighbors))
	for a, z := range owner.neighbors {
		oldNeighbors[a] = z
	}
	ownerZone := owner.zone
	owner.mu.Unlock()

	m.mu.Lock()
	m.byAddr[addr] = n
	m.nodes = append(m.nodes, n)
	m.mu.Unlock()
	m.net.Attach(addr)

	// Rewire neighbor sets among owner, new node and the old neighborhood.
	m.link(owner.addr, ownerZone, n.addr, newZone, cost)
	for a := range oldNeighbors {
		peer := m.nodeAt(a)
		if peer == nil {
			continue
		}
		peer.mu.Lock()
		pz := peer.zone
		delete(peer.neighbors, owner.addr)
		peer.mu.Unlock()
		if neighborsOn(pz, ownerZone) {
			m.link(owner.addr, ownerZone, a, pz, cost)
		} else {
			owner.mu.Lock()
			delete(owner.neighbors, a)
			owner.mu.Unlock()
		}
		if neighborsOn(pz, newZone) {
			m.link(n.addr, newZone, a, pz, cost)
		}
	}
	return n, cost, nil
}

// link records a symmetric neighbor relation and charges the handshake.
func (m *Mesh) link(a netsim.Addr, az Zone, b netsim.Addr, bz Zone, cost *netsim.Cost) {
	na, nb := m.nodeAt(a), m.nodeAt(b)
	if na == nil || nb == nil {
		return
	}
	_ = m.net.Send(a, b, cost, false)
	na.mu.Lock()
	na.neighbors[b] = bz
	na.mu.Unlock()
	nb.mu.Lock()
	nb.neighbors[a] = az
	nb.mu.Unlock()
}

func (m *Mesh) nodeAt(a netsim.Addr) *Node {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.byAddr[a]
}

// Nodes returns all participants.
func (m *Mesh) Nodes() []*Node {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]*Node(nil), m.nodes...)
}

// RouteTo greedily forwards toward the zone containing p: each hop moves to
// the neighbor whose zone center is nearest p.
func (n *Node) RouteTo(p Point, cost *netsim.Cost) (*Node, int, error) {
	cur := n
	hops := 0
	maxHops := 64 * len(p) * intSqrt(len(cur.mesh.Nodes())*4)
	for hops <= maxHops {
		cur.mu.Lock()
		if cur.zone.contains(p) {
			cur.mu.Unlock()
			return cur, hops, nil
		}
		bestAddr := netsim.Addr(-1)
		bestD := math.Inf(1)
		for a, z := range cur.neighbors {
			d := z.dist(p)
			// Tie-break toward the zone whose center is nearest the target,
			// then by address for determinism.
			if d < bestD-1e-15 || (math.Abs(d-bestD) <= 1e-15 && bestAddr >= 0 &&
				torusDist(z.center(), p) < torusDist(cur.neighbors[bestAddr].center(), p)) {
				bestD, bestAddr = d, a
			}
		}
		cur.mu.Unlock()
		if bestAddr < 0 {
			return nil, hops, errors.New("can: greedy routing stuck")
		}
		next := cur.mesh.nodeAt(bestAddr)
		if next == nil {
			return nil, hops, errors.New("can: neighbor vanished")
		}
		if err := cur.mesh.net.RPC(cur.addr, next.addr, cost); err != nil {
			return nil, hops, err
		}
		cur = next
		hops++
	}
	return nil, hops, errors.New("can: routing did not converge")
}

func intSqrt(n int) int {
	r := int(math.Sqrt(float64(n)))
	if r < 1 {
		return 1
	}
	return r
}

// pointOf hashes a key name to a torus point.
func pointOf(key string, dims int) Point {
	sum := sha256.Sum256([]byte(key))
	p := make(Point, dims)
	for i := range p {
		v := binary.BigEndian.Uint32(sum[(4*i)%28 : (4*i)%28+4])
		p[i] = float64(v^uint32(i*0x9E3779B9)) / float64(1<<32)
	}
	return p
}

// Publish stores a replica reference at the key's zone owner.
func (n *Node) Publish(key string, cost *netsim.Cost) error {
	owner, _, err := n.RouteTo(pointOf(key, n.mesh.dims), cost)
	if err != nil {
		return err
	}
	owner.mu.Lock()
	owner.store[key] = append(owner.store[key], n.addr)
	owner.mu.Unlock()
	return nil
}

// LocateResult mirrors the other baselines.
type LocateResult struct {
	Found  bool
	Server netsim.Addr
	Hops   int
}

// Locate routes to the key's zone owner, then hops to the closest replica.
func (n *Node) Locate(key string, cost *netsim.Cost) LocateResult {
	owner, hops, err := n.RouteTo(pointOf(key, n.mesh.dims), cost)
	if err != nil {
		return LocateResult{}
	}
	owner.mu.Lock()
	reps := append([]netsim.Addr(nil), owner.store[key]...)
	owner.mu.Unlock()
	if len(reps) == 0 {
		return LocateResult{}
	}
	best := reps[0]
	for _, rp := range reps[1:] {
		if n.mesh.net.Distance(owner.addr, rp) < n.mesh.net.Distance(owner.addr, best) {
			best = rp
		}
	}
	if err := n.mesh.net.Send(owner.addr, best, cost, true); err != nil {
		return LocateResult{}
	}
	return LocateResult{Found: true, Server: best, Hops: hops + 1}
}

// NeighborCount returns the routing-state size (Table 1 space: O(r)).
func (n *Node) NeighborCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.neighbors)
}

// Addr returns the node's network address.
func (n *Node) Addr() netsim.Addr { return n.addr }

// Zone returns a copy of the node's current zone.
func (n *Node) Zone() Zone {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Zone{Lo: append(Point(nil), n.zone.Lo...), Hi: append(Point(nil), n.zone.Hi...)}
}

// Grow bootstraps (if needed) then joins nodes at the addresses, returning
// per-join message counts.
func (m *Mesh) Grow(addrs []netsim.Addr, rng *rand.Rand) ([]*Node, []int, error) {
	var nodes []*Node
	var costs []int
	for _, a := range addrs {
		m.mu.RLock()
		empty := len(m.nodes) == 0
		m.mu.RUnlock()
		if empty {
			n, err := m.Bootstrap(a)
			if err != nil {
				return nodes, costs, err
			}
			nodes = append(nodes, n)
			costs = append(costs, 0)
			continue
		}
		gw := nodes[rng.Intn(len(nodes))]
		n, cost, err := m.Join(gw, a, rng)
		if err != nil {
			return nodes, costs, err
		}
		nodes = append(nodes, n)
		costs = append(costs, cost.Messages())
	}
	return nodes, costs, nil
}
