// Package genmetric implements the static object-location scheme of
// Section 7 ("Object Location in General Metric Spaces") — the strawman
// "PRR v.0" of Table 1: polylogarithmic stretch on ARBITRARY metric spaces,
// at O(log² n) average space per node, with no load balancing and no
// dynamics.
//
// Construction (Theorem 7): for i ∈ [1, log n] and j ∈ [0, c·log n], sample
// set S_{i,j} contains each node independently with probability 2^i / n,
// with the nesting S_{i,j} ⊆ S_{i+1,j} enforced so that representatives get
// monotonically closer as i grows. S_{0,j} holds a single designated node.
// Every node stores its closest representative in each S_{i,j}; every
// representative stores the objects of all nodes that point to it.
//
// Lookup from X: for i = log n down to 0, ask X's representative in each
// S_{i,j} (all j in parallel) whether it knows the object; the first level
// with a hit returns a pointer. Level 0 always succeeds for existing
// objects, so location is deterministic.
package genmetric

import (
	"fmt"
	"math"
	"math/rand"

	"tapestry/internal/metric"
)

// Config shapes the directory.
type Config struct {
	// C scales the number of independent samples per level: j ranges over
	// [0, C·log₂ n). Theorem 7 needs C large enough that one of the C·log n
	// trials isolates a point in the intersection ball w.h.p.; C = 3 works
	// well in practice.
	C int
	// Seed drives the sampling.
	Seed int64
}

// DefaultConfig returns the parameters used in the experiments.
func DefaultConfig() Config { return Config{C: 3, Seed: 1} }

// Directory is the static data structure built over a metric space.
type Directory struct {
	space  metric.Space
	levels int // i ∈ [0, levels]; level 0 is the singleton sample
	width  int // j ∈ [0, width)

	// member[i][j] lists the nodes of S_{i,j} (S_{i,j} ⊆ S_{i+1,j}).
	member [][][]int
	// rep[i][j][x] is x's closest node in S_{i,j} (-1 if the sample is
	// empty, which only happens at small i with bad luck; lookups skip it).
	rep [][][]int

	// objects[i][j][r] maps a representative r to the object names published
	// to it at level (i, j).
	objects []map[int]map[string][]Location
}

// Location records one replica of an object.
type Location struct {
	Object string
	Node   int // the storage node
}

// Build samples the sets and computes all representative pointers. It is
// O(n² log n) time — acceptable for the static scheme, which the paper does
// not make dynamic ("We do not know how to efficiently maintain this data
// structure").
func Build(space metric.Space, cfg Config) *Directory {
	n := space.Size()
	if n < 2 {
		panic("genmetric: need at least two nodes")
	}
	if cfg.C < 1 {
		panic("genmetric: C must be >= 1")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	levels := int(math.Ceil(math.Log2(float64(n))))
	width := cfg.C * levels
	if width < 1 {
		width = 1
	}

	d := &Directory{space: space, levels: levels, width: width}
	d.member = make([][][]int, levels+1)
	d.rep = make([][][]int, levels+1)

	// Sample top-down so S_{i,j} ⊆ S_{i+1,j}: a node in S_{i+1,j} stays in
	// S_{i,j} with probability 2^i/2^(i+1) = 1/2.
	d.member[levels] = make([][]int, width)
	for j := 0; j < width; j++ {
		for x := 0; x < n; x++ {
			d.member[levels][j] = append(d.member[levels][j], x)
		}
	}
	for i := levels - 1; i >= 1; i-- {
		d.member[i] = make([][]int, width)
		for j := 0; j < width; j++ {
			for _, x := range d.member[i+1][j] {
				if rng.Float64() < 0.5 {
					d.member[i][j] = append(d.member[i][j], x)
				}
			}
		}
	}
	// Level 0: one designated node shared by all j (the paper picks a single
	// random node for S_{0,0}).
	root := rng.Intn(n)
	d.member[0] = make([][]int, width)
	for j := 0; j < width; j++ {
		d.member[0][j] = []int{root}
	}

	// Representatives: closest member of each sample from each node.
	for i := 0; i <= levels; i++ {
		d.rep[i] = make([][]int, width)
		for j := 0; j < width; j++ {
			reps := make([]int, n)
			for x := 0; x < n; x++ {
				reps[x] = closest(space, x, d.member[i][j])
			}
			d.rep[i][j] = reps
		}
	}
	d.objects = make([]map[int]map[string][]Location, levels+1)
	for i := range d.objects {
		d.objects[i] = make(map[int]map[string][]Location)
	}
	return d
}

func closest(space metric.Space, x int, members []int) int {
	best, bestD := -1, math.Inf(1)
	for _, m := range members {
		d := space.Distance(x, m)
		if d < bestD || (d == bestD && m < best) {
			best, bestD = m, d
		}
	}
	return best
}

// Levels returns the number of sample levels (log₂ n).
func (d *Directory) Levels() int { return d.levels }

// Width returns the per-level sample count (c·log₂ n).
func (d *Directory) Width() int { return d.width }

// Publish registers an object stored at node: the object is recorded at the
// node's representative in every S_{i,j} ("each node in S_{i,j} stores a
// list of all objects located at nodes which point to it").
func (d *Directory) Publish(object string, node int) {
	if node < 0 || node >= d.space.Size() {
		panic(fmt.Sprintf("genmetric: node %d out of range", node))
	}
	for i := 0; i <= d.levels; i++ {
		for j := 0; j < d.width; j++ {
			r := d.rep[i][j][node]
			if r < 0 {
				continue
			}
			byRep := d.objects[i][r]
			if byRep == nil {
				byRep = make(map[string][]Location)
				d.objects[i][r] = byRep
			}
			byRep[object] = append(byRep[object], Location{Object: object, Node: node})
		}
	}
}

// LookupResult reports a query's outcome and its cost in metric distance.
type LookupResult struct {
	Found bool
	Node  int     // a replica's storage node (the closest among those found at the winning level)
	Level int     // the sample level that answered (i*)
	Dist  float64 // total metric distance traveled by the query, including the final fetch hop
}

// Lookup finds the object from the vantage of node x: descending i from
// log n to 0, query the representative in each S_{i,j}; the round-trip to
// every probed representative is charged, which is what gives the scheme its
// O(d·log³ n) total-distance bound (Theorem 7's accounting).
func (d *Directory) Lookup(object string, x int) LookupResult {
	traveled := 0.0
	for i := d.levels; i >= 0; i-- {
		var best *Location
		bestD := math.Inf(1)
		for j := 0; j < d.width; j++ {
			r := d.rep[i][j][x]
			if r < 0 {
				continue
			}
			traveled += 2 * d.space.Distance(x, r) // query + response
			if byRep := d.objects[i][r]; byRep != nil {
				for idx := range byRep[object] {
					loc := byRep[object][idx]
					if dd := d.space.Distance(x, loc.Node); dd < bestD {
						best, bestD = &byRep[object][idx], dd
					}
				}
			}
		}
		if best != nil {
			traveled += d.space.Distance(x, best.Node)
			return LookupResult{Found: true, Node: best.Node, Level: i, Dist: traveled}
		}
	}
	return LookupResult{Found: false, Dist: traveled}
}

// SpacePerNode returns the directory-entry count per node: representative
// pointers plus stored object records, the Theorem 7 space measurement.
func (d *Directory) SpacePerNode() []int {
	n := d.space.Size()
	out := make([]int, n)
	for x := 0; x < n; x++ {
		out[x] = (d.levels + 1) * d.width // representative pointers
	}
	for i := range d.objects {
		for r, byRep := range d.objects[i] {
			for _, locs := range byRep {
				out[r] += len(locs)
			}
		}
	}
	return out
}
