package genmetric

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tapestry/internal/metric"
)

func buildDir(t testing.TB, n int, seed int64) (*Directory, metric.Space) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	space := metric.NewRandomGraph(n, 3, 10, rng)
	cfg := DefaultConfig()
	cfg.Seed = seed
	return Build(space, cfg), space
}

func TestBuildShape(t *testing.T) {
	d, _ := buildDir(t, 64, 1)
	if d.Levels() != 6 {
		t.Errorf("levels = %d, want 6 for n=64", d.Levels())
	}
	if d.Width() != 18 {
		t.Errorf("width = %d, want 3*6", d.Width())
	}
}

func TestBuildPanics(t *testing.T) {
	space := metric.NewRing(4)
	for name, f := range map[string]func(){
		"tiny": func() { Build(metric.NewRing(1), DefaultConfig()) },
		"badC": func() { Build(space, Config{C: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNesting(t *testing.T) {
	d, _ := buildDir(t, 128, 2)
	for j := 0; j < d.Width(); j++ {
		for i := 1; i < d.Levels(); i++ {
			inner := map[int]bool{}
			for _, x := range d.member[i][j] {
				inner[x] = true
			}
			outer := map[int]bool{}
			for _, x := range d.member[i+1][j] {
				outer[x] = true
			}
			for x := range inner {
				if !outer[x] {
					t.Fatalf("S_{%d,%d} not nested in S_{%d,%d}", i, j, i+1, j)
				}
			}
		}
	}
}

func TestDeterministicLocation(t *testing.T) {
	// Theorem 7's base case: level 0 has a single shared node, so every
	// published object is found from every vantage point.
	d, space := buildDir(t, 96, 3)
	rng := rand.New(rand.NewSource(4))
	for o := 0; o < 12; o++ {
		obj := fmt.Sprintf("obj-%d", o)
		server := rng.Intn(space.Size())
		d.Publish(obj, server)
		for x := 0; x < space.Size(); x += 7 {
			res := d.Lookup(obj, x)
			if !res.Found {
				t.Fatalf("object %s not found from %d", obj, x)
			}
		}
	}
}

func TestLookupMissing(t *testing.T) {
	d, _ := buildDir(t, 64, 5)
	if res := d.Lookup("never-published", 3); res.Found {
		t.Error("found a ghost")
	}
}

func TestPublishPanicsOutOfRange(t *testing.T) {
	d, _ := buildDir(t, 64, 6)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.Publish("x", 64)
}

func TestStretchPolylog(t *testing.T) {
	// The scheme's stretch on a general metric should be bounded by a
	// polylog factor (Theorem 7: distance ≲ d·log³n with the paper's
	// accounting). Verify the measured stretch is finite and far below the
	// trivial bound n.
	n := 128
	d, space := buildDir(t, n, 7)
	rng := rand.New(rand.NewSource(8))
	logn := math.Log2(float64(n))
	budget := logn * logn * logn // log³ n
	worst := 0.0
	for o := 0; o < 10; o++ {
		obj := fmt.Sprintf("s-%d", o)
		server := rng.Intn(n)
		d.Publish(obj, server)
		for trial := 0; trial < 20; trial++ {
			x := rng.Intn(n)
			if x == server {
				continue
			}
			res := d.Lookup(obj, x)
			if !res.Found {
				t.Fatalf("lookup failed")
			}
			stretch := res.Dist / space.Distance(x, server)
			if stretch > worst {
				worst = stretch
			}
		}
	}
	if worst > 3*budget {
		t.Errorf("worst stretch %.1f exceeds 3·log³n = %.1f", worst, 3*budget)
	}
}

func TestNearbyObjectsAnswerAtHighLevels(t *testing.T) {
	// The locality mechanism: a replica near the client should be discovered
	// at a high level (small ball), not by escalating to the global root.
	n := 256
	rng := rand.New(rand.NewSource(9))
	space := metric.NewRing(n)
	cfg := DefaultConfig()
	cfg.Seed = 9
	d := Build(space, cfg)
	_ = rng
	d.Publish("near", 10)
	res := d.Lookup("near", 12) // two hops away on the ring
	if !res.Found {
		t.Fatal("not found")
	}
	if res.Level < d.Levels()/2 {
		t.Errorf("nearby object answered at level %d of %d — locality not exploited", res.Level, d.Levels())
	}
}

func TestSpacePerNode(t *testing.T) {
	n := 128
	d, _ := buildDir(t, n, 10)
	for o := 0; o < 8; o++ {
		d.Publish(fmt.Sprintf("sp-%d", o), o*13%n)
	}
	space := d.SpacePerNode()
	if len(space) != n {
		t.Fatal("wrong length")
	}
	minPointers := (d.Levels() + 1) * d.Width()
	total := 0
	for _, s := range space {
		if s < minPointers {
			t.Fatalf("node with %d entries, below pointer floor %d", s, minPointers)
		}
		total += s
	}
	// Average space O(log² n): pointers dominate; assert the average is
	// within a small factor of (log n)·(c·log n).
	avg := float64(total) / float64(n)
	bound := 4 * float64(minPointers)
	if avg > bound {
		t.Errorf("average space %.1f exceeds %g", avg, bound)
	}
}
