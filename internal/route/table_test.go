package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
)

var spec = ids.Spec{Base: 4, Digits: 4}

func id(t *testing.T, s string) ids.ID {
	t.Helper()
	v, err := spec.Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func newTable(t *testing.T) *Table {
	return New(spec, mustParse("0123"), 0, 2)
}

func mustParse(s string) ids.ID {
	v, err := spec.Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

func TestNewSelfEntries(t *testing.T) {
	tb := newTable(t)
	// Owner 0123 must occupy (0,'0'), (1,'1'), (2,'2'), (3,'3').
	for l := 0; l < 4; l++ {
		e, ok := tb.Primary(l, tb.Owner().Digit(l))
		if !ok || !e.ID.Equal(tb.Owner()) || e.Distance != 0 {
			t.Fatalf("level %d: self entry missing", l)
		}
	}
	if tb.NeighborCount() != 0 {
		t.Error("fresh table should have no non-self neighbors")
	}
	if tb.Levels() != 4 || tb.Base() != 4 || tb.R() != 2 || tb.Addr() != 0 {
		t.Error("accessors")
	}
}

func TestNewPanicsOnBadR(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(spec, mustParse("0123"), 0, 0)
}

func TestAddOrderingAndEviction(t *testing.T) {
	tb := newTable(t)
	// All share prefix "0" so they qualify at level 1; digit at level 1 is '3'.
	a := Entry{ID: id(t, "0300"), Addr: 1, Distance: 5}
	b := Entry{ID: id(t, "0311"), Addr: 2, Distance: 2}
	c := Entry{ID: id(t, "0322"), Addr: 3, Distance: 9}

	if ok, _ := tb.Add(1, a); !ok {
		t.Fatal("add a")
	}
	if ok, _ := tb.Add(1, b); !ok {
		t.Fatal("add b")
	}
	set := tb.Set(1, 3)
	if len(set) != 2 || !set[0].ID.Equal(b.ID) {
		t.Fatalf("primary should be closest, got %v", set)
	}
	// c is farther than both with R=2: rejected, nothing evicted.
	ok, evicted := tb.Add(1, c)
	if ok || len(evicted) != 0 {
		t.Fatalf("far entry must not displace closer ones: ok=%v evicted=%v", ok, evicted)
	}
	// A closer entry evicts the farthest.
	d := Entry{ID: id(t, "0333"), Addr: 4, Distance: 1}
	ok, evicted = tb.Add(1, d)
	if !ok || len(evicted) != 1 || !evicted[0].ID.Equal(a.ID) {
		t.Fatalf("eviction: ok=%v evicted=%v", ok, evicted)
	}
	set = tb.Set(1, 3)
	if len(set) != 2 || !set[0].ID.Equal(d.ID) || !set[1].ID.Equal(b.ID) {
		t.Fatalf("set after eviction: %v", set)
	}
}

func TestAddRejectsWrongPrefix(t *testing.T) {
	tb := newTable(t)
	// 1xxx does not share the owner's level-1 prefix "0".
	if ok, _ := tb.Add(1, Entry{ID: id(t, "1300"), Distance: 1}); ok {
		t.Error("must reject entries that do not share the level prefix")
	}
	// But it qualifies at level 0.
	if ok, _ := tb.Add(0, Entry{ID: id(t, "1300"), Distance: 1}); !ok {
		t.Error("level-0 add should succeed")
	}
}

func TestAddUpdateInPlace(t *testing.T) {
	tb := newTable(t)
	e := Entry{ID: id(t, "0300"), Addr: 1, Distance: 5}
	tb.Add(1, e)
	e.Distance = 1
	ok, evicted := tb.Add(1, e)
	if !ok || evicted != nil {
		t.Fatal("update in place")
	}
	set := tb.Set(1, 3)
	if len(set) != 1 || set[0].Distance != 1 {
		t.Fatalf("distance not updated: %v", set)
	}
}

func TestRemove(t *testing.T) {
	tb := newTable(t)
	e := Entry{ID: id(t, "0300"), Addr: 1, Distance: 5}
	tb.Add(0, Entry{ID: id(t, "0300"), Addr: 1, Distance: 5})
	tb.Add(1, e)
	levels := tb.Remove(e.ID)
	if len(levels) != 2 {
		t.Fatalf("expected removal at 2 levels, got %v", levels)
	}
	if tb.Contains(1, e.ID) || tb.Contains(0, e.ID) {
		t.Error("entry still present")
	}
	if got := tb.Remove(e.ID); got != nil {
		t.Error("double remove should be a no-op")
	}
}

func TestHasHoleAndWouldImprove(t *testing.T) {
	tb := newTable(t)
	if !tb.HasHole(1, 2) {
		t.Error("empty set is a hole")
	}
	if tb.HasHole(1, 1) {
		t.Error("self slot is not a hole")
	}
	cand := id(t, "0200")
	if !tb.WouldImprove(1, cand, 100) {
		t.Error("any candidate improves a hole")
	}
	tb.Add(1, Entry{ID: cand, Distance: 3})
	if tb.WouldImprove(1, cand, 3) {
		t.Error("already-present entry does not improve")
	}
	other := id(t, "0211")
	if !tb.WouldImprove(1, other, 50) {
		t.Error("set below R always improves")
	}
	tb.Add(1, Entry{ID: other, Distance: 5})
	third := id(t, "0222")
	if tb.WouldImprove(1, third, 6) {
		t.Error("farther than all of a full set: no improvement")
	}
	if !tb.WouldImprove(1, third, 4) {
		t.Error("closer than the worst of a full set: improvement")
	}
	if tb.WouldImprove(1, id(t, "1222"), 0.1) {
		t.Error("wrong prefix cannot improve")
	}
}

func TestPrimarySkipsLeaving(t *testing.T) {
	tb := newTable(t)
	a := Entry{ID: id(t, "0300"), Distance: 1}
	b := Entry{ID: id(t, "0311"), Distance: 2}
	tb.Add(1, a)
	tb.Add(1, b)
	if !tb.MarkLeaving(a.ID) {
		t.Fatal("mark leaving")
	}
	p, ok := tb.Primary(1, 3)
	if !ok || !p.ID.Equal(b.ID) {
		t.Fatalf("primary should skip leaving node, got %v", p)
	}
	// If everyone is leaving we still route to someone.
	tb.MarkLeaving(b.ID)
	if _, ok := tb.Primary(1, 3); !ok {
		t.Error("must fall back to a leaving node rather than fail")
	}
	if tb.MarkLeaving(id(t, "3333")) {
		t.Error("marking an absent node should report false")
	}
}

func TestPinnedSurviveCapacity(t *testing.T) {
	tb := newTable(t)
	p := Entry{ID: id(t, "0300"), Distance: 50, Pinned: true}
	tb.Add(1, p)
	// Fill with two closer unpinned entries (R=2).
	tb.Add(1, Entry{ID: id(t, "0311"), Distance: 1})
	tb.Add(1, Entry{ID: id(t, "0322"), Distance: 2})
	set := tb.Set(1, 3)
	if len(set) != 3 {
		t.Fatalf("pinned entry must not count against R: %v", set)
	}
	pinned := tb.PinnedAt(1, 3)
	if len(pinned) != 1 || !pinned[0].ID.Equal(p.ID) {
		t.Fatalf("PinnedAt: %v", pinned)
	}
	// Unpinning re-applies the bound: the now-farthest unpinned entry goes.
	evicted := tb.Unpin(1, p.ID)
	if len(evicted) != 1 || !evicted[0].ID.Equal(p.ID) {
		t.Fatalf("unpin eviction: %v", evicted)
	}
	if len(tb.PinnedAt(1, 3)) != 0 {
		t.Error("still pinned")
	}
}

func TestPinExisting(t *testing.T) {
	tb := newTable(t)
	e := Entry{ID: id(t, "0300"), Distance: 3}
	tb.Add(1, e)
	if !tb.Pin(1, e.ID) {
		t.Fatal("pin existing")
	}
	if tb.Pin(1, id(t, "0311")) {
		t.Error("pin of absent entry must fail")
	}
	if len(tb.PinnedAt(1, 3)) != 1 {
		t.Error("pin did not stick")
	}
}

func TestOnlyNodeWithPrefix(t *testing.T) {
	tb := newTable(t)
	if !tb.OnlyNodeWithPrefix(ids.EmptyPrefix) {
		t.Error("fresh table: owner is the only known node")
	}
	tb.Add(2, Entry{ID: id(t, "0100"), Distance: 4})
	if tb.OnlyNodeWithPrefix(tb.Owner().Prefix(1)) {
		t.Error("a level-2 neighbor shares prefix 0*")
	}
	if !tb.OnlyNodeWithPrefix(tb.Owner().Prefix(3)) {
		t.Error("no known node shares 3 digits")
	}
	defer func() {
		if recover() == nil {
			t.Error("foreign prefix must panic")
		}
	}()
	tb.OnlyNodeWithPrefix(id(t, "3333").Prefix(2))
}

func TestBackpointers(t *testing.T) {
	tb := newTable(t)
	a := Entry{ID: id(t, "0300"), Addr: 7, Distance: 2}
	tb.AddBack(1, a)
	tb.AddBack(1, Entry{ID: id(t, "0311"), Addr: 8, Distance: 1})
	backs := tb.Backs(1)
	if len(backs) != 2 || backs[0].Distance != 1 {
		t.Fatalf("backs: %v", backs)
	}
	all := tb.AllBacks()
	if len(all) != 1 || len(all[1]) != 2 {
		t.Fatalf("AllBacks: %v", all)
	}
	tb.RemoveBack(1, a.ID)
	if len(tb.Backs(1)) != 1 {
		t.Error("remove back")
	}
	// Remove() also clears backpointers.
	tb.AddBack(2, a)
	tb.Remove(a.ID)
	if len(tb.Backs(2)) != 0 {
		t.Error("Remove must clear backpointers")
	}
}

func TestForEachAndDistinct(t *testing.T) {
	tb := newTable(t)
	tb.Add(0, Entry{ID: id(t, "2000"), Distance: 3})
	tb.Add(0, Entry{ID: id(t, "0300"), Distance: 2})
	tb.Add(1, Entry{ID: id(t, "0300"), Distance: 2})
	if tb.NeighborCount() != 3 {
		t.Errorf("NeighborCount = %d, want 3 (per-level links)", tb.NeighborCount())
	}
	distinct := tb.DistinctNeighbors()
	if len(distinct) != 2 {
		t.Errorf("DistinctNeighbors = %v", distinct)
	}
}

// Property: after any sequence of adds, each set is sorted by distance, has
// at most R unpinned entries, and the primary is the closest member.
func TestQuickSetInvariants(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := New(spec, spec.Random(rng), netsim.Addr(0), 1+rng.Intn(3))
		for i := 0; i < int(n); i++ {
			cand := spec.Random(rng)
			lvl := rng.Intn(spec.Digits)
			tb.Add(lvl, Entry{ID: cand, Addr: netsim.Addr(i), Distance: float64(rng.Intn(100))})
		}
		for l := 0; l < tb.Levels(); l++ {
			for d := 0; d < tb.Base(); d++ {
				set := tb.Set(l, ids.Digit(d))
				unpinned := 0
				for i, e := range set {
					if i > 0 && set[i-1].Distance > e.Distance {
						return false
					}
					if !e.ID.HasPrefix(tb.Owner().Prefix(l)) {
						return false
					}
					if e.ID.Digit(l) != ids.Digit(d) {
						return false
					}
					if !e.Pinned {
						unpinned++
					}
				}
				if unpinned > tb.R() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPinnedCount(t *testing.T) {
	tb := newTable(t)
	if tb.PinnedCount() != 0 {
		t.Fatalf("fresh table pinned count %d", tb.PinnedCount())
	}
	a, b := id(t, "1000"), id(t, "2000")
	// New pinned entry counts once.
	tb.Add(0, Entry{ID: a, Addr: 1, Distance: 5, Pinned: true})
	if tb.PinnedCount() != 1 {
		t.Fatalf("after pinned add: %d", tb.PinnedCount())
	}
	// Update-in-place of a pinned entry must not double-count.
	tb.Add(0, Entry{ID: a, Addr: 1, Distance: 4, Pinned: true})
	tb.Add(0, Entry{ID: a, Addr: 1, Distance: 3}) // unpinned update keeps the pin
	if tb.PinnedCount() != 1 {
		t.Fatalf("after updates: %d", tb.PinnedCount())
	}
	// Pin() on an existing unpinned entry counts; repeated Pin does not.
	tb.Add(0, Entry{ID: b, Addr: 2, Distance: 7})
	tb.Pin(0, b)
	tb.Pin(0, b)
	if tb.PinnedCount() != 2 {
		t.Fatalf("after Pin: %d", tb.PinnedCount())
	}
	// Unpin decrements once per flip.
	tb.Unpin(0, b)
	tb.Unpin(0, b)
	if tb.PinnedCount() != 1 {
		t.Fatalf("after Unpin: %d", tb.PinnedCount())
	}
	// Remove of a pinned entry decrements.
	tb.Remove(a)
	if tb.PinnedCount() != 0 {
		t.Fatalf("after Remove: %d", tb.PinnedCount())
	}
}

// TestSetViewAliasesStorage: SetView returns the same contents as Set,
// primary-first, without copying — mutations through Add are visible in a
// freshly taken view, and Set's copy is unaffected by later table changes.
func TestSetViewAliasesStorage(t *testing.T) {
	tb := newTable(t) // owner 0123, R=2
	tb.Add(2, Entry{ID: id(t, "0130"), Addr: 5, Distance: 3})
	view := tb.SetView(2, 3)
	cp := tb.Set(2, 3)
	if len(view) != len(cp) {
		t.Fatalf("view has %d entries, copy has %d", len(view), len(cp))
	}
	for i := range view {
		if !view[i].ID.Equal(cp[i].ID) {
			t.Fatalf("view[%d]=%v, copy[%d]=%v", i, view[i].ID, i, cp[i].ID)
		}
	}
	// A closer entry becomes the new primary; a fresh view sees it, the old
	// copy does not.
	tb.Add(2, Entry{ID: id(t, "0131"), Addr: 6, Distance: 1})
	if got := tb.SetView(2, 3); len(got) != len(cp)+1 || !got[0].ID.Equal(id(t, "0131")) {
		t.Fatalf("fresh view missed the new primary: %v", got)
	}
	if len(cp) != 1 || !cp[0].ID.Equal(id(t, "0130")) {
		t.Fatalf("Set copy mutated by a later Add: %v", cp)
	}
}

// The benchmarks below quantify the no-copy read path that usableSet (the
// per-hop routing decision) moved to: Set allocates and copies the slot on
// every probe, SetView reads in place.
func benchTableFull(b *testing.B) *Table {
	tb := New(spec, mustParse("0123"), 0, 3)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		e := Entry{ID: spec.Random(rng), Addr: netsim.Addr(i + 1), Distance: float64(rng.Intn(64))}
		for l := 0; l <= ids.CommonPrefixLen(tb.Owner(), e.ID) && l < spec.Digits; l++ {
			tb.Add(l, e)
		}
	}
	return tb
}

func BenchmarkSetCopy(b *testing.B) {
	tb := benchTableFull(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for d := 0; d < spec.Base; d++ {
			_ = tb.Set(0, ids.Digit(d))
		}
	}
}

func BenchmarkSetView(b *testing.B) {
	tb := benchTableFull(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for d := 0; d < spec.Base; d++ {
			_ = tb.SetView(0, ids.Digit(d))
		}
	}
}
