package route

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
)

// legacyTable is the pre-SoA slice-of-slices layout, kept here verbatim as a
// differential oracle: the contiguous-block Table must be observationally
// identical to it under any op stream.
type legacyTable struct {
	spec   ids.Spec
	owner  ids.ID
	r      int
	sets   [][][]Entry
	pinned int
}

func newLegacy(spec ids.Spec, owner ids.ID, addr netsim.Addr, r int) *legacyTable {
	t := &legacyTable{spec: spec, owner: owner, r: r, sets: make([][][]Entry, spec.Digits)}
	for l := 0; l < spec.Digits; l++ {
		t.sets[l] = make([][]Entry, spec.Base)
	}
	self := Entry{ID: owner, Addr: addr, Distance: 0}
	for l := 0; l < spec.Digits; l++ {
		t.sets[l][owner.Digit(l)] = []Entry{self}
	}
	return t
}

func legacyRemoveAt(set []Entry, i int) []Entry { return append(set[:i:i], set[i+1:]...) }

func legacyLastUnpinned(set []Entry) int {
	for i := len(set) - 1; i >= 0; i-- {
		if !set[i].Pinned {
			return i
		}
	}
	return -1
}

func (t *legacyTable) qualifies(level int, id ids.ID) bool {
	return level < t.spec.Digits && ids.CommonPrefixLen(t.owner, id) >= level
}

func (t *legacyTable) add(level int, e Entry) (bool, []Entry) {
	if !t.qualifies(level, e.ID) {
		return false, nil
	}
	digit := e.ID.Digit(level)
	set := t.sets[level][digit]
	for i := range set {
		if set[i].ID.Equal(e.ID) {
			pinned := set[i].Pinned || e.Pinned
			if pinned && !set[i].Pinned {
				t.pinned++
			}
			set[i] = e
			set[i].Pinned = pinned
			sortEntries(set)
			t.sets[level][digit] = set
			return true, nil
		}
	}
	if e.Pinned {
		t.pinned++
	}
	set = append(set, e)
	sortEntries(set)
	unpinned := 0
	for _, x := range set {
		if !x.Pinned {
			unpinned++
		}
	}
	if unpinned > t.r && !e.Pinned {
		last := legacyLastUnpinned(set)
		if set[last].ID.Equal(e.ID) {
			t.sets[level][digit] = legacyRemoveAt(set, last)
			return false, nil
		}
	}
	var evicted []Entry
	for unpinned > t.r {
		last := legacyLastUnpinned(set)
		evicted = append(evicted, set[last])
		set = legacyRemoveAt(set, last)
		unpinned--
	}
	t.sets[level][digit] = set
	return true, evicted
}

func (t *legacyTable) remove(id ids.ID) (levels []int) {
	for l := 0; l < t.spec.Digits; l++ {
		found := false
		for d := range t.sets[l] {
			for i := range t.sets[l][d] {
				if t.sets[l][d][i].ID.Equal(id) {
					if t.sets[l][d][i].Pinned {
						t.pinned--
					}
					t.sets[l][d] = legacyRemoveAt(t.sets[l][d], i)
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if found {
			levels = append(levels, l)
		}
	}
	return levels
}

func (t *legacyTable) pin(level int, id ids.ID) bool {
	digit := id.Digit(level)
	for i := range t.sets[level][digit] {
		if t.sets[level][digit][i].ID.Equal(id) {
			if !t.sets[level][digit][i].Pinned {
				t.pinned++
			}
			t.sets[level][digit][i].Pinned = true
			return true
		}
	}
	return false
}

func (t *legacyTable) unpin(level int, id ids.ID) (evicted []Entry) {
	digit := id.Digit(level)
	set := t.sets[level][digit]
	for i := range set {
		if set[i].ID.Equal(id) {
			if set[i].Pinned {
				t.pinned--
			}
			set[i].Pinned = false
		}
	}
	unpinned := 0
	for _, x := range set {
		if !x.Pinned {
			unpinned++
		}
	}
	for unpinned > t.r {
		last := legacyLastUnpinned(set)
		evicted = append(evicted, set[last])
		set = legacyRemoveAt(set, last)
		unpinned--
	}
	t.sets[level][digit] = set
	return evicted
}

func (t *legacyTable) markLeaving(id ids.ID) bool {
	found := false
	for l := 0; l < t.spec.Digits; l++ {
		for d := range t.sets[l] {
			for i := range t.sets[l][d] {
				if t.sets[l][d][i].ID.Equal(id) {
					t.sets[l][d][i].Leaving = true
					found = true
				}
			}
			sortEntries(t.sets[l][d])
		}
	}
	return found
}

// render serializes every slot byte-for-byte comparably.
func renderEntries(w *strings.Builder, set []Entry) {
	for _, e := range set {
		fmt.Fprintf(w, "{%v a%d d%.6f p%v l%v}", e.ID, e.Addr, e.Distance, e.Pinned, e.Leaving)
	}
}

func (t *legacyTable) render() string {
	var w strings.Builder
	for l := 0; l < t.spec.Digits; l++ {
		for d := 0; d < t.spec.Base; d++ {
			fmt.Fprintf(&w, "[%d,%d]", l, d)
			renderEntries(&w, t.sets[l][d])
			w.WriteByte('\n')
		}
	}
	fmt.Fprintf(&w, "pinned=%d\n", t.pinned)
	return w.String()
}

func renderTable(t *Table) string {
	var w strings.Builder
	for l := 0; l < t.Levels(); l++ {
		for d := 0; d < t.Base(); d++ {
			fmt.Fprintf(&w, "[%d,%d]", l, d)
			renderEntries(&w, t.SetView(l, ids.Digit(d)))
			w.WriteByte('\n')
		}
	}
	fmt.Fprintf(&w, "pinned=%d\n", t.PinnedCount())
	return w.String()
}

func renderSlice(set []Entry) string {
	var w strings.Builder
	renderEntries(&w, set)
	return w.String()
}

// nextHopOracle is the minimal primary-pick routing decision both layouts
// must agree on: the first non-leaving (else first) entry of the slot.
func primaryOf(set []Entry) (Entry, bool) {
	for _, e := range set {
		if !e.Leaving {
			return e, true
		}
	}
	if len(set) > 0 {
		return set[0], true
	}
	return Entry{}, false
}

// TestDifferentialAgainstLegacyLayout drives the old [][][]Entry oracle and
// the contiguous SoA table through an identical seeded op stream and demands
// byte-identical contents and identical return values after every op.
func TestDifferentialAgainstLegacyLayout(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		owner := spec.Random(rng)
		tbl := New(spec, owner, 7, 2)
		ora := newLegacy(spec, owner, 7, 2)

		// A fixed universe of candidate IDs keeps Remove/Pin hitting entries
		// that actually exist often enough to exercise every path.
		universe := make([]ids.ID, 48)
		for i := range universe {
			// Bias toward sharing a prefix with the owner so deep levels fill.
			v := spec.Random(rng)
			if cut := rng.Intn(spec.Digits + 1); cut > 0 {
				digs := make([]ids.Digit, spec.Digits)
				for j := 0; j < spec.Digits; j++ {
					if j < cut {
						digs[j] = owner.Digit(j)
					} else {
						digs[j] = v.Digit(j)
					}
				}
				v = spec.Make(digs)
			}
			universe[i] = v
		}

		for op := 0; op < 4000; op++ {
			id := universe[rng.Intn(len(universe))]
			level := rng.Intn(spec.Digits)
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // Add
				e := Entry{
					ID:       id,
					Addr:     netsim.Addr(rng.Intn(100)),
					Distance: float64(rng.Intn(50)) / 4,
					Pinned:   rng.Intn(8) == 0,
				}
				ga, ge := tbl.Add(level, e)
				wa, we := ora.add(level, e)
				if ga != wa || renderSlice(ge) != renderSlice(we) {
					t.Fatalf("seed %d op %d: Add mismatch: got (%v,%s) want (%v,%s)",
						seed, op, ga, renderSlice(ge), wa, renderSlice(we))
				}
			case 5: // Remove
				gl := tbl.Remove(id)
				wl := ora.remove(id)
				if fmt.Sprint(gl) != fmt.Sprint(wl) {
					t.Fatalf("seed %d op %d: Remove levels: got %v want %v", seed, op, gl, wl)
				}
			case 6: // Pin
				if tbl.Pin(level, id) != ora.pin(level, id) {
					t.Fatalf("seed %d op %d: Pin mismatch", seed, op)
				}
			case 7: // Unpin
				ge := tbl.Unpin(level, id)
				we := ora.unpin(level, id)
				if renderSlice(ge) != renderSlice(we) {
					t.Fatalf("seed %d op %d: Unpin evictions: got %s want %s",
						seed, op, renderSlice(ge), renderSlice(we))
				}
			case 8: // MarkLeaving
				if tbl.MarkLeaving(id) != ora.markLeaving(id) {
					t.Fatalf("seed %d op %d: MarkLeaving mismatch", seed, op)
				}
			case 9: // read-only probes: SetView + primary (nextHop's pick)
				d := ids.Digit(rng.Intn(spec.Base))
				if renderSlice(tbl.SetView(level, d)) != renderSlice(ora.sets[level][d]) {
					t.Fatalf("seed %d op %d: SetView(%d,%d) diverged", seed, op, level, d)
				}
				ge, gok := tbl.Primary(level, d)
				we, wok := primaryOf(ora.sets[level][d])
				if gok != wok || (gok && renderSlice([]Entry{ge}) != renderSlice([]Entry{we})) {
					t.Fatalf("seed %d op %d: Primary(%d,%d) diverged", seed, op, level, d)
				}
			}
			if got, want := renderTable(tbl), ora.render(); got != want {
				t.Fatalf("seed %d op %d: tables diverged:\ngot:\n%s\nwant:\n%s", seed, op, got, want)
			}
		}
	}
}

// TestRangeViewMatchesSetViews pins RangeView's contract: the level band is
// exactly the concatenation of its SetViews in (level, digit) order.
func TestRangeViewMatchesSetViews(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	owner := spec.Random(rng)
	tbl := New(spec, owner, 0, 3)
	for i := 0; i < 200; i++ {
		v := spec.Random(rng)
		tbl.Add(ids.CommonPrefixLen(owner, v), Entry{ID: v, Addr: netsim.Addr(i), Distance: rng.Float64()})
	}
	for lo := 0; lo <= spec.Digits; lo++ {
		for hi := lo; hi <= spec.Digits; hi++ {
			var want []Entry
			for l := lo; l < hi; l++ {
				for d := 0; d < spec.Base; d++ {
					want = append(want, tbl.SetView(l, ids.Digit(d))...)
				}
			}
			if renderSlice(tbl.RangeView(lo, hi)) != renderSlice(want) {
				t.Fatalf("RangeView(%d,%d) != concatenated SetViews", lo, hi)
			}
		}
	}
}

// TestSetViewConcurrentReaders hammers the contiguous block with parallel
// read-only scans (SetView, RangeView, Primary, ForEachNeighbor) under
// -race: the read path must not mutate or lazily materialize anything.
func TestSetViewConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	owner := spec.Random(rng)
	tbl := New(spec, owner, 0, 3)
	for i := 0; i < 100; i++ {
		v := spec.Random(rng)
		tbl.Add(ids.CommonPrefixLen(owner, v), Entry{ID: v, Addr: netsim.Addr(i), Distance: rng.Float64()})
	}
	want := renderTable(tbl)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				if renderTable(tbl) != want {
					t.Error("concurrent read diverged")
					return
				}
				tbl.RangeView(0, tbl.Levels())
				tbl.ForEachNeighbor(func(int, Entry) {})
				tbl.OnlyNodeWithPrefix(owner.Prefix(0))
				for l := 0; l < tbl.Levels(); l++ {
					tbl.Primary(l, owner.Digit(l))
				}
			}
		}()
	}
	wg.Wait()
}

// TestAppendBacksSortedByID pins the deterministic-iteration helper: IDs
// ascend, content matches the Backs map, dst is extended in place.
func TestAppendBacksSortedByID(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	owner := spec.Random(rng)
	tbl := New(spec, owner, 0, 2)
	for i := 0; i < 30; i++ {
		v := spec.Random(rng)
		tbl.AddBack(1, Entry{ID: v, Addr: netsim.Addr(i), Distance: rng.Float64()})
	}
	dst := make([]Entry, 0, 32)
	dst = append(dst, Entry{ID: owner}) // pre-existing prefix must survive
	dst = tbl.AppendBacks(dst, 1)
	if !dst[0].ID.Equal(owner) {
		t.Fatal("AppendBacks clobbered the dst prefix")
	}
	tail := dst[1:]
	if len(tail) != tbl.BackCount(1) {
		t.Fatalf("got %d backs, want %d", len(tail), tbl.BackCount(1))
	}
	if !sort.SliceIsSorted(tail, func(i, j int) bool { return tail[i].ID.Less(tail[j].ID) }) {
		t.Fatal("AppendBacks tail not in ascending ID order")
	}
	byDist := tbl.Backs(1)
	if len(byDist) != len(tail) {
		t.Fatal("AppendBacks and Backs disagree on membership")
	}
}
