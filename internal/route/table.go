// Package route implements the Tapestry neighbor table: for every prefix β
// of the owning node's ID and every digit j, the set N_{β,j} of up to R
// closest nodes whose IDs share the prefix β·j (Section 2.1). The first
// (closest) member of each set is the primary neighbor; the rest are
// secondary neighbors kept for fault-resilience. The table also stores
// backpointers (who points at me, per level) and the pinned-pointer state
// used by the simultaneous-insertion protocol of Section 4.4.
//
// A Table is not internally synchronized: the owning node serializes access
// under its own lock, which is how per-node state is guarded everywhere in
// this codebase.
package route

import (
	"fmt"
	"sort"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
)

// Entry describes one neighbor link.
type Entry struct {
	ID       ids.ID
	Addr     netsim.Addr
	Distance float64 // metric distance from the table owner
	Pinned   bool    // pinned pointer: a mid-insertion node that must be retained and multicast to (Section 4.4)
	Leaving  bool    // the neighbor announced a voluntary departure (Section 5.1)
}

// Table is one node's complete routing state.
type Table struct {
	spec  ids.Spec
	owner ids.ID
	addr  netsim.Addr
	r     int

	// sets[level][digit] is N_{β,j} with β = owner.Prefix(level), j = digit,
	// sorted by (distance, id). All pinned entries are retained regardless
	// of R; at most r unpinned entries are kept.
	sets [][][]Entry

	// back[level] holds backpointers: nodes that have the owner in their
	// level-`level` neighbor sets, keyed by ID string for determinism.
	back []map[string]Entry

	// pinned counts pinned entry instances across all sets, kept in sync by
	// Add/Pin/Unpin/Remove so PinnedCount is O(1).
	pinned int
}

// New creates an empty table for a node with the given ID and address. r is
// the neighbor-set capacity R >= 1 from Section 2.1 (the paper's deployed
// configuration uses a primary plus two backups, r = 3). The owner itself is
// inserted into every set it qualifies for, so routing can always "stay
// put"; this realizes surrogate routing's termination rule.
func New(spec ids.Spec, owner ids.ID, addr netsim.Addr, r int) *Table {
	if r < 1 {
		panic("route: neighbor-set capacity R must be >= 1")
	}
	t := &Table{
		spec:  spec,
		owner: owner,
		addr:  addr,
		r:     r,
		sets:  make([][][]Entry, spec.Digits),
		back:  make([]map[string]Entry, spec.Digits),
	}
	for l := 0; l < spec.Digits; l++ {
		t.sets[l] = make([][]Entry, spec.Base)
		t.back[l] = make(map[string]Entry)
	}
	self := Entry{ID: owner, Addr: addr, Distance: 0}
	for l := 0; l < spec.Digits; l++ {
		t.sets[l][owner.Digit(l)] = []Entry{self}
	}
	return t
}

// Owner returns the table owner's ID.
func (t *Table) Owner() ids.ID { return t.owner }

// Addr returns the table owner's network address.
func (t *Table) Addr() netsim.Addr { return t.addr }

// R returns the neighbor-set capacity.
func (t *Table) R() int { return t.r }

// Levels returns the number of routing-table levels (= digits per ID).
func (t *Table) Levels() int { return t.spec.Digits }

// Base returns the digit radix.
func (t *Table) Base() int { return t.spec.Base }

// qualifies reports whether id may appear at the given level: it must share
// the owner's first `level` digits (so that it is a (β, j) node for β the
// owner's level-length prefix).
func (t *Table) qualifies(level int, id ids.ID) bool {
	return level < t.spec.Digits && ids.CommonPrefixLen(t.owner, id) >= level
}

// PinnedCount returns the number of pinned entry instances across all
// slots — a fast-path check so multicasts can skip the in-flight-inserter
// scan entirely when no insertion is pinned here.
func (t *Table) PinnedCount() int { return t.pinned }

// Add inserts a neighbor at the given level, keeping the set sorted by
// distance and bounded by R (pinned entries never count against nor get
// evicted by the bound). It returns whether the entry is now present and
// any unpinned entries evicted to make room (the caller must retract its
// backpointers at those nodes). Re-adding an existing ID updates it in
// place.
func (t *Table) Add(level int, e Entry) (added bool, evicted []Entry) {
	if !t.qualifies(level, e.ID) {
		return false, nil
	}
	digit := e.ID.Digit(level)
	set := t.sets[level][digit]

	// Update in place if already present.
	for i := range set {
		if set[i].ID.Equal(e.ID) {
			pinned := set[i].Pinned || e.Pinned
			if pinned && !set[i].Pinned {
				t.pinned++
			}
			set[i] = e
			set[i].Pinned = pinned
			sortEntries(set)
			t.sets[level][digit] = set
			return true, nil
		}
	}

	if e.Pinned {
		t.pinned++
	}
	set = append(set, e)
	sortEntries(set)

	// Enforce capacity over unpinned entries only.
	unpinned := 0
	for _, x := range set {
		if !x.Pinned {
			unpinned++
		}
	}
	if unpinned > t.r && !e.Pinned {
		// If e itself is the farthest unpinned entry it simply does not fit.
		last := lastUnpinned(set)
		if set[last].ID.Equal(e.ID) {
			t.sets[level][digit] = removeAt(set, last)
			return false, nil
		}
	}
	for unpinned > t.r {
		last := lastUnpinned(set)
		evicted = append(evicted, set[last])
		set = removeAt(set, last)
		unpinned--
	}
	t.sets[level][digit] = set
	return true, evicted
}

func sortEntries(set []Entry) {
	sort.Slice(set, func(i, j int) bool {
		if set[i].Distance != set[j].Distance {
			return set[i].Distance < set[j].Distance
		}
		return set[i].ID.Less(set[j].ID)
	})
}

func lastUnpinned(set []Entry) int {
	for i := len(set) - 1; i >= 0; i-- {
		if !set[i].Pinned {
			return i
		}
	}
	return -1
}

func removeAt(set []Entry, i int) []Entry {
	return append(set[:i:i], set[i+1:]...)
}

// Remove deletes the identified neighbor from every set and backpointer map
// it appears in, returning the levels at which a forward link was removed.
func (t *Table) Remove(id ids.ID) (levels []int) {
	for l := 0; l < t.spec.Digits; l++ {
		found := false
		for d := range t.sets[l] {
			for i := range t.sets[l][d] {
				if t.sets[l][d][i].ID.Equal(id) {
					if t.sets[l][d][i].Pinned {
						t.pinned--
					}
					t.sets[l][d] = removeAt(t.sets[l][d], i)
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if found {
			levels = append(levels, l)
		}
		delete(t.back[l], keyOf(id))
	}
	return levels
}

// Set returns a copy of N_{β,j} at (level, digit), primary first.
func (t *Table) Set(level int, digit ids.Digit) []Entry {
	src := t.sets[level][digit]
	out := make([]Entry, len(src))
	copy(out, src)
	return out
}

// SetView returns N_{β,j} at (level, digit), primary first, WITHOUT copying:
// the returned slice aliases the table's own storage. The caller must hold
// the owning node's lock, must treat the slice as read-only, and must not
// retain it across any table mutation. This is the allocation-free read path
// for per-hop routing decisions, where Set's defensive copy dominated the
// routing cost.
func (t *Table) SetView(level int, digit ids.Digit) []Entry {
	return t.sets[level][digit]
}

// Primary returns the closest non-leaving neighbor at (level, digit). If all
// entries are marked leaving it falls back to the closest entry, so routing
// keeps working during a graceful departure window ("incoming queries still
// route normally to A while it is marked leaving").
func (t *Table) Primary(level int, digit ids.Digit) (Entry, bool) {
	set := t.sets[level][digit]
	for _, e := range set {
		if !e.Leaving {
			return e, true
		}
	}
	if len(set) > 0 {
		return set[0], true
	}
	return Entry{}, false
}

// HasHole reports whether N_{β,j} is empty — a "hole" in the paper's
// vocabulary (Property 1 demands a hole only exists when no (β, j) node
// exists anywhere).
func (t *Table) HasHole(level int, digit ids.Digit) bool {
	return len(t.sets[level][digit]) == 0
}

// Contains reports whether id is a forward neighbor at the given level.
func (t *Table) Contains(level int, id ids.ID) bool {
	digit := id.Digit(level)
	for _, e := range t.sets[level][digit] {
		if e.ID.Equal(id) {
			return true
		}
	}
	return false
}

// WouldImprove reports whether adding (id, distance) at level would either
// fill a hole or displace a strictly farther unpinned member of a full set;
// i.e. whether the candidate belongs in the table under Property 2.
func (t *Table) WouldImprove(level int, id ids.ID, distance float64) bool {
	if !t.qualifies(level, id) || t.Contains(level, id) {
		return false
	}
	set := t.sets[level][id.Digit(level)]
	if len(set) == 0 {
		return true
	}
	unpinned := 0
	for _, e := range set {
		if !e.Pinned {
			unpinned++
		}
	}
	if unpinned < t.r {
		return true
	}
	last := set[lastUnpinned(set)]
	return distance < last.Distance
}

// MarkLeaving flags id wherever it appears (Section 5.1 first-phase delete
// notification). It reports whether any link was found.
func (t *Table) MarkLeaving(id ids.ID) bool {
	found := false
	for l := 0; l < t.spec.Digits; l++ {
		for d := range t.sets[l] {
			for i := range t.sets[l][d] {
				if t.sets[l][d][i].ID.Equal(id) {
					t.sets[l][d][i].Leaving = true
					found = true
				}
			}
			sortEntries(t.sets[l][d])
		}
	}
	return found
}

// Pin marks the identified entry at level as a pinned pointer; Unpin clears
// the mark and re-applies the capacity bound (evicting overflow, returned to
// the caller for backpointer cleanup).
func (t *Table) Pin(level int, id ids.ID) bool {
	digit := id.Digit(level)
	for i := range t.sets[level][digit] {
		if t.sets[level][digit][i].ID.Equal(id) {
			if !t.sets[level][digit][i].Pinned {
				t.pinned++
			}
			t.sets[level][digit][i].Pinned = true
			return true
		}
	}
	return false
}

// Unpin clears a pinned pointer and enforces R, returning evicted entries.
func (t *Table) Unpin(level int, id ids.ID) (evicted []Entry) {
	digit := id.Digit(level)
	set := t.sets[level][digit]
	for i := range set {
		if set[i].ID.Equal(id) {
			if set[i].Pinned {
				t.pinned--
			}
			set[i].Pinned = false
		}
	}
	unpinned := 0
	for _, x := range set {
		if !x.Pinned {
			unpinned++
		}
	}
	for unpinned > t.r {
		last := lastUnpinned(set)
		evicted = append(evicted, set[last])
		set = removeAt(set, last)
		unpinned--
	}
	t.sets[level][digit] = set
	return evicted
}

// PinnedAt returns the pinned entries of N_{β,j}.
func (t *Table) PinnedAt(level int, digit ids.Digit) []Entry {
	var out []Entry
	for _, e := range t.sets[level][digit] {
		if e.Pinned {
			out = append(out, e)
		}
	}
	return out
}

// OnlyNodeWithPrefix reports whether, as far as this table knows, the owner
// is the only node whose ID starts with p (which must be a prefix of the
// owner). Because every entry at level l >= p.Len() shares the owner's
// first l digits, scanning those rows for any non-self entry is a complete
// local test whenever R >= 2 (the owner occupies at most one slot per set).
func (t *Table) OnlyNodeWithPrefix(p ids.Prefix) bool {
	if !t.owner.HasPrefix(p) {
		panic(fmt.Sprintf("route: prefix %v is not a prefix of owner %v", p, t.owner))
	}
	for l := p.Len(); l < t.spec.Digits; l++ {
		for d := range t.sets[l] {
			for _, e := range t.sets[l][d] {
				if !e.ID.Equal(t.owner) {
					return false
				}
			}
		}
	}
	return true
}

// ForEachNeighbor invokes fn once per distinct (level, entry) forward link,
// excluding the owner's self entries.
func (t *Table) ForEachNeighbor(fn func(level int, e Entry)) {
	for l := 0; l < t.spec.Digits; l++ {
		for d := range t.sets[l] {
			for _, e := range t.sets[l][d] {
				if !e.ID.Equal(t.owner) {
					fn(l, e)
				}
			}
		}
	}
}

// NeighborCount returns the number of forward links excluding self entries
// (the "space" measurement of Table 1).
func (t *Table) NeighborCount() int {
	n := 0
	t.ForEachNeighbor(func(int, Entry) { n++ })
	return n
}

// DistinctNeighbors returns each distinct neighbor (excluding self) once,
// at its smallest level of appearance.
func (t *Table) DistinctNeighbors() []Entry {
	seen := map[string]Entry{}
	t.ForEachNeighbor(func(_ int, e Entry) {
		if _, ok := seen[keyOf(e.ID)]; !ok {
			seen[keyOf(e.ID)] = e
		}
	})
	out := make([]Entry, 0, len(seen))
	for _, e := range seen {
		out = append(out, e)
	}
	sortEntries(out)
	return out
}

func keyOf(id ids.ID) string { return id.String() }

// AddBack records that `e` holds the owner in its level-`level` neighbor
// sets.
func (t *Table) AddBack(level int, e Entry) { t.back[level][keyOf(e.ID)] = e }

// RemoveBack removes a backpointer.
func (t *Table) RemoveBack(level int, id ids.ID) { delete(t.back[level], keyOf(id)) }

// Backs returns the backpointers at a level, sorted by distance for
// determinism.
func (t *Table) Backs(level int) []Entry {
	out := make([]Entry, 0, len(t.back[level]))
	for _, e := range t.back[level] {
		out = append(out, e)
	}
	sortEntries(out)
	return out
}

// AllBacks returns every (level, backpointer) pair.
func (t *Table) AllBacks() map[int][]Entry {
	out := make(map[int][]Entry, len(t.back))
	for l := range t.back {
		if len(t.back[l]) > 0 {
			out[l] = t.Backs(l)
		}
	}
	return out
}
