// Package route implements the Tapestry neighbor table: for every prefix β
// of the owning node's ID and every digit j, the set N_{β,j} of up to R
// closest nodes whose IDs share the prefix β·j (Section 2.1). The first
// (closest) member of each set is the primary neighbor; the rest are
// secondary neighbors kept for fault-resilience. The table also stores
// backpointers (who points at me, per level) and the pinned-pointer state
// used by the simultaneous-insertion protocol of Section 4.4.
//
// Storage is struct-of-arrays: every neighbor set lives in ONE contiguous
// []Entry block, indexed by slot = level*base + digit through a compressed
// offset array (off[slot]..off[slot+1] brackets N_{β,j}). Per-hop scans —
// nextHop across a level's digits, multicast fan-out, whole-table folds —
// walk sequential memory instead of chasing [][][]Entry spines, and a whole
// level band is itself one contiguous range. Offsets rather than fixed-width
// slots keep a 100k-node mesh's tables compact: slots hold a handful of
// entries while level×base is large (112 slots at the planetary spec), so a
// fixed R-capacity slab would waste ~10× the memory this layout touches.
//
// A Table is not internally synchronized: the owning node serializes access
// under its own lock, which is how per-node state is guarded everywhere in
// this codebase.
package route

import (
	"fmt"
	"sort"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
)

// Entry describes one neighbor link.
type Entry struct {
	ID       ids.ID
	Addr     netsim.Addr
	Distance float64 // metric distance from the table owner
	Pinned   bool    // pinned pointer: a mid-insertion node that must be retained and multicast to (Section 4.4)
	Leaving  bool    // the neighbor announced a voluntary departure (Section 5.1)
}

// Table is one node's complete routing state.
type Table struct {
	spec  ids.Spec
	owner ids.ID
	addr  netsim.Addr
	r     int
	slots int // spec.Digits * spec.Base

	// ents holds every neighbor set back to back, grouped by slot index
	// (level*base + digit), each set sorted by (distance, id). All pinned
	// entries are retained regardless of R; at most r unpinned entries are
	// kept per set.
	ents []Entry
	// off[s]..off[s+1] brackets slot s within ents; len(off) == slots+1.
	off []int32

	// back[level] holds backpointers: nodes that have the owner in their
	// level-`level` neighbor sets, keyed by comparable ID (no String()
	// round-trips on maintenance paths).
	back []map[ids.ID]Entry

	// pinned counts pinned entry instances across all sets, kept in sync by
	// Add/Pin/Unpin/Remove so PinnedCount is O(1).
	pinned int
}

// New creates an empty table for a node with the given ID and address. r is
// the neighbor-set capacity R >= 1 from Section 2.1 (the paper's deployed
// configuration uses a primary plus two backups, r = 3). The owner itself is
// inserted into every set it qualifies for, so routing can always "stay
// put"; this realizes surrogate routing's termination rule.
func New(spec ids.Spec, owner ids.ID, addr netsim.Addr, r int) *Table {
	if r < 1 {
		panic("route: neighbor-set capacity R must be >= 1")
	}
	t := &Table{
		spec:  spec,
		owner: owner,
		addr:  addr,
		r:     r,
		slots: spec.Digits * spec.Base,
		ents:  make([]Entry, 0, spec.Digits*(r+1)),
		off:   make([]int32, spec.Digits*spec.Base+1),
		back:  make([]map[ids.ID]Entry, spec.Digits),
	}
	for l := 0; l < spec.Digits; l++ {
		t.back[l] = make(map[ids.ID]Entry)
	}
	// Self entries occupy ascending slot indices (one per level), so the CSR
	// block can be built in a single forward pass.
	self := Entry{ID: owner, Addr: addr, Distance: 0}
	cur := 0
	for l := 0; l < spec.Digits; l++ {
		s := l*spec.Base + int(owner.Digit(l))
		for ; cur <= s; cur++ {
			t.off[cur] = int32(len(t.ents))
		}
		t.ents = append(t.ents, self)
	}
	for ; cur <= t.slots; cur++ {
		t.off[cur] = int32(len(t.ents))
	}
	return t
}

// Owner returns the table owner's ID.
func (t *Table) Owner() ids.ID { return t.owner }

// Addr returns the table owner's network address.
func (t *Table) Addr() netsim.Addr { return t.addr }

// R returns the neighbor-set capacity.
func (t *Table) R() int { return t.r }

// Levels returns the number of routing-table levels (= digits per ID).
func (t *Table) Levels() int { return t.spec.Digits }

// Base returns the digit radix.
func (t *Table) Base() int { return t.spec.Base }

func (t *Table) slot(level int, digit ids.Digit) int {
	return level*t.spec.Base + int(digit)
}

// qualifies reports whether id may appear at the given level: it must share
// the owner's first `level` digits (so that it is a (β, j) node for β the
// owner's level-length prefix).
func (t *Table) qualifies(level int, id ids.ID) bool {
	return level < t.spec.Digits && ids.CommonPrefixLen(t.owner, id) >= level
}

// PinnedCount returns the number of pinned entry instances across all
// slots — a fast-path check so multicasts can skip the in-flight-inserter
// scan entirely when no insertion is pinned here.
func (t *Table) PinnedCount() int { return t.pinned }

func entryLess(a, b Entry) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.ID.Less(b.ID)
}

// insertSorted places e into slot s at its (distance, id) rank, shifting the
// tail of the block and the downstream offsets.
func (t *Table) insertSorted(s int, e Entry) {
	lo, hi := int(t.off[s]), int(t.off[s+1])
	pos := hi
	for i := lo; i < hi; i++ {
		if entryLess(e, t.ents[i]) {
			pos = i
			break
		}
	}
	t.ents = append(t.ents, Entry{})
	copy(t.ents[pos+1:], t.ents[pos:])
	t.ents[pos] = e
	for j := s + 1; j <= t.slots; j++ {
		t.off[j]++
	}
}

// removeIdx deletes ents[i] from slot s, closing the gap.
func (t *Table) removeIdx(s, i int) {
	copy(t.ents[i:], t.ents[i+1:])
	t.ents = t.ents[:len(t.ents)-1]
	for j := s + 1; j <= t.slots; j++ {
		t.off[j]--
	}
}

// lastUnpinnedIdx returns the block index of the farthest unpinned entry of
// slot s, or -1.
func (t *Table) lastUnpinnedIdx(s int) int {
	for i := int(t.off[s+1]) - 1; i >= int(t.off[s]); i-- {
		if !t.ents[i].Pinned {
			return i
		}
	}
	return -1
}

// Add inserts a neighbor at the given level, keeping the set sorted by
// distance and bounded by R (pinned entries never count against nor get
// evicted by the bound). It returns whether the entry is now present and
// any unpinned entries evicted to make room (the caller must retract its
// backpointers at those nodes). Re-adding an existing ID updates it in
// place.
func (t *Table) Add(level int, e Entry) (added bool, evicted []Entry) {
	if !t.qualifies(level, e.ID) {
		return false, nil
	}
	s := t.slot(level, e.ID.Digit(level))

	// Update in place if already present (re-rank, since the distance may
	// have changed; a pin is sticky).
	for i := int(t.off[s]); i < int(t.off[s+1]); i++ {
		if t.ents[i].ID.Equal(e.ID) {
			pinned := t.ents[i].Pinned || e.Pinned
			if pinned && !t.ents[i].Pinned {
				t.pinned++
			}
			e.Pinned = pinned
			t.removeIdx(s, i)
			t.insertSorted(s, e)
			return true, nil
		}
	}

	if e.Pinned {
		t.pinned++
	}
	t.insertSorted(s, e)

	// Enforce capacity over unpinned entries only.
	unpinned := 0
	for i := int(t.off[s]); i < int(t.off[s+1]); i++ {
		if !t.ents[i].Pinned {
			unpinned++
		}
	}
	if unpinned > t.r && !e.Pinned {
		// If e itself is the farthest unpinned entry it simply does not fit.
		last := t.lastUnpinnedIdx(s)
		if t.ents[last].ID.Equal(e.ID) {
			t.removeIdx(s, last)
			return false, nil
		}
	}
	for unpinned > t.r {
		last := t.lastUnpinnedIdx(s)
		evicted = append(evicted, t.ents[last])
		t.removeIdx(s, last)
		unpinned--
	}
	return true, evicted
}

func sortEntries(set []Entry) {
	sort.Slice(set, func(i, j int) bool { return entryLess(set[i], set[j]) })
}

// Remove deletes the identified neighbor from every set and backpointer map
// it appears in, returning the levels at which a forward link was removed.
func (t *Table) Remove(id ids.ID) (levels []int) {
	for l := 0; l < t.spec.Digits; l++ {
		s := t.slot(l, id.Digit(l))
		for i := int(t.off[s]); i < int(t.off[s+1]); i++ {
			if t.ents[i].ID.Equal(id) {
				if t.ents[i].Pinned {
					t.pinned--
				}
				t.removeIdx(s, i)
				levels = append(levels, l)
				break
			}
		}
		delete(t.back[l], id)
	}
	return levels
}

// Set returns a copy of N_{β,j} at (level, digit), primary first.
func (t *Table) Set(level int, digit ids.Digit) []Entry {
	src := t.SetView(level, digit)
	out := make([]Entry, len(src))
	copy(out, src)
	return out
}

// SetView returns N_{β,j} at (level, digit), primary first, WITHOUT copying:
// the returned slice aliases the table's own storage. The caller must hold
// the owning node's lock, must treat the slice as read-only, and must not
// retain it across any table mutation. This is the allocation-free read path
// for per-hop routing decisions, where Set's defensive copy dominated the
// routing cost.
func (t *Table) SetView(level int, digit ids.Digit) []Entry {
	s := t.slot(level, digit)
	return t.ents[t.off[s]:t.off[s+1]]
}

// RangeView returns the storage of every neighbor set of levels [lo, hi) as
// one contiguous slice: slot-grouped, ascending (level, digit), each set
// sorted by (distance, id). Whole-band folds (the §4.2 search engine seeding
// from a peer's table, audits) copy or scan this in a single pass instead of
// base×levels SetView calls. Same aliasing contract as SetView.
func (t *Table) RangeView(lo, hi int) []Entry {
	return t.ents[t.off[lo*t.spec.Base]:t.off[hi*t.spec.Base]]
}

// Primary returns the closest non-leaving neighbor at (level, digit). If all
// entries are marked leaving it falls back to the closest entry, so routing
// keeps working during a graceful departure window ("incoming queries still
// route normally to A while it is marked leaving").
func (t *Table) Primary(level int, digit ids.Digit) (Entry, bool) {
	set := t.SetView(level, digit)
	for _, e := range set {
		if !e.Leaving {
			return e, true
		}
	}
	if len(set) > 0 {
		return set[0], true
	}
	return Entry{}, false
}

// HasHole reports whether N_{β,j} is empty — a "hole" in the paper's
// vocabulary (Property 1 demands a hole only exists when no (β, j) node
// exists anywhere).
func (t *Table) HasHole(level int, digit ids.Digit) bool {
	s := t.slot(level, digit)
	return t.off[s] == t.off[s+1]
}

// Contains reports whether id is a forward neighbor at the given level.
func (t *Table) Contains(level int, id ids.ID) bool {
	for _, e := range t.SetView(level, id.Digit(level)) {
		if e.ID.Equal(id) {
			return true
		}
	}
	return false
}

// WouldImprove reports whether adding (id, distance) at level would either
// fill a hole or displace a strictly farther unpinned member of a full set;
// i.e. whether the candidate belongs in the table under Property 2.
func (t *Table) WouldImprove(level int, id ids.ID, distance float64) bool {
	if !t.qualifies(level, id) || t.Contains(level, id) {
		return false
	}
	s := t.slot(level, id.Digit(level))
	if t.off[s] == t.off[s+1] {
		return true
	}
	unpinned := 0
	for i := int(t.off[s]); i < int(t.off[s+1]); i++ {
		if !t.ents[i].Pinned {
			unpinned++
		}
	}
	if unpinned < t.r {
		return true
	}
	return distance < t.ents[t.lastUnpinnedIdx(s)].Distance
}

// MarkLeaving flags id wherever it appears (Section 5.1 first-phase delete
// notification). It reports whether any link was found. Sort order is
// unaffected: entries rank by (distance, id) only.
func (t *Table) MarkLeaving(id ids.ID) bool {
	found := false
	for i := range t.ents {
		if t.ents[i].ID.Equal(id) {
			t.ents[i].Leaving = true
			found = true
		}
	}
	return found
}

// Pin marks the identified entry at level as a pinned pointer; Unpin clears
// the mark and re-applies the capacity bound (evicting overflow, returned to
// the caller for backpointer cleanup).
func (t *Table) Pin(level int, id ids.ID) bool {
	s := t.slot(level, id.Digit(level))
	for i := int(t.off[s]); i < int(t.off[s+1]); i++ {
		if t.ents[i].ID.Equal(id) {
			if !t.ents[i].Pinned {
				t.pinned++
			}
			t.ents[i].Pinned = true
			return true
		}
	}
	return false
}

// Unpin clears a pinned pointer and enforces R, returning evicted entries.
func (t *Table) Unpin(level int, id ids.ID) (evicted []Entry) {
	s := t.slot(level, id.Digit(level))
	for i := int(t.off[s]); i < int(t.off[s+1]); i++ {
		if t.ents[i].ID.Equal(id) {
			if t.ents[i].Pinned {
				t.pinned--
			}
			t.ents[i].Pinned = false
		}
	}
	unpinned := 0
	for i := int(t.off[s]); i < int(t.off[s+1]); i++ {
		if !t.ents[i].Pinned {
			unpinned++
		}
	}
	for unpinned > t.r {
		last := t.lastUnpinnedIdx(s)
		evicted = append(evicted, t.ents[last])
		t.removeIdx(s, last)
		unpinned--
	}
	return evicted
}

// PinnedAt returns the pinned entries of N_{β,j}.
func (t *Table) PinnedAt(level int, digit ids.Digit) []Entry {
	var out []Entry
	for _, e := range t.SetView(level, digit) {
		if e.Pinned {
			out = append(out, e)
		}
	}
	return out
}

// OnlyNodeWithPrefix reports whether, as far as this table knows, the owner
// is the only node whose ID starts with p (which must be a prefix of the
// owner). Because every entry at level l >= p.Len() shares the owner's
// first l digits, scanning those rows for any non-self entry is a complete
// local test whenever R >= 2 (the owner occupies at most one slot per set).
// With the contiguous layout those rows are one tail range of the block.
func (t *Table) OnlyNodeWithPrefix(p ids.Prefix) bool {
	if !t.owner.HasPrefix(p) {
		panic(fmt.Sprintf("route: prefix %v is not a prefix of owner %v", p, t.owner))
	}
	for _, e := range t.RangeView(p.Len(), t.spec.Digits) {
		if !e.ID.Equal(t.owner) {
			return false
		}
	}
	return true
}

// ForEachNeighbor invokes fn once per distinct (level, entry) forward link,
// excluding the owner's self entries, in ascending (level, digit, rank)
// order.
func (t *Table) ForEachNeighbor(fn func(level int, e Entry)) {
	s := 0
	for i, e := range t.ents {
		for int(t.off[s+1]) <= i {
			s++
		}
		if !e.ID.Equal(t.owner) {
			fn(s/t.spec.Base, e)
		}
	}
}

// NeighborCount returns the number of forward links excluding self entries
// (the "space" measurement of Table 1).
func (t *Table) NeighborCount() int {
	n := 0
	for i := range t.ents {
		if !t.ents[i].ID.Equal(t.owner) {
			n++
		}
	}
	return n
}

// DistinctNeighbors returns each distinct neighbor (excluding self) once,
// at its smallest level of appearance.
func (t *Table) DistinctNeighbors() []Entry {
	seen := map[ids.ID]struct{}{}
	out := []Entry{}
	t.ForEachNeighbor(func(_ int, e Entry) {
		if _, ok := seen[e.ID]; !ok {
			seen[e.ID] = struct{}{}
			out = append(out, e)
		}
	})
	sortEntries(out)
	return out
}

// AddBack records that `e` holds the owner in its level-`level` neighbor
// sets.
func (t *Table) AddBack(level int, e Entry) { t.back[level][e.ID] = e }

// RemoveBack removes a backpointer.
func (t *Table) RemoveBack(level int, id ids.ID) { delete(t.back[level], id) }

// BackCount returns the number of backpointers at a level.
func (t *Table) BackCount(level int) int { return len(t.back[level]) }

// Backs returns the backpointers at a level, sorted by distance for
// determinism.
func (t *Table) Backs(level int) []Entry {
	out := make([]Entry, 0, len(t.back[level]))
	for _, e := range t.back[level] {
		out = append(out, e)
	}
	sortEntries(out)
	return out
}

// AppendBacks appends the level's backpointers to dst in ascending ID order
// — the deterministic iteration the maintenance and search paths use — and
// returns the extended slice. No allocation beyond dst growth: the tail is
// insertion-sorted in place rather than handed to sort.Slice.
func (t *Table) AppendBacks(dst []Entry, level int) []Entry {
	base := len(dst)
	for _, e := range t.back[level] {
		dst = append(dst, e)
	}
	tail := dst[base:]
	for i := 1; i < len(tail); i++ {
		for j := i; j > 0 && tail[j].ID.Less(tail[j-1].ID); j-- {
			tail[j], tail[j-1] = tail[j-1], tail[j]
		}
	}
	return dst
}

// AllBacks returns every (level, backpointer) pair.
func (t *Table) AllBacks() map[int][]Entry {
	out := make(map[int][]Entry, len(t.back))
	for l := range t.back {
		if len(t.back[l]) > 0 {
			out[l] = t.Backs(l)
		}
	}
	return out
}
