// Package metric provides the metric spaces the overlay algorithms run on.
//
// The paper's guarantees are stated for growth-restricted metrics: spaces
// where |B_A(2r)| <= c·|B_A(r)| for a constant expansion c (Equation 1).
// This package supplies lattice spaces (ring, torus) with provably small
// expansion, random point clouds, general random-graph shortest-path
// metrics that need NOT be growth-restricted (for the Section 7 scheme),
// and the transit-stub Internet model of Zegura et al. cited in Section 6.
//
// A Space is a finite metric over points indexed 0..Size()-1; overlay nodes
// are assigned points as their "network locations" and every simulated
// message is charged the metric distance between its endpoints.
package metric

import (
	"fmt"
	"math"
	"sort"
)

// Space is a finite metric space. Implementations must be symmetric, zero on
// the diagonal, and satisfy the triangle inequality; CheckTriangle verifies
// this by sampling.
type Space interface {
	// Size returns the number of points.
	Size() int
	// Distance returns the metric distance between points i and j.
	Distance(i, j int) float64
	// Name identifies the space in reports.
	Name() string
}

// Ring is the 1-dimensional cycle metric on n evenly spaced points: the
// distance between i and j is the shorter arc. Its expansion constant is 2,
// comfortably within the b > c^2 regime for base-16 identifiers.
type Ring struct{ N int }

// NewRing returns a ring of n points. It panics for n < 1.
func NewRing(n int) Ring {
	if n < 1 {
		panic("metric: ring needs at least one point")
	}
	return Ring{N: n}
}

func (r Ring) Size() int    { return r.N }
func (r Ring) Name() string { return fmt.Sprintf("ring(n=%d)", r.N) }

func (r Ring) Distance(i, j int) float64 {
	d := i - j
	if d < 0 {
		d = -d
	}
	if alt := r.N - d; alt < d {
		d = alt
	}
	return float64(d)
}

// Torus2D is the L1 metric on an s×s lattice with wraparound. Point k sits
// at (k % s, k / s). Expansion constant is bounded by 4 away from the
// wraparound scale.
type Torus2D struct{ Side int }

// NewTorus2D returns a torus with side s (s*s points). It panics for s < 1.
func NewTorus2D(s int) Torus2D {
	if s < 1 {
		panic("metric: torus needs positive side")
	}
	return Torus2D{Side: s}
}

func (t Torus2D) Size() int    { return t.Side * t.Side }
func (t Torus2D) Name() string { return fmt.Sprintf("torus(%dx%d)", t.Side, t.Side) }

func (t Torus2D) Distance(i, j int) float64 {
	xi, yi := i%t.Side, i/t.Side
	xj, yj := j%t.Side, j/t.Side
	return float64(wrapAbs(xi-xj, t.Side) + wrapAbs(yi-yj, t.Side))
}

func wrapAbs(d, n int) int {
	if d < 0 {
		d = -d
	}
	if alt := n - d; alt < d {
		d = alt
	}
	return d
}

// Cloud is a Euclidean point cloud on the unit 2-torus (wraparound square),
// so that boundary effects do not distort growth. Points are supplied by the
// caller (typically uniform random), making the space reproducible from a
// seed.
type Cloud struct {
	X, Y []float64
	name string
}

// NewCloud wraps explicit coordinates; x and y must have equal nonzero
// length and values in [0, 1).
func NewCloud(x, y []float64, name string) *Cloud {
	if len(x) == 0 || len(x) != len(y) {
		panic("metric: cloud needs matching nonempty coordinate slices")
	}
	return &Cloud{X: x, Y: y, name: name}
}

func (c *Cloud) Size() int    { return len(c.X) }
func (c *Cloud) Name() string { return fmt.Sprintf("cloud(%s,n=%d)", c.name, len(c.X)) }

func (c *Cloud) Distance(i, j int) float64 {
	dx := torusDelta(c.X[i] - c.X[j])
	dy := torusDelta(c.Y[i] - c.Y[j])
	return math.Sqrt(dx*dx + dy*dy)
}

func torusDelta(d float64) float64 {
	d = math.Abs(d)
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

// Dense is an explicit distance matrix, the representation used for graph
// metrics (random graphs, transit-stub) up to DenseLimit points; larger
// graph metrics use the on-demand GraphSpace. Distances are stored as
// float32 to halve memory; the overlay's decisions are ordinal so the
// rounding is immaterial.
type Dense struct {
	n    int
	d    []float32
	name string
	// Region optionally labels each point with a locality region (e.g. the
	// stub domain in a transit-stub topology). Empty if the space has no
	// region structure.
	Region []int
}

func newDense(n int, name string) *Dense {
	return &Dense{n: n, d: make([]float32, n*n), name: name}
}

func (g *Dense) Size() int    { return g.n }
func (g *Dense) Name() string { return g.name }

// Regions returns the locality labels (see the package-level Regions).
func (g *Dense) Regions() []int { return g.Region }

// Regions returns the per-point locality labels of a space (the stub-domain
// labelling of a transit-stub topology; -1 marks wide-area transit routers),
// or nil when the space has no region structure. It works across
// representations — materialised matrices and on-demand graph spaces alike —
// so callers never depend on a concrete metric type.
func Regions(s Space) []int {
	if r, ok := s.(interface{ Regions() []int }); ok {
		return r.Regions()
	}
	return nil
}

// RegionLabels returns the sorted distinct region labels of a space,
// excluding the -1 transit marker — the enumeration a correlated-failure
// scenario picks its blackout domains from. Nil when the space has no region
// structure.
func RegionLabels(s Space) []int {
	labels := Regions(s)
	if labels == nil {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for _, l := range labels {
		if l >= 0 && !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Ints(out)
	return out
}

// RegionPoints returns, in ascending order, every point of the space labelled
// with region r. Nil when the space has no region structure or no point
// carries the label.
func RegionPoints(s Space, r int) []int {
	labels := Regions(s)
	if labels == nil {
		return nil
	}
	var out []int
	for p, l := range labels {
		if l == r {
			out = append(out, p)
		}
	}
	return out
}

func (g *Dense) Distance(i, j int) float64 { return float64(g.d[i*g.n+j]) }

func (g *Dense) set(i, j int, v float64) {
	g.d[i*g.n+j] = float32(v)
	g.d[j*g.n+i] = float32(v)
}

// Diameter returns the maximum pairwise distance; O(n^2) over Distance, so
// use on spaces of moderate size or lattice spaces where it is cheap anyway.
func Diameter(s Space) float64 {
	max := 0.0
	n := s.Size()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := s.Distance(i, j); d > max {
				max = d
			}
		}
	}
	return max
}

// CheckTriangle samples triples and returns an error describing the first
// triangle-inequality or symmetry violation found (within eps slack for
// float32-backed spaces).
func CheckTriangle(s Space, samples int, eps float64) error {
	n := s.Size()
	if n < 3 {
		return nil
	}
	// Deterministic stride-based sampling keeps this reproducible without an
	// RNG dependency.
	step := 2654435761 % uint64(n)
	if step == 0 {
		step = 1
	}
	pick := func(k uint64) int { return int((k * step) % uint64(n)) }
	for t := 0; t < samples; t++ {
		i, j, k := pick(uint64(3*t)), pick(uint64(3*t+1)), pick(uint64(3*t+2))
		if i == j || j == k || i == k {
			continue
		}
		dij, dji := s.Distance(i, j), s.Distance(j, i)
		if math.Abs(dij-dji) > eps {
			return fmt.Errorf("metric %s: asymmetric d(%d,%d)=%g d(%d,%d)=%g", s.Name(), i, j, dij, j, i, dji)
		}
		if s.Distance(i, i) != 0 {
			return fmt.Errorf("metric %s: d(%d,%d) != 0", s.Name(), i, i)
		}
		if dik, dkj := s.Distance(i, k), s.Distance(k, j); dij > dik+dkj+eps {
			return fmt.Errorf("metric %s: triangle violated d(%d,%d)=%g > %g+%g", s.Name(), i, j, dij, dik, dkj)
		}
	}
	return nil
}

// ExpansionStats summarises the measured expansion constant of a space: the
// distribution over sampled (point, radius) pairs of |B(2r)| / |B(r)|.
type ExpansionStats struct {
	Median, P90, Max float64
}

// EstimateExpansion measures Equation 1 empirically. For each of the
// samplePoints points (evenly strided), it sorts distances to all other
// points and evaluates the doubling ratio at logarithmically spaced radii,
// ignoring balls smaller than minBall (tiny balls are noise) and ratios
// where the doubled ball already covers everything (the paper's parenthetical
// "unless all points are within 2r of A").
func EstimateExpansion(s Space, samplePoints, minBall int) ExpansionStats {
	n := s.Size()
	if samplePoints > n {
		samplePoints = n
	}
	var ratios []float64
	if minBall < 1 || n-1 < minBall {
		return ExpansionStats{}
	}
	for si := 0; si < samplePoints; si++ {
		a := si * n / samplePoints
		dists := make([]float64, 0, n)
		for j := 0; j < n; j++ {
			if j != a {
				dists = append(dists, s.Distance(a, j))
			}
		}
		sort.Float64s(dists)
		for r := dists[minBall-1]; ; r *= 2 {
			small := countLE(dists, r)
			big := countLE(dists, 2*r)
			if big >= len(dists) {
				break
			}
			if small >= minBall {
				ratios = append(ratios, float64(big+1)/float64(small+1)) // +1 counts A itself
			}
		}
	}
	if len(ratios) == 0 {
		return ExpansionStats{}
	}
	sort.Float64s(ratios)
	return ExpansionStats{
		Median: ratios[len(ratios)/2],
		P90:    ratios[len(ratios)*9/10],
		Max:    ratios[len(ratios)-1],
	}
}

func countLE(sorted []float64, r float64) int {
	return sort.SearchFloat64s(sorted, math.Nextafter(r, math.Inf(1)))
}
