package metric

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// lazyAndDense builds the same random graph twice from identical RNG streams
// and returns the on-demand and materialised representations, which must
// agree bit-for-bit (the lazy path stores rows as float32 exactly like
// Dense).
func lazyAndDense(t *testing.T, n int, seed int64) (*GraphSpace, *Dense) {
	t.Helper()
	g1 := buildRandomGraph(n, 3, 10, rand.New(rand.NewSource(seed)))
	g2 := buildRandomGraph(n, 3, 10, rand.New(rand.NewSource(seed)))
	return newGraphSpace(g1, "lazy", nil), g2.apsp("dense")
}

func TestGraphSpaceMatchesDenseOracle(t *testing.T) {
	lazy, dense := lazyAndDense(t, 120, 17)
	for i := 0; i < 120; i++ {
		for j := 0; j < 120; j++ {
			if got, want := lazy.Distance(i, j), dense.Distance(i, j); got != want {
				t.Fatalf("d(%d,%d): lazy %g != dense %g", i, j, got, want)
			}
		}
	}
}

// TestGraphSpaceEvictionCorrectness hammers a cache far smaller than the
// source set, so every access pattern goes through eviction and
// recomputation; recomputed rows must still match the Dense oracle.
func TestGraphSpaceEvictionCorrectness(t *testing.T) {
	lazy, dense := lazyAndDense(t, 90, 23)
	lazy.SetRowCacheCap(3)
	rng := rand.New(rand.NewSource(1))
	for q := 0; q < 4000; q++ {
		i, j := rng.Intn(90), rng.Intn(90)
		if got, want := lazy.Distance(i, j), dense.Distance(i, j); got != want {
			t.Fatalf("after evictions, d(%d,%d): lazy %g != dense %g", i, j, got, want)
		}
	}
	hits, misses, evictions := lazy.CacheStats()
	if evictions == 0 {
		t.Error("cap 3 over 90 sources must evict")
	}
	if hits == 0 || misses == 0 {
		t.Errorf("expected both hits and misses, got hits=%d misses=%d", hits, misses)
	}
}

// TestGraphSpaceConcurrentReaders races many readers over a small cache
// (constant eviction, duplicated in-flight computations) and checks every
// returned distance against the oracle. Run under -race in CI.
func TestGraphSpaceConcurrentReaders(t *testing.T) {
	lazy, dense := lazyAndDense(t, 80, 31)
	lazy.SetRowCacheCap(4)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for q := 0; q < 500; q++ {
				i, j := rng.Intn(80), rng.Intn(80)
				if got, want := lazy.Distance(i, j), dense.Distance(i, j); got != want {
					select {
					case errs <- "concurrent read returned a wrong distance":
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestGraphConstructorsPickRepresentation pins the DenseLimit policy and the
// identity of distances across it: the same topology seed must give the same
// metric whether it lands just below or above the limit is irrelevant to
// callers, who only see Space.
func TestGraphConstructorsPickRepresentation(t *testing.T) {
	small := NewRandomGraph(64, 2, 8, rand.New(rand.NewSource(3)))
	if _, ok := small.(*Dense); !ok {
		t.Errorf("n=64 should materialise a Dense matrix, got %T", small)
	}
	big := NewRandomGraph(DenseLimit+1, 2, 8, rand.New(rand.NewSource(3)))
	if _, ok := big.(*GraphSpace); !ok {
		t.Errorf("n=%d should stay on-demand, got %T", DenseLimit+1, big)
	}
	// Region labels survive the representation switch.
	ts := NewTransitStub(ScaledTransitStub(3*DenseLimit), rand.New(rand.NewSource(4)))
	gs, ok := ts.(*GraphSpace)
	if !ok {
		t.Fatalf("large transit-stub should be on-demand, got %T", ts)
	}
	if len(Regions(ts)) != ts.Size() {
		t.Error("on-demand transit-stub lost its region labels")
	}
	if gs.RowCacheCap() < 64 {
		t.Errorf("default row cache cap %d too small", gs.RowCacheCap())
	}
}

// TestScaledTransitStub checks the parameter derivation: at least the
// requested points, stub sizes bounded, and the default below the default
// topology size.
func TestScaledTransitStub(t *testing.T) {
	for _, points := range []int{1, 400, 600, 2048, 10000, 50000} {
		p := ScaledTransitStub(points)
		if got := p.NodeCount(); got < points {
			t.Errorf("ScaledTransitStub(%d) yields only %d points", points, got)
		}
		if p.StubSize > 32 && points > DefaultTransitStub().NodeCount() {
			t.Errorf("ScaledTransitStub(%d) stub size %d exceeds locality ceiling", points, p.StubSize)
		}
	}
	if ScaledTransitStub(10) != DefaultTransitStub() {
		t.Error("small requests should return the default topology")
	}
}

// TestGraphSpaceDisconnectedPanics pins the lazy counterpart of apsp's
// disconnection check: the panic happens at first use, not construction —
// and a recovered panic must not poison the cache (later reads of the same
// source panic again instead of hanging on a never-ready entry).
func TestGraphSpaceDisconnectedPanics(t *testing.T) {
	g := newGraph(4)
	g.addEdge(0, 1, 1)
	g.addEdge(2, 3, 1)
	s := newGraphSpace(g, "split", nil)
	mustPanic := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		_ = s.Distance(0, 3)
		return false
	}
	if !mustPanic() {
		t.Fatal("expected panic for disconnected graph")
	}
	done := make(chan bool, 1)
	go func() { done <- mustPanic() }()
	select {
	case again := <-done:
		if !again {
			t.Error("second read of the failed source must panic too")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second read hung on a poisoned cache entry")
	}
}
