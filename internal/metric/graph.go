package metric

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// graph is a weighted undirected adjacency list used to derive shortest-path
// metrics.
type graph struct {
	n   int
	adj [][]edge
}

type edge struct {
	to int
	w  float64
}

func newGraph(n int) *graph { return &graph{n: n, adj: make([][]edge, n)} }

func (g *graph) addEdge(a, b int, w float64) {
	g.adj[a] = append(g.adj[a], edge{b, w})
	g.adj[b] = append(g.adj[b], edge{a, w})
}

// apsp runs Dijkstra from every source and materialises the metric. It
// panics if the graph is disconnected, since a partial metric would silently
// corrupt experiments.
func (g *graph) apsp(name string) *Dense {
	d := newDense(g.n, name)
	dist := make([]float64, g.n)
	for src := 0; src < g.n; src++ {
		g.dijkstra(src, dist)
		for j := 0; j < g.n; j++ {
			if math.IsInf(dist[j], 1) {
				panic(fmt.Sprintf("metric: %s is disconnected (no path %d->%d)", name, src, j))
			}
			d.d[src*g.n+j] = float32(dist[j])
		}
	}
	return d
}

func (g *graph) dijkstra(src int, dist []float64) {
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{{src, 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			if nd := it.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, distItem{e.to, nd})
			}
		}
	}
}

type distItem struct {
	node int
	d    float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// NewRandomGraph builds the shortest-path metric of a connected random
// graph: a Hamiltonian cycle (guaranteeing connectivity) plus extraDegree·n/2
// random chords, with edge weights uniform in [1, maxW). Such metrics are
// generally NOT growth-restricted and exercise the Section 7 scheme.
//
// Up to DenseLimit points the result is a materialised *Dense matrix; above
// it, an on-demand *GraphSpace (identical distances, O(n)-scale memory).
func NewRandomGraph(n, extraDegree int, maxW float64, rng *rand.Rand) Space {
	g := buildRandomGraph(n, extraDegree, maxW, rng)
	name := fmt.Sprintf("randgraph(n=%d,deg=%d)", n, extraDegree)
	if n <= DenseLimit {
		return g.apsp(name)
	}
	return newGraphSpace(g, name, nil)
}

// buildRandomGraph constructs the adjacency list behind NewRandomGraph; the
// representation choice (matrix vs on-demand) never changes the topology or
// the RNG stream.
func buildRandomGraph(n, extraDegree int, maxW float64, rng *rand.Rand) *graph {
	if n < 3 {
		panic("metric: random graph needs n >= 3")
	}
	g := newGraph(n)
	for i := 0; i < n; i++ {
		g.addEdge(i, (i+1)%n, 1+rng.Float64()*(maxW-1))
	}
	for e := 0; e < extraDegree*n/2; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.addEdge(a, b, 1+rng.Float64()*(maxW-1))
		}
	}
	return g
}

// TransitStubParams shapes a transit-stub topology in the style of Zegura,
// Calvert and Bhattacharjee [34], the Internet model the paper cites for
// realistic deployment (Section 6.2).
type TransitStubParams struct {
	TransitDomains  int     // number of transit (backbone) domains
	TransitPerDom   int     // routers per transit domain
	StubsPerTransit int     // stub domains hanging off each transit router
	StubSize        int     // hosts per stub domain
	TransitWeight   float64 // latency of transit-transit links
	StubUpWeight    float64 // latency of stub-to-transit access links
	IntraStubWeight float64 // latency of links inside a stub
}

// DefaultTransitStub yields a topology with the order-of-magnitude latency
// separation between intra-stub and wide-area paths that Section 6.3 relies
// on.
func DefaultTransitStub() TransitStubParams {
	return TransitStubParams{
		TransitDomains:  4,
		TransitPerDom:   4,
		StubsPerTransit: 3,
		StubSize:        8,
		TransitWeight:   20,
		StubUpWeight:    10,
		IntraStubWeight: 1,
	}
}

// NodeCount returns the total number of points the parameters generate.
func (p TransitStubParams) NodeCount() int {
	transit := p.TransitDomains * p.TransitPerDom
	return transit + transit*p.StubsPerTransit*p.StubSize
}

// ScaledTransitStub derives transit-stub parameters whose point count is at
// least `points`. Stubs first grow to a locality-meaningful ceiling of 32
// hosts; beyond that the transit backbone grows instead (8 stubs of 32 hosts
// per router), so a 50k-point request yields ~200 routers over ~1500 stubs
// rather than a handful of giant stubs. For points at or below the default
// topology's size it returns DefaultTransitStub unchanged.
func ScaledTransitStub(points int) TransitStubParams {
	p := DefaultTransitStub()
	if points <= p.NodeCount() {
		return p
	}
	transit := p.TransitDomains * p.TransitPerDom
	stubs := transit * p.StubsPerTransit
	if size := (points - transit + stubs - 1) / stubs; size <= 32 {
		p.StubSize = size
		return p
	}
	p.StubsPerTransit = 8
	p.StubSize = 32
	perRouter := 1 + p.StubsPerTransit*p.StubSize
	transit = (points + perRouter - 1) / perRouter
	p.TransitDomains = (transit + p.TransitPerDom - 1) / p.TransitPerDom
	if p.TransitDomains < 2 {
		p.TransitDomains = 2
	}
	return p
}

// NewTransitStub builds the shortest-path metric of a transit-stub topology.
// The space has Region populated (see Regions): transit routers get region
// -1, and every stub host is labelled with its stub domain index, enabling
// the Section 6.3 locality experiments ("never leave the stub").
//
// Up to DenseLimit points the result is a materialised *Dense matrix; above
// it, an on-demand *GraphSpace (identical distances, O(n)-scale memory).
func NewTransitStub(p TransitStubParams, rng *rand.Rand) Space {
	if p.TransitDomains < 1 || p.TransitPerDom < 1 || p.StubsPerTransit < 0 || p.StubSize < 1 {
		panic("metric: invalid transit-stub parameters")
	}
	n := p.NodeCount()
	g := newGraph(n)
	region := make([]int, n)
	transitCount := p.TransitDomains * p.TransitPerDom

	// Transit backbone: a ring over domains plus a clique inside each domain.
	for dom := 0; dom < p.TransitDomains; dom++ {
		base := dom * p.TransitPerDom
		for i := 0; i < p.TransitPerDom; i++ {
			region[base+i] = -1
			for j := i + 1; j < p.TransitPerDom; j++ {
				g.addEdge(base+i, base+j, p.TransitWeight/2)
			}
		}
		nextBase := ((dom + 1) % p.TransitDomains) * p.TransitPerDom
		g.addEdge(base, nextBase, p.TransitWeight)
		// A random cross-link makes the backbone less ring-like.
		if p.TransitDomains > 2 {
			other := rng.Intn(p.TransitDomains)
			if other != dom {
				g.addEdge(base+rng.Intn(p.TransitPerDom), other*p.TransitPerDom+rng.Intn(p.TransitPerDom), p.TransitWeight)
			}
		}
	}

	// Stubs: a short path + chords inside each stub, attached to its transit
	// router by an access link.
	next := transitCount
	stubIndex := 0
	for t := 0; t < transitCount; t++ {
		for s := 0; s < p.StubsPerTransit; s++ {
			base := next
			for h := 0; h < p.StubSize; h++ {
				region[base+h] = stubIndex
				if h > 0 {
					g.addEdge(base+h-1, base+h, p.IntraStubWeight)
				}
			}
			// Intra-stub chords keep stub diameter small.
			for c := 0; c < p.StubSize/2; c++ {
				a, b := base+rng.Intn(p.StubSize), base+rng.Intn(p.StubSize)
				if a != b {
					g.addEdge(a, b, p.IntraStubWeight)
				}
			}
			g.addEdge(t, base+rng.Intn(p.StubSize), p.StubUpWeight)
			next += p.StubSize
			stubIndex++
		}
	}

	name := fmt.Sprintf("transitstub(n=%d)", n)
	if n <= DenseLimit {
		d := g.apsp(name)
		d.Region = region
		return d
	}
	return newGraphSpace(g, name, region)
}

// NewUniformCloud places n points uniformly at random on the unit 2-torus.
func NewUniformCloud(n int, rng *rand.Rand) *Cloud {
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	return NewCloud(x, y, "uniform")
}
