package metric

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRingDistances(t *testing.T) {
	r := NewRing(10)
	cases := []struct {
		i, j int
		want float64
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 5, 5}, {0, 6, 4}, {0, 9, 1}, {3, 8, 5}, {9, 0, 1},
	}
	for _, c := range cases {
		if got := r.Distance(c.i, c.j); got != c.want {
			t.Errorf("ring d(%d,%d) = %g, want %g", c.i, c.j, got, c.want)
		}
	}
	if r.Size() != 10 {
		t.Error("size")
	}
}

func TestTorusDistances(t *testing.T) {
	tor := NewTorus2D(4) // 16 points, side 4
	cases := []struct {
		i, j int
		want float64
	}{
		{0, 0, 0},
		{0, 1, 1},  // (0,0)->(1,0)
		{0, 3, 1},  // wrap in x
		{0, 4, 1},  // (0,0)->(0,1)
		{0, 12, 1}, // wrap in y
		{0, 5, 2},  // (0,0)->(1,1)
		{0, 10, 4}, // (0,0)->(2,2)
	}
	for _, c := range cases {
		if got := tor.Distance(c.i, c.j); got != c.want {
			t.Errorf("torus d(%d,%d) = %g, want %g", c.i, c.j, got, c.want)
		}
	}
}

func TestCloudWraparound(t *testing.T) {
	c := NewCloud([]float64{0.05, 0.95}, []float64{0.5, 0.5}, "t")
	if got := c.Distance(0, 1); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("wraparound distance = %g, want 0.1", got)
	}
	if c.Distance(0, 0) != 0 {
		t.Error("self distance")
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"ring0":      func() { NewRing(0) },
		"torus0":     func() { NewTorus2D(0) },
		"cloudEmpty": func() { NewCloud(nil, nil, "x") },
		"cloudLen":   func() { NewCloud([]float64{1}, []float64{1, 2}, "x") },
		"graphTiny":  func() { NewRandomGraph(2, 1, 4, rand.New(rand.NewSource(1))) },
		"tsBad":      func() { NewTransitStub(TransitStubParams{}, rand.New(rand.NewSource(1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTriangleOnAllSpaces(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	spaces := []Space{
		NewRing(97),
		NewTorus2D(9),
		NewUniformCloud(100, rng),
		NewRandomGraph(80, 3, 10, rng),
		NewTransitStub(DefaultTransitStub(), rng),
	}
	for _, s := range spaces {
		if err := CheckTriangle(s, 2000, 1e-3); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestDiameter(t *testing.T) {
	if got := Diameter(NewRing(10)); got != 5 {
		t.Errorf("ring diameter = %g, want 5", got)
	}
	if got := Diameter(NewTorus2D(4)); got != 4 {
		t.Errorf("torus diameter = %g, want 4", got)
	}
}

func TestRandomGraphConnectedAndSymmetric(t *testing.T) {
	g := NewRandomGraph(60, 2, 8, rand.New(rand.NewSource(5)))
	for i := 0; i < g.Size(); i += 7 {
		for j := 0; j < g.Size(); j += 5 {
			if i == j {
				continue
			}
			d := g.Distance(i, j)
			if d <= 0 || math.IsInf(d, 1) {
				t.Fatalf("d(%d,%d)=%g not finite positive", i, j, d)
			}
			if g.Distance(j, i) != d {
				t.Fatalf("asymmetric")
			}
		}
	}
}

func TestTransitStubStructure(t *testing.T) {
	p := DefaultTransitStub()
	ts := NewTransitStub(p, rand.New(rand.NewSource(3)))
	if ts.Size() != p.NodeCount() {
		t.Fatalf("size %d, want %d", ts.Size(), p.NodeCount())
	}
	labels := Regions(ts)
	if len(labels) != ts.Size() {
		t.Fatal("region labels missing")
	}
	transit := p.TransitDomains * p.TransitPerDom
	for i := 0; i < transit; i++ {
		if labels[i] != -1 {
			t.Fatalf("transit node %d mislabelled %d", i, labels[i])
		}
	}
	// Every stub domain has exactly StubSize members.
	counts := map[int]int{}
	for _, r := range labels[transit:] {
		counts[r]++
	}
	wantStubs := transit * p.StubsPerTransit
	if len(counts) != wantStubs {
		t.Fatalf("%d stub domains, want %d", len(counts), wantStubs)
	}
	for r, c := range counts {
		if c != p.StubSize {
			t.Fatalf("stub %d has %d members, want %d", r, c, p.StubSize)
		}
	}
}

func TestTransitStubLatencySeparation(t *testing.T) {
	p := DefaultTransitStub()
	ts := NewTransitStub(p, rand.New(rand.NewSource(3)))
	labels := Regions(ts)
	transit := p.TransitDomains * p.TransitPerDom
	// Average intra-stub distance should be far below average cross-stub
	// distance (the order-of-magnitude gap Section 6.3 exploits).
	var intra, cross float64
	var nIntra, nCross int
	for i := transit; i < ts.Size(); i += 3 {
		for j := transit; j < ts.Size(); j += 5 {
			if i == j {
				continue
			}
			if labels[i] == labels[j] {
				intra += ts.Distance(i, j)
				nIntra++
			} else {
				cross += ts.Distance(i, j)
				nCross++
			}
		}
	}
	if nIntra == 0 || nCross == 0 {
		t.Fatal("sampling missed a class")
	}
	intra /= float64(nIntra)
	cross /= float64(nCross)
	if cross < 4*intra {
		t.Errorf("latency separation too small: intra=%g cross=%g", intra, cross)
	}
}

func TestExpansionLattices(t *testing.T) {
	// Ring expansion ~2, torus ~4; both must be well under 16 (= base b used
	// by the overlay, satisfying b > c^2 ... c^2 <= 16 needs c <= 4).
	ring := EstimateExpansion(NewRing(512), 16, 4)
	if ring.Median > 3 {
		t.Errorf("ring median expansion %g, expected ~2", ring.Median)
	}
	torus := EstimateExpansion(NewTorus2D(24), 16, 4)
	if torus.Median > 5 {
		t.Errorf("torus median expansion %g, expected ~4", torus.Median)
	}
}

func TestExpansionDegenerate(t *testing.T) {
	got := EstimateExpansion(NewRing(4), 4, 4)
	if got.Max != 0 || got.Median != 0 {
		t.Errorf("tiny space should yield empty stats, got %+v", got)
	}
}

// Property: ring and torus distances satisfy metric axioms exactly.
func TestQuickMetricAxioms(t *testing.T) {
	ring := NewRing(37)
	tor := NewTorus2D(7)
	f := func(a, b, c uint16) bool {
		for _, s := range []Space{ring, tor} {
			n := s.Size()
			i, j, k := int(a)%n, int(b)%n, int(c)%n
			if s.Distance(i, i) != 0 {
				return false
			}
			if s.Distance(i, j) != s.Distance(j, i) {
				return false
			}
			if s.Distance(i, j) > s.Distance(i, k)+s.Distance(k, j) {
				return false
			}
			if i != j && s.Distance(i, j) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCountLE(t *testing.T) {
	sorted := []float64{1, 2, 2, 3, 5}
	cases := []struct {
		r    float64
		want int
	}{{0.5, 0}, {1, 1}, {2, 3}, {2.5, 3}, {5, 5}, {9, 5}}
	for _, c := range cases {
		if got := countLE(sorted, c.r); got != c.want {
			t.Errorf("countLE(%g) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestRegionLabelsAndPoints(t *testing.T) {
	p := DefaultTransitStub()
	ts := NewTransitStub(p, rand.New(rand.NewSource(3)))
	labels := RegionLabels(ts)
	wantStubs := p.TransitDomains * p.TransitPerDom * p.StubsPerTransit
	if len(labels) != wantStubs {
		t.Fatalf("%d distinct labels, want %d", len(labels), wantStubs)
	}
	if !sort.IntsAreSorted(labels) {
		t.Fatal("labels not sorted")
	}
	for _, l := range labels {
		if l < 0 {
			t.Fatalf("transit marker %d leaked into RegionLabels", l)
		}
	}
	raw := Regions(ts)
	total := 0
	for _, l := range labels {
		pts := RegionPoints(ts, l)
		if len(pts) != p.StubSize {
			t.Fatalf("region %d has %d points, want %d", l, len(pts), p.StubSize)
		}
		if !sort.IntsAreSorted(pts) {
			t.Fatalf("region %d points not sorted", l)
		}
		for _, pt := range pts {
			if raw[pt] != l {
				t.Fatalf("point %d labelled %d, RegionPoints said %d", pt, raw[pt], l)
			}
		}
		total += len(pts)
	}
	transit := p.TransitDomains * p.TransitPerDom
	if total != ts.Size()-transit {
		t.Fatalf("regions cover %d points, want %d", total, ts.Size()-transit)
	}

	// Spaces without region structure return nil from both helpers.
	if RegionLabels(NewRing(8)) != nil || RegionPoints(NewRing(8), 0) != nil {
		t.Fatal("ring space reported region structure")
	}
}
