package metric

import (
	"container/list"
	"fmt"
	"math"
	"sync"
)

// DenseLimit is the largest point count for which graph-derived metrics
// (NewRandomGraph, NewTransitStub) eagerly materialise the full n×n distance
// matrix. Below it the matrix costs at most ~16 MB and beats repeated
// shortest-path work; above it the constructors return an on-demand
// *GraphSpace instead, whose memory is O(n + edges + cached rows) — a 65k
// point matrix would need 17 GB, the on-demand form a few hundred MB.
const DenseLimit = 2048

// GraphSpace is a shortest-path metric computed on demand from an adjacency
// list. Distance(i, j) runs Dijkstra from i the first time any distance from
// i is requested and caches the whole source row in a bounded LRU, so access
// patterns with source locality (a node examining many peers, the network
// simulator charging messages from live overlay nodes) pay one shortest-path
// computation per hot source instead of O(n) eager ones.
//
// GraphSpace is safe for concurrent readers: row computation is deduplicated
// (a second reader of an in-flight row waits for the first), and evictions
// never invalidate rows already handed to a waiter.
type GraphSpace struct {
	g    *graph
	name string
	// Region labels each point with a locality region (stub domain), exactly
	// like Dense.Region. Nil if the space has no region structure.
	Region []int

	mu      sync.Mutex
	capRows int
	rows    map[int]*rowEntry
	lru     *list.List // of *rowEntry; front = most recently used

	hits, misses, evictions int64
}

// rowEntry is one cached (or in-flight) source row. ready is closed once row
// is filled; waiters that obtained the entry before an eviction still get
// the row through their pointer.
type rowEntry struct {
	src   int
	ready chan struct{}
	row   []float32
	el    *list.Element
}

// rowCacheBudget bounds the default row cache at ~256 MB of float32 rows.
const rowCacheBudget = 256 << 20

func newGraphSpace(g *graph, name string, region []int) *GraphSpace {
	return &GraphSpace{
		g:       g,
		name:    name,
		Region:  region,
		capRows: defaultRowCap(g.n),
		rows:    make(map[int]*rowEntry),
		lru:     list.New(),
	}
}

// defaultRowCap sizes the LRU to the rowCacheBudget, clamped to [64, n].
func defaultRowCap(n int) int {
	c := rowCacheBudget / (4 * n)
	if c > n {
		c = n
	}
	if c < 64 {
		c = 64
	}
	return c
}

func (s *GraphSpace) Size() int    { return s.g.n }
func (s *GraphSpace) Name() string { return s.name }

// Regions returns the locality labels (see Regions).
func (s *GraphSpace) Regions() []int { return s.Region }

// RowCacheCap returns the current bound on cached source rows.
func (s *GraphSpace) RowCacheCap() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capRows
}

// SetRowCacheCap rebounds the source-row LRU (minimum 1), evicting the
// least recently used rows if the cache is over the new cap. Callers that
// know their working set (e.g. the set of live overlay addresses) can size
// the cache to it and avoid thrashing.
func (s *GraphSpace) SetRowCacheCap(rows int) {
	if rows < 1 {
		rows = 1
	}
	s.mu.Lock()
	s.capRows = rows
	s.evictOverCapLocked()
	s.mu.Unlock()
}

// CacheStats reports row-cache activity since construction.
func (s *GraphSpace) CacheStats() (hits, misses, evictions int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses, s.evictions
}

// Distance returns the shortest-path distance between points i and j,
// computing and caching the source row of i as needed. Values are rounded
// through float32 exactly like Dense, so a GraphSpace and the Dense
// materialisation of the same graph agree bit-for-bit.
func (s *GraphSpace) Distance(i, j int) float64 {
	if i == j {
		return 0
	}
	return float64(s.row(i)[j])
}

func (s *GraphSpace) row(src int) []float32 {
	s.mu.Lock()
	if e, ok := s.rows[src]; ok {
		s.lru.MoveToFront(e.el)
		s.hits++
		s.mu.Unlock()
		<-e.ready
		if e.row == nil {
			// The computing goroutine panicked (disconnected graph): fail
			// loudly here too rather than serving a bogus row.
			panic(fmt.Sprintf("metric: %s row %d computation failed", s.name, src))
		}
		return e.row
	}
	e := &rowEntry{src: src, ready: make(chan struct{})}
	e.el = s.lru.PushFront(e)
	s.rows[src] = e
	s.misses++
	s.evictOverCapLocked()
	s.mu.Unlock()

	// If the computation unwinds (the disconnection panic below), drop the
	// entry from the cache and still close ready — otherwise the poisoned,
	// never-ready entry would hang every later reader of this source once a
	// caller (e.g. the experiment runner) recovers the panic.
	defer func() {
		if e.row == nil {
			s.mu.Lock()
			if s.rows[src] == e {
				s.lru.Remove(e.el)
				delete(s.rows, src)
			}
			s.mu.Unlock()
			close(e.ready)
		}
	}()

	dist := make([]float64, s.g.n)
	s.g.dijkstra(src, dist)
	row := make([]float32, s.g.n)
	for j, d := range dist {
		if math.IsInf(d, 1) {
			panic(fmt.Sprintf("metric: %s is disconnected (no path %d->%d)", s.name, src, j))
		}
		row[j] = float32(d)
	}
	e.row = row
	close(e.ready)
	return row
}

// evictOverCapLocked drops least-recently-used rows until the cache fits.
// Evicting an in-flight entry is safe: its waiters hold the entry pointer
// and receive the row when the computation finishes; the row is simply not
// retained for future callers.
func (s *GraphSpace) evictOverCapLocked() {
	for len(s.rows) > s.capRows {
		back := s.lru.Back()
		be := back.Value.(*rowEntry)
		s.lru.Remove(back)
		delete(s.rows, be.src)
		s.evictions++
	}
}
