// Package workload generates the object placements, query mixes and churn
// schedules used by the experiment harness: uniform and Zipf-popular object
// access, random replica placement, and Poisson-ish join/leave interleavings.
// Everything is driven by an explicit RNG so experiments replay exactly.
package workload

import (
	"fmt"
	"math/rand"
)

// Placement assigns objects to server indices.
type Placement struct {
	// Servers[i] lists the replica holders of object i.
	Servers [][]int
	// Names[i] is a stable human-readable object name (hashable to a GUID).
	Names []string
}

// UniformPlacement places `objects` objects, each with `replicas` copies on
// distinct servers drawn uniformly from n nodes.
func UniformPlacement(objects, replicas, n int, rng *rand.Rand) Placement {
	if replicas > n {
		panic("workload: more replicas than nodes")
	}
	p := Placement{Servers: make([][]int, objects), Names: make([]string, objects)}
	for i := 0; i < objects; i++ {
		p.Names[i] = fmt.Sprintf("object-%06d", i)
		seen := map[int]bool{}
		for len(p.Servers[i]) < replicas {
			s := rng.Intn(n)
			if !seen[s] {
				seen[s] = true
				p.Servers[i] = append(p.Servers[i], s)
			}
		}
	}
	return p
}

// QueryMix yields (client, object) pairs.
type QueryMix struct {
	Clients []int
	Objects []int
}

// UniformQueries draws q independent (client, object) pairs uniformly.
func UniformQueries(q, nClients, nObjects int, rng *rand.Rand) QueryMix {
	m := QueryMix{Clients: make([]int, q), Objects: make([]int, q)}
	for i := 0; i < q; i++ {
		m.Clients[i] = rng.Intn(nClients)
		m.Objects[i] = rng.Intn(nObjects)
	}
	return m
}

// ZipfQueries draws q (client, object) pairs with Zipf-distributed object
// popularity (exponent s > 1), the standard skew for content workloads.
func ZipfQueries(q, nClients, nObjects int, s float64, rng *rand.Rand) QueryMix {
	if s <= 1 {
		panic("workload: zipf exponent must exceed 1")
	}
	z := rand.NewZipf(rng, s, 1, uint64(nObjects-1))
	m := QueryMix{Clients: make([]int, q), Objects: make([]int, q)}
	for i := 0; i < q; i++ {
		m.Clients[i] = rng.Intn(nClients)
		m.Objects[i] = int(z.Uint64())
	}
	return m
}

// ChurnOp is one membership event.
type ChurnOp struct {
	Join bool
	// Victim selects which current member leaves (index into the live set,
	// modulo its size at execution time); meaningful when Join is false.
	Victim int
}

// ChurnSchedule interleaves joins and leaves: `joins` joins and `leaves`
// leaves in random order (never letting planned leaves outnumber prior
// joins, so the population cannot go negative).
func ChurnSchedule(joins, leaves int, rng *rand.Rand) []ChurnOp {
	if leaves > joins {
		panic("workload: more leaves than joins")
	}
	ops := make([]ChurnOp, 0, joins+leaves)
	j, l := 0, 0
	for j < joins || l < leaves {
		// Bias toward joins while we must keep the invariant l < j.
		if j < joins && (l >= leaves || rng.Intn(2) == 0 || l >= j) {
			ops = append(ops, ChurnOp{Join: true})
			j++
		} else {
			ops = append(ops, ChurnOp{Join: false, Victim: rng.Intn(1 << 30)})
			l++
		}
	}
	return ops
}
