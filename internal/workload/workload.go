// Package workload generates the object placements, query mixes and churn
// schedules used by the experiment harness: uniform and Zipf-popular object
// access, random replica placement, and Poisson-ish join/leave interleavings.
// Everything is driven by an explicit RNG so experiments replay exactly.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Placement assigns objects to server indices.
type Placement struct {
	// Servers[i] lists the replica holders of object i.
	Servers [][]int
	// Names[i] is a stable human-readable object name (hashable to a GUID).
	Names []string
}

// UniformPlacement places `objects` objects, each with `replicas` copies on
// distinct servers drawn uniformly from n nodes. Distinctness comes from a
// partial Fisher–Yates shuffle over one reusable index slice — no per-object
// map allocation and no rejection loop, so large placements are O(objects ×
// replicas) plus one O(n) setup.
func UniformPlacement(objects, replicas, n int, rng *rand.Rand) Placement {
	if replicas > n {
		panic("workload: more replicas than nodes")
	}
	p := Placement{Servers: make([][]int, objects), Names: make([]string, objects)}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < objects; i++ {
		p.Names[i] = fmt.Sprintf("object-%06d", i)
		servers := make([]int, replicas)
		for k := 0; k < replicas; k++ {
			j := k + rng.Intn(n-k)
			idx[k], idx[j] = idx[j], idx[k]
			servers[k] = idx[k]
		}
		p.Servers[i] = servers
	}
	return p
}

// QueryMix yields (client, object) pairs.
type QueryMix struct {
	Clients []int
	Objects []int
}

// UniformQueries draws q independent (client, object) pairs uniformly.
func UniformQueries(q, nClients, nObjects int, rng *rand.Rand) QueryMix {
	m := QueryMix{Clients: make([]int, q), Objects: make([]int, q)}
	for i := 0; i < q; i++ {
		m.Clients[i] = rng.Intn(nClients)
		m.Objects[i] = rng.Intn(nObjects)
	}
	return m
}

// ZipfQueries draws q (client, object) pairs with Zipf-distributed object
// popularity (exponent s > 1), the standard skew for content workloads.
func ZipfQueries(q, nClients, nObjects int, s float64, rng *rand.Rand) QueryMix {
	if s <= 1 {
		panic("workload: zipf exponent must exceed 1")
	}
	z := rand.NewZipf(rng, s, 1, uint64(nObjects-1))
	m := QueryMix{Clients: make([]int, q), Objects: make([]int, q)}
	for i := 0; i < q; i++ {
		m.Clients[i] = rng.Intn(nClients)
		m.Objects[i] = int(z.Uint64())
	}
	return m
}

// ChurnOp is one membership event.
type ChurnOp struct {
	Join bool
	// Crash marks a departure as involuntary (the node dies without running
	// the voluntary-delete protocol); meaningful when Join is false.
	Crash bool
	// Victim selects which current member leaves (index into the live set,
	// modulo its size at execution time); meaningful when Join is false.
	Victim int
}

// ChurnSchedule interleaves joins and leaves: `joins` joins and `leaves`
// leaves in random order (never letting planned leaves outnumber prior
// joins, so the population cannot go negative).
//
// Edge cases are explicit contract, not accident: negative counts panic,
// leaves > joins panics (the invariant above would be unsatisfiable), and
// (0, 0) returns an empty schedule.
func ChurnSchedule(joins, leaves int, rng *rand.Rand) []ChurnOp {
	if joins < 0 || leaves < 0 {
		panic(fmt.Sprintf("workload: negative churn counts (joins=%d leaves=%d)", joins, leaves))
	}
	if leaves > joins {
		panic("workload: more leaves than joins")
	}
	ops := make([]ChurnOp, 0, joins+leaves)
	j, l := 0, 0
	for j < joins || l < leaves {
		// Bias toward joins while we must keep the invariant l < j.
		if j < joins && (l >= leaves || rng.Intn(2) == 0 || l >= j) {
			ops = append(ops, ChurnOp{Join: true})
			j++
		} else {
			ops = append(ops, ChurnOp{Join: false, Victim: rng.Intn(1 << 30)})
			l++
		}
	}
	return ops
}

// PoissonChurn draws a per-epoch churn schedule: each epoch gets
// Poisson(joinMean) joins, Poisson(leaveMean) voluntary leaves and
// Poisson(crashMean) crashes, shuffled together. Departures are capped so
// the planned population (starting from `population`) never drops below
// minPopulation — the guard is on the plan; executors additionally bound
// victims by the live set at execution time. Everything is driven by the
// explicit RNG, so schedules replay exactly.
//
// Parameter edge cases, as contract: a zero mean yields zero events of that
// kind every epoch (it does not disable the other streams); negative or NaN
// means panic rather than silently degenerating (a NaN mean would spin the
// sampler forever); minPopulation below 1 is clamped to 1 — a plan can never
// empty the overlay — and population below the (clamped) minimum panics;
// epochs <= 0 returns an empty schedule.
func PoissonChurn(epochs int, population, minPopulation int, joinMean, leaveMean, crashMean float64, rng *rand.Rand) [][]ChurnOp {
	for _, m := range []float64{joinMean, leaveMean, crashMean} {
		if m < 0 || math.IsNaN(m) {
			panic(fmt.Sprintf("workload: invalid churn mean %v", m))
		}
	}
	if minPopulation < 1 {
		minPopulation = 1
	}
	if population < minPopulation {
		panic("workload: population below minimum")
	}
	if epochs < 0 {
		epochs = 0
	}
	sched := make([][]ChurnOp, epochs)
	pop := population
	for e := range sched {
		joins := poisson(joinMean, rng)
		leaves := poisson(leaveMean, rng)
		crashes := poisson(crashMean, rng)
		for pop+joins-leaves-crashes < minPopulation && leaves+crashes > 0 {
			// Shed planned departures fairly until the floor holds.
			if leaves >= crashes {
				leaves--
			} else {
				crashes--
			}
		}
		ops := make([]ChurnOp, 0, joins+leaves+crashes)
		for i := 0; i < joins; i++ {
			ops = append(ops, ChurnOp{Join: true})
		}
		for i := 0; i < leaves; i++ {
			ops = append(ops, ChurnOp{Victim: rng.Intn(1 << 30)})
		}
		for i := 0; i < crashes; i++ {
			ops = append(ops, ChurnOp{Crash: true, Victim: rng.Intn(1 << 30)})
		}
		rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
		sched[e] = ops
		pop += joins - leaves - crashes
	}
	return sched
}

// FlashCrowdQueries draws q (client, object) pairs where fraction `hot` of
// the queries target the single object `hotObject` and the remainder follow
// the usual Zipf(s) background mix — the flash-crowd storm of the chaos
// scenarios, where one object abruptly dominates the workload. hot must lie
// in [0,1]; hotObject must be a valid object index. Clients are uniform
// throughout. Exactly one rng draw decides hot-vs-background per query, so
// mixes with different `hot` under the same seed stay aligned.
func FlashCrowdQueries(q, nClients, nObjects, hotObject int, hot float64, s float64, rng *rand.Rand) QueryMix {
	if hot < 0 || hot > 1 || math.IsNaN(hot) {
		panic(fmt.Sprintf("workload: flash-crowd hot fraction %v outside [0,1]", hot))
	}
	if hotObject < 0 || hotObject >= nObjects {
		panic(fmt.Sprintf("workload: hot object %d outside [0,%d)", hotObject, nObjects))
	}
	if s <= 1 {
		panic("workload: zipf exponent must exceed 1")
	}
	z := rand.NewZipf(rng, s, 1, uint64(nObjects-1))
	m := QueryMix{Clients: make([]int, q), Objects: make([]int, q)}
	for i := 0; i < q; i++ {
		m.Clients[i] = rng.Intn(nClients)
		if rng.Float64() < hot {
			m.Objects[i] = hotObject
		} else {
			m.Objects[i] = int(z.Uint64())
		}
	}
	return m
}

// JoinStampede returns a burst of `joins` back-to-back join operations — the
// adversarial complement of PoissonChurn's smooth arrivals, stressing the
// concurrent-join machinery (§4.4) with a correlated arrival wave. Negative
// counts panic.
func JoinStampede(joins int) []ChurnOp {
	if joins < 0 {
		panic(fmt.Sprintf("workload: negative stampede size %d", joins))
	}
	ops := make([]ChurnOp, joins)
	for i := range ops {
		ops[i] = ChurnOp{Join: true}
	}
	return ops
}

// poisson samples Poisson(mean) by Knuth's product-of-uniforms method.
// Large means are split recursively — the sum of independent Poisson(m/2)
// draws is exactly Poisson(m) — so exp(-mean) stays far from the underflow
// that would otherwise silently cap every draw near 745.
func poisson(mean float64, rng *rand.Rand) int {
	if mean <= 0 {
		return 0
	}
	if mean > 32 {
		return poisson(mean/2, rng) + poisson(mean/2, rng)
	}
	limit := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}
