package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := UniformPlacement(10, 3, 20, rng)
	if len(p.Servers) != 10 || len(p.Names) != 10 {
		t.Fatal("shape")
	}
	for i, servers := range p.Servers {
		if len(servers) != 3 {
			t.Fatalf("object %d has %d replicas", i, len(servers))
		}
		seen := map[int]bool{}
		for _, s := range servers {
			if s < 0 || s >= 20 || seen[s] {
				t.Fatalf("bad/duplicate server %d", s)
			}
			seen[s] = true
		}
	}
	if p.Names[0] == p.Names[1] {
		t.Error("names must be distinct")
	}
}

func TestUniformPlacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	UniformPlacement(1, 5, 3, rand.New(rand.NewSource(1)))
}

func TestUniformQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := UniformQueries(100, 8, 5, rng)
	for i := range m.Clients {
		if m.Clients[i] < 0 || m.Clients[i] >= 8 || m.Objects[i] < 0 || m.Objects[i] >= 5 {
			t.Fatal("out of range")
		}
	}
}

func TestZipfQueriesSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := ZipfQueries(4000, 4, 50, 1.5, rng)
	counts := map[int]int{}
	for _, o := range m.Objects {
		if o < 0 || o >= 50 {
			t.Fatal("object out of range")
		}
		counts[o]++
	}
	if counts[0] < 4000/10 {
		t.Errorf("zipf head got %d of 4000; expected heavy skew", counts[0])
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for s<=1")
		}
	}()
	ZipfQueries(1, 1, 2, 1.0, rng)
}

func TestUniformPlacementDeterministic(t *testing.T) {
	a := UniformPlacement(50, 4, 200, rand.New(rand.NewSource(9)))
	b := UniformPlacement(50, 4, 200, rand.New(rand.NewSource(9)))
	for i := range a.Servers {
		for k := range a.Servers[i] {
			if a.Servers[i][k] != b.Servers[i][k] {
				t.Fatal("same seed must give the same placement")
			}
		}
	}
}

func TestPoissonChurnInvariants(t *testing.T) {
	f := func(seed int64, popRaw, epochRaw uint8) bool {
		pop := int(popRaw)%100 + 20
		epochs := int(epochRaw)%8 + 1
		minPop := pop / 2
		sched := PoissonChurn(epochs, pop, minPop, 4, 2, 2, rand.New(rand.NewSource(seed)))
		if len(sched) != epochs {
			return false
		}
		p := pop
		for _, ops := range sched {
			for _, op := range ops {
				if op.Join {
					p++
				} else {
					p--
					if op.Crash && op.Victim < 0 {
						return false
					}
				}
			}
			// The plan keeps the end-of-epoch population at or above the floor.
			if p < minPop {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Zero rates yield empty epochs; the schedule shape is still correct.
	empty := PoissonChurn(3, 10, 1, 0, 0, 0, rand.New(rand.NewSource(1)))
	for _, ops := range empty {
		if len(ops) != 0 {
			t.Error("zero-rate epochs must be empty")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic when population < minimum")
		}
	}()
	PoissonChurn(1, 1, 5, 1, 1, 1, rand.New(rand.NewSource(1)))
}

func TestChurnScheduleInvariant(t *testing.T) {
	f := func(seed int64, jRaw, lRaw uint8) bool {
		joins := int(jRaw)%20 + 1
		leaves := int(lRaw) % (joins + 1)
		ops := ChurnSchedule(joins, leaves, rand.New(rand.NewSource(seed)))
		if len(ops) != joins+leaves {
			return false
		}
		j, l := 0, 0
		for _, op := range ops {
			if op.Join {
				j++
			} else {
				l++
			}
			if l > j {
				return false // would empty the network
			}
		}
		return j == joins && l == leaves
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic when leaves > joins")
		}
	}()
	ChurnSchedule(1, 2, rand.New(rand.NewSource(1)))
}

func TestPoissonLargeMean(t *testing.T) {
	// Means past exp-underflow (~745) must still track the requested rate
	// instead of silently capping; the splitting rule keeps the sampler
	// exact at any scale.
	rng := rand.New(rand.NewSource(4))
	const mean = 2000.0
	total := 0.0
	const draws = 200
	for i := 0; i < draws; i++ {
		total += float64(poisson(mean, rng))
	}
	got := total / draws
	if got < mean*0.95 || got > mean*1.05 {
		t.Errorf("poisson(%g) sample mean %g, want within 5%%", mean, got)
	}
}
