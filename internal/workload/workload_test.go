package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := UniformPlacement(10, 3, 20, rng)
	if len(p.Servers) != 10 || len(p.Names) != 10 {
		t.Fatal("shape")
	}
	for i, servers := range p.Servers {
		if len(servers) != 3 {
			t.Fatalf("object %d has %d replicas", i, len(servers))
		}
		seen := map[int]bool{}
		for _, s := range servers {
			if s < 0 || s >= 20 || seen[s] {
				t.Fatalf("bad/duplicate server %d", s)
			}
			seen[s] = true
		}
	}
	if p.Names[0] == p.Names[1] {
		t.Error("names must be distinct")
	}
}

func TestUniformPlacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	UniformPlacement(1, 5, 3, rand.New(rand.NewSource(1)))
}

func TestUniformQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := UniformQueries(100, 8, 5, rng)
	for i := range m.Clients {
		if m.Clients[i] < 0 || m.Clients[i] >= 8 || m.Objects[i] < 0 || m.Objects[i] >= 5 {
			t.Fatal("out of range")
		}
	}
}

func TestZipfQueriesSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := ZipfQueries(4000, 4, 50, 1.5, rng)
	counts := map[int]int{}
	for _, o := range m.Objects {
		if o < 0 || o >= 50 {
			t.Fatal("object out of range")
		}
		counts[o]++
	}
	if counts[0] < 4000/10 {
		t.Errorf("zipf head got %d of 4000; expected heavy skew", counts[0])
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for s<=1")
		}
	}()
	ZipfQueries(1, 1, 2, 1.0, rng)
}

func TestUniformPlacementDeterministic(t *testing.T) {
	a := UniformPlacement(50, 4, 200, rand.New(rand.NewSource(9)))
	b := UniformPlacement(50, 4, 200, rand.New(rand.NewSource(9)))
	for i := range a.Servers {
		for k := range a.Servers[i] {
			if a.Servers[i][k] != b.Servers[i][k] {
				t.Fatal("same seed must give the same placement")
			}
		}
	}
}

func TestPoissonChurnInvariants(t *testing.T) {
	f := func(seed int64, popRaw, epochRaw uint8) bool {
		pop := int(popRaw)%100 + 20
		epochs := int(epochRaw)%8 + 1
		minPop := pop / 2
		sched := PoissonChurn(epochs, pop, minPop, 4, 2, 2, rand.New(rand.NewSource(seed)))
		if len(sched) != epochs {
			return false
		}
		p := pop
		for _, ops := range sched {
			for _, op := range ops {
				if op.Join {
					p++
				} else {
					p--
					if op.Crash && op.Victim < 0 {
						return false
					}
				}
			}
			// The plan keeps the end-of-epoch population at or above the floor.
			if p < minPop {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Zero rates yield empty epochs; the schedule shape is still correct.
	empty := PoissonChurn(3, 10, 1, 0, 0, 0, rand.New(rand.NewSource(1)))
	for _, ops := range empty {
		if len(ops) != 0 {
			t.Error("zero-rate epochs must be empty")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic when population < minimum")
		}
	}()
	PoissonChurn(1, 1, 5, 1, 1, 1, rand.New(rand.NewSource(1)))
}

func TestChurnScheduleInvariant(t *testing.T) {
	f := func(seed int64, jRaw, lRaw uint8) bool {
		joins := int(jRaw)%20 + 1
		leaves := int(lRaw) % (joins + 1)
		ops := ChurnSchedule(joins, leaves, rand.New(rand.NewSource(seed)))
		if len(ops) != joins+leaves {
			return false
		}
		j, l := 0, 0
		for _, op := range ops {
			if op.Join {
				j++
			} else {
				l++
			}
			if l > j {
				return false // would empty the network
			}
		}
		return j == joins && l == leaves
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic when leaves > joins")
		}
	}()
	ChurnSchedule(1, 2, rand.New(rand.NewSource(1)))
}

func TestPoissonLargeMean(t *testing.T) {
	// Means past exp-underflow (~745) must still track the requested rate
	// instead of silently capping; the splitting rule keeps the sampler
	// exact at any scale.
	rng := rand.New(rand.NewSource(4))
	const mean = 2000.0
	total := 0.0
	const draws = 200
	for i := 0; i < draws; i++ {
		total += float64(poisson(mean, rng))
	}
	got := total / draws
	if got < mean*0.95 || got > mean*1.05 {
		t.Errorf("poisson(%g) sample mean %g, want within 5%%", mean, got)
	}
}

func TestChurnEdgeCaseContracts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	// Zero means: every epoch is empty, but the schedule has the right shape.
	sched := PoissonChurn(4, 10, 2, 0, 0, 0, rng)
	if len(sched) != 4 {
		t.Fatalf("got %d epochs, want 4", len(sched))
	}
	for e, ops := range sched {
		if len(ops) != 0 {
			t.Fatalf("epoch %d has %d ops under zero means", e, len(ops))
		}
	}

	// A zero mean disables only its own stream.
	sched = PoissonChurn(6, 50, 1, 3, 0, 0, rng)
	for e, ops := range sched {
		for _, op := range ops {
			if !op.Join {
				t.Fatalf("epoch %d planned a departure with leave/crash means 0", e)
			}
		}
	}

	// minPopulation < 1 clamps to 1: a singleton population is accepted and
	// never scheduled away.
	sched = PoissonChurn(8, 1, -5, 0, 4, 4, rng)
	pop := 1
	for _, ops := range sched {
		for _, op := range ops {
			if op.Join {
				pop++
			} else {
				pop--
			}
		}
		if pop < 1 {
			t.Fatalf("population plan dropped to %d", pop)
		}
	}

	// Negative epochs degrade to an empty plan.
	if got := PoissonChurn(-3, 10, 1, 1, 1, 1, rng); len(got) != 0 {
		t.Fatalf("negative epochs produced %d epochs", len(got))
	}

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("negative mean", func() { PoissonChurn(1, 10, 1, -1, 0, 0, rng) })
	mustPanic("NaN mean", func() { PoissonChurn(1, 10, 1, 0, math.NaN(), 0, rng) })
	mustPanic("population below minimum", func() { PoissonChurn(1, 1, 5, 0, 0, 0, rng) })
	mustPanic("negative joins", func() { ChurnSchedule(-1, 0, rng) })
	mustPanic("negative leaves", func() { ChurnSchedule(2, -1, rng) })
	mustPanic("leaves exceed joins", func() { ChurnSchedule(1, 2, rng) })

	if got := ChurnSchedule(0, 0, rng); len(got) != 0 {
		t.Fatalf("ChurnSchedule(0,0) returned %d ops", len(got))
	}
}

func TestFlashCrowdQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const q, objects, hotObj = 4000, 64, 17
	m := FlashCrowdQueries(q, 100, objects, hotObj, 0.8, 1.2, rng)
	if len(m.Clients) != q || len(m.Objects) != q {
		t.Fatalf("mix sized (%d,%d), want %d", len(m.Clients), len(m.Objects), q)
	}
	hot := 0
	for i, o := range m.Objects {
		if o < 0 || o >= objects {
			t.Fatalf("object %d out of range", o)
		}
		if c := m.Clients[i]; c < 0 || c >= 100 {
			t.Fatalf("client %d out of range", c)
		}
		if o == hotObj {
			hot++
		}
	}
	// 80% directed + Zipf background spillover; demand well above a plain
	// Zipf mix and below everything.
	if hot < q*7/10 || hot == q {
		t.Fatalf("hot object drew %d/%d queries at hot=0.8", hot, q)
	}

	// hot=0 degenerates to the background mix; hot=1 is all-hot.
	all := FlashCrowdQueries(500, 10, objects, hotObj, 1.0, 1.2, rand.New(rand.NewSource(8)))
	for _, o := range all.Objects {
		if o != hotObj {
			t.Fatalf("hot=1 drew object %d", o)
		}
	}

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("hot out of range", func() { FlashCrowdQueries(1, 1, 4, 0, 1.5, 1.2, rng) })
	mustPanic("hot object out of range", func() { FlashCrowdQueries(1, 1, 4, 9, 0.5, 1.2, rng) })
	mustPanic("zipf exponent", func() { FlashCrowdQueries(1, 1, 4, 0, 0.5, 1.0, rng) })
}

func TestJoinStampede(t *testing.T) {
	ops := JoinStampede(12)
	if len(ops) != 12 {
		t.Fatalf("got %d ops, want 12", len(ops))
	}
	for i, op := range ops {
		if !op.Join || op.Crash {
			t.Fatalf("op %d = %+v, want pure join", i, op)
		}
	}
	if len(JoinStampede(0)) != 0 {
		t.Fatal("JoinStampede(0) not empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative stampede did not panic")
		}
	}()
	JoinStampede(-1)
}
