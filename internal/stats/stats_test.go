package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty summary should read as zeros")
	}
	for _, x := range []float64{5, 1, 3, 2, 4} {
		s.Add(x)
	}
	if s.N() != 5 || s.Mean() != 3 {
		t.Errorf("n=%d mean=%g", s.N(), s.Mean())
	}
	if s.Median() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Errorf("order stats: med=%g min=%g max=%g", s.Median(), s.Min(), s.Max())
	}
	if got := s.Quantile(0.999); got != 5 {
		t.Errorf("p99.9 = %g", got)
	}
	if got := s.Quantile(-1); got != 1 {
		t.Errorf("clamped low quantile = %g", got)
	}
	if got := s.Quantile(2); got != 5 {
		t.Errorf("clamped high quantile = %g", got)
	}
}

func TestSummaryAddAfterQuery(t *testing.T) {
	var s Summary
	s.Add(10)
	_ = s.Median() // forces sort
	s.Add(1)
	if s.Min() != 1 {
		t.Error("Add after a query must invalidate the sort cache")
	}
}

func TestStddev(t *testing.T) {
	var s Summary
	s.Add(4)
	if s.Stddev() != 0 {
		t.Error("single observation stddev must be 0")
	}
	s.Add(8)
	if got := s.Stddev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %g, want 2", got)
	}
	s.AddInt(6)
	if s.N() != 3 {
		t.Error("AddInt")
	}
}

func TestLoadBalance(t *testing.T) {
	if LoadBalance(nil) != 0 {
		t.Error("empty bins")
	}
	if LoadBalance([]int{0, 0}) != 1 {
		t.Error("all-zero bins are trivially balanced")
	}
	if got := LoadBalance([]int{2, 2, 2}); got != 1 {
		t.Errorf("uniform bins = %g", got)
	}
	if got := LoadBalance([]int{6, 0, 0}); got != 3 {
		t.Errorf("all-in-one = %g, want 3", got)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 1 {
		t.Error("empty ratio must read 1 (vacuous success)")
	}
	r.Observe(true)
	r.Observe(true)
	r.Observe(false)
	if r.Value() < 0.66 || r.Value() > 0.67 {
		t.Errorf("ratio = %g", r.Value())
	}
	if r.String() == "" {
		t.Error("string")
	}
}

// Property: quantiles are monotone and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		var s Summary
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		qa, qb = math.Abs(math.Mod(qa, 1)), math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := s.Quantile(qa), s.Quantile(qb)
		return va <= vb && va >= s.Min() && vb <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: mean is within [min, max].
func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var s Summary
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-6 && m <= s.Max()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
