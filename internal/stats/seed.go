package stats

// Deterministic RNG-stream derivation for the experiment engine.
//
// Experiments used to spread one base seed across their internal RNGs with
// ad-hoc arithmetic (seed+7, seed*3, ...). Those offsets alias: with base
// seeds s and s' the streams (s+7) and (s'*3) coincide whenever s+7 == 3s',
// silently correlating experiments that are supposed to be independent.
// StreamSeed instead hashes (base seed, label, index) through SplitMix64, so
// every (experiment, cell, purpose) triple gets its own far-apart stream and
// the same triple always gets the same one.

// SplitMix64 is the finalizer of Steele et al.'s SplitMix generator: a
// bijective avalanche mix on 64 bits. Distinct inputs give distinct outputs.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// StreamSeed derives an independent seed for the RNG stream identified by
// (label, index) under the given base seed. Labels are typically an
// experiment name ("SurrogateOverhead") or a purpose within a cell
// ("build", "queries"); index distinguishes cells of the same experiment.
func StreamSeed(base int64, label string, index int) int64 {
	h := SplitMix64(uint64(base))
	for _, b := range []byte(label) {
		h = SplitMix64(h ^ uint64(b))
	}
	h = SplitMix64(h ^ uint64(uint32(index)))
	// Keep the sign bit clear so callers can treat the seed as an offset or
	// print it without surprises; 63 bits of stream space is plenty.
	return int64(h &^ (1 << 63))
}
