// Package stats provides the small, deterministic statistical accumulators
// used by the experiment harness: summaries with exact percentiles, and
// load-balance ratios. Nothing here is approximate or randomized, so bench
// output is reproducible bit-for-bit from a seed.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates float64 observations and reports order statistics.
// The zero value is ready to use.
type Summary struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddInt records one integer observation.
func (s *Summary) AddInt(x int) { s.Add(float64(x)) }

// N returns the number of observations.
func (s *Summary) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Stddev returns the population standard deviation, or 0 for fewer than two
// observations.
func (s *Summary) Stddev() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.xs)))
}

func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using the nearest-rank
// method, or 0 for an empty summary.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s.ensureSorted()
	idx := int(math.Ceil(q*float64(len(s.xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.xs[idx]
}

// Median returns the 0.5 quantile.
func (s *Summary) Median() float64 { return s.Quantile(0.5) }

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[0]
}

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// String renders a one-line digest.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
		s.N(), s.Mean(), s.Quantile(0.5), s.Quantile(0.9), s.Quantile(0.99), s.Max())
}

// LoadBalance quantifies skew across bins: the ratio of the maximum bin to
// the mean bin. A perfectly balanced assignment yields 1.0.
func LoadBalance(bins []int) float64 {
	if len(bins) == 0 {
		return 0
	}
	sum, max := 0, 0
	for _, b := range bins {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(bins))
	return float64(max) / mean
}

// Ratio is a success/total counter.
type Ratio struct {
	Success, Total int
}

// Observe records one trial.
func (r *Ratio) Observe(ok bool) {
	r.Total++
	if ok {
		r.Success++
	}
}

// Value returns the success fraction, or 1 when no trials were recorded
// (vacuous success keeps availability reports conservative to read).
func (r *Ratio) Value() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Success) / float64(r.Total)
}

func (r *Ratio) String() string {
	return fmt.Sprintf("%d/%d (%.2f%%)", r.Success, r.Total, 100*r.Value())
}
