package stats

import "testing"

func TestSplitMix64Avalanche(t *testing.T) {
	// Adjacent inputs must map far apart (no low-bit correlation).
	a, b := SplitMix64(1), SplitMix64(2)
	if a == b {
		t.Fatal("adjacent inputs collide")
	}
	diff := a ^ b
	bits := 0
	for diff != 0 {
		bits += int(diff & 1)
		diff >>= 1
	}
	if bits < 16 {
		t.Errorf("adjacent inputs differ in only %d bits", bits)
	}
}

func TestStreamSeedDistinctAcrossLabels(t *testing.T) {
	// The old ad-hoc scheme (seed+7 vs seed*3, ...) aliases across
	// experiments for small seeds; label-keyed derivation must not.
	labels := []string{"SurrogateOverhead", "Multicast", "Deletion", "MultiRoot", "queries", "build"}
	for seed := int64(-64); seed <= 64; seed++ {
		seen := map[int64]string{}
		for _, l := range labels {
			for idx := 0; idx < 8; idx++ {
				s := StreamSeed(seed, l, idx)
				key := l + string(rune('0'+idx))
				if prev, ok := seen[s]; ok {
					t.Fatalf("seed %d: stream for %q collides with %q", seed, key, prev)
				}
				seen[s] = key
			}
		}
	}
}

func TestStreamSeedDeterministic(t *testing.T) {
	if StreamSeed(42, "x", 3) != StreamSeed(42, "x", 3) {
		t.Fatal("StreamSeed not deterministic")
	}
	if StreamSeed(42, "x", 3) == StreamSeed(43, "x", 3) {
		t.Fatal("base seed ignored")
	}
	if StreamSeed(42, "x", 3) < 0 {
		t.Fatal("StreamSeed returned a negative seed")
	}
}
