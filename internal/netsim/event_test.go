package netsim

import (
	"fmt"
	"math"
	"testing"

	"tapestry/internal/metric"
)

// TestEngineOrdersByTime verifies events fire in virtual-time order
// regardless of scheduling order.
func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine(1)
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.Run()
	want := []float64{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
}

// sameTimeOrder schedules n same-instant events in the given insertion order
// under one seed and reports the order they fired in.
func sameTimeOrder(seed int64, labels []int) []int {
	e := NewEngine(seed)
	var got []int
	for _, l := range labels {
		l := l
		e.At(1, func() { got = append(got, l) })
	}
	e.Run()
	return got
}

// TestEngineTieBreakSeeded pins the tie-break contract: events scheduled for
// the same instant fire in a seeded pseudo-random order — reproducible for a
// seed, different across seeds, and not simply insertion order.
func TestEngineTieBreakSeeded(t *testing.T) {
	labels := []int{0, 1, 2, 3, 4, 5, 6, 7}
	a := sameTimeOrder(7, labels)
	b := sameTimeOrder(7, labels)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed gave different orders: %v vs %v", a, b)
	}
	// Across many seeds, at least one must deviate from insertion order and
	// at least two must disagree — otherwise the "seeded" tie-break is a
	// fixed FIFO in disguise.
	distinct := map[string]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		distinct[fmt.Sprint(sameTimeOrder(seed, labels))] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("tie-break order identical across 8 seeds: %v", distinct)
	}
	if !distinct[fmt.Sprint(a)] {
		t.Fatalf("seed 7 order missing from seed sweep bookkeeping")
	}
}

// TestEngineSendLatency checks that a message under the engine takes its
// metric distance in virtual time, that an RPC takes a full round trip, and
// that Cost carries the virtual span.
func TestEngineSendLatency(t *testing.T) {
	net := New(metric.NewRing(16))
	e := NewEngine(3)
	net.AttachEngine(e)
	net.Attach(0)
	net.Attach(4) // ring distance 0->4 is 4

	var cost Cost
	e.At(10, func() {
		if err := net.RPC(0, 4, &cost); err != nil {
			t.Errorf("rpc: %v", err)
		}
	})
	e.Run()
	if e.Now() != 18 {
		t.Fatalf("clock after RPC = %v, want 18 (start 10 + 2 legs x distance 4)", e.Now())
	}
	begin, end, ok := cost.VirtualSpan()
	if !ok || begin != 10 || end != 18 {
		t.Fatalf("virtual span = (%v,%v,%v), want (10,18,true)", begin, end, ok)
	}
	if cost.VirtualLatency() != 8 {
		t.Fatalf("virtual latency = %v, want 8", cost.VirtualLatency())
	}
	// Direct-call mode never stamps.
	var direct Cost
	if err := net.Send(0, 4, &direct, true); err != nil {
		t.Fatalf("direct send: %v", err)
	}
	if _, _, ok := direct.VirtualSpan(); ok {
		t.Fatalf("direct-call cost unexpectedly has a virtual span")
	}
}

// TestEngineDeliveryTimeLiveness pins the semantic the event backend adds:
// liveness is evaluated when the message ARRIVES, not when it is sent. A
// receiver that dies while the message is in flight times the sender out.
func TestEngineDeliveryTimeLiveness(t *testing.T) {
	net := New(metric.NewRing(64))
	e := NewEngine(5)
	net.AttachEngine(e)
	net.Attach(0)
	net.Attach(10)

	var sendErr error
	e.At(0, func() {
		var c Cost
		sendErr = net.Send(0, 10, &c, true) // arrives at t=10
	})
	e.At(5, func() { net.Detach(10) }) // dies mid-flight
	e.Run()
	if sendErr == nil {
		t.Fatalf("send to a receiver that died mid-flight succeeded")
	}

	// And the converse: a receiver that comes up mid-flight is reachable.
	var lateErr error
	e.At(20, func() {
		var c Cost
		lateErr = net.Send(0, 10, &c, true) // arrives at t=30
	})
	e.At(25, func() { net.Attach(10) })
	e.Run()
	if lateErr != nil {
		t.Fatalf("send delivered after receiver came up failed: %v", lateErr)
	}
}

// TestEngineInboundQueue verifies the per-address inbound queue: with a
// nonzero service time, two messages arriving together at one address are
// serialized, while a message to a different address is not delayed.
func TestEngineInboundQueue(t *testing.T) {
	net := New(metric.NewRing(32))
	e := NewEngine(2)
	e.SetServiceTime(3)
	net.AttachEngine(e)
	for _, a := range []Addr{0, 1, 2, 16} {
		net.Attach(a)
	}

	done := map[string]float64{}
	// Staggered send times make the execution order independent of the
	// tie-break seed: 1->2 (distance 1) arrives at t=1 and occupies address 2
	// until 1+3=4; 0->2 (distance 2) sent at t=0.5 arrives at t=2.5 but is
	// queued until 4; 0->16 (distance 16) is to another address, undelayed.
	e.At(0, func() {
		var c Cost
		_ = net.Send(1, 2, &c, true)
		done["first"] = e.Now()
	})
	e.At(0.5, func() {
		var c Cost
		_ = net.Send(0, 2, &c, true)
		done["second"] = e.Now()
	})
	e.At(0.25, func() {
		var c Cost
		_ = net.Send(0, 16, &c, true) // arrives at 0.25+16
		done["other"] = e.Now()
	})
	e.Run()

	if done["first"] != 1 {
		t.Fatalf("first delivery at %v, want 1", done["first"])
	}
	// Second arrives at t=2.5 but the receiver is busy until 1+3=4.
	if done["second"] != 4 {
		t.Fatalf("queued delivery at %v, want 4 (behind service time)", done["second"])
	}
	if done["other"] != 16.25 {
		t.Fatalf("unrelated address delayed: delivered at %v, want 16.25", done["other"])
	}
	st := e.Stats()
	if st.Queued != 1 || st.MaxWait != 1.5 {
		t.Fatalf("queue stats = %+v, want Queued=1 MaxWait=1.5", st)
	}
}

// TestEngineSleepAndSpawn covers the op-side primitives: Sleep advances an
// op through virtual time, Spawn/Wait joins a child op deterministically.
func TestEngineSleepAndSpawn(t *testing.T) {
	e := NewEngine(9)
	var trace []string
	e.At(1, func() {
		trace = append(trace, fmt.Sprintf("parent@%g", e.Now()))
		child := e.Spawn(func() {
			e.Sleep(5)
			trace = append(trace, fmt.Sprintf("child@%g", e.Now()))
		})
		e.Sleep(2)
		trace = append(trace, fmt.Sprintf("parent-awake@%g", e.Now()))
		child.Wait()
		trace = append(trace, fmt.Sprintf("joined@%g", e.Now()))
	})
	e.Run()
	want := "[parent@1 parent-awake@3 child@6 joined@6]"
	if got := fmt.Sprint(trace); got != want {
		t.Fatalf("trace = %v, want %v", got, want)
	}
}

// TestEngineTwinReplay runs an identical randomized message storm twice and
// requires bit-identical traces — the determinism contract of the backend.
func TestEngineTwinReplay(t *testing.T) {
	run := func() string {
		net := New(metric.NewRing(128))
		e := NewEngine(11)
		e.SetServiceTime(0.5)
		net.AttachEngine(e)
		for a := 0; a < 32; a++ {
			net.Attach(Addr(a))
		}
		var trace string
		// 64 ops, many at the same instants, each sending a short chain.
		for i := 0; i < 64; i++ {
			i := i
			e.At(float64(i%8), func() {
				var c Cost
				from := Addr(i % 32)
				for hop := 0; hop < 3; hop++ {
					to := Addr((i*7 + hop*5) % 32)
					err := net.Send(from, to, &c, true)
					trace += fmt.Sprintf("op%d hop%d t=%.3f err=%v\n", i, hop, e.Now(), err != nil)
					from = to
				}
			})
		}
		e.Run()
		st := e.Stats()
		trace += fmt.Sprintf("final %v msgs=%d\n", st, net.TotalMessages())
		return trace
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("twin runs diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
}

// TestCostMergeWidensVirtualSpan checks Merge folds sub-operation spans by
// widening, not overwriting.
func TestCostMergeWidensVirtualSpan(t *testing.T) {
	var a, b, c Cost
	a.Stamp(5)
	a.Stamp(7)
	b.Stamp(2)
	b.Stamp(6)
	a.Merge(&b)
	if begin, end, ok := a.VirtualSpan(); !ok || begin != 2 || end != 7 {
		t.Fatalf("merged span = (%v,%v,%v), want (2,7,true)", begin, end, ok)
	}
	c.Merge(&a)
	if begin, end, ok := c.VirtualSpan(); !ok || begin != 2 || end != 7 {
		t.Fatalf("merge into empty = (%v,%v,%v), want (2,7,true)", begin, end, ok)
	}
	if math.IsNaN(c.VirtualLatency()) || c.VirtualLatency() != 5 {
		t.Fatalf("latency = %v, want 5", c.VirtualLatency())
	}
}
