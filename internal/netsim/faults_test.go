package netsim

import (
	"errors"
	"testing"

	"tapestry/internal/metric"
)

// faultNet builds a small fully-attached network over a ring space.
func faultNet(t *testing.T, size int) *Network {
	t.Helper()
	n := New(metric.NewRing(size))
	for a := 0; a < size; a++ {
		n.Attach(Addr(a))
	}
	return n
}

// drive sends a fixed deterministic message pattern and returns the per-op
// cost ledger alongside the outcome of each send.
func drive(n *Network, msgs int) (cost *Cost, errs []error) {
	cost = &Cost{}
	size := n.Size()
	for i := 0; i < msgs; i++ {
		from := Addr(i % size)
		to := Addr((i*7 + 3) % size)
		errs = append(errs, n.Send(from, to, cost, true))
	}
	return cost, errs
}

// TestFaultFreeDefaultIdentical pins the satellite claim: a network that
// never configured faults behaves byte-identically to one that configured
// and then cleared them — same per-op cost, same network counters, zero
// fault accounting on the former.
func TestFaultFreeDefaultIdentical(t *testing.T) {
	virgin := faultNet(t, 32)
	cycled := faultNet(t, 32)
	cycled.SetLinkFaults(0.5, 0.25, 99)
	group := make([]int, 32)
	for i := 16; i < 32; i++ {
		group[i] = 1
	}
	cycled.SetPartition(group)
	cycled.ClearFaults()

	vc, verrs := drive(virgin, 200)
	cc, cerrs := drive(cycled, 200)

	for i := range verrs {
		if (verrs[i] == nil) != (cerrs[i] == nil) {
			t.Fatalf("send %d: virgin err=%v cycled err=%v", i, verrs[i], cerrs[i])
		}
	}
	vm, vh, vd := vc.Snapshot()
	cm, ch, cd := cc.Snapshot()
	if vm != cm || vh != ch || vd != cd {
		t.Fatalf("cost diverged: virgin (%d,%d,%g) vs cycled (%d,%d,%g)", vm, vh, vd, cm, ch, cd)
	}
	vs, cs := virgin.Stats(), cycled.Stats()
	if vs != cs {
		t.Fatalf("stats diverged: virgin %+v vs cycled %+v", vs, cs)
	}
	if vs.Lost != 0 || vs.Duplicated != 0 || vs.Blocked != 0 {
		t.Fatalf("fault counters nonzero on fault-free run: %+v", vs)
	}
	if vs.TotalMessages != 200 {
		t.Fatalf("TotalMessages = %d, want 200", vs.TotalMessages)
	}
}

func TestLinkLossAll(t *testing.T) {
	n := faultNet(t, 16)
	n.SetLinkFaults(1.0, 0, 7)
	cost, errs := drive(n, 50)
	for i, err := range errs {
		if !errors.Is(err, ErrUnreachable) {
			t.Fatalf("send %d: err = %v, want ErrUnreachable", i, err)
		}
	}
	s := n.Stats()
	if s.Lost != 50 || s.Duplicated != 0 || s.Blocked != 0 {
		t.Fatalf("stats = %+v, want 50 lost only", s)
	}
	// The attempt is still charged.
	if m := cost.Messages(); m != 50 {
		t.Fatalf("cost.Messages = %d, want 50", m)
	}
}

func TestDuplicationAll(t *testing.T) {
	n := faultNet(t, 16)
	n.EnableLoadTracking()
	n.SetLinkFaults(0, 1.0, 7)
	cost, errs := drive(n, 50)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("send %d: unexpected error %v", i, err)
		}
	}
	s := n.Stats()
	if s.Duplicated != 50 || s.Lost != 0 || s.Blocked != 0 {
		t.Fatalf("stats = %+v, want 50 duplicated only", s)
	}
	if s.TotalMessages != 100 {
		t.Fatalf("TotalMessages = %d, want 100 (each message doubled)", s.TotalMessages)
	}
	m, h, _ := cost.Snapshot()
	if m != 100 || h != 50 {
		t.Fatalf("cost = (%d msgs, %d hops), want (100, 50): duplicates are not hops", m, h)
	}
	var load int64
	for a := 0; a < n.Size(); a++ {
		load += n.LoadAt(Addr(a))
	}
	if load != 100 {
		t.Fatalf("summed load = %d, want 100", load)
	}
}

func TestPartialLossIsSeededAndBounded(t *testing.T) {
	runOnce := func() (int64, []error) {
		n := faultNet(t, 16)
		n.SetLinkFaults(0.3, 0, 42)
		_, errs := drive(n, 400)
		return n.Stats().Lost, errs
	}
	lostA, errsA := runOnce()
	lostB, errsB := runOnce()
	if lostA != lostB {
		t.Fatalf("same seed lost %d vs %d messages", lostA, lostB)
	}
	for i := range errsA {
		if (errsA[i] == nil) != (errsB[i] == nil) {
			t.Fatalf("send %d fate differs across identically seeded runs", i)
		}
	}
	if lostA < 60 || lostA > 180 {
		t.Fatalf("lost %d of 400 at rate 0.3 — far outside plausible range", lostA)
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	n := faultNet(t, 16)
	group := make([]int, 16)
	for i := 8; i < 16; i++ {
		group[i] = 1
	}
	n.SetPartition(group)

	cost := &Cost{}
	if err := n.Send(0, 7, cost, true); err != nil {
		t.Fatalf("same-side send failed: %v", err)
	}
	err := n.Send(0, 12, cost, true)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("cross-cut send err = %v, want ErrUnreachable", err)
	}
	if err := n.RPC(9, 15, cost); err != nil {
		t.Fatalf("minority-side RPC failed: %v", err)
	}
	if s := n.Stats(); s.Blocked != 1 {
		t.Fatalf("Blocked = %d, want 1", s.Blocked)
	}

	n.HealPartition()
	if err := n.Send(0, 12, cost, true); err != nil {
		t.Fatalf("post-heal send failed: %v", err)
	}
	if s := n.Stats(); s.Blocked != 1 {
		t.Fatalf("Blocked grew after heal: %+v", s)
	}
}

// TestPartitionSurvivesLinkFaultReconfig pins the copy-on-write contract:
// changing one knob keeps the other, and the draw stream survives
// partition-only changes.
func TestPartitionSurvivesLinkFaultReconfig(t *testing.T) {
	n := faultNet(t, 16)
	group := make([]int, 16)
	for i := 8; i < 16; i++ {
		group[i] = 1
	}
	n.SetPartition(group)
	n.SetLinkFaults(0, 1.0, 3) // all-duplicate: deterministic without draws
	cost := &Cost{}
	if err := n.Send(0, 12, cost, true); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partition dropped by SetLinkFaults: err = %v", err)
	}
	if err := n.Send(0, 7, cost, true); err != nil {
		t.Fatalf("same-side send failed: %v", err)
	}
	n.HealPartition()
	if err := n.Send(0, 12, cost, true); err != nil {
		t.Fatalf("post-heal send failed: %v", err)
	}
	if s := n.Stats(); s.Duplicated != 2 || s.Blocked != 1 {
		t.Fatalf("stats = %+v, want 2 duplicated, 1 blocked", s)
	}
}

func TestFaultRateValidation(t *testing.T) {
	n := faultNet(t, 8)
	for _, c := range []struct{ loss, dup float64 }{
		{-0.1, 0}, {0, -0.1}, {1.1, 0}, {0, 1.1}, {0.6, 0.6},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetLinkFaults(%v, %v) did not panic", c.loss, c.dup)
				}
			}()
			n.SetLinkFaults(c.loss, c.dup, 1)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetPartition with short mask did not panic")
			}
		}()
		n.SetPartition([]int{0, 1})
	}()
}
