package netsim

import (
	"testing"

	"tapestry/internal/metric"
)

func TestLoadTracking(t *testing.T) {
	n := New(metric.NewRing(16))
	for a := 0; a < 16; a++ {
		n.Attach(Addr(a))
	}
	if got := n.LoadAt(3); got != 0 {
		t.Fatalf("load before enabling = %d, want 0", got)
	}
	_ = n.Send(0, 3, nil, true)
	n.EnableLoadTracking()
	for i := 0; i < 5; i++ {
		_ = n.Send(0, 3, nil, true)
	}
	_ = n.Send(3, 0, nil, false)
	if got := n.LoadAt(3); got != 5 {
		t.Errorf("LoadAt(3) = %d, want 5 (pre-enable traffic uncounted)", got)
	}
	if got := n.LoadAt(0); got != 1 {
		t.Errorf("LoadAt(0) = %d, want 1", got)
	}
	// Failed sends still count as delivered load at the target address: the
	// probe consumed the destination's network attachment point.
	n.Detach(7)
	_ = n.Send(0, 7, nil, true)
	if got := n.LoadAt(7); got != 1 {
		t.Errorf("LoadAt(7) = %d, want 1 (failed probe charged)", got)
	}
	// Re-enabling resets.
	n.EnableLoadTracking()
	if got := n.LoadAt(3); got != 0 {
		t.Errorf("LoadAt(3) after reset = %d, want 0", got)
	}
}
