package netsim

import (
	"fmt"

	"tapestry/internal/stats"
)

// Engine is a deterministic discrete-event scheduler over virtual time — the
// execution backend that lets maintenance, repair and queries genuinely
// interleave on overlays far larger than the synchronous call-graph model
// can drive.
//
// # Model
//
// Operations are ordinary Go functions scheduled with At/After. Each runs on
// its own goroutine, but the engine resumes exactly ONE at a time: an op
// runs until it parks (inside Network.Send, Sleep, or Join), the engine pops
// the next event from the queue, advances the virtual clock to its
// timestamp, and hands control to the op that owns it. Because only one op
// ever executes between two scheduler decisions, a run is a deterministic
// function of (seed, scheduled work) — the host's goroutine scheduler, core
// count and -workers value cannot change any outcome.
//
// Every message transmitted while an op runs under the engine is charged its
// metric distance as virtual LATENCY, not just as abstract cost: Send parks
// the op and schedules a delivery event at now + distance. Deliveries pass
// through a per-address inbound queue: a receiver still busy with an earlier
// delivery (see SetServiceTime) delays the message, so hotspots queue in
// virtual time exactly like an overloaded server would.
//
// # Event ordering
//
// The queue is a binary heap ordered by (time, tie, seq). The tie is drawn
// from a SplitMix64 stream seeded at construction: two events scheduled for
// the same instant fire in a seeded pseudo-random order rather than
// insertion order, so same-time interleavings are adversarially shuffled yet
// exactly reproducible. seq (the scheduling sequence number) makes the order
// total even on a tie collision.
//
// # Discipline
//
// The engine is deliberately not thread-safe: while Run is draining the
// queue, only the currently-resumed op may touch the engine (schedule, park,
// send). Outside Run, only one goroutine — the one that will call Run — may
// schedule. The resume/yield handshake makes every transition visible to
// the race detector, so misuse shows up as a data race, not silent
// corruption.
type Engine struct {
	now float64
	seq uint64
	tie uint64 // SplitMix64 stream state for the seeded tie-break

	heap []event

	// inbox[a] is address a's inbound delivery queue state; sized by the
	// Network at AttachEngine.
	inbox   []portState
	service float64 // per-delivery receiver occupancy (virtual time)

	running bool
	cur     *proc

	// Counters, maintained by the loop and the (unique) running op.
	processed uint64  // events executed
	delivered uint64  // messages delivered through inbound queues
	queued    uint64  // deliveries delayed behind a busy receiver
	maxWait   float64 // worst queueing delay seen (virtual time)
}

// event is one heap entry: either the start of a new op (fn) or the wakeup
// of a parked one (p).
type event struct {
	at  float64
	tie uint64
	seq uint64
	fn  func()
	p   *proc
}

// proc is one suspended or running operation. The engine resumes it by
// sending on resume; the op hands control back by sending on yield (when
// parking) and closes done when it returns.
type proc struct {
	resume chan struct{}
	yield  chan struct{}
}

// portState is one address's inbound-queue occupancy.
type portState struct {
	busyUntil float64
}

// NewEngine creates an engine whose same-time tie-breaks are drawn from a
// stream derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{tie: uint64(stats.StreamSeed(seed, "netsim/engine", 0))}
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// SetServiceTime sets the virtual time a receiver is occupied by each
// delivered message. Zero (the default) means deliveries are instantaneous
// to process and the inbound queue only orders same-time arrivals; a
// positive value makes concurrent traffic to one address genuinely queue.
func (e *Engine) SetServiceTime(s float64) {
	if s < 0 {
		panic("netsim: negative service time")
	}
	e.service = s
}

// nextTie advances the seeded tie-break stream.
func (e *Engine) nextTie() uint64 {
	e.tie = stats.SplitMix64(e.tie)
	return e.tie
}

// push schedules an event, clamping times in the past to the current clock.
func (e *Engine) push(at float64, fn func(), p *proc) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.heap = append(e.heap, event{at: at, tie: e.nextTie(), seq: e.seq, fn: fn, p: p})
	e.siftUp(len(e.heap) - 1)
}

func (e *Engine) less(i, j int) bool {
	a, b := e.heap[i], e.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.tie != b.tie {
		return a.tie < b.tie
	}
	return a.seq < b.seq
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			return
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) pop() event {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap[last] = event{} // release closures for GC
	e.heap = e.heap[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(e.heap) && e.less(l, small) {
			small = l
		}
		if r < len(e.heap) && e.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		e.heap[i], e.heap[small] = e.heap[small], e.heap[i]
		i = small
	}
	return top
}

// At schedules fn to start as a new operation at virtual time t (clamped to
// the current clock if already past). fn runs on its own goroutine under the
// engine's one-at-a-time regime; it may call blocking overlay operations,
// which park at every simulated message.
func (e *Engine) At(t float64, fn func()) {
	if fn == nil {
		panic("netsim: At with nil fn")
	}
	e.push(t, fn, nil)
}

// After schedules fn to start d virtual-time units from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Sleep parks the calling op until d units of virtual time have passed.
// It must be called from an op started by the engine.
func (e *Engine) Sleep(d float64) {
	if d < 0 {
		d = 0
	}
	e.pause(e.now + d)
}

// pause suspends the currently-running op until the clock reaches at.
func (e *Engine) pause(at float64) {
	p := e.cur
	if p == nil || !e.running {
		panic("netsim: pause outside a scheduled op (is the engine running?)")
	}
	e.push(at, nil, p)
	p.yield <- struct{}{}
	<-p.resume
}

// active reports whether an op is currently executing under the engine —
// the only situation in which traffic takes the event-driven path. Setup
// traffic issued before Run (or between Runs) keeps direct-call semantics.
func (e *Engine) active() bool { return e.running && e.cur != nil }

// transmit models one message in flight from the running op to address `to`:
// it computes the delivery time from the latency and the receiver's inbound
// queue, then parks the op until the message is delivered. Called by
// Network.Send; a call while no op is running (setup traffic before Run) is
// a no-op, preserving direct-call semantics.
func (e *Engine) transmit(to Addr, latency float64) {
	if !e.running || e.cur == nil {
		return
	}
	arrival := e.now + latency
	delivery := arrival
	if int(to) < len(e.inbox) {
		q := &e.inbox[to]
		if q.busyUntil > arrival {
			delivery = q.busyUntil
			e.queued++
			if w := delivery - arrival; w > e.maxWait {
				e.maxWait = w
			}
		}
		q.busyUntil = delivery + e.service
	}
	e.delivered++
	e.pause(delivery)
}

// attachPorts sizes the per-address inbound queues; called by
// Network.AttachEngine.
func (e *Engine) attachPorts(size int) {
	if len(e.inbox) < size {
		e.inbox = make([]portState, size)
	}
}

// Run drains the event queue: it repeatedly pops the earliest event,
// advances the clock, and runs the owning op until it parks or returns.
// Run returns when no events remain; it may be called again after
// scheduling more work (the clock keeps rising across calls).
func (e *Engine) Run() {
	if e.running {
		panic("netsim: Engine.Run is not reentrant")
	}
	e.running = true
	for len(e.heap) > 0 {
		ev := e.pop()
		if ev.at > e.now {
			e.now = ev.at
		}
		e.processed++
		p := ev.p
		if p == nil {
			p = &proc{resume: make(chan struct{}), yield: make(chan struct{})}
			fn := ev.fn
			go func() {
				<-p.resume
				fn()
				p.yield <- struct{}{}
				// The loop observes the yield with cur==nil-bound proc and
				// discards it; the goroutine ends here.
			}()
		}
		e.cur = p
		p.resume <- struct{}{}
		<-p.yield
		e.cur = nil
	}
	e.running = false
}

// OpHandle joins on a spawned child op. It exists for ops that want internal
// fan-out while staying inside the deterministic regime.
type OpHandle struct {
	eng      *Engine
	finished bool
	waiters  []*proc
}

// Spawn schedules fn as an op at the current virtual time and returns a
// handle for joining on its completion.
func (e *Engine) Spawn(fn func()) *OpHandle {
	h := &OpHandle{eng: e}
	e.push(e.now, func() {
		fn()
		h.finished = true
		for _, w := range h.waiters {
			e.push(e.now, nil, w)
		}
		h.waiters = nil
	}, nil)
	return h
}

// Wait parks the calling op until the handle's op has finished.
func (h *OpHandle) Wait() {
	if h.finished {
		return
	}
	e := h.eng
	p := e.cur
	if p == nil || !e.running {
		panic("netsim: Wait outside a scheduled op")
	}
	h.waiters = append(h.waiters, p)
	p.yield <- struct{}{}
	<-p.resume
}

// EngineStats is a snapshot of the engine's counters.
type EngineStats struct {
	Now       float64 // virtual clock
	Events    uint64  // events executed by Run
	Delivered uint64  // messages delivered through inbound queues
	Queued    uint64  // deliveries that waited behind a busy receiver
	MaxWait   float64 // worst inbound-queue delay (virtual time)
	Pending   int     // events still scheduled
}

// Stats returns a snapshot of the engine's counters. Call it between Run
// invocations (or from the running op).
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Now:       e.now,
		Events:    e.processed,
		Delivered: e.delivered,
		Queued:    e.queued,
		MaxWait:   e.maxWait,
		Pending:   len(e.heap),
	}
}

func (s EngineStats) String() string {
	return fmt.Sprintf("t=%.3f events=%d delivered=%d queued=%d maxwait=%.3f",
		s.Now, s.Events, s.Delivered, s.Queued, s.MaxWait)
}
