// Package netsim simulates the physical network underneath the overlay.
//
// Overlay nodes live at points ("addresses") of a metric space. Every
// simulated message is charged its metric distance and counted, both on a
// per-operation Cost tracker and on network-wide counters, so experiments
// can report hops, latency (metric distance) and message complexity exactly.
// The network also tracks liveness — messages to departed or failed nodes
// fail — and carries a virtual clock (epochs) for soft-state expiry.
//
// The simulator is deliberately synchronous: algorithms are written in RPC
// style and every cross-node call passes through Network.Send, which is the
// single point of cost accounting and failure injection. Concurrency is
// real (operations may run on many goroutines), so the dynamic-membership
// machinery is exercised under genuine interleavings.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"tapestry/internal/metric"
)

// Addr is a point index in the underlying metric space.
type Addr int

// ErrUnreachable is returned when a message targets a dead or never-attached
// address.
var ErrUnreachable = errors.New("netsim: destination unreachable")

// Cost accumulates the expense of one logical operation (a lookup, a join,
// a multicast...). A nil *Cost is valid everywhere and records nothing,
// which keeps hot paths free of conditionals at call sites.
//
// All counters are lock-free atomics — concurrent adders never contend on a
// mutex — with the metric distance accumulated as a CAS loop over the
// float64 bit pattern. Snapshot is consistent per field; when readers need a
// single coherent triple they must quiesce the writers first, which every
// caller in this repository does anyway (costs are read after the operation
// completes).
type Cost struct {
	messages atomic.Int64
	hops     atomic.Int64
	distance atomic.Uint64 // float64 bit pattern
}

// Add charges one message of the given distance; hop indicates whether the
// message advances an application-level routing path (true) or is auxiliary
// traffic such as an acknowledgment (false).
func (c *Cost) Add(distance float64, hop bool) {
	if c == nil {
		return
	}
	c.messages.Add(1)
	if hop {
		c.hops.Add(1)
	}
	c.addDistance(distance)
}

// addDistance folds d into the running float64 total with a CAS loop.
func (c *Cost) addDistance(d float64) {
	if d == 0 {
		return
	}
	for {
		old := c.distance.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if c.distance.CompareAndSwap(old, next) {
			return
		}
	}
}

// Merge folds other into c (used when a sub-operation keeps its own ledger).
func (c *Cost) Merge(other *Cost) {
	if c == nil || other == nil {
		return
	}
	m, h, d := other.Snapshot()
	c.messages.Add(int64(m))
	c.hops.Add(int64(h))
	c.addDistance(d)
}

// Snapshot returns (messages, hops, distance); each field is read
// atomically.
func (c *Cost) Snapshot() (messages, hops int, distance float64) {
	if c == nil {
		return 0, 0, 0
	}
	return int(c.messages.Load()), int(c.hops.Load()), math.Float64frombits(c.distance.Load())
}

// Messages returns the message count so far.
func (c *Cost) Messages() int { m, _, _ := c.Snapshot(); return m }

// Hops returns the routing-hop count so far.
func (c *Cost) Hops() int { _, h, _ := c.Snapshot(); return h }

// Distance returns the total metric distance traversed so far.
func (c *Cost) Distance() float64 { _, _, d := c.Snapshot(); return d }

func (c *Cost) String() string {
	m, h, d := c.Snapshot()
	return fmt.Sprintf("msgs=%d hops=%d dist=%.3f", m, h, d)
}

// Network is the simulated substrate shared by all overlay nodes of one
// experiment.
//
// Liveness is a word-packed atomic bitset with a maintained live count, so
// the Send/Alive hot path and LiveCount are lock-free: concurrent sends,
// attaches and detaches never serialise on a network-wide lock.
type Network struct {
	space metric.Space
	size  int

	live      []atomic.Uint64 // bit a&63 of word a>>6 = address a is attached
	liveCount atomic.Int64

	totalMessages atomic.Int64
	epoch         atomic.Int64

	// load, when enabled, counts messages ADDRESSED to each address — the
	// hotspot measurement for the serving-layer experiments. A probe to a
	// dead address still counts: the attempt consumed that attachment
	// point, exactly like the charged timeout in Send. nil (one
	// pointer-null check on Send) unless EnableLoadTracking was called.
	load []atomic.Int64
}

// New creates a network over the given metric space with all addresses
// initially unattached.
func New(space metric.Space) *Network {
	return &Network{
		space: space,
		size:  space.Size(),
		live:  make([]atomic.Uint64, (space.Size()+63)/64),
	}
}

// checkAddr preserves the bounds panic of a plain slice index: the last
// bitset word is padded, so without it an out-of-range address would
// silently set or read a phantom bit instead of failing at the faulty call.
func (n *Network) checkAddr(a Addr) {
	if a < 0 || int(a) >= n.size {
		panic(fmt.Sprintf("netsim: address %d out of range [0,%d)", a, n.size))
	}
}

// Space returns the underlying metric space.
func (n *Network) Space() metric.Space { return n.space }

// Size returns the number of addresses (attached or not).
func (n *Network) Size() int { return n.space.Size() }

// Distance returns the metric distance between two addresses.
func (n *Network) Distance(a, b Addr) float64 {
	return n.space.Distance(int(a), int(b))
}

// Attach marks an address as hosting a live overlay node.
func (n *Network) Attach(a Addr) {
	n.setLive(a, true)
}

// Detach marks an address as no longer hosting a node (voluntary departure
// or failure — the network does not distinguish; the overlay does).
func (n *Network) Detach(a Addr) {
	n.setLive(a, false)
}

// setLive flips address a's liveness bit with a CAS loop and maintains the
// live count; a no-op transition (already in the desired state) leaves the
// count untouched, so Attach/Detach are idempotent.
func (n *Network) setLive(a Addr, up bool) {
	n.checkAddr(a)
	w := &n.live[a>>6]
	mask := uint64(1) << (uint(a) & 63)
	for {
		old := w.Load()
		next := old | mask
		if !up {
			next = old &^ mask
		}
		if next == old {
			return
		}
		if w.CompareAndSwap(old, next) {
			if up {
				n.liveCount.Add(1)
			} else {
				n.liveCount.Add(-1)
			}
			return
		}
	}
}

// Alive reports whether the address currently hosts a live node.
func (n *Network) Alive(a Addr) bool {
	n.checkAddr(a)
	return n.live[a>>6].Load()&(uint64(1)<<(uint(a)&63)) != 0
}

// LiveCount returns the number of attached addresses (O(1): the count is
// maintained on every liveness transition, not recounted).
func (n *Network) LiveCount() int {
	return int(n.liveCount.Load())
}

// Send charges one message from a to b. It fails if b is not alive, after
// still charging the attempt (a timed-out probe consumes real network
// resources). hop marks application-level routing hops; acknowledgments and
// control chatter pass hop=false.
func (n *Network) Send(from, to Addr, cost *Cost, hop bool) error {
	n.totalMessages.Add(1)
	if n.load != nil {
		n.load[to].Add(1)
	}
	cost.Add(n.Distance(from, to), hop)
	if !n.Alive(to) {
		return fmt.Errorf("%w: %d -> %d", ErrUnreachable, from, to)
	}
	return nil
}

// RPC charges a request/response pair (two messages, one routing hop) and
// fails if the destination is dead.
func (n *Network) RPC(from, to Addr, cost *Cost) error {
	if err := n.Send(from, to, cost, true); err != nil {
		return err
	}
	return n.Send(to, from, cost, false)
}

// TotalMessages returns the network-wide message count since construction.
func (n *Network) TotalMessages() int64 { return n.totalMessages.Load() }

// EnableLoadTracking switches on (or, called again, resets) the per-address
// message counters — the per-node load measurement behind the hotspot
// experiments. Call it while no traffic is in flight: enabling races
// with concurrent Send calls is not synchronized (the counters themselves
// are atomics and are safe under any concurrency once enabled).
func (n *Network) EnableLoadTracking() {
	if n.load == nil {
		n.load = make([]atomic.Int64, n.size)
		return
	}
	for i := range n.load {
		n.load[i].Store(0)
	}
}

// LoadAt returns the number of messages addressed to addr (delivered, or
// charged against a dead host) since load tracking was enabled (0 when
// tracking is off).
func (n *Network) LoadAt(a Addr) int64 {
	n.checkAddr(a)
	if n.load == nil {
		return 0
	}
	return n.load[a].Load()
}

// Epoch returns the current virtual time.
func (n *Network) Epoch() int64 { return n.epoch.Load() }

// Tick advances virtual time by one epoch and returns the new value.
// Soft-state mechanisms (pointer expiry, republish) key off epochs.
func (n *Network) Tick() int64 { return n.epoch.Add(1) }
