// Package netsim simulates the physical network underneath the overlay.
//
// Overlay nodes live at points ("addresses") of a metric space. Every
// simulated message is charged its metric distance and counted, both on a
// per-operation Cost tracker and on network-wide counters, so experiments
// can report hops, latency (metric distance) and message complexity exactly.
// The network also tracks liveness — messages to departed or failed nodes
// fail — and carries a virtual clock (epochs) for soft-state expiry.
//
// The simulator is deliberately synchronous: algorithms are written in RPC
// style and every cross-node call passes through Network.Send, which is the
// single point of cost accounting and failure injection. Concurrency is
// real (operations may run on many goroutines), so the dynamic-membership
// machinery is exercised under genuine interleavings.
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"tapestry/internal/metric"
)

// Addr is a point index in the underlying metric space.
type Addr int

// ErrUnreachable is returned when a message targets a dead or never-attached
// address.
var ErrUnreachable = errors.New("netsim: destination unreachable")

// Cost accumulates the expense of one logical operation (a lookup, a join,
// a multicast...). A nil *Cost is valid everywhere and records nothing,
// which keeps hot paths free of conditionals at call sites.
type Cost struct {
	mu       sync.Mutex
	messages int
	hops     int
	distance float64
}

// Add charges one message of the given distance; hop indicates whether the
// message advances an application-level routing path (true) or is auxiliary
// traffic such as an acknowledgment (false).
func (c *Cost) Add(distance float64, hop bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.messages++
	if hop {
		c.hops++
	}
	c.distance += distance
	c.mu.Unlock()
}

// Merge folds other into c (used when a sub-operation keeps its own ledger).
func (c *Cost) Merge(other *Cost) {
	if c == nil || other == nil {
		return
	}
	m, h, d := other.Snapshot()
	c.mu.Lock()
	c.messages += m
	c.hops += h
	c.distance += d
	c.mu.Unlock()
}

// Snapshot returns (messages, hops, distance) atomically.
func (c *Cost) Snapshot() (messages, hops int, distance float64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.messages, c.hops, c.distance
}

// Messages returns the message count so far.
func (c *Cost) Messages() int { m, _, _ := c.Snapshot(); return m }

// Hops returns the routing-hop count so far.
func (c *Cost) Hops() int { _, h, _ := c.Snapshot(); return h }

// Distance returns the total metric distance traversed so far.
func (c *Cost) Distance() float64 { _, _, d := c.Snapshot(); return d }

func (c *Cost) String() string {
	m, h, d := c.Snapshot()
	return fmt.Sprintf("msgs=%d hops=%d dist=%.3f", m, h, d)
}

// Network is the simulated substrate shared by all overlay nodes of one
// experiment.
type Network struct {
	space metric.Space

	mu   sync.RWMutex
	live []bool

	totalMessages atomic.Int64
	epoch         atomic.Int64
}

// New creates a network over the given metric space with all addresses
// initially unattached.
func New(space metric.Space) *Network {
	return &Network{space: space, live: make([]bool, space.Size())}
}

// Space returns the underlying metric space.
func (n *Network) Space() metric.Space { return n.space }

// Size returns the number of addresses (attached or not).
func (n *Network) Size() int { return n.space.Size() }

// Distance returns the metric distance between two addresses.
func (n *Network) Distance(a, b Addr) float64 {
	return n.space.Distance(int(a), int(b))
}

// Attach marks an address as hosting a live overlay node.
func (n *Network) Attach(a Addr) {
	n.mu.Lock()
	n.live[a] = true
	n.mu.Unlock()
}

// Detach marks an address as no longer hosting a node (voluntary departure
// or failure — the network does not distinguish; the overlay does).
func (n *Network) Detach(a Addr) {
	n.mu.Lock()
	n.live[a] = false
	n.mu.Unlock()
}

// Alive reports whether the address currently hosts a live node.
func (n *Network) Alive(a Addr) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.live[a]
}

// LiveCount returns the number of attached addresses.
func (n *Network) LiveCount() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	c := 0
	for _, l := range n.live {
		if l {
			c++
		}
	}
	return c
}

// Send charges one message from a to b. It fails if b is not alive, after
// still charging the attempt (a timed-out probe consumes real network
// resources). hop marks application-level routing hops; acknowledgments and
// control chatter pass hop=false.
func (n *Network) Send(from, to Addr, cost *Cost, hop bool) error {
	n.totalMessages.Add(1)
	cost.Add(n.Distance(from, to), hop)
	if !n.Alive(to) {
		return fmt.Errorf("%w: %d -> %d", ErrUnreachable, from, to)
	}
	return nil
}

// RPC charges a request/response pair (two messages, one routing hop) and
// fails if the destination is dead.
func (n *Network) RPC(from, to Addr, cost *Cost) error {
	if err := n.Send(from, to, cost, true); err != nil {
		return err
	}
	return n.Send(to, from, cost, false)
}

// TotalMessages returns the network-wide message count since construction.
func (n *Network) TotalMessages() int64 { return n.totalMessages.Load() }

// Epoch returns the current virtual time.
func (n *Network) Epoch() int64 { return n.epoch.Load() }

// Tick advances virtual time by one epoch and returns the new value.
// Soft-state mechanisms (pointer expiry, republish) key off epochs.
func (n *Network) Tick() int64 { return n.epoch.Add(1) }
