// Package netsim simulates the physical network underneath the overlay.
//
// Overlay nodes live at points ("addresses") of a metric space. Every
// simulated message is charged its metric distance and counted, both on a
// per-operation Cost tracker and on network-wide counters, so experiments
// can report hops, latency (metric distance) and message complexity exactly.
// The network also tracks liveness — messages to departed or failed nodes
// fail — and carries a virtual clock (epochs) for soft-state expiry.
//
// The simulator is deliberately synchronous: algorithms are written in RPC
// style and every cross-node call passes through Network.Send, which is the
// single point of cost accounting and failure injection. Concurrency is
// real (operations may run on many goroutines), so the dynamic-membership
// machinery is exercised under genuine interleavings.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"tapestry/internal/metric"
	"tapestry/internal/stats"
)

// Addr is a point index in the underlying metric space.
type Addr int

// ErrUnreachable is returned when a message targets a dead or never-attached
// address.
var ErrUnreachable = errors.New("netsim: destination unreachable")

// Cost accumulates the expense of one logical operation (a lookup, a join,
// a multicast...). A nil *Cost is valid everywhere and records nothing,
// which keeps hot paths free of conditionals at call sites.
//
// All counters are lock-free atomics — concurrent adders never contend on a
// mutex — with the metric distance accumulated as a CAS loop over the
// float64 bit pattern. Snapshot is consistent per field; when readers need a
// single coherent triple they must quiesce the writers first, which every
// caller in this repository does anyway (costs are read after the operation
// completes).
type Cost struct {
	messages atomic.Int64
	hops     atomic.Int64
	distance atomic.Uint64 // float64 bit pattern

	// Virtual-time stamps (event-driven backend only): the event clock at
	// the op's first charged message and at its latest delivery. Their
	// difference is the op's end-to-end latency in virtual time — something
	// the direct-call backend cannot measure, because no time passes there.
	vset   atomic.Bool
	vbegin atomic.Uint64 // float64 bit pattern
	vend   atomic.Uint64 // float64 bit pattern
}

// Add charges one message of the given distance; hop indicates whether the
// message advances an application-level routing path (true) or is auxiliary
// traffic such as an acknowledgment (false).
func (c *Cost) Add(distance float64, hop bool) {
	if c == nil {
		return
	}
	c.messages.Add(1)
	if hop {
		c.hops.Add(1)
	}
	c.addDistance(distance)
}

// addDistance folds d into the running float64 total with a CAS loop.
func (c *Cost) addDistance(d float64) {
	if d == 0 {
		return
	}
	for {
		old := c.distance.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if c.distance.CompareAndSwap(old, next) {
			return
		}
	}
}

// Stamp records the event clock against the op: the first stamp fixes the
// op's virtual start, every stamp advances its virtual end. The event-driven
// backend stamps each message's send and delivery times; direct-call
// execution never stamps (no virtual time passes).
func (c *Cost) Stamp(t float64) {
	if c == nil {
		return
	}
	if c.vset.CompareAndSwap(false, true) {
		c.vbegin.Store(math.Float64bits(t))
	}
	if math.Float64frombits(c.vend.Load()) < t {
		c.vend.Store(math.Float64bits(t))
	}
}

// VirtualSpan returns the op's virtual start and end times; ok is false when
// the op never ran under an event engine (direct-call mode).
func (c *Cost) VirtualSpan() (begin, end float64, ok bool) {
	if c == nil || !c.vset.Load() {
		return 0, 0, false
	}
	return math.Float64frombits(c.vbegin.Load()), math.Float64frombits(c.vend.Load()), true
}

// VirtualLatency returns the op's end-to-end latency in virtual time (zero
// under the direct-call backend).
func (c *Cost) VirtualLatency() float64 {
	begin, end, ok := c.VirtualSpan()
	if !ok {
		return 0
	}
	return end - begin
}

// Merge folds other into c (used when a sub-operation keeps its own ledger).
func (c *Cost) Merge(other *Cost) {
	if c == nil || other == nil {
		return
	}
	m, h, d := other.Snapshot()
	c.messages.Add(int64(m))
	c.hops.Add(int64(h))
	c.addDistance(d)
	if begin, end, ok := other.VirtualSpan(); ok {
		// Widen c's span rather than re-stamping: the sub-operation may have
		// started before (or ended after) anything c has seen.
		if c.vset.CompareAndSwap(false, true) {
			c.vbegin.Store(math.Float64bits(begin))
		} else if cur := math.Float64frombits(c.vbegin.Load()); begin < cur {
			c.vbegin.Store(math.Float64bits(begin))
		}
		c.Stamp(end)
	}
}

// Snapshot returns (messages, hops, distance); each field is read
// atomically.
func (c *Cost) Snapshot() (messages, hops int, distance float64) {
	if c == nil {
		return 0, 0, 0
	}
	return int(c.messages.Load()), int(c.hops.Load()), math.Float64frombits(c.distance.Load())
}

// Messages returns the message count so far.
func (c *Cost) Messages() int { m, _, _ := c.Snapshot(); return m }

// Hops returns the routing-hop count so far.
func (c *Cost) Hops() int { _, h, _ := c.Snapshot(); return h }

// Distance returns the total metric distance traversed so far.
func (c *Cost) Distance() float64 { _, _, d := c.Snapshot(); return d }

func (c *Cost) String() string {
	m, h, d := c.Snapshot()
	return fmt.Sprintf("msgs=%d hops=%d dist=%.3f", m, h, d)
}

// Network is the simulated substrate shared by all overlay nodes of one
// experiment.
//
// Liveness is a word-packed atomic bitset with a maintained live count, so
// the Send/Alive hot path and LiveCount are lock-free: concurrent sends,
// attaches and detaches never serialise on a network-wide lock.
type Network struct {
	space metric.Space
	size  int

	live      []atomic.Uint64 // bit a&63 of word a>>6 = address a is attached
	liveCount atomic.Int64

	totalMessages atomic.Int64
	epoch         atomic.Int64

	// load, when enabled, counts messages ADDRESSED to each address — the
	// hotspot measurement for the serving-layer experiments. A probe to a
	// dead address still counts: the attempt consumed that attachment
	// point, exactly like the charged timeout in Send. nil (one
	// pointer-null check on Send) unless EnableLoadTracking was called.
	load []atomic.Int64

	// engine, when attached, switches Send to the event-driven backend:
	// a message parks the calling op on the scheduler until its delivery
	// event fires, so metric distance becomes virtual latency and liveness
	// is evaluated at delivery time. nil — the default — is the direct-call
	// backend with exactly the pre-engine semantics. Attach before any
	// traffic; the field is then read-only.
	engine *Engine

	// faults, when non-nil, is the installed fault-injection configuration
	// (partition mask and/or seeded loss/duplication rates). The fault-free
	// default is the nil pointer, so the only overhead on today's Send path
	// is a single atomic load. Configurations are immutable; the setters
	// swap whole states (copy-on-write), so a Send racing a reconfiguration
	// sees either the old or the new state, never a torn one.
	faults atomic.Pointer[faultState]

	lost       atomic.Int64 // messages dropped by injected link loss
	duplicated atomic.Int64 // extra deliveries from injected duplication
	blocked    atomic.Int64 // messages refused across an active partition cut
}

// Stats is a snapshot of the network-wide message counters, including
// injected-fault accounting. With no faults ever configured the three fault
// counters are exactly zero.
type Stats struct {
	TotalMessages int64 // every charged message, including duplicates
	Lost          int64 // messages dropped by injected link loss
	Duplicated    int64 // extra deliveries from injected duplication
	Blocked       int64 // messages refused across an active partition cut
}

// Stats returns the current network-wide counter snapshot. Fields are read
// individually (atomics); quiesce traffic for a fully coherent set, as every
// experiment in this repository does between phases.
func (n *Network) Stats() Stats {
	return Stats{
		TotalMessages: n.totalMessages.Load(),
		Lost:          n.lost.Load(),
		Duplicated:    n.duplicated.Load(),
		Blocked:       n.blocked.Load(),
	}
}

// faultRNG is the seeded SplitMix64 stream behind per-message loss and
// duplication draws. It is shared (by pointer) across copy-on-write fault
// states so reconfiguring the partition mid-run does not rewind the stream.
// The mutex serialises concurrent Send draws; fault-free runs never touch it.
type faultRNG struct {
	mu    sync.Mutex
	state uint64
}

// uniform returns the next draw in [0,1).
func (r *faultRNG) uniform() float64 {
	r.mu.Lock()
	r.state = stats.SplitMix64(r.state)
	u := r.state
	r.mu.Unlock()
	return float64(u>>11) / (1 << 53)
}

// faultState is one immutable fault-injection configuration.
type faultState struct {
	loss float64 // per-message drop probability
	dup  float64 // per-message duplication probability
	rng  *faultRNG
	// partition, when non-nil, assigns every address to a group; messages
	// whose endpoints fall in different groups are refused.
	partition []int
}

// empty reports whether the state injects nothing (and can be stored as nil).
func (f *faultState) empty() bool {
	return f.loss == 0 && f.dup == 0 && f.partition == nil
}

// sendVerdict is the per-message fault decision.
type sendVerdict uint8

const (
	verdictDeliver sendVerdict = iota
	verdictBlocked
	verdictLost
	verdictDuplicated
)

// judge decides the fate of one message. The partition check consumes no
// randomness; loss and duplication share a single uniform draw (loss wins
// ties), so a message stream under rates (l, d) and one under (l, 0) consume
// the seeded stream identically.
func (f *faultState) judge(from, to Addr) sendVerdict {
	if f.partition != nil && f.partition[from] != f.partition[to] {
		return verdictBlocked
	}
	if f.loss > 0 || f.dup > 0 {
		u := f.rng.uniform()
		if u < f.loss {
			return verdictLost
		}
		if u < f.loss+f.dup {
			return verdictDuplicated
		}
	}
	return verdictDeliver
}

// SetLinkFaults installs seeded per-message loss and duplication rates at the
// Send seam. Each rate must lie in [0,1] with loss+dup <= 1 (a message is
// lost, duplicated, or delivered — exclusively). Setting both to zero removes
// link faults while keeping any partition mask. The draw stream is reseeded
// on every call; an existing stream survives partition-only changes.
//
// Like EnableLoadTracking, reconfiguration is not synchronised against
// in-flight traffic — call it from the single scenario/control goroutine
// while no operation is mid-Send for exact per-message accounting.
func (n *Network) SetLinkFaults(loss, dup float64, seed int64) {
	if loss < 0 || dup < 0 || loss > 1 || dup > 1 || loss+dup > 1 ||
		math.IsNaN(loss) || math.IsNaN(dup) {
		panic(fmt.Sprintf("netsim: invalid link-fault rates loss=%v dup=%v", loss, dup))
	}
	next := &faultState{loss: loss, dup: dup}
	if loss > 0 || dup > 0 {
		next.rng = &faultRNG{state: stats.SplitMix64(uint64(seed))}
	}
	if cur := n.faults.Load(); cur != nil {
		next.partition = cur.partition
	}
	n.storeFaults(next)
}

// SetPartition installs a reachability mask: group assigns every address an
// integer side, and Send refuses (and counts as Blocked) any message whose
// endpoints lie on different sides. len(group) must equal Size(). The slice
// is copied. Link-fault rates, if configured, survive.
func (n *Network) SetPartition(group []int) {
	if len(group) != n.size {
		panic(fmt.Sprintf("netsim: partition mask has %d entries for %d addresses", len(group), n.size))
	}
	next := &faultState{partition: append([]int(nil), group...)}
	if cur := n.faults.Load(); cur != nil {
		next.loss, next.dup, next.rng = cur.loss, cur.dup, cur.rng
	}
	n.storeFaults(next)
}

// HealPartition removes the partition mask, keeping any link-fault rates.
func (n *Network) HealPartition() {
	cur := n.faults.Load()
	if cur == nil || cur.partition == nil {
		return
	}
	n.storeFaults(&faultState{loss: cur.loss, dup: cur.dup, rng: cur.rng})
}

// ClearFaults removes all fault injection, restoring the exact fault-free
// Send path. Counters are cumulative and are not reset.
func (n *Network) ClearFaults() {
	n.faults.Store(nil)
}

// storeFaults publishes a new configuration, normalising the do-nothing
// state to the nil pointer so the fault-free Send path stays a single
// atomic null check.
func (n *Network) storeFaults(f *faultState) {
	if f.empty() {
		f = nil
	}
	n.faults.Store(f)
}

// New creates a network over the given metric space with all addresses
// initially unattached.
func New(space metric.Space) *Network {
	return &Network{
		space: space,
		size:  space.Size(),
		live:  make([]atomic.Uint64, (space.Size()+63)/64),
	}
}

// checkAddr preserves the bounds panic of a plain slice index: the last
// bitset word is padded, so without it an out-of-range address would
// silently set or read a phantom bit instead of failing at the faulty call.
func (n *Network) checkAddr(a Addr) {
	if a < 0 || int(a) >= n.size {
		panic(fmt.Sprintf("netsim: address %d out of range [0,%d)", a, n.size))
	}
}

// Space returns the underlying metric space.
func (n *Network) Space() metric.Space { return n.space }

// Size returns the number of addresses (attached or not).
func (n *Network) Size() int { return n.space.Size() }

// Distance returns the metric distance between two addresses.
func (n *Network) Distance(a, b Addr) float64 {
	return n.space.Distance(int(a), int(b))
}

// Attach marks an address as hosting a live overlay node.
func (n *Network) Attach(a Addr) {
	n.setLive(a, true)
}

// Detach marks an address as no longer hosting a node (voluntary departure
// or failure — the network does not distinguish; the overlay does).
func (n *Network) Detach(a Addr) {
	n.setLive(a, false)
}

// setLive flips address a's liveness bit with a CAS loop and maintains the
// live count; a no-op transition (already in the desired state) leaves the
// count untouched, so Attach/Detach are idempotent.
func (n *Network) setLive(a Addr, up bool) {
	n.checkAddr(a)
	w := &n.live[a>>6]
	mask := uint64(1) << (uint(a) & 63)
	for {
		old := w.Load()
		next := old | mask
		if !up {
			next = old &^ mask
		}
		if next == old {
			return
		}
		if w.CompareAndSwap(old, next) {
			if up {
				n.liveCount.Add(1)
			} else {
				n.liveCount.Add(-1)
			}
			return
		}
	}
}

// Alive reports whether the address currently hosts a live node.
func (n *Network) Alive(a Addr) bool {
	n.checkAddr(a)
	return n.live[a>>6].Load()&(uint64(1)<<(uint(a)&63)) != 0
}

// LiveCount returns the number of attached addresses (O(1): the count is
// maintained on every liveness transition, not recounted).
func (n *Network) LiveCount() int {
	return int(n.liveCount.Load())
}

// Send charges one message from a to b. It fails if b is not alive, after
// still charging the attempt (a timed-out probe consumes real network
// resources). hop marks application-level routing hops; acknowledgments and
// control chatter pass hop=false.
func (n *Network) Send(from, to Addr, cost *Cost, hop bool) error {
	n.totalMessages.Add(1)
	if n.load != nil {
		n.load[to].Add(1)
	}
	d := n.Distance(from, to)
	cost.Add(d, hop)
	// The fault verdict is decided after the attempt is charged — a dropped
	// or refused message consumed the sender's resources — but before the
	// engine park, so the draw order is independent of virtual-time
	// interleaving (one stream position per charged message).
	verdict := verdictDeliver
	if f := n.faults.Load(); f != nil {
		verdict = f.judge(from, to)
	}
	if e := n.engine; e != nil && e.active() {
		// Event-driven backend: the message is in flight for its metric
		// distance (plus any inbound-queue wait at the receiver); the op
		// parks until the delivery event fires. Liveness is then checked at
		// delivery time — the receiver may have died (or appeared) while the
		// message was in the air, which the direct-call model cannot express.
		// Lost and partition-refused messages still park: the sender learns
		// of the failure by timeout, which takes at least as long.
		cost.Stamp(e.Now())
		e.transmit(to, d)
		cost.Stamp(e.Now())
	}
	switch verdict {
	case verdictBlocked:
		n.blocked.Add(1)
		return fmt.Errorf("%w: %d -> %d (partitioned)", ErrUnreachable, from, to)
	case verdictLost:
		n.lost.Add(1)
		return fmt.Errorf("%w: %d -> %d (message lost)", ErrUnreachable, from, to)
	case verdictDuplicated:
		// The spurious copy consumes bandwidth and hits the receiver like
		// any other message, but is not a routing hop and adds no latency
		// beyond the original.
		n.duplicated.Add(1)
		n.totalMessages.Add(1)
		if n.load != nil {
			n.load[to].Add(1)
		}
		cost.Add(d, false)
	}
	if !n.Alive(to) {
		return fmt.Errorf("%w: %d -> %d", ErrUnreachable, from, to)
	}
	return nil
}

// AttachEngine switches the network to the event-driven execution backend.
// Attach before any traffic or scheduling; a network without an engine runs
// every operation as a direct synchronous call, exactly as before.
func (n *Network) AttachEngine(e *Engine) {
	e.attachPorts(n.size)
	n.engine = e
}

// Engine returns the attached event engine, or nil in direct-call mode.
func (n *Network) Engine() *Engine { return n.engine }

// RPC charges a request/response pair (two messages, one routing hop) and
// fails if the destination is dead.
func (n *Network) RPC(from, to Addr, cost *Cost) error {
	if err := n.Send(from, to, cost, true); err != nil {
		return err
	}
	return n.Send(to, from, cost, false)
}

// TotalMessages returns the network-wide message count since construction.
func (n *Network) TotalMessages() int64 { return n.totalMessages.Load() }

// EnableLoadTracking switches on (or, called again, resets) the per-address
// message counters — the per-node load measurement behind the hotspot
// experiments. Call it while no traffic is in flight: enabling races
// with concurrent Send calls is not synchronized (the counters themselves
// are atomics and are safe under any concurrency once enabled).
func (n *Network) EnableLoadTracking() {
	if n.load == nil {
		n.load = make([]atomic.Int64, n.size)
		return
	}
	for i := range n.load {
		n.load[i].Store(0)
	}
}

// LoadAt returns the number of messages addressed to addr (delivered, or
// charged against a dead host) since load tracking was enabled (0 when
// tracking is off).
func (n *Network) LoadAt(a Addr) int64 {
	n.checkAddr(a)
	if n.load == nil {
		return 0
	}
	return n.load[a].Load()
}

// Epoch returns the current virtual time.
func (n *Network) Epoch() int64 { return n.epoch.Load() }

// Tick advances virtual time by one epoch and returns the new value.
// Soft-state mechanisms (pointer expiry, republish) key off epochs.
func (n *Network) Tick() int64 { return n.epoch.Add(1) }
