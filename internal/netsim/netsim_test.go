package netsim

import (
	"errors"
	"sync"
	"testing"

	"tapestry/internal/metric"
)

func newNet() *Network { return New(metric.NewRing(16)) }

func TestAttachDetachAlive(t *testing.T) {
	n := newNet()
	if n.Alive(3) {
		t.Error("fresh address should be dead")
	}
	n.Attach(3)
	if !n.Alive(3) {
		t.Error("attached address should be alive")
	}
	if n.LiveCount() != 1 {
		t.Errorf("LiveCount = %d", n.LiveCount())
	}
	n.Detach(3)
	if n.Alive(3) || n.LiveCount() != 0 {
		t.Error("detach failed")
	}
}

func TestSendChargesAndFails(t *testing.T) {
	n := newNet()
	n.Attach(0)
	n.Attach(4)
	var c Cost
	if err := n.Send(0, 4, &c, true); err != nil {
		t.Fatalf("send to live node: %v", err)
	}
	if c.Messages() != 1 || c.Hops() != 1 || c.Distance() != 4 {
		t.Errorf("cost after send: %s", &c)
	}
	// Dead destination: error, but the attempt is still charged.
	if err := n.Send(0, 9, &c, false); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("expected ErrUnreachable, got %v", err)
	}
	if c.Messages() != 2 || c.Hops() != 1 {
		t.Errorf("failed send must still be charged: %s", &c)
	}
	if n.TotalMessages() != 2 {
		t.Errorf("TotalMessages = %d", n.TotalMessages())
	}
}

func TestRPCCost(t *testing.T) {
	n := newNet()
	n.Attach(1)
	n.Attach(2)
	var c Cost
	if err := n.RPC(1, 2, &c); err != nil {
		t.Fatal(err)
	}
	if c.Messages() != 2 || c.Hops() != 1 || c.Distance() != 2 {
		t.Errorf("rpc cost: %s", &c)
	}
}

func TestNilCostSafe(t *testing.T) {
	n := newNet()
	n.Attach(0)
	n.Attach(1)
	var nilCost *Cost
	if err := n.Send(0, 1, nilCost, true); err != nil {
		t.Fatal(err)
	}
	nilCost.Add(3, true) // must not panic
	if nilCost.Messages() != 0 || nilCost.Distance() != 0 {
		t.Error("nil cost must read as zero")
	}
	var c Cost
	c.Merge(nilCost)
	nilCost.Merge(&c)
}

func TestCostMerge(t *testing.T) {
	var a, b Cost
	a.Add(1, true)
	b.Add(2, false)
	b.Add(3, true)
	a.Merge(&b)
	m, h, d := a.Snapshot()
	if m != 3 || h != 2 || d != 6 {
		t.Errorf("merge: msgs=%d hops=%d dist=%g", m, h, d)
	}
}

func TestCostConcurrent(t *testing.T) {
	var c Cost
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add(1, j%2 == 0)
			}
		}()
	}
	wg.Wait()
	if c.Messages() != 1600 || c.Hops() != 800 || c.Distance() != 1600 {
		t.Errorf("concurrent accounting lost updates: %s", &c)
	}
}

// TestLivenessConcurrent races attaches, detaches, sends and live counts on
// the lock-free bitset; the maintained count must end exact, and -race must
// stay silent.
func TestLivenessConcurrent(t *testing.T) {
	n := New(metric.NewRing(512))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker owns a disjoint 63-address range so the final state
			// is known — but 63 is deliberately NOT word-aligned, so adjacent
			// workers hammer the same bitset words and the CAS loop really
			// contends.
			base := Addr(w * 63)
			for r := 0; r < 50; r++ {
				for a := Addr(0); a < 63; a++ {
					n.Attach(base + a)
					n.Attach(base + a) // idempotent: must not double-count
				}
				for a := Addr(0); a < 63; a++ {
					_ = n.Alive(base + a)
					_ = n.Send(base, base+a, nil, false)
				}
				_ = n.LiveCount()
				for a := Addr(32); a < 63; a++ {
					n.Detach(base + a)
					n.Detach(base + a)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := n.LiveCount(); got != 8*32 {
		t.Errorf("LiveCount = %d after concurrent churn, want %d", got, 8*32)
	}
	for w := 0; w < 8; w++ {
		if !n.Alive(Addr(w*63)) || n.Alive(Addr(w*63+62)) {
			t.Fatalf("worker %d range in wrong state", w)
		}
	}
}

// TestAddrBoundsPanic pins the padded-word guard: addresses beyond the space
// must fail at the call site, not set phantom bits in the last bitset word.
func TestAddrBoundsPanic(t *testing.T) {
	n := New(metric.NewRing(100)) // 2 words = 128 bits for 100 addresses
	for name, f := range map[string]func(){
		"attach": func() { n.Attach(120) },
		"alive":  func() { n.Alive(120) },
		"detach": func() { n.Detach(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected out-of-range panic", name)
				}
			}()
			f()
		}()
	}
	if n.LiveCount() != 0 {
		t.Error("failed operations must not touch the live count")
	}
}

// TestCostConcurrentDistance checks the CAS accumulation of the float64
// distance: integral increments concurrently summed must land exactly.
func TestCostConcurrentDistance(t *testing.T) {
	var c Cost
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(2.5, false)
			}
		}()
	}
	wg.Wait()
	if got := c.Distance(); got != 8*1000*2.5 {
		t.Errorf("concurrent distance = %g, want %g", got, 8*1000*2.5)
	}
}

func TestEpochs(t *testing.T) {
	n := newNet()
	if n.Epoch() != 0 {
		t.Error("epoch should start at 0")
	}
	if n.Tick() != 1 || n.Epoch() != 1 {
		t.Error("tick")
	}
}

func TestDistanceDelegates(t *testing.T) {
	n := newNet()
	if n.Distance(0, 8) != 8 || n.Distance(0, 15) != 1 {
		t.Error("distance does not match ring metric")
	}
	if n.Size() != 16 {
		t.Error("size")
	}
	if n.Space().Name() == "" {
		t.Error("space accessor")
	}
}
