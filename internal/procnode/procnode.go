// Package procnode is the daemon side of the multi-process overlay: the
// state and protocol handlers behind cmd/tapestry-node. Each daemon hosts one
// Tapestry node — a static routing table, an object-pointer map and a served
// set — and speaks the wire cluster protocol (internal/wire, types 40+) over
// TCP: the examples/cluster harness installs each node's table and endpoint
// book, then publish and locate walks forward daemon-to-daemon using ordinary
// surrogate routing, exactly the prefix-by-prefix descent of internal/core
// but with every hop a real socket exchange.
//
// The daemon deliberately reuses the single-process building blocks rather
// than reimplementing them: identifiers and surrogate order from
// internal/ids, the CSR routing table from internal/route (route.New inserts
// the owner into its own slots, so "self resolves the digit" works unchanged)
// and the message catalog from internal/wire. Only the hop loop itself lives
// here, because in-process routing drives walks from the mesh while a daemon
// sees one hop at a time.
package procnode

import (
	"fmt"
	"net"
	"sync"
	"time"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
	"tapestry/internal/wire"
)

// dialTimeout and exchangeTimeout bound a forwarded hop; a locate that spans
// d hops holds d nested exchanges, so the budget is generous.
const (
	dialTimeout     = 5 * time.Second
	exchangeTimeout = 60 * time.Second
)

// pointer is one deposited object pointer: the GUID's storage server.
type pointer struct {
	server ids.ID
	addr   netsim.Addr
}

// Node is one daemon-hosted overlay node. The zero state answers every walk
// with "not found"; ClusterInstall provisions it.
type Node struct {
	mu     sync.Mutex
	self   route.Entry
	table  *route.Table
	eps    map[netsim.Addr]string // overlay address -> daemon host:port
	served map[ids.ID]struct{}    // GUIDs stored at this node
	ptrs   map[ids.ID]pointer     // GUID -> pointer toward its server
}

// New returns an empty daemon node awaiting a ClusterInstall.
func New() *Node {
	return &Node{
		eps:    make(map[netsim.Addr]string),
		served: make(map[ids.ID]struct{}),
		ptrs:   make(map[ids.ID]pointer),
	}
}

// Serve accepts connections until the listener closes. Each connection
// carries a sequence of framed request/response pairs; connections are
// independent, so the harness and forwarding peers may overlap freely.
func (n *Node) Serve(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		go n.serveConn(c)
	}
}

func (n *Node) serveConn(c net.Conn) {
	defer c.Close()
	var rbuf, wbuf []byte
	for {
		frame, err := wire.ReadFrame(c, rbuf)
		rbuf = frame
		if err != nil {
			return
		}
		req, _, err := wire.DecodeFrame(frame)
		if err != nil {
			return
		}
		resp := n.handle(req)
		if resp == nil {
			return // not a cluster request: drop the connection
		}
		if wbuf, err = wire.WriteMsg(c, wbuf, resp); err != nil {
			return
		}
	}
}

// handle dispatches one request and returns its reply (nil = protocol error).
func (n *Node) handle(req wire.Msg) wire.Msg {
	switch m := req.(type) {
	case *wire.ClusterInstall:
		n.install(m)
		return &wire.ClusterAck{}
	case *wire.ClusterServe:
		n.mu.Lock()
		for _, g := range m.GUIDs {
			n.served[g] = struct{}{}
		}
		n.mu.Unlock()
		return &wire.ClusterAck{}
	case *wire.ClusterPublish:
		return n.publish(m)
	case *wire.ClusterLocate:
		return n.locate(m)
	default:
		return nil
	}
}

// install provisions identity, routing table and the cluster address book.
func (n *Node) install(m *wire.ClusterInstall) {
	spec := ids.Spec{Base: m.Base, Digits: m.Digits}
	t := route.New(spec, m.Self.ID, m.Self.Addr, m.R)
	for _, r := range m.Rows {
		t.Add(r.Level, r.E)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.self = m.Self
	n.table = t
	clear(n.eps)
	for _, ep := range m.Endpoints {
		n.eps[ep.Addr] = ep.HostPort
	}
}

// nextHopLocked makes the local surrogate-routing decision for key with
// `level` digits already resolved — the daemon-side twin of the core's
// native scheme: at each level, scan digits in surrogate order from the
// key's own digit and take the first slot with any entry; the own ID
// resolving the digit means "stay put, next level"; running out of levels
// (or an empty row, impossible with self present) means this node is the
// key's root.
func (n *Node) nextHopLocked(key ids.ID, level int) (next route.Entry, nextLevel int, terminal bool) {
	if n.table == nil {
		return route.Entry{}, 0, true
	}
	base := n.table.Base()
	for l := level; l < n.table.Levels(); l++ {
		want := int(key.Digit(l))
		var set []route.Entry
		for i := 0; i < base; i++ {
			if s := n.table.SetView(l, ids.Digit((want+i)%base)); len(s) > 0 {
				set = s
				break
			}
		}
		if len(set) == 0 {
			return route.Entry{}, 0, true
		}
		if set[0].ID.Equal(n.self.ID) {
			continue // digit resolved by staying put
		}
		return set[0], l + 1, false
	}
	return route.Entry{}, 0, true
}

// publish handles one hop of a publish walk: deposit the pointer, then
// either terminate (this node is the root) or forward and relay the
// confirmation back down the chain. A zero Root in the reply reports a
// broken walk.
func (n *Node) publish(m *wire.ClusterPublish) wire.Msg {
	n.mu.Lock()
	n.ptrs[m.GUID] = pointer{server: m.Server, addr: m.ServerAddr}
	next, level, terminal := n.nextHopLocked(m.Key, m.Level)
	self := n.self
	n.mu.Unlock()
	if terminal {
		return &wire.ClusterPubDone{Root: self.ID}
	}
	fwd := *m
	fwd.Level = level
	resp, err := n.exchange(next.Addr, &fwd, wire.TClusterPubDone)
	if err != nil {
		return &wire.ClusterPubDone{}
	}
	return resp
}

// locate handles one hop of a locate walk: answer from the served set or the
// pointer map, or forward toward the key's root. Reaching the root without a
// pointer is an authoritative miss.
func (n *Node) locate(m *wire.ClusterLocate) wire.Msg {
	n.mu.Lock()
	if _, ok := n.served[m.GUID]; ok {
		self := n.self
		n.mu.Unlock()
		return &wire.ClusterFound{Found: true, Server: self.ID, ServerAddr: self.Addr, Hops: m.Hops}
	}
	if p, ok := n.ptrs[m.GUID]; ok {
		n.mu.Unlock()
		// One more hop: the jump from the pointer to the server itself.
		return &wire.ClusterFound{Found: true, Server: p.server, ServerAddr: p.addr, Hops: m.Hops + 1}
	}
	next, level, terminal := n.nextHopLocked(m.Key, m.Level)
	n.mu.Unlock()
	if terminal {
		return &wire.ClusterFound{Hops: m.Hops}
	}
	fwd := *m
	fwd.Level, fwd.Hops = level, m.Hops+1
	resp, err := n.exchange(next.Addr, &fwd, wire.TClusterFound)
	if err != nil {
		return &wire.ClusterFound{}
	}
	return resp
}

// exchange performs one request/response round trip with the daemon hosting
// the given overlay address. Connections are per-exchange: walks are short
// and the kernel's loopback handshake is cheap, so a conn pool would buy
// little for an example-scale cluster.
func (n *Node) exchange(to netsim.Addr, req wire.Msg, want wire.Type) (wire.Msg, error) {
	n.mu.Lock()
	hp, ok := n.eps[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("procnode: no endpoint for overlay address %d", to)
	}
	c, err := net.DialTimeout("tcp", hp, dialTimeout)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(exchangeTimeout))
	if _, err := wire.WriteMsg(c, nil, req); err != nil {
		return nil, err
	}
	frame, err := wire.ReadFrame(c, nil)
	if err != nil {
		return nil, err
	}
	resp, _, err := wire.DecodeFrame(frame)
	if err != nil {
		return nil, err
	}
	if resp.WireType() != want {
		return nil, fmt.Errorf("procnode: reply type %v, want %v", resp.WireType(), want)
	}
	return resp, nil
}
